open Dpoaf_pipeline
module Domain = Dpoaf_domain.Domain
module Tasks = Dpoaf_driving.Tasks
module Responses = Dpoaf_driving.Responses
module Grammar = Dpoaf_lm.Grammar
module Sampler = Dpoaf_lm.Sampler
module Pref_data = Dpoaf_dpo.Pref_data
module Trainer = Dpoaf_dpo.Trainer
module Rng = Dpoaf_util.Rng

let corpus = Corpus.build ()

let small_model seed =
  Corpus.pretrained_model
    ~config:{ Dpoaf_lm.Model.dim = 12; context = 10; lora_rank = 2; arch = Dpoaf_lm.Model.Bow }
    ~per_task:20 ~epochs:10 (Rng.create seed) corpus

(* ---------------- corpus ---------------- *)

let test_corpus_setups () =
  Alcotest.(check int) "one setup per task" (List.length Tasks.all)
    (List.length corpus.Corpus.setups);
  Alcotest.(check int) "training setups" 6
    (List.length (Corpus.setups_of_split corpus Domain.Training));
  Alcotest.(check int) "validation setups" 2
    (List.length (Corpus.setups_of_split corpus Domain.Validation))

let test_corpus_grammar_accepts_candidates () =
  List.iter
    (fun setup ->
      (* any single candidate step and any obs+final pair must be accepted *)
      let steps = Domain.candidate_steps corpus.Corpus.domain setup.Corpus.task in
      List.iter
        (fun s ->
          let tokens = Grammar.tokens_of_steps corpus.Corpus.vocab [ s ] in
          Alcotest.(check bool)
            (setup.Corpus.task.Domain.id ^ ": " ^ s)
            true
            (Grammar.accepts setup.Corpus.grammar
               ~min_clauses:setup.Corpus.min_clauses
               ~max_clauses:setup.Corpus.max_clauses tokens))
        steps)
    corpus.Corpus.setups

let test_corpus_pretraining_examples () =
  let examples = Corpus.pretraining_examples corpus (Rng.create 1) ~per_task:5 in
  Alcotest.(check int) "count" (5 * List.length Tasks.all) (List.length examples);
  List.iter
    (fun ex ->
      Alcotest.(check bool) "accepted" true
        (Grammar.accepts ex.Dpoaf_lm.Pretrain.grammar
           ~min_clauses:ex.Dpoaf_lm.Pretrain.min_clauses
           ~max_clauses:ex.Dpoaf_lm.Pretrain.max_clauses
           ex.Dpoaf_lm.Pretrain.tokens))
    examples

let test_corpus_steps_roundtrip () =
  let setup = Corpus.setup_by_id corpus "right_turn_tl" in
  let steps = [ "observe the state of the green traffic light" ] in
  let tokens = Grammar.tokens_of_steps corpus.Corpus.vocab steps in
  Alcotest.(check (list string)) "roundtrip" steps (Corpus.steps_of_tokens corpus tokens);
  ignore setup

(* ---------------- feedback ---------------- *)

let test_feedback_scores_and_caches () =
  let feedback = Feedback.create () in
  let setup = Corpus.setup_by_id corpus "right_turn_tl" in
  let good =
    Grammar.tokens_of_steps corpus.Corpus.vocab
      [
        "observe the state of the green traffic light";
        "if no car from left and no pedestrian at right, execute the action turn right";
      ]
  in
  let bad = Grammar.tokens_of_steps corpus.Corpus.vocab [ "execute the action turn right" ] in
  let sg = Feedback.score_tokens feedback ~corpus setup good in
  let sb = Feedback.score_tokens feedback ~corpus setup bad in
  Alcotest.(check int) "good scores 15" 15 sg;
  Alcotest.(check bool) "bad well below" true (sb <= 9);
  let _ = Feedback.score_tokens feedback ~corpus setup good in
  let stats = Feedback.cache_stats feedback in
  Alcotest.(check int) "one hit" 1 stats.Dpoaf_exec.Cache.hits;
  Alcotest.(check int) "two misses" 2 stats.Dpoaf_exec.Cache.misses;
  Alcotest.(check int) "two entries" 2 stats.Dpoaf_exec.Cache.size

let test_feedback_scenario_model_option () =
  let feedback =
    Feedback.create ~model:(Dpoaf_driving.Models.model Dpoaf_driving.Models.Traffic_light) ()
  in
  let score =
    Feedback.score_steps feedback ~task_id:"right_turn_tl"
      Responses.right_turn_after_ft
  in
  Alcotest.(check int) "after-FT 15/15 on scenario" 15 score

let test_feedback_hardened_scores () =
  let feedback = Feedback.create () in
  let setup = Corpus.setup_by_id corpus "right_turn_tl" in
  let bad =
    Grammar.tokens_of_steps corpus.Corpus.vocab [ "execute the action turn right" ]
  in
  let raw = Feedback.score_tokens feedback ~corpus setup bad in
  let hardened = Feedback.score_tokens_hardened feedback ~corpus setup bad in
  (* repair fixes the invariant (action-safety) rules — Φ5/Φ9/Φ11/Φ15 for a
     reckless turn — but not liveness obligations like Φ8 *)
  Alcotest.(check bool)
    (Printf.sprintf "repair lifts %d -> %d" raw hardened)
    true
    (hardened >= raw + 3)

let test_feedback_hardened_good_not_degraded () =
  let feedback = Feedback.create () in
  let setup = Corpus.setup_by_id corpus "right_turn_tl" in
  let good =
    Grammar.tokens_of_steps corpus.Corpus.vocab
      [
        "observe the state of the green traffic light";
        "if no car from left and no pedestrian at right, execute the action turn right";
      ]
  in
  let raw = Feedback.score_tokens feedback ~corpus setup good in
  let hardened = Feedback.score_tokens_hardened feedback ~corpus setup good in
  Alcotest.(check bool) "no regression" true (hardened >= raw)

let test_feedback_profile_invariants () =
  let feedback = Feedback.create () in
  let setup = Corpus.setup_by_id corpus "right_turn_tl" in
  let spec_names = List.map fst Dpoaf_driving.Specs.all in
  let responses =
    [
      [ "execute the action turn right" ];
      [ "observe the state of the green traffic light";
        "if no car from left and no pedestrian at right, execute the action turn right" ];
      [ "observe the state of the green traffic light" ];
    ]
  in
  List.iter
    (fun steps ->
      let tokens = Grammar.tokens_of_steps corpus.Corpus.vocab steps in
      let p = Feedback.profile_tokens feedback ~corpus setup tokens in
      let score = Feedback.score_tokens feedback ~corpus setup tokens in
      Alcotest.(check int) "provenance length = score" score
        (List.length p.Feedback.satisfied);
      (* satisfied + violated partition the 15-spec rule book, in order *)
      Alcotest.(check (list string)) "partition of the rule book" spec_names
        (List.filter
           (fun n -> List.mem n p.Feedback.satisfied || List.mem n p.Feedback.violated)
           spec_names);
      Alcotest.(check int) "no overlap" 15
        (List.length p.Feedback.satisfied + List.length p.Feedback.violated);
      List.iter
        (fun n ->
          Alcotest.(check bool) "satisfied not also violated" false
            (List.mem n p.Feedback.violated))
        p.Feedback.satisfied)
    responses

let test_provenance_dump () =
  let model = small_model 3 in
  let feedback = Feedback.create () in
  let pairs =
    Dpoaf.collect_pairs corpus feedback model (Rng.create 4) ~m:6 Domain.Training
  in
  List.iter
    (fun (p : Pref_data.pair) ->
      Alcotest.(check int) "chosen provenance matches score" p.Pref_data.chosen_score
        (List.length p.Pref_data.chosen_satisfied);
      Alcotest.(check int) "rejected provenance matches score"
        p.Pref_data.rejected_score
        (List.length p.Pref_data.rejected_satisfied);
      Alcotest.(check bool) "margin specs non-empty" true
        (Pref_data.margin_specs p <> []))
    pairs;
  let path = Filename.temp_file "dpoaf_prov" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Pref_data.dump_provenance path pairs;
  let ic = open_in path in
  let lines = ref 0 in
  (try
     while true do
       let line = input_line ic in
       ignore (Dpoaf_util.Json.parse_exn line);
       incr lines
     done
   with End_of_file -> close_in ic);
  Alcotest.(check int) "one JSON line per pair" (List.length pairs) !lines

(* mining with ~explain attaches the loser's counterexample explanations,
   restricted to the margin specs; mining without it leaves them empty and
   the provenance encoding unchanged *)
let test_provenance_explanations () =
  let model = small_model 3 in
  let collect ~explain =
    let feedback = Feedback.create () in
    Dpoaf.collect_pairs ~explain corpus feedback model (Rng.create 4) ~m:6
      Domain.Training
  in
  let plain = collect ~explain:false in
  let explained = collect ~explain:true in
  Alcotest.(check int) "explain changes no mined pair" (List.length plain)
    (List.length explained);
  List.iter
    (fun (p : Pref_data.pair) ->
      Alcotest.(check (list (pair string string))) "empty without ~explain" []
        p.Pref_data.rejected_explanations)
    plain;
  let with_expl =
    List.filter
      (fun (p : Pref_data.pair) -> p.Pref_data.rejected_explanations <> [])
      explained
  in
  Alcotest.(check bool) "some pair carries explanations" true (with_expl <> []);
  List.iter
    (fun (p : Pref_data.pair) ->
      let margin = Pref_data.margin_specs p in
      List.iter
        (fun (spec, text) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s is a margin spec" spec)
            true (List.mem spec margin);
          Alcotest.(check bool) "explanation names its spec" true
            (let n = String.length spec and h = String.length text in
             let rec go i =
               i + n <= h && (String.sub text i n = spec || go (i + 1))
             in
             go 0))
        p.Pref_data.rejected_explanations;
      (* json: field present exactly when non-empty *)
      let has_field =
        Dpoaf_util.Json.member "rejected_explanations"
          (Pref_data.json_of_pair p)
        <> None
      in
      Alcotest.(check bool) "json field iff non-empty"
        (p.Pref_data.rejected_explanations <> [])
        has_field)
    explained

(* ---------------- pair collection ---------------- *)

let test_collect_pairs_valid () =
  let model = small_model 3 in
  let feedback = Feedback.create () in
  let pairs =
    Dpoaf.collect_pairs corpus feedback model (Rng.create 4) ~m:10 Domain.Training
  in
  Alcotest.(check bool) "pairs found" true (List.length pairs > 10);
  List.iter
    (fun p ->
      Alcotest.(check bool) "chosen beats rejected" true
        (p.Pref_data.chosen_score > p.Pref_data.rejected_score);
      Alcotest.(check bool) "chosen accepted" true
        (Grammar.accepts p.Pref_data.grammar ~min_clauses:p.Pref_data.min_clauses
           ~max_clauses:p.Pref_data.max_clauses p.Pref_data.chosen))
    pairs;
  (* only training tasks contribute *)
  List.iter
    (fun p ->
      let task = Tasks.find p.Pref_data.task_id in
      Alcotest.(check bool) "training split" true (task.Tasks.split = Tasks.Training))
    pairs

(* jobs=1 and jobs=4 must produce identical preference pairs and identical
   spec counts for the same seed: sampling stays on the sequential RNG
   stream and scoring is order-preserved by the scheduler. *)
let test_collect_pairs_jobs_deterministic () =
  let model = small_model 3 in
  let run jobs =
    let feedback = Feedback.create () in
    Dpoaf.collect_pairs ~jobs corpus feedback model (Rng.create 4) ~m:8
      Domain.Training
  in
  let seq = run 1 in
  let par = run 4 in
  Alcotest.(check int) "same pair count" (List.length seq) (List.length par);
  List.iter2
    (fun (a : Pref_data.pair) (b : Pref_data.pair) ->
      Alcotest.(check string) "task" a.Pref_data.task_id b.Pref_data.task_id;
      Alcotest.(check (list int)) "chosen" a.Pref_data.chosen b.Pref_data.chosen;
      Alcotest.(check (list int)) "rejected" a.Pref_data.rejected b.Pref_data.rejected;
      Alcotest.(check int) "chosen score" a.Pref_data.chosen_score b.Pref_data.chosen_score;
      Alcotest.(check int) "rejected score" a.Pref_data.rejected_score
        b.Pref_data.rejected_score)
    seq par

let test_mean_specs_jobs_deterministic () =
  let model = small_model 5 in
  let score jobs =
    let feedback = Feedback.create () in
    Dpoaf.mean_specs_satisfied ~jobs corpus feedback model (Rng.create 6) ~samples:6
      Domain.Training
  in
  Alcotest.(check (float 0.0)) "identical mean spec count" (score 1) (score 4)

let test_mean_specs_range () =
  let model = small_model 5 in
  let feedback = Feedback.create () in
  let score =
    Dpoaf.mean_specs_satisfied corpus feedback model (Rng.create 6) ~samples:6
      Domain.Training
  in
  Alcotest.(check bool)
    (Printf.sprintf "score %.2f within [6,15]" score)
    true
    (score >= 6.0 && score <= 15.0)

(* ---------------- end-to-end (scaled down) ---------------- *)

let test_run_improves () =
  let reference = small_model 7 in
  let feedback = Feedback.create () in
  let config =
    {
      Dpoaf.responses_per_task = 12;
      temperature = 1.0;
      eval_samples = 10;
      trainer =
        {
          Trainer.beta = 0.5;
          lr = 5e-3;
          epochs = 40;
          batch = 16;
          checkpoint_every = 40;
          shuffle_each_epoch = true;
        };
    }
  in
  let result =
    Dpoaf.run ~config ~corpus ~feedback ~reference ~seeds:[ 1 ] (Rng.create 8)
  in
  Alcotest.(check bool) "pairs used" true (result.Dpoaf.pairs_used > 20);
  Alcotest.(check int) "one run" 1 (List.length result.Dpoaf.runs);
  (* curve has epoch 0 and epoch 40 entries *)
  let epochs = List.map (fun c -> c.Dpoaf.epoch) result.Dpoaf.curve in
  Alcotest.(check (list int)) "checkpoint epochs" [ 0; 40 ] epochs;
  let at e =
    List.find (fun c -> c.Dpoaf.epoch = e) result.Dpoaf.curve
  in
  let first = at 0 and last = at 40 in
  Alcotest.(check bool)
    (Printf.sprintf "training improved: %.2f -> %.2f" first.Dpoaf.training_score
       last.Dpoaf.training_score)
    true
    (last.Dpoaf.training_score > first.Dpoaf.training_score);
  (* DPO metrics behave like the paper's Figure 8 *)
  let run = List.hd result.Dpoaf.runs in
  let stats_first = List.hd run.Trainer.stats in
  let stats_last = List.nth run.Trainer.stats (List.length run.Trainer.stats - 1) in
  Alcotest.(check bool) "loss down" true (stats_last.Trainer.loss < stats_first.Trainer.loss);
  Alcotest.(check bool) "accuracy up" true
    (stats_last.Trainer.accuracy > stats_first.Trainer.accuracy);
  Alcotest.(check bool) "margin positive" true (stats_last.Trainer.margin > 0.0)

let test_reinforce_tasks_reward_range () =
  let feedback = Feedback.create () in
  let tasks = Dpoaf.reinforce_tasks corpus feedback Domain.Training in
  Alcotest.(check int) "one per training task" 6 (List.length tasks);
  let task = List.hd tasks in
  let good =
    Grammar.tokens_of_steps corpus.Corpus.vocab
      [
        "observe the state of the green traffic light";
        "if no car from left and no pedestrian at right, execute the action turn right";
      ]
  in
  let r = task.Dpoaf_dpo.Reinforce.reward good in
  Alcotest.(check bool) "reward in [0,1]" true (r >= 0.0 && r <= 1.0);
  Alcotest.(check (float 1e-9)) "good reward = 1" 1.0 r

let test_run_iterative () =
  let reference = small_model 9 in
  let feedback = Feedback.create () in
  let config =
    {
      Dpoaf.responses_per_task = 8;
      temperature = 1.0;
      eval_samples = 6;
      trainer =
        { Trainer.default_config with epochs = 15; checkpoint_every = 0; lr = 5e-3 };
    }
  in
  let rounds, final =
    Dpoaf.run_iterative ~config ~rounds:2 ~corpus ~feedback ~reference
      (Rng.create 10)
  in
  Alcotest.(check int) "round entries" 3 (List.length rounds);
  Alcotest.(check (list int)) "round numbers" [ 0; 1; 2 ]
    (List.map (fun (r : Dpoaf.round_eval) -> r.Dpoaf.round) rounds);
  List.iter
    (fun (r : Dpoaf.round_eval) ->
      Alcotest.(check bool) "scores in range" true
        (r.Dpoaf.training_score >= 6.0 && r.Dpoaf.training_score <= 15.0))
    rounds;
  (* the final policy differs from the reference *)
  Alcotest.(check bool) "policy moved" true
    (not
       (Dpoaf_tensor.Tensor.approx_equal final.Dpoaf_lm.Model.out.Dpoaf_tensor.Lora.a
          reference.Dpoaf_lm.Model.out.Dpoaf_tensor.Lora.a))

let () =
  Alcotest.run "pipeline"
    [
      ( "corpus",
        [
          Alcotest.test_case "setups" `Quick test_corpus_setups;
          Alcotest.test_case "grammar accepts candidates" `Quick
            test_corpus_grammar_accepts_candidates;
          Alcotest.test_case "pretraining examples" `Quick test_corpus_pretraining_examples;
          Alcotest.test_case "steps roundtrip" `Quick test_corpus_steps_roundtrip;
        ] );
      ( "feedback",
        [
          Alcotest.test_case "scores and caches" `Quick test_feedback_scores_and_caches;
          Alcotest.test_case "scenario model option" `Quick test_feedback_scenario_model_option;
          Alcotest.test_case "hardened scores" `Quick test_feedback_hardened_scores;
          Alcotest.test_case "hardened no regression" `Quick
            test_feedback_hardened_good_not_degraded;
          Alcotest.test_case "profile invariants" `Quick
            test_feedback_profile_invariants;
          Alcotest.test_case "provenance dump" `Slow test_provenance_dump;
          Alcotest.test_case "provenance explanations" `Slow
            test_provenance_explanations;
        ] );
      ( "pairs",
        [
          Alcotest.test_case "collect valid" `Slow test_collect_pairs_valid;
          Alcotest.test_case "collect jobs-deterministic" `Slow
            test_collect_pairs_jobs_deterministic;
          Alcotest.test_case "mean specs jobs-deterministic" `Slow
            test_mean_specs_jobs_deterministic;
          Alcotest.test_case "mean specs range" `Slow test_mean_specs_range;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "run improves" `Slow test_run_improves;
          Alcotest.test_case "reinforce tasks" `Quick test_reinforce_tasks_reward_range;
          Alcotest.test_case "iterative" `Slow test_run_iterative;
        ] );
    ]
