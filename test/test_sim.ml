open Dpoaf_sim
open Dpoaf_driving
module Ts = Dpoaf_automata.Ts
module Fsa = Dpoaf_automata.Fsa
module MC = Dpoaf_automata.Model_checker
module Symbol = Dpoaf_logic.Symbol
module Ltl = Dpoaf_logic.Ltl
module Rng = Dpoaf_util.Rng

let tl_model () = Models.model Models.Traffic_light

(* ---------------- world ---------------- *)

let test_world_follows_model () =
  let model = tl_model () in
  let rng = Rng.create 1 in
  let world = World.create ~model rng in
  (* every observed ground-truth label is a label of some model state *)
  for _ = 1 to 200 do
    let label = World.ground_truth world in
    let exists =
      List.exists
        (fun s -> Symbol.equal (Ts.label model s) label)
        (List.init (Ts.n_states model) Fun.id)
    in
    Alcotest.(check bool) "label from model" true exists;
    World.step world
  done

let test_world_no_noise_perceive_exact () =
  let world = World.create ~model:(tl_model ()) (Rng.create 2) in
  for _ = 1 to 100 do
    Alcotest.(check bool) "perceive = truth" true
      (Symbol.equal (World.perceive world) (World.ground_truth world));
    World.step world
  done

let test_world_noise_rates () =
  (* With miss_rate 1.0 nothing is ever seen. *)
  let noise = { World.miss_rate = 1.0; false_rate = 0.0 } in
  let world = World.create ~noise ~model:(tl_model ()) (Rng.create 3) in
  for _ = 1 to 50 do
    Alcotest.(check bool) "blind" true (Symbol.is_empty (World.perceive world));
    World.step world
  done

let test_world_false_positives () =
  let noise = { World.miss_rate = 0.0; false_rate = 1.0 } in
  let world = World.create ~noise ~model:(tl_model ()) (Rng.create 4) in
  let everything = Ts.propositions (tl_model ()) in
  Alcotest.(check bool) "sees everything" true
    (Symbol.equal (World.perceive world) everything)

let test_world_rejects_nontotal () =
  let bad =
    Ts.make ~name:"dead" ~states:[ ("a", Symbol.empty) ] ~transitions:[] ()
  in
  Alcotest.(check bool) "rejected" true
    (try ignore (World.create ~model:bad (Rng.create 0)); false
     with Invalid_argument _ -> true)

(* ---------------- runner / grounding ---------------- *)

let after_ft_controller () =
  fst (Evaluate.controller_of_steps ~name:"after" Responses.right_turn_after_ft)

let before_ft_controller () =
  fst (Evaluate.controller_of_steps ~name:"before" Responses.right_turn_before_ft)

let test_runner_length_and_actions () =
  let world = World.create ~model:(tl_model ()) (Rng.create 5) in
  let trace = Runner.run world (after_ft_controller ()) ~steps:25 (Rng.create 6) in
  Alcotest.(check int) "length" 25 (List.length trace);
  List.iter
    (fun s ->
      Alcotest.(check bool) "some action every instant" false
        (Symbol.is_empty s.Runner.action))
    trace

let test_runner_to_symbols_union () =
  let world = World.create ~model:(tl_model ()) (Rng.create 7) in
  let trace = Runner.run world (after_ft_controller ()) ~steps:10 (Rng.create 8) in
  let words = Runner.to_symbols trace in
  List.iteri
    (fun i s ->
      Alcotest.(check bool) "props in word" true (Symbol.subset s.Runner.props words.(i));
      Alcotest.(check bool) "action in word" true
        (Symbol.subset s.Runner.action words.(i)))
    trace

let test_runner_deterministic_given_seeds () =
  let run () =
    let world = World.create ~model:(tl_model ()) (Rng.create 9) in
    Runner.to_symbols (Runner.run world (after_ft_controller ()) ~steps:20 (Rng.create 10))
  in
  Alcotest.(check bool) "reproducible" true (run () = run ())

(* ---------------- empirical evaluation ---------------- *)

let noise_free ~rollouts ~steps =
  { Empirical.rollouts; steps; noise = World.no_noise; seed = 11 }

let test_safety_rate_good_controller () =
  (* Noise-free, formally verified controller: safety specs hold on every
     rollout (Theorem 1 direction). *)
  let rates =
    Empirical.evaluate ~model:(tl_model ()) ~controller:(after_ft_controller ())
      ~specs:[ ("phi_5", Specs.phi 5); ("phi_3", Specs.phi 3); ("phi_9", Specs.phi 9) ]
      (noise_free ~rollouts:100 ~steps:30)
  in
  List.iter
    (fun (name, rate) -> Alcotest.(check (float 0.0)) (name ^ " perfect") 1.0 rate)
    rates

let test_flawed_controller_violates_phi5_sometimes () =
  let rates =
    Empirical.evaluate ~model:(tl_model ()) ~controller:(before_ft_controller ())
      ~specs:[ ("phi_5", Specs.phi 5) ]
      (noise_free ~rollouts:300 ~steps:40)
  in
  let rate = List.assoc "phi_5" rates in
  Alcotest.(check bool)
    (Printf.sprintf "phi_5 rate %.3f below 1" rate)
    true (rate < 1.0)

let test_before_below_after () =
  (* Figure 11's headline: after fine-tuning, every P_Φ is at least the
     before-fine-tuning value. *)
  let eval controller =
    Empirical.evaluate ~model:(tl_model ()) ~controller ~specs:Specs.first_five
      { Empirical.rollouts = 200; steps = 40;
        noise = { World.miss_rate = 0.02; false_rate = 0.01 }; seed = 12 }
  in
  let before = eval (before_ft_controller ()) in
  let after = eval (after_ft_controller ()) in
  List.iter2
    (fun (name, b) (_, a) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: after %.3f >= before %.3f" name a b)
        true (a >= b))
    before after

let test_noise_degrades_safety () =
  (* Heavy miss noise makes even the verified controller violate Φ5 in the
     recorded (ground-truth) trace: it turns while an unseen car is there. *)
  let rates =
    Empirical.evaluate ~model:(tl_model ()) ~controller:(after_ft_controller ())
      ~specs:[ ("phi_5", Specs.phi 5) ]
      { Empirical.rollouts = 300; steps = 40;
        noise = { World.miss_rate = 0.5; false_rate = 0.0 }; seed = 13 }
  in
  Alcotest.(check bool) "noise causes violations" true (List.assoc "phi_5" rates < 1.0)

let test_empirical_jobs_deterministic () =
  (* Rollout RNG streams are split before the parallel region, so the
     rates must be bit-identical for any worker count. *)
  let eval jobs =
    Empirical.evaluate ~jobs ~model:(tl_model ())
      ~controller:(before_ft_controller ())
      ~specs:Specs.first_five
      { Empirical.rollouts = 120; steps = 30;
        noise = { World.miss_rate = 0.05; false_rate = 0.02 }; seed = 17 }
  in
  let seq = eval 1 and par = eval 4 in
  List.iter2
    (fun (name, a) (_, b) ->
      Alcotest.(check (float 0.0)) (name ^ " identical across jobs") a b)
    seq par

let test_satisfaction_rate_direct () =
  let phi = Ltl.parse_exn "G (p -> q)" in
  let word atoms = Array.of_list (List.map Symbol.of_atoms atoms) in
  let rate =
    Empirical.satisfaction_rate phi
      [ word [ [ "p"; "q" ] ]; word [ [ "p" ] ]; word [ [] ] ]
  in
  Alcotest.(check (float 1e-9)) "2/3" (2.0 /. 3.0) rate

(* ---------------- shield ---------------- *)

let driving_shield () =
  Shield.create
    ~specs:(List.map snd Specs.all)
    ~actions:Vocab.actions

let test_shield_permits () =
  let shield = driving_shield () in
  let turn = Symbol.singleton Vocab.act_turn_right in
  Alcotest.(check bool) "clear: turn allowed" true
    (Shield.permits shield ~observation:Symbol.empty turn);
  Alcotest.(check bool) "car from left: turn blocked" false
    (Shield.permits shield
       ~observation:(Symbol.singleton Vocab.car_from_left)
       turn);
  Alcotest.(check bool) "stop never blocked" true
    (Shield.permits shield
       ~observation:(Symbol.singleton Vocab.car_from_left)
       (Symbol.singleton Vocab.act_stop));
  (* go straight requires the green light (Φ3) *)
  let go = Symbol.singleton Vocab.act_go_straight in
  Alcotest.(check bool) "go blocked on red" false
    (Shield.permits shield ~observation:Symbol.empty go);
  Alcotest.(check bool) "go allowed on green" true
    (Shield.permits shield
       ~observation:(Symbol.singleton Vocab.green_traffic_light)
       go)

let test_shield_fixes_flawed_controller () =
  (* Under perfect perception a shielded flawed controller cannot violate
     the invariant rules. *)
  let shield = driving_shield () in
  let rates =
    Empirical.evaluate ~shield ~model:(tl_model ())
      ~controller:(before_ft_controller ())
      ~specs:[ ("phi_5", Specs.phi 5); ("phi_9", Specs.phi 9) ]
      (noise_free ~rollouts:200 ~steps:40)
  in
  List.iter
    (fun (name, rate) -> Alcotest.(check (float 0.0)) (name ^ " perfect") 1.0 rate)
    rates

let test_shield_helps_under_noise () =
  let shield = driving_shield () in
  let config =
    { Empirical.rollouts = 300; steps = 40;
      noise = { World.miss_rate = 0.05; false_rate = 0.02 }; seed = 21 }
  in
  let rate shielded =
    let shield = if shielded then Some shield else None in
    List.assoc "phi_5"
      (Empirical.evaluate ?shield ~model:(tl_model ())
         ~controller:(before_ft_controller ())
         ~specs:[ ("phi_5", Specs.phi 5) ] config)
  in
  let unshielded = rate false and shielded = rate true in
  Alcotest.(check bool)
    (Printf.sprintf "shield improves phi_5: %.3f -> %.3f" unshielded shielded)
    true
    (shielded > unshielded +. 0.1)

let test_shield_fallback_stops () =
  (* A controller that can only go straight, in a model that is never
     green: the shield masks every move, so the vehicle holds and emits
     stop at every instant. *)
  let shield = driving_shield () in
  let controller =
    Dpoaf_lang.Glm2fsa.controller ~name:"reckless"
      [ Dpoaf_lang.Clause.Act Vocab.act_go_straight ]
  in
  let model = Models.model Models.Wide_median in
  let world = World.create ~model (Rng.create 31) in
  let trace = Runner.run ~shield world controller ~steps:20 (Rng.create 32) in
  List.iter
    (fun step ->
      Alcotest.(check bool) "stop emitted" true
        (Symbol.mem Vocab.act_stop step.Runner.action);
      Alcotest.(check int) "state held" 0 step.Runner.ctrl_state)
    trace

(* Theorem 1 as a property: for random GLM2FSA-style controllers over the
   driving vocabulary, noise-free simulation of a safety spec that the
   model checker certifies never produces a violating rollout. *)
let gen_controller =
  let open QCheck.Gen in
  let cond =
    oneof
      [
        map (fun p -> Dpoaf_lang.Clause.Cond_atom p)
          (oneofl (Models.scenario_propositions Models.Traffic_light));
        map (fun p -> Dpoaf_lang.Clause.Cond_not p)
          (oneofl (Models.scenario_propositions Models.Traffic_light));
      ]
  in
  let clause =
    oneof
      [
        map (fun p -> Dpoaf_lang.Clause.Observe p)
          (oneofl (Models.scenario_propositions Models.Traffic_light));
        map2 (fun c a -> Dpoaf_lang.Clause.If_act (c, a)) cond (oneofl Vocab.actions);
        map (fun c -> Dpoaf_lang.Clause.If_advance c) cond;
        map (fun a -> Dpoaf_lang.Clause.Act a) (oneofl Vocab.actions);
      ]
  in
  QCheck.Gen.map
    (fun clauses -> Dpoaf_lang.Glm2fsa.controller ~name:"random" clauses)
    (QCheck.Gen.list_size (QCheck.Gen.int_range 1 4) clause)

let safety_specs =
  [ Specs.phi 3; Specs.phi 5; Specs.phi 6; Specs.phi 9; Specs.phi 14 ]

let prop_theorem1 =
  QCheck.Test.make ~count:60 ~name:"Thm 1: verified safety holds empirically"
    (QCheck.make gen_controller)
    (fun controller ->
      let model = tl_model () in
      List.for_all
        (fun phi ->
          match MC.check ~model ~controller phi with
          | MC.Fails _ -> true (* theorem says nothing *)
          | MC.Holds ->
              let rates =
                Empirical.evaluate ~model ~controller ~specs:[ ("s", phi) ]
                  (noise_free ~rollouts:30 ~steps:25)
              in
              List.assoc "s" rates = 1.0)
        safety_specs)

let qsuite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests)

let () =
  Alcotest.run "sim"
    [
      ( "world",
        [
          Alcotest.test_case "follows model" `Quick test_world_follows_model;
          Alcotest.test_case "no-noise perceive" `Quick test_world_no_noise_perceive_exact;
          Alcotest.test_case "full miss noise" `Quick test_world_noise_rates;
          Alcotest.test_case "false positives" `Quick test_world_false_positives;
          Alcotest.test_case "rejects non-total" `Quick test_world_rejects_nontotal;
        ] );
      ( "runner",
        [
          Alcotest.test_case "length and actions" `Quick test_runner_length_and_actions;
          Alcotest.test_case "symbols union" `Quick test_runner_to_symbols_union;
          Alcotest.test_case "deterministic" `Quick test_runner_deterministic_given_seeds;
        ] );
      ( "empirical",
        [
          Alcotest.test_case "verified safety perfect" `Quick test_safety_rate_good_controller;
          Alcotest.test_case "flawed violates phi5" `Quick
            test_flawed_controller_violates_phi5_sometimes;
          Alcotest.test_case "after >= before (fig 11)" `Slow test_before_below_after;
          Alcotest.test_case "noise degrades safety" `Quick test_noise_degrades_safety;
          Alcotest.test_case "jobs-deterministic" `Quick
            test_empirical_jobs_deterministic;
          Alcotest.test_case "rate arithmetic" `Quick test_satisfaction_rate_direct;
        ] );
      ( "shield",
        [
          Alcotest.test_case "permits" `Quick test_shield_permits;
          Alcotest.test_case "fixes flawed controller" `Quick
            test_shield_fixes_flawed_controller;
          Alcotest.test_case "helps under noise" `Slow test_shield_helps_under_noise;
          Alcotest.test_case "fallback stops" `Quick test_shield_fallback_stops;
        ] );
      qsuite "properties" [ prop_theorem1 ];
    ]
