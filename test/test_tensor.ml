open Dpoaf_tensor
module Rng = Dpoaf_util.Rng

let check_float = Alcotest.(check (float 1e-6))

(* ---------------- tensor basics ---------------- *)

let test_tensor_create () =
  let t = Tensor.zeros [| 2; 3 |] in
  Alcotest.(check int) "numel" 6 (Tensor.numel t);
  Alcotest.(check (array int)) "dims" [| 2; 3 |] (Tensor.dims t)

let test_tensor_of_array_mismatch () =
  Alcotest.(check bool) "mismatch rejected" true
    (try ignore (Tensor.of_array [| 2 |] [| 1.0; 2.0; 3.0 |]); false
     with Invalid_argument _ -> true)

let test_tensor_matrix () =
  let m = Tensor.matrix [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  check_float "get2" 3.0 (Tensor.get2 m 1 0);
  Tensor.set2 m 1 0 7.0;
  check_float "set2" 7.0 (Tensor.get2 m 1 0);
  Alcotest.(check bool) "ragged rejected" true
    (try ignore (Tensor.matrix [| [| 1.0 |]; [| 1.0; 2.0 |] |]); false
     with Invalid_argument _ -> true)

let test_tensor_map_ops () =
  let a = Tensor.vector [| 1.0; -2.0 |] in
  let b = Tensor.map abs_float a in
  check_float "map" 2.0 (Tensor.get b 1);
  let c = Tensor.map2 ( +. ) a b in
  check_float "map2" 0.0 (Tensor.get c 1);
  check_float "sum" 2.0 (Tensor.sum c);
  check_float "mean" 1.0 (Tensor.mean c);
  check_float "max_abs" 2.0 (Tensor.max_abs a)

let test_tensor_in_place () =
  let a = Tensor.vector [| 1.0; 2.0 |] in
  Tensor.add_in_place a (Tensor.vector [| 1.0; 1.0 |]);
  check_float "add_in_place" 3.0 (Tensor.get a 1);
  Tensor.scale_in_place a 2.0;
  check_float "scale_in_place" 6.0 (Tensor.get a 1);
  Tensor.fill a 0.5;
  check_float "fill" 0.5 (Tensor.get a 0)

(* ---------------- gradient checking ---------------- *)

(* Finite-difference check: for scalar function built from one leaf. *)
let gradient_check ?(tol = 1e-4) ~build leaf_value =
  let analytic =
    let tape = Autodiff.Tape.create () in
    let x = Autodiff.var tape (Tensor.copy leaf_value) in
    let out = build tape x in
    Autodiff.backward tape out;
    Tensor.copy (Autodiff.grad x)
  in
  let eps = 1e-5 in
  let numeric = Tensor.zeros (Tensor.dims leaf_value) in
  for i = 0 to Tensor.numel leaf_value - 1 do
    let eval shift =
      let perturbed = Tensor.copy leaf_value in
      Tensor.set perturbed i (Tensor.get perturbed i +. shift);
      let tape = Autodiff.Tape.create () in
      let x = Autodiff.var tape perturbed in
      Tensor.get (Autodiff.value (build tape x)) 0
    in
    Tensor.set numeric i ((eval eps -. eval (-.eps)) /. (2.0 *. eps))
  done;
  for i = 0 to Tensor.numel leaf_value - 1 do
    let a = Tensor.get analytic i and n = Tensor.get numeric i in
    if abs_float (a -. n) > tol *. (1.0 +. abs_float n) then
      Alcotest.failf "gradient mismatch at %d: analytic %.6f vs numeric %.6f" i a n
  done

let vec = Tensor.vector

let test_grad_sum () =
  gradient_check (vec [| 1.0; 2.0; 3.0 |]) ~build:(fun tape x -> Autodiff.sum tape x)

let test_grad_mean () =
  gradient_check (vec [| 1.0; -2.0 |]) ~build:(fun tape x -> Autodiff.mean tape x)

let test_grad_mul_sum () =
  gradient_check (vec [| 0.5; -1.5; 2.0 |]) ~build:(fun tape x ->
      Autodiff.sum tape (Autodiff.mul tape x x))

let test_grad_tanh () =
  gradient_check (vec [| 0.3; -0.7; 1.2 |]) ~build:(fun tape x ->
      Autodiff.sum tape (Autodiff.tanh_ tape x))

let test_grad_sigmoid () =
  gradient_check (vec [| 0.3; -0.7 |]) ~build:(fun tape x ->
      Autodiff.sum tape (Autodiff.sigmoid tape x))

let test_grad_relu () =
  gradient_check (vec [| 0.3; -0.7; 1.2 |]) ~build:(fun tape x ->
      Autodiff.sum tape (Autodiff.relu tape x))

let test_grad_softplus () =
  gradient_check (vec [| -30.0; -0.5; 0.0; 2.0; 30.0 |]) ~build:(fun tape x ->
      Autodiff.sum tape (Autodiff.softplus tape x))

let test_grad_exp_log () =
  gradient_check (vec [| 0.5; 1.5 |]) ~build:(fun tape x ->
      Autodiff.sum tape (Autodiff.log_ tape (Autodiff.exp_ tape x)))

let test_grad_log_softmax () =
  gradient_check (vec [| 0.1; 0.9; -0.4; 0.3 |]) ~build:(fun tape x ->
      Autodiff.pick tape (Autodiff.log_softmax tape x) 1)

let test_grad_log_softmax_weighted () =
  gradient_check (vec [| 0.1; 0.9; -0.4 |]) ~build:(fun tape x ->
      let ls = Autodiff.log_softmax tape x in
      Autodiff.add_list tape
        [ Autodiff.pick tape ls 0; Autodiff.scale tape 2.0 (Autodiff.pick tape ls 2) ])

let test_grad_matvec_wrt_matrix () =
  let x = vec [| 0.5; -1.0; 2.0 |] in
  gradient_check
    (Tensor.matrix [| [| 1.0; 0.0; 2.0 |]; [| -1.0; 3.0; 0.5 |] |])
    ~build:(fun tape m ->
      let xv = Autodiff.const tape x in
      Autodiff.sum tape (Autodiff.tanh_ tape (Autodiff.matvec tape m xv)))

let test_grad_matvec_wrt_vector () =
  let m = Tensor.matrix [| [| 1.0; 0.0; 2.0 |]; [| -1.0; 3.0; 0.5 |] |] in
  gradient_check (vec [| 0.5; -1.0; 2.0 |]) ~build:(fun tape x ->
      let mv = Autodiff.const tape m in
      Autodiff.sum tape (Autodiff.tanh_ tape (Autodiff.matvec tape mv x)))

let test_grad_rows_mean () =
  gradient_check
    (Tensor.matrix [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |]; [| 5.0; 6.0 |] |])
    ~build:(fun tape m ->
      Autodiff.sum tape (Autodiff.tanh_ tape (Autodiff.rows_mean tape m [ 0; 2; 2 ])))

let test_grad_gather_matvec_m () =
  let x = vec [| 0.5; -1.0 |] in
  gradient_check
    (Tensor.matrix [| [| 1.0; 0.0 |]; [| -1.0; 3.0 |]; [| 0.2; 0.7 |] |])
    ~build:(fun tape m ->
      let xv = Autodiff.const tape x in
      Autodiff.sum tape
        (Autodiff.tanh_ tape (Autodiff.gather_matvec tape m xv [ 2; 0; 2 ])))

let test_grad_gather_matvec_x () =
  let m = Tensor.matrix [| [| 1.0; 0.0 |]; [| -1.0; 3.0 |]; [| 0.2; 0.7 |] |] in
  gradient_check (vec [| 0.5; -1.0 |]) ~build:(fun tape x ->
      let mv = Autodiff.const tape m in
      Autodiff.sum tape
        (Autodiff.log_softmax tape (Autodiff.gather_matvec tape mv x [ 0; 1; 2 ])))

let test_grad_gather () =
  gradient_check (vec [| 1.0; 2.0; 3.0 |]) ~build:(fun tape v ->
      Autodiff.sum tape (Autodiff.tanh_ tape (Autodiff.gather tape v [ 1; 1; 2 ])))

let test_grad_dot () =
  let b = vec [| 2.0; -1.0 |] in
  gradient_check (vec [| 0.5; 1.5 |]) ~build:(fun tape x ->
      Autodiff.dot tape x (Autodiff.const tape b))

let test_grad_composite_lm_like () =
  (* A miniature of the LM forward pass: logits = W (mean of embedding
     rows); loss = -log softmax picked at target. *)
  let w = Tensor.matrix [| [| 0.2; -0.1 |]; [| 0.4; 0.3 |]; [| -0.5; 0.1 |] |] in
  gradient_check
    (Tensor.matrix [| [| 1.0; 0.5 |]; [| -0.3; 0.8 |]; [| 0.2; -0.6 |] |])
    ~build:(fun tape emb ->
      let h = Autodiff.rows_mean tape emb [ 0; 1 ] in
      let logits = Autodiff.matvec tape (Autodiff.const tape w) h in
      Autodiff.neg tape (Autodiff.pick tape (Autodiff.log_softmax tape logits) 2))

let test_backward_requires_scalar () =
  let tape = Autodiff.Tape.create () in
  let x = Autodiff.var tape (vec [| 1.0; 2.0 |]) in
  Alcotest.(check bool) "non-scalar rejected" true
    (try Autodiff.backward tape x; false with Invalid_argument _ -> true)

let test_backward_resets_grads () =
  let tape = Autodiff.Tape.create () in
  let x = Autodiff.var tape (vec [| 1.0; 2.0 |]) in
  let out = Autodiff.sum tape x in
  Autodiff.backward tape out;
  Autodiff.backward tape out;
  check_float "grad not doubled" 1.0 (Tensor.get (Autodiff.grad x) 0)

(* ---------------- optimizers ---------------- *)

let quadratic_loss p =
  (* f(x) = sum (x - 3)^2, gradient 2(x-3) *)
  Tensor.map (fun x -> 2.0 *. (x -. 3.0)) p

let test_sgd_converges () =
  let p = Optim.param "x" (Tensor.vector [| 0.0; 10.0 |]) in
  let opt = Optim.Sgd.create ~lr:0.1 () in
  for _ = 1 to 200 do
    Optim.Sgd.step opt [ (p, quadratic_loss p.Optim.tensor) ]
  done;
  Alcotest.(check bool) "near 3" true
    (abs_float (Tensor.get p.Optim.tensor 0 -. 3.0) < 1e-3
     && abs_float (Tensor.get p.Optim.tensor 1 -. 3.0) < 1e-3)

let test_sgd_momentum_converges () =
  let p = Optim.param "x" (Tensor.vector [| 0.0 |]) in
  let opt = Optim.Sgd.create ~momentum:0.9 ~lr:0.01 () in
  for _ = 1 to 500 do
    Optim.Sgd.step opt [ (p, quadratic_loss p.Optim.tensor) ]
  done;
  Alcotest.(check bool) "near 3" true (abs_float (Tensor.get p.Optim.tensor 0 -. 3.0) < 1e-2)

let test_adam_converges () =
  let p = Optim.param "x" (Tensor.vector [| 0.0; 10.0 |]) in
  let opt = Optim.Adam.create ~lr:0.1 () in
  for _ = 1 to 500 do
    Optim.Adam.step opt [ (p, quadratic_loss p.Optim.tensor) ]
  done;
  Alcotest.(check bool) "near 3" true
    (abs_float (Tensor.get p.Optim.tensor 0 -. 3.0) < 1e-2
     && abs_float (Tensor.get p.Optim.tensor 1 -. 3.0) < 1e-2)

let test_optim_shape_mismatch () =
  let p = Optim.param "x" (Tensor.vector [| 0.0 |]) in
  let opt = Optim.Sgd.create ~lr:0.1 () in
  Alcotest.(check bool) "rejected" true
    (try Optim.Sgd.step opt [ (p, Tensor.vector [| 1.0; 2.0 |]) ]; false
     with Invalid_argument _ -> true)

let test_clip () =
  let g = Optim.clip_by_max_abs 1.0 (Tensor.vector [| 5.0; -3.0; 0.5 |]) in
  check_float "clip hi" 1.0 (Tensor.get g 0);
  check_float "clip lo" (-1.0) (Tensor.get g 1);
  check_float "clip pass" 0.5 (Tensor.get g 2)

(* ---------------- LoRA ---------------- *)

let test_lora_starts_at_base () =
  let rng = Rng.create 1 in
  let base = Tensor.matrix [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let l = Lora.create rng ~base ~rank:1 in
  Alcotest.(check bool) "effective = base at init" true
    (Tensor.approx_equal (Lora.effective l) base)

let test_lora_forward_matches_effective () =
  let rng = Rng.create 2 in
  let base = Tensor.gaussian rng [| 4; 3 |] ~stddev:1.0 in
  let l = Lora.create rng ~base ~rank:2 in
  (* perturb A so the adapter is non-trivial *)
  Tensor.set2 l.Lora.a 0 0 0.5;
  Tensor.set2 l.Lora.a 3 1 (-0.7);
  let x = Tensor.vector [| 0.3; -0.2; 0.9 |] in
  let tape = Autodiff.Tape.create () in
  let forward =
    Lora.forward tape l
      ~base_node:(Autodiff.const tape l.Lora.base)
      ~a_node:(Autodiff.var tape l.Lora.a)
      ~b_node:(Autodiff.var tape l.Lora.b)
      (Autodiff.const tape x)
  in
  let eff = Lora.effective l in
  let expected =
    Tensor.vector
      (Array.init 4 (fun i ->
           let acc = ref 0.0 in
           for j = 0 to 2 do
             acc := !acc +. (Tensor.get2 eff i j *. Tensor.get x j)
           done;
           !acc))
  in
  Alcotest.(check bool) "forward = effective multiply" true
    (Tensor.approx_equal ~tol:1e-9 (Autodiff.value forward) expected)

let test_lora_params () =
  let rng = Rng.create 3 in
  let l = Lora.create rng ~base:(Tensor.zeros [| 2; 2 |]) ~rank:1 in
  let ps = Lora.params ~prefix:"out" l in
  Alcotest.(check (list string)) "names" [ "out.lora_a"; "out.lora_b" ]
    (List.map (fun p -> p.Optim.name) ps)

let test_lora_bad_args () =
  let rng = Rng.create 4 in
  Alcotest.(check bool) "vector base rejected" true
    (try ignore (Lora.create rng ~base:(Tensor.vector [| 1.0 |]) ~rank:1); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "rank 0 rejected" true
    (try ignore (Lora.create rng ~base:(Tensor.zeros [| 2; 2 |]) ~rank:0); false
     with Invalid_argument _ -> true)

(* ---------------- fused kernels ---------------- *)

(* The reference composition each fused node must match bit-for-bit. *)
let unfused_head tape ~base ~a ~b ~bias ~h ~allowed ~target_pos =
  let wx = Autodiff.gather_matvec tape base h allowed in
  let bh = Autodiff.matvec tape b h in
  let abx = Autodiff.gather_matvec tape a bh allowed in
  let bias = Autodiff.gather tape bias allowed in
  let logits = Autodiff.add tape (Autodiff.add tape wx abx) bias in
  Autodiff.pick tape (Autodiff.log_softmax tape logits) target_pos

let lora_case () =
  let base =
    Tensor.matrix
      [|
        [| 0.4; -0.2; 0.1 |];
        [| 0.3; 0.5; -0.6 |];
        [| -0.1; 0.2; 0.7 |];
        [| 0.8; -0.3; 0.2 |];
      |]
  in
  let a =
    Tensor.matrix
      [| [| 0.2; -0.4 |]; [| 0.1; 0.3 |]; [| -0.5; 0.2 |]; [| 0.6; 0.1 |] |]
  in
  let b = Tensor.matrix [| [| 0.3; 0.1; -0.2 |]; [| -0.4; 0.5; 0.2 |] |] in
  let bias = Tensor.vector [| 0.05; -0.1; 0.2; 0.0 |] in
  let h = Tensor.vector [| 0.6; -0.3; 0.8 |] in
  (* a duplicate in [allowed] exercises adjoint accumulation on shared rows *)
  (base, a, b, bias, h, [ 0; 2; 2; 3 ], 1)

let test_grad_bow_hidden () =
  let emb =
    Tensor.matrix [| [| 0.3; -0.5 |]; [| 0.7; 0.1 |]; [| -0.2; 0.9 |] |]
  in
  gradient_check
    ~build:(fun tape m ->
      Autodiff.sum tape (Autodiff.bow_hidden tape m [ 0; 2; 2 ]))
    emb

let fused_head_check pick_leaf =
  let base, a, b, bias, h, allowed, target_pos = lora_case () in
  let leaf, build =
    pick_leaf ~base ~a ~b ~bias ~h
      (fun tape ~base ~a ~b ~bias ~h ->
        Autodiff.lora_logit_logprob tape ~base ~a ~b ~bias ~h ~allowed
          ~target_pos)
  in
  gradient_check ~build leaf

let test_grad_fused_head_base () =
  fused_head_check (fun ~base ~a ~b ~bias ~h head ->
      ( base,
        fun tape x ->
          head tape ~base:x ~a:(Autodiff.const tape a)
            ~b:(Autodiff.const tape b) ~bias:(Autodiff.const tape bias)
            ~h:(Autodiff.const tape h) ))

let test_grad_fused_head_a () =
  fused_head_check (fun ~base ~a ~b ~bias ~h head ->
      ( a,
        fun tape x ->
          head tape ~base:(Autodiff.const tape base) ~a:x
            ~b:(Autodiff.const tape b) ~bias:(Autodiff.const tape bias)
            ~h:(Autodiff.const tape h) ))

let test_grad_fused_head_b () =
  fused_head_check (fun ~base ~a ~b ~bias ~h head ->
      ( b,
        fun tape x ->
          head tape ~base:(Autodiff.const tape base)
            ~a:(Autodiff.const tape a) ~b:x
            ~bias:(Autodiff.const tape bias) ~h:(Autodiff.const tape h) ))

let test_grad_fused_head_bias () =
  fused_head_check (fun ~base ~a ~b ~bias ~h head ->
      ( bias,
        fun tape x ->
          head tape ~base:(Autodiff.const tape base)
            ~a:(Autodiff.const tape a) ~b:(Autodiff.const tape b) ~bias:x
            ~h:(Autodiff.const tape h) ))

let test_grad_fused_head_h () =
  fused_head_check (fun ~base ~a ~b ~bias ~h head ->
      ( h,
        fun tape x ->
          head tape ~base:(Autodiff.const tape base)
            ~a:(Autodiff.const tape a) ~b:(Autodiff.const tape b)
            ~bias:(Autodiff.const tape bias) ~h:x ))

(* bitwise equality: the fusion contract is exact floats, not approximate *)
let same_bits x y =
  let dx = x.Tensor.data and dy = y.Tensor.data in
  Array.length dx = Array.length dy
  && begin
       let ok = ref true in
       Array.iteri
         (fun i v ->
           if Int64.bits_of_float v <> Int64.bits_of_float dy.(i) then
             ok := false)
         dx;
       !ok
     end

let random_head_case seed =
  let rng = Rng.create (0x5eed + seed) in
  let d = 1 + Rng.int rng 6 in
  let rank = 1 + Rng.int rng 4 in
  let vocab = 3 + Rng.int rng 8 in
  let base = Tensor.gaussian rng [| vocab; d |] ~stddev:1.0 in
  let a = Tensor.gaussian rng [| vocab; rank |] ~stddev:0.8 in
  let b = Tensor.gaussian rng [| rank; d |] ~stddev:0.8 in
  let bias = Tensor.gaussian rng [| vocab |] ~stddev:0.5 in
  let h = Tensor.gaussian rng [| d |] ~stddev:1.0 in
  (* duplicates allowed on purpose *)
  let n_allowed = 1 + Rng.int rng (vocab + 2) in
  let allowed = List.init n_allowed (fun _ -> Rng.int rng vocab) in
  let target_pos = Rng.int rng n_allowed in
  (base, a, b, bias, h, allowed, target_pos)

(* Run one scoring head (fused or unfused) from fresh leaves and return the
   output value plus every leaf gradient. *)
let run_head head (base, a, b, bias, h, allowed, target_pos) =
  let tape = Autodiff.Tape.create () in
  let base_n = Autodiff.var tape (Tensor.copy base) in
  let a_n = Autodiff.var tape (Tensor.copy a) in
  let b_n = Autodiff.var tape (Tensor.copy b) in
  let bias_n = Autodiff.var tape (Tensor.copy bias) in
  let h_n = Autodiff.var tape (Tensor.copy h) in
  let out =
    head tape ~base:base_n ~a:a_n ~b:b_n ~bias:bias_n ~h:h_n ~allowed
      ~target_pos
  in
  Autodiff.backward tape out;
  ( Tensor.copy (Autodiff.value out),
    List.map
      (fun n -> Tensor.copy (Autodiff.grad n))
      [ base_n; a_n; b_n; bias_n; h_n ] )

let prop_fused_head_bit_identical =
  QCheck.Test.make ~count:100 ~name:"fused head bit-identical to unfused"
    QCheck.small_nat (fun seed ->
      let case = random_head_case seed in
      let v_f, g_f = run_head Autodiff.lora_logit_logprob case in
      let v_u, g_u = run_head unfused_head case in
      same_bits v_f v_u && List.for_all2 same_bits g_f g_u)

let prop_fused_bow_bit_identical =
  QCheck.Test.make ~count:100 ~name:"fused bow hidden bit-identical"
    QCheck.small_nat (fun seed ->
      let rng = Rng.create (0xb0b + seed) in
      let vocab = 2 + Rng.int rng 8 in
      let d = 1 + Rng.int rng 6 in
      let emb = Tensor.gaussian rng [| vocab; d |] ~stddev:1.0 in
      let n_rows = 1 + Rng.int rng (vocab + 3) in
      let rows = List.init n_rows (fun _ -> Rng.int rng vocab) in
      let run fused =
        let tape = Autodiff.Tape.create () in
        let m = Autodiff.var tape (Tensor.copy emb) in
        let hid =
          if fused then Autodiff.bow_hidden tape m rows
          else Autodiff.tanh_ tape (Autodiff.rows_mean tape m rows)
        in
        (* weight the components so the pulled adjoint is non-uniform *)
        let w =
          Autodiff.const tape
            (Tensor.init [| d |] (fun i -> 0.5 +. (0.25 *. float_of_int i)))
        in
        let out = Autodiff.dot tape hid w in
        Autodiff.backward tape out;
        (Tensor.copy (Autodiff.value hid), Tensor.copy (Autodiff.grad m))
      in
      let v_f, g_f = run true in
      let v_u, g_u = run false in
      same_bits v_f v_u && same_bits g_f g_u)

(* ---------------- tape reuse ---------------- *)

(* Build a small lm-like graph whose leaf values depend on [salt], run
   backward, and return (node count, output bits, leaf gradients). *)
let reuse_pass tape salt =
  let base, a, b, bias, h, allowed, target_pos = lora_case () in
  let perturb t = Tensor.map (fun x -> x +. (0.01 *. float_of_int salt)) t in
  let base_n = Autodiff.var tape (perturb base) in
  let a_n = Autodiff.var tape (perturb a) in
  let b_n = Autodiff.var tape (perturb b) in
  let bias_n = Autodiff.var tape (perturb bias) in
  let h_n = Autodiff.var tape (perturb h) in
  let lp =
    Autodiff.lora_logit_logprob tape ~base:base_n ~a:a_n ~b:b_n ~bias:bias_n
      ~h:h_n ~allowed ~target_pos
  in
  let hid = Autodiff.bow_hidden tape base_n [ 0; 1; 1 ] in
  let out = Autodiff.add tape lp (Autodiff.mean tape hid) in
  Autodiff.backward tape out;
  ( Autodiff.Tape.length tape,
    Tensor.copy (Autodiff.value out),
    List.map
      (fun n -> Tensor.copy (Autodiff.grad n))
      [ base_n; a_n; b_n; bias_n; h_n ] )

let test_tape_reuse_bitwise () =
  let fresh salt = reuse_pass (Autodiff.Tape.create ()) salt in
  let tape = Autodiff.Tape.create () in
  let reused salt =
    Autodiff.Tape.reset tape;
    reuse_pass tape salt
  in
  List.iter
    (fun salt ->
      let n_f, v_f, g_f = fresh salt in
      let n_r, v_r, g_r = reused salt in
      Alcotest.(check int) "node count" n_f n_r;
      Alcotest.(check bool) "output bits" true (same_bits v_f v_r);
      List.iteri
        (fun i (gf, gr) ->
          Alcotest.(check bool)
            (Printf.sprintf "grad %d bits" i)
            true (same_bits gf gr))
        (List.combine g_f g_r))
    [ 1; 2 ];
  let stats = Autodiff.Tape.stats tape in
  Alcotest.(check int) "resets" 2 stats.Autodiff.Tape.resets;
  Alcotest.(check bool) "buffers reused" true
    (stats.Autodiff.Tape.buffers_reused > 0)

let test_tape_stats_accounting () =
  let tape = Autodiff.Tape.create () in
  let pass () =
    let x = Autodiff.var tape (vec [| 1.0; 2.0; 3.0 |]) in
    Autodiff.backward tape (Autodiff.sum tape x)
  in
  pass ();
  let s1 = Autodiff.Tape.stats tape in
  Alcotest.(check int) "live nodes" 2 s1.Autodiff.Tape.live_nodes;
  Alcotest.(check int) "nothing reused yet" 0 s1.Autodiff.Tape.buffers_reused;
  Autodiff.Tape.reset tape;
  Alcotest.(check int) "empty after reset" 0 (Autodiff.Tape.length tape);
  pass ();
  let s2 = Autodiff.Tape.stats tape in
  Alcotest.(check bool) "pool served the second pass" true
    (s2.Autodiff.Tape.buffers_reused > 0);
  Alcotest.(check int) "no new allocations" s1.Autodiff.Tape.buffers_allocated
    s2.Autodiff.Tape.buffers_allocated

let () =
  Alcotest.run "tensor"
    [
      ( "tensor",
        [
          Alcotest.test_case "create" `Quick test_tensor_create;
          Alcotest.test_case "of_array mismatch" `Quick test_tensor_of_array_mismatch;
          Alcotest.test_case "matrix" `Quick test_tensor_matrix;
          Alcotest.test_case "map ops" `Quick test_tensor_map_ops;
          Alcotest.test_case "in place" `Quick test_tensor_in_place;
        ] );
      ( "gradients",
        [
          Alcotest.test_case "sum" `Quick test_grad_sum;
          Alcotest.test_case "mean" `Quick test_grad_mean;
          Alcotest.test_case "mul" `Quick test_grad_mul_sum;
          Alcotest.test_case "tanh" `Quick test_grad_tanh;
          Alcotest.test_case "sigmoid" `Quick test_grad_sigmoid;
          Alcotest.test_case "relu" `Quick test_grad_relu;
          Alcotest.test_case "exp/log" `Quick test_grad_exp_log;
          Alcotest.test_case "softplus" `Quick test_grad_softplus;
          Alcotest.test_case "log_softmax" `Quick test_grad_log_softmax;
          Alcotest.test_case "log_softmax weighted" `Quick test_grad_log_softmax_weighted;
          Alcotest.test_case "matvec d/dM" `Quick test_grad_matvec_wrt_matrix;
          Alcotest.test_case "matvec d/dx" `Quick test_grad_matvec_wrt_vector;
          Alcotest.test_case "rows_mean" `Quick test_grad_rows_mean;
          Alcotest.test_case "gather_matvec d/dM" `Quick test_grad_gather_matvec_m;
          Alcotest.test_case "gather_matvec d/dx" `Quick test_grad_gather_matvec_x;
          Alcotest.test_case "gather" `Quick test_grad_gather;
          Alcotest.test_case "dot" `Quick test_grad_dot;
          Alcotest.test_case "composite lm-like" `Quick test_grad_composite_lm_like;
          Alcotest.test_case "scalar required" `Quick test_backward_requires_scalar;
          Alcotest.test_case "grad reset" `Quick test_backward_resets_grads;
        ] );
      ( "fused kernels",
        [
          Alcotest.test_case "bow_hidden fd" `Quick test_grad_bow_hidden;
          Alcotest.test_case "head fd d/dbase" `Quick test_grad_fused_head_base;
          Alcotest.test_case "head fd d/da" `Quick test_grad_fused_head_a;
          Alcotest.test_case "head fd d/db" `Quick test_grad_fused_head_b;
          Alcotest.test_case "head fd d/dbias" `Quick test_grad_fused_head_bias;
          Alcotest.test_case "head fd d/dh" `Quick test_grad_fused_head_h;
          QCheck_alcotest.to_alcotest prop_fused_head_bit_identical;
          QCheck_alcotest.to_alcotest prop_fused_bow_bit_identical;
        ] );
      ( "tape reuse",
        [
          Alcotest.test_case "bitwise vs fresh tapes" `Quick test_tape_reuse_bitwise;
          Alcotest.test_case "stats accounting" `Quick test_tape_stats_accounting;
        ] );
      ( "optim",
        [
          Alcotest.test_case "sgd" `Quick test_sgd_converges;
          Alcotest.test_case "sgd momentum" `Quick test_sgd_momentum_converges;
          Alcotest.test_case "adam" `Quick test_adam_converges;
          Alcotest.test_case "shape mismatch" `Quick test_optim_shape_mismatch;
          Alcotest.test_case "clip" `Quick test_clip;
        ] );
      ( "lora",
        [
          Alcotest.test_case "starts at base" `Quick test_lora_starts_at_base;
          Alcotest.test_case "forward = effective" `Quick test_lora_forward_matches_effective;
          Alcotest.test_case "params" `Quick test_lora_params;
          Alcotest.test_case "bad args" `Quick test_lora_bad_args;
        ] );
    ]
