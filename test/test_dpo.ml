open Dpoaf_dpo
open Dpoaf_lm
module Rng = Dpoaf_util.Rng

let clauses =
  [ "observe the light"; "if green go"; "if red stop"; "turn right"; "go now" ]

let vocab = Vocab.of_texts ("steps for the task" :: clauses)
let grammar = Grammar.of_clauses vocab clauses
let prompt = Vocab.encode vocab "steps for the task"

let make_model seed =
  Model.create (Rng.create seed) { Model.dim = 8; context = 6; lora_rank = 2; arch = Model.Bow } vocab

let tokens steps = Grammar.tokens_of_steps vocab steps

let phis n = List.init n (fun i -> Printf.sprintf "phi_%d" (i + 1))

let mk_pair ?(task_id = "t") chosen rejected =
  {
    Pref_data.task_id;
    prompt;
    chosen = tokens chosen;
    rejected = tokens rejected;
    chosen_score = 15;
    rejected_score = 9;
    chosen_satisfied = phis 15;
    rejected_satisfied = phis 9;
    chosen_vacuous = [];
    rejected_explanations = [];
    grammar;
    min_clauses = 1;
    max_clauses = 3;
  }

(* ---------------- preference data ---------------- *)

let test_pairs_of_scored () =
  let scored =
    [
      { Pref_data.tokens = tokens [ "turn right" ]; score = 10; satisfied = phis 10;
        vacuous = [] };
      { Pref_data.tokens = tokens [ "go now" ]; score = 12; satisfied = phis 12;
        vacuous = [] };
      { Pref_data.tokens = tokens [ "if red stop" ]; score = 10; satisfied = phis 10;
        vacuous = [] };
    ]
  in
  let pairs =
    Pref_data.pairs_of_scored ~task_id:"t" ~prompt ~grammar ~min_clauses:1
      ~max_clauses:3 scored
  in
  (* (turn right, go now) and (go now, if red stop) have distinct scores;
     (turn right, if red stop) ties and is dropped. *)
  Alcotest.(check int) "two pairs" 2 (List.length pairs);
  List.iter
    (fun p ->
      Alcotest.(check bool) "chosen beats rejected" true
        (p.Pref_data.chosen_score > p.Pref_data.rejected_score);
      Alcotest.(check bool) "chosen is 'go now'" true
        (p.Pref_data.chosen = tokens [ "go now" ]))
    pairs

let test_pairs_dedup () =
  let s =
    { Pref_data.tokens = tokens [ "turn right" ]; score = 10; satisfied = phis 10;
      vacuous = [] }
  in
  let s' =
    { Pref_data.tokens = tokens [ "go now" ]; score = 5; satisfied = phis 5;
      vacuous = [] }
  in
  let pairs =
    Pref_data.pairs_of_scored ~task_id:"t" ~prompt ~grammar ~min_clauses:1
      ~max_clauses:3 [ s; s; s; s' ]
  in
  Alcotest.(check int) "duplicates collapse" 1 (List.length pairs)

let test_count_possible () =
  Alcotest.(check int) "C2(8)" 28 (Pref_data.count_possible 8);
  Alcotest.(check int) "C2(1)" 0 (Pref_data.count_possible 1)

let test_pair_provenance () =
  (* pairs carry each side's satisfied-spec names; margin_specs is their
     set difference *)
  let a =
    { Pref_data.tokens = tokens [ "turn right" ]; score = 3;
      satisfied = [ "phi_1"; "phi_4"; "phi_7" ]; vacuous = [ "phi_7" ] }
  in
  let b =
    { Pref_data.tokens = tokens [ "go now" ]; score = 1; satisfied = [ "phi_4" ];
      vacuous = [] }
  in
  match
    Pref_data.pairs_of_scored ~task_id:"t" ~prompt ~grammar ~min_clauses:1
      ~max_clauses:3 [ a; b ]
  with
  | [ p ] ->
      Alcotest.(check (list string)) "chosen satisfied"
        [ "phi_1"; "phi_4"; "phi_7" ] p.Pref_data.chosen_satisfied;
      Alcotest.(check (list string)) "rejected satisfied" [ "phi_4" ]
        p.Pref_data.rejected_satisfied;
      Alcotest.(check (list string)) "margin specs" [ "phi_1"; "phi_7" ]
        (Pref_data.margin_specs p);
      Alcotest.(check (list string)) "chosen vacuous" [ "phi_7" ]
        p.Pref_data.chosen_vacuous;
      (* phi_1 in the margin is genuinely satisfied, so the margin stands *)
      Alcotest.(check bool) "margin not fully vacuous" false
        (Pref_data.vacuous_margin p);
      let json = Dpoaf_util.Json.to_string (Pref_data.json_of_pair p) in
      let parsed = Dpoaf_util.Json.parse_exn json in
      Alcotest.(check (option string)) "task round-trips" (Some "t")
        Dpoaf_util.Json.(Option.bind (member "task" parsed) to_str);
      Alcotest.(check (option bool)) "vacuous_margin round-trips" (Some false)
        Dpoaf_util.Json.(
          Option.bind (member "vacuous_margin" parsed) (function
            | Bool b -> Some b
            | _ -> None))
  | pairs -> Alcotest.failf "expected one pair, got %d" (List.length pairs)

let test_vacuous_margin () =
  (* every spec separating chosen from rejected holds only vacuously: the
     pair's formal justification is hollow *)
  let a =
    { Pref_data.tokens = tokens [ "turn right" ]; score = 2;
      satisfied = [ "phi_1"; "phi_7" ]; vacuous = [ "phi_7" ] }
  in
  let b =
    { Pref_data.tokens = tokens [ "go now" ]; score = 1; satisfied = [ "phi_1" ];
      vacuous = [] }
  in
  match
    Pref_data.pairs_of_scored ~task_id:"t" ~prompt ~grammar ~min_clauses:1
      ~max_clauses:3 [ a; b ]
  with
  | [ p ] ->
      Alcotest.(check (list string)) "margin is phi_7" [ "phi_7" ]
        (Pref_data.margin_specs p);
      Alcotest.(check bool) "flagged" true (Pref_data.vacuous_margin p)
  | pairs -> Alcotest.failf "expected one pair, got %d" (List.length pairs)

(* ---------------- loss and metrics ---------------- *)

let test_initial_margin_zero () =
  (* Policy = reference at initialization: margin 0, loss = log 2. *)
  let reference = make_model 5 in
  let policy = Model.clone reference in
  let pair = mk_pair [ "if green go" ] [ "turn right" ] in
  let stats = Dpo.evaluate ~policy ~reference ~beta:0.5 [ pair ] in
  Alcotest.(check (float 1e-9)) "margin 0" 0.0 stats.Dpo.margin;
  Alcotest.(check (float 1e-9)) "loss log 2" (log 2.0) stats.Dpo.loss

let test_loss_node_matches_evaluate () =
  let reference = make_model 6 in
  let policy = make_model 7 in
  let pair = mk_pair [ "if green go" ] [ "turn right" ] in
  let refs = Dpo.reference_logprobs reference pair in
  let tape = Dpoaf_tensor.Autodiff.Tape.create () in
  let bound = Model.bind policy tape in
  let loss_node, _, _ = Dpo.pair_loss_node ~policy ~bound ~beta:0.5 refs pair in
  let stats = Dpo.evaluate ~policy ~reference ~beta:0.5 [ pair ] in
  Alcotest.(check (float 1e-9)) "node = eval"
    stats.Dpo.loss
    (Dpoaf_tensor.Tensor.get (Dpoaf_tensor.Autodiff.value loss_node) 0)

let test_evaluate_empty () =
  let m = make_model 1 in
  let stats = Dpo.evaluate ~policy:m ~reference:m ~beta:0.5 [] in
  Alcotest.(check (float 0.0)) "zero" 0.0 stats.Dpo.loss

(* ---------------- training ---------------- *)

let quick_config epochs =
  {
    Trainer.beta = 0.5;
    lr = 0.05;
    epochs;
    batch = 8;
    checkpoint_every = 5;
    shuffle_each_epoch = true;
  }

let training_pairs () =
  [
    mk_pair [ "observe the light"; "if green go" ] [ "observe the light"; "go now" ];
    mk_pair [ "if red stop"; "if green go" ] [ "go now" ];
    mk_pair [ "observe the light"; "if red stop" ] [ "turn right" ];
  ]

let test_training_improves_metrics () =
  let reference = make_model 11 in
  let pairs = training_pairs () in
  let run = Trainer.train ~reference ~pairs (quick_config 40) ~seed:1 in
  let first = List.hd run.Trainer.stats in
  let last = List.nth run.Trainer.stats (List.length run.Trainer.stats - 1) in
  Alcotest.(check bool)
    (Printf.sprintf "loss decreased %.3f -> %.3f" first.Trainer.loss last.Trainer.loss)
    true
    (last.Trainer.loss < first.Trainer.loss);
  Alcotest.(check bool) "accuracy reaches 1" true (last.Trainer.accuracy >= 0.99);
  Alcotest.(check bool) "margin positive" true (last.Trainer.margin > 0.0);
  (* fine-tuned policy prefers all chosen responses *)
  let stats =
    Dpo.evaluate ~policy:run.Trainer.final ~reference ~beta:0.5 pairs
  in
  Alcotest.(check bool) "final accuracy 1" true (stats.Dpo.accuracy >= 0.99)

let test_training_only_updates_lora () =
  let reference = make_model 13 in
  let run = Trainer.train ~reference ~pairs:(training_pairs ()) (quick_config 5) ~seed:2 in
  let policy = run.Trainer.final in
  Alcotest.(check bool) "embedding frozen" true
    (Dpoaf_tensor.Tensor.approx_equal policy.Model.embedding reference.Model.embedding);
  Alcotest.(check bool) "base frozen" true
    (Dpoaf_tensor.Tensor.approx_equal policy.Model.out.Dpoaf_tensor.Lora.base
       reference.Model.out.Dpoaf_tensor.Lora.base);
  Alcotest.(check bool) "adapter moved" true
    (not
       (Dpoaf_tensor.Tensor.approx_equal policy.Model.out.Dpoaf_tensor.Lora.a
          reference.Model.out.Dpoaf_tensor.Lora.a))

let test_checkpoints_present () =
  let reference = make_model 17 in
  let run = Trainer.train ~reference ~pairs:(training_pairs ()) (quick_config 10) ~seed:3 in
  let epochs = List.map fst run.Trainer.checkpoints in
  Alcotest.(check (list int)) "epochs" [ 0; 5; 10 ] epochs

let test_seeds_same_start_different_order () =
  let reference = make_model 19 in
  let runs =
    Trainer.train_seeds ~reference ~pairs:(training_pairs ()) (quick_config 40)
      ~seeds:[ 1; 2; 3 ]
  in
  Alcotest.(check int) "three runs" 3 (List.length runs);
  (* all runs end with high accuracy; exact trajectories may differ *)
  List.iter
    (fun run ->
      let last = List.nth run.Trainer.stats (List.length run.Trainer.stats - 1) in
      Alcotest.(check bool) "accuracy high" true (last.Trainer.accuracy >= 0.9))
    runs

let test_tape_mode_bitwise_identical () =
  (* Reusing one arena across every step must leave no trace in the
     results: same per-epoch stats, bit-identical final adapter. *)
  let pairs = training_pairs () in
  let run mode =
    Trainer.train ~tape_mode:mode ~reference:(make_model 29) ~pairs
      (quick_config 8) ~seed:5
  in
  let reuse = run `Reuse and fresh = run `Fresh in
  Alcotest.(check bool) "epoch stats identical" true
    (reuse.Trainer.stats = fresh.Trainer.stats);
  let bits m =
    Array.map Int64.bits_of_float
      m.Model.out.Dpoaf_tensor.Lora.a.Dpoaf_tensor.Tensor.data
  in
  Alcotest.(check bool) "final adapter bit-identical" true
    (bits reuse.Trainer.final = bits fresh.Trainer.final)

let test_epoch0_checkpoint_is_reference () =
  let reference = make_model 23 in
  let run = Trainer.train ~reference ~pairs:(training_pairs ()) (quick_config 5) ~seed:4 in
  match run.Trainer.checkpoints with
  | (0, m0) :: _ ->
      let pair = mk_pair [ "if green go" ] [ "turn right" ] in
      let stats = Dpo.evaluate ~policy:m0 ~reference ~beta:0.5 [ pair ] in
      Alcotest.(check (float 1e-9)) "identical to reference" 0.0 stats.Dpo.margin
  | _ -> Alcotest.fail "missing epoch-0 checkpoint"

let test_step_records_stream () =
  let reference = make_model 37 in
  let records = ref [] in
  let sink r = records := r :: !records in
  let run =
    Trainer.train ~sink ~reference ~pairs:(training_pairs ()) (quick_config 4)
      ~seed:9
  in
  ignore run;
  let rs = List.rev !records in
  Alcotest.(check bool) "records emitted" true (List.length rs > 0);
  List.iteri
    (fun i (r : Trainer.step_record) ->
      Alcotest.(check int) "steps numbered consecutively" (i + 1) r.Trainer.step;
      Alcotest.(check bool) "positive step time" true (r.Trainer.seconds >= 0.0);
      Alcotest.(check bool) "norms populated when sink attached" true
        (r.Trainer.grad_norm > 0.0 && r.Trainer.update_norm > 0.0))
    rs;
  (* csv/jsonl renderings agree with the record *)
  let r = List.hd rs in
  let csv = Trainer.csv_line r in
  Alcotest.(check int) "csv arity"
    (List.length (String.split_on_char ',' Trainer.csv_header))
    (List.length (String.split_on_char ',' csv));
  let json = Dpoaf_util.Json.parse_exn (Trainer.jsonl_line r) in
  Alcotest.(check (option (float 0.0))) "jsonl step"
    (Some (float_of_int r.Trainer.step))
    Dpoaf_util.Json.(Option.bind (member "step" json) to_float)

(* ---------------- REINFORCE baseline ---------------- *)

let test_reinforce_improves_reward () =
  let reference = make_model 29 in
  (* reward 1 for responses containing the "if green go" clause, 0 otherwise *)
  let target = Vocab.encode vocab "if green go" in
  let contains_target tokens =
    let rec sub l =
      match l with
      | [] -> false
      | _ :: rest ->
          (List.filteri (fun i _ -> i < List.length target) l = target) || sub rest
    in
    sub tokens
  in
  let task =
    {
      Reinforce.prompt;
      grammar;
      min_clauses = 1;
      max_clauses = 2;
      reward = (fun tokens -> if contains_target tokens then 1.0 else 0.0);
    }
  in
  let config =
    { Reinforce.lr = 0.05; epochs = 60; samples_per_task = 8; temperature = 1.0 }
  in
  let run = Reinforce.train ~reference ~tasks:[ task ] config ~seed:1 in
  let first =
    Dpoaf_util.Stats.mean
      (List.filteri (fun i _ -> i < 5) run.Reinforce.stats
      |> List.map (fun s -> s.Reinforce.mean_reward))
  in
  let last =
    Dpoaf_util.Stats.mean
      (List.filteri
         (fun i _ -> i >= List.length run.Reinforce.stats - 5)
         run.Reinforce.stats
      |> List.map (fun s -> s.Reinforce.mean_reward))
  in
  Alcotest.(check bool)
    (Printf.sprintf "reward improved %.2f -> %.2f" first last)
    true (last > first +. 0.2);
  (* only the adapter moved *)
  Alcotest.(check bool) "base frozen" true
    (Dpoaf_tensor.Tensor.approx_equal run.Reinforce.final.Model.out.Dpoaf_tensor.Lora.base
       reference.Model.out.Dpoaf_tensor.Lora.base)

let test_reinforce_reference_untouched () =
  let reference = make_model 30 in
  let before = Model.clone reference in
  let task =
    { Reinforce.prompt; grammar; min_clauses = 1; max_clauses = 2;
      reward = (fun _ -> 1.0) }
  in
  let config =
    { Reinforce.lr = 0.05; epochs = 5; samples_per_task = 4; temperature = 1.0 }
  in
  let _ = Reinforce.train ~reference ~tasks:[ task ] config ~seed:2 in
  Alcotest.(check bool) "reference adapters unchanged" true
    (Dpoaf_tensor.Tensor.approx_equal reference.Model.out.Dpoaf_tensor.Lora.a
       before.Model.out.Dpoaf_tensor.Lora.a)

let () =
  Alcotest.run "dpo"
    [
      ( "pref-data",
        [
          Alcotest.test_case "pairs of scored" `Quick test_pairs_of_scored;
          Alcotest.test_case "dedup" `Quick test_pairs_dedup;
          Alcotest.test_case "count possible" `Quick test_count_possible;
          Alcotest.test_case "provenance" `Quick test_pair_provenance;
          Alcotest.test_case "vacuous margin" `Quick test_vacuous_margin;
        ] );
      ( "loss",
        [
          Alcotest.test_case "initial margin zero" `Quick test_initial_margin_zero;
          Alcotest.test_case "node matches evaluate" `Quick test_loss_node_matches_evaluate;
          Alcotest.test_case "empty" `Quick test_evaluate_empty;
        ] );
      ( "trainer",
        [
          Alcotest.test_case "improves metrics" `Slow test_training_improves_metrics;
          Alcotest.test_case "lora only" `Quick test_training_only_updates_lora;
          Alcotest.test_case "checkpoints" `Quick test_checkpoints_present;
          Alcotest.test_case "seeds" `Slow test_seeds_same_start_different_order;
          Alcotest.test_case "epoch0 = reference" `Quick test_epoch0_checkpoint_is_reference;
          Alcotest.test_case "tape modes bitwise equal" `Quick
            test_tape_mode_bitwise_identical;
          Alcotest.test_case "step records" `Quick test_step_records_stream;
        ] );
      ( "reinforce",
        [
          Alcotest.test_case "improves reward" `Slow test_reinforce_improves_reward;
          Alcotest.test_case "reference untouched" `Quick test_reinforce_reference_untouched;
        ] );
    ]
