open Dpoaf_exec

(* ---------------- pool lifecycle ---------------- *)

let test_pool_create_teardown () =
  let pool = Pool.create ~jobs:3 in
  Alcotest.(check int) "slots" 3 (Pool.jobs pool);
  let out = Pool.map_on_pool pool (fun x -> x * x) [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check (list int)) "squares" [ 1; 4; 9; 16; 25 ] out;
  Pool.shutdown pool;
  (* idempotent *)
  Pool.shutdown pool;
  Alcotest.(check bool) "submit after shutdown raises" true
    (try
       ignore (Pool.map_on_pool pool (fun x -> x) [ 1; 2; 3 ]);
       false
     with Invalid_argument _ -> true)

let test_pool_rejects_zero_jobs () =
  Alcotest.(check bool) "jobs < 1 rejected" true
    (try ignore (Pool.create ~jobs:0); false
     with Invalid_argument _ -> true)

let test_order_preserved () =
  let xs = List.init 100 Fun.id in
  let expected = List.mapi (fun i x -> (i, 3 * x)) xs in
  let got = Pool.parallel_mapi ~jobs:4 (fun i x -> (i, 3 * x)) xs in
  Alcotest.(check bool) "slots by input index" true (got = expected)

let test_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" []
    (Pool.parallel_map ~jobs:4 (fun x -> x) []);
  Alcotest.(check (list int)) "singleton" [ 7 ]
    (Pool.parallel_map ~jobs:4 (fun x -> x + 1) [ 6 ])

exception Boom of int

let test_exception_propagates () =
  let pool = Pool.create ~jobs:4 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  Alcotest.(check bool) "worker exception reaches caller" true
    (try
       ignore
         (Pool.map_on_pool pool
            (fun x -> if x = 5 then raise (Boom x) else x)
            (List.init 10 Fun.id));
       false
     with Boom 5 -> true);
  (* the batch completed: the pool is still usable afterwards *)
  Alcotest.(check (list int)) "pool survives the failure" [ 2; 4; 6 ]
    (Pool.map_on_pool pool (fun x -> 2 * x) [ 1; 2; 3 ])

let test_nested_fallback () =
  (* a parallel_map issued from inside a worker must not deadlock *)
  let out =
    Pool.parallel_map ~jobs:4
      (fun x ->
        List.fold_left ( + ) 0
          (Pool.parallel_map ~jobs:4 (fun y -> x * y) [ 1; 2; 3 ]))
      (List.init 8 Fun.id)
  in
  Alcotest.(check (list int)) "nested result"
    (List.init 8 (fun x -> 6 * x))
    out

let test_default_pool_setting () =
  let before = Pool.default_jobs () in
  Pool.set_default_jobs 2;
  Alcotest.(check int) "default updated" 2 (Pool.default_jobs ());
  let out = Pool.parallel_map (fun x -> x + 10) [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "uses shared pool" [ 11; 12; 13 ] out;
  Pool.set_default_jobs before

(* ---------------- cache ---------------- *)

let test_cache_hit_miss () =
  let cache = Cache.create ~name:"test.hitmiss" () in
  let calls = ref 0 in
  let get k = Cache.find_or_add cache k (fun () -> incr calls; k * 2) in
  Alcotest.(check int) "computed" 10 (get 5);
  Alcotest.(check int) "cached" 10 (get 5);
  Alcotest.(check int) "other key" 14 (get 7);
  Alcotest.(check int) "computation ran twice" 2 !calls;
  let s = Cache.stats cache in
  Alcotest.(check int) "hits" 1 s.Cache.hits;
  Alcotest.(check int) "misses" 2 s.Cache.misses;
  Alcotest.(check int) "size" 2 s.Cache.size;
  Alcotest.(check (float 1e-9)) "hit rate" (1.0 /. 3.0) (Cache.hit_rate cache)

let test_cache_eviction () =
  let cache = Cache.create ~capacity:3 ~name:"test.evict" () in
  List.iter (fun k -> Cache.add cache k (10 * k)) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "bounded" 3 (Cache.length cache);
  let s = Cache.stats cache in
  Alcotest.(check int) "evictions" 2 s.Cache.evictions;
  (* no hits in between, so LRU degenerates to insertion order: 1 and 2
     are gone, 3..5 remain *)
  Alcotest.(check (option int)) "evicted" None (Cache.find_opt cache 1);
  Alcotest.(check (option int)) "kept" (Some 50) (Cache.find_opt cache 5)

let test_cache_lru_promotion () =
  let cache = Cache.create ~capacity:3 ~name:"test.lru" () in
  List.iter (fun k -> Cache.add cache k (10 * k)) [ 1; 2; 3 ];
  (* re-hit the oldest key: 2 becomes the eviction candidate, not 1 *)
  Alcotest.(check (option int)) "hit on oldest" (Some 10)
    (Cache.find_opt cache 1);
  Cache.add cache 4 40;
  Alcotest.(check (option int)) "re-hit key survives" (Some 10)
    (Cache.find_opt cache 1);
  Alcotest.(check (option int)) "colder key evicted" None
    (Cache.find_opt cache 2);
  Alcotest.(check int) "still bounded" 3 (Cache.length cache);
  Alcotest.(check int) "one eviction" 1 (Cache.stats cache).Cache.evictions;
  (* find_or_add also promotes: touch 3, then push two new keys *)
  ignore (Cache.find_or_add cache 3 (fun () -> assert false));
  Cache.add cache 5 50;
  Cache.add cache 6 60;
  Alcotest.(check (option int)) "promoted by find_or_add" (Some 30)
    (Cache.find_opt cache 3);
  Alcotest.(check (option int)) "unpromoted gone" None (Cache.find_opt cache 4)

let test_cache_concurrent_agreement () =
  (* many domains racing on the same keys: every reader sees the
     deterministic value of its key *)
  let cache = Cache.create ~name:"test.race" () in
  let out =
    Pool.parallel_map ~jobs:4
      (fun i ->
        let k = i mod 5 in
        Cache.find_or_add cache k (fun () -> k * k))
      (List.init 40 Fun.id)
  in
  Alcotest.(check bool) "all values deterministic" true
    (List.for_all2 (fun i v -> v = (i mod 5) * (i mod 5))
       (List.init 40 Fun.id) out);
  Alcotest.(check int) "at most 5 entries" 5 (Cache.length cache)

(* ---------------- metrics ---------------- *)

let test_metrics_counters_and_timers () =
  let c = Metrics.counter "test.counter" in
  let base = Metrics.value c in
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "counter arithmetic" (base + 5) (Metrics.value c);
  let r = Metrics.time "test.timer" (fun () -> 42) in
  Alcotest.(check int) "timer returns result" 42 r;
  let summary = Metrics.summary () in
  Alcotest.(check bool) "timer calls in summary" true
    (List.mem_assoc "test.timer.calls" summary);
  Alcotest.(check bool) "counter in summary" true
    (List.mem_assoc "test.counter" summary);
  let contains hay needle =
    let h = String.length hay and n = String.length needle in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "json mentions counter" true
    (contains (Metrics.to_json ()) {|"test.counter"|})

let test_metrics_name_collision () =
  let _ = Metrics.counter "test.collide.counter" in
  let _ = Metrics.histogram "test.collide.histogram" in
  let expect_invalid kind f =
    match f () with
    | exception Invalid_argument msg ->
        let contains hay needle =
          let h = String.length hay and n = String.length needle in
          let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
          go 0
        in
        Alcotest.(check bool)
          (Printf.sprintf "%s message names the existing kind (%s)" kind msg)
          true
          (contains msg "already registered")
    | _ -> Alcotest.failf "%s: expected Invalid_argument" kind
  in
  expect_invalid "counter as timer" (fun () ->
      Metrics.time "test.collide.counter" (fun () -> ()));
  expect_invalid "counter as histogram" (fun () ->
      ignore (Metrics.histogram "test.collide.counter"));
  expect_invalid "histogram as counter" (fun () ->
      ignore (Metrics.counter "test.collide.histogram"));
  expect_invalid "histogram as timer" (fun () ->
      Metrics.time "test.collide.histogram" (fun () -> ()))

let test_metrics_gauge () =
  let g = Metrics.gauge "test.gauge.depth" in
  Metrics.set_gauge g 7.0;
  Alcotest.(check (float 0.0)) "level readback" 7.0 (Metrics.gauge_value g);
  Alcotest.(check (option (float 0.0))) "summary key" (Some 7.0)
    (List.assoc_opt "test.gauge.depth.level" (Metrics.summary ()));
  (* last write wins, and delta passes the level through undiffed *)
  let before = Metrics.summary () in
  Metrics.set_gauge g 3.0;
  Metrics.set_gauge g 5.0;
  let d = Metrics.delta before (Metrics.summary ()) in
  Alcotest.(check (option (float 0.0))) "delta passthrough" (Some 5.0)
    (List.assoc_opt "test.gauge.depth.level" d);
  Alcotest.(check bool) "same name as counter rejected" true
    (try ignore (Metrics.counter "test.gauge.depth"); false
     with Invalid_argument _ -> true)

let test_metrics_histogram_summary () =
  let h = Metrics.histogram "test.hist.basic" in
  List.iter (Metrics.observe h) [ 0.001; 0.002; 0.004; 0.008; 0.1 ];
  let summary = Metrics.summary () in
  let get k = List.assoc ("test.hist.basic." ^ k) summary in
  Alcotest.(check (float 1e-9)) "count" 5.0 (get "count");
  Alcotest.(check (float 1e-9)) "min exact" 0.001 (get "min");
  Alcotest.(check (float 1e-9)) "max exact" 0.1 (get "max");
  Alcotest.(check (float 1e-9)) "sum" 0.115 (get "sum");
  Alcotest.(check bool) "p50 within a bucket of the median" true
    (get "p50" >= 0.004 && get "p50" <= 0.004 *. Metrics.bucket_base);
  Alcotest.(check (float 1e-9)) "p99 clamps to max" 0.1 (get "p99")

let test_metrics_delta () =
  let c = Metrics.counter "test.delta.counter" in
  let h = Metrics.histogram "test.delta.hist" in
  Metrics.observe h 0.5;
  let before = Metrics.summary () in
  Metrics.add c 7;
  Metrics.observe h 2.0;
  let d = Metrics.delta before (Metrics.summary ()) in
  Alcotest.(check (float 1e-9)) "counter differenced" 7.0
    (List.assoc "test.delta.counter" d);
  Alcotest.(check (float 1e-9)) "histogram count differenced" 1.0
    (List.assoc "test.delta.hist.count" d);
  (* order statistics pass through as their current value *)
  Alcotest.(check (float 1e-9)) "max passed through" 2.0
    (List.assoc "test.delta.hist.max" d);
  Alcotest.(check bool) "absent keys count from zero" true
    (let c2 = Metrics.counter "test.delta.late" in
     Metrics.incr c2;
     List.assoc "test.delta.late" (Metrics.delta before (Metrics.summary ()))
     = 1.0)

let test_metrics_snapshot () =
  let h = Metrics.histogram "test.hist.snap" in
  List.iter (Metrics.observe h) [ 0.001; 0.002; 0.004; 0.008; 0.1 ];
  let s = Metrics.snapshot h in
  Alcotest.(check int) "count" 5 s.Metrics.count;
  Alcotest.(check (float 1e-9)) "sum" 0.115 s.Metrics.sum;
  Alcotest.(check (float 1e-9)) "min" 0.001 s.Metrics.min;
  Alcotest.(check (float 1e-9)) "max" 0.1 s.Metrics.max;
  Alcotest.(check bool) "only non-empty buckets exported" true
    (List.for_all (fun (_, _, c) -> c > 0) s.Metrics.buckets);
  Alcotest.(check int) "bucket counts sum to count" 5
    (List.fold_left (fun acc (_, _, c) -> acc + c) 0 s.Metrics.buckets);
  Alcotest.(check bool) "bucket bounds are ordered" true
    (List.for_all (fun (lo, hi, _) -> lo < hi) s.Metrics.buckets);
  (match (s.Metrics.buckets, List.rev s.Metrics.buckets) with
  | (lo, _, _) :: _, (_, hi, _) :: _ ->
      Alcotest.(check bool) "first bucket brackets min" true (lo <= 0.001);
      Alcotest.(check bool) "last bucket brackets max" true (hi >= 0.1)
  | _ -> Alcotest.fail "no buckets exported");
  (* snapshot percentiles agree with the live estimator *)
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "snapshot p%.0f = live" (q *. 100.0))
        (Metrics.percentile h q)
        (Metrics.snapshot_percentile s q))
    [ 0.5; 0.9; 0.99 ];
  (* JSON round-trip preserves the whole snapshot *)
  match Metrics.snapshot_of_json (Metrics.json_of_snapshot s) with
  | Error e -> Alcotest.fail ("snapshot_of_json: " ^ e)
  | Ok s' -> Alcotest.(check bool) "json round-trip" true (s = s')

let test_metrics_runtime_gauges () =
  let g = Metrics.runtime_gauges () in
  let get k =
    match List.assoc_opt k g with
    | Some v -> v
    | None -> Alcotest.failf "runtime_gauges missing %s" k
  in
  Alcotest.(check bool) "heap words positive" true (get "gc.heap_words" > 0.0);
  Alcotest.(check bool) "live words positive" true (get "gc.live_words" > 0.0);
  Alcotest.(check bool) "minor heap configured" true
    (get "gc.minor_heap_words" > 0.0);
  List.iter
    (fun k -> Alcotest.(check bool) (k ^ " present") true (get k >= 0.0))
    [ "gc.minor_collections"; "gc.major_collections"; "tape.nodes" ]

(* ---------------- tracing ---------------- *)

let find_span name spans =
  List.find (fun (e : Trace.event) -> e.Trace.name = name) spans

let test_trace_disabled_is_free () =
  Trace.disable ();
  Trace.reset ();
  let r = Trace.with_span "not.recorded" (fun () -> 41 + 1) in
  Alcotest.(check int) "thunk result" 42 r;
  Alcotest.(check int) "nothing buffered" 0 (List.length (Trace.events ()))

let test_trace_nesting_and_parents () =
  Trace.reset ();
  Trace.enable ();
  Fun.protect ~finally:Trace.disable @@ fun () ->
  let inner_seen = ref (-2) in
  Trace.with_span ~cat:"t" "outer" (fun () ->
      Trace.with_span ~cat:"t" "inner" (fun () -> inner_seen := Trace.current ()));
  let spans = Trace.events () in
  Alcotest.(check int) "two spans" 2 (List.length spans);
  let outer = find_span "outer" spans and inner = find_span "inner" spans in
  Alcotest.(check int) "outer is a root" (-1) outer.Trace.parent;
  Alcotest.(check int) "inner parented to outer" outer.Trace.id inner.Trace.parent;
  Alcotest.(check int) "current () inside inner" inner.Trace.id !inner_seen;
  Alcotest.(check bool) "inner starts after outer" true
    (inner.Trace.ts_us >= outer.Trace.ts_us);
  Alcotest.(check bool) "inner contained in outer" true
    (inner.Trace.ts_us +. inner.Trace.dur_us
     <= outer.Trace.ts_us +. outer.Trace.dur_us +. 1.0)

let test_trace_spans_cross_pool jobs () =
  Trace.reset ();
  Trace.enable ();
  Fun.protect ~finally:Trace.disable @@ fun () ->
  let n = 6 in
  let out =
    Trace.with_span ~cat:"t" "batch" (fun () ->
        Pool.parallel_map ~jobs
          (fun i -> Trace.with_span ~cat:"t" "item" (fun () -> i * i))
          (List.init n Fun.id))
  in
  Alcotest.(check (list int)) "results" (List.init n (fun i -> i * i)) out;
  let spans = Trace.events () in
  let batch = find_span "batch" spans in
  let items = List.filter (fun (e : Trace.event) -> e.Trace.name = "item") spans in
  Alcotest.(check int) "one span per item" n (List.length items);
  List.iter
    (fun (e : Trace.event) ->
      Alcotest.(check int)
        (Printf.sprintf "item on tid %d parented to batch" e.Trace.tid)
        batch.Trace.id e.Trace.parent;
      Alcotest.(check bool) "item within batch window" true
        (e.Trace.ts_us >= batch.Trace.ts_us
        && e.Trace.ts_us +. e.Trace.dur_us
           <= batch.Trace.ts_us +. batch.Trace.dur_us +. 1.0))
    items;
  (* events are sorted by start time *)
  let starts = List.map (fun (e : Trace.event) -> e.Trace.ts_us) spans in
  Alcotest.(check bool) "sorted by ts" true
    (starts = List.sort compare starts)

let test_trace_jsonl_roundtrip () =
  Trace.reset ();
  Trace.enable ();
  (Fun.protect ~finally:Trace.disable @@ fun () ->
   Trace.with_span ~cat:"t" ~attrs:[ ("k", "v") ] "rt" (fun () -> ()));
  let path = Filename.temp_file "dpoaf_trace" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  Trace.write_jsonl path;
  let reader = Trace.read_jsonl path in
  let rt = find_span "rt" reader.Trace.spans in
  Alcotest.(check string) "attr round-trips" "v" (List.assoc "k" rt.Trace.attrs);
  Alcotest.(check string) "cat round-trips" "t" rt.Trace.cat;
  Alcotest.(check bool) "metrics line present" true (reader.Trace.metrics <> [])

(* ---------------- qcheck: parallel_map = List.map ---------------- *)

let prop_parallel_map_pure k =
  QCheck.Test.make ~count:50
    ~name:(Printf.sprintf "parallel_map ~jobs:%d = List.map" k)
    QCheck.(list small_int)
    (fun xs ->
      let f x = (x * x) + 7 in
      Pool.parallel_map ~jobs:k f xs = List.map f xs)

let prop_parallel_mapi_pure k =
  QCheck.Test.make ~count:50
    ~name:(Printf.sprintf "parallel_mapi ~jobs:%d = List.mapi" k)
    QCheck.(list small_int)
    (fun xs ->
      let f i x = i + (2 * x) in
      Pool.parallel_mapi ~jobs:k f xs = List.mapi f xs)

(* histogram percentiles vs a sorted-list nearest-rank oracle: the
   log-bucketed estimate must bracket the exact order statistic within one
   bucket's growth factor *)
let hist_counter = ref 0

let prop_histogram_percentile =
  let positive = QCheck.Gen.map (fun x -> 1e-6 +. (x *. 1e4)) (QCheck.Gen.float_bound_exclusive 1.0) in
  QCheck.Test.make ~count:100 ~name:"histogram percentile brackets oracle"
    (QCheck.make
       ~print:QCheck.Print.(list float)
       QCheck.Gen.(list_size (int_range 1 200) positive))
    (fun xs ->
      incr hist_counter;
      let h =
        Metrics.histogram (Printf.sprintf "test.hist.prop%d" !hist_counter)
      in
      List.iter (Metrics.observe h) xs;
      let sorted = Array.of_list xs in
      Array.sort compare sorted;
      let n = Array.length sorted in
      List.for_all
        (fun q ->
          let oracle =
            sorted.(max 0 (min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1)))
          in
          let est = Metrics.percentile h q in
          oracle <= est && est <= oracle *. Metrics.bucket_base)
        [ 0.5; 0.9; 0.99 ])

(* merging snapshots is monotone: counts never decrease, the bound pairs
   of both inputs survive verbatim, and count/sum aggregate exactly *)
let prop_snapshot_merge_monotone =
  let positive = QCheck.Gen.map (fun x -> 1e-6 +. (x *. 1e4)) (QCheck.Gen.float_bound_exclusive 1.0) in
  let samples = QCheck.Gen.(list_size (int_range 0 100) positive) in
  QCheck.Test.make ~count:100
    ~name:"snapshot merge is monotone (counts grow, bounds stable)"
    (QCheck.make
       ~print:QCheck.Print.(pair (list float) (list float))
       (QCheck.Gen.pair samples samples))
    (fun (xs, ys) ->
      let snap vs =
        incr hist_counter;
        let h =
          Metrics.histogram (Printf.sprintf "test.hist.merge%d" !hist_counter)
        in
        List.iter (Metrics.observe h) vs;
        Metrics.snapshot h
      in
      let a = snap xs and b = snap ys in
      let m = Metrics.merge_snapshots a b in
      let count_at s (lo, hi) =
        List.fold_left
          (fun acc (l, u, c) -> if l = lo && u = hi then acc + c else acc)
          0 s.Metrics.buckets
      in
      let bounds s = List.map (fun (l, u, _) -> (l, u)) s.Metrics.buckets in
      m.Metrics.count = a.Metrics.count + b.Metrics.count
      && abs_float (m.Metrics.sum -. (a.Metrics.sum +. b.Metrics.sum)) < 1e-9
      && List.for_all
           (fun bd -> count_at m bd >= count_at a bd && count_at m bd >= count_at b bd)
           (bounds m)
      && List.for_all (fun bd -> List.mem bd (bounds m)) (bounds a)
      && List.for_all (fun bd -> List.mem bd (bounds m)) (bounds b)
      && List.fold_left (fun acc (_, _, c) -> acc + c) 0 m.Metrics.buckets
         = m.Metrics.count
      (* merging with an empty snapshot is the identity *)
      && Metrics.merge_snapshots a (snap []) = a
      && Metrics.merge_snapshots (snap []) b = b)

(* diff_snapshots recovers exactly the window between two snapshots of
   one histogram: bucket-for-bucket it equals a fresh histogram fed only
   the second batch (what loadgen relies on to give each sweep level its
   own percentiles), and diffing a snapshot against itself is empty *)
let prop_snapshot_diff_window =
  let positive = QCheck.Gen.map (fun x -> 1e-6 +. (x *. 1e4)) (QCheck.Gen.float_bound_exclusive 1.0) in
  let samples = QCheck.Gen.(list_size (int_range 0 100) positive) in
  QCheck.Test.make ~count:100
    ~name:"snapshot diff recovers the inter-snapshot window"
    (QCheck.make
       ~print:QCheck.Print.(pair (list float) (list float))
       (QCheck.Gen.pair samples samples))
    (fun (xs, ys) ->
      let fresh vs =
        incr hist_counter;
        let h =
          Metrics.histogram (Printf.sprintf "test.hist.diff%d" !hist_counter)
        in
        List.iter (Metrics.observe h) vs;
        h
      in
      let h = fresh xs in
      let a = Metrics.snapshot h in
      List.iter (Metrics.observe h) ys;
      let b = Metrics.snapshot h in
      let w = Metrics.diff_snapshots b a in
      let oracle = Metrics.snapshot (fresh ys) in
      let nonzero s =
        List.filter (fun (_, _, c) -> c > 0) s.Metrics.buckets
      in
      w.Metrics.count = List.length ys
      && abs_float (w.Metrics.sum -. oracle.Metrics.sum) < 1e-6
      && nonzero w = nonzero oracle
      && (Metrics.diff_snapshots b b).Metrics.count = 0
      && (Metrics.diff_snapshots b b).Metrics.buckets = [])

let qsuite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests)

let () =
  Alcotest.run "exec"
    [
      ( "pool",
        [
          Alcotest.test_case "create/teardown" `Quick test_pool_create_teardown;
          Alcotest.test_case "rejects jobs=0" `Quick test_pool_rejects_zero_jobs;
          Alcotest.test_case "order preserved" `Quick test_order_preserved;
          Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagates;
          Alcotest.test_case "nested fallback" `Quick test_nested_fallback;
          Alcotest.test_case "shared default pool" `Quick test_default_pool_setting;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit/miss accounting" `Quick test_cache_hit_miss;
          Alcotest.test_case "bounded eviction" `Quick test_cache_eviction;
          Alcotest.test_case "LRU promotion" `Quick test_cache_lru_promotion;
          Alcotest.test_case "concurrent agreement" `Quick
            test_cache_concurrent_agreement;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and timers" `Quick
            test_metrics_counters_and_timers;
          Alcotest.test_case "name collision" `Quick test_metrics_name_collision;
          Alcotest.test_case "gauge" `Quick test_metrics_gauge;
          Alcotest.test_case "histogram summary" `Quick
            test_metrics_histogram_summary;
          Alcotest.test_case "delta" `Quick test_metrics_delta;
          Alcotest.test_case "histogram snapshot" `Quick test_metrics_snapshot;
          Alcotest.test_case "runtime gauges" `Quick
            test_metrics_runtime_gauges;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled is free" `Quick test_trace_disabled_is_free;
          Alcotest.test_case "nesting and parents" `Quick
            test_trace_nesting_and_parents;
          Alcotest.test_case "spans cross pool (jobs=1)" `Quick
            (test_trace_spans_cross_pool 1);
          Alcotest.test_case "spans cross pool (jobs=4)" `Quick
            (test_trace_spans_cross_pool 4);
          Alcotest.test_case "jsonl roundtrip" `Quick test_trace_jsonl_roundtrip;
        ] );
      qsuite "properties"
        (List.concat_map
           (fun k -> [ prop_parallel_map_pure k; prop_parallel_mapi_pure k ])
           [ 1; 2; 4 ]
        @ [
            prop_histogram_percentile;
            prop_snapshot_merge_monotone;
            prop_snapshot_diff_window;
          ]);
    ]
