open Dpoaf_exec

(* ---------------- pool lifecycle ---------------- *)

let test_pool_create_teardown () =
  let pool = Pool.create ~jobs:3 in
  Alcotest.(check int) "slots" 3 (Pool.jobs pool);
  let out = Pool.map_on_pool pool (fun x -> x * x) [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check (list int)) "squares" [ 1; 4; 9; 16; 25 ] out;
  Pool.shutdown pool;
  (* idempotent *)
  Pool.shutdown pool;
  Alcotest.(check bool) "submit after shutdown raises" true
    (try
       ignore (Pool.map_on_pool pool (fun x -> x) [ 1; 2; 3 ]);
       false
     with Invalid_argument _ -> true)

let test_pool_rejects_zero_jobs () =
  Alcotest.(check bool) "jobs < 1 rejected" true
    (try ignore (Pool.create ~jobs:0); false
     with Invalid_argument _ -> true)

let test_order_preserved () =
  let xs = List.init 100 Fun.id in
  let expected = List.mapi (fun i x -> (i, 3 * x)) xs in
  let got = Pool.parallel_mapi ~jobs:4 (fun i x -> (i, 3 * x)) xs in
  Alcotest.(check bool) "slots by input index" true (got = expected)

let test_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" []
    (Pool.parallel_map ~jobs:4 (fun x -> x) []);
  Alcotest.(check (list int)) "singleton" [ 7 ]
    (Pool.parallel_map ~jobs:4 (fun x -> x + 1) [ 6 ])

exception Boom of int

let test_exception_propagates () =
  let pool = Pool.create ~jobs:4 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  Alcotest.(check bool) "worker exception reaches caller" true
    (try
       ignore
         (Pool.map_on_pool pool
            (fun x -> if x = 5 then raise (Boom x) else x)
            (List.init 10 Fun.id));
       false
     with Boom 5 -> true);
  (* the batch completed: the pool is still usable afterwards *)
  Alcotest.(check (list int)) "pool survives the failure" [ 2; 4; 6 ]
    (Pool.map_on_pool pool (fun x -> 2 * x) [ 1; 2; 3 ])

let test_nested_fallback () =
  (* a parallel_map issued from inside a worker must not deadlock *)
  let out =
    Pool.parallel_map ~jobs:4
      (fun x ->
        List.fold_left ( + ) 0
          (Pool.parallel_map ~jobs:4 (fun y -> x * y) [ 1; 2; 3 ]))
      (List.init 8 Fun.id)
  in
  Alcotest.(check (list int)) "nested result"
    (List.init 8 (fun x -> 6 * x))
    out

let test_default_pool_setting () =
  let before = Pool.default_jobs () in
  Pool.set_default_jobs 2;
  Alcotest.(check int) "default updated" 2 (Pool.default_jobs ());
  let out = Pool.parallel_map (fun x -> x + 10) [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "uses shared pool" [ 11; 12; 13 ] out;
  Pool.set_default_jobs before

(* ---------------- cache ---------------- *)

let test_cache_hit_miss () =
  let cache = Cache.create ~name:"test.hitmiss" () in
  let calls = ref 0 in
  let get k = Cache.find_or_add cache k (fun () -> incr calls; k * 2) in
  Alcotest.(check int) "computed" 10 (get 5);
  Alcotest.(check int) "cached" 10 (get 5);
  Alcotest.(check int) "other key" 14 (get 7);
  Alcotest.(check int) "computation ran twice" 2 !calls;
  let s = Cache.stats cache in
  Alcotest.(check int) "hits" 1 s.Cache.hits;
  Alcotest.(check int) "misses" 2 s.Cache.misses;
  Alcotest.(check int) "size" 2 s.Cache.size;
  Alcotest.(check (float 1e-9)) "hit rate" (1.0 /. 3.0) (Cache.hit_rate cache)

let test_cache_eviction () =
  let cache = Cache.create ~capacity:3 ~name:"test.evict" () in
  List.iter (fun k -> Cache.add cache k (10 * k)) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check int) "bounded" 3 (Cache.length cache);
  let s = Cache.stats cache in
  Alcotest.(check int) "evictions" 2 s.Cache.evictions;
  (* FIFO: oldest keys 1 and 2 are gone, 3..5 remain *)
  Alcotest.(check (option int)) "evicted" None (Cache.find_opt cache 1);
  Alcotest.(check (option int)) "kept" (Some 50) (Cache.find_opt cache 5)

let test_cache_concurrent_agreement () =
  (* many domains racing on the same keys: every reader sees the
     deterministic value of its key *)
  let cache = Cache.create ~name:"test.race" () in
  let out =
    Pool.parallel_map ~jobs:4
      (fun i ->
        let k = i mod 5 in
        Cache.find_or_add cache k (fun () -> k * k))
      (List.init 40 Fun.id)
  in
  Alcotest.(check bool) "all values deterministic" true
    (List.for_all2 (fun i v -> v = (i mod 5) * (i mod 5))
       (List.init 40 Fun.id) out);
  Alcotest.(check int) "at most 5 entries" 5 (Cache.length cache)

(* ---------------- metrics ---------------- *)

let test_metrics_counters_and_timers () =
  let c = Metrics.counter "test.counter" in
  let base = Metrics.value c in
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "counter arithmetic" (base + 5) (Metrics.value c);
  let r = Metrics.time "test.timer" (fun () -> 42) in
  Alcotest.(check int) "timer returns result" 42 r;
  let summary = Metrics.summary () in
  Alcotest.(check bool) "timer calls in summary" true
    (List.mem_assoc "test.timer.calls" summary);
  Alcotest.(check bool) "counter in summary" true
    (List.mem_assoc "test.counter" summary);
  let contains hay needle =
    let h = String.length hay and n = String.length needle in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "json mentions counter" true
    (contains (Metrics.to_json ()) {|"test.counter"|})

(* ---------------- qcheck: parallel_map = List.map ---------------- *)

let prop_parallel_map_pure k =
  QCheck.Test.make ~count:50
    ~name:(Printf.sprintf "parallel_map ~jobs:%d = List.map" k)
    QCheck.(list small_int)
    (fun xs ->
      let f x = (x * x) + 7 in
      Pool.parallel_map ~jobs:k f xs = List.map f xs)

let prop_parallel_mapi_pure k =
  QCheck.Test.make ~count:50
    ~name:(Printf.sprintf "parallel_mapi ~jobs:%d = List.mapi" k)
    QCheck.(list small_int)
    (fun xs ->
      let f i x = i + (2 * x) in
      Pool.parallel_mapi ~jobs:k f xs = List.mapi f xs)

let qsuite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests)

let () =
  Alcotest.run "exec"
    [
      ( "pool",
        [
          Alcotest.test_case "create/teardown" `Quick test_pool_create_teardown;
          Alcotest.test_case "rejects jobs=0" `Quick test_pool_rejects_zero_jobs;
          Alcotest.test_case "order preserved" `Quick test_order_preserved;
          Alcotest.test_case "empty and singleton" `Quick test_empty_and_singleton;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagates;
          Alcotest.test_case "nested fallback" `Quick test_nested_fallback;
          Alcotest.test_case "shared default pool" `Quick test_default_pool_setting;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit/miss accounting" `Quick test_cache_hit_miss;
          Alcotest.test_case "FIFO eviction" `Quick test_cache_eviction;
          Alcotest.test_case "concurrent agreement" `Quick
            test_cache_concurrent_agreement;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and timers" `Quick
            test_metrics_counters_and_timers;
        ] );
      qsuite "properties"
        (List.concat_map
           (fun k -> [ prop_parallel_map_pure k; prop_parallel_mapi_pure k ])
           [ 1; 2; 4 ]);
    ]
