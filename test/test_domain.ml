(* The domain plug-in layer: registry strictness, generated-suite sanity
   gates, cross-domain pipeline determinism, and the per-domain serving
   protocol. *)

module Domain = Dpoaf_domain.Domain
module Registry = Dpoaf_domain.Registry
module Spec_gen = Dpoaf_domain.Spec_gen
module Corpus = Dpoaf_pipeline.Corpus
module Feedback = Dpoaf_pipeline.Feedback
module Dpoaf = Dpoaf_pipeline.Dpoaf
module Pref_data = Dpoaf_dpo.Pref_data
module P = Dpoaf_serve.Protocol
module Engine = Dpoaf_serve.Engine
module Rng = Dpoaf_util.Rng

let contains hay needle =
  let h = String.length hay and n = String.length needle in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let builtin_names = [ "driving"; "household"; "warehouse" ]

(* ---------------- registry ---------------- *)

let test_builtins_registered () =
  let names = Dpoaf_domain.names () in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " registered") true (List.mem n names))
    builtin_names;
  Alcotest.(check string) "driving is the default" "driving"
    Dpoaf_domain.default;
  Alcotest.(check string) "default resolves" "driving"
    (Domain.name (Dpoaf_domain.find_exn Dpoaf_domain.default))

let test_unknown_domain_error () =
  match Dpoaf_domain.find_exn "underwater" with
  | _ -> Alcotest.fail "expected Failure for an unknown domain"
  | exception Failure msg ->
      Alcotest.(check bool) "names the unknown" true
        (contains msg "underwater");
      List.iter
        (fun n ->
          Alcotest.(check bool) ("error lists " ^ n) true (contains msg n))
        builtin_names

let test_duplicate_registration_rejected () =
  (* a second pack under an existing name must be refused, loudly *)
  match Registry.register Dpoaf_domain.Pack_household.pack with
  | () -> Alcotest.fail "expected Invalid_argument for a duplicate name"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "names the duplicate" true
        (contains msg "household")

(* ---------------- generated suites pass the sanity gates ---------------- *)

(* Re-run the full analysis gate on every registered pack's rule book:
   each spec satisfiable, none a tautology, pairwise non-redundant, and
   non-vacuous on the pack's universal model.  The generated packs must
   be completely clean (Spec_gen enforces this at construction; this
   pins it).  Driving's hand-written paper suite carries five known
   info-level SPEC003 redundancies (phi_2, phi_11, phi_15 are implied by
   other rules) — pinned here too, so a regression in either direction
   is caught. *)
let test_suites_pass_gates () =
  List.iter
    (fun domain ->
      let (module D : Domain.S) = domain in
      let diags =
        Dpoaf_analysis.Spec_sanity.check ~model:(D.universal ())
          ~free:(Dpoaf_logic.Symbol.of_atoms D.actions)
          ~pairwise:true (D.specs ())
      in
      let serious, info =
        List.partition
          (fun d -> d.Dpoaf_analysis.Diagnostic.severity <> Dpoaf_analysis.Diagnostic.Info)
          diags
      in
      Alcotest.(check int)
        (D.name ^ ": no error/warning spec diagnostics")
        0 (List.length serious);
      let expected_info = if D.name = "driving" then 5 else 0 in
      Alcotest.(check int)
        (D.name ^ ": pinned info-diagnostic count")
        expected_info (List.length info);
      let model_diags =
        Dpoaf_analysis.Model_lint.lint ~specs:(D.specs ())
          ~ignore:(Dpoaf_logic.Symbol.of_atoms D.actions)
          (D.universal ())
      in
      Alcotest.(check int)
        (D.name ^ ": no model-lint diagnostics")
        0 (List.length model_diags))
    (Dpoaf_domain.all ())

let test_spec_gen_rejects_redundant_suite () =
  let (module H : Domain.S) = Dpoaf_domain.find_exn "household" in
  let p =
    Spec_gen.Never
      { trigger = Dpoaf_logic.Ltl.atom "human nearby"; action = "move to goal" }
  in
  match
    Spec_gen.suite ~domain:"dup-suite" ~model:(H.universal ())
      ~actions:H.actions [ p; p ]
  with
  | _ -> Alcotest.fail "expected Rejected for a duplicated pattern"
  | exception Spec_gen.Rejected { domain; diagnostics } ->
      Alcotest.(check string) "names the suite" "dup-suite" domain;
      Alcotest.(check bool) "carries diagnostics" true (diagnostics <> [])

(* qcheck: for any pack and any response assembled from its candidate
   steps, the verification profile partitions the pack's rule book and
   vacuous satisfactions stay inside the satisfied set *)
let arb_pack_response =
  let gen =
    QCheck.Gen.(
      let* domain = oneofl (Dpoaf_domain.all ()) in
      let (module D : Domain.S) = domain in
      let* task = oneofl D.tasks in
      let pool = Domain.candidate_steps domain task in
      let* n = 0 -- min 4 (List.length pool) in
      let* picks = list_size (return n) (oneofl pool) in
      return (domain, picks))
  in
  QCheck.make
    ~print:(fun (d, steps) ->
      Domain.name d ^ ": " ^ String.concat " / " steps)
    gen

let prop_profile_partitions =
  QCheck.Test.make ~count:120 ~name:"profile partitions any pack's rule book"
    arb_pack_response (fun (domain, steps) ->
      let (module D : Domain.S) = domain in
      let p = D.profile_of_steps steps in
      let names = Domain.spec_names domain in
      List.for_all (fun n -> List.mem n names) p.Domain.satisfied
      && List.for_all (fun n -> List.mem n p.Domain.satisfied) p.Domain.vacuous
      && List.length p.Domain.satisfied <= Domain.spec_count domain)

(* ---------------- cross-domain pipeline determinism ---------------- *)

let small_model corpus seed =
  Corpus.pretrained_model
    ~config:
      { Dpoaf_lm.Model.dim = 12; context = 10; lora_rank = 2;
        arch = Dpoaf_lm.Model.Bow }
    ~per_task:20 ~epochs:10 (Rng.create seed) corpus

(* jobs=1 and jobs=4 must mine bit-identical preference pairs in every
   pack, not just driving: sampling stays on the sequential RNG stream
   and scoring is order-preserved by the scheduler *)
let test_collect_pairs_jobs_deterministic_all_packs () =
  List.iter
    (fun domain ->
      let name = Domain.name domain in
      let corpus = Corpus.build ~domain () in
      let model = small_model corpus 3 in
      let run jobs =
        let feedback = Feedback.create ~domain () in
        Dpoaf.collect_pairs ~jobs corpus feedback model (Rng.create 4) ~m:6
          Domain.Training
      in
      let seq = run 1 in
      let par = run 4 in
      Alcotest.(check bool) (name ^ ": pairs mined") true (seq <> []);
      Alcotest.(check int)
        (name ^ ": same pair count")
        (List.length seq) (List.length par);
      List.iter2
        (fun (a : Pref_data.pair) (b : Pref_data.pair) ->
          Alcotest.(check string) (name ^ ": task") a.Pref_data.task_id
            b.Pref_data.task_id;
          Alcotest.(check (list int)) (name ^ ": chosen") a.Pref_data.chosen
            b.Pref_data.chosen;
          Alcotest.(check (list int))
            (name ^ ": rejected")
            a.Pref_data.rejected b.Pref_data.rejected;
          Alcotest.(check int)
            (name ^ ": chosen score")
            a.Pref_data.chosen_score b.Pref_data.chosen_score;
          Alcotest.(check int)
            (name ^ ": rejected score")
            a.Pref_data.rejected_score b.Pref_data.rejected_score)
        seq par)
    (Dpoaf_domain.all ())

(* ---------------- per-domain serve protocol ---------------- *)

let check_request golden req =
  Alcotest.(check string) "encode" golden (P.request_to_string req);
  match P.request_of_string golden with
  | Error e -> Alcotest.fail ("decode: " ^ e)
  | Ok r -> Alcotest.(check bool) "decode equals value" true (r = req)

(* exact wire bytes for domain-tagged requests, both directions — and the
   untagged forms stay byte-identical to the pre-domain protocol (see
   test_serve's goldens) *)
let test_domain_request_goldens () =
  check_request
    {|{"id":"g1","kind":"generate","task":"fetch_cup","seed":3,"temperature":1,"domain":"household"}|}
    {
      P.id = "g1";
      kind =
        P.Generate
          {
            task = "fetch_cup";
            seed = 3;
            temperature = 1.0;
            domain = Some "household";
          };
      deadline_ms = None;
    };
  check_request
    {|{"id":"v1","kind":"verify","steps":["halt"],"scenario":"aisle","domain":"warehouse","deadline_ms":25}|}
    {
      P.id = "v1";
      kind =
        P.Verify
          {
            steps = [ "halt" ];
            scenario = Some "aisle";
            domain = Some "warehouse";
            explain = false;
          };
      deadline_ms = Some 25.0;
    };
  check_request
    {|{"id":"s1","kind":"score_pair","steps_a":["proceed"],"steps_b":["halt"],"domain":"warehouse"}|}
    {
      P.id = "s1";
      kind =
        P.Score_pair
          {
            steps_a = [ "proceed" ];
            steps_b = [ "halt" ];
            scenario = None;
            domain = Some "warehouse";
            explain = false;
          };
      deadline_ms = None;
    }

let multi_engine =
  lazy
    (Engine.create_multi
       [
         (None, Corpus.build ~domain:(Dpoaf_domain.find_exn "household") ());
         (None, Corpus.build ~domain:(Dpoaf_domain.find_exn "warehouse") ());
       ])

let verify ?domain engine steps =
  Engine.handle engine
    {
      P.id = "x";
      kind = P.Verify { steps; scenario = None; domain; explain = false };
      deadline_ms = None;
    }

let test_multi_domain_routing () =
  let engine = Lazy.force multi_engine in
  Alcotest.(check (list string))
    "serves both, household default"
    [ "household"; "warehouse" ] (Engine.domains engine);
  let rule_book_size body =
    match body with
    | P.Verified { profile = p; _ } ->
        List.length p.P.satisfied + List.length p.P.violated
    | b -> Alcotest.failf "expected Verified, got %s" (P.status_of_body b)
  in
  let steps = [ "stop" ] in
  Alcotest.(check int) "household request hits the 10-spec book" 10
    (rule_book_size (verify ~domain:"household" engine steps));
  Alcotest.(check int) "warehouse request hits the 14-spec book" 14
    (rule_book_size (verify ~domain:"warehouse" engine steps));
  Alcotest.(check int) "untagged request goes to the default pack" 10
    (rule_book_size (verify engine steps))

let test_multi_domain_unserved_error () =
  let engine = Lazy.force multi_engine in
  match verify ~domain:"driving" engine [ "stop" ] with
  | P.Failed msg ->
      Alcotest.(check bool) "names the missing pack" true
        (contains msg "driving");
      Alcotest.(check bool) "lists the served packs" true
        (contains msg "household" && contains msg "warehouse")
  | b -> Alcotest.failf "expected Failed, got %s" (P.status_of_body b)

let test_create_multi_duplicate_rejected () =
  let corpus = Corpus.build ~domain:(Dpoaf_domain.find_exn "warehouse") () in
  match Engine.create_multi [ (None, corpus); (None, corpus) ] with
  | _ -> Alcotest.fail "expected Invalid_argument for duplicate packs"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "names the duplicate" true
        (contains msg "warehouse")

(* ---------------- driving stays bit-identical ---------------- *)

(* the driving pack must delegate to Dpoaf_driving, not re-derive: same
   rule book, same task set, same controller semantics *)
let test_driving_pack_delegates () =
  let domain = Dpoaf_domain.find_exn "driving" in
  let (module D : Domain.S) = domain in
  Alcotest.(check (list string))
    "same spec names"
    (List.map fst Dpoaf_driving.Specs.all)
    (Domain.spec_names domain);
  Alcotest.(check (list string))
    "same task ids"
    (List.map (fun t -> t.Dpoaf_driving.Tasks.id) Dpoaf_driving.Tasks.all)
    (List.map (fun t -> t.Domain.id) D.tasks);
  let steps = Dpoaf_driving.Responses.right_turn_after_ft in
  let p = D.profile_of_steps steps in
  Alcotest.(check int) "canonical response scores 15/15" 15
    (List.length p.Domain.satisfied);
  List.iter
    (fun t ->
      Alcotest.(check (list string))
        (t.Domain.id ^ ": candidate steps match the driving library")
        (Dpoaf_driving.Responses.candidate_steps
           (Dpoaf_driving.Tasks.find t.Domain.id))
        (Domain.candidate_steps domain t))
    D.tasks

let qsuite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests)

let () =
  Alcotest.run "domain"
    [
      ( "registry",
        [
          Alcotest.test_case "builtins registered" `Quick
            test_builtins_registered;
          Alcotest.test_case "unknown name lists valid packs" `Quick
            test_unknown_domain_error;
          Alcotest.test_case "duplicate name rejected" `Quick
            test_duplicate_registration_rejected;
        ] );
      ( "suites",
        [
          Alcotest.test_case "all packs pass the analysis gates" `Quick
            test_suites_pass_gates;
          Alcotest.test_case "spec_gen rejects a redundant suite" `Quick
            test_spec_gen_rejects_redundant_suite;
        ] );
      qsuite "properties" [ prop_profile_partitions ];
      ( "pipeline",
        [
          Alcotest.test_case "jobs-deterministic in every pack" `Slow
            test_collect_pairs_jobs_deterministic_all_packs;
        ] );
      ( "serve",
        [
          Alcotest.test_case "domain-tagged request goldens" `Quick
            test_domain_request_goldens;
          Alcotest.test_case "multi-domain routing" `Quick
            test_multi_domain_routing;
          Alcotest.test_case "unserved domain fails gracefully" `Quick
            test_multi_domain_unserved_error;
          Alcotest.test_case "duplicate packs rejected" `Quick
            test_create_multi_duplicate_rejected;
        ] );
      ( "driving",
        [
          Alcotest.test_case "pack delegates to the driving library" `Quick
            test_driving_pack_delegates;
        ] );
    ]
