open Dpoaf_lm
module Rng = Dpoaf_util.Rng

let clauses = [ "observe the light"; "if green go"; "if red stop"; "turn right" ]

let make_vocab () = Vocab.of_texts ("steps for the task" :: clauses)

let make_grammar vocab = Grammar.of_clauses vocab clauses

let make_model ?(dim = 8) ?(context = 6) ?(rank = 2) seed vocab =
  Model.create (Rng.create seed)
    { Model.dim; context; lora_rank = rank; arch = Model.Bow }
    vocab

(* ---------------- vocab ---------------- *)

let test_vocab_specials () =
  let v = make_vocab () in
  Alcotest.(check string) "bos" "<bos>" (Vocab.word v (Vocab.bos v));
  Alcotest.(check string) "sep" "<sep>" (Vocab.word v (Vocab.sep v));
  Alcotest.(check string) "eos" "<eos>" (Vocab.word v (Vocab.eos v));
  Alcotest.(check string) "unk" "<unk>" (Vocab.word v (Vocab.unk v))

let test_vocab_roundtrip () =
  let v = make_vocab () in
  let ids = Vocab.encode v "observe the light" in
  Alcotest.(check string) "decode" "observe the light" (Vocab.decode v ids)

let test_vocab_unk () =
  let v = make_vocab () in
  Alcotest.(check int) "unknown maps to unk" (Vocab.unk v) (Vocab.id v "zebra")

let test_vocab_dedup () =
  let v = Vocab.of_texts [ "go go go" ] in
  Alcotest.(check int) "4 specials + 1 word" 5 (Vocab.size v)

let test_vocab_import_export () =
  let v = make_vocab () in
  let v' = Vocab.import (Vocab.export v) in
  Alcotest.(check int) "same size" (Vocab.size v) (Vocab.size v');
  Alcotest.(check int) "same ids" (Vocab.id v "light") (Vocab.id v' "light");
  Alcotest.(check bool) "malformed rejected" true
    (try ignore (Vocab.import [ "a"; "b" ]); false with Invalid_argument _ -> true)

(* ---------------- grammar ---------------- *)

let test_grammar_accepts_clauses () =
  let v = make_vocab () in
  let g = make_grammar v in
  let tokens = Grammar.tokens_of_steps v [ "observe the light"; "if green go" ] in
  Alcotest.(check bool) "accepted" true
    (Grammar.accepts g ~min_clauses:1 ~max_clauses:4 tokens)

let test_grammar_rejects_garbage () =
  let v = make_vocab () in
  let g = make_grammar v in
  let tokens = Grammar.tokens_of_steps v [ "go green if" ] in
  Alcotest.(check bool) "rejected" false
    (Grammar.accepts g ~min_clauses:1 ~max_clauses:4 tokens)

let test_grammar_min_clauses () =
  let v = make_vocab () in
  let g = make_grammar v in
  let tokens = Grammar.tokens_of_steps v [ "observe the light" ] in
  Alcotest.(check bool) "too few" false
    (Grammar.accepts g ~min_clauses:2 ~max_clauses:4 tokens);
  Alcotest.(check bool) "enough" true
    (Grammar.accepts g ~min_clauses:1 ~max_clauses:4 tokens)

let test_grammar_max_clauses () =
  let v = make_vocab () in
  let g = make_grammar v in
  let three = [ "turn right"; "turn right"; "turn right" ] in
  Alcotest.(check bool) "too many" false
    (Grammar.accepts g ~min_clauses:1 ~max_clauses:2 (Grammar.tokens_of_steps v three));
  Alcotest.(check bool) "within bound" true
    (Grammar.accepts g ~min_clauses:1 ~max_clauses:3 (Grammar.tokens_of_steps v three))

let test_grammar_steps_roundtrip () =
  let v = make_vocab () in
  let steps = [ "observe the light"; "turn right" ] in
  Alcotest.(check (list string)) "roundtrip" steps
    (Grammar.steps_of_tokens v (Grammar.tokens_of_steps v steps))

let test_grammar_allowed_nonempty_walk () =
  let v = make_vocab () in
  let g = make_grammar v in
  (* Along any reachable non-final state the allowed set is non-empty. *)
  let rec walk state depth =
    if depth > 20 || Grammar.is_final g state then ()
    else begin
      let allowed = Grammar.allowed g ~min_clauses:1 ~max_clauses:3 state in
      Alcotest.(check bool) "allowed non-empty" true (allowed <> []);
      List.iter
        (fun tok ->
          match Grammar.advance g state tok with
          | Some s' -> walk s' (depth + 1)
          | None -> Alcotest.fail "allowed token rejected by advance")
        allowed
    end
  in
  walk (Grammar.start g) 0

let test_grammar_empty_rejected () =
  let v = make_vocab () in
  Alcotest.(check bool) "empty clause list" true
    (try ignore (Grammar.of_clauses v []); false with Invalid_argument _ -> true)

(* ---------------- model scoring and sampling ---------------- *)

(* All complete responses of the grammar up to the clause bound. *)
let enumerate_responses g ~min_clauses ~max_clauses =
  let out = ref [] in
  let rec go state acc =
    if Grammar.is_final g state then out := List.rev acc :: !out
    else
      List.iter
        (fun tok ->
          match Grammar.advance g state tok with
          | Some s' -> go s' (tok :: acc)
          | None -> ())
        (Grammar.allowed g ~min_clauses ~max_clauses state)
  in
  go (Grammar.start g) [];
  !out

let test_model_distribution_normalizes () =
  let v = make_vocab () in
  let g = make_grammar v in
  let model = make_model 42 v in
  let prompt = Vocab.encode v "steps for the task" in
  let responses = enumerate_responses g ~min_clauses:1 ~max_clauses:2 in
  Alcotest.(check bool) "many responses" true (List.length responses > 4);
  let total =
    List.fold_left
      (fun acc tokens ->
        acc
        +. exp
             (Model.response_logprob model ~prompt ~grammar:g ~min_clauses:1
                ~max_clauses:2 ~tokens))
      0.0 responses
  in
  Alcotest.(check bool)
    (Printf.sprintf "probabilities sum to 1 (got %f)" total)
    true
    (abs_float (total -. 1.0) < 1e-6)

let test_sampler_agrees_with_logprob () =
  (* Empirical sampling frequency tracks exp(logprob). *)
  let v = make_vocab () in
  let g = make_grammar v in
  let model = make_model 7 v in
  let prompt = Vocab.encode v "steps for the task" in
  let snap = Sampler.snapshot model in
  let rng = Rng.create 11 in
  let n = 4000 in
  let counts = Hashtbl.create 32 in
  for _ = 1 to n do
    let tokens = Sampler.sample snap rng ~prompt ~grammar:g ~min_clauses:1 ~max_clauses:2 () in
    Hashtbl.replace counts tokens (1 + Option.value ~default:0 (Hashtbl.find_opt counts tokens))
  done;
  (* check the most frequent response *)
  let best, freq =
    Hashtbl.fold (fun k c (bk, bc) -> if c > bc then (k, c) else (bk, bc)) counts ([], 0)
  in
  let p_model =
    exp (Model.response_logprob model ~prompt ~grammar:g ~min_clauses:1 ~max_clauses:2 ~tokens:best)
  in
  let p_emp = float_of_int freq /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "empirical %.3f vs model %.3f" p_emp p_model)
    true
    (abs_float (p_emp -. p_model) < 0.05)

let test_sampler_all_samples_accepted () =
  let v = make_vocab () in
  let g = make_grammar v in
  let model = make_model 3 v in
  let snap = Sampler.snapshot model in
  let rng = Rng.create 5 in
  let prompt = Vocab.encode v "steps for the task" in
  for _ = 1 to 100 do
    let tokens = Sampler.sample snap rng ~prompt ~grammar:g ~min_clauses:2 ~max_clauses:4 () in
    Alcotest.(check bool) "accepted" true
      (Grammar.accepts g ~min_clauses:2 ~max_clauses:4 tokens);
    let steps = Grammar.steps_of_tokens v tokens in
    Alcotest.(check bool) "clause count" true
      (List.length steps >= 2 && List.length steps <= 4)
  done

let test_greedy_deterministic () =
  let v = make_vocab () in
  let g = make_grammar v in
  let model = make_model 9 v in
  let snap = Sampler.snapshot model in
  let prompt = Vocab.encode v "steps for the task" in
  let a = Sampler.greedy snap ~prompt ~grammar:g ~min_clauses:1 ~max_clauses:3 in
  let b = Sampler.greedy snap ~prompt ~grammar:g ~min_clauses:1 ~max_clauses:3 in
  Alcotest.(check bool) "same output" true (a = b)

let test_clone_independent () =
  let v = make_vocab () in
  let model = make_model 1 v in
  let copy = Model.clone model in
  Dpoaf_tensor.Tensor.set model.Model.bias 0 99.0;
  Alcotest.(check bool) "clone unaffected" true
    (Dpoaf_tensor.Tensor.get copy.Model.bias 0 <> 99.0)

(* ---------------- pretraining ---------------- *)

let test_pretrain_reduces_nll_and_shifts_sampling () =
  let v = make_vocab () in
  let g = make_grammar v in
  let model = make_model 21 v in
  let prompt = Vocab.encode v "steps for the task" in
  let target_steps = [ "observe the light"; "if green go" ] in
  let ex =
    {
      Pretrain.prompt;
      tokens = Grammar.tokens_of_steps v target_steps;
      grammar = g;
      min_clauses = 1;
      max_clauses = 3;
    }
  in
  let before = Pretrain.nll model ex in
  let losses = Pretrain.train model [ ex ] ~epochs:60 ~batch:4 ~lr:0.05 (Rng.create 2) in
  let after = Pretrain.nll model ex in
  Alcotest.(check bool)
    (Printf.sprintf "nll decreased (%.3f -> %.3f)" before after)
    true (after < before *. 0.5);
  Alcotest.(check bool) "loss curve decreases" true
    (List.nth losses (List.length losses - 1) < List.hd losses);
  (* the trained model now greedily emits the corpus response *)
  let snap = Sampler.snapshot model in
  let greedy = Sampler.greedy snap ~prompt ~grammar:g ~min_clauses:1 ~max_clauses:3 in
  Alcotest.(check (list string)) "greedy = corpus" target_steps
    (Grammar.steps_of_tokens v greedy)

(* ---------------- prompt formatting ---------------- *)

let test_prompt_llama2 () =
  let p = Prompt_format.llama2 "turn right at the traffic light" in
  let contains sub =
    let n = String.length p and m = String.length sub in
    let rec go i = i + m <= n && (String.sub p i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "inst" true (contains "[INST]");
  Alcotest.(check bool) "sys" true (contains "<<SYS>>");
  Alcotest.(check bool) "task" true (contains "turn right at the traffic light");
  Alcotest.(check bool) "closes" true (contains "[/INST]")

let test_prompt_alignment_query () =
  let q =
    Prompt_format.alignment_query ~props:[ "green light" ] ~actions:[ "stop" ]
      ~steps:[ "watch the light" ]
  in
  let contains sub =
    let n = String.length q and m = String.length sub in
    let rec go i = i + m <= n && (String.sub q i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "props listed" true (contains "{green light}");
  Alcotest.(check bool) "numbered step" true (contains "1. watch the light")

(* ---------------- GRU architecture ---------------- *)

let make_gru_model ?(dim = 6) seed vocab =
  Model.create (Rng.create seed)
    { Model.dim; context = 8; lora_rank = 2; arch = Model.Gru }
    vocab

let test_gru_distribution_normalizes () =
  let v = make_vocab () in
  let g = make_grammar v in
  let model = make_gru_model 51 v in
  let prompt = Vocab.encode v "steps for the task" in
  let responses = enumerate_responses g ~min_clauses:1 ~max_clauses:2 in
  let total =
    List.fold_left
      (fun acc tokens ->
        acc
        +. exp
             (Model.response_logprob model ~prompt ~grammar:g ~min_clauses:1
                ~max_clauses:2 ~tokens))
      0.0 responses
  in
  Alcotest.(check bool)
    (Printf.sprintf "gru probabilities sum to 1 (got %f)" total)
    true
    (abs_float (total -. 1.0) < 1e-6)

let test_gru_sampler_matches_node_path () =
  (* The sampler's float GRU must agree with the autodiff GRU. *)
  let v = make_vocab () in
  let model = make_gru_model 52 v in
  let context = Vocab.encode v "steps for the task observe the light" in
  let allowed = [ Vocab.id v "go"; Vocab.id v "stop"; Vocab.id v "turn" ] in
  let snap = Sampler.snapshot model in
  let sampler_probs =
    Sampler.step_distribution snap ~context ~allowed ~temperature:1.0
  in
  List.iteri
    (fun k target ->
      let tape = Dpoaf_tensor.Autodiff.Tape.create () in
      let bound = Model.bind model tape in
      let node = Model.step_logprob model bound ~context ~allowed ~target in
      let p_node = exp (Dpoaf_tensor.Tensor.get (Dpoaf_tensor.Autodiff.value node) 0) in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "token %d" target)
        p_node sampler_probs.(k))
    allowed

let test_gru_order_sensitive () =
  (* Unlike the bag-of-words conditioner, the GRU distinguishes token
     order. *)
  let v = make_vocab () in
  let model = make_gru_model 53 v in
  let allowed = [ Vocab.id v "go"; Vocab.id v "stop" ] in
  let snap = Sampler.snapshot model in
  let dist ws = Sampler.step_distribution snap ~context:(Vocab.encode v ws) ~allowed ~temperature:1.0 in
  let a = dist "red green" and b = dist "green red" in
  Alcotest.(check bool) "order matters" true (abs_float (a.(0) -. b.(0)) > 1e-9);
  (* and the Bow conditioner does not *)
  let bow = make_model 53 v in
  let snap = Sampler.snapshot bow in
  let dist ws = Sampler.step_distribution snap ~context:(Vocab.encode v ws) ~allowed ~temperature:1.0 in
  let a = dist "red green" and b = dist "green red" in
  Alcotest.(check (float 1e-12)) "bow order-invariant" a.(0) b.(0)

let test_gru_gradients_finite_difference () =
  let v = make_vocab () in
  let g = make_grammar v in
  let model = make_gru_model ~dim:4 54 v in
  let prompt = Vocab.encode v "steps for the task" in
  let tokens = Grammar.tokens_of_steps v [ "if green go" ] in
  let loss () =
    -.Model.response_logprob model ~prompt ~grammar:g ~min_clauses:1 ~max_clauses:2
        ~tokens
  in
  (* analytic gradients *)
  let tape = Dpoaf_tensor.Autodiff.Tape.create () in
  let bound = Model.bind model tape in
  let lp =
    Model.response_logprob_node model bound ~prompt ~grammar:g ~min_clauses:1
      ~max_clauses:2 ~tokens
  in
  Dpoaf_tensor.Autodiff.backward tape (Dpoaf_tensor.Autodiff.neg tape lp);
  let grads = Model.pretrain_grads model bound in
  let eps = 1e-5 in
  List.iter
    (fun ((p : Dpoaf_tensor.Optim.param), grad) ->
      (* spot-check a few entries of every parameter tensor *)
      let n = Dpoaf_tensor.Tensor.numel p.Dpoaf_tensor.Optim.tensor in
      List.iter
        (fun i ->
          let i = i mod n in
          let orig = Dpoaf_tensor.Tensor.get p.Dpoaf_tensor.Optim.tensor i in
          Dpoaf_tensor.Tensor.set p.Dpoaf_tensor.Optim.tensor i (orig +. eps);
          let up = loss () in
          Dpoaf_tensor.Tensor.set p.Dpoaf_tensor.Optim.tensor i (orig -. eps);
          let down = loss () in
          Dpoaf_tensor.Tensor.set p.Dpoaf_tensor.Optim.tensor i orig;
          let numeric = (up -. down) /. (2.0 *. eps) in
          let analytic = Dpoaf_tensor.Tensor.get grad i in
          if abs_float (numeric -. analytic) > 1e-3 *. (1.0 +. abs_float numeric) then
            Alcotest.failf "%s[%d]: numeric %.6f vs analytic %.6f"
              p.Dpoaf_tensor.Optim.name i numeric analytic)
        [ 0; 3; 7 ])
    grads

let test_gru_pretrain_reduces_nll () =
  let v = make_vocab () in
  let g = make_grammar v in
  let model = make_gru_model 55 v in
  let prompt = Vocab.encode v "steps for the task" in
  let ex =
    {
      Pretrain.prompt;
      tokens = Grammar.tokens_of_steps v [ "observe the light"; "if red stop" ];
      grammar = g;
      min_clauses = 1;
      max_clauses = 3;
    }
  in
  let before = Pretrain.nll model ex in
  let _ = Pretrain.train model [ ex ] ~epochs:40 ~batch:4 ~lr:0.05 (Rng.create 3) in
  let after = Pretrain.nll model ex in
  Alcotest.(check bool)
    (Printf.sprintf "gru nll %.3f -> %.3f" before after)
    true (after < before *. 0.7)

let test_gru_checkpoint_roundtrip () =
  let v = make_vocab () in
  let g = make_grammar v in
  let model = make_gru_model 56 v in
  let prompt = Vocab.encode v "steps for the task" in
  let tokens = Grammar.tokens_of_steps v [ "turn right" ] in
  let lp m =
    Model.response_logprob m ~prompt ~grammar:g ~min_clauses:1 ~max_clauses:2 ~tokens
  in
  let path = Filename.temp_file "dpoaf_gru" ".ckpt" in
  Checkpoint.save model path;
  let loaded = Checkpoint.load path in
  Sys.remove path;
  Alcotest.(check bool) "arch preserved" true
    (loaded.Model.config.Model.arch = Model.Gru);
  Alcotest.(check (float 1e-12)) "same logprob" (lp model) (lp loaded)

(* ---------------- incremental forward & fused scoring ---------------- *)

module Tensor = Dpoaf_tensor.Tensor
module Autodiff = Dpoaf_tensor.Autodiff

let bits_equal_arrays a b =
  Array.length a = Array.length b
  && begin
       let ok = ref true in
       Array.iteri
         (fun i v ->
           if Int64.bits_of_float v <> Int64.bits_of_float b.(i) then ok := false)
         a;
       !ok
     end

(* The incremental init/extend walk must visit exactly the hidden vectors
   the full-context recomputation produces — for both architectures. *)
let check_incremental_walk model =
  let v = make_vocab () in
  let prompt = Vocab.encode v "steps for the task" in
  let tokens =
    Grammar.tokens_of_steps v [ "observe the light"; "if green go"; "turn right" ]
  in
  let state = ref (Model.Fwd.init model ~prompt) in
  let prefix = ref [] in
  List.iter
    (fun tok ->
      let context = Model.context_of model ~prompt ~prefix:(List.rev !prefix) in
      let full = Model.Fwd.hidden_of_context model context in
      let incr = Model.Fwd.hidden model !state in
      Alcotest.(check bool) "hidden bits" true (bits_equal_arrays full incr);
      state := Model.Fwd.extend model !state tok;
      prefix := tok :: !prefix)
    (tokens @ [ Vocab.eos v ])

let test_incremental_walk_bow () =
  let v = make_vocab () in
  (* context 4 < response length forces the Bow window to roll *)
  check_incremental_walk (make_model ~context:4 61 v)

let test_incremental_walk_gru () =
  let v = make_vocab () in
  check_incremental_walk (make_gru_model 62 v)

(* The float forward (Fwd, used by the sampler) and the autodiff forward
   (hidden_node, used by training) must agree bit-for-bit. *)
let check_fwd_matches_node model =
  let v = make_vocab () in
  let context =
    Model.context_of model
      ~prompt:(Vocab.encode v "steps for the task")
      ~prefix:(Vocab.encode v "observe the light")
  in
  let float_h = Model.Fwd.hidden_of_context model context in
  let tape = Autodiff.Tape.create () in
  let bound = Model.bind model tape in
  let node_h = Autodiff.value (Model.hidden_node model bound ~context) in
  Alcotest.(check bool) "fwd = node bits" true
    (bits_equal_arrays float_h node_h.Tensor.data)

let test_fwd_matches_node_bow () =
  let v = make_vocab () in
  check_fwd_matches_node (make_model 63 v)

let test_fwd_matches_node_gru () =
  let v = make_vocab () in
  check_fwd_matches_node (make_gru_model 64 v)

(* Fused and unfused scoring are the same function: same value, same
   parameter gradients, to the last bit. *)
let check_fused_unfused_response model =
  let v = make_vocab () in
  let g = make_grammar v in
  let prompt = Vocab.encode v "steps for the task" in
  let tokens =
    Grammar.tokens_of_steps v [ "observe the light"; "if red stop" ]
  in
  let run impl =
    let tape = Autodiff.Tape.create () in
    let bound = Model.bind model tape in
    let lp =
      Model.response_logprob_node ~impl model bound ~prompt ~grammar:g
        ~min_clauses:1 ~max_clauses:3 ~tokens
    in
    Autodiff.backward tape lp;
    ( Tensor.get (Autodiff.value lp) 0,
      List.map (fun (_, grad) -> Tensor.copy grad) (Model.pretrain_grads model bound) )
  in
  let v_f, g_f = run Model.Fused in
  let v_u, g_u = run Model.Unfused in
  Alcotest.(check bool) "value bits" true
    (Int64.bits_of_float v_f = Int64.bits_of_float v_u);
  List.iteri
    (fun i (gf, gu) ->
      Alcotest.(check bool)
        (Printf.sprintf "grad %d bits" i)
        true
        (bits_equal_arrays gf.Tensor.data gu.Tensor.data))
    (List.combine g_f g_u)

let test_fused_unfused_bow () =
  let v = make_vocab () in
  check_fused_unfused_response (make_model ~context:4 65 v)

let test_fused_unfused_gru () =
  let v = make_vocab () in
  check_fused_unfused_response (make_gru_model 66 v)

(* A cached prompt state is transparent: sampling from it consumes the rng
   exactly as the one-shot path does. *)
let test_sample_from_state_equals_sample () =
  let v = make_vocab () in
  let g = make_grammar v in
  let model = make_model 67 v in
  let snap = Sampler.snapshot model in
  let prompt = Vocab.encode v "steps for the task" in
  let state = Sampler.prompt_state snap ~prompt in
  for seed = 0 to 19 do
    let direct =
      Sampler.sample snap (Rng.create seed) ~prompt ~grammar:g ~min_clauses:1
        ~max_clauses:3 ()
    in
    let cached =
      Sampler.sample_from snap (Rng.create seed) ~state ~grammar:g
        ~min_clauses:1 ~max_clauses:3 ()
    in
    Alcotest.(check (list int)) "same tokens" direct cached
  done

(* ---------------- checkpointing ---------------- *)

let test_checkpoint_roundtrip () =
  let v = make_vocab () in
  let g = make_grammar v in
  let model = make_model 33 v in
  let prompt = Vocab.encode v "steps for the task" in
  let tokens = Grammar.tokens_of_steps v [ "turn right" ] in
  let lp model =
    Model.response_logprob model ~prompt ~grammar:g ~min_clauses:1 ~max_clauses:2 ~tokens
  in
  let path = Filename.temp_file "dpoaf" ".ckpt" in
  Checkpoint.save model path;
  let loaded = Checkpoint.load path in
  Sys.remove path;
  Alcotest.(check (float 1e-12)) "same logprob" (lp model) (lp loaded)

let contains hay needle =
  let h = String.length hay and n = String.length needle in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* run [f], expect [Corrupt] naming exactly [path], return the reason *)
let expect_corrupt what path f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Checkpoint.Corrupt" what
  | exception Checkpoint.Corrupt { path = p; reason } ->
      Alcotest.(check string) (what ^ ": path in error") path p;
      reason

let with_bytes bytes f =
  let path = Filename.temp_file "dpoaf_corrupt" ".ckpt" in
  let oc = open_out_bin path in
  output_string oc bytes;
  close_out oc;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_checkpoint_bad_magic () =
  with_bytes "this is not a checkpoint at all" @@ fun path ->
  let reason = expect_corrupt "bad magic" path (fun () -> Checkpoint.load path) in
  Alcotest.(check bool) "reason names the magic" true (contains reason "magic");
  (* a file shorter than the magic is reported as such, not as a decode
     failure deep inside Marshal *)
  with_bytes "DP" @@ fun short ->
  let reason =
    expect_corrupt "short file" short (fun () -> Checkpoint.load short)
  in
  Alcotest.(check bool) "reason names the length" true
    (contains reason "shorter than")

let test_checkpoint_version_mismatch () =
  let buf = Buffer.create 16 in
  Buffer.add_string buf "DPOAFCKP";
  (* 4-byte big-endian version word, deliberately wrong *)
  List.iter
    (fun shift -> Buffer.add_char buf (Char.chr ((999 lsr shift) land 0xff)))
    [ 24; 16; 8; 0 ];
  Buffer.add_string buf "payload";
  with_bytes (Buffer.contents buf) @@ fun path ->
  let reason =
    expect_corrupt "version skew" path (fun () -> Checkpoint.load path)
  in
  Alcotest.(check bool) "reason has the found version" true
    (contains reason "999");
  Alcotest.(check bool) "reason has the expected version" true
    (contains reason (string_of_int Checkpoint.version))

let test_checkpoint_truncated_payload () =
  let v = make_vocab () in
  let model = make_model 41 v in
  let path = Filename.temp_file "dpoaf_trunc" ".ckpt" in
  Checkpoint.save model path;
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let bytes = really_input_string ic (len - 10) in
  close_in ic;
  Sys.remove path;
  with_bytes bytes @@ fun truncated ->
  let reason =
    expect_corrupt "truncation" truncated (fun () -> Checkpoint.load truncated)
  in
  Alcotest.(check bool) "reason says truncated/corrupt" true
    (contains reason "truncated")

let () =
  Alcotest.run "lm"
    [
      ( "vocab",
        [
          Alcotest.test_case "specials" `Quick test_vocab_specials;
          Alcotest.test_case "roundtrip" `Quick test_vocab_roundtrip;
          Alcotest.test_case "unk" `Quick test_vocab_unk;
          Alcotest.test_case "dedup" `Quick test_vocab_dedup;
          Alcotest.test_case "import/export" `Quick test_vocab_import_export;
        ] );
      ( "grammar",
        [
          Alcotest.test_case "accepts clauses" `Quick test_grammar_accepts_clauses;
          Alcotest.test_case "rejects garbage" `Quick test_grammar_rejects_garbage;
          Alcotest.test_case "min clauses" `Quick test_grammar_min_clauses;
          Alcotest.test_case "max clauses" `Quick test_grammar_max_clauses;
          Alcotest.test_case "steps roundtrip" `Quick test_grammar_steps_roundtrip;
          Alcotest.test_case "allowed walk" `Quick test_grammar_allowed_nonempty_walk;
          Alcotest.test_case "empty rejected" `Quick test_grammar_empty_rejected;
        ] );
      ( "model",
        [
          Alcotest.test_case "distribution normalizes" `Quick
            test_model_distribution_normalizes;
          Alcotest.test_case "sampler agrees with logprob" `Quick
            test_sampler_agrees_with_logprob;
          Alcotest.test_case "samples accepted" `Quick test_sampler_all_samples_accepted;
          Alcotest.test_case "greedy deterministic" `Quick test_greedy_deterministic;
          Alcotest.test_case "clone independent" `Quick test_clone_independent;
        ] );
      ( "pretrain",
        [
          Alcotest.test_case "reduces nll" `Slow
            test_pretrain_reduces_nll_and_shifts_sampling;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "bad magic" `Quick test_checkpoint_bad_magic;
          Alcotest.test_case "version mismatch" `Quick
            test_checkpoint_version_mismatch;
          Alcotest.test_case "truncated payload" `Quick
            test_checkpoint_truncated_payload;
        ] );
      ( "prompt-format",
        [
          Alcotest.test_case "llama2 template" `Quick test_prompt_llama2;
          Alcotest.test_case "alignment query" `Quick test_prompt_alignment_query;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "walk = full context (bow)" `Quick
            test_incremental_walk_bow;
          Alcotest.test_case "walk = full context (gru)" `Quick
            test_incremental_walk_gru;
          Alcotest.test_case "fwd = node (bow)" `Quick test_fwd_matches_node_bow;
          Alcotest.test_case "fwd = node (gru)" `Quick test_fwd_matches_node_gru;
          Alcotest.test_case "fused = unfused (bow)" `Quick test_fused_unfused_bow;
          Alcotest.test_case "fused = unfused (gru)" `Quick test_fused_unfused_gru;
          Alcotest.test_case "state sampling = prompt sampling" `Quick
            test_sample_from_state_equals_sample;
        ] );
      ( "gru",
        [
          Alcotest.test_case "distribution normalizes" `Quick
            test_gru_distribution_normalizes;
          Alcotest.test_case "sampler matches node path" `Quick
            test_gru_sampler_matches_node_path;
          Alcotest.test_case "order sensitive" `Quick test_gru_order_sensitive;
          Alcotest.test_case "gradients" `Quick test_gru_gradients_finite_difference;
          Alcotest.test_case "pretrain" `Slow test_gru_pretrain_reduces_nll;
          Alcotest.test_case "checkpoint" `Quick test_gru_checkpoint_roundtrip;
        ] );
    ]
