(* Standalone validator for the static-analysis artifact (used by `make
   analysis-check`):

     analysis_validate REPORT.json

   checks the `dpoaf_cli analyze --json` document: a diagnostics array of
   well-formed records (stable code syntax, known severities and artifact
   kinds, non-empty messages, string-or-null witnesses), sorted most
   severe first, plus a summary whose per-severity counts match a recount
   of the array.  Exits non-zero naming the first violation. *)

module Json = Dpoaf_util.Json

let failures = ref 0

let check label ok =
  if not ok then begin
    incr failures;
    Printf.eprintf "FAIL: %s\n" label
  end

let code_ok code =
  let prefix_ok =
    List.exists
      (fun p ->
        String.length code = String.length p + 3
        && String.sub code 0 (String.length p) = p)
      [ "CTL"; "SPEC"; "MDL"; "VAC"; "SUITE" ]
  in
  prefix_ok
  && String.for_all
       (fun c -> c >= '0' && c <= '9')
       (String.sub code (String.length code - 3) 3)

let severity_rank = function
  | "error" -> Some 0
  | "warning" -> Some 1
  | "info" -> Some 2
  | _ -> None

let validate_diag i d =
  let str k = Option.bind (Json.member k d) Json.to_str in
  let ctx = Printf.sprintf "diagnostic %d" i in
  (match str "code" with
  | Some code -> check (Printf.sprintf "%s: code %S well-formed" ctx code) (code_ok code)
  | None -> check (ctx ^ ": has a code") false);
  let rank =
    match str "severity" with
    | Some s ->
        let r = severity_rank s in
        check (Printf.sprintf "%s: known severity %S" ctx s) (r <> None);
        r
    | None ->
        check (ctx ^ ": has a severity") false;
        None
  in
  (match Json.member "artifact" d with
  | Some a ->
      let akind = Option.bind (Json.member "kind" a) Json.to_str in
      check
        (ctx ^ ": artifact kind known")
        (List.mem akind
           [ Some "controller"; Some "spec"; Some "model"; Some "suite" ]);
      check
        (ctx ^ ": artifact name non-empty")
        (match Option.bind (Json.member "name" a) Json.to_str with
        | Some n -> n <> ""
        | None -> false)
  | None -> check (ctx ^ ": has an artifact") false);
  check
    (ctx ^ ": message non-empty")
    (match str "message" with Some m -> m <> "" | None -> false);
  check
    (ctx ^ ": witness is string or null")
    (match Json.member "witness" d with
    | Some (Json.Str _) | Some Json.Null -> true
    | _ -> false);
  rank

let () =
  if Array.length Sys.argv < 2 then begin
    prerr_endline "usage: analysis_validate REPORT.json";
    exit 2
  end;
  let path = Sys.argv.(1) in
  (match Json.parse (In_channel.with_open_text path In_channel.input_all) with
  | Error msg -> check (Printf.sprintf "%s parses as JSON (%s)" path msg) false
  | Ok json -> (
      (* the report header must identify the pack it analyzed, so the
         per-pack artifacts of `make analysis-check` are self-describing *)
      check (path ^ " header names the analyzed domain")
        (match Option.bind (Json.member "domain" json) Json.to_str with
        | Some d -> d <> ""
        | None -> false);
      match Option.bind (Json.member "diagnostics" json) Json.to_list with
      | None -> check (path ^ " has a diagnostics array") false
      | Some diags ->
          let ranks = List.mapi validate_diag diags in
          let present = List.filter_map Fun.id ranks in
          check "diagnostics sorted most severe first"
            (present = List.sort compare present);
          let count r =
            float_of_int (List.length (List.filter (( = ) r) present))
          in
          let summary k =
            Option.bind (Json.member "summary" json)
              (fun s -> Option.bind (Json.member k s) Json.to_float)
          in
          List.iter
            (fun (k, r) ->
              check
                (Printf.sprintf "summary.%s matches recount" k)
                (summary k = Some (count r)))
            [ ("errors", 0); ("warnings", 1); ("infos", 2) ];
          check "summary.total matches recount"
            (summary "total" = Some (float_of_int (List.length diags)))));
  if !failures > 0 then begin
    Printf.eprintf "%d validation failure(s) in %s\n" !failures path;
    exit 1
  end
  else Printf.printf "%s: analysis report OK\n" path
