(* Standalone validator for the telemetry artifacts (used by `make
   trace-check`):

     trace_validate TRACE.jsonl [METRICS.json]

   checks the JSONL event log (span fields, unique ids, resolvable
   parents, time containment, terminating metrics line), the sibling
   TRACE.jsonl.perfetto.json Chrome trace, and optionally a
   --metrics-json summary.  Exits non-zero naming the first violation. *)

module Trace = Dpoaf_exec.Trace
module Json = Dpoaf_util.Json

let failures = ref 0

let check label ok =
  if not ok then begin
    incr failures;
    Printf.eprintf "FAIL: %s\n" label
  end

let validate_jsonl path =
  let reader = Trace.read_jsonl path in
  let spans = reader.Trace.spans in
  check "at least one span recorded" (spans <> []);
  let ids = Hashtbl.create 64 in
  List.iter
    (fun (e : Trace.event) ->
      check (Printf.sprintf "span %d has a name" e.Trace.id) (e.Trace.name <> "");
      check (Printf.sprintf "span %d id unique" e.Trace.id)
        (not (Hashtbl.mem ids e.Trace.id));
      Hashtbl.add ids e.Trace.id e;
      check
        (Printf.sprintf "span %d (%s) non-negative times" e.Trace.id e.Trace.name)
        (e.Trace.ts_us >= 0.0 && e.Trace.dur_us >= 0.0))
    spans;
  List.iter
    (fun (e : Trace.event) ->
      if e.Trace.parent >= 0 then begin
        check
          (Printf.sprintf "span %d (%s) parent %d resolvable" e.Trace.id
             e.Trace.name e.Trace.parent)
          (Hashtbl.mem ids e.Trace.parent);
        match Hashtbl.find_opt ids e.Trace.parent with
        | None -> ()
        | Some (p : Trace.event) ->
            (* 1µs slack: start/end timestamps are separate clock reads *)
            check
              (Printf.sprintf "span %d (%s) within parent %d (%s)" e.Trace.id
                 e.Trace.name p.Trace.id p.Trace.name)
              (e.Trace.ts_us +. 1.0 >= p.Trace.ts_us
              && e.Trace.ts_us +. e.Trace.dur_us
                 <= p.Trace.ts_us +. p.Trace.dur_us +. 1.0)
      end)
    spans;
  let starts = List.map (fun (e : Trace.event) -> e.Trace.ts_us) spans in
  check "spans sorted by start time" (starts = List.sort compare starts);
  check "terminating metrics line present" (reader.Trace.metrics <> []);
  (spans, reader.Trace.metrics)

let validate_chrome path nspans =
  match Json.parse (In_channel.with_open_text path In_channel.input_all) with
  | Error msg ->
      check (Printf.sprintf "%s parses as JSON (%s)" path msg) false
  | Ok json -> (
      match Option.bind (Json.member "traceEvents" json) Json.to_list with
      | None -> check (path ^ " has a traceEvents array") false
      | Some events ->
          check
            (Printf.sprintf "%s: one trace event per span (%d vs %d)" path
               (List.length events) nspans)
            (List.length events = nspans);
          List.iter
            (fun ev ->
              let str k = Option.bind (Json.member k ev) Json.to_str in
              let num k = Option.bind (Json.member k ev) Json.to_float in
              check "event has name" (str "name" <> None);
              check "event is a complete (ph=X) event" (str "ph" = Some "X");
              check "event has ts/dur/pid/tid"
                (num "ts" <> None && num "dur" <> None && num "pid" <> None
               && num "tid" <> None))
            events)

let validate_metrics_json path =
  match Json.parse (In_channel.with_open_text path In_channel.input_all) with
  | Error msg -> check (Printf.sprintf "%s parses as JSON (%s)" path msg) false
  | Ok json ->
      (* Empty histograms emit only NAME.count = 0 (a finetune run never
         observes sim.rollout and vice versa), so percentiles are required
         only once the histogram has samples. *)
      List.iter
        (fun hist ->
          let num suffix =
            Option.bind (Json.member (hist ^ "." ^ suffix) json) Json.to_float
          in
          check (Printf.sprintf "%s: %s.count present" path hist)
            (num "count" <> None);
          if num "count" <> Some 0.0 then
            List.iter
              (fun suffix ->
                check (Printf.sprintf "%s: %s.%s present" path hist suffix)
                  (num suffix <> None))
              [ "p50"; "p90"; "p99" ])
        [ "feedback.score"; "sim.rollout"; "dpo.step" ]

let () =
  let argc = Array.length Sys.argv in
  if argc < 2 then begin
    prerr_endline "usage: trace_validate TRACE.jsonl [METRICS.json]";
    exit 2
  end;
  let trace_path = Sys.argv.(1) in
  let spans, metrics = validate_jsonl trace_path in
  let chrome = trace_path ^ ".perfetto.json" in
  if Sys.file_exists chrome then validate_chrome chrome (List.length spans)
  else check (chrome ^ " exists") false;
  if argc > 2 then validate_metrics_json Sys.argv.(2);
  if !failures > 0 then begin
    Printf.eprintf "%d validation failure(s) in %s\n" !failures trace_path;
    exit 1
  end
  else
    Printf.printf "%s: %d spans, %d metrics, chrome trace OK\n" trace_path
      (List.length spans) (List.length metrics)
