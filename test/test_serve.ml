open Dpoaf_serve
module P = Protocol
module Metrics = Dpoaf_exec.Metrics

let ok_profile = { P.score = 0; satisfied = []; violated = []; vacuous = [] }

let body_testable =
  Alcotest.testable
    (fun ppf b -> Format.pp_print_string ppf (P.status_of_body b))
    ( = )

(* ---------------- protocol goldens ---------------- *)

(* exact wire bytes, both directions: the daemon and external clients
   must agree on these strings forever *)

let check_request golden req =
  Alcotest.(check string) "encode" golden (P.request_to_string req);
  match P.request_of_string golden with
  | Error e -> Alcotest.fail ("decode: " ^ e)
  | Ok r -> Alcotest.(check bool) "decode equals value" true (r = req)

let check_response golden resp =
  Alcotest.(check string) "encode" golden (P.response_to_string resp);
  match P.response_of_string golden with
  | Error e -> Alcotest.fail ("decode: " ^ e)
  | Ok r -> Alcotest.(check bool) "decode equals value" true (r = resp)

let test_request_goldens () =
  check_request
    {|{"id":"g1","kind":"generate","task":"right_turn_tl","seed":7,"temperature":1}|}
    {
      P.id = "g1";
      kind =
        P.Generate
          { task = "right_turn_tl"; seed = 7; temperature = 1.0; domain = None };
      deadline_ms = None;
    };
  check_request
    {|{"id":"v1","kind":"verify","steps":["come to a stop","turn right"],"scenario":"traffic_light","deadline_ms":50}|}
    {
      P.id = "v1";
      kind =
        P.Verify
          {
            steps = [ "come to a stop"; "turn right" ];
            scenario = Some "traffic_light";
            domain = None;
            explain = false;
          };
      deadline_ms = Some 50.0;
    };
  check_request
    {|{"id":"s1","kind":"score_pair","steps_a":["turn right"],"steps_b":["stop"]}|}
    {
      P.id = "s1";
      kind =
        P.Score_pair
          {
            steps_a = [ "turn right" ];
            steps_b = [ "stop" ];
            scenario = None;
            domain = None;
            explain = false;
          };
      deadline_ms = None;
    };
  (* the explain flag is encoded only when set, so the goldens above also
     pin that explain=false traffic is byte-identical to the
     pre-explanation wire *)
  check_request
    {|{"id":"v2","kind":"verify","steps":["turn right"],"explain":true}|}
    {
      P.id = "v2";
      kind =
        P.Verify
          { steps = [ "turn right" ]; scenario = None; domain = None;
            explain = true };
      deadline_ms = None;
    };
  check_request
    {|{"id":"s2","kind":"score_pair","steps_a":["turn right"],"steps_b":["stop"],"explain":true}|}
    {
      P.id = "s2";
      kind =
        P.Score_pair
          {
            steps_a = [ "turn right" ];
            steps_b = [ "stop" ];
            scenario = None;
            domain = None;
            explain = true;
          };
      deadline_ms = None;
    }

(* the refine verb, minimal and fully-tagged, both directions; a
   default-budget untagged request carries no budget/scenario/domain/
   explain members at all *)
let test_refine_goldens () =
  check_request
    {|{"id":"rf1","kind":"refine","task":"right_turn_tl","steps":["turn right"],"seed":5}|}
    {
      P.id = "rf1";
      kind =
        P.Refine
          {
            task = "right_turn_tl";
            steps = [ "turn right" ];
            seed = 5;
            scenario = None;
            domain = None;
            explain = false;
            max_rounds = None;
            attempts = None;
          };
      deadline_ms = None;
    };
  check_request
    {|{"id":"rf2","kind":"refine","task":"right_turn_tl","steps":["turn right"],"seed":5,"scenario":"traffic_light","domain":"driving","explain":true,"budget":{"max_rounds":2,"attempts":3},"deadline_ms":50}|}
    {
      P.id = "rf2";
      kind =
        P.Refine
          {
            task = "right_turn_tl";
            steps = [ "turn right" ];
            seed = 5;
            scenario = Some "traffic_light";
            domain = Some "driving";
            explain = true;
            max_rounds = Some 2;
            attempts = Some 3;
          };
      deadline_ms = Some 50.0;
    };
  (* a partial budget encodes only the bound that was set *)
  check_request
    {|{"id":"rf3","kind":"refine","task":"right_turn_tl","steps":["turn right"],"seed":5,"budget":{"max_rounds":2}}|}
    {
      P.id = "rf3";
      kind =
        P.Refine
          {
            task = "right_turn_tl";
            steps = [ "turn right" ];
            seed = 5;
            scenario = None;
            domain = None;
            explain = false;
            max_rounds = Some 2;
            attempts = None;
          };
      deadline_ms = None;
    };
  let p_bad =
    { P.score = 14; satisfied = [ "phi_2" ]; violated = [ "phi_1" ];
      vacuous = [] }
  in
  let p_ok =
    { P.score = 15; satisfied = [ "phi_1"; "phi_2" ]; violated = [];
      vacuous = [] }
  in
  check_response
    {|{"id":"rf1","status":"ok","queue_wait_us":1,"execute_us":2,"refine":{"status":"clean","original_profile":{"score":14,"satisfied":["phi_2"],"violated":["phi_1"],"vacuous":[]},"final_steps":["come to a complete stop","turn right"],"final_profile":{"score":15,"satisfied":["phi_1","phi_2"],"violated":[],"vacuous":[]},"rounds":[{"round":1,"violated":["phi_1"],"accepted":true,"margin":1}]}}|}
    {
      P.rid = "rf1";
      rbody =
        P.Refined
          {
            rstatus = "clean";
            deadline_hit = false;
            original_profile = p_bad;
            final_steps = [ "come to a complete stop"; "turn right" ];
            final_profile = p_ok;
            rounds =
              [
                {
                  P.rr_index = 1;
                  rr_violated = [ "phi_1" ];
                  rr_accepted = true;
                  rr_margin = 1;
                  rr_feedback = None;
                };
              ];
          };
      queue_wait_us = 1.0;
      execute_us = 2.0;
    };
  (* deadline_hit appears only when true; feedback only when explain
     was requested *)
  check_response
    {|{"id":"rf2","status":"ok","queue_wait_us":1,"execute_us":2,"refine":{"status":"unchanged","deadline_hit":true,"original_profile":{"score":14,"satisfied":["phi_2"],"violated":["phi_1"],"vacuous":[]},"final_steps":["turn right"],"final_profile":{"score":14,"satisfied":["phi_2"],"violated":["phi_1"],"vacuous":[]},"rounds":[{"round":1,"violated":["phi_1"],"accepted":false,"margin":0,"feedback":[{"spec":"phi_1","text":"step 1 allows `proceed` while `red_light` holds, violating phi_1"}]}]}}|}
    {
      P.rid = "rf2";
      rbody =
        P.Refined
          {
            rstatus = "unchanged";
            deadline_hit = true;
            original_profile = p_bad;
            final_steps = [ "turn right" ];
            final_profile = p_bad;
            rounds =
              [
                {
                  P.rr_index = 1;
                  rr_violated = [ "phi_1" ];
                  rr_accepted = false;
                  rr_margin = 0;
                  rr_feedback =
                    Some
                      [
                        {
                          P.espec = "phi_1";
                          etext =
                            "step 1 allows `proceed` while `red_light` \
                             holds, violating phi_1";
                        };
                      ];
                };
              ];
          };
      queue_wait_us = 1.0;
      execute_us = 2.0;
    }

let test_response_goldens () =
  check_response
    {|{"id":"v1","status":"ok","queue_wait_us":12.5,"execute_us":3,"profile":{"score":2,"satisfied":["phi_1","phi_2"],"violated":["phi_3"],"vacuous":["phi_2"]}}|}
    {
      P.rid = "v1";
      rbody =
        P.verified
          {
            score = 2;
            satisfied = [ "phi_1"; "phi_2" ];
            violated = [ "phi_3" ];
            vacuous = [ "phi_2" ];
          };
      queue_wait_us = 12.5;
      execute_us = 3.0;
    };
  (* with explanations requested: the optional field appears, after the
     profile, as an array of {spec, text} objects *)
  check_response
    {|{"id":"v2","status":"ok","queue_wait_us":1,"execute_us":2,"profile":{"score":0,"satisfied":[],"violated":["phi_4"],"vacuous":[]},"explanations":[{"spec":"phi_4","text":"step 1 allows `proceed` while `pedestrian_present` holds, violating phi_4"}]}|}
    {
      P.rid = "v2";
      rbody =
        P.Verified
          {
            profile =
              { score = 0; satisfied = []; violated = [ "phi_4" ]; vacuous = [] };
            explanations =
              Some
                [
                  {
                    P.espec = "phi_4";
                    etext =
                      "step 1 allows `proceed` while `pedestrian_present` \
                       holds, violating phi_4";
                  };
                ];
          };
      queue_wait_us = 1.0;
      execute_us = 2.0;
    };
  check_response
    {|{"id":"r1","status":"rejected","queue_wait_us":0,"execute_us":0,"reason":"queue full (capacity 4)"}|}
    {
      P.rid = "r1";
      rbody = P.Rejected "queue full (capacity 4)";
      queue_wait_us = 0.0;
      execute_us = 0.0;
    };
  check_response
    {|{"id":"e1","status":"expired","queue_wait_us":60000,"execute_us":0}|}
    {
      P.rid = "e1";
      rbody = P.Expired;
      queue_wait_us = 60000.0;
      execute_us = 0.0;
    };
  check_response
    {|{"id":"s1","status":"ok","queue_wait_us":1,"execute_us":2,"preference":"a","margin":3,"margin_specs":["phi_5"],"vacuous_margin":false,"profile_a":{"score":3,"satisfied":["phi_1","phi_4","phi_5"],"violated":[],"vacuous":[]},"profile_b":{"score":0,"satisfied":[],"violated":["phi_1"],"vacuous":[]}}|}
    {
      P.rid = "s1";
      rbody =
        P.Compared
          {
            preference = "a";
            margin = 3;
            margin_specs = [ "phi_5" ];
            vacuous_margin = false;
            profile_a =
              {
                score = 3;
                satisfied = [ "phi_1"; "phi_4"; "phi_5" ];
                violated = [];
                vacuous = [];
              };
            profile_b =
              { score = 0; satisfied = []; violated = [ "phi_1" ]; vacuous = [] };
            explanations = None;
          };
      queue_wait_us = 1.0;
      execute_us = 2.0;
    };
  check_response
    {|{"id":"s2","status":"ok","queue_wait_us":1,"execute_us":2,"preference":"a","margin":1,"margin_specs":["phi_1"],"vacuous_margin":false,"profile_a":{"score":1,"satisfied":["phi_1"],"violated":[],"vacuous":[]},"profile_b":{"score":0,"satisfied":[],"violated":["phi_1"],"vacuous":[]},"explanations":[{"spec":"phi_1","text":"step 2 allows `proceed` while `red_light` holds, violating phi_1"}]}|}
    {
      P.rid = "s2";
      rbody =
        P.Compared
          {
            preference = "a";
            margin = 1;
            margin_specs = [ "phi_1" ];
            vacuous_margin = false;
            profile_a =
              { score = 1; satisfied = [ "phi_1" ]; violated = []; vacuous = [] };
            profile_b =
              { score = 0; satisfied = []; violated = [ "phi_1" ]; vacuous = [] };
            explanations =
              Some
                [
                  {
                    P.espec = "phi_1";
                    etext =
                      "step 2 allows `proceed` while `red_light` holds, \
                       violating phi_1";
                  };
                ];
          };
      queue_wait_us = 1.0;
      execute_us = 2.0;
    }

(* the ops plane verbs, untagged and domain-tagged, both directions *)
let test_ops_goldens () =
  check_request {|{"id":"st1","kind":"stats"}|}
    { P.id = "st1"; kind = P.Stats { domain = None }; deadline_ms = None };
  check_request {|{"id":"st2","kind":"stats","domain":"driving"}|}
    {
      P.id = "st2";
      kind = P.Stats { domain = Some "driving" };
      deadline_ms = None;
    };
  check_request {|{"id":"h1","kind":"health"}|}
    { P.id = "h1"; kind = P.Health { domain = None }; deadline_ms = None };
  check_request {|{"id":"h2","kind":"health","domain":"warehouse"}|}
    {
      P.id = "h2";
      kind = P.Health { domain = Some "warehouse" };
      deadline_ms = None;
    };
  (* histogram snapshots travel with bucket bounds AND counts, so the
     receiving side can recompute any percentile — nothing is lossy *)
  let snap =
    {
      Metrics.count = 3;
      sum = 0.75;
      min = 0.2;
      max = 0.3;
      buckets = [ (0.1, 0.25, 2); (0.25, 0.5, 1) ];
    }
  in
  check_response
    {|{"id":"st1","status":"ok","queue_wait_us":0,"execute_us":0,"stats":{"metrics":{"serve.completed":12},"histograms":{"serve.latency":{"count":3,"sum":0.75,"min":0.2,"max":0.3,"p50":0.25,"p90":0.3,"p99":0.3,"buckets":[[0.1,0.25,2],[0.25,0.5,1]]}},"runtime":{"gc.heap_words":4096}}}|}
    {
      P.rid = "st1";
      rbody =
        P.Stats_report
          {
            metrics = [ ("serve.completed", 12.0) ];
            histograms = [ ("serve.latency", snap) ];
            runtime = [ ("gc.heap_words", 4096.0) ];
          };
      queue_wait_us = 0.0;
      execute_us = 0.0;
    };
  check_response
    {|{"id":"h1","status":"ok","queue_wait_us":0,"execute_us":0,"health":{"queue_depth":3,"in_flight_batches":1,"draining":false,"domains":{"driving":10,"warehouse":2}}}|}
    {
      P.rid = "h1";
      rbody =
        P.Health_report
          {
            queue_depth = 3;
            in_flight_batches = 1;
            draining = false;
            domains = [ ("driving", 10); ("warehouse", 2) ];
            shards = [];
          };
      queue_wait_us = 0.0;
      execute_us = 0.0;
    }

let contains hay needle =
  let h = String.length hay and n = String.length needle in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_protocol_strictness () =
  let expect_error what line needle =
    match P.request_of_string line with
    | Ok _ -> Alcotest.failf "%s: expected a decode error" what
    | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "%s mentions %S (got %S)" what needle msg)
          true (contains msg needle)
  in
  expect_error "malformed json" "{not json" "malformed JSON";
  expect_error "missing id" {|{"kind":"verify","steps":[]}|} "id";
  expect_error "unknown kind" {|{"id":"x","kind":"transmogrify"}|}
    "unknown request kind";
  (* the unknown-kind error enumerates the verbs, refine included *)
  expect_error "unknown kind lists refine" {|{"id":"x","kind":"transmogrify"}|}
    "refine";
  expect_error "typed field" {|{"id":"x","kind":"verify","steps":"stop"}|}
    "must be an array";
  expect_error "bad deadline"
    {|{"id":"x","kind":"verify","steps":[],"deadline_ms":-5}|} "positive";
  expect_error "non-object budget"
    {|{"id":"x","kind":"refine","task":"t","steps":[],"seed":0,"budget":5}|}
    "must be an object";
  expect_error "non-positive budget bound"
    {|{"id":"x","kind":"refine","task":"t","steps":[],"seed":0,"budget":{"max_rounds":0}}|}
    ">= 1"

(* ---------------- server scheduling ---------------- *)

let verify_request ?deadline_ms id =
  {
    P.id;
    kind = P.Verify { steps = [ id ]; scenario = None; domain = None; explain = false };
    deadline_ms;
  }

let test_batch_and_complete () =
  (* trivial handler: everything completes, batches of any size *)
  let server =
    Server.create
      ~config:{ Server.jobs = 2; max_batch = 8; flush_ms = 2.0; queue_capacity = 64 }
      ~handler:(fun _ -> P.verified ok_profile)
      ()
  in
  let tickets =
    List.init 20 (fun i ->
        Server.submit_async server (verify_request (Printf.sprintf "q%d" i)))
  in
  let responses = List.map Server.await tickets in
  Server.drain server;
  List.iteri
    (fun i r ->
      Alcotest.(check string) "id echoed" (Printf.sprintf "q%d" i) r.P.rid;
      Alcotest.(check body_testable) "ok" (P.verified ok_profile) r.P.rbody)
    responses

let test_deadline_expiry () =
  let expired_before = Metrics.value (Metrics.counter "serve.expired") in
  (* one slot, serial batches: while the blocker executes for 100 ms, a
     request with a 20 ms deadline sits in the queue past its deadline *)
  let server =
    Server.create
      ~config:{ Server.jobs = 1; max_batch = 1; flush_ms = 0.0; queue_capacity = 64 }
      ~handler:(fun req ->
        (match req.P.id with "blocker" -> Unix.sleepf 0.1 | _ -> ());
        P.verified ok_profile)
      ()
  in
  let blocker = Server.submit_async server (verify_request "blocker") in
  (* give the dispatcher time to pull the blocker into execution *)
  Unix.sleepf 0.02;
  let doomed =
    Server.submit_async server (verify_request ~deadline_ms:20.0 "doomed")
  in
  let r = Server.await doomed in
  Alcotest.(check body_testable) "expired, not executed" P.Expired r.P.rbody;
  Alcotest.(check bool) "waited at least its deadline" true
    (r.P.queue_wait_us >= 20_000.0);
  Alcotest.(check (float 0.0)) "no execute time" 0.0 r.P.execute_us;
  Alcotest.(check body_testable) "blocker unaffected" (P.verified ok_profile)
    (Server.await blocker).P.rbody;
  Server.drain server;
  Alcotest.(check bool) "expired counter advanced" true
    (Metrics.value (Metrics.counter "serve.expired") > expired_before)

let test_queue_full_reject () =
  let server =
    Server.create
      ~config:{ Server.jobs = 1; max_batch = 1; flush_ms = 0.0; queue_capacity = 2 }
      ~handler:(fun _ -> Unix.sleepf 0.3; P.verified ok_profile)
      ()
  in
  let blocker = Server.submit_async server (verify_request "b0") in
  Unix.sleepf 0.02;
  (* the blocker is executing; these two fill the whole queue *)
  let queued =
    [ Server.submit_async server (verify_request "b1");
      Server.submit_async server (verify_request "b2") ]
  in
  let overflow = Server.submit_async server (verify_request "b3") in
  (* the reject is synchronous: no awaiting, no timing dependence *)
  (match Server.peek overflow with
  | Some { P.rbody = P.Rejected reason; _ } ->
      Alcotest.(check bool) "reason names the capacity" true
        (contains reason "queue full (capacity 2)")
  | Some r ->
      Alcotest.failf "expected an immediate reject, got %s"
        (P.status_of_body r.P.rbody)
  | None -> Alcotest.fail "expected an immediate reject, got a pending ticket");
  List.iter
    (fun t ->
      Alcotest.(check body_testable) "queued requests still complete"
        (P.verified ok_profile) (Server.await t).P.rbody)
    (blocker :: queued);
  Server.drain server

let test_drain_completes_inflight () =
  let server =
    Server.create
      ~config:{ Server.jobs = 2; max_batch = 4; flush_ms = 1.0; queue_capacity = 64 }
      ~handler:(fun _ -> Unix.sleepf 0.03; P.verified ok_profile)
      ()
  in
  let tickets =
    List.init 10 (fun i ->
        Server.submit_async server (verify_request (Printf.sprintf "d%d" i)))
  in
  Server.drain server;
  (* after drain returns, every admitted request must already be answered *)
  List.iter
    (fun t ->
      match Server.peek t with
      | Some r ->
          Alcotest.(check body_testable) "completed during drain"
            (P.verified ok_profile) r.P.rbody
      | None -> Alcotest.fail "drain returned with an unanswered request")
    tickets;
  let late = Server.submit_async server (verify_request "late") in
  (match Server.peek late with
  | Some { P.rbody = P.Rejected reason; _ } ->
      Alcotest.(check bool) "late submission names draining" true
        (contains reason "draining")
  | _ -> Alcotest.fail "submission after drain must reject immediately");
  (* idempotent *)
  Server.drain server

(* ---------------- continuous batching ---------------- *)

(* the worker-loop path (no dispatcher, no batch assembly) through the
   same contract the flush tests pin: everything completes in ticket
   order, a full queue rejects synchronously, drain answers every
   admitted request and labeled servers publish shard-tagged metrics *)
let test_continuous_server () =
  let server =
    Server.create
      ~config:
        { Server.jobs = 2; max_batch = 8; flush_ms = 2.0; queue_capacity = 64 }
      ~batching:`Continuous ~label:"s9"
      ~handler:(fun _ -> P.verified ok_profile)
      ()
  in
  Alcotest.(check bool) "reports continuous" true
    (Server.batching server = `Continuous);
  Alcotest.(check (option string)) "reports its label" (Some "s9")
    (Server.label server);
  let tickets =
    List.init 20 (fun i ->
        Server.submit_async server (verify_request (Printf.sprintf "c%d" i)))
  in
  List.iteri
    (fun i t ->
      let r = Server.await t in
      Alcotest.(check string) "id echoed" (Printf.sprintf "c%d" i) r.P.rid;
      Alcotest.(check body_testable) "ok" (P.verified ok_profile) r.P.rbody)
    tickets;
  (* the labeled twins of the fleet metrics exist (and the admitted
     counter drove the per-shard requests gauge the health rows report) *)
  let keys = List.map fst (Metrics.summary ()) in
  Alcotest.(check bool) "labeled queue-depth gauge" true
    (List.mem "serve.s9.queue.depth.level" keys);
  Alcotest.(check bool) "labeled in-flight gauge" true
    (List.mem "serve.s9.in_flight.level" keys);
  Alcotest.(check int) "admitted counts accepts" 20 (Server.admitted server);
  Server.drain server;
  let late = Server.submit_async server (verify_request "late") in
  (match Server.peek late with
  | Some { P.rbody = P.Rejected reason; _ } ->
      Alcotest.(check bool) "late submission names draining" true
        (contains reason "draining")
  | _ -> Alcotest.fail "submission after drain must reject immediately");
  Server.drain server

let test_continuous_queue_full_reject () =
  let server =
    Server.create
      ~config:
        { Server.jobs = 1; max_batch = 1; flush_ms = 0.0; queue_capacity = 2 }
      ~batching:`Continuous
      ~handler:(fun _ -> Unix.sleepf 0.3; P.verified ok_profile)
      ()
  in
  let blocker = Server.submit_async server (verify_request "b0") in
  Unix.sleepf 0.02;
  let queued =
    [ Server.submit_async server (verify_request "b1");
      Server.submit_async server (verify_request "b2") ]
  in
  let overflow = Server.submit_async server (verify_request "b3") in
  (match Server.peek overflow with
  | Some { P.rbody = P.Rejected reason; _ } ->
      Alcotest.(check bool) "reason names the capacity" true
        (contains reason "queue full (capacity 2)")
  | Some r ->
      Alcotest.failf "expected an immediate reject, got %s"
        (P.status_of_body r.P.rbody)
  | None -> Alcotest.fail "expected an immediate reject, got a pending ticket");
  List.iter
    (fun t ->
      Alcotest.(check body_testable) "queued requests still complete"
        (P.verified ok_profile) (Server.await t).P.rbody)
    (blocker :: queued);
  Server.drain server

(* ---------------- router ---------------- *)

let gen_request ?domain ?(id = "g") ?(seed = 1) task =
  {
    P.id;
    kind = P.Generate { task; seed; temperature = 1.0; domain };
    deadline_ms = None;
  }

(* FNV-1a/64 goldens: these exact shard assignments must hold forever —
   a silent change to the hash or the key format would re-shuffle every
   fleet's cache affinity on upgrade *)
let test_router_goldens () =
  let gen = gen_request "right_turn_tl" in
  let ver = verify_request "v" in
  let ver =
    {
      ver with
      P.kind =
        P.Verify
          {
            steps = [ "come to a complete stop"; "turn right" ];
            scenario = None;
            domain = None;
            explain = false;
          };
    }
  in
  Alcotest.(check (option string)) "generate key"
    (Some "prompt//right_turn_tl") (Router.shard_key gen);
  Alcotest.(check (option string)) "verify key"
    (Some "steps//come to a complete stop\x1fturn right")
    (Router.shard_key ver);
  Alcotest.(check int) "generate shards=4" 2 (Router.shard_for ~shards:4 gen);
  Alcotest.(check int) "generate shards=2" 0 (Router.shard_for ~shards:2 gen);
  Alcotest.(check int) "generate shards=8" 2 (Router.shard_for ~shards:8 gen);
  Alcotest.(check int) "verify shards=4" 3 (Router.shard_for ~shards:4 ver);
  Alcotest.(check int) "verify shards=2" 1 (Router.shard_for ~shards:2 ver);
  (* the domain participates in the key: the same task in another pack
     is another prompt *)
  Alcotest.(check int) "domain-tagged generate shards=4" 1
    (Router.shard_for ~shards:4 (gen_request ~domain:"driving" "right_turn_tl"));
  (* ops verbs carry no prompt and pin to shard 0 *)
  let health =
    { P.id = "h"; kind = P.Health { domain = None }; deadline_ms = None }
  in
  Alcotest.(check (option string)) "ops have no key" None
    (Router.shard_key health);
  Alcotest.(check int) "ops route to shard 0" 0
    (Router.shard_for ~shards:7 health);
  Alcotest.(check int) "single shard is total" 0
    (Router.shard_for ~shards:1 gen)

(* routing is pure prompt affinity: always in range, invariant under
   everything that is not the prompt identity (id, deadline, seed,
   temperature, explain), and generate/refine of one task cohabit — they
   fold the same prompt, so they must share a replica's cache *)
let prop_router_stability =
  let gen =
    QCheck.Gen.(
      triple (int_range 1 8)
        (string_size ~gen:printable (int_range 0 12))
        (list_size (int_range 0 4) (string_size ~gen:printable (int_range 0 8))))
  in
  QCheck.Test.make ~count:200
    ~name:"router: in range, prompt-identity only, generate/refine cohabit"
    (QCheck.make
       ~print:(fun (s, t, steps) ->
         Printf.sprintf "shards=%d task=%S steps=[%s]" s t
           (String.concat ";" (List.map (Printf.sprintf "%S") steps)))
       gen)
    (fun (shards, task, steps) ->
      let in_range i = 0 <= i && i < shards in
      let g id seed = gen_request ~id ~seed task in
      let refine id =
        {
          P.id;
          kind =
            P.Refine
              { task; steps; seed = 3; scenario = None; domain = None;
                explain = false; max_rounds = None; attempts = None };
          deadline_ms = None;
        }
      in
      let ver id explain deadline_ms =
        {
          P.id;
          kind = P.Verify { steps; scenario = None; domain = None; explain };
          deadline_ms;
        }
      in
      let sg = Router.shard_for ~shards (g "a" 1) in
      let sv = Router.shard_for ~shards (ver "v" false None) in
      in_range sg && in_range sv
      && sg = Router.shard_for ~shards (g "zzz" 999_999)
      && sg = Router.shard_for ~shards (refine "r")
      && sv = Router.shard_for ~shards (ver "w" true (Some 5.0))
      && (shards > 1 || sg = 0))

(* ---------------- determinism with the real engine ---------------- *)

let corpus = lazy (Dpoaf_pipeline.Corpus.build ())

let small_lm seed =
  Dpoaf_pipeline.Corpus.pretrained_model
    ~config:
      { Dpoaf_lm.Model.dim = 12; context = 10; lora_rank = 2;
        arch = Dpoaf_lm.Model.Bow }
    ~per_task:20 ~epochs:10
    (Dpoaf_util.Rng.create seed)
    (Lazy.force corpus)

let mixed_requests =
  let right = [ "come to a complete stop"; "turn right" ] in
  let risky = [ "turn right" ] in
  List.concat_map
    (fun i ->
      [
        {
          P.id = Printf.sprintf "gen%d" i;
          kind =
            P.Generate
              { task = "right_turn_tl"; seed = i; temperature = 1.0;
                domain = None };
          deadline_ms = None;
        };
        {
          P.id = Printf.sprintf "ver%d" i;
          kind =
            P.Verify
              { steps = right; scenario = Some "traffic_light"; domain = None;
                explain = false };
          deadline_ms = None;
        };
        (* explain=true here routes the loser's margin violations through
           the live explainer inside the determinism matrix, so the
           explanation text itself must also be jobs-invariant *)
        {
          P.id = Printf.sprintf "cmp%d" i;
          kind =
            P.Score_pair
              { steps_a = right; steps_b = risky; scenario = None;
                domain = None; explain = true };
          deadline_ms = None;
        };
        (* a refine request runs the whole repair loop inside a batch
           slot: its trajectory (rounds, candidates, margins — and with
           explain=true the feedback text) must be bit-identical whatever
           the worker count, which also pins that the engine passes no
           wall-clock deadline into the loop *)
        {
          P.id = Printf.sprintf "ref%d" i;
          kind =
            P.Refine
              { task = "right_turn_tl"; steps = risky; seed = i;
                scenario = None; domain = None; explain = i mod 2 = 0;
                max_rounds = Some 2; attempts = Some 2 };
          deadline_ms = None;
        };
      ])
    [ 0; 1; 2 ]

let serve_all ~jobs ~max_batch requests =
  let engine = Engine.create ~lm:(small_lm 11) ~corpus:(Lazy.force corpus) () in
  let server =
    Server.create
      ~config:{ Server.jobs; max_batch; flush_ms = 1.0; queue_capacity = 256 }
      ~handler:(Engine.handle engine) ()
  in
  let tickets = List.map (Server.submit_async server) requests in
  let rs = List.map Server.await tickets in
  Server.drain server;
  List.map (fun r -> (r.P.rid, r.P.rbody)) rs

let test_jobs_determinism () =
  let base = serve_all ~jobs:1 ~max_batch:1 mixed_requests in
  (* no Failed bodies: every request kind actually executes *)
  List.iter
    (fun (id, b) ->
      match b with
      | P.Failed msg -> Alcotest.failf "%s failed: %s" id msg
      | _ -> ())
    base;
  List.iter
    (fun (jobs, max_batch) ->
      let got = serve_all ~jobs ~max_batch mixed_requests in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d max_batch=%d identical to serial" jobs
           max_batch)
        true (got = base))
    [ (2, 4); (4, 32) ]

(* one shared small model for the fleet tests: training is deterministic
   (same seed as serve_all's), so sharing the weights keeps the matrix
   comparable to the single-server baseline without retraining per shard *)
let shared_lm = lazy (small_lm 11)

let serve_fleet ~shards ~jobs ~batching requests =
  let make_shard i =
    let tag = if shards = 1 then None else Some (Router.shard_name i) in
    let engine =
      Engine.create ~lm:(Lazy.force shared_lm) ?tag ~corpus:(Lazy.force corpus)
        ()
    in
    Server.create
      ~config:
        { Server.jobs; max_batch = 8; flush_ms = 1.0; queue_capacity = 256 }
      ~batching ?label:tag ~handler:(Engine.handle engine) ()
  in
  let router = Router.create (Array.init shards make_shard) in
  let tickets = List.map (Router.submit_async router) requests in
  let rs = List.map Server.await tickets in
  Router.drain router;
  List.map (fun r -> (r.P.rid, r.P.rbody)) rs

(* the tentpole invariant: sharding and continuous batching move only
   queueing and cache temperature, never replies — every (shards, jobs,
   batching) corner returns the serial single-server run bit for bit *)
let test_shards_determinism () =
  let base = serve_all ~jobs:1 ~max_batch:1 mixed_requests in
  List.iter
    (fun (id, b) ->
      match b with
      | P.Failed msg -> Alcotest.failf "%s failed: %s" id msg
      | _ -> ())
    base;
  List.iter
    (fun (shards, jobs, batching) ->
      let got = serve_fleet ~shards ~jobs ~batching mixed_requests in
      Alcotest.(check bool)
        (Printf.sprintf "shards=%d jobs=%d %s identical to serial" shards jobs
           (match batching with `Flush -> "flush" | `Continuous -> "continuous"))
        true (got = base))
    [
      (1, 2, `Continuous);
      (2, 1, `Flush);
      (2, 2, `Continuous);
      (4, 2, `Continuous);
    ]

(* a full queue on one shard rejects synchronously without touching its
   siblings, the per-shard health rows see exactly that picture, and a
   fleet drain answers everything every shard admitted *)
let test_shard_queue_isolation () =
  let slow = Server.create
      ~config:
        { Server.jobs = 1; max_batch = 1; flush_ms = 0.0; queue_capacity = 2 }
      ~batching:`Continuous ~label:"shard0"
      ~handler:(fun req ->
        (match req.P.id with "blocker" -> Unix.sleepf 0.3 | _ -> ());
        P.verified ok_profile)
      ()
  in
  let live = Server.create
      ~config:
        { Server.jobs = 1; max_batch = 1; flush_ms = 0.0; queue_capacity = 64 }
      ~batching:`Continuous ~label:"shard1"
      ~handler:(fun _ -> P.verified ok_profile)
      ()
  in
  let router = Router.create [| slow; live |] in
  (* craft steps that provably route to each shard — the pure function is
     the oracle, so the test cannot drift from the router *)
  let to_shard shard id =
    let rec go i =
      let r =
        {
          P.id;
          kind =
            P.Verify
              { steps = [ "probe"; string_of_int i ]; scenario = None;
                domain = None; explain = false };
          deadline_ms = None;
        }
      in
      if Router.shard_for ~shards:2 r = shard then r else go (i + 1)
    in
    go 0
  in
  let blocker = Router.submit_async router (to_shard 0 "blocker") in
  Unix.sleepf 0.02;
  let queued =
    [ Router.submit_async router (to_shard 0 "q1");
      Router.submit_async router (to_shard 0 "q2") ]
  in
  let overflow = Router.submit_async router (to_shard 0 "q3") in
  (match Server.peek overflow with
  | Some { P.rbody = P.Rejected reason; _ } ->
      Alcotest.(check bool) "shard 0 rejects at its own capacity" true
        (contains reason "queue full (capacity 2)")
  | _ -> Alcotest.fail "expected an immediate reject from the full shard");
  (* the sibling shard is untouched by shard 0's saturation *)
  let r = Server.await (Router.submit_async router (to_shard 1 "alive")) in
  Alcotest.(check body_testable) "shard 1 still serves" (P.verified ok_profile)
    r.P.rbody;
  (* per-shard health rows see the asymmetry the aggregate hides *)
  let rows = Router.shard_healths router in
  Alcotest.(check (list string)) "rows use the server labels"
    [ "shard0"; "shard1" ]
    (List.map (fun s -> s.P.sh_shard) rows);
  let row name = List.find (fun s -> s.P.sh_shard = name) rows in
  Alcotest.(check int) "shard 0 queue holds the two queued" 2
    ((row "shard0").P.sh_queue_depth);
  Alcotest.(check int) "shard 1 queue is empty" 0
    ((row "shard1").P.sh_queue_depth);
  let agg = Router.health router in
  Alcotest.(check int) "aggregate depth is the sum" 2 agg.Server.queue_depth;
  Router.drain router;
  List.iter
    (fun t ->
      match Server.peek t with
      | Some r ->
          Alcotest.(check body_testable) "admitted requests drain to answers"
            (P.verified ok_profile) r.P.rbody
      | None -> Alcotest.fail "fleet drain returned with an unanswered request")
    (blocker :: queued)

(* ---------------- daemon: TCP and Unix are one protocol ---------------- *)

let normalized_response line =
  match P.response_of_string line with
  | Error e -> Alcotest.failf "daemon sent an unparseable line: %s" e
  | Ok r ->
      P.response_to_string { r with P.queue_wait_us = 0.0; execute_us = 0.0 }

let roundtrip_over fd requests =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  List.iter
    (fun r ->
      output_string oc (P.request_to_string r);
      output_char oc '\n')
    requests;
  flush oc;
  let lines = List.map (fun _ -> input_line ic) requests in
  let normalized = List.sort compare (List.map normalized_response lines) in
  Unix.close fd;
  normalized

(* the same pipelined batch over the Unix socket and the TCP listener
   must come back byte-identical (timings zeroed, order ignored: clients
   may pipeline and responses carry ids) *)
let test_daemon_transport_identity () =
  let socket = Filename.temp_file "dpoaf-daemon" ".sock" in
  Sys.remove socket;
  let make_shard i =
    let engine =
      Engine.create ~lm:(Lazy.force shared_lm)
        ~tag:(Router.shard_name i) ~corpus:(Lazy.force corpus) ()
    in
    Server.create
      ~config:
        { Server.jobs = 1; max_batch = 8; flush_ms = 1.0; queue_capacity = 64 }
      ~batching:`Continuous ~label:(Router.shard_name i)
      ~handler:(Engine.handle engine) ()
  in
  let router = Router.create (Array.init 2 make_shard) in
  let port = Atomic.make 0 in
  let daemon =
    Domain.spawn (fun () ->
        Daemon.run ~socket ~tcp_port:0
          ~on_tcp_listen:(fun p -> Atomic.set port p)
          ~router ())
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while Atomic.get port = 0 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  if Atomic.get port = 0 then Alcotest.fail "daemon did not bind its TCP port";
  let requests =
    List.filter
      (fun r ->
        match r.P.kind with P.Refine _ -> false | _ -> true)
      mixed_requests
  in
  let over_unix () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX socket);
    roundtrip_over fd requests
  in
  let over_tcp () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd
      (Unix.ADDR_INET (Unix.inet_addr_loopback, Atomic.get port));
    roundtrip_over fd requests
  in
  let u = over_unix () in
  let t = over_tcp () in
  Alcotest.(check (list string)) "TCP equals Unix byte for byte" u t;
  (* and both transports actually executed everything *)
  List.iter
    (fun line ->
      match P.response_of_string line with
      | Ok { P.rbody = P.Failed msg; rid; _ } ->
          Alcotest.failf "%s failed: %s" rid msg
      | Ok _ -> ()
      | Error e -> Alcotest.fail e)
    u;
  Daemon.request_stop ();
  let (_ : Daemon.stats) = Domain.join daemon in
  Alcotest.(check bool) "socket file removed on shutdown" false
    (Sys.file_exists socket)

let test_prompt_state_cache_transparent () =
  (* Repeated generations for one task hit the prompt-state cache, and the
     cache never changes a reply: a cold engine produces the same tokens. *)
  let gen engine seed =
    Engine.handle engine
      {
        P.id = "p";
        kind =
          P.Generate
            { task = "right_turn_tl"; seed; temperature = 1.0; domain = None };
        deadline_ms = None;
      }
  in
  let warm = Engine.create ~lm:(small_lm 11) ~corpus:(Lazy.force corpus) () in
  let warm_replies = List.map (gen warm) [ 1; 2; 3 ] in
  let lookup key =
    Option.value ~default:0.0 (List.assoc_opt key (Metrics.summary ()))
  in
  (* the source reflects the most recently created engine's cache *)
  Alcotest.(check (float 0.0)) "one miss" 1.0
    (lookup "cache.serve.prompt_state.driving.misses");
  Alcotest.(check (float 0.0)) "later requests hit" 2.0
    (lookup "cache.serve.prompt_state.driving.hits");
  List.iter2
    (fun seed warm_reply ->
      let cold = Engine.create ~lm:(small_lm 11) ~corpus:(Lazy.force corpus) () in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d reply unchanged by caching" seed)
        true
        (gen cold seed = warm_reply))
    [ 1; 2; 3 ] warm_replies

let test_engine_rejects_unknowns () =
  let engine = Engine.create ~corpus:(Lazy.force corpus) () in
  let expect_failed what kind needle =
    match Engine.handle engine { P.id = "x"; kind; deadline_ms = None } with
    | P.Failed msg ->
        Alcotest.(check bool)
          (Printf.sprintf "%s mentions %S (got %S)" what needle msg)
          true (contains msg needle)
    | b -> Alcotest.failf "%s: expected Failed, got %s" what (P.status_of_body b)
  in
  expect_failed "unknown scenario"
    (P.Verify
       { steps = [ "stop" ]; scenario = Some "motorway"; domain = None;
         explain = false })
    "traffic_light";
  expect_failed "unknown task"
    (P.Generate
       { task = "fly_to_the_moon"; seed = 0; temperature = 1.0; domain = None })
    "fly_to_the_moon";
  expect_failed "generation without a model"
    (P.Generate
       { task = "right_turn_tl"; seed = 0; temperature = 1.0; domain = None })
    "model";
  expect_failed "refinement without a model"
    (P.Refine
       { task = "right_turn_tl"; steps = [ "turn right" ]; seed = 0;
         scenario = None; domain = None; explain = false; max_rounds = None;
         attempts = None })
    "language model";
  expect_failed "refinement of an unknown task"
    (P.Refine
       { task = "fly_to_the_moon"; steps = [ "turn right" ]; seed = 0;
         scenario = None; domain = None; explain = false; max_rounds = None;
         attempts = None })
    "fly_to_the_moon"

(* every accepted refine round harvests one (original, repaired)
   preference pair into the engine's store, and the store's record count
   matches what the wire trajectories report *)
let test_refine_harvests_pairs () =
  let module Store = Dpoaf_refine.Pref_store in
  let module PD = Dpoaf_dpo.Pref_data in
  let path = Filename.temp_file "dpoaf-harvest" ".jsonl" in
  let store = Store.create path in
  let engine =
    Engine.create ~lm:(small_lm 11) ~pref_store:store
      ~corpus:(Lazy.force corpus) ()
  in
  let pool =
    Dpoaf_refine.Refine.defect_pool
      (Dpoaf_domain.find_exn "driving")
      ~seed:2024 ~per_task:1
  in
  Alcotest.(check bool) "non-empty defect pool" true (pool <> []);
  let accepted = ref 0 in
  List.iteri
    (fun i ((task : Dpoaf_domain.Domain.task), steps) ->
      match
        Engine.handle engine
          {
            P.id = Printf.sprintf "h%d" i;
            kind =
              P.Refine
                { task = task.Dpoaf_domain.Domain.id; steps; seed = 2024;
                  scenario = None; domain = None; explain = false;
                  max_rounds = Some 3; attempts = Some 4 };
            deadline_ms = None;
          }
      with
      | P.Refined { rounds; _ } ->
          List.iter
            (fun (r : P.rround) -> if r.P.rr_accepted then incr accepted)
            rounds
      | b -> Alcotest.failf "refine failed: %s" (P.status_of_body b))
    pool;
  Store.close store;
  Alcotest.(check bool) "some round was accepted" true (!accepted > 0);
  (match PD.load_harvested path with
  | Error e -> Alcotest.fail e
  | Ok hs ->
      Alcotest.(check int) "one record per accepted round" !accepted
        (List.length hs);
      List.iter
        (fun h ->
          Alcotest.(check string) "tagged with the pack" "driving"
            h.PD.h_domain;
          Alcotest.(check bool) "repair differs from the original" true
            (h.PD.h_chosen_steps <> h.PD.h_rejected_steps);
          Alcotest.(check bool) "repair strictly wins" true
            (h.PD.h_chosen_score > h.PD.h_rejected_score))
        hs);
  Sys.remove path

(* ---------------- loadgen mix parsing ---------------- *)

let test_mix_parsing () =
  let ok s =
    match Loadgen.mix_of_string s with
    | Ok m -> m
    | Error e -> Alcotest.failf "%S: %s" s e
  in
  let expect_error what s needle =
    match Loadgen.mix_of_string s with
    | Ok _ -> Alcotest.failf "%s: expected a parse error" what
    | Error msg ->
        Alcotest.(check bool)
          (Printf.sprintf "%s mentions %S (got %S)" what needle msg)
          true (contains msg needle)
  in
  (* the legacy positional form still means generate,verify,score_pair *)
  Alcotest.(check bool) "positional keeps refine at 0" true
    (ok "0.5,0.3,0.2"
    = { Loadgen.generate = 0.5; verify = 0.3; score_pair = 0.2; refine = 0.0 });
  Alcotest.(check bool) "named form, unlisted classes weigh 0" true
    (ok "generate=1,refine=2"
    = { Loadgen.generate = 1.0; verify = 0.0; score_pair = 0.0; refine = 2.0 });
  expect_error "unknown class" "generate=1,refinez=2" "unknown workload class";
  expect_error "unknown class lists the valid ones" "teleport=1" "refine";
  expect_error "bad weight" "refine=much" "must be a number";
  expect_error "entry without =" "generate=1,verify" "class=weight";
  expect_error "short positional" "0.1,0.2" "positional mix"

(* ---------------- journal ---------------- *)

(* Size-capped rotation under concurrent emitters: every event survives
   (the ring flushes synchronously when full, rotation keeps enough
   generations for this volume), no file exceeds the cap, and at least
   one rotation actually happened. *)
let test_journal_rotation () =
  let module Json = Dpoaf_util.Json in
  let dir = Filename.temp_file "dpoaf-journal" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let path = Filename.concat dir "journal.jsonl" in
  let max_bytes = 4096 in
  let j = Journal.create ~max_bytes ~keep:3 ~ring_capacity:16 path in
  let domains = 4 and per_domain = 50 in
  let spawned =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to per_domain - 1 do
              Journal.emit j "test.event"
                [ ("id", Json.str (Printf.sprintf "d%d-%03d" d i)) ]
            done))
  in
  List.iter Domain.join spawned;
  Journal.close j;
  let generations =
    List.filter Sys.file_exists
      (path :: List.init 3 (fun i -> Printf.sprintf "%s.%d" path (i + 1)))
  in
  Alcotest.(check bool) "rotated at least once" true
    (List.length generations > 1);
  let ids = Hashtbl.create 256 in
  List.iter
    (fun file ->
      let size = (Unix.stat file).Unix.st_size in
      Alcotest.(check bool)
        (Printf.sprintf "%s within the size cap" (Filename.basename file))
        true (size <= max_bytes);
      let ic = open_in file in
      (try
         while true do
           let line = input_line ic in
           match Json.parse line with
           | Error e -> Alcotest.failf "%s: malformed line: %s" file e
           | Ok o -> (
               (match Option.bind (Json.member "ts" o) Json.to_float with
               | Some _ -> ()
               | None -> Alcotest.failf "%s: event without ts" file);
               match
                 Option.bind (Json.member "id" o) Json.to_str
               with
               | Some id ->
                   Hashtbl.replace ids id
                     (1 + try Hashtbl.find ids id with Not_found -> 0)
               | None -> Alcotest.failf "%s: event without id" file)
         done
       with End_of_file -> ());
      close_in ic)
    generations;
  for d = 0 to domains - 1 do
    for i = 0 to per_domain - 1 do
      let id = Printf.sprintf "d%d-%03d" d i in
      Alcotest.(check int)
        (Printf.sprintf "event %s written exactly once" id)
        1
        (try Hashtbl.find ids id with Not_found -> 0)
    done
  done;
  List.iter Sys.remove generations;
  Sys.rmdir dir

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "request goldens" `Quick test_request_goldens;
          Alcotest.test_case "response goldens" `Quick test_response_goldens;
          Alcotest.test_case "refine goldens" `Quick test_refine_goldens;
          Alcotest.test_case "ops goldens" `Quick test_ops_goldens;
          Alcotest.test_case "strict decoding" `Quick test_protocol_strictness;
          Alcotest.test_case "loadgen mix parsing" `Quick test_mix_parsing;
        ] );
      ( "journal",
        [ Alcotest.test_case "rotation under load" `Quick test_journal_rotation ] );
      ( "server",
        [
          Alcotest.test_case "batch and complete" `Quick test_batch_and_complete;
          Alcotest.test_case "deadline expiry" `Quick test_deadline_expiry;
          Alcotest.test_case "queue-full reject" `Quick test_queue_full_reject;
          Alcotest.test_case "drain completes in-flight" `Quick
            test_drain_completes_inflight;
          Alcotest.test_case "continuous batching contract" `Quick
            test_continuous_server;
          Alcotest.test_case "continuous queue-full reject" `Quick
            test_continuous_queue_full_reject;
        ] );
      ( "router",
        [
          Alcotest.test_case "FNV shard goldens" `Quick test_router_goldens;
          QCheck_alcotest.to_alcotest ~verbose:false prop_router_stability;
          Alcotest.test_case "per-shard queue isolation" `Quick
            test_shard_queue_isolation;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "TCP and Unix transport identity" `Quick
            test_daemon_transport_identity;
        ] );
      ( "engine",
        [
          Alcotest.test_case "determinism across jobs" `Quick
            test_jobs_determinism;
          Alcotest.test_case "determinism across shards and batching" `Quick
            test_shards_determinism;
          Alcotest.test_case "prompt-state cache transparent" `Quick
            test_prompt_state_cache_transparent;
          Alcotest.test_case "graceful domain errors" `Quick
            test_engine_rejects_unknowns;
          Alcotest.test_case "refine harvests preference pairs" `Quick
            test_refine_harvests_pairs;
        ] );
    ]
