(* Tests for the static sanity layer (lib/analysis): the DNF guard engine
   against brute-force enumeration, each diagnostic class on a seeded
   defect, and the seed rule book's health. *)

module Fsa = Dpoaf_automata.Fsa
module Ts = Dpoaf_automata.Ts
module Symbol = Dpoaf_logic.Symbol
module Ltl = Dpoaf_logic.Ltl
module Guards = Dpoaf_analysis.Guards
module Controller_lint = Dpoaf_analysis.Controller_lint
module Spec_sanity = Dpoaf_analysis.Spec_sanity
module Model_lint = Dpoaf_analysis.Model_lint
module Vacuity = Dpoaf_analysis.Vacuity
module Suite_sanity = Dpoaf_analysis.Suite_sanity
module Explain = Dpoaf_analysis.Explain
module Diagnostic = Dpoaf_analysis.Diagnostic
module Trace = Dpoaf_logic.Trace
module Specs = Dpoaf_driving.Specs
module Models = Dpoaf_driving.Models
module Vocab = Dpoaf_driving.Vocab

let sym = Symbol.of_atoms

(* ---------------- qcheck: the DNF guard engine ---------------- *)

let atoms = [| "a"; "b"; "c"; "d" |]

(* Every subset of the 4-atom universe: brute-force ground truth for the
   DNF verdicts (guards below only mention these atoms, and verdicts are
   don't-care on unmentioned atoms). *)
let all_symbols =
  let rec subsets = function
    | [] -> [ [] ]
    | x :: rest ->
        let s = subsets rest in
        s @ List.map (fun l -> x :: l) s
  in
  List.map sym (subsets (Array.to_list atoms))

let gen_guard =
  let open QCheck.Gen in
  sized_size (int_bound 8)
  @@ fix (fun self n ->
         if n <= 0 then
           oneof
             [ return Fsa.Gtrue; map (fun i -> Fsa.Gatom atoms.(i)) (int_bound 3) ]
         else
           frequency
             [
               (1, return Fsa.Gtrue);
               (3, map (fun i -> Fsa.Gatom atoms.(i)) (int_bound 3));
               (2, map (fun g -> Fsa.Gnot g) (self (n - 1)));
               (2, map2 (fun a b -> Fsa.Gand (a, b)) (self (n / 2)) (self (n / 2)));
               (2, map2 (fun a b -> Fsa.Gor (a, b)) (self (n / 2)) (self (n / 2)));
             ])

let print_guard = Format.asprintf "%a" Fsa.pp_guard
let arb_guard = QCheck.make ~print:print_guard gen_guard

let arb_guard_pair =
  QCheck.make
    ~print:(fun (a, b) -> print_guard a ^ " / " ^ print_guard b)
    QCheck.Gen.(pair gen_guard gen_guard)

let arb_guard_list =
  QCheck.make
    ~print:(fun gs -> String.concat " ; " (List.map print_guard gs))
    QCheck.Gen.(list_size (int_range 0 3) gen_guard)

let prop_dnf_agrees =
  QCheck.Test.make ~count:500 ~name:"DNF eval agrees with Fsa.eval_guard"
    arb_guard (fun g ->
      let d = Guards.of_guard g in
      List.for_all (fun s -> Guards.eval d s = Fsa.eval_guard g s) all_symbols)

let prop_witness_valid =
  QCheck.Test.make ~count:500 ~name:"witness agrees with brute-force sat"
    arb_guard (fun g ->
      match Guards.witness g with
      | Some s -> Fsa.eval_guard g s
      | None -> not (List.exists (Fsa.eval_guard g) all_symbols))

let prop_overlap_agrees =
  QCheck.Test.make ~count:300 ~name:"overlap verdict agrees with brute force"
    arb_guard_pair (fun (g1, g2) ->
      match Guards.overlap_witness g1 g2 with
      | Some s -> Fsa.eval_guard g1 s && Fsa.eval_guard g2 s
      | None ->
          not
            (List.exists
               (fun s -> Fsa.eval_guard g1 s && Fsa.eval_guard g2 s)
               all_symbols))

let prop_completeness_agrees =
  QCheck.Test.make ~count:300
    ~name:"completeness verdict agrees with brute force" arb_guard_list
    (fun gs ->
      let none_enabled s = not (List.exists (fun g -> Fsa.eval_guard g s) gs) in
      match Guards.complement_witness gs with
      | Some s -> none_enabled s
      | None -> not (List.exists none_enabled all_symbols))

let qsuite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests)

(* ---------------- controller lint: seeded defects ---------------- *)

let codes diags = List.map (fun d -> d.Diagnostic.code) diags
let has_code c diags = List.mem c (codes diags)

let find_code c diags =
  match List.find_opt (fun d -> d.Diagnostic.code = c) diags with
  | Some d -> d
  | None -> Alcotest.failf "expected a %s diagnostic, got [%s]" c
              (String.concat "; " (codes diags))

let tr src guard action dst = { Fsa.src; guard; action; dst }
let go = sym [ "go" ]
let stop = sym [ "stop" ]

let test_clean_controller () =
  (* complete, deterministic, all states reachable: no findings *)
  let c =
    Fsa.make ~name:"clean" ~n_states:2 ~init:0
      ~transitions:
        [
          tr 0 (Fsa.Gatom "a") go 1;
          tr 0 (Fsa.Gnot (Fsa.Gatom "a")) stop 0;
          tr 1 Fsa.Gtrue stop 0;
        ]
      ()
  in
  Alcotest.(check (list string)) "no diagnostics" [] (codes (Controller_lint.lint c))

let test_ctl001_unreachable () =
  let c =
    Fsa.make ~name:"orphan" ~n_states:3 ~init:0
      ~transitions:
        [ tr 0 Fsa.Gtrue go 1; tr 1 Fsa.Gtrue go 0; tr 2 Fsa.Gtrue go 2 ]
      ()
  in
  let diags = Controller_lint.lint c in
  let d = find_code "CTL001" diags in
  Alcotest.(check string) "severity" "warning"
    (Diagnostic.severity_string d.Diagnostic.severity);
  Alcotest.(check bool) "names the orphan state" true
    (d.Diagnostic.witness = Some "q2")

let test_ctl002_stuck () =
  (* q1 is reachable but its only guard is contradictory: the controller
     freezes there (and the unsatisfiable guard is reported on its own) *)
  let contradiction = Fsa.Gand (Fsa.Gatom "a", Fsa.Gnot (Fsa.Gatom "a")) in
  let c =
    Fsa.make ~name:"frozen" ~n_states:2 ~init:0
      ~transitions:[ tr 0 Fsa.Gtrue go 1; tr 1 contradiction go 0 ]
      ()
  in
  let diags = Controller_lint.lint c in
  Alcotest.(check bool) "stuck state reported" true (has_code "CTL002" diags);
  Alcotest.(check bool) "unsat guard reported" true (has_code "CTL006" diags);
  Alcotest.(check bool) "lint fails" true (Diagnostic.has_errors diags)

let test_ctl003_overlap () =
  (* {a} enables both transitions with different actions: nondeterminism.
     The Gtrue fallback also keeps the state complete, isolating CTL003. *)
  let c =
    Fsa.make ~name:"nondet" ~n_states:1 ~init:0
      ~transitions:[ tr 0 (Fsa.Gatom "a") go 0; tr 0 Fsa.Gtrue stop 0 ]
      ()
  in
  let diags = Controller_lint.lint c in
  let d = find_code "CTL003" diags in
  Alcotest.(check (list string)) "only the overlap" [ "CTL003" ] (codes diags);
  Alcotest.(check bool) "witness enables both" true
    (match d.Diagnostic.witness with
    | Some w -> String.length w > 0
    | None -> false)

let test_ctl004_incomplete () =
  (* no transition fires when "a" is absent *)
  let c =
    Fsa.make ~name:"partial" ~n_states:1 ~init:0
      ~transitions:[ tr 0 (Fsa.Gatom "a") go 0 ]
      ()
  in
  let diags = Controller_lint.lint c in
  let d = find_code "CTL004" diags in
  Alcotest.(check string) "severity" "error"
    (Diagnostic.severity_string d.Diagnostic.severity);
  (match Controller_lint.incompleteness c with
  | [ (q, w) ] ->
      Alcotest.(check int) "at the initial state" 0 q;
      Alcotest.(check bool) "witness disables the guard" false
        (Fsa.eval_guard (Fsa.Gatom "a") w)
  | other -> Alcotest.failf "expected one gap, got %d" (List.length other))

let test_ctl005_epsilon_cycle () =
  let eps = Symbol.empty in
  let c =
    Fsa.make ~name:"silent" ~n_states:2 ~init:0
      ~transitions:[ tr 0 Fsa.Gtrue eps 1; tr 1 Fsa.Gtrue eps 0 ]
      ()
  in
  Alcotest.(check bool) "epsilon cycle reported" true
    (has_code "CTL005" (Controller_lint.lint c))

(* ---------------- spec sanity: rule book + seeded defects ------------- *)

let test_rulebook_sane () =
  List.iter
    (fun (name, phi) ->
      Alcotest.(check bool) (name ^ " satisfiable") false
        (Spec_sanity.unsatisfiable phi);
      Alcotest.(check bool) (name ^ " not a tautology") false
        (Spec_sanity.tautological phi))
    Specs.all

let test_rulebook_redundancies () =
  (* the implications the analyzer finds in the paper's 15-rule book *)
  let imps = Spec_sanity.implications Specs.all in
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool) (a ^ " => " ^ b) true (List.mem (a, b) imps))
    [ ("phi_5", "phi_11"); ("phi_9", "phi_15"); ("phi_12", "phi_2") ]

let test_spec001_unsat () =
  let bad = Ltl.And (Ltl.Always (Ltl.Atom "p"), Ltl.Eventually (Ltl.Not (Ltl.Atom "p"))) in
  let diags = Spec_sanity.check [ ("bad", bad) ] in
  let d = find_code "SPEC001" diags in
  Alcotest.(check string) "artifact" "bad" (Diagnostic.artifact_name d.Diagnostic.artifact);
  Alcotest.(check bool) "error severity" true (Diagnostic.has_errors diags)

let test_spec002_tautology () =
  let trivial = Ltl.Always (Ltl.Or (Ltl.Atom "p", Ltl.Not (Ltl.Atom "p"))) in
  Alcotest.(check bool) "reported" true
    (has_code "SPEC002" (Spec_sanity.check [ ("trivial", trivial) ]))

let test_spec003_redundancy () =
  let strong = Ltl.Always (Ltl.And (Ltl.Atom "p", Ltl.Atom "q")) in
  let weak = Ltl.Always (Ltl.Atom "p") in
  let diags = Spec_sanity.check [ ("strong", strong); ("weak", weak) ] in
  let d = find_code "SPEC003" diags in
  Alcotest.(check string) "redundant spec is the implied one" "weak"
    (Diagnostic.artifact_name d.Diagnostic.artifact);
  Alcotest.(check bool) "info only" false (Diagnostic.has_errors diags);
  Alcotest.(check (list string)) "no sweep without pairwise" []
    (codes (Spec_sanity.check ~pairwise:false [ ("strong", strong); ("weak", weak) ]))

let one_state_model label =
  Ts.make ~name:"m" ~states:[ ("s0", label) ] ~transitions:[ ("s0", "s0") ] ()

let test_spec004_model_vacuity () =
  (* the antecedent atom never occurs in the model *)
  let phi = Ltl.Always (Ltl.Implies (Ltl.Atom "trig", Ltl.Eventually (Ltl.Atom "p"))) in
  let model = one_state_model (sym [ "p" ]) in
  Alcotest.(check bool) "vacuous" true (Spec_sanity.vacuous_in_model ~model phi);
  Alcotest.(check bool) "reported" true
    (has_code "SPEC004" (Spec_sanity.check ~model [ ("ghost", phi) ]));
  (* a free atom makes the antecedent reachable again *)
  Alcotest.(check bool) "free atoms unconstrained" false
    (Spec_sanity.vacuous_in_model ~model ~free:(sym [ "trig" ]) phi)

(* ---------------- model lint: seeded defects ---------------- *)

let test_mdl001_dead_state () =
  let m =
    Ts.make ~name:"dead"
      ~states:[ ("s0", sym [ "p" ]); ("s1", sym []) ]
      ~transitions:[ ("s0", "s1") ] ()
  in
  let diags = Model_lint.lint m in
  let d = find_code "MDL001" diags in
  Alcotest.(check bool) "names the dead state" true
    (d.Diagnostic.witness = Some "s1")

let test_mdl002_uncovered_atom () =
  let m = one_state_model (sym [ "p" ]) in
  let specs = [ ("s", Ltl.Always (Ltl.Implies (Ltl.Atom "ghost", Ltl.Atom "p"))) ] in
  let diags = Model_lint.lint ~specs m in
  let d = find_code "MDL002" diags in
  Alcotest.(check bool) "names the atom" true (d.Diagnostic.witness = Some "ghost");
  (* action atoms are the controller's to emit, not the model's *)
  Alcotest.(check (list string)) "ignored atoms not reported" []
    (codes (Model_lint.lint ~specs ~ignore:(sym [ "ghost" ]) m))

(* ---------------- per-controller vacuity ---------------- *)

let test_vac001_controller_vacuity () =
  let model = one_state_model Symbol.empty in
  let controller =
    Fsa.make ~name:"always_stop" ~n_states:1 ~init:0
      ~transitions:[ tr 0 Fsa.Gtrue stop 0 ] ()
  in
  let specs =
    [
      (* never triggers: "p" is neither emitted by the model nor an action *)
      ("ghost", Ltl.Always (Ltl.Implies (Ltl.Atom "p", Ltl.Eventually (Ltl.Atom "stop"))));
      (* triggers on every step via the controller's own action atom *)
      ("live", Ltl.Always (Ltl.Implies (Ltl.Atom "stop", Ltl.Atom "stop")));
    ]
  in
  let satisfied = [ "ghost"; "live" ] in
  Alcotest.(check (list string)) "only the untriggered spec" [ "ghost" ]
    (Vacuity.vacuously_satisfied ~model ~controller ~specs ~satisfied);
  let diags = Vacuity.diagnostics ~model ~controller ~specs ~satisfied in
  let d = find_code "VAC001" diags in
  Alcotest.(check string) "severity" "info"
    (Diagnostic.severity_string d.Diagnostic.severity)

(* ---------------- seed artifacts stay clean ---------------- *)

let test_seed_artifacts_clean () =
  let free = sym Vocab.actions in
  let specs = Specs.all in
  Alcotest.(check bool) "rule book has no errors" false
    (Diagnostic.has_errors (Spec_sanity.check ~pairwise:false specs));
  Alcotest.(check bool) "universal model has no errors" false
    (Diagnostic.has_errors (Model_lint.lint ~specs ~ignore:free (Models.universal ())))

(* ---------------- suite sanity: qcheck + seeded defects -------------- *)

let p = Ltl.Atom "p"
let q = Ltl.Atom "q"

let conj = function
  | [] -> invalid_arg "conj"
  | phi :: rest -> List.fold_left (fun a b -> Ltl.And (a, b)) phi rest

(* random small rule books over {p, q, r}: literals under the template
   shapes plus a conjunction shape, sized so jointly-unsat subsets occur
   often enough to exercise the core search *)
let gen_book =
  let open QCheck.Gen in
  let atom = map (fun i -> Ltl.Atom [| "p"; "q"; "r" |].(i)) (int_bound 2) in
  let lit = oneof [ atom; map (fun a -> Ltl.Not a) atom ] in
  let formula =
    oneof
      [
        map (fun l -> Ltl.Always l) lit;
        map (fun l -> Ltl.Eventually l) lit;
        map2 (fun a b -> Ltl.Always (Ltl.Or (a, b))) lit lit;
        map2 (fun a b -> Ltl.And (Ltl.Always a, Ltl.Eventually b)) lit lit;
      ]
  in
  map
    (List.mapi (fun i phi -> (Printf.sprintf "s%d" i, phi)))
    (list_size (int_range 2 5) formula)

let arb_book =
  QCheck.make
    ~print:(fun specs ->
      String.concat "; "
        (List.map (fun (n, phi) -> n ^ ": " ^ Ltl.to_string phi) specs))
    gen_book

(* the tentpole's advertised invariant: every reported core is jointly
   unsatisfiable AND removing any single member restores satisfiability *)
let prop_cores_minimal =
  QCheck.Test.make ~count:200 ~name:"conflict cores are minimal"
    arb_book (fun specs ->
      let formulas names = List.map (fun n -> List.assoc n specs) names in
      List.for_all
        (fun core ->
          Spec_sanity.unsatisfiable (conj (formulas core))
          && List.for_all
               (fun dropped ->
                 let rest = List.filter (fun n -> n <> dropped) core in
                 rest = []
                 || not (Spec_sanity.unsatisfiable (conj (formulas rest))))
               core)
        (Suite_sanity.conflict_cores specs))

(* ...and completeness on the size-2 slice, where brute force is cheap:
   every jointly-unsat pair of individually-sat specs is covered by some
   reported core *)
let prop_cores_cover_pairs =
  QCheck.Test.make ~count:100 ~name:"cores cover all unsat pairs" arb_book
    (fun specs ->
      let cores = Suite_sanity.conflict_cores specs in
      let sat_alone (_, phi) = not (Spec_sanity.unsatisfiable phi) in
      let rec pairs = function
        | [] -> []
        | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
      in
      List.for_all
        (fun (((na, pa) as a), ((nb, pb) as b)) ->
          (not (sat_alone a && sat_alone b))
          || (not (Spec_sanity.unsatisfiable (Ltl.And (pa, pb))))
          || List.exists
               (fun core -> List.mem na core && List.mem nb core)
               cores)
        (pairs specs))

let test_suite001_conflict_core () =
  let specs =
    [ ("inv", Ltl.Always p); ("esc", Ltl.Eventually (Ltl.Not p)) ]
  in
  (match Suite_sanity.conflict_cores specs with
  | [ core ] ->
      Alcotest.(check (list string)) "both members" [ "esc"; "inv" ]
        (List.sort compare core)
  | other -> Alcotest.failf "expected one core, got %d" (List.length other));
  let diags = Suite_sanity.check ~suite:"seeded" specs in
  let d = find_code "SUITE001" diags in
  Alcotest.(check string) "error severity" "error"
    (Diagnostic.severity_string d.Diagnostic.severity);
  Alcotest.(check string) "suite artifact" "suite"
    (Diagnostic.artifact_kind d.Diagnostic.artifact)

let always_red =
  Ts.make ~name:"always_red"
    ~states:[ ("s0", sym [ "red" ]) ]
    ~transitions:[ ("s0", "s0") ] ()

(* jointly satisfiable in general (vacuously, when red never holds) but
   unrealizable against a model where red always holds: no action can be
   both halt and not-halt *)
let clash_book =
  [
    ("a", Ltl.Always (Ltl.Implies (Ltl.Atom "red", Ltl.Atom "halt")));
    ("b", Ltl.Always (Ltl.Implies (Ltl.Atom "red", Ltl.Not (Ltl.Atom "halt"))));
  ]

let test_suite002_unrealizable () =
  Alcotest.(check (list (list string))) "no conflict core" []
    (Suite_sanity.conflict_cores clash_book);
  (match
     Suite_sanity.realizable ~model:always_red
       ~actions:[ "halt"; "proceed" ] clash_book
   with
  | Suite_sanity.Unrealizable -> ()
  | _ -> Alcotest.fail "expected Unrealizable");
  Alcotest.(check (list string)) "deletion-minimal core" [ "a"; "b" ]
    (Suite_sanity.unrealizable_core ~model:always_red
       ~actions:[ "halt"; "proceed" ] clash_book);
  let diags =
    Suite_sanity.check ~suite:"seeded" ~actions:[ "halt"; "proceed" ]
      ~models:[ ("always_red", always_red) ]
      ~redundancy:false clash_book
  in
  let d = find_code "SUITE002" diags in
  Alcotest.(check string) "error severity" "error"
    (Diagnostic.severity_string d.Diagnostic.severity);
  Alcotest.(check (option string)) "witness carries the core" (Some "a, b")
    d.Diagnostic.witness;
  Alcotest.(check bool) "message names the model" true
    (let msg = d.Diagnostic.message in
     let n = String.length "always_red" and h = String.length msg in
     let rec go i =
       i + n <= h && (String.sub msg i n = "always_red" || go (i + 1))
     in
     go 0);
  (* each spec alone is realizable in the same model *)
  List.iter
    (fun spec ->
      match
        Suite_sanity.realizable ~model:always_red
          ~actions:[ "halt"; "proceed" ] [ spec ]
      with
      | Suite_sanity.Realizable -> ()
      | _ -> Alcotest.failf "%s alone should be realizable" (fst spec))
    clash_book

let test_suite003_budget () =
  (* a non-template formula forces the tableau fallback; a 1-state budget
     cannot hold its product *)
  let odd =
    [ ("nested", Ltl.Eventually (Ltl.And (p, Ltl.Eventually q))) ]
  in
  (match
     Suite_sanity.realizable ~model:always_red ~actions:[ "halt" ] ~budget:1
       odd
   with
  | Suite_sanity.Unknown -> ()
  | _ -> Alcotest.fail "expected Unknown under a 1-state budget");
  let diags =
    Suite_sanity.check ~suite:"seeded" ~actions:[ "halt" ] ~budget:1
      ~models:[ ("always_red", always_red) ]
      ~redundancy:false odd
  in
  let d = find_code "SUITE003" diags in
  Alcotest.(check string) "info severity" "info"
    (Diagnostic.severity_string d.Diagnostic.severity)

let test_spec005_006_coverage () =
  let specs = [ ("s", Ltl.Always (Ltl.Implies (p, Ltl.Atom "go"))) ] in
  Alcotest.(check (list (pair string (list string)))) "matrix"
    [ ("p", [ "s" ]); ("ghost", []) ]
    (Suite_sanity.coverage ~vocabulary:[ "p"; "ghost" ] specs);
  let diags =
    Suite_sanity.check ~suite:"seeded" ~propositions:[ "p"; "ghost" ]
      ~actions:[ "go"; "wave" ] specs
  in
  let d5 = find_code "SPEC005" diags in
  Alcotest.(check bool) "SPEC005 names the proposition" true
    (d5.Diagnostic.witness = Some "ghost");
  let d6 = find_code "SPEC006" diags in
  Alcotest.(check bool) "SPEC006 names the action" true
    (d6.Diagnostic.witness = Some "wave");
  Alcotest.(check bool) "warnings, not errors" false
    (Diagnostic.has_errors diags)

let test_spec007_undistinguishing () =
  let specs =
    [ ("a", Ltl.Always p); ("b", Ltl.Always q); ("c", Ltl.Eventually p) ]
  in
  (* a satisfied by both responses, c by neither: only b ever splits a
     preference pair *)
  let pool = [ ("r1", [ "a" ]); ("r2", [ "a"; "b" ]) ] in
  Alcotest.(check (list string)) "constant-status specs" [ "a"; "c" ]
    (Suite_sanity.undistinguishing ~pool specs);
  Alcotest.(check (list string)) "singleton pools are skipped" []
    (Suite_sanity.undistinguishing ~pool:[ ("r1", [ "a" ]) ] specs);
  let diags = Suite_sanity.check ~suite:"seeded" ~pool specs in
  Alcotest.(check bool) "SPEC007 reported" true (has_code "SPEC007" diags)

let all_pq_model =
  (* every {p,q} valuation reachable from every other: nothing about p or
     q is forced by the world *)
  let labels = [ []; [ "p" ]; [ "q" ]; [ "p"; "q" ] ] in
  let states = List.mapi (fun i l -> (Printf.sprintf "s%d" i, sym l)) labels in
  let names = List.map fst states in
  Ts.make ~name:"all_pq" ~states
    ~transitions:
      (List.concat_map (fun a -> List.map (fun b -> (a, b)) names) names)
    ()

let test_spec008_joint_redundancy () =
  let specs =
    [ ("a", Ltl.Always p); ("b", Ltl.Always q);
      ("c", Ltl.Always (Ltl.And (p, q))) ]
  in
  (* c follows from a AND b together but from neither alone, so the
     pairwise sweep (SPEC003) cannot see it *)
  Alcotest.(check (list string)) "joint-only redundancy" [ "c" ]
    (Suite_sanity.joint_redundancies ~model:all_pq_model ~actions:[ "act" ]
       specs);
  Alcotest.(check bool) "invisible to the pairwise sweep" true
    (List.for_all
       (fun (n, phi) -> n = "c" || not (Spec_sanity.implies phi (conj [ p; q ])))
       specs);
  let diags =
    Suite_sanity.check ~suite:"seeded" ~actions:[ "act" ]
      ~models:[ ("all_pq", all_pq_model) ]
      specs
  in
  let d = find_code "SPEC008" diags in
  Alcotest.(check string) "on spec c" "c"
    (Diagnostic.artifact_name d.Diagnostic.artifact)

(* the seed driving pack, pinned: the suite pass must keep reproducing
   the known findings (an unconstrained proposition, six specs the demo
   pool never splits, three jointly-redundant specs) *)
let test_driving_suite_findings () =
  let models =
    ("universal", Models.universal ())
    :: List.map
         (fun sc -> (Models.scenario_name sc, Models.model sc))
         Models.all_scenarios
  in
  let diags =
    Suite_sanity.check ~suite:"driving" ~propositions:Vocab.propositions
      ~actions:Vocab.actions ~models Specs.all
  in
  Alcotest.(check bool) "no errors" false (Diagnostic.has_errors diags);
  let with_code c = List.filter (fun d -> d.Diagnostic.code = c) diags in
  (match with_code "SPEC005" with
  | [ d ] ->
      Alcotest.(check (option string)) "the uncovered proposition"
        (Some "flashing left-turn light") d.Diagnostic.witness
  | other -> Alcotest.failf "expected one SPEC005, got %d" (List.length other));
  Alcotest.(check int) "no unconstrained actions" 0
    (List.length (with_code "SPEC006"));
  Alcotest.(check (list string)) "jointly redundant specs"
    [ "phi_4"; "phi_6"; "phi_9" ]
    (List.sort compare
       (List.map
          (fun d -> Diagnostic.artifact_name d.Diagnostic.artifact)
          (with_code "SPEC008")));
  Alcotest.(check int) "all suites realizable" 0
    (List.length (with_code "SUITE002" @ with_code "SUITE003"))

(* the full analyzer path also reproduces the five known pairwise
   redundancies (SPEC003) the suite pass rides alongside *)
let test_driving_pairwise_redundancies () =
  let diags = Spec_sanity.check Specs.all in
  let found =
    List.filter_map
      (fun d ->
        if d.Diagnostic.code = "SPEC003" then
          Some (Diagnostic.artifact_name d.Diagnostic.artifact, d.Diagnostic.witness)
        else None)
      diags
  in
  Alcotest.(check int) "five known redundancies" 5 (List.length found);
  List.iter
    (fun (implied, by) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s implied by %s" implied
           (Option.value ~default:"?" by))
        true
        (List.mem (implied, by)
           [ ("phi_11", Some "phi_5"); ("phi_11", Some "phi_9");
             ("phi_15", Some "phi_5"); ("phi_15", Some "phi_9");
             ("phi_2", Some "phi_12") ]))
    found

(* ---------------- counterexample explanation ---------------- *)

(* replay the explanation's own steps through eval_lasso: the lasso it
   describes must genuinely violate the spec it blames *)
let replay_violates phi (e : Explain.t) =
  let symbol (s : Explain.step) =
    sym (s.Explain.holds @ Option.to_list s.Explain.action)
  in
  let prefix, cycle =
    List.partition (fun (s : Explain.step) -> not s.Explain.in_cycle) e.Explain.steps
  in
  not
    (Trace.eval_lasso phi
       ~prefix:(Array.of_list (List.map symbol prefix))
       ~cycle:(Array.of_list (List.map symbol cycle)))

let test_explanation_roundtrip () =
  let domain = Dpoaf_domain.find_exn "driving" in
  (* an unprotected right turn violates several driving rules *)
  let es = Dpoaf_domain.Domain.explain_steps domain [ "turn right" ] in
  Alcotest.(check bool) "violations explained" true (es <> []);
  List.iter
    (fun (e : Explain.t) ->
      let phi = List.assoc e.Explain.spec Specs.all in
      Alcotest.(check bool)
        (e.Explain.spec ^ " replay violates") true (replay_violates phi e);
      Alcotest.(check bool) "has culprit steps" true (e.Explain.culprits <> []);
      Alcotest.(check bool) "text names the spec" true
        (let n = String.length e.Explain.spec
         and h = String.length e.Explain.text in
         let rec go i =
           i + n <= h
           && (String.sub e.Explain.text i n = e.Explain.spec || go (i + 1))
         in
         go 0);
      (* the JSON rendering is well-formed and self-identifying *)
      let json =
        Dpoaf_util.Json.parse_exn
          (Dpoaf_util.Json.to_string (Explain.to_json e))
      in
      Alcotest.(check (option string)) "json spec" (Some e.Explain.spec)
        Dpoaf_util.Json.(Option.bind (member "spec" json) to_str))
    es

let test_explanation_never_lies () =
  (* a counterexample that does NOT violate the spec must be rejected by
     replay validation, not explained *)
  let cex =
    {
      Dpoaf_automata.Model_checker.prefix = [];
      cycle = [ sym [ "p"; "go" ] ];
      prefix_descr = [];
      cycle_descr = [ "s0" ];
      prefix_tags = [];
      cycle_tags = [ 0 ];
    }
  in
  Alcotest.(check bool) "satisfying lasso rejected" true
    (Explain.explain ~spec:("holds", Ltl.Always p) ~actions:[ "go" ] cex
    = None);
  (* and one that does violate is explained, naming the right step *)
  match
    Explain.explain ~spec:("broken", Ltl.Always q) ~actions:[ "go" ] cex
  with
  | None -> Alcotest.fail "violating lasso must be explained"
  | Some e ->
      Alcotest.(check (list int)) "step 1 is the culprit" [ 1 ]
        e.Explain.culprits;
      Alcotest.(check bool) "step carries its action" true
        ((List.hd e.Explain.steps).Explain.action = Some "go")

(* ---------------- diagnostics plumbing ---------------- *)

let test_report_json_counts () =
  let mk code severity =
    Diagnostic.make ~code ~severity ~artifact:(Diagnostic.Spec "s") "msg"
  in
  let diags =
    [ mk "SPEC003" Diagnostic.Info; mk "SPEC001" Diagnostic.Error;
      mk "SPEC004" Diagnostic.Warning; mk "SPEC002" Diagnostic.Error ]
  in
  let json = Diagnostic.report_json diags in
  let parsed = Dpoaf_util.Json.parse_exn (Dpoaf_util.Json.to_string json) in
  let summary k =
    Dpoaf_util.Json.(
      Option.bind (member "summary" parsed) (fun s -> Option.bind (member k s) to_float))
  in
  Alcotest.(check (option (float 0.))) "errors" (Some 2.) (summary "errors");
  Alcotest.(check (option (float 0.))) "warnings" (Some 1.) (summary "warnings");
  Alcotest.(check (option (float 0.))) "infos" (Some 1.) (summary "infos");
  Alcotest.(check (option (float 0.))) "total" (Some 4.) (summary "total");
  match Dpoaf_util.Json.(Option.bind (member "diagnostics" parsed) to_list) with
  | Some (first :: _) ->
      Alcotest.(check (option string)) "sorted most severe first" (Some "error")
        Dpoaf_util.Json.(Option.bind (member "severity" first) to_str)
  | _ -> Alcotest.fail "diagnostics array missing"

let () =
  Alcotest.run "analysis"
    [
      qsuite "guards-qcheck"
        [
          prop_dnf_agrees; prop_witness_valid; prop_overlap_agrees;
          prop_completeness_agrees;
        ];
      ( "controller-lint",
        [
          Alcotest.test_case "clean controller" `Quick test_clean_controller;
          Alcotest.test_case "CTL001 unreachable" `Quick test_ctl001_unreachable;
          Alcotest.test_case "CTL002 stuck" `Quick test_ctl002_stuck;
          Alcotest.test_case "CTL003 overlap" `Quick test_ctl003_overlap;
          Alcotest.test_case "CTL004 incomplete" `Quick test_ctl004_incomplete;
          Alcotest.test_case "CTL005 epsilon cycle" `Quick test_ctl005_epsilon_cycle;
        ] );
      ( "spec-sanity",
        [
          Alcotest.test_case "rule book sane" `Quick test_rulebook_sane;
          Alcotest.test_case "rule book redundancies" `Quick test_rulebook_redundancies;
          Alcotest.test_case "SPEC001 unsatisfiable" `Quick test_spec001_unsat;
          Alcotest.test_case "SPEC002 tautology" `Quick test_spec002_tautology;
          Alcotest.test_case "SPEC003 redundancy" `Quick test_spec003_redundancy;
          Alcotest.test_case "SPEC004 model vacuity" `Quick test_spec004_model_vacuity;
        ] );
      ( "model-lint",
        [
          Alcotest.test_case "MDL001 dead state" `Quick test_mdl001_dead_state;
          Alcotest.test_case "MDL002 uncovered atom" `Quick test_mdl002_uncovered_atom;
        ] );
      ( "vacuity",
        [
          Alcotest.test_case "VAC001 controller vacuity" `Quick
            test_vac001_controller_vacuity;
          Alcotest.test_case "seed artifacts clean" `Quick test_seed_artifacts_clean;
        ] );
      qsuite "suite-qcheck" [ prop_cores_minimal; prop_cores_cover_pairs ];
      ( "suite-sanity",
        [
          Alcotest.test_case "SUITE001 conflict core" `Quick
            test_suite001_conflict_core;
          Alcotest.test_case "SUITE002 unrealizable" `Quick
            test_suite002_unrealizable;
          Alcotest.test_case "SUITE003 budget" `Quick test_suite003_budget;
          Alcotest.test_case "SPEC005/006 coverage" `Quick
            test_spec005_006_coverage;
          Alcotest.test_case "SPEC007 undistinguishing" `Quick
            test_spec007_undistinguishing;
          Alcotest.test_case "SPEC008 joint redundancy" `Quick
            test_spec008_joint_redundancy;
          Alcotest.test_case "driving suite findings" `Slow
            test_driving_suite_findings;
          Alcotest.test_case "driving pairwise redundancies" `Slow
            test_driving_pairwise_redundancies;
        ] );
      ( "explain",
        [
          Alcotest.test_case "roundtrip on driving violations" `Quick
            test_explanation_roundtrip;
          Alcotest.test_case "never lies" `Quick test_explanation_never_lies;
        ] );
      ( "diagnostics",
        [ Alcotest.test_case "report json counts" `Quick test_report_json_counts ] );
    ]
