(* Tests for the static sanity layer (lib/analysis): the DNF guard engine
   against brute-force enumeration, each diagnostic class on a seeded
   defect, and the seed rule book's health. *)

module Fsa = Dpoaf_automata.Fsa
module Ts = Dpoaf_automata.Ts
module Symbol = Dpoaf_logic.Symbol
module Ltl = Dpoaf_logic.Ltl
module Guards = Dpoaf_analysis.Guards
module Controller_lint = Dpoaf_analysis.Controller_lint
module Spec_sanity = Dpoaf_analysis.Spec_sanity
module Model_lint = Dpoaf_analysis.Model_lint
module Vacuity = Dpoaf_analysis.Vacuity
module Diagnostic = Dpoaf_analysis.Diagnostic
module Specs = Dpoaf_driving.Specs
module Models = Dpoaf_driving.Models
module Vocab = Dpoaf_driving.Vocab

let sym = Symbol.of_atoms

(* ---------------- qcheck: the DNF guard engine ---------------- *)

let atoms = [| "a"; "b"; "c"; "d" |]

(* Every subset of the 4-atom universe: brute-force ground truth for the
   DNF verdicts (guards below only mention these atoms, and verdicts are
   don't-care on unmentioned atoms). *)
let all_symbols =
  let rec subsets = function
    | [] -> [ [] ]
    | x :: rest ->
        let s = subsets rest in
        s @ List.map (fun l -> x :: l) s
  in
  List.map sym (subsets (Array.to_list atoms))

let gen_guard =
  let open QCheck.Gen in
  sized_size (int_bound 8)
  @@ fix (fun self n ->
         if n <= 0 then
           oneof
             [ return Fsa.Gtrue; map (fun i -> Fsa.Gatom atoms.(i)) (int_bound 3) ]
         else
           frequency
             [
               (1, return Fsa.Gtrue);
               (3, map (fun i -> Fsa.Gatom atoms.(i)) (int_bound 3));
               (2, map (fun g -> Fsa.Gnot g) (self (n - 1)));
               (2, map2 (fun a b -> Fsa.Gand (a, b)) (self (n / 2)) (self (n / 2)));
               (2, map2 (fun a b -> Fsa.Gor (a, b)) (self (n / 2)) (self (n / 2)));
             ])

let print_guard = Format.asprintf "%a" Fsa.pp_guard
let arb_guard = QCheck.make ~print:print_guard gen_guard

let arb_guard_pair =
  QCheck.make
    ~print:(fun (a, b) -> print_guard a ^ " / " ^ print_guard b)
    QCheck.Gen.(pair gen_guard gen_guard)

let arb_guard_list =
  QCheck.make
    ~print:(fun gs -> String.concat " ; " (List.map print_guard gs))
    QCheck.Gen.(list_size (int_range 0 3) gen_guard)

let prop_dnf_agrees =
  QCheck.Test.make ~count:500 ~name:"DNF eval agrees with Fsa.eval_guard"
    arb_guard (fun g ->
      let d = Guards.of_guard g in
      List.for_all (fun s -> Guards.eval d s = Fsa.eval_guard g s) all_symbols)

let prop_witness_valid =
  QCheck.Test.make ~count:500 ~name:"witness agrees with brute-force sat"
    arb_guard (fun g ->
      match Guards.witness g with
      | Some s -> Fsa.eval_guard g s
      | None -> not (List.exists (Fsa.eval_guard g) all_symbols))

let prop_overlap_agrees =
  QCheck.Test.make ~count:300 ~name:"overlap verdict agrees with brute force"
    arb_guard_pair (fun (g1, g2) ->
      match Guards.overlap_witness g1 g2 with
      | Some s -> Fsa.eval_guard g1 s && Fsa.eval_guard g2 s
      | None ->
          not
            (List.exists
               (fun s -> Fsa.eval_guard g1 s && Fsa.eval_guard g2 s)
               all_symbols))

let prop_completeness_agrees =
  QCheck.Test.make ~count:300
    ~name:"completeness verdict agrees with brute force" arb_guard_list
    (fun gs ->
      let none_enabled s = not (List.exists (fun g -> Fsa.eval_guard g s) gs) in
      match Guards.complement_witness gs with
      | Some s -> none_enabled s
      | None -> not (List.exists none_enabled all_symbols))

let qsuite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests)

(* ---------------- controller lint: seeded defects ---------------- *)

let codes diags = List.map (fun d -> d.Diagnostic.code) diags
let has_code c diags = List.mem c (codes diags)

let find_code c diags =
  match List.find_opt (fun d -> d.Diagnostic.code = c) diags with
  | Some d -> d
  | None -> Alcotest.failf "expected a %s diagnostic, got [%s]" c
              (String.concat "; " (codes diags))

let tr src guard action dst = { Fsa.src; guard; action; dst }
let go = sym [ "go" ]
let stop = sym [ "stop" ]

let test_clean_controller () =
  (* complete, deterministic, all states reachable: no findings *)
  let c =
    Fsa.make ~name:"clean" ~n_states:2 ~init:0
      ~transitions:
        [
          tr 0 (Fsa.Gatom "a") go 1;
          tr 0 (Fsa.Gnot (Fsa.Gatom "a")) stop 0;
          tr 1 Fsa.Gtrue stop 0;
        ]
      ()
  in
  Alcotest.(check (list string)) "no diagnostics" [] (codes (Controller_lint.lint c))

let test_ctl001_unreachable () =
  let c =
    Fsa.make ~name:"orphan" ~n_states:3 ~init:0
      ~transitions:
        [ tr 0 Fsa.Gtrue go 1; tr 1 Fsa.Gtrue go 0; tr 2 Fsa.Gtrue go 2 ]
      ()
  in
  let diags = Controller_lint.lint c in
  let d = find_code "CTL001" diags in
  Alcotest.(check string) "severity" "warning"
    (Diagnostic.severity_string d.Diagnostic.severity);
  Alcotest.(check bool) "names the orphan state" true
    (d.Diagnostic.witness = Some "q2")

let test_ctl002_stuck () =
  (* q1 is reachable but its only guard is contradictory: the controller
     freezes there (and the unsatisfiable guard is reported on its own) *)
  let contradiction = Fsa.Gand (Fsa.Gatom "a", Fsa.Gnot (Fsa.Gatom "a")) in
  let c =
    Fsa.make ~name:"frozen" ~n_states:2 ~init:0
      ~transitions:[ tr 0 Fsa.Gtrue go 1; tr 1 contradiction go 0 ]
      ()
  in
  let diags = Controller_lint.lint c in
  Alcotest.(check bool) "stuck state reported" true (has_code "CTL002" diags);
  Alcotest.(check bool) "unsat guard reported" true (has_code "CTL006" diags);
  Alcotest.(check bool) "lint fails" true (Diagnostic.has_errors diags)

let test_ctl003_overlap () =
  (* {a} enables both transitions with different actions: nondeterminism.
     The Gtrue fallback also keeps the state complete, isolating CTL003. *)
  let c =
    Fsa.make ~name:"nondet" ~n_states:1 ~init:0
      ~transitions:[ tr 0 (Fsa.Gatom "a") go 0; tr 0 Fsa.Gtrue stop 0 ]
      ()
  in
  let diags = Controller_lint.lint c in
  let d = find_code "CTL003" diags in
  Alcotest.(check (list string)) "only the overlap" [ "CTL003" ] (codes diags);
  Alcotest.(check bool) "witness enables both" true
    (match d.Diagnostic.witness with
    | Some w -> String.length w > 0
    | None -> false)

let test_ctl004_incomplete () =
  (* no transition fires when "a" is absent *)
  let c =
    Fsa.make ~name:"partial" ~n_states:1 ~init:0
      ~transitions:[ tr 0 (Fsa.Gatom "a") go 0 ]
      ()
  in
  let diags = Controller_lint.lint c in
  let d = find_code "CTL004" diags in
  Alcotest.(check string) "severity" "error"
    (Diagnostic.severity_string d.Diagnostic.severity);
  (match Controller_lint.incompleteness c with
  | [ (q, w) ] ->
      Alcotest.(check int) "at the initial state" 0 q;
      Alcotest.(check bool) "witness disables the guard" false
        (Fsa.eval_guard (Fsa.Gatom "a") w)
  | other -> Alcotest.failf "expected one gap, got %d" (List.length other))

let test_ctl005_epsilon_cycle () =
  let eps = Symbol.empty in
  let c =
    Fsa.make ~name:"silent" ~n_states:2 ~init:0
      ~transitions:[ tr 0 Fsa.Gtrue eps 1; tr 1 Fsa.Gtrue eps 0 ]
      ()
  in
  Alcotest.(check bool) "epsilon cycle reported" true
    (has_code "CTL005" (Controller_lint.lint c))

(* ---------------- spec sanity: rule book + seeded defects ------------- *)

let test_rulebook_sane () =
  List.iter
    (fun (name, phi) ->
      Alcotest.(check bool) (name ^ " satisfiable") false
        (Spec_sanity.unsatisfiable phi);
      Alcotest.(check bool) (name ^ " not a tautology") false
        (Spec_sanity.tautological phi))
    Specs.all

let test_rulebook_redundancies () =
  (* the implications the analyzer finds in the paper's 15-rule book *)
  let imps = Spec_sanity.implications Specs.all in
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool) (a ^ " => " ^ b) true (List.mem (a, b) imps))
    [ ("phi_5", "phi_11"); ("phi_9", "phi_15"); ("phi_12", "phi_2") ]

let test_spec001_unsat () =
  let bad = Ltl.And (Ltl.Always (Ltl.Atom "p"), Ltl.Eventually (Ltl.Not (Ltl.Atom "p"))) in
  let diags = Spec_sanity.check [ ("bad", bad) ] in
  let d = find_code "SPEC001" diags in
  Alcotest.(check string) "artifact" "bad" (Diagnostic.artifact_name d.Diagnostic.artifact);
  Alcotest.(check bool) "error severity" true (Diagnostic.has_errors diags)

let test_spec002_tautology () =
  let trivial = Ltl.Always (Ltl.Or (Ltl.Atom "p", Ltl.Not (Ltl.Atom "p"))) in
  Alcotest.(check bool) "reported" true
    (has_code "SPEC002" (Spec_sanity.check [ ("trivial", trivial) ]))

let test_spec003_redundancy () =
  let strong = Ltl.Always (Ltl.And (Ltl.Atom "p", Ltl.Atom "q")) in
  let weak = Ltl.Always (Ltl.Atom "p") in
  let diags = Spec_sanity.check [ ("strong", strong); ("weak", weak) ] in
  let d = find_code "SPEC003" diags in
  Alcotest.(check string) "redundant spec is the implied one" "weak"
    (Diagnostic.artifact_name d.Diagnostic.artifact);
  Alcotest.(check bool) "info only" false (Diagnostic.has_errors diags);
  Alcotest.(check (list string)) "no sweep without pairwise" []
    (codes (Spec_sanity.check ~pairwise:false [ ("strong", strong); ("weak", weak) ]))

let one_state_model label =
  Ts.make ~name:"m" ~states:[ ("s0", label) ] ~transitions:[ ("s0", "s0") ] ()

let test_spec004_model_vacuity () =
  (* the antecedent atom never occurs in the model *)
  let phi = Ltl.Always (Ltl.Implies (Ltl.Atom "trig", Ltl.Eventually (Ltl.Atom "p"))) in
  let model = one_state_model (sym [ "p" ]) in
  Alcotest.(check bool) "vacuous" true (Spec_sanity.vacuous_in_model ~model phi);
  Alcotest.(check bool) "reported" true
    (has_code "SPEC004" (Spec_sanity.check ~model [ ("ghost", phi) ]));
  (* a free atom makes the antecedent reachable again *)
  Alcotest.(check bool) "free atoms unconstrained" false
    (Spec_sanity.vacuous_in_model ~model ~free:(sym [ "trig" ]) phi)

(* ---------------- model lint: seeded defects ---------------- *)

let test_mdl001_dead_state () =
  let m =
    Ts.make ~name:"dead"
      ~states:[ ("s0", sym [ "p" ]); ("s1", sym []) ]
      ~transitions:[ ("s0", "s1") ] ()
  in
  let diags = Model_lint.lint m in
  let d = find_code "MDL001" diags in
  Alcotest.(check bool) "names the dead state" true
    (d.Diagnostic.witness = Some "s1")

let test_mdl002_uncovered_atom () =
  let m = one_state_model (sym [ "p" ]) in
  let specs = [ ("s", Ltl.Always (Ltl.Implies (Ltl.Atom "ghost", Ltl.Atom "p"))) ] in
  let diags = Model_lint.lint ~specs m in
  let d = find_code "MDL002" diags in
  Alcotest.(check bool) "names the atom" true (d.Diagnostic.witness = Some "ghost");
  (* action atoms are the controller's to emit, not the model's *)
  Alcotest.(check (list string)) "ignored atoms not reported" []
    (codes (Model_lint.lint ~specs ~ignore:(sym [ "ghost" ]) m))

(* ---------------- per-controller vacuity ---------------- *)

let test_vac001_controller_vacuity () =
  let model = one_state_model Symbol.empty in
  let controller =
    Fsa.make ~name:"always_stop" ~n_states:1 ~init:0
      ~transitions:[ tr 0 Fsa.Gtrue stop 0 ] ()
  in
  let specs =
    [
      (* never triggers: "p" is neither emitted by the model nor an action *)
      ("ghost", Ltl.Always (Ltl.Implies (Ltl.Atom "p", Ltl.Eventually (Ltl.Atom "stop"))));
      (* triggers on every step via the controller's own action atom *)
      ("live", Ltl.Always (Ltl.Implies (Ltl.Atom "stop", Ltl.Atom "stop")));
    ]
  in
  let satisfied = [ "ghost"; "live" ] in
  Alcotest.(check (list string)) "only the untriggered spec" [ "ghost" ]
    (Vacuity.vacuously_satisfied ~model ~controller ~specs ~satisfied);
  let diags = Vacuity.diagnostics ~model ~controller ~specs ~satisfied in
  let d = find_code "VAC001" diags in
  Alcotest.(check string) "severity" "info"
    (Diagnostic.severity_string d.Diagnostic.severity)

(* ---------------- seed artifacts stay clean ---------------- *)

let test_seed_artifacts_clean () =
  let free = sym Vocab.actions in
  let specs = Specs.all in
  Alcotest.(check bool) "rule book has no errors" false
    (Diagnostic.has_errors (Spec_sanity.check ~pairwise:false specs));
  Alcotest.(check bool) "universal model has no errors" false
    (Diagnostic.has_errors (Model_lint.lint ~specs ~ignore:free (Models.universal ())))

(* ---------------- diagnostics plumbing ---------------- *)

let test_report_json_counts () =
  let mk code severity =
    Diagnostic.make ~code ~severity ~artifact:(Diagnostic.Spec "s") "msg"
  in
  let diags =
    [ mk "SPEC003" Diagnostic.Info; mk "SPEC001" Diagnostic.Error;
      mk "SPEC004" Diagnostic.Warning; mk "SPEC002" Diagnostic.Error ]
  in
  let json = Diagnostic.report_json diags in
  let parsed = Dpoaf_util.Json.parse_exn (Dpoaf_util.Json.to_string json) in
  let summary k =
    Dpoaf_util.Json.(
      Option.bind (member "summary" parsed) (fun s -> Option.bind (member k s) to_float))
  in
  Alcotest.(check (option (float 0.))) "errors" (Some 2.) (summary "errors");
  Alcotest.(check (option (float 0.))) "warnings" (Some 1.) (summary "warnings");
  Alcotest.(check (option (float 0.))) "infos" (Some 1.) (summary "infos");
  Alcotest.(check (option (float 0.))) "total" (Some 4.) (summary "total");
  match Dpoaf_util.Json.(Option.bind (member "diagnostics" parsed) to_list) with
  | Some (first :: _) ->
      Alcotest.(check (option string)) "sorted most severe first" (Some "error")
        Dpoaf_util.Json.(Option.bind (member "severity" first) to_str)
  | _ -> Alcotest.fail "diagnostics array missing"

let () =
  Alcotest.run "analysis"
    [
      qsuite "guards-qcheck"
        [
          prop_dnf_agrees; prop_witness_valid; prop_overlap_agrees;
          prop_completeness_agrees;
        ];
      ( "controller-lint",
        [
          Alcotest.test_case "clean controller" `Quick test_clean_controller;
          Alcotest.test_case "CTL001 unreachable" `Quick test_ctl001_unreachable;
          Alcotest.test_case "CTL002 stuck" `Quick test_ctl002_stuck;
          Alcotest.test_case "CTL003 overlap" `Quick test_ctl003_overlap;
          Alcotest.test_case "CTL004 incomplete" `Quick test_ctl004_incomplete;
          Alcotest.test_case "CTL005 epsilon cycle" `Quick test_ctl005_epsilon_cycle;
        ] );
      ( "spec-sanity",
        [
          Alcotest.test_case "rule book sane" `Quick test_rulebook_sane;
          Alcotest.test_case "rule book redundancies" `Quick test_rulebook_redundancies;
          Alcotest.test_case "SPEC001 unsatisfiable" `Quick test_spec001_unsat;
          Alcotest.test_case "SPEC002 tautology" `Quick test_spec002_tautology;
          Alcotest.test_case "SPEC003 redundancy" `Quick test_spec003_redundancy;
          Alcotest.test_case "SPEC004 model vacuity" `Quick test_spec004_model_vacuity;
        ] );
      ( "model-lint",
        [
          Alcotest.test_case "MDL001 dead state" `Quick test_mdl001_dead_state;
          Alcotest.test_case "MDL002 uncovered atom" `Quick test_mdl002_uncovered_atom;
        ] );
      ( "vacuity",
        [
          Alcotest.test_case "VAC001 controller vacuity" `Quick
            test_vac001_controller_vacuity;
          Alcotest.test_case "seed artifacts clean" `Quick test_seed_artifacts_clean;
        ] );
      ( "diagnostics",
        [ Alcotest.test_case "report json counts" `Quick test_report_json_counts ] );
    ]
