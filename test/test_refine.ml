(* lib/refine: the counterexample-guided refinement loop, its monotone
   acceptance contract, the per-pack repair rate the paper's use case
   depends on, and the harvested preference store (writer + reader).

   The loop tests run against scripted samplers — fixed candidate tables
   instead of a language model — so they pin the control flow (clean
   short-circuit, strict-shrink acceptance, budget exhaustion) without
   any sampling noise.  The per-pack repair-rate test then runs the real
   conditioned sampler over every registered pack's seeded defect pool:
   at least 80% of defective responses must improve within 3 rounds. *)

module R = Dpoaf_refine.Refine
module Store = Dpoaf_refine.Pref_store
module PD = Dpoaf_dpo.Pref_data
module Dom = Dpoaf_domain.Domain
module Pipeline = Dpoaf_pipeline
module Rng = Dpoaf_util.Rng
module Json = Dpoaf_util.Json

let driving = Dpoaf_domain.find_exn "driving"

let no_sample ~feedback:_ ~round:_ ~attempt:_ =
  Alcotest.fail "the sampler must not run"

(* a probe refiner for measuring profiles without sampling *)
let probe = lazy (R.create ~domain:driving ~sample:no_sample ())

let violated steps =
  List.length (R.profile (Lazy.force probe) steps).R.violated

let defects = lazy (R.defect_pool driving ~seed:2024 ~per_task:1)

let first_defect () =
  match Lazy.force defects with
  | (_, steps) :: _ -> steps
  | [] -> Alcotest.fail "driving yields no repairable defects"

(* a response the rule book accepts outright, found in the demo pool *)
let clean_response =
  lazy
    (let (module D : Dom.S) = driving in
     match
       List.find_opt (fun (_, steps) -> violated steps = 0) D.demo_responses
     with
     | Some (_, steps) -> steps
     | None -> Alcotest.fail "driving demo pool has no clean response")

(* ---------------- scripted-loop units ---------------- *)

let test_clean_short_circuit () =
  let clean = Lazy.force clean_response in
  let refiner = R.create ~domain:driving ~sample:no_sample () in
  let o = R.run refiner clean in
  Alcotest.(check string) "status" "clean" (R.status_name o.R.status);
  Alcotest.(check int) "no rounds" 0 (List.length o.R.rounds);
  Alcotest.(check bool) "final is the original" true (o.R.final = clean);
  Alcotest.(check bool) "no deadline" false o.R.deadline_hit

let test_no_improvement_rejected () =
  let d = first_defect () in
  (* the sampler parrots the defective response: every round's best
     candidate ties the incumbent, so strict-shrink acceptance must
     reject all of them and the trajectory stays at the original *)
  let refiner =
    R.create ~domain:driving
      ~sample:(fun ~feedback:_ ~round:_ ~attempt:_ -> d)
      ()
  in
  let o = R.run refiner d in
  Alcotest.(check string) "status" "unchanged" (R.status_name o.R.status);
  Alcotest.(check int) "every budgeted round ran"
    R.default_budget.R.max_rounds (List.length o.R.rounds);
  List.iter
    (fun (r : R.round) ->
      Alcotest.(check bool) "rejected" false r.R.accepted;
      Alcotest.(check bool) "non-positive margin" true (r.R.margin <= 0))
    o.R.rounds;
  Alcotest.(check bool) "final is the original" true (o.R.final = d)

let test_repair_accepted () =
  let d = first_defect () in
  let clean = Lazy.force clean_response in
  let v0 = violated d in
  Alcotest.(check bool) "the defect actually violates" true (v0 > 0);
  let refiner =
    R.create ~domain:driving
      ~sample:(fun ~feedback:_ ~round:_ ~attempt:_ -> clean)
      ()
  in
  let o = R.run refiner d in
  Alcotest.(check string) "status" "clean" (R.status_name o.R.status);
  Alcotest.(check int) "one round suffices" 1 (List.length o.R.rounds);
  (match o.R.rounds with
  | [ r ] ->
      Alcotest.(check bool) "accepted" true r.R.accepted;
      Alcotest.(check int) "margin removes every violation" v0 r.R.margin
  | _ -> Alcotest.fail "expected exactly one round");
  Alcotest.(check bool) "final is the repair" true (o.R.final = clean);
  Alcotest.(check int) "final profile clean" 0
    (List.length o.R.final_profile.R.violated)

let test_budget_exhaustion () =
  let d = first_defect () in
  let budget = { R.max_rounds = 2; attempts = 1; round_deadline_ms = None } in
  let refiner =
    R.create ~domain:driving
      ~sample:(fun ~feedback:_ ~round:_ ~attempt:_ -> d)
      ()
  in
  let o = R.run ~budget refiner d in
  Alcotest.(check int) "stops at max_rounds" 2 (List.length o.R.rounds);
  List.iter
    (fun bad ->
      match
        R.run ~budget:bad
          (R.create ~domain:driving ~sample:no_sample ())
          (Lazy.force clean_response)
      with
      | _ -> Alcotest.fail "a non-positive budget must raise"
      | exception Invalid_argument _ -> ())
    [
      { R.max_rounds = 0; attempts = 1; round_deadline_ms = None };
      { R.max_rounds = 1; attempts = 0; round_deadline_ms = None };
      { R.max_rounds = 1; attempts = 1; round_deadline_ms = Some 0.0 };
    ]

let test_derive_seed_distinct () =
  (* every (round, attempt) coordinate draws from its own stream *)
  let seeds =
    List.concat_map
      (fun round ->
        List.map
          (fun attempt -> R.derive_seed ~seed:2024 ~round ~attempt)
          [ 0; 1; 2; 3 ])
      [ 1; 2; 3 ]
  in
  Alcotest.(check int) "no colliding streams"
    (List.length seeds)
    (List.length (List.sort_uniq compare seeds))

(* ---------------- monotone-trajectory property ---------------- *)

(* Against arbitrary scripted samplers drawing from a mixed candidate
   pool, accepted rounds' violated counts strictly decrease and the
   outcome status matches the trajectory. *)
let monotone_trajectory =
  QCheck.Test.make ~count:30 ~name:"accepted trajectories strictly shrink"
    QCheck.(pair small_nat (list_of_size Gen.(return 3) small_nat))
    (fun (salt, picks) ->
      let d = first_defect () in
      let pool =
        Array.of_list
          (Lazy.force clean_response :: d
           :: List.map snd (Lazy.force defects))
      in
      let picks = Array.of_list picks in
      let sample ~feedback:_ ~round ~attempt =
        let mixed =
          salt + (31 * round) + (7 * attempt)
          + (if Array.length picks = 0 then 0
             else picks.(round mod Array.length picks))
        in
        pool.(mixed mod Array.length pool)
      in
      let refiner = R.create ~domain:driving ~sample () in
      let o = R.run refiner d in
      let v0 = List.length o.R.original_profile.R.violated in
      let final_v =
        List.fold_left
          (fun cur (r : R.round) ->
            let v = List.length r.R.candidate_profile.R.violated in
            if r.R.accepted then begin
              if v >= cur then
                QCheck.Test.fail_reportf
                  "round %d accepted without shrinking (%d -> %d)" r.R.index
                  cur v;
              if r.R.margin <> cur - v then
                QCheck.Test.fail_reportf "round %d margin %d <> %d - %d"
                  r.R.index r.R.margin cur v;
              v
            end
            else cur)
          v0 o.R.rounds
      in
      if List.length o.R.final_profile.R.violated <> final_v then
        QCheck.Test.fail_reportf "final profile disagrees with trajectory";
      (match o.R.status with
      | R.Clean -> final_v = 0
      | R.Improved -> final_v > 0 && final_v < v0
      | R.Unchanged -> final_v = v0)
      && o.R.deadline_hit = false)

(* ---------------- per-pack repair rate ---------------- *)

(* The acceptance bar of the refinement subsystem: on every registered
   pack, the real conditioned sampler repairs (strictly improves) at
   least 80% of the seeded defect pool within 3 rounds. *)
let test_pack_repair_rate () =
  List.iter
    (fun domain ->
      let (module D : Dom.S) = domain in
      let corpus = Pipeline.Corpus.build ~domain () in
      let model =
        Pipeline.Corpus.pretrained_model
          ~config:
            { Dpoaf_lm.Model.dim = 12; context = 10; lora_rank = 2;
              arch = Dpoaf_lm.Model.Bow }
          ~per_task:20 ~epochs:10 (Rng.create 11) corpus
      in
      let snapshot = Dpoaf_lm.Sampler.snapshot model in
      let vocab = corpus.Pipeline.Corpus.vocab in
      let seed = 2024 in
      let pool = R.defect_pool domain ~seed ~per_task:2 in
      Alcotest.(check bool)
        (D.name ^ ": defect pool is non-empty")
        true (pool <> []);
      let cache = R.explain_cache ~name:("test.refine." ^ D.name) in
      let budget = { R.max_rounds = 3; attempts = 4; round_deadline_ms = None } in
      let improved =
        List.length
          (List.filter
             (fun ((task : Dom.task), response) ->
               let setup = Pipeline.Corpus.setup corpus task in
               let sample =
                 R.conditioned_sampler ~snapshot
                   ~encode:(Dpoaf_lm.Vocab.encode vocab)
                   ~decode:(Pipeline.Corpus.steps_of_tokens corpus)
                   ~prompt:setup.Pipeline.Corpus.prompt
                   ~grammar:setup.Pipeline.Corpus.grammar
                   ~min_clauses:setup.Pipeline.Corpus.min_clauses
                   ~max_clauses:setup.Pipeline.Corpus.max_clauses
                   ~sep:(Dpoaf_lm.Vocab.sep vocab) ~seed ()
               in
               let refiner = R.create ~domain ~cache ~sample () in
               (R.run ~budget refiner response).R.status <> R.Unchanged)
             pool)
      in
      let rate = float_of_int improved /. float_of_int (List.length pool) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %d/%d repaired (>= 80%%)" D.name improved
           (List.length pool))
        true (rate >= 0.8))
    (Dpoaf_domain.all ())

(* ---------------- the preference store ---------------- *)

let sample_harvested i =
  {
    PD.h_task = Printf.sprintf "task_%02d" i;
    h_domain = "driving";
    h_round = 1 + (i mod 3);
    h_seed = 2024;
    h_chosen_steps = [ "come to a complete stop"; "turn right" ];
    h_rejected_steps = [ "turn right" ];
    h_chosen_score = 15;
    h_rejected_score = 12;
    h_chosen_satisfied = [ "phi_1"; "phi_2" ];
    h_rejected_satisfied = [ "phi_2" ];
    h_chosen_vacuous = [ "phi_2" ];
    h_explanations =
      [ ("phi_1", "step 1 allows `proceed` while `red_light` holds") ];
  }

let test_harvested_json_round_trip () =
  let h = sample_harvested 0 in
  let j = PD.json_of_harvested h in
  (* the schema member leads every record, so `head -c` on a store file
     identifies the format without parsing *)
  let prefix = {|{"schema":"dpoaf-prefstore/1"|} in
  let s = Json.to_string j in
  Alcotest.(check string) "schema member first" prefix
    (String.sub s 0 (String.length prefix));
  (match PD.harvested_of_json j with
  | Ok h' -> Alcotest.(check bool) "round-trips" true (h = h')
  | Error e -> Alcotest.fail ("round-trip failed: " ^ e));
  let expect_error what j needle =
    match PD.harvested_of_json j with
    | Ok _ -> Alcotest.failf "%s: expected an error" what
    | Error msg ->
        let contains hay needle =
          let h = String.length hay and n = String.length needle in
          let rec go i =
            i + n <= h && (String.sub hay i n = needle || go (i + 1))
          in
          go 0
        in
        Alcotest.(check bool)
          (Printf.sprintf "%s mentions %S (got %S)" what needle msg)
          true (contains msg needle)
  in
  expect_error "wrong schema"
    (Json.obj [ ("schema", Json.str "dpoaf-prefstore/999") ])
    "schema";
  expect_error "missing field"
    (Json.obj [ ("schema", Json.str PD.store_schema) ])
    "task"

let test_store_round_trip () =
  let path = Filename.temp_file "dpoaf-prefstore" ".jsonl" in
  let records = List.init 5 sample_harvested in
  let store = Store.create path in
  List.iter (Store.append store) records;
  Store.close store;
  (match PD.load_harvested path with
  | Error e -> Alcotest.fail e
  | Ok got ->
      Alcotest.(check bool) "loads back in order" true (got = records));
  (* appending after close is a documented no-op, not a crash *)
  Store.append store (sample_harvested 99);
  Sys.remove path

let test_store_rotation () =
  let dir = Filename.temp_file "dpoaf-prefstore" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let path = Filename.concat dir "store.jsonl" in
  let max_bytes = 2048 in
  let store = Store.create ~max_bytes ~keep:3 ~ring_capacity:4 path in
  let total = 16 in
  List.iter (fun i -> Store.append store (sample_harvested i))
    (List.init total Fun.id);
  Store.close store;
  let generations =
    List.filter Sys.file_exists
      (path :: List.init 3 (fun i -> Printf.sprintf "%s.%d" path (i + 1)))
  in
  Alcotest.(check bool) "rotated at least once" true
    (List.length generations > 1);
  let seen = Hashtbl.create 32 in
  List.iter
    (fun file ->
      Alcotest.(check bool)
        (Filename.basename file ^ " within the size cap")
        true
        ((Unix.stat file).Unix.st_size <= max_bytes);
      match PD.load_harvested file with
      | Error e -> Alcotest.fail e
      | Ok hs ->
          List.iter
            (fun h ->
              Hashtbl.replace seen h.PD.h_task
                (1 + try Hashtbl.find seen h.PD.h_task with Not_found -> 0))
            hs)
    generations;
  List.iter
    (fun i ->
      let id = Printf.sprintf "task_%02d" i in
      Alcotest.(check int)
        (Printf.sprintf "record %s survives rotation exactly once" id)
        1
        (try Hashtbl.find seen id with Not_found -> 0))
    (List.init total Fun.id);
  List.iter Sys.remove generations;
  Sys.rmdir dir

let test_pair_ingestion () =
  (* a harvested record re-enters DPO training as an ordinary pair, with
     the caller's corpus doing the re-encoding *)
  let corpus = Pipeline.Corpus.build ~domain:driving () in
  let task = List.hd (Dom.tasks driving) in
  let setup = Pipeline.Corpus.setup corpus task in
  let h = sample_harvested 3 in
  let encode steps =
    List.concat_map (Dpoaf_lm.Vocab.encode corpus.Pipeline.Corpus.vocab) steps
  in
  let pair =
    PD.pair_of_harvested ~encode ~prompt:setup.Pipeline.Corpus.prompt
      ~grammar:setup.Pipeline.Corpus.grammar
      ~min_clauses:setup.Pipeline.Corpus.min_clauses
      ~max_clauses:setup.Pipeline.Corpus.max_clauses h
  in
  Alcotest.(check string) "task carries over" h.PD.h_task pair.PD.task_id;
  Alcotest.(check bool) "chosen re-encoded" true
    (pair.PD.chosen = encode h.PD.h_chosen_steps);
  Alcotest.(check bool) "rejected re-encoded" true
    (pair.PD.rejected = encode h.PD.h_rejected_steps);
  Alcotest.(check int) "chosen score" h.PD.h_chosen_score pair.PD.chosen_score;
  Alcotest.(check int) "rejected score" h.PD.h_rejected_score
    pair.PD.rejected_score;
  Alcotest.(check bool) "explanations carry over" true
    (pair.PD.rejected_explanations = h.PD.h_explanations);
  Alcotest.(check bool) "margin specs from provenance" true
    (PD.margin_specs pair = [ "phi_1" ])

let () =
  Alcotest.run "refine"
    [
      ( "loop",
        [
          Alcotest.test_case "clean short-circuit" `Quick
            test_clean_short_circuit;
          Alcotest.test_case "no-improvement rejected" `Quick
            test_no_improvement_rejected;
          Alcotest.test_case "repair accepted" `Quick test_repair_accepted;
          Alcotest.test_case "budget exhaustion" `Quick test_budget_exhaustion;
          Alcotest.test_case "derived seeds distinct" `Quick
            test_derive_seed_distinct;
          QCheck_alcotest.to_alcotest monotone_trajectory;
        ] );
      ( "repair-rate",
        [ Alcotest.test_case "every pack >= 80%" `Quick test_pack_repair_rate ]
      );
      ( "store",
        [
          Alcotest.test_case "harvested JSON round-trip" `Quick
            test_harvested_json_round_trip;
          Alcotest.test_case "store round-trip" `Quick test_store_round_trip;
          Alcotest.test_case "rotation preserves records" `Quick
            test_store_rotation;
          Alcotest.test_case "pair ingestion" `Quick test_pair_ingestion;
        ] );
    ]
