(** Synthetic-traffic client for the serving daemon.

    Replays a seeded mixture of [generate]/[verify]/[score_pair]/[refine]
    requests against a daemon socket at a target rate, {e open-loop}:
    request [i]
    is due at [start + i/rate] whether or not earlier responses have
    arrived, so an overloaded server shows up as rejects, expiries and
    latency growth rather than as silently reduced offered load.

    Latency percentiles come from the [loadgen.latency]
    {!Dpoaf_exec.Metrics} histogram — the report contains no ad-hoc
    timing. *)

type mix = {
  generate : float;
  verify : float;
  score_pair : float;
  refine : float;
}
(** Relative (unnormalised) weights of the four request kinds.  Synthetic
    [refine] requests carry a tight budget (2 rounds × 2 attempts) so one
    stays comparable to a handful of verifies. *)

val default_mix : mix
(** [{generate = 0.3; verify = 0.4; score_pair = 0.3; refine = 0.0}] —
    refine traffic is opt-in. *)

val mix_of_string : string -> (mix, string) result
(** Parse a command-line mix.  The named form
    ["generate=0.2,verify=0.4,refine=0.4"] weighs the listed classes
    (others 0); the legacy positional form ["0.3,0.4,0.3"] maps to
    generate, verify, score_pair.  Strict: an unknown class is an
    [Error] listing the valid ones. *)

type config = {
  socket : string;
  rate : float;  (** offered load, requests per second *)
  duration_s : float;  (** send window; [rate * duration_s] requests *)
  mix : mix;
  deadline_ms : float option;  (** attached to every request when set *)
  domain : string option;
      (** synthesize traffic from this pack's tasks and tag every request
          with it; [None] targets the server's default pack and leaves the
          wire field out *)
  seed : int;  (** drives the whole traffic stream deterministically *)
}

val default_config : config

type report = {
  sent : int;
  completed : int;  (** responses received (any status) *)
  ok : int;
  rejected : int;
  expired : int;
  errors : int;  (** [status="error"] responses *)
  protocol_errors : int;  (** unparseable response lines *)
  elapsed_s : float;
  achieved_rps : float;  (** completed responses per elapsed second *)
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
}

val run : config -> report
(** Connect, replay the traffic, wait (bounded) for stragglers, report.
    @raise Invalid_argument on a non-positive rate/duration or an all-zero
    mix.
    @raise Unix.Unix_error if the socket cannot be connected. *)

val print_report : report -> unit
(** One machine-parsable [loadgen: k=v ...] line on stdout — what
    [make serve-check] greps. *)

val report_json : report -> Dpoaf_util.Json.t
(** The report as JSON ([{"schema":"dpoaf-loadgen/1",...}]): every counter
    and percentile from the flat report plus [latency_s] — the full
    [loadgen.latency] histogram snapshot with per-bucket bounds and counts
    ({!Dpoaf_exec.Metrics.json_of_snapshot}), so offline analysis can
    recompute percentiles exactly.  What [dpoaf_cli loadgen --out]
    writes. *)
