(** Synthetic-traffic client for the serving daemon.

    Replays a seeded mixture of [generate]/[verify]/[score_pair]/[refine]
    requests against a daemon socket at a target rate, {e open-loop}:
    request [i]
    is due at [start + i/rate] whether or not earlier responses have
    arrived, so an overloaded server shows up as rejects, expiries and
    latency growth rather than as silently reduced offered load.

    Latency percentiles come from the [loadgen.latency]
    {!Dpoaf_exec.Metrics} histogram — the report contains no ad-hoc
    timing. *)

type mix = {
  generate : float;
  verify : float;
  score_pair : float;
  refine : float;
}
(** Relative (unnormalised) weights of the four request kinds.  Synthetic
    [refine] requests carry a tight budget (2 rounds × 2 attempts) so one
    stays comparable to a handful of verifies. *)

val default_mix : mix
(** [{generate = 0.3; verify = 0.4; score_pair = 0.3; refine = 0.0}] —
    refine traffic is opt-in. *)

val mix_of_string : string -> (mix, string) result
(** Parse a command-line mix.  The named form
    ["generate=0.2,verify=0.4,refine=0.4"] weighs the listed classes
    (others 0); the legacy positional form ["0.3,0.4,0.3"] maps to
    generate, verify, score_pair.  Strict: an unknown class is an
    [Error] listing the valid ones. *)

type config = {
  socket : string;
  tcp_port : int option;
      (** connect to 127.0.0.1:[port] (TCP_NODELAY) instead of the Unix
          socket — same protocol, same daemon *)
  rate : float;  (** offered load, requests per second *)
  duration_s : float;  (** send window; [rate * duration_s] requests *)
  mix : mix;
  deadline_ms : float option;  (** attached to every request when set *)
  domain : string option;
      (** synthesize traffic from this pack's tasks and tag every request
          with it; [None] targets the server's default pack and leaves the
          wire field out *)
  seed : int;  (** drives the whole traffic stream deterministically *)
}

val default_config : config

type report = {
  sent : int;
  completed : int;  (** responses received (any status) *)
  ok : int;
  rejected : int;
  expired : int;
  errors : int;  (** [status="error"] responses *)
  protocol_errors : int;  (** unparseable response lines *)
  elapsed_s : float;
  achieved_rps : float;  (** completed responses per elapsed second *)
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  latency : Dpoaf_exec.Metrics.hist_snapshot;
      (** this run's latency window: the difference of [loadgen.latency]
          snapshots taken around the run
          ({!Dpoaf_exec.Metrics.diff_snapshots}), so back-to-back runs —
          a sweep's levels — report their own percentiles rather than
          the process-lifetime mixture *)
}

val run : ?capture:(Protocol.response -> unit) -> config -> report
(** Connect, replay the traffic, wait (bounded) for stragglers, report.
    [capture] sees every decoded response as it arrives (on the calling
    domain) — what [loadgen --dump] uses for determinism comparisons.
    @raise Invalid_argument on a non-positive rate/duration or an all-zero
    mix.
    @raise Unix.Unix_error if the endpoint cannot be connected. *)

val print_report : report -> unit
(** One machine-parsable [loadgen: k=v ...] line on stdout — what
    [make serve-check] greps. *)

val report_json : report -> Dpoaf_util.Json.t
(** The report as JSON ([{"schema":"dpoaf-loadgen/1",...}]): every counter
    and percentile from the flat report plus [latency_s] — the run's
    latency-window snapshot with per-bucket bounds and counts
    ({!Dpoaf_exec.Metrics.json_of_snapshot}), so offline analysis can
    recompute percentiles exactly.  What [dpoaf_cli loadgen --out]
    writes. *)

(** {1 Saturation sweep}

    Closed-loop knee finding: step the offered rate from [start_rps] by
    [step_rps] up to [max_rps], measuring one open-loop run per level,
    and stop at the first level the server fails to sustain.  A level is
    {e sustained} when every request came back [ok] (no rejects,
    expiries, errors or losses) with p99 latency within the budget; the
    knee is the last sustained level. *)

type sweep = { start_rps : float; step_rps : float; max_rps : float }

val sweep_of_string : string -> (sweep, string) result
(** Parse the command-line form ["START:STEP:MAX"] (requests per second).
    Strict: all three bounds must parse, [START] and [STEP] positive,
    [MAX >= START]. *)

type level = {
  offered_rps : float;
  sustained : bool;
  level_report : report;  (** the level's own latency window *)
}

type sweep_report = {
  levels : level list;
      (** in offered-rate order; ends with the first unsustained level
          (or the last level if all sustained) *)
  p99_budget_ms : float;
  knee_offered_rps : float;  (** highest sustained offered rate; 0 if
      even the first level failed *)
  max_rps_at_p99 : float;
      (** achieved (completed) rps at the knee level — the serving-scale
          headline watched by [make perf-gate]; 0 if no level sustained *)
}

val run_sweep :
  ?progress:(level -> unit) ->
  config ->
  sweep:sweep ->
  p99_budget_ms:float ->
  sweep_report
(** Run the sweep; [config.rate] is ignored (each level sets its own).
    [progress] fires after each level completes.
    @raise Invalid_argument on a non-positive budget (and as {!run} for
    the per-level runs). *)

val print_level : level -> unit
val print_sweep_report : sweep_report -> unit

val sweep_report_json : sweep_report -> Dpoaf_util.Json.t
(** [{"schema":"dpoaf-loadgen/1","mode":"sweep",...}] with one row per
    level (every flat-report field plus [offered_rps]/[sustained]) and
    the knee summary — what [dpoaf_cli loadgen --sweep --out] writes. *)
