(** Bounded submission queue with explicit backpressure and dynamic
    batch extraction.

    Multi-producer, single-consumer.  {!try_push} never blocks: a full or
    closed queue answers [false] immediately, which the caller must
    surface as an explicit reject — overload is a protocol-visible
    condition here, never an unbounded buffer.  The single consumer pops
    {e dynamic batches}: a batch flushes at [max] items or after
    [flush_s] seconds from its first item, whichever comes first.

    The current depth is published as the {!Dpoaf_exec.Metrics} gauge
    named at creation, so queue pressure shows up in every metrics
    summary and trace. *)

type 'a t

val create : capacity:int -> gauge_name:string -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val try_push : 'a t -> 'a -> bool
(** [false] when the queue is full or closed (the item was not taken). *)

val pop_one : 'a t -> 'a option
(** Block until one item is available and pop it; [None] once the queue
    is closed {e and} empty.  Unlike {!pop_batch} this is multi-consumer
    safe — it is the primitive behind continuous batching, where each
    worker refills its own slot as soon as its previous request
    completes instead of waiting for a batch boundary. *)

val pop_batch : 'a t -> max:int -> flush_s:float -> 'a list option
(** Block until at least one item is available, then collect up to [max]
    items within a [flush_s]-second assembly window (closing the queue
    flushes immediately).  [None] once the queue is closed {e and} empty.
    Single consumer only.
    @raise Invalid_argument if [max < 1]. *)

val close : 'a t -> unit
(** Stop admitting; wake the consumer.  Already-queued items can still be
    popped. *)

val depth : 'a t -> int
