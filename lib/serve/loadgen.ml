(* Synthetic-traffic client for the serving daemon.

   Open-loop: request [i] is due at [start + i/rate] regardless of how
   fast responses come back, so a slow server accumulates in-flight
   requests instead of silently throttling the offered load — which is
   what makes admission rejects and deadline expiries observable.  One
   pipelined connection; reads and writes are nonblocking and interleaved
   with the send schedule.

   Latency is observed into the [loadgen.latency] histogram and the
   report's percentiles are read back from it — no ad-hoc timing math. *)

module Metrics = Dpoaf_exec.Metrics
module Rng = Dpoaf_util.Rng
module Domain = Dpoaf_domain.Domain

type mix = {
  generate : float;
  verify : float;
  score_pair : float;
  refine : float;
}

let default_mix =
  { generate = 0.3; verify = 0.4; score_pair = 0.3; refine = 0.0 }

(* Accepts the named form "generate=0.2,verify=0.4,refine=0.4" (classes
   not mentioned weigh 0) and the legacy positional form "0.3,0.4,0.3"
   (generate,verify,score_pair — refine 0).  Strict: an unknown class is
   an error naming the valid ones, never a silently dropped weight. *)
let mix_of_string s =
  let parts = String.split_on_char ',' (String.trim s) in
  let parse_float str = float_of_string_opt (String.trim str) in
  if List.for_all (fun p -> not (String.contains p '=')) parts then
    match List.map parse_float parts with
    | [ Some g; Some v; Some sp ] ->
        Ok { generate = g; verify = v; score_pair = sp; refine = 0.0 }
    | _ ->
        Error
          "positional mix must be three numbers: generate,verify,score_pair"
  else
    let rec go acc = function
      | [] -> Ok acc
      | p :: rest -> (
          match String.index_opt p '=' with
          | None ->
              Error (Printf.sprintf "mix entry %S must be class=weight" p)
          | Some i -> (
              let cls = String.trim (String.sub p 0 i) in
              let w = String.sub p (i + 1) (String.length p - i - 1) in
              match parse_float w with
              | None ->
                  Error
                    (Printf.sprintf "mix weight for %S must be a number" cls)
              | Some w -> (
                  match cls with
                  | "generate" -> go { acc with generate = w } rest
                  | "verify" -> go { acc with verify = w } rest
                  | "score_pair" -> go { acc with score_pair = w } rest
                  | "refine" -> go { acc with refine = w } rest
                  | other ->
                      Error
                        (Printf.sprintf
                           "unknown workload class %S (valid: generate, \
                            verify, score_pair, refine)"
                           other))))
    in
    go { generate = 0.0; verify = 0.0; score_pair = 0.0; refine = 0.0 } parts

type config = {
  socket : string;
  tcp_port : int option;
  rate : float;
  duration_s : float;
  mix : mix;
  deadline_ms : float option;
  domain : string option;
  seed : int;
}

let default_config =
  {
    socket = "/tmp/dpoaf.sock";
    tcp_port = None;
    rate = 200.0;
    duration_s = 2.0;
    mix = default_mix;
    deadline_ms = None;
    domain = None;
    seed = 0;
  }

type report = {
  sent : int;
  completed : int;
  ok : int;
  rejected : int;
  expired : int;
  errors : int;
  protocol_errors : int;
  elapsed_s : float;
  achieved_rps : float;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  latency : Metrics.hist_snapshot;
      (* this run's window of the process-global loadgen.latency
         histogram (snapshot difference), so back-to-back runs — a
         sweep's levels — report their own percentiles *)
}

let latency_h = Metrics.histogram "loadgen.latency"

(* ---------------- request synthesis ----------------

   Traffic is synthesized from one domain pack's tasks and candidate
   steps; [config.domain = None] targets the server's default pack and
   omits the wire field entirely (pre-domain traffic shape). *)

let random_task pack rng = Rng.choice_list rng (Domain.tasks pack)

let random_steps pack rng task =
  let pool = Rng.shuffle_list rng (Domain.candidate_steps pack task) in
  let n = 2 + Rng.int rng 3 in
  List.filteri (fun i _ -> i < n) pool

let random_scenario rng (task : Domain.task) =
  if Rng.bool rng 0.5 then Some task.Domain.scenario else None

let synth_kind pack rng mix ~domain =
  let pick =
    Rng.weighted rng
      [
        (`Generate, mix.generate);
        (`Verify, mix.verify);
        (`Score_pair, mix.score_pair);
        (`Refine, mix.refine);
      ]
  in
  let task = random_task pack rng in
  match pick with
  | `Generate ->
      Protocol.Generate
        {
          task = task.Domain.id;
          seed = Rng.int rng 1_000_000;
          temperature = 1.0;
          domain;
        }
  | `Verify ->
      Protocol.Verify
        {
          steps = random_steps pack rng task;
          scenario = random_scenario rng task;
          domain;
          explain = false;
        }
  | `Score_pair ->
      Protocol.Score_pair
        {
          steps_a = random_steps pack rng task;
          steps_b = random_steps pack rng task;
          scenario = random_scenario rng task;
          domain;
          explain = false;
        }
  | `Refine ->
      Protocol.Refine
        {
          task = task.Domain.id;
          steps = random_steps pack rng task;
          seed = Rng.int rng 1_000_000;
          scenario = random_scenario rng task;
          domain;
          explain = false;
          (* a tight budget keeps one refine comparable to a handful of
             verifies instead of letting it dominate its batch slot *)
          max_rounds = Some 2;
          attempts = Some 2;
        }

let synth_request pack rng config i =
  {
    Protocol.id = Printf.sprintf "r%06d" i;
    kind = synth_kind pack rng config.mix ~domain:config.domain;
    deadline_ms = config.deadline_ms;
  }

(* ---------------- the run loop ---------------- *)

let validate config =
  if config.rate <= 0.0 then invalid_arg "Loadgen.run: rate must be > 0";
  if config.duration_s <= 0.0 then
    invalid_arg "Loadgen.run: duration must be > 0";
  let { generate; verify; score_pair; refine } = config.mix in
  if generate < 0.0 || verify < 0.0 || score_pair < 0.0 || refine < 0.0
     || generate +. verify +. score_pair +. refine <= 0.0
  then invalid_arg "Loadgen.run: mix weights must be >= 0 and not all zero"

(* one pipelined connection on either transport; the NDJSON protocol is
   transport-agnostic, so the only TCP-specific concern is Nagle delay *)
let connect config =
  match config.tcp_port with
  | None ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX config.socket);
      fd
  | Some port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      (try Unix.setsockopt fd Unix.TCP_NODELAY true
       with Unix.Unix_error _ -> ());
      fd

let run ?capture config =
  validate config;
  let pack =
    Dpoaf_domain.find_exn
      (Option.value ~default:Dpoaf_domain.default config.domain)
  in
  let rng = Rng.create config.seed in
  let latency_before = Metrics.snapshot latency_h in
  let fd = connect config in
  Unix.set_nonblock fd;
  let total = max 1 (int_of_float (config.rate *. config.duration_s)) in
  let outstanding : (string, float) Hashtbl.t = Hashtbl.create 256 in
  let sent = ref 0 in
  let completed = ref 0 in
  let ok = ref 0 in
  let rejected = ref 0 in
  let expired = ref 0 in
  let errors = ref 0 in
  let protocol_errors = ref 0 in
  let outbuf = ref "" in
  let pending = ref "" in
  let eof = ref false in
  let flush_writes () =
    if !outbuf <> "" then begin
      let buf = !outbuf in
      match Unix.write_substring fd buf 0 (String.length buf) with
      | n -> outbuf := String.sub buf n (String.length buf - n)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
    end
  in
  let handle_response line =
    if String.trim line = "" then ()
    else
      match Protocol.response_of_string line with
      | Error _ -> incr protocol_errors
      | Ok resp ->
          incr completed;
          (match capture with Some f -> f resp | None -> ());
          (match Protocol.status_of_body resp.Protocol.rbody with
          | "ok" -> incr ok
          | "rejected" -> incr rejected
          | "expired" -> incr expired
          | _ -> incr errors);
          (match Hashtbl.find_opt outstanding resp.Protocol.rid with
          | Some t_sent ->
              Metrics.observe latency_h (Unix.gettimeofday () -. t_sent)
          | None -> ());
          Hashtbl.remove outstanding resp.Protocol.rid
  in
  let read_responses () =
    let chunk = Bytes.create 4096 in
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> eof := true
    | n ->
        let data = !pending ^ Bytes.sub_string chunk 0 n in
        let parts = String.split_on_char '\n' data in
        let rec consume = function
          | [] -> pending := ""
          | [ tail ] -> pending := tail
          | line :: rest ->
              handle_response line;
              consume rest
        in
        consume parts
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  let start = Unix.gettimeofday () in
  let grace = 10.0 in
  let hard_deadline = start +. config.duration_s +. grace in
  let done_ () =
    (!sent >= total && Hashtbl.length outstanding = 0 && !outbuf = "")
    || !eof
    || Unix.gettimeofday () > hard_deadline
  in
  while not (done_ ()) do
    let now = Unix.gettimeofday () in
    (* enqueue every request whose open-loop slot has arrived *)
    while !sent < total && now >= start +. (float_of_int !sent /. config.rate)
    do
      let req = synth_request pack rng config !sent in
      outbuf := !outbuf ^ Protocol.request_to_string req ^ "\n";
      Hashtbl.replace outstanding req.Protocol.id (Unix.gettimeofday ());
      incr sent
    done;
    flush_writes ();
    let next_send =
      if !sent < total then start +. (float_of_int !sent /. config.rate)
      else now +. 0.005
    in
    let wait = Float.min 0.005 (Float.max 0.0 (next_send -. now)) in
    (match Unix.select [ fd ] [] [] wait with
    | readable, _, _ -> if readable <> [] then read_responses ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
  done;
  let elapsed_s = Unix.gettimeofday () -. start in
  (try Unix.close fd with Unix.Unix_error _ -> ());
  let latency =
    Metrics.diff_snapshots (Metrics.snapshot latency_h) latency_before
  in
  {
    sent = !sent;
    completed = !completed;
    ok = !ok;
    rejected = !rejected;
    expired = !expired;
    errors = !errors;
    protocol_errors = !protocol_errors;
    elapsed_s;
    achieved_rps =
      (if elapsed_s > 0.0 then float_of_int !completed /. elapsed_s else 0.0);
    p50_ms = Metrics.snapshot_percentile latency 0.5 *. 1e3;
    p90_ms = Metrics.snapshot_percentile latency 0.9 *. 1e3;
    p99_ms = Metrics.snapshot_percentile latency 0.99 *. 1e3;
    latency;
  }

let print_report r =
  Printf.printf
    "loadgen: sent=%d completed=%d ok=%d rejected=%d expired=%d errors=%d \
     protocol_errors=%d elapsed_s=%.2f rps=%.1f p50_ms=%.3f p90_ms=%.3f \
     p99_ms=%.3f\n%!"
    r.sent r.completed r.ok r.rejected r.expired r.errors r.protocol_errors
    r.elapsed_s r.achieved_rps r.p50_ms r.p90_ms r.p99_ms

let report_fields r =
  let module Json = Dpoaf_util.Json in
  let n i = Json.num (float_of_int i) in
  [
    ("sent", n r.sent);
    ("completed", n r.completed);
    ("ok", n r.ok);
    ("rejected", n r.rejected);
    ("expired", n r.expired);
    ("errors", n r.errors);
    ("protocol_errors", n r.protocol_errors);
    ("elapsed_s", Json.num r.elapsed_s);
    ("achieved_rps", Json.num r.achieved_rps);
    ("p50_ms", Json.num r.p50_ms);
    ("p90_ms", Json.num r.p90_ms);
    ("p99_ms", Json.num r.p99_ms);
    (* the full latency distribution (seconds) with bucket bounds, so
       offline analysis can recompute any percentile exactly *)
    ("latency_s", Metrics.json_of_snapshot r.latency);
  ]

let report_json r =
  let module Json = Dpoaf_util.Json in
  Json.obj (("schema", Json.str "dpoaf-loadgen/1") :: report_fields r)

(* ---------------- saturation sweep ---------------- *)

type sweep = { start_rps : float; step_rps : float; max_rps : float }

let sweep_of_string s =
  match String.split_on_char ':' (String.trim s) with
  | [ a; b; c ] -> (
      match
        (float_of_string_opt a, float_of_string_opt b, float_of_string_opt c)
      with
      | Some start_rps, Some step_rps, Some max_rps
        when start_rps > 0.0 && step_rps > 0.0 && max_rps >= start_rps ->
          Ok { start_rps; step_rps; max_rps }
      | Some _, Some _, Some _ ->
          Error "sweep needs START > 0, STEP > 0 and MAX >= START"
      | _ -> Error "sweep bounds must be numbers")
  | _ -> Error "sweep must be START:STEP:MAX (requests per second)"

type level = { offered_rps : float; sustained : bool; level_report : report }

type sweep_report = {
  levels : level list;  (* in offered-rate order; stops after first failure *)
  p99_budget_ms : float;
  knee_offered_rps : float;  (* highest sustained offered rate; 0 if none *)
  max_rps_at_p99 : float;  (* achieved rps at the knee level; 0 if none *)
}

(* A level is sustained when the server kept up within the latency budget
   and shed nothing: every request answered [ok] and p99 under budget.
   The knee is the last sustained level; the sweep stops at the first
   failure (levels above it would only re-measure a saturated server). *)
let sustained_level ~p99_budget_ms r =
  r.completed = r.sent && r.rejected = 0 && r.expired = 0 && r.errors = 0
  && r.protocol_errors = 0
  && r.p99_ms <= p99_budget_ms

let run_sweep ?(progress = fun _ -> ()) config ~sweep ~p99_budget_ms =
  if p99_budget_ms <= 0.0 then
    invalid_arg "Loadgen.run_sweep: p99 budget must be > 0";
  let rec go acc rate =
    if rate > sweep.max_rps +. 1e-9 then List.rev acc
    else begin
      let r = run { config with rate } in
      let sustained = sustained_level ~p99_budget_ms r in
      let lvl = { offered_rps = rate; sustained; level_report = r } in
      progress lvl;
      if sustained then go (lvl :: acc) (rate +. sweep.step_rps)
      else List.rev (lvl :: acc)
    end
  in
  let levels = go [] sweep.start_rps in
  let knee =
    List.fold_left
      (fun acc lvl -> if lvl.sustained then Some lvl else acc)
      None levels
  in
  {
    levels;
    p99_budget_ms;
    knee_offered_rps =
      (match knee with Some l -> l.offered_rps | None -> 0.0);
    max_rps_at_p99 =
      (match knee with Some l -> l.level_report.achieved_rps | None -> 0.0);
  }

let print_level lvl =
  Printf.printf "sweep level: offered_rps=%.1f sustained=%b " lvl.offered_rps
    lvl.sustained;
  print_report lvl.level_report

let print_sweep_report s =
  Printf.printf
    "sweep: levels=%d p99_budget_ms=%g knee_offered_rps=%.1f \
     max_rps_at_p99=%.1f\n\
     %!"
    (List.length s.levels) s.p99_budget_ms s.knee_offered_rps s.max_rps_at_p99

let sweep_report_json s =
  let module Json = Dpoaf_util.Json in
  Json.obj
    [
      ("schema", Json.str "dpoaf-loadgen/1");
      ("mode", Json.str "sweep");
      ("p99_budget_ms", Json.num s.p99_budget_ms);
      ("knee_offered_rps", Json.num s.knee_offered_rps);
      ("max_rps_at_p99", Json.num s.max_rps_at_p99);
      ( "levels",
        Json.arr
          (List.map
             (fun lvl ->
               Json.obj
                 (("offered_rps", Json.num lvl.offered_rps)
                 :: ("sustained", Json.Bool lvl.sustained)
                 :: report_fields lvl.level_report))
             s.levels) );
    ]
