(** Wire protocol of the serving layer: line-delimited JSON.

    One request object per line in, one response object per line out (see
    [docs/serving.md] for the full schema).  Responses echo the request's
    [id], so clients may pipeline arbitrarily many requests per
    connection.  Decoding is strict — unknown kinds, missing fields and
    type mismatches produce an [Error] naming the offending field; the
    daemon answers such lines with a [status="error"] response rather than
    guessing. *)

type kind =
  | Generate of {
      task : string;
      seed : int;
      temperature : float;
      domain : string option;
    }
      (** Sample one grammar-constrained response for a task prompt;
          [seed] makes the sample deterministic. *)
  | Verify of {
      steps : string list;
      scenario : string option;
      domain : string option;
      explain : bool;
    }
      (** Compile the steps with GLM2FSA and model-check the rule book;
          [scenario] selects a single world model ([None] = universal).
          [explain] asks the server to attach natural-language
          counterexample explanations for each violated spec (encoded on
          the wire only when [true], so existing clients are
          unaffected). *)
  | Score_pair of {
      steps_a : string list;
      steps_b : string list;
      scenario : string option;
      domain : string option;
      explain : bool;
    }
      (** The automated-feedback oracle: verify both responses and emit a
          preference with its formal justification.  [explain] attaches
          counterexample explanations for the loser's margin
          violations. *)
  | Refine of {
      task : string;
      steps : string list;
      seed : int;
      scenario : string option;
      domain : string option;
      explain : bool;
      max_rounds : int option;
      attempts : int option;
    }
      (** Counterexample-guided repair ({!Dpoaf_refine.Refine}): verify
          the steps, feed each violated spec's explained lasso back into
          re-sampling, and iterate until clean or out of budget.  [seed]
          drives the per-round re-sampling deterministically.
          [max_rounds]/[attempts] override the server's default budget;
          on the wire they ride a single optional ["budget"] object,
          encoded only when at least one is set.  [explain] attaches each
          round's feedback sentences to the response trajectory. *)
  | Stats of { domain : string option }
      (** Ops plane: live metrics snapshot (counters, histogram summaries
          with exact bucket bounds, cache hit rates) plus GC/runtime
          gauges.  [domain] restricts the view to one served pack's
          per-domain twins; [None] returns everything.  Answered by the
          daemon ahead of the admission queue, so it responds even under
          full load. *)
  | Health of { domain : string option }
      (** Ops plane: queue depth, in-flight batches, drain state and
          per-domain request counters.  Also answered ahead of the
          admission queue. *)
(** Every execution kind carries an optional [domain] naming the pack that
    should execute it ([None] = the server's default pack).  Like
    [scenario], the field is encoded only when present, so single-domain
    traffic is byte-identical to the pre-domain protocol. *)

type request = {
  id : string;  (** client-chosen correlation id, echoed in the response *)
  kind : kind;
  deadline_ms : float option;
      (** drop the request unexecuted if it waits longer than this *)
}

type profile = {
  score : int;  (** [List.length satisfied] *)
  satisfied : string list;  (** spec names in rule-book order *)
  violated : string list;  (** complementary names, same order *)
  vacuous : string list;  (** subset of [satisfied] holding only vacuously *)
}

type explanation = {
  espec : string;  (** name of the violated spec *)
  etext : string;
      (** the {!Dpoaf_analysis.Explain} rendering of the counterexample
          lasso in response vocabulary *)
}
(** One counterexample explanation, as carried on the wire.  The field is
    optional in both directions: a response without explanations encodes
    byte-identically to the pre-explanation protocol. *)

type rround = {
  rr_index : int;  (** 1-based round number *)
  rr_violated : string list;
      (** the round's best candidate's violated specs *)
  rr_accepted : bool;
  rr_margin : int;  (** violated-spec count removed; positive iff accepted *)
  rr_feedback : explanation list option;
      (** the feedback sentences that conditioned the round's re-sampling;
          present only when the request set [explain] *)
}
(** One round of a repair trajectory, as carried on the wire. *)

type shard_health = {
  sh_shard : string;  (** shard name, e.g. ["shard0"] *)
  sh_queue_depth : int;  (** requests waiting in this shard's admission *)
  sh_in_flight : int;  (** batches/requests this shard is executing *)
  sh_requests : int;  (** admissions routed to this shard so far *)
  sh_draining : bool;
}
(** Per-shard liveness twin of the aggregate {!Health_report} fields.
    Reported by a sharded daemon so load imbalance and per-shard
    backpressure are visible; an unsharded daemon reports an empty list,
    which is {e not encoded} — its health line stays byte-identical to
    the pre-fleet wire format. *)

type body =
  | Generated of { steps : string list; tokens : int list; profile : profile }
  | Verified of {
      profile : profile;
      explanations : explanation list option;
          (** present only when the request set [explain]; [None] keeps
              the encoding byte-identical to the pre-explanation wire *)
    }
  | Compared of {
      preference : string;  (** ["a"], ["b"] or ["tie"] *)
      margin : int;  (** absolute score difference *)
      margin_specs : string list;
          (** specs the winner satisfies and the loser does not *)
      vacuous_margin : bool;
          (** margin non-empty but carried entirely by vacuous
              satisfactions *)
      profile_a : profile;
      profile_b : profile;
      explanations : explanation list option;
          (** when the request set [explain]: explanations for the
              loser's margin violations, i.e. exactly why it lost *)
    }
  | Refined of {
      rstatus : string;  (** ["clean"], ["improved"] or ["unchanged"] *)
      deadline_hit : bool;
          (** the per-round deadline truncated the loop; encoded on the
              wire only when [true] *)
      original_profile : profile;
      final_steps : string list;
      final_profile : profile;
      rounds : rround list;  (** the full trajectory, in round order *)
    }
      (** Answer to {!Refine}; serialized under a single ["refine"]
          member. *)
  | Stats_report of {
      metrics : (string * float) list;  (** the flat {!Dpoaf_exec.Metrics}
          summary, filtered to the requested domain when tagged *)
      histograms : (string * Dpoaf_exec.Metrics.hist_snapshot) list;
          (** full snapshots with bucket bounds — percentiles are exactly
              recomputable offline *)
      runtime : (string * float) list;
          (** {!Dpoaf_exec.Metrics.runtime_gauges} at answer time *)
    }  (** Answer to {!Stats}; serialized under a single ["stats"] member. *)
  | Health_report of {
      queue_depth : int;  (** summed across shards when sharded *)
      in_flight_batches : int;  (** summed across shards when sharded *)
      draining : bool;
      domains : (string * int) list;  (** per-domain request counters *)
      shards : shard_health list;
          (** per-shard breakdown; empty (and unencoded) when the daemon
              runs a single unsharded server *)
    }  (** Answer to {!Health}; serialized under a single ["health"]
          member. *)
  | Rejected of string  (** admission control refused the request *)
  | Expired  (** deadline passed while queued; never executed *)
  | Failed of string  (** the handler raised *)

type response = {
  rid : string;
  rbody : body;
  queue_wait_us : float;  (** submission to batch dequeue *)
  execute_us : float;  (** handler wall-clock; 0 for rejected/expired *)
}

val status_of_body : body -> string
(** ["ok"], ["rejected"], ["expired"] or ["error"]. *)

val verified : profile -> body
(** [Verified] with no explanations — the common case. *)

(** {1 Wire codec} — total inverses of each other on well-formed values. *)

val request_to_string : request -> string
val request_of_string : string -> (request, string) result
val response_to_string : response -> string
val response_of_string : string -> (response, string) result

val json_of_request : request -> Dpoaf_util.Json.t
val request_of_json : Dpoaf_util.Json.t -> (request, string) result
val json_of_response : response -> Dpoaf_util.Json.t
val response_of_json : Dpoaf_util.Json.t -> (response, string) result
