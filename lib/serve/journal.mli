(** Rotating JSONL event journal with a bounded in-memory ring.

    The daemon's ops plane records serving events — request spans,
    admission rejects, deadline expiries, batch coalesces, checkpoint
    loads, drains — as one JSON object per line:

    {v {"ts":<unix seconds>,"ev":"<event name>",...attributes} v}

    {!emit} is safe from any domain and never drops an event: it buffers
    into a ring and, if the ring is full, flushes synchronously.  The
    owning loop (the daemon's select loop) calls {!flush} once per turn so
    steady-state emission never touches the filesystem from worker
    domains.

    Files rotate by size: when a write would push the current file past
    [max_bytes], generations shift [path → path.1 → … → path.keep] and the
    oldest is dropped, bounding the footprint at about
    [(keep + 1) * max_bytes].  Each file stays within [max_bytes] unless a
    single line exceeds the cap on its own. *)

type t

val create : ?max_bytes:int -> ?keep:int -> ?ring_capacity:int -> string -> t
(** [create path] opens (or appends to) the journal at [path].
    [max_bytes] (default 1 MiB) caps each file; [keep] (default 3) is the
    number of rotated generations retained; [ring_capacity] (default 1024)
    bounds the in-memory ring.  Interns the [journal.events] and
    [journal.rotations] counters.
    @raise Invalid_argument if any parameter is < 1. *)

val emit : t -> string -> (string * Dpoaf_util.Json.t) list -> unit
(** [emit t ev attrs] records an event.  Timestamped now; attributes are
    appended after the ["ts"] and ["ev"] members.  No-op after {!close}. *)

val flush : t -> unit
(** Drain the ring to disk and flush the channel. *)

val close : t -> unit
(** Flush and close.  Subsequent {!emit}/{!flush} calls are no-ops. *)

val path : t -> string
(** The journal's current-generation file path. *)
