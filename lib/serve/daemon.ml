(* The serving daemon: line-delimited JSON over a Unix domain socket and,
   optionally, a TCP listener on the same protocol.

   One [Unix.select] event loop owns all sockets; request execution lives
   entirely in the {!Router}'s replica servers (dispatcher/worker + pool
   domains).  Completion callbacks run on worker domains, so each
   connection's outbox is a mutex-guarded queue the event loop flushes —
   and every enqueue writes one byte down a self-pipe whose read end sits
   in the select set, so a finished response wakes the loop immediately
   instead of waiting out a polling interval.  That wake-up is what lets
   the select timeout be adaptive: an idle daemon blocks for seconds
   (0.25 s when a journal/pref store needs periodic flushing, 5 s
   otherwise) rather than busy-polling at 200 Hz as the old fixed 5 ms
   timeout did.

   Shutdown is signal-driven: SIGINT/SIGTERM set a flag (and
   {!request_stop} also writes the wake byte, so a stop requested from
   another domain interrupts a long select), the loop stops accepting and
   reading, drains every shard (every admitted request still gets its
   response), flushes what the drain produced, and removes the socket
   file.

   The ops verbs ([stats], [health]) are answered synchronously from the
   event loop, ahead of every shard's admission queue: a daemon whose
   queues are full or whose workers are saturated still answers them on
   the next loop turn.  When a {!Journal} is attached, the loop flushes
   its ring once per turn so worker-domain emissions almost never touch
   the filesystem. *)

module Metrics = Dpoaf_exec.Metrics
module Json = Dpoaf_util.Json

type ops = {
  stats : domain:string option -> Protocol.body;
  health : domain:string option -> Protocol.body;
}

type stats = {
  connections : int;
  requests : int;
  responses : int;
  protocol_errors : int;
}

type client = {
  fd : Unix.file_descr;
  mutable pending : string;  (* partial line carried between reads *)
  outbox : string Queue.t;
  omutex : Mutex.t;
  mutable outbuf : string;  (* partially written wire bytes *)
  mutable alive : bool;
}

let protocol_errors_c = Dpoaf_exec.Metrics.counter "serve.protocol_errors"

(* ---------------- wake-up plumbing ---------------- *)

(* The self-pipe is process-global (created eagerly: [Lazy] is not safe to
   force from several domains at once) because its writers — completion
   callbacks on worker domains, [request_stop] from anywhere — have no
   handle on the running loop.  The byte content is meaningless; only the
   readability edge matters, and the pipe is drained every turn. *)
let wake_rd, wake_wr =
  let r, w = Unix.pipe () in
  Unix.set_nonblock r;
  Unix.set_nonblock w;
  (r, w)

let wake_byte = Bytes.make 1 'w'

let wake () =
  try ignore (Unix.write wake_wr wake_byte 0 1)
  with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      (* pipe already full: the loop is guaranteed awake *)
      ()
  | Unix.Unix_error _ -> ()

let drain_wake () =
  let chunk = Bytes.create 64 in
  let rec go () =
    match Unix.read wake_rd chunk 0 (Bytes.length chunk) with
    | n when n > 0 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let stop_requested = Atomic.make false

let request_stop () =
  Atomic.set stop_requested true;
  wake ()

let install_signal_handlers () =
  let handle =
    Sys.Signal_handle
      (fun _ ->
        Atomic.set stop_requested true;
        wake ())
  in
  (try Sys.set_signal Sys.sigint handle with Invalid_argument _ -> ());
  try Sys.set_signal Sys.sigterm handle with Invalid_argument _ -> ()

(* [push_out] runs on whichever domain completes the request; [responses]
   is therefore atomic while the other stats stay event-loop-private. *)
let responses_sent = Atomic.make 0

let push_out client line =
  Mutex.lock client.omutex;
  Queue.push (line ^ "\n") client.outbox;
  Mutex.unlock client.omutex;
  Atomic.incr responses_sent;
  wake ()

(* move queued lines into the flat write buffer; [true] if bytes remain *)
let refill_outbuf client =
  Mutex.lock client.omutex;
  if client.outbuf = "" && not (Queue.is_empty client.outbox) then begin
    let b = Buffer.create 256 in
    while not (Queue.is_empty client.outbox) do
      Buffer.add_string b (Queue.pop client.outbox)
    done;
    client.outbuf <- Buffer.contents b
  end;
  let remaining = client.outbuf <> "" in
  Mutex.unlock client.omutex;
  remaining

let flush_client client =
  if refill_outbuf client then begin
    let buf = client.outbuf in
    match Unix.write_substring client.fd buf 0 (String.length buf) with
    | n -> client.outbuf <- String.sub buf n (String.length buf - n)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) -> client.alive <- false
  end

let error_response msg =
  {
    Protocol.rid = "";
    rbody = Protocol.Failed msg;
    queue_wait_us = 0.0;
    execute_us = 0.0;
  }

let handle_line router ops journal client counters line =
  if String.trim line = "" then ()
  else begin
    let requests, protocol_errors = counters in
    incr requests;
    match Protocol.request_of_string line with
    | Error msg ->
        Metrics.incr protocol_errors_c;
        incr protocol_errors;
        (match journal with
        | Some j -> Journal.emit j "daemon.protocol_error" [ ("error", Json.str msg) ]
        | None -> ());
        push_out client (Protocol.response_to_string (error_response msg))
    | Ok req -> (
        match req.Protocol.kind with
        | Protocol.Stats { domain } | Protocol.Health { domain } ->
            (* answered synchronously ahead of admission: full queues or
               saturated shards never block the ops plane *)
            let body =
              match req.Protocol.kind with
              | Protocol.Stats _ -> ops.stats ~domain
              | _ -> ops.health ~domain
            in
            push_out client
              (Protocol.response_to_string
                 {
                   Protocol.rid = req.Protocol.id;
                   rbody = body;
                   queue_wait_us = 0.0;
                   execute_us = 0.0;
                 })
        | _ ->
            ignore
              (Router.submit_async router req ~on_done:(fun resp ->
                   push_out client (Protocol.response_to_string resp))))
  end

let handle_readable router ops journal client counters =
  let chunk = Bytes.create 4096 in
  match Unix.read client.fd chunk 0 (Bytes.length chunk) with
  | 0 -> client.alive <- false
  | n ->
      let data = client.pending ^ Bytes.sub_string chunk 0 n in
      let parts = String.split_on_char '\n' data in
      let rec consume = function
        | [] -> client.pending <- ""
        | [ tail ] -> client.pending <- tail
        | line :: rest ->
            handle_line router ops journal client counters line;
            consume rest
      in
      consume parts
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> client.alive <- false

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let select readfds writefds timeout =
  try
    let r, w, _ = Unix.select readfds writefds [] timeout in
    (r, w)
  with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])

(* A daemon embedded without a domain registry still answers the ops
   verbs from what it can see — the global metrics registry and the
   shards' queues — but refuses domain-tagged queries rather than
   silently ignoring the tag. *)
let default_ops router =
  let no_registry ~domain k =
    match domain with
    | Some d ->
        Protocol.Failed
          (Printf.sprintf
             "domain %S: this daemon has no domain registry; retry without \
              the domain tag"
             d)
    | None -> k ()
  in
  {
    stats =
      (fun ~domain ->
        no_registry ~domain (fun () ->
            Protocol.Stats_report
              {
                metrics = Metrics.summary ();
                histograms = Metrics.histogram_snapshots ();
                runtime = Metrics.runtime_gauges ();
              }));
    health =
      (fun ~domain ->
        no_registry ~domain (fun () ->
            let h = Router.health router in
            Protocol.Health_report
              {
                queue_depth = h.Server.queue_depth;
                in_flight_batches = h.Server.in_flight_batches;
                draining = h.Server.draining;
                domains = [];
                shards =
                  (if Router.shard_count router > 1 then
                     Router.shard_healths router
                   else []);
              }));
  }

let tcp_listener port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  let bound =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  (fd, bound)

let run ~socket ?tcp_port ?on_tcp_listen ~router ?ops ?journal ?pref_store () =
  let ops = match ops with Some o -> o | None -> default_ops router in
  install_signal_handlers ();
  Atomic.set stop_requested false;
  Atomic.set responses_sent 0;
  drain_wake ();
  if Sys.file_exists socket then Sys.remove socket;
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX socket);
  Unix.listen listener 64;
  Unix.set_nonblock listener;
  let tcp =
    match tcp_port with
    | None -> None
    | Some port ->
        let fd, bound = tcp_listener port in
        (match on_tcp_listen with Some f -> f bound | None -> ());
        Some (fd, bound)
  in
  let listeners =
    listener :: (match tcp with Some (fd, _) -> [ fd ] | None -> [])
  in
  let clients : client list ref = ref [] in
  let connections = ref 0 in
  let requests = ref 0 in
  let protocol_errors = ref 0 in
  let counters = (requests, protocol_errors) in
  (* with the self-pipe carrying completion and stop wake-ups, the select
     timeout only bounds the journal/pref-store flush cadence — so an
     idle daemon sleeps instead of spinning *)
  let idle_timeout =
    if journal <> None || pref_store <> None then 0.25 else 5.0
  in
  let accept_from lfd =
    match Unix.accept lfd with
    | fd, _ ->
        Unix.set_nonblock fd;
        incr connections;
        clients :=
          {
            fd;
            pending = "";
            outbox = Queue.create ();
            omutex = Mutex.create ();
            outbuf = "";
            alive = true;
          }
          :: !clients
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  let loop_turn () =
    let readfds = (wake_rd :: listeners) @ List.map (fun c -> c.fd) !clients in
    let writefds =
      List.filter_map
        (fun c -> if refill_outbuf c then Some c.fd else None)
        !clients
    in
    let readable, writable = select readfds writefds idle_timeout in
    if List.mem wake_rd readable then drain_wake ();
    List.iter
      (fun lfd -> if List.mem lfd readable then accept_from lfd)
      listeners;
    List.iter
      (fun c ->
        if c.alive && List.mem c.fd readable then
          handle_readable router ops journal c counters)
      !clients;
    List.iter
      (fun c -> if c.alive && List.mem c.fd writable then flush_client c)
      !clients;
    let dead, live = List.partition (fun c -> not c.alive) !clients in
    List.iter (fun c -> close_quietly c.fd) dead;
    clients := live;
    (* drain worker-domain journal emissions and harvested preference
       pairs once per turn *)
    (match journal with Some j -> Journal.flush j | None -> ());
    match pref_store with
    | Some s -> Dpoaf_refine.Pref_store.flush s
    | None -> ()
  in
  (match journal with
  | Some j ->
      let attrs =
        ("socket", Json.str socket)
        ::
        (match tcp with
        | Some (_, port) -> [ ("tcp_port", Json.num (float_of_int port)) ]
        | None -> [])
      in
      Journal.emit j "daemon.start" attrs;
      (* one serve.shard.up per replica, even for a single-shard daemon,
         so journal consumers see the fleet shape without a health call *)
      List.iteri
        (fun i (sh : Protocol.shard_health) ->
          let srv = Router.server router i in
          Journal.emit j "serve.shard.up"
            [
              ("shard", Json.str sh.Protocol.sh_shard);
              ( "batching",
                Json.str
                  (match Server.batching srv with
                  | `Flush -> "flush"
                  | `Continuous -> "continuous") );
              ( "jobs",
                Json.num (float_of_int (Server.config srv).Server.jobs) );
              ( "queue_capacity",
                Json.num
                  (float_of_int (Server.config srv).Server.queue_capacity) );
            ])
        (Router.shard_healths router)
  | None -> ());
  while not (Atomic.get stop_requested) do
    loop_turn ()
  done;
  (* graceful drain: stop reading, answer everything already admitted,
     flush the answers out, then tear the sockets down *)
  close_quietly listener;
  (match tcp with Some (fd, _) -> close_quietly fd | None -> ());
  Router.drain router;
  let flush_deadline = Unix.gettimeofday () +. 5.0 in
  let rec flush_all () =
    let with_output = List.filter (fun c -> c.alive && refill_outbuf c) !clients in
    if with_output <> [] && Unix.gettimeofday () < flush_deadline then begin
      let _, writable =
        select [] (List.map (fun c -> c.fd) with_output) 0.05
      in
      List.iter
        (fun c -> if List.mem c.fd writable then flush_client c)
        with_output;
      flush_all ()
    end
  in
  flush_all ();
  List.iter (fun c -> close_quietly c.fd) !clients;
  if Sys.file_exists socket then Sys.remove socket;
  (match pref_store with
  | Some s -> Dpoaf_refine.Pref_store.flush s
  | None -> ());
  (match journal with
  | Some j ->
      Journal.emit j "daemon.stop"
        [ ("responses", Json.num (float_of_int (Atomic.get responses_sent))) ];
      Journal.flush j
  | None -> ());
  {
    connections = !connections;
    requests = !requests;
    responses = Atomic.get responses_sent;
    protocol_errors = !protocol_errors;
  }
