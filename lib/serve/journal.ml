(* Bounded in-daemon event ring flushed to a rotating JSONL journal.

   Worker domains emit events (request spans, admission rejects, deadline
   expiries, batch coalesces, checkpoint loads, drains) into a ring buffer
   under a mutex; the daemon's select loop flushes the ring to disk once
   per turn, so the hot path never blocks on the filesystem.  If the ring
   fills between flushes, [emit] flushes synchronously instead of dropping
   — an ops journal that silently loses reject/expiry events under load is
   worse than none.

   Rotation is size-based: before a write that would push the current file
   past [max_bytes], the file is closed and the generations shift
   ([path] -> [path.1] -> ... -> [path.keep], the oldest falling off), so
   the journal's total footprint is bounded at roughly
   [(keep + 1) * max_bytes]. *)

module Json = Dpoaf_util.Json
module Metrics = Dpoaf_exec.Metrics

type config = { path : string; max_bytes : int; keep : int; ring_capacity : int }

type event = { ts : float; ev : string; attrs : (string * Json.t) list }

type t = {
  config : config;
  ring : event Queue.t;
  mutable oc : out_channel option;
  mutable size : int; (* bytes written to the current file *)
  mutable closed : bool;
  jmutex : Mutex.t;
}

let events_c = Metrics.counter "journal.events"
let rotations_c = Metrics.counter "journal.rotations"

let create ?(max_bytes = 1 lsl 20) ?(keep = 3) ?(ring_capacity = 1024) path =
  if max_bytes < 1 then invalid_arg "Journal.create: max_bytes must be >= 1";
  if keep < 1 then invalid_arg "Journal.create: keep must be >= 1";
  if ring_capacity < 1 then
    invalid_arg "Journal.create: ring_capacity must be >= 1";
  {
    config = { path; max_bytes; keep; ring_capacity };
    ring = Queue.create ();
    oc = None;
    size = 0;
    closed = false;
    jmutex = Mutex.create ();
  }

let path t = t.config.path

let line_of e =
  Json.to_string
    (Json.obj (("ts", Json.num e.ts) :: ("ev", Json.str e.ev) :: e.attrs))

let gen_path t i = if i = 0 then t.config.path else Printf.sprintf "%s.%d" t.config.path i

let close_current_locked t =
  match t.oc with
  | Some oc ->
      close_out_noerr oc;
      t.oc <- None;
      t.size <- 0
  | None -> ()

let rotate_locked t =
  close_current_locked t;
  for i = t.config.keep - 1 downto 0 do
    let src = gen_path t i in
    if Sys.file_exists src then Sys.rename src (gen_path t (i + 1))
  done;
  Metrics.incr rotations_c

let ensure_open_locked t =
  match t.oc with
  | Some oc -> oc
  | None ->
      let oc =
        open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 t.config.path
      in
      t.size <- (try out_channel_length oc with Sys_error _ -> 0);
      t.oc <- Some oc;
      oc

let write_locked t e =
  let line = line_of e in
  let len = String.length line + 1 in
  let oc =
    let oc = ensure_open_locked t in
    if t.size > 0 && t.size + len > t.config.max_bytes then begin
      rotate_locked t;
      ensure_open_locked t
    end
    else oc
  in
  output_string oc line;
  output_char oc '\n';
  t.size <- t.size + len

let flush_locked t =
  if not (Queue.is_empty t.ring) then begin
    Queue.iter (write_locked t) t.ring;
    Queue.clear t.ring;
    match t.oc with Some oc -> flush oc | None -> ()
  end

let with_lock t f =
  Mutex.lock t.jmutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.jmutex) f

let emit t ev attrs =
  with_lock t (fun () ->
      if not t.closed then begin
        Queue.push { ts = Unix.gettimeofday (); ev; attrs } t.ring;
        Metrics.incr events_c;
        if Queue.length t.ring >= t.config.ring_capacity then flush_locked t
      end)

let flush t = with_lock t (fun () -> if not t.closed then flush_locked t)

let close t =
  with_lock t (fun () ->
      if not t.closed then begin
        flush_locked t;
        close_current_locked t;
        t.closed <- true
      end)
