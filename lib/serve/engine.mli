(** Per-request execution of the serving API.

    [handle] maps one {!Protocol.request} to its {!Protocol.body} by
    reusing the batch pipeline's stages: [generate] samples a
    grammar-constrained response from the language model (seeded per
    request, so the reply is deterministic); [verify] compiles the steps
    with GLM2FSA and model-checks the domain's rule book (memoized
    through {!Dpoaf_exec.Cache}, vacuity-aware via the profile's
    [vacuous] set); [score_pair] verifies both sides and emits the
    paper's automated-feedback preference with its formal justification;
    [refine] runs the {!Dpoaf_refine.Refine} counterexample-guided repair
    loop, reusing the pack's prompt-state cache for the feedback-extended
    prompts and memoizing explanation rendering per (spec, lasso) in a
    [refine.explain.<domain>] cache.  When the engine was created with a
    [pref_store], every accepted repair round appends one
    (original, repaired) preference pair with full per-spec provenance;
    with a [journal], every round emits a [serve.refine_round] event.

    One engine can serve several domain packs at once; a request selects
    its pack via the protocol's optional [domain] field (default: the
    engine's first pack).  Each pack keeps its own corpus, sampling
    snapshot, prompt-state cache ([serve.prompt_state.<domain>]) and
    request counter ([serve.requests.<domain>]).

    Replies to the execution kinds depend only on request contents — never
    on batching, arrival order or worker count — which is what lets
    {!Server} parallelize freely while staying bit-deterministic.  The ops
    kinds ([stats], [health]) are exempt from that contract: they report
    live state by design.  Domain errors (unknown task, unknown scenario,
    unserved domain, missing model) come back as {!Protocol.Failed}
    bodies, not exceptions. *)

type t

val create :
  ?lm:Dpoaf_lm.Model.t ->
  ?journal:Journal.t ->
  ?pref_store:Dpoaf_refine.Pref_store.t ->
  ?tag:string ->
  ?prompt_cache_capacity:int ->
  corpus:Dpoaf_pipeline.Corpus.t ->
  unit ->
  t
(** Single-domain engine for the corpus's pack.  Captures a sampling
    snapshot of [lm] (omit it to serve verification only: [generate] and
    [refine] requests then fail gracefully) and pre-builds the shared
    lexicon and world models so pool workers never race on first-use
    initialization.  [journal] receives [serve.refine_round] events;
    [pref_store] receives one harvested pair per accepted repair.

    [tag] marks the engine as one replica of a sharded fleet: its
    prompt-state and explanation caches register under
    [serve.<tag>.prompt_state.<domain>] / [refine.<tag>.explain.<domain>]
    so each shard's hit rate is individually visible (two caches under
    one metric name would shadow each other), while the per-domain
    request counters keep the untagged shared cell so fleet totals need
    no aggregation.  [prompt_cache_capacity] (default 256) bounds each
    pack's prompt-state LRU — the per-replica analogue of a KV-cache
    budget: with prompt-affinity routing, a small capacity stays hot on a
    shard's slice of the task set where a single replica would thrash. *)

val create_multi :
  ?journal:Journal.t ->
  ?pref_store:Dpoaf_refine.Pref_store.t ->
  ?tag:string ->
  ?prompt_cache_capacity:int ->
  (Dpoaf_lm.Model.t option * Dpoaf_pipeline.Corpus.t) list ->
  t
(** Multi-domain engine; the first pack is the default for requests
    without a [domain] field.  [journal]/[pref_store] are shared across
    packs (records carry the domain name); [tag] and
    [prompt_cache_capacity] apply to every pack as in {!create}.
    @raise Invalid_argument on an empty list or duplicate domains. *)

val domains : t -> string list
(** Served domain names, default first. *)

val handle : t -> Protocol.request -> Protocol.body
(** Execute one request.  Safe to call concurrently from any domain. *)

(** {1 Ops plane} *)

val stats_body : t -> domain:string option -> Protocol.body
(** Live {!Protocol.Stats_report}: the {!Dpoaf_exec.Metrics} summary and
    full histogram snapshots (with bucket bounds), plus
    {!Dpoaf_exec.Metrics.runtime_gauges}.  A [domain] tag hides the other
    packs' per-domain twins ([serve.requests.<d>],
    [serve.prompt_state.<d>.*]) while keeping the shared serving metrics;
    an unserved domain yields {!Protocol.Failed} with the valid names. *)

val request_counts :
  t -> domain:string option -> ((string * int) list, string) result
(** Per-domain request counters ([serve.requests.<d>] values), optionally
    restricted to one domain.  [Error] names the valid domains when the
    requested one is not served. *)
