(** Per-request execution of the serving API.

    [handle] maps one {!Protocol.request} to its {!Protocol.body} by
    reusing the batch pipeline's stages: [generate] samples a
    grammar-constrained response from the language model (seeded per
    request, so the reply is deterministic); [verify] compiles the steps
    with GLM2FSA and model-checks the 15-rule book (memoized through
    {!Dpoaf_exec.Cache}, vacuity-aware via the profile's [vacuous] set);
    [score_pair] verifies both sides and emits the paper's
    automated-feedback preference with its formal justification.

    Replies depend only on request contents — never on batching, arrival
    order or worker count — which is what lets {!Server} parallelize
    freely while staying bit-deterministic.  Domain errors (unknown task,
    unknown scenario, missing model) come back as {!Protocol.Failed}
    bodies, not exceptions. *)

type t

val create : ?lm:Dpoaf_lm.Model.t -> corpus:Dpoaf_pipeline.Corpus.t -> unit -> t
(** Capture a sampling snapshot of [lm] (omit it to serve verification
    only: [generate] requests then fail gracefully) and pre-build the
    shared lexicon and world models so pool workers never race on
    first-use initialization. *)

val handle : t -> Protocol.request -> Protocol.body
(** Execute one request.  Safe to call concurrently from any domain. *)
