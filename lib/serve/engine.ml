(* Request execution: the DPO-AF loop's stages behind a per-request
   function.  [handle] is pure in the serving sense — the reply depends
   only on the request contents (generation is seeded per request, and
   verification is a deterministic model-checking run), which is what lets
   {!Server} batch requests in arrival order on any number of workers and
   still return bit-identical responses.

   One engine serves any number of domain packs: each request may name
   its domain (default: the engine's first/default pack), and every pack
   keeps its own corpus, sampling snapshot, prompt-state cache
   ([serve.prompt_state.<domain>]) and request counter
   ([serve.requests.<domain>]). *)

module Domain = Dpoaf_domain.Domain
module Corpus = Dpoaf_pipeline.Corpus
module Sampler = Dpoaf_lm.Sampler
module Vocab = Dpoaf_lm.Vocab
module Rng = Dpoaf_util.Rng
module Json = Dpoaf_util.Json
module Metrics = Dpoaf_exec.Metrics
module Refine = Dpoaf_refine.Refine
module Pref_store = Dpoaf_refine.Pref_store
module Pref_data = Dpoaf_dpo.Pref_data

type domain_state = {
  domain : Domain.t;
  corpus : Corpus.t;
  snapshot : Sampler.snapshot option;  (* None: generation unavailable *)
  prompt_states : (int list, Sampler.state) Dpoaf_exec.Cache.t;
      (* repeated-prompt batches skip the prompt fold: states are immutable
         and a deterministic function of the prompt (the snapshot is fixed
         for the server's lifetime), so cache hits cannot change replies *)
  refine_explain : Refine.explain_cache;
      (* (spec, lasso) -> rendered sentence; across refinement rounds the
         incumbent's lassos rarely change, so rendering is mostly hits *)
  requests : Metrics.counter;
}

type t = {
  states : (string * domain_state) list;
  default : string;
  journal : Journal.t option;  (* serve.refine_round events *)
  pref_store : Pref_store.t option;  (* harvested (original, repaired) pairs *)
}

let domain_state ?lm ?tag ?(prompt_cache_capacity = 256) corpus =
  let (module D : Domain.S) = corpus.Corpus.domain in
  (* Pre-build the shared read-only structures (lexicon, world models) on
     the calling domain so pool workers never race on first-use init. *)
  ignore (D.lexicon ());
  ignore (D.universal ());
  List.iter (fun sc -> ignore (D.model sc)) D.scenarios;
  (* a tagged (sharded) engine needs its own cache metric names — two
     caches registered under one name would shadow each other's hit/miss
     source — but the request counters deliberately share the untagged
     cell, so per-domain totals aggregate across shards for free *)
  let cache_name =
    match tag with
    | None -> Printf.sprintf "serve.prompt_state.%s" D.name
    | Some s -> Printf.sprintf "serve.%s.prompt_state.%s" s D.name
  in
  let explain_name =
    match tag with
    | None -> Printf.sprintf "refine.explain.%s" D.name
    | Some s -> Printf.sprintf "refine.%s.explain.%s" s D.name
  in
  {
    domain = corpus.Corpus.domain;
    corpus;
    snapshot = Option.map Sampler.snapshot lm;
    prompt_states =
      Dpoaf_exec.Cache.create ~capacity:prompt_cache_capacity ~name:cache_name
        ();
    refine_explain = Refine.explain_cache ~name:explain_name;
    requests = Metrics.counter (Printf.sprintf "serve.requests.%s" D.name);
  }

let create ?lm ?journal ?pref_store ?tag ?prompt_cache_capacity ~corpus () =
  let st = domain_state ?lm ?tag ?prompt_cache_capacity corpus in
  let name = Domain.name corpus.Corpus.domain in
  { states = [ (name, st) ]; default = name; journal; pref_store }

let create_multi ?journal ?pref_store ?tag ?prompt_cache_capacity packs =
  match packs with
  | [] -> invalid_arg "Engine.create_multi: no domains"
  | _ ->
      let states =
        List.map
          (fun (lm, corpus) ->
            ( Domain.name corpus.Corpus.domain,
              domain_state ?lm ?tag ?prompt_cache_capacity corpus ))
          packs
      in
      let names = List.map fst states in
      List.iteri
        (fun i n ->
          if List.exists (fun m -> m = n) (List.filteri (fun j _ -> j < i) names)
          then
            invalid_arg
              (Printf.sprintf "Engine.create_multi: duplicate domain %S" n))
        names;
      { states; default = fst (List.hd states); journal; pref_store }

let domains t = List.map fst t.states

let unserved t name =
  Printf.sprintf "domain %S not served (serving: %s)" name
    (String.concat ", " (List.map fst t.states))

let state_for t = function
  | None -> Ok (List.assoc t.default t.states)
  | Some name -> (
      match List.assoc_opt name t.states with
      | Some st -> Ok st
      | None -> Error (unserved t name))

(* ---------------- ops plane ---------------- *)

(* [k] names [d] as a dotted component: "serve.requests.driving" mentions
   "driving" and so does "serve.prompt_state.driving.hits", but
   "serve.drivingx" does not. *)
let mentions_component k d =
  let dot = "." ^ d in
  let ld = String.length dot and lk = String.length k in
  let rec scan i =
    if i + ld > lk then false
    else if String.sub k i ld = dot && (i + ld = lk || k.[i + ld] = '.') then
      true
    else scan (i + 1)
  in
  scan 0

let stats_body t ~domain : Protocol.body =
  match domain with
  | Some name when not (List.mem_assoc name t.states) ->
      Protocol.Failed (unserved t name)
  | _ ->
      (* a domain-tagged request hides the *other* packs' twins rather than
         keeping only keys that name the requested one, so the shared
         (untagged) serving metrics stay visible in every view *)
      let others =
        match domain with
        | None -> []
        | Some name -> List.filter (fun d -> d <> name) (List.map fst t.states)
      in
      let keep (k, _) = not (List.exists (mentions_component k) others) in
      Protocol.Stats_report
        {
          metrics = List.filter keep (Metrics.summary ());
          histograms = List.filter keep (Metrics.histogram_snapshots ());
          runtime = Metrics.runtime_gauges ();
        }

let request_counts t ~domain =
  match domain with
  | Some name when not (List.mem_assoc name t.states) -> Error (unserved t name)
  | _ ->
      Ok
        (List.filter_map
           (fun (name, st) ->
             match domain with
             | Some d when d <> name -> None
             | _ -> Some (name, Metrics.value st.requests))
           t.states)

let profile_of_steps st ~model steps : Protocol.profile =
  let (module D : Domain.S) = st.domain in
  let spec_names = Domain.spec_names st.domain in
  let p = D.profile_of_steps ~model steps in
  {
    Protocol.score = List.length p.Domain.satisfied;
    satisfied = p.Domain.satisfied;
    violated =
      List.filter (fun n -> not (List.mem n p.Domain.satisfied)) spec_names;
    vacuous = p.Domain.vacuous;
  }

(* validate the request itself before reporting server-side limitations,
   so a typo'd task id gets the precise error even on a verify-only
   server *)
let generate st ~task ~seed ~temperature : Protocol.body =
  let (module D : Domain.S) = st.domain in
  match Domain.find_task st.domain task with
  | None ->
      Protocol.Failed
        (Printf.sprintf "unknown task %S (valid: %s)" task
           (String.concat ", "
              (List.map (fun (tk : Domain.task) -> tk.Domain.id) D.tasks)))
  | Some tk -> (
      match st.snapshot with
      | None ->
          Protocol.Failed
            "generation unavailable: the server was started without a \
             language model (load a checkpoint or enable the built-in model)"
      | Some snapshot ->
          if temperature <= 0.0 then
            Protocol.Failed "temperature must be positive"
          else begin
            let setup = Corpus.setup st.corpus tk in
            let rng = Rng.create seed in
            let state =
              Dpoaf_exec.Cache.find_or_add st.prompt_states setup.Corpus.prompt
                (fun () ->
                  Sampler.prompt_state snapshot ~prompt:setup.Corpus.prompt)
            in
            let tokens =
              Sampler.sample_from snapshot rng ~state
                ~grammar:setup.Corpus.grammar
                ~min_clauses:setup.Corpus.min_clauses
                ~max_clauses:setup.Corpus.max_clauses ~temperature ()
            in
            let steps = Corpus.steps_of_tokens st.corpus tokens in
            let profile = profile_of_steps st ~model:(D.universal ()) steps in
            Protocol.Generated { steps; tokens; profile }
          end)

(* Explanations are a cold path (the explainer recompiles and re-checks
   the steps), so they are computed only on request and only for the
   named specs. *)
let explanations_for st ~model ~only steps : Protocol.explanation list =
  Domain.explain_steps st.domain ~model steps
  |> List.filter_map (fun (e : Dpoaf_analysis.Explain.t) ->
         if only = [] || List.mem e.Dpoaf_analysis.Explain.spec only then
           Some
             {
               Protocol.espec = e.Dpoaf_analysis.Explain.spec;
               etext = e.Dpoaf_analysis.Explain.text;
             }
         else None)

let verify st ~scenario ~explain steps : Protocol.body =
  match Domain.model_of_scenario st.domain scenario with
  | Error msg -> Protocol.Failed msg
  | Ok model ->
      let profile = profile_of_steps st ~model steps in
      let explanations =
        if explain then
          Some (explanations_for st ~model ~only:profile.Protocol.violated steps)
        else None
      in
      Protocol.Verified { profile; explanations }

let score_pair st ~scenario ~explain steps_a steps_b : Protocol.body =
  match Domain.model_of_scenario st.domain scenario with
  | Error msg -> Protocol.Failed msg
  | Ok model ->
      let profile_a = profile_of_steps st ~model steps_a in
      let profile_b = profile_of_steps st ~model steps_b in
      let winner, loser, preference =
        if profile_a.Protocol.score > profile_b.Protocol.score then
          (Some profile_a, Some profile_b, "a")
        else if profile_b.Protocol.score > profile_a.Protocol.score then
          (Some profile_b, Some profile_a, "b")
        else (None, None, "tie")
      in
      let margin_specs =
        match (winner, loser) with
        | Some w, Some l ->
            List.filter
              (fun n -> not (List.mem n l.Protocol.satisfied))
              w.Protocol.satisfied
        | _ -> []
      in
      let vacuous_margin =
        match winner with
        | Some w ->
            margin_specs <> []
            && List.for_all
                 (fun n -> List.mem n w.Protocol.vacuous)
                 margin_specs
        | None -> false
      in
      let explanations =
        (* explain why the loser lost: its counterexamples for exactly
           the margin specs *)
        match (explain, loser) with
        | true, Some l ->
            let loser_steps =
              if l == profile_a then steps_a else steps_b
            in
            Some
              (explanations_for st ~model ~only:margin_specs loser_steps)
        | _ -> None
      in
      Protocol.Compared
        {
          preference;
          margin =
            abs (profile_a.Protocol.score - profile_b.Protocol.score);
          margin_specs;
          vacuous_margin;
          profile_a;
          profile_b;
          explanations;
        }

(* ---------------- counterexample-guided repair ---------------- *)

let refine_rounds_c = Metrics.counter "serve.refine.rounds"
let refine_accepted_c = Metrics.counter "serve.refine.accepted"

let wire_profile (p : Refine.profile) : Protocol.profile =
  {
    Protocol.score = List.length p.Refine.satisfied;
    satisfied = p.Refine.satisfied;
    violated = p.Refine.violated;
    vacuous = p.Refine.vacuous;
  }

let refine t st ~id ~task ~steps ~seed ~scenario ~explain ~max_rounds ~attempts
    : Protocol.body =
  let (module D : Domain.S) = st.domain in
  match Domain.find_task st.domain task with
  | None ->
      Protocol.Failed
        (Printf.sprintf "unknown task %S (valid: %s)" task
           (String.concat ", "
              (List.map (fun (tk : Domain.task) -> tk.Domain.id) D.tasks)))
  | Some tk -> (
      match st.snapshot with
      | None ->
          Protocol.Failed
            "refinement unavailable: the server was started without a \
             language model (load a checkpoint or enable the built-in model)"
      | Some snapshot -> (
          match Domain.model_of_scenario st.domain scenario with
          | Error msg -> Protocol.Failed msg
          | Ok model ->
              let setup = Corpus.setup st.corpus tk in
              let vocab = st.corpus.Corpus.vocab in
              let sample =
                Refine.conditioned_sampler ~snapshot
                  ~encode:(Vocab.encode vocab)
                  ~decode:(Corpus.steps_of_tokens st.corpus)
                  ~prompt:setup.Corpus.prompt ~grammar:setup.Corpus.grammar
                  ~min_clauses:setup.Corpus.min_clauses
                  ~max_clauses:setup.Corpus.max_clauses
                  ~prompt_cache:st.prompt_states ~sep:(Vocab.sep vocab) ~seed
                  ()
              in
              let refiner =
                Refine.create ~domain:st.domain ~model
                  ~cache:st.refine_explain ~sample ()
              in
              let budget =
                {
                  Refine.max_rounds =
                    Option.value
                      ~default:Refine.default_budget.Refine.max_rounds
                      max_rounds;
                  attempts =
                    Option.value ~default:Refine.default_budget.Refine.attempts
                      attempts;
                  round_deadline_ms = None;
                }
              in
              let outcome = Refine.run ~budget refiner steps in
              List.iter
                (fun (r : Refine.round) ->
                  Metrics.incr refine_rounds_c;
                  if r.Refine.accepted then Metrics.incr refine_accepted_c;
                  match t.journal with
                  | None -> ()
                  | Some j ->
                      Journal.emit j "serve.refine_round"
                        [
                          ("id", Json.str id);
                          ("domain", Json.str D.name);
                          ("round", Json.num (float_of_int r.Refine.index));
                          ( "violated",
                            Json.num
                              (float_of_int
                                 (List.length
                                    r.Refine.candidate_profile.Refine.violated))
                          );
                          ("accepted", Json.Bool r.Refine.accepted);
                          ("round_ms", Json.num r.Refine.round_ms);
                        ])
                outcome.Refine.rounds;
              (* every accepted repair becomes one (original, repaired)
                 training pair with full per-spec provenance *)
              (match t.pref_store with
              | None -> ()
              | Some store ->
                  List.iter
                    (fun (r : Refine.round) ->
                      if r.Refine.accepted then
                        Pref_store.append store
                          {
                            Pref_data.h_task = task;
                            h_domain = D.name;
                            h_round = r.Refine.index;
                            h_seed = seed;
                            h_chosen_steps = r.Refine.candidate;
                            h_rejected_steps = steps;
                            h_chosen_score =
                              List.length
                                r.Refine.candidate_profile.Refine.satisfied;
                            h_rejected_score =
                              List.length
                                outcome.Refine.original_profile.Refine.satisfied;
                            h_chosen_satisfied =
                              r.Refine.candidate_profile.Refine.satisfied;
                            h_rejected_satisfied =
                              outcome.Refine.original_profile.Refine.satisfied;
                            h_chosen_vacuous =
                              r.Refine.candidate_profile.Refine.vacuous;
                            h_explanations = r.Refine.feedback;
                          })
                    outcome.Refine.rounds);
              let rounds =
                List.map
                  (fun (r : Refine.round) ->
                    {
                      Protocol.rr_index = r.Refine.index;
                      rr_violated =
                        r.Refine.candidate_profile.Refine.violated;
                      rr_accepted = r.Refine.accepted;
                      rr_margin = r.Refine.margin;
                      rr_feedback =
                        (if explain then
                           Some
                             (List.map
                                (fun (spec, text) ->
                                  { Protocol.espec = spec; etext = text })
                                r.Refine.feedback)
                         else None);
                    })
                  outcome.Refine.rounds
              in
              Protocol.Refined
                {
                  rstatus = Refine.status_name outcome.Refine.status;
                  deadline_hit = outcome.Refine.deadline_hit;
                  original_profile =
                    wire_profile outcome.Refine.original_profile;
                  final_steps = outcome.Refine.final;
                  final_profile = wire_profile outcome.Refine.final_profile;
                  rounds;
                }))

let handle t (req : Protocol.request) : Protocol.body =
  let dispatch domain run =
    match state_for t domain with
    | Error msg -> Protocol.Failed msg
    | Ok st ->
        Metrics.incr st.requests;
        run st
  in
  match req.Protocol.kind with
  | Protocol.Generate { task; seed; temperature; domain } ->
      dispatch domain (fun st -> generate st ~task ~seed ~temperature)
  | Protocol.Verify { steps; scenario; domain; explain } ->
      dispatch domain (fun st -> verify st ~scenario ~explain steps)
  | Protocol.Score_pair { steps_a; steps_b; scenario; domain; explain } ->
      dispatch domain (fun st ->
          score_pair st ~scenario ~explain steps_a steps_b)
  | Protocol.Refine
      { task; steps; seed; scenario; domain; explain; max_rounds; attempts } ->
      dispatch domain (fun st ->
          refine t st ~id:req.Protocol.id ~task ~steps ~seed ~scenario ~explain
            ~max_rounds ~attempts)
  | Protocol.Stats { domain } -> stats_body t ~domain
  | Protocol.Health { domain } -> (
      (* queue visibility belongs to the daemon, which answers [health]
         ahead of admission; an engine reached directly still reports what
         it owns — the per-domain request counters *)
      match request_counts t ~domain with
      | Error msg -> Protocol.Failed msg
      | Ok domains ->
          Protocol.Health_report
            {
              queue_depth = 0;
              in_flight_batches = 0;
              draining = false;
              domains;
              shards = [];
            })
