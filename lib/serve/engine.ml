(* Request execution: the DPO-AF loop's stages behind a per-request
   function.  [handle] is pure in the serving sense — the reply depends
   only on the request contents (generation is seeded per request, and
   verification is a deterministic model-checking run), which is what lets
   {!Server} batch requests in arrival order on any number of workers and
   still return bit-identical responses. *)

module Models = Dpoaf_driving.Models
module Tasks = Dpoaf_driving.Tasks
module Evaluate = Dpoaf_driving.Evaluate
module Specs = Dpoaf_driving.Specs
module Corpus = Dpoaf_pipeline.Corpus
module Sampler = Dpoaf_lm.Sampler
module Rng = Dpoaf_util.Rng

type t = {
  corpus : Corpus.t;
  snapshot : Sampler.snapshot option;  (* None: generation unavailable *)
  prompt_states : (int list, Sampler.state) Dpoaf_exec.Cache.t;
      (* repeated-prompt batches skip the prompt fold: states are immutable
         and a deterministic function of the prompt (the snapshot is fixed
         for the server's lifetime), so cache hits cannot change replies *)
}

let spec_names = List.map fst Specs.all

let scenario_names =
  List.map Models.scenario_name Models.all_scenarios @ [ "universal" ]

let create ?lm ~corpus () =
  (* Pre-build the shared read-only structures (lexicon, world models) on
     the calling domain so pool workers never race on first-use init. *)
  ignore (Evaluate.lexicon ());
  ignore (Models.universal ());
  List.iter (fun sc -> ignore (Models.model sc)) Models.all_scenarios;
  {
    corpus;
    snapshot = Option.map Sampler.snapshot lm;
    prompt_states =
      Dpoaf_exec.Cache.create ~capacity:256 ~name:"serve.prompt_state" ();
  }

let model_of_scenario = function
  | None -> Ok (Models.universal ())
  | Some "universal" -> Ok (Models.universal ())
  | Some name -> (
      match Models.scenario_of_name name with
      | Some sc -> Ok (Models.model sc)
      | None ->
          Error
            (Printf.sprintf "unknown scenario %S (valid: %s)" name
               (String.concat ", " scenario_names)))

let profile_of_steps ~model steps : Protocol.profile =
  let p = Evaluate.profile_of_steps ~model steps in
  {
    Protocol.score = List.length p.Evaluate.satisfied;
    satisfied = p.Evaluate.satisfied;
    violated =
      List.filter (fun n -> not (List.mem n p.Evaluate.satisfied)) spec_names;
    vacuous = p.Evaluate.vacuous;
  }

(* validate the request itself before reporting server-side limitations,
   so a typo'd task id gets the precise error even on a verify-only
   server *)
let generate t ~task ~seed ~temperature : Protocol.body =
  match List.find_opt (fun tk -> tk.Tasks.id = task) Tasks.all with
  | None ->
      Protocol.Failed
        (Printf.sprintf "unknown task %S (valid: %s)" task
           (String.concat ", " (List.map (fun tk -> tk.Tasks.id) Tasks.all)))
  | Some tk -> (
      match t.snapshot with
      | None ->
          Protocol.Failed
            "generation unavailable: the server was started without a \
             language model (load a checkpoint or enable the built-in model)"
      | Some snapshot ->
          if temperature <= 0.0 then
            Protocol.Failed "temperature must be positive"
          else begin
            let setup = Corpus.setup t.corpus tk in
            let rng = Rng.create seed in
            let state =
              Dpoaf_exec.Cache.find_or_add t.prompt_states setup.Corpus.prompt
                (fun () ->
                  Sampler.prompt_state snapshot ~prompt:setup.Corpus.prompt)
            in
            let tokens =
              Sampler.sample_from snapshot rng ~state
                ~grammar:setup.Corpus.grammar
                ~min_clauses:setup.Corpus.min_clauses
                ~max_clauses:setup.Corpus.max_clauses ~temperature ()
            in
            let steps = Corpus.steps_of_tokens t.corpus tokens in
            let profile =
              profile_of_steps ~model:(Models.universal ()) steps
            in
            Protocol.Generated { steps; tokens; profile }
          end)

let verify ~scenario steps : Protocol.body =
  match model_of_scenario scenario with
  | Error msg -> Protocol.Failed msg
  | Ok model -> Protocol.Verified (profile_of_steps ~model steps)

let score_pair ~scenario steps_a steps_b : Protocol.body =
  match model_of_scenario scenario with
  | Error msg -> Protocol.Failed msg
  | Ok model ->
      let profile_a = profile_of_steps ~model steps_a in
      let profile_b = profile_of_steps ~model steps_b in
      let winner, loser, preference =
        if profile_a.Protocol.score > profile_b.Protocol.score then
          (Some profile_a, Some profile_b, "a")
        else if profile_b.Protocol.score > profile_a.Protocol.score then
          (Some profile_b, Some profile_a, "b")
        else (None, None, "tie")
      in
      let margin_specs =
        match (winner, loser) with
        | Some w, Some l ->
            List.filter
              (fun n -> not (List.mem n l.Protocol.satisfied))
              w.Protocol.satisfied
        | _ -> []
      in
      let vacuous_margin =
        match winner with
        | Some w ->
            margin_specs <> []
            && List.for_all
                 (fun n -> List.mem n w.Protocol.vacuous)
                 margin_specs
        | None -> false
      in
      Protocol.Compared
        {
          preference;
          margin =
            abs (profile_a.Protocol.score - profile_b.Protocol.score);
          margin_specs;
          vacuous_margin;
          profile_a;
          profile_b;
        }

let handle t (req : Protocol.request) : Protocol.body =
  match req.Protocol.kind with
  | Protocol.Generate { task; seed; temperature } ->
      generate t ~task ~seed ~temperature
  | Protocol.Verify { steps; scenario } -> verify ~scenario steps
  | Protocol.Score_pair { steps_a; steps_b; scenario } ->
      score_pair ~scenario steps_a steps_b
