(* The request scheduler: admission -> dynamic batch -> pool execution.

   A dedicated dispatcher domain pops batches from the bounded
   {!Admission} queue (size- or time-flushed) and runs each batch on a
   {!Dpoaf_exec.Pool}, where the dispatcher itself participates as one
   execution slot.  Per-request deadlines are checked at dequeue: an
   expired request is answered [Expired] and never executed, so a backed-up
   queue sheds load instead of burning workers on answers nobody is
   waiting for.  [drain] closes admission, lets the dispatcher finish
   everything already queued, and joins it — in-flight requests always
   complete.

   Every phase is instrumented through {!Dpoaf_exec.Metrics} (counters,
   latency histograms, the queue-depth gauge) and, when tracing is on,
   each request becomes a [serve.request] span with [serve.queue_wait],
   [serve.batch_assembly] and [serve.execute] children — recorded
   retroactively via {!Dpoaf_exec.Trace.record_span} because the phases
   straddle domains. *)

module Metrics = Dpoaf_exec.Metrics
module Pool = Dpoaf_exec.Pool
module Trace = Dpoaf_exec.Trace
module Json = Dpoaf_util.Json

type config = {
  jobs : int;
  max_batch : int;
  flush_ms : float;
  queue_capacity : int;
}

let default_config =
  { jobs = 1; max_batch = 32; flush_ms = 5.0; queue_capacity = 256 }

type batching = [ `Flush | `Continuous ]

type ticket = {
  req : Protocol.request;
  submitted : float;
  deadline : float option;  (* absolute, seconds *)
  parent_span : int;
  on_done : (Protocol.response -> unit) option;
  mutable response : Protocol.response option;
  tmutex : Mutex.t;
  tcond : Condition.t;
}

type t = {
  config : config;
  batching : batching;
  label : string option;
  handler : Protocol.request -> Protocol.body;
  queue : ticket Admission.t;
  pool : Pool.t option;  (* [`Flush] only; [`Continuous] workers are domains *)
  mutable workers : unit Domain.t list;
  state_mutex : Mutex.t;
  mutable draining : bool;
  journal : Journal.t option;
  in_flight : int Atomic.t;  (* batches ([`Flush]) or requests executing *)
  admitted : int Atomic.t;  (* instance-local: the shared serve.accepted
                               counter sums every shard *)
  in_flight_g : Metrics.gauge;
  requests_c : Metrics.counter option;  (* per-shard twin, labelled only *)
}

(* ---------------- instrumentation ---------------- *)

let accepted_c = Metrics.counter "serve.accepted"
let rejected_c = Metrics.counter "serve.rejected"
let expired_c = Metrics.counter "serve.expired"
let completed_c = Metrics.counter "serve.completed"
let errors_c = Metrics.counter "serve.errors"
let batches_c = Metrics.counter "serve.batches"
let queue_wait_h = Metrics.histogram "serve.queue_wait"
let execute_h = Metrics.histogram "serve.execute"
let latency_h = Metrics.histogram "serve.latency"
let batch_size_h = Metrics.histogram "serve.batch_size"

let kind_name = function
  | Protocol.Generate _ -> "generate"
  | Protocol.Verify _ -> "verify"
  | Protocol.Score_pair _ -> "score_pair"
  | Protocol.Refine _ -> "refine"
  | Protocol.Stats _ -> "stats"
  | Protocol.Health _ -> "health"

let journal_event journal ev attrs =
  match journal with None -> () | Some j -> Journal.emit j ev attrs

(* labelled (sharded) servers stamp every journal event with their shard
   name so a merged journal can be split back out per replica *)
let shard_attrs label attrs =
  match label with
  | None -> attrs
  | Some l -> ("shard", Dpoaf_util.Json.str l) :: attrs

(* ---------------- ticket completion ---------------- *)

let complete ticket response =
  Mutex.lock ticket.tmutex;
  ticket.response <- Some response;
  Condition.broadcast ticket.tcond;
  Mutex.unlock ticket.tmutex;
  match ticket.on_done with None -> () | Some f -> f response

let record_request_spans ticket ~t_dequeue ~t_exec_start ~t_end body =
  if Trace.enabled () then begin
    let attrs =
      [
        ("req", ticket.req.Protocol.id);
        ("kind", kind_name ticket.req.Protocol.kind);
        ("status", Protocol.status_of_body body);
      ]
    in
    let rid =
      Trace.record_span ~cat:"serve" ~attrs ~parent:ticket.parent_span
        "serve.request" ~t0:ticket.submitted ~t1:t_end
    in
    ignore
      (Trace.record_span ~cat:"serve" ~parent:rid "serve.queue_wait"
         ~t0:ticket.submitted ~t1:t_dequeue);
    if t_exec_start > t_dequeue then
      ignore
        (Trace.record_span ~cat:"serve" ~parent:rid "serve.batch_assembly"
           ~t0:t_dequeue ~t1:t_exec_start);
    if t_end > t_exec_start then
      ignore
        (Trace.record_span ~cat:"serve" ~parent:rid "serve.execute"
           ~t0:t_exec_start ~t1:t_end)
  end

let finish ticket ~t_dequeue ~t_exec_start ~t_end body =
  record_request_spans ticket ~t_dequeue ~t_exec_start ~t_end body;
  complete ticket
    {
      Protocol.rid = ticket.req.Protocol.id;
      rbody = body;
      queue_wait_us = (t_dequeue -. ticket.submitted) *. 1e6;
      execute_us = (t_end -. t_exec_start) *. 1e6;
    }

(* ---------------- dispatch ---------------- *)

let expired_at ~t_dequeue ticket =
  match ticket.deadline with Some d -> t_dequeue > d | None -> false

let expire_ticket t ~t_dequeue ticket =
  Metrics.incr expired_c;
  journal_event t.journal "serve.expire"
    (shard_attrs t.label
       [
         ("id", Json.str ticket.req.Protocol.id);
         ("waited_ms", Json.num ((t_dequeue -. ticket.submitted) *. 1e3));
       ]);
  finish ticket ~t_dequeue ~t_exec_start:t_dequeue ~t_end:t_dequeue
    Protocol.Expired

let execute_ticket t ~t_dequeue ticket =
  let t_exec_start = Unix.gettimeofday () in
  let body =
    try t.handler ticket.req with e -> Protocol.Failed (Printexc.to_string e)
  in
  let t_end = Unix.gettimeofday () in
  Metrics.observe execute_h (t_end -. t_exec_start);
  Metrics.observe latency_h (t_end -. ticket.submitted);
  Metrics.incr completed_c;
  (match body with Protocol.Failed _ -> Metrics.incr errors_c | _ -> ());
  journal_event t.journal "serve.request"
    (shard_attrs t.label
       [
         ("id", Json.str ticket.req.Protocol.id);
         ("kind", Json.str (kind_name ticket.req.Protocol.kind));
         ("status", Json.str (Protocol.status_of_body body));
         ("queue_wait_us", Json.num ((t_dequeue -. ticket.submitted) *. 1e6));
         ("execute_us", Json.num ((t_end -. t_exec_start) *. 1e6));
       ]);
  finish ticket ~t_dequeue ~t_exec_start ~t_end body

let set_in_flight t = Metrics.set_gauge t.in_flight_g (float_of_int (Atomic.get t.in_flight))

let run_batch t pool tickets =
  let t_dequeue = Unix.gettimeofday () in
  Atomic.incr t.in_flight;
  set_in_flight t;
  Fun.protect
    ~finally:(fun () ->
      Atomic.decr t.in_flight;
      set_in_flight t)
  @@ fun () ->
  Metrics.incr batches_c;
  Metrics.observe batch_size_h (float_of_int (List.length tickets));
  List.iter
    (fun ticket -> Metrics.observe queue_wait_h (t_dequeue -. ticket.submitted))
    tickets;
  (* deadline gate: expired requests are answered, counted and dropped
     before any execution slot is spent on them *)
  let expired, alive = List.partition (expired_at ~t_dequeue) tickets in
  journal_event t.journal "serve.batch"
    (shard_attrs t.label
       [
         ("size", Json.num (float_of_int (List.length tickets)));
         ("expired", Json.num (float_of_int (List.length expired)));
       ]);
  List.iter (expire_ticket t ~t_dequeue) expired;
  ignore (Pool.map_on_pool pool (execute_ticket t ~t_dequeue) alive)

let rec dispatch_loop t pool =
  match
    Admission.pop_batch t.queue ~max:t.config.max_batch
      ~flush_s:(t.config.flush_ms /. 1000.0)
  with
  | None -> ()
  | Some tickets ->
      run_batch t pool tickets;
      dispatch_loop t pool

(* continuous batching: each worker holds one in-flight slot and refills
   it the moment its previous request completes, so the "batch" is the
   set of busy workers and never drains between flush windows *)
let rec worker_loop t =
  match Admission.pop_one t.queue with
  | None -> ()
  | Some ticket ->
      let t_dequeue = Unix.gettimeofday () in
      Atomic.incr t.in_flight;
      set_in_flight t;
      Fun.protect
        ~finally:(fun () ->
          Atomic.decr t.in_flight;
          set_in_flight t)
        (fun () ->
          Metrics.observe queue_wait_h (t_dequeue -. ticket.submitted);
          if expired_at ~t_dequeue ticket then expire_ticket t ~t_dequeue ticket
          else execute_ticket t ~t_dequeue ticket);
      worker_loop t

(* ---------------- public API ---------------- *)

let create ?(config = default_config) ?(batching = `Flush) ?label ?journal
    ~handler () =
  if config.jobs < 1 then invalid_arg "Server.create: jobs must be >= 1";
  if config.max_batch < 1 then
    invalid_arg "Server.create: max_batch must be >= 1";
  if config.flush_ms < 0.0 then
    invalid_arg "Server.create: flush_ms must be >= 0";
  (* an unlabelled server keeps the historical metric names; a labelled
     (sharded) one gets per-shard twins alongside the shared process-wide
     counters/histograms, which all shards still feed *)
  let prefix =
    match label with None -> "serve" | Some l -> "serve." ^ l
  in
  let pool =
    match batching with
    | `Flush -> Some (Pool.create ~jobs:config.jobs)
    | `Continuous -> None
  in
  let t =
    {
      config;
      batching;
      label;
      handler;
      queue =
        Admission.create ~capacity:config.queue_capacity
          ~gauge_name:(prefix ^ ".queue.depth");
      pool;
      workers = [];
      state_mutex = Mutex.create ();
      draining = false;
      journal;
      in_flight = Atomic.make 0;
      admitted = Atomic.make 0;
      in_flight_g =
        Metrics.gauge
          (match label with
          | None -> "serve.batches.in_flight"
          | Some _ -> prefix ^ ".in_flight");
      requests_c =
        (match label with
        | None -> None
        | Some _ -> Some (Metrics.counter (prefix ^ ".requests")));
    }
  in
  t.workers <-
    (match (batching, pool) with
    | `Flush, Some pool -> [ Domain.spawn (fun () -> dispatch_loop t pool) ]
    | `Continuous, _ ->
        List.init config.jobs (fun _ -> Domain.spawn (fun () -> worker_loop t))
    | `Flush, None -> assert false);
  t

let config t = t.config
let batching t = t.batching
let label t = t.label
let queue_depth t = Admission.depth t.queue
let admitted t = Atomic.get t.admitted

type health = { queue_depth : int; in_flight_batches : int; draining : bool }

let health t =
  Mutex.lock t.state_mutex;
  let draining = t.draining in
  Mutex.unlock t.state_mutex;
  {
    queue_depth = Admission.depth t.queue;
    in_flight_batches = Atomic.get t.in_flight;
    draining;
  }

let submit_async ?on_done t req =
  let submitted = Unix.gettimeofday () in
  let ticket =
    {
      req;
      submitted;
      deadline =
        Option.map (fun ms -> submitted +. (ms /. 1000.0)) req.Protocol.deadline_ms;
      parent_span = Trace.current ();
      on_done;
      response = None;
      tmutex = Mutex.create ();
      tcond = Condition.create ();
    }
  in
  if Admission.try_push t.queue ticket then begin
    Metrics.incr accepted_c;
    Atomic.incr t.admitted;
    match t.requests_c with Some c -> Metrics.incr c | None -> ()
  end
  else begin
    Metrics.incr rejected_c;
    let reason =
      if t.draining then "server draining"
      else
        Printf.sprintf "queue full (capacity %d)" t.config.queue_capacity
    in
    journal_event t.journal "serve.reject"
      (shard_attrs t.label
         [ ("id", Json.str req.Protocol.id); ("reason", Json.str reason) ]);
    complete ticket
      {
        Protocol.rid = req.Protocol.id;
        rbody = Protocol.Rejected reason;
        queue_wait_us = 0.0;
        execute_us = 0.0;
      }
  end;
  ticket

let await ticket =
  Mutex.lock ticket.tmutex;
  while ticket.response = None do
    Condition.wait ticket.tcond ticket.tmutex
  done;
  let r = Option.get ticket.response in
  Mutex.unlock ticket.tmutex;
  r

let peek ticket =
  Mutex.lock ticket.tmutex;
  let r = ticket.response in
  Mutex.unlock ticket.tmutex;
  r

let submit t req = await (submit_async t req)

let drain t =
  journal_event t.journal "serve.drain"
    (shard_attrs t.label
       [ ("queue_depth", Json.num (float_of_int (Admission.depth t.queue))) ]);
  Mutex.lock t.state_mutex;
  t.draining <- true;
  let workers = t.workers in
  t.workers <- [];
  Mutex.unlock t.state_mutex;
  Admission.close t.queue;
  List.iter Domain.join workers;
  match t.pool with Some pool -> Pool.shutdown pool | None -> ()
