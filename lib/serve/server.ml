(* The request scheduler: admission -> dynamic batch -> pool execution.

   A dedicated dispatcher domain pops batches from the bounded
   {!Admission} queue (size- or time-flushed) and runs each batch on a
   {!Dpoaf_exec.Pool}, where the dispatcher itself participates as one
   execution slot.  Per-request deadlines are checked at dequeue: an
   expired request is answered [Expired] and never executed, so a backed-up
   queue sheds load instead of burning workers on answers nobody is
   waiting for.  [drain] closes admission, lets the dispatcher finish
   everything already queued, and joins it — in-flight requests always
   complete.

   Every phase is instrumented through {!Dpoaf_exec.Metrics} (counters,
   latency histograms, the queue-depth gauge) and, when tracing is on,
   each request becomes a [serve.request] span with [serve.queue_wait],
   [serve.batch_assembly] and [serve.execute] children — recorded
   retroactively via {!Dpoaf_exec.Trace.record_span} because the phases
   straddle domains. *)

module Metrics = Dpoaf_exec.Metrics
module Pool = Dpoaf_exec.Pool
module Trace = Dpoaf_exec.Trace
module Json = Dpoaf_util.Json

type config = {
  jobs : int;
  max_batch : int;
  flush_ms : float;
  queue_capacity : int;
}

let default_config =
  { jobs = 1; max_batch = 32; flush_ms = 5.0; queue_capacity = 256 }

type ticket = {
  req : Protocol.request;
  submitted : float;
  deadline : float option;  (* absolute, seconds *)
  parent_span : int;
  on_done : (Protocol.response -> unit) option;
  mutable response : Protocol.response option;
  tmutex : Mutex.t;
  tcond : Condition.t;
}

type t = {
  config : config;
  handler : Protocol.request -> Protocol.body;
  queue : ticket Admission.t;
  pool : Pool.t;
  mutable dispatcher : unit Domain.t option;
  state_mutex : Mutex.t;
  mutable draining : bool;
  journal : Journal.t option;
  in_flight : int Atomic.t;  (* batches currently executing *)
}

(* ---------------- instrumentation ---------------- *)

let accepted_c = Metrics.counter "serve.accepted"
let rejected_c = Metrics.counter "serve.rejected"
let expired_c = Metrics.counter "serve.expired"
let completed_c = Metrics.counter "serve.completed"
let errors_c = Metrics.counter "serve.errors"
let batches_c = Metrics.counter "serve.batches"
let queue_wait_h = Metrics.histogram "serve.queue_wait"
let execute_h = Metrics.histogram "serve.execute"
let latency_h = Metrics.histogram "serve.latency"
let batch_size_h = Metrics.histogram "serve.batch_size"
let in_flight_g = Metrics.gauge "serve.batches.in_flight"

let kind_name = function
  | Protocol.Generate _ -> "generate"
  | Protocol.Verify _ -> "verify"
  | Protocol.Score_pair _ -> "score_pair"
  | Protocol.Refine _ -> "refine"
  | Protocol.Stats _ -> "stats"
  | Protocol.Health _ -> "health"

let journal_event journal ev attrs =
  match journal with None -> () | Some j -> Journal.emit j ev attrs

(* ---------------- ticket completion ---------------- *)

let complete ticket response =
  Mutex.lock ticket.tmutex;
  ticket.response <- Some response;
  Condition.broadcast ticket.tcond;
  Mutex.unlock ticket.tmutex;
  match ticket.on_done with None -> () | Some f -> f response

let record_request_spans ticket ~t_dequeue ~t_exec_start ~t_end body =
  if Trace.enabled () then begin
    let attrs =
      [
        ("req", ticket.req.Protocol.id);
        ("kind", kind_name ticket.req.Protocol.kind);
        ("status", Protocol.status_of_body body);
      ]
    in
    let rid =
      Trace.record_span ~cat:"serve" ~attrs ~parent:ticket.parent_span
        "serve.request" ~t0:ticket.submitted ~t1:t_end
    in
    ignore
      (Trace.record_span ~cat:"serve" ~parent:rid "serve.queue_wait"
         ~t0:ticket.submitted ~t1:t_dequeue);
    if t_exec_start > t_dequeue then
      ignore
        (Trace.record_span ~cat:"serve" ~parent:rid "serve.batch_assembly"
           ~t0:t_dequeue ~t1:t_exec_start);
    if t_end > t_exec_start then
      ignore
        (Trace.record_span ~cat:"serve" ~parent:rid "serve.execute"
           ~t0:t_exec_start ~t1:t_end)
  end

let finish ticket ~t_dequeue ~t_exec_start ~t_end body =
  record_request_spans ticket ~t_dequeue ~t_exec_start ~t_end body;
  complete ticket
    {
      Protocol.rid = ticket.req.Protocol.id;
      rbody = body;
      queue_wait_us = (t_dequeue -. ticket.submitted) *. 1e6;
      execute_us = (t_end -. t_exec_start) *. 1e6;
    }

(* ---------------- dispatch ---------------- *)

let run_batch t tickets =
  let t_dequeue = Unix.gettimeofday () in
  Atomic.incr t.in_flight;
  Metrics.set_gauge in_flight_g (float_of_int (Atomic.get t.in_flight));
  Fun.protect
    ~finally:(fun () ->
      Atomic.decr t.in_flight;
      Metrics.set_gauge in_flight_g (float_of_int (Atomic.get t.in_flight)))
  @@ fun () ->
  Metrics.incr batches_c;
  Metrics.observe batch_size_h (float_of_int (List.length tickets));
  List.iter
    (fun ticket -> Metrics.observe queue_wait_h (t_dequeue -. ticket.submitted))
    tickets;
  (* deadline gate: expired requests are answered, counted and dropped
     before any execution slot is spent on them *)
  let expired, alive =
    List.partition
      (fun ticket ->
        match ticket.deadline with
        | Some d -> t_dequeue > d
        | None -> false)
      tickets
  in
  journal_event t.journal "serve.batch"
    [
      ("size", Json.num (float_of_int (List.length tickets)));
      ("expired", Json.num (float_of_int (List.length expired)));
    ];
  List.iter
    (fun ticket ->
      Metrics.incr expired_c;
      journal_event t.journal "serve.expire"
        [
          ("id", Json.str ticket.req.Protocol.id);
          ("waited_ms", Json.num ((t_dequeue -. ticket.submitted) *. 1e3));
        ];
      finish ticket ~t_dequeue ~t_exec_start:t_dequeue ~t_end:t_dequeue
        Protocol.Expired)
    expired;
  ignore
    (Pool.map_on_pool t.pool
       (fun ticket ->
         let t_exec_start = Unix.gettimeofday () in
         let body =
           try t.handler ticket.req
           with e -> Protocol.Failed (Printexc.to_string e)
         in
         let t_end = Unix.gettimeofday () in
         Metrics.observe execute_h (t_end -. t_exec_start);
         Metrics.observe latency_h (t_end -. ticket.submitted);
         Metrics.incr completed_c;
         (match body with
         | Protocol.Failed _ -> Metrics.incr errors_c
         | _ -> ());
         journal_event t.journal "serve.request"
           [
             ("id", Json.str ticket.req.Protocol.id);
             ("kind", Json.str (kind_name ticket.req.Protocol.kind));
             ("status", Json.str (Protocol.status_of_body body));
             ("queue_wait_us", Json.num ((t_dequeue -. ticket.submitted) *. 1e6));
             ("execute_us", Json.num ((t_end -. t_exec_start) *. 1e6));
           ];
         finish ticket ~t_dequeue ~t_exec_start ~t_end body)
       alive)

let rec dispatch_loop t =
  match
    Admission.pop_batch t.queue ~max:t.config.max_batch
      ~flush_s:(t.config.flush_ms /. 1000.0)
  with
  | None -> ()
  | Some tickets ->
      run_batch t tickets;
      dispatch_loop t

(* ---------------- public API ---------------- *)

let create ?(config = default_config) ?journal ~handler () =
  if config.jobs < 1 then invalid_arg "Server.create: jobs must be >= 1";
  if config.max_batch < 1 then
    invalid_arg "Server.create: max_batch must be >= 1";
  if config.flush_ms < 0.0 then
    invalid_arg "Server.create: flush_ms must be >= 0";
  let t =
    {
      config;
      handler;
      queue =
        Admission.create ~capacity:config.queue_capacity
          ~gauge_name:"serve.queue.depth";
      pool = Pool.create ~jobs:config.jobs;
      dispatcher = None;
      state_mutex = Mutex.create ();
      draining = false;
      journal;
      in_flight = Atomic.make 0;
    }
  in
  t.dispatcher <- Some (Domain.spawn (fun () -> dispatch_loop t));
  t

let config t = t.config
let queue_depth t = Admission.depth t.queue

type health = { queue_depth : int; in_flight_batches : int; draining : bool }

let health t =
  Mutex.lock t.state_mutex;
  let draining = t.draining in
  Mutex.unlock t.state_mutex;
  {
    queue_depth = Admission.depth t.queue;
    in_flight_batches = Atomic.get t.in_flight;
    draining;
  }

let submit_async ?on_done t req =
  let submitted = Unix.gettimeofday () in
  let ticket =
    {
      req;
      submitted;
      deadline =
        Option.map (fun ms -> submitted +. (ms /. 1000.0)) req.Protocol.deadline_ms;
      parent_span = Trace.current ();
      on_done;
      response = None;
      tmutex = Mutex.create ();
      tcond = Condition.create ();
    }
  in
  if Admission.try_push t.queue ticket then Metrics.incr accepted_c
  else begin
    Metrics.incr rejected_c;
    let reason =
      if t.draining then "server draining"
      else
        Printf.sprintf "queue full (capacity %d)" t.config.queue_capacity
    in
    journal_event t.journal "serve.reject"
      [ ("id", Json.str req.Protocol.id); ("reason", Json.str reason) ];
    complete ticket
      {
        Protocol.rid = req.Protocol.id;
        rbody = Protocol.Rejected reason;
        queue_wait_us = 0.0;
        execute_us = 0.0;
      }
  end;
  ticket

let await ticket =
  Mutex.lock ticket.tmutex;
  while ticket.response = None do
    Condition.wait ticket.tcond ticket.tmutex
  done;
  let r = Option.get ticket.response in
  Mutex.unlock ticket.tmutex;
  r

let peek ticket =
  Mutex.lock ticket.tmutex;
  let r = ticket.response in
  Mutex.unlock ticket.tmutex;
  r

let submit t req = await (submit_async t req)

let drain t =
  journal_event t.journal "serve.drain"
    [ ("queue_depth", Json.num (float_of_int (Admission.depth t.queue))) ];
  Mutex.lock t.state_mutex;
  t.draining <- true;
  let dispatcher = t.dispatcher in
  t.dispatcher <- None;
  Mutex.unlock t.state_mutex;
  Admission.close t.queue;
  (match dispatcher with
  | Some d -> Domain.join d
  | None -> ());
  Pool.shutdown t.pool
