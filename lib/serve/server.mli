(** The batched inference-and-verification scheduler.

    Requests enter a bounded admission queue ({!submit} / {!submit_async}
    answer an explicit [Rejected] body when it is full — backpressure is a
    protocol condition, not an unbounded buffer), are coalesced into
    dynamic batches (flushed at [max_batch] items or after [flush_ms],
    whichever first) by a dedicated dispatcher domain, and execute on a
    private {!Dpoaf_exec.Pool} of [jobs] slots.  A request whose
    [deadline_ms] elapses while it queues is answered [Expired] at dequeue
    time and never executed.

    Because the handler must be a pure function of the request (see
    {!Engine}), responses are bit-identical for every [jobs], batch size
    and flush window — the serving-layer restatement of the PR-1 pool
    guarantee.

    Instrumentation: counters [serve.accepted/rejected/expired/completed/
    errors/batches], histograms [serve.queue_wait/execute/latency/
    batch_size], the [serve.queue.depth] and [serve.batches.in_flight]
    gauges, and per-request [serve.request] trace spans with
    [queue_wait]/[batch_assembly]/[execute] children when
    {!Dpoaf_exec.Trace} is enabled.  When created with a {!Journal}, every
    admission reject ([serve.reject]), deadline expiry ([serve.expire]),
    batch coalesce ([serve.batch]), request completion ([serve.request])
    and drain ([serve.drain]) is also recorded as a journal event. *)

type config = {
  jobs : int;  (** pool slots executing batches *)
  max_batch : int;  (** size-based flush threshold *)
  flush_ms : float;  (** time-based flush threshold, milliseconds *)
  queue_capacity : int;  (** admission bound; beyond it requests reject *)
}

val default_config : config
(** [jobs = 1], [max_batch = 32], [flush_ms = 5.0],
    [queue_capacity = 256]. *)

type batching = [ `Flush  (** dispatcher + dynamic batches (historical) *)
  | `Continuous
    (** [jobs] worker domains, each refilling its in-flight slot the
        moment its previous request completes — no batch boundaries, so
        a slow request never stalls the rest of its batch.  [max_batch]
        and [flush_ms] are ignored; [serve.batch] events and the
        [serve.batches]/[serve.batch_size] metrics are not produced. *) ]

type t

val create :
  ?config:config ->
  ?batching:batching ->
  ?label:string ->
  ?journal:Journal.t ->
  handler:(Protocol.request -> Protocol.body) ->
  unit ->
  t
(** Spawn the dispatcher domain and worker pool ([`Flush], the default)
    or [jobs] continuous-batching worker domains ([`Continuous]).
    [handler] runs on pool workers and must be safe to call from any
    domain; exceptions it raises become [Failed] bodies.  [journal], when
    given, receives the serving events listed above; the server buffers
    through the journal's ring and never flushes it itself — the owning
    loop should call {!Journal.flush} periodically.

    [label] names this server as one shard of a fleet: the queue-depth
    and in-flight gauges move to [serve.<label>.queue.depth] /
    [serve.<label>.in_flight], an extra [serve.<label>.requests] counter
    counts admissions, and every journal event carries a ["shard"]
    attribute.  The process-wide [serve.*] counters and histograms are
    still fed by every shard, so fleet totals need no aggregation step.
    @raise Invalid_argument on non-positive [jobs]/[max_batch] or negative
    [flush_ms]. *)

type ticket
(** A pending (or already answered) request. *)

val submit_async :
  ?on_done:(Protocol.response -> unit) -> t -> Protocol.request -> ticket
(** Non-blocking submission.  If admission rejects, the ticket completes
    immediately with a [Rejected] body.  [on_done] fires exactly once, on
    whichever domain completes the request — it must be thread-safe and
    quick (the daemon uses it to enqueue the wire response). *)

val await : ticket -> Protocol.response
(** Block until the ticket's response is available. *)

val peek : ticket -> Protocol.response option
(** The response if already available, without blocking. *)

val submit : t -> Protocol.request -> Protocol.response
(** [await (submit_async t req)]. *)

val drain : t -> unit
(** Graceful shutdown: stop admitting (subsequent submissions reject with
    "server draining"), finish every queued and in-flight request, join
    the dispatcher and shut the pool down.  Idempotent. *)

val config : t -> config

val batching : t -> batching
val label : t -> string option
val queue_depth : t -> int

val admitted : t -> int
(** Requests this instance has admitted over its lifetime — instance
    local, unlike the process-wide [serve.accepted] counter that every
    shard feeds. *)

(** {1 Ops plane} *)

type health = {
  queue_depth : int;  (** requests waiting in admission *)
  in_flight_batches : int;
      (** batches currently executing (0 or 1 with the [`Flush]
          dispatcher); under [`Continuous] batching, the number of
          requests currently executing (at most [jobs]) *)
  draining : bool;
}

val health : t -> health
(** A point-in-time liveness view; safe from any domain and never blocked
    by a backed-up queue. *)
