(* Wire protocol of the serving layer: line-delimited JSON over a Unix
   domain socket.  One request object per line in, one response object per
   line out; responses carry the request's [id] so a client may pipeline.

   Four request kinds mirror the DPO-AF loop as a service:
   - [generate]: prompt (a task id) -> grammar-constrained response steps;
   - [verify]: response steps -> per-spec sat/violated/vacuous profile;
   - [score_pair]: two responses -> preference + margin, the paper's
     automated-feedback oracle (§4.2) behind a request/response API;
   - [refine]: a defective response -> counterexample-guided repair
     trajectory (Dpoaf_refine) — per-round violated specs,
     accepted/rejected, and the final profile.

   Two further kinds form the ops plane of a running daemon:
   - [stats]: live metrics snapshot — counters, histogram summaries with
     exact bucket bounds, cache hit rates — plus GC/runtime gauges;
   - [health]: queue depth, in-flight batches, drain state, per-domain
     request counters.
   Both accept an optional [domain] tag restricting the view to one
   served domain's twins.

   Decoding is strict: unknown kinds, missing fields and type mismatches
   are reported with the offending field, never silently defaulted. *)

module Json = Dpoaf_util.Json
module Metrics = Dpoaf_exec.Metrics

type kind =
  | Generate of {
      task : string;
      seed : int;
      temperature : float;
      domain : string option;
    }
  | Verify of {
      steps : string list;
      scenario : string option;
      domain : string option;
      explain : bool;
    }
  | Score_pair of {
      steps_a : string list;
      steps_b : string list;
      scenario : string option;
      domain : string option;
      explain : bool;
    }
  | Refine of {
      task : string;
      steps : string list;
      seed : int;
      scenario : string option;
      domain : string option;
      explain : bool;
      max_rounds : int option;
      attempts : int option;
    }
  | Stats of { domain : string option }
  | Health of { domain : string option }

type request = { id : string; kind : kind; deadline_ms : float option }

type profile = {
  score : int;
  satisfied : string list;
  violated : string list;
  vacuous : string list;
}

(* A replay-validated counterexample explanation for one violated spec
   (Dpoaf_analysis.Explain rendered for the wire).  Responses carry them
   only when the request asked ([explain]:true), so untagged traffic
   stays byte-identical to the pre-explanation protocol. *)
type explanation = { espec : string; etext : string }

(* One round of a repair trajectory.  [rr_feedback] is carried only when
   the request asked ([explain]:true), like every other explanation. *)
type rround = {
  rr_index : int;
  rr_violated : string list;
  rr_accepted : bool;
  rr_margin : int;
  rr_feedback : explanation list option;
}

(* Per-shard liveness twin of the aggregate health fields.  A single-shard
   daemon reports an empty list and its health encoding stays byte-identical
   to the pre-sharding wire format. *)
type shard_health = {
  sh_shard : string;  (* e.g. "shard0" *)
  sh_queue_depth : int;
  sh_in_flight : int;
  sh_requests : int;  (* admissions routed to this shard so far *)
  sh_draining : bool;
}

type body =
  | Generated of { steps : string list; tokens : int list; profile : profile }
  | Verified of { profile : profile; explanations : explanation list option }
  | Compared of {
      preference : string;  (* "a" | "b" | "tie" *)
      margin : int;
      margin_specs : string list;
      vacuous_margin : bool;
      profile_a : profile;
      profile_b : profile;
      explanations : explanation list option;
          (* the LOSER's margin violations, explained *)
    }
  | Refined of {
      rstatus : string;  (* "clean" | "improved" | "unchanged" *)
      deadline_hit : bool;
      original_profile : profile;
      final_steps : string list;
      final_profile : profile;
      rounds : rround list;
    }
  | Stats_report of {
      metrics : (string * float) list;
      histograms : (string * Metrics.hist_snapshot) list;
      runtime : (string * float) list;
    }
  | Health_report of {
      queue_depth : int;
      in_flight_batches : int;
      draining : bool;
      domains : (string * int) list;
      shards : shard_health list;
    }
  | Rejected of string
  | Expired
  | Failed of string

type response = {
  rid : string;
  rbody : body;
  queue_wait_us : float;
  execute_us : float;
}

let status_of_body = function
  | Generated _ | Verified _ | Compared _ | Refined _ | Stats_report _
  | Health_report _ ->
      "ok"
  | Rejected _ -> "rejected"
  | Expired -> "expired"
  | Failed _ -> "error"

(* ---------------- encoding ---------------- *)

let jstrs xs = Json.arr (List.map Json.str xs)
let jints xs = Json.arr (List.map (fun i -> Json.num (float_of_int i)) xs)

let verified profile = Verified { profile; explanations = None }

(* encoded only when present — an unset field keeps the response
   byte-identical to the pre-explanation encoding; repair rounds carry
   theirs under "feedback" instead of "explanations" *)
let jexplanations ?(name = "explanations") = function
  | None -> []
  | Some es ->
      [
        ( name,
          Json.arr
            (List.map
               (fun e ->
                 Json.obj
                   [ ("spec", Json.str e.espec); ("text", Json.str e.etext) ])
               es) );
      ]

let json_of_profile p =
  Json.obj
    [
      ("score", Json.num (float_of_int p.score));
      ("satisfied", jstrs p.satisfied);
      ("violated", jstrs p.violated);
      ("vacuous", jstrs p.vacuous);
    ]

let json_of_request r =
  let base =
    (* optional fields are encoded only when present, so single-domain
       requests stay byte-identical to the pre-domain protocol *)
    let jdomain = function
      | None -> []
      | Some d -> [ ("domain", Json.str d) ]
    in
    match r.kind with
    | Generate { task; seed; temperature; domain } ->
        [
          ("kind", Json.str "generate");
          ("task", Json.str task);
          ("seed", Json.num (float_of_int seed));
          ("temperature", Json.num temperature);
        ]
        @ jdomain domain
    | Verify { steps; scenario; domain; explain } ->
        ("kind", Json.str "verify")
        :: ("steps", jstrs steps)
        :: ((match scenario with
            | None -> []
            | Some s -> [ ("scenario", Json.str s) ])
           @ jdomain domain
           @ if explain then [ ("explain", Json.Bool true) ] else [])
    | Score_pair { steps_a; steps_b; scenario; domain; explain } ->
        ("kind", Json.str "score_pair")
        :: ("steps_a", jstrs steps_a)
        :: ("steps_b", jstrs steps_b)
        :: ((match scenario with
            | None -> []
            | Some s -> [ ("scenario", Json.str s) ])
           @ jdomain domain
           @ if explain then [ ("explain", Json.Bool true) ] else [])
    | Refine { task; steps; seed; scenario; domain; explain; max_rounds; attempts }
      ->
        (* the budget object appears only when some bound was set, so a
           default-budget request carries no "budget" member at all *)
        let budget =
          let members =
            (match max_rounds with
            | None -> []
            | Some n -> [ ("max_rounds", Json.num (float_of_int n)) ])
            @
            match attempts with
            | None -> []
            | Some n -> [ ("attempts", Json.num (float_of_int n)) ]
          in
          match members with [] -> [] | ms -> [ ("budget", Json.obj ms) ]
        in
        ("kind", Json.str "refine")
        :: ("task", Json.str task)
        :: ("steps", jstrs steps)
        :: ("seed", Json.num (float_of_int seed))
        :: ((match scenario with
            | None -> []
            | Some s -> [ ("scenario", Json.str s) ])
           @ jdomain domain
           @ (if explain then [ ("explain", Json.Bool true) ] else [])
           @ budget)
    | Stats { domain } -> ("kind", Json.str "stats") :: jdomain domain
    | Health { domain } -> ("kind", Json.str "health") :: jdomain domain
  in
  let deadline =
    match r.deadline_ms with
    | None -> []
    | Some ms -> [ ("deadline_ms", Json.num ms) ]
  in
  Json.obj ((("id", Json.str r.id) :: base) @ deadline)

let json_of_response r =
  let payload =
    match r.rbody with
    | Generated { steps; tokens; profile } ->
        [
          ("steps", jstrs steps);
          ("tokens", jints tokens);
          ("profile", json_of_profile profile);
        ]
    | Verified { profile; explanations } ->
        ("profile", json_of_profile profile) :: jexplanations explanations
    | Compared
        {
          preference;
          margin;
          margin_specs;
          vacuous_margin;
          profile_a;
          profile_b;
          explanations;
        } ->
        [
          ("preference", Json.str preference);
          ("margin", Json.num (float_of_int margin));
          ("margin_specs", jstrs margin_specs);
          ("vacuous_margin", Json.Bool vacuous_margin);
          ("profile_a", json_of_profile profile_a);
          ("profile_b", json_of_profile profile_b);
        ]
        @ jexplanations explanations
    | Refined
        {
          rstatus;
          deadline_hit;
          original_profile;
          final_steps;
          final_profile;
          rounds;
        } ->
        let json_of_round r =
          Json.obj
            ([
               ("round", Json.num (float_of_int r.rr_index));
               ("violated", jstrs r.rr_violated);
               ("accepted", Json.Bool r.rr_accepted);
               ("margin", Json.num (float_of_int r.rr_margin));
             ]
            @ jexplanations ~name:"feedback" r.rr_feedback)
        in
        [
          ( "refine",
            Json.obj
              ([ ("status", Json.str rstatus) ]
              @ (if deadline_hit then [ ("deadline_hit", Json.Bool true) ]
                 else [])
              @ [
                  ("original_profile", json_of_profile original_profile);
                  ("final_steps", jstrs final_steps);
                  ("final_profile", json_of_profile final_profile);
                  ("rounds", Json.arr (List.map json_of_round rounds));
                ]) );
        ]
    | Stats_report { metrics; histograms; runtime } ->
        let nums kvs = Json.obj (List.map (fun (k, v) -> (k, Json.num v)) kvs) in
        [
          ( "stats",
            Json.obj
              [
                ("metrics", nums metrics);
                ( "histograms",
                  Json.obj
                    (List.map
                       (fun (k, s) -> (k, Metrics.json_of_snapshot s))
                       histograms) );
                ("runtime", nums runtime);
              ] );
        ]
    | Health_report { queue_depth; in_flight_batches; draining; domains; shards }
      ->
        (* [shards] is encoded only when non-empty, so an unsharded
           daemon's health line is byte-identical to the pre-fleet wire *)
        let jshards =
          match shards with
          | [] -> []
          | _ ->
              [
                ( "shards",
                  Json.arr
                    (List.map
                       (fun s ->
                         Json.obj
                           [
                             ("shard", Json.str s.sh_shard);
                             ( "queue_depth",
                               Json.num (float_of_int s.sh_queue_depth) );
                             ( "in_flight",
                               Json.num (float_of_int s.sh_in_flight) );
                             ( "requests",
                               Json.num (float_of_int s.sh_requests) );
                             ("draining", Json.Bool s.sh_draining);
                           ])
                       shards) );
              ]
        in
        [
          ( "health",
            Json.obj
              ([
                 ("queue_depth", Json.num (float_of_int queue_depth));
                 ( "in_flight_batches",
                   Json.num (float_of_int in_flight_batches) );
                 ("draining", Json.Bool draining);
                 ( "domains",
                   Json.obj
                     (List.map
                        (fun (d, n) -> (d, Json.num (float_of_int n)))
                        domains) );
               ]
              @ jshards) );
        ]
    | Rejected reason -> [ ("reason", Json.str reason) ]
    | Expired -> []
    | Failed msg -> [ ("error", Json.str msg) ]
  in
  Json.obj
    ([
       ("id", Json.str r.rid);
       ("status", Json.str (status_of_body r.rbody));
       ("queue_wait_us", Json.num r.queue_wait_us);
       ("execute_us", Json.num r.execute_us);
     ]
    @ payload)

let request_to_string r = Json.to_string (json_of_request r)
let response_to_string r = Json.to_string (json_of_response r)

(* ---------------- decoding ---------------- *)

let ( let* ) = Result.bind

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let str_field name j =
  let* v = field name j in
  match Json.to_str v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "field %S must be a string" name)

let num_field name j =
  let* v = field name j in
  match Json.to_float v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "field %S must be a number" name)

let str_list_field name j =
  let* v = field name j in
  match Json.to_list v with
  | None -> Error (Printf.sprintf "field %S must be an array" name)
  | Some items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | x :: rest -> (
            match Json.to_str x with
            | Some s -> go (s :: acc) rest
            | None ->
                Error (Printf.sprintf "field %S must contain only strings" name))
      in
      go [] items

let opt_str_field name j =
  match Json.member name j with
  | None | Some Json.Null -> Ok None
  | Some v -> (
      match Json.to_str v with
      | Some s -> Ok (Some s)
      | None -> Error (Printf.sprintf "field %S must be a string" name))

let opt_num_field name j =
  match Json.member name j with
  | None | Some Json.Null -> Ok None
  | Some v -> (
      match Json.to_float v with
      | Some f -> Ok (Some f)
      | None -> Error (Printf.sprintf "field %S must be a number" name))

let opt_bool_field name j =
  match Json.member name j with
  | None | Some Json.Null -> Ok false
  | Some (Json.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "field %S must be a boolean" name)

let int_list_field name j =
  let* v = field name j in
  match Json.to_list v with
  | None -> Error (Printf.sprintf "field %S must be an array" name)
  | Some items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | x :: rest -> (
            match Json.to_float x with
            | Some f -> go (int_of_float f :: acc) rest
            | None ->
                Error (Printf.sprintf "field %S must contain only numbers" name))
      in
      go [] items

let kind_of_json j =
  let* kind = str_field "kind" j in
  match kind with
  | "generate" ->
      let* task = str_field "task" j in
      let* seed = opt_num_field "seed" j in
      let* temperature = opt_num_field "temperature" j in
      let* domain = opt_str_field "domain" j in
      Ok
        (Generate
           {
             task;
             seed = (match seed with Some s -> int_of_float s | None -> 0);
             temperature = Option.value ~default:1.0 temperature;
             domain;
           })
  | "verify" ->
      let* steps = str_list_field "steps" j in
      let* scenario = opt_str_field "scenario" j in
      let* domain = opt_str_field "domain" j in
      let* explain = opt_bool_field "explain" j in
      Ok (Verify { steps; scenario; domain; explain })
  | "score_pair" ->
      let* steps_a = str_list_field "steps_a" j in
      let* steps_b = str_list_field "steps_b" j in
      let* scenario = opt_str_field "scenario" j in
      let* domain = opt_str_field "domain" j in
      let* explain = opt_bool_field "explain" j in
      Ok (Score_pair { steps_a; steps_b; scenario; domain; explain })
  | "refine" ->
      let* task = str_field "task" j in
      let* steps = str_list_field "steps" j in
      let* seed = opt_num_field "seed" j in
      let* scenario = opt_str_field "scenario" j in
      let* domain = opt_str_field "domain" j in
      let* explain = opt_bool_field "explain" j in
      let* max_rounds, attempts =
        match Json.member "budget" j with
        | None | Some Json.Null -> Ok (None, None)
        | Some (Json.Obj _ as b) ->
            let bound name =
              let* v = opt_num_field name b in
              match v with
              | None -> Ok None
              | Some f when f >= 1.0 -> Ok (Some (int_of_float f))
              | Some _ ->
                  Error (Printf.sprintf "budget field %S must be >= 1" name)
            in
            let* max_rounds = bound "max_rounds" in
            let* attempts = bound "attempts" in
            Ok (max_rounds, attempts)
        | Some _ -> Error "field \"budget\" must be an object"
      in
      Ok
        (Refine
           {
             task;
             steps;
             seed = (match seed with Some s -> int_of_float s | None -> 0);
             scenario;
             domain;
             explain;
             max_rounds;
             attempts;
           })
  | "stats" ->
      let* domain = opt_str_field "domain" j in
      Ok (Stats { domain })
  | "health" ->
      let* domain = opt_str_field "domain" j in
      Ok (Health { domain })
  | other ->
      Error
        (Printf.sprintf
           "unknown request kind %S (valid: generate, verify, score_pair, \
            refine, stats, health)"
           other)

let request_of_json j =
  let* id = str_field "id" j in
  let* kind = kind_of_json j in
  let* deadline_ms = opt_num_field "deadline_ms" j in
  (match deadline_ms with
  | Some d when d <= 0.0 -> Error "field \"deadline_ms\" must be positive"
  | _ -> Ok ())
  |> Result.map (fun () -> { id; kind; deadline_ms })

let request_of_string line =
  match Json.parse line with
  | Error msg -> Error ("malformed JSON: " ^ msg)
  | Ok j -> request_of_json j

let profile_of_json j =
  let* score = num_field "score" j in
  let* satisfied = str_list_field "satisfied" j in
  let* violated = str_list_field "violated" j in
  let* vacuous = str_list_field "vacuous" j in
  Ok { score = int_of_float score; satisfied; violated; vacuous }

let explanations_of_json ?(name = "explanations") j =
  match Json.member name j with
  | None | Some Json.Null -> Ok None
  | Some v -> (
      match Json.to_list v with
      | None -> Error (Printf.sprintf "field %S must be an array" name)
      | Some items ->
          let rec go acc = function
            | [] -> Ok (Some (List.rev acc))
            | x :: rest ->
                let* espec = str_field "spec" x in
                let* etext = str_field "text" x in
                go ({ espec; etext } :: acc) rest
          in
          go [] items)

let num_assoc_field name j =
  let* v = field name j in
  match v with
  | Json.Obj kvs ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | (k, x) :: rest -> (
            match Json.to_float x with
            | Some f -> go ((k, f) :: acc) rest
            | None ->
                Error
                  (Printf.sprintf "field %S must map names to numbers" name))
      in
      go [] kvs
  | _ -> Error (Printf.sprintf "field %S must be an object" name)

let stats_report_of_json j =
  let* metrics = num_assoc_field "metrics" j in
  let* hs = field "histograms" j in
  let* histograms =
    match hs with
    | Json.Obj kvs ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | (k, x) :: rest -> (
              match Metrics.snapshot_of_json x with
              | Ok s -> go ((k, s) :: acc) rest
              | Error msg -> Error (Printf.sprintf "histogram %S: %s" k msg))
        in
        go [] kvs
    | _ -> Error "field \"histograms\" must be an object"
  in
  let* runtime = num_assoc_field "runtime" j in
  Ok (Stats_report { metrics; histograms; runtime })

let refined_of_json j =
  let* rstatus = str_field "status" j in
  let* deadline_hit = opt_bool_field "deadline_hit" j in
  let* op = field "original_profile" j in
  let* original_profile = profile_of_json op in
  let* final_steps = str_list_field "final_steps" j in
  let* fp = field "final_profile" j in
  let* final_profile = profile_of_json fp in
  let* rs = field "rounds" j in
  let* rounds =
    match Json.to_list rs with
    | None -> Error "field \"rounds\" must be an array"
    | Some items ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | x :: rest ->
              let* index = num_field "round" x in
              let* rr_violated = str_list_field "violated" x in
              let* a = field "accepted" x in
              let* rr_accepted =
                match a with
                | Json.Bool b -> Ok b
                | _ -> Error "field \"accepted\" must be a boolean"
              in
              let* margin = num_field "margin" x in
              let* rr_feedback = explanations_of_json ~name:"feedback" x in
              go
                ({
                   rr_index = int_of_float index;
                   rr_violated;
                   rr_accepted;
                   rr_margin = int_of_float margin;
                   rr_feedback;
                 }
                :: acc)
                rest
        in
        go [] items
  in
  Ok
    (Refined
       {
         rstatus;
         deadline_hit;
         original_profile;
         final_steps;
         final_profile;
         rounds;
       })

let shard_health_of_json j =
  let* sh_shard = str_field "shard" j in
  let* qd = num_field "queue_depth" j in
  let* infl = num_field "in_flight" j in
  let* reqs = num_field "requests" j in
  let* sh_draining = opt_bool_field "draining" j in
  Ok
    {
      sh_shard;
      sh_queue_depth = int_of_float qd;
      sh_in_flight = int_of_float infl;
      sh_requests = int_of_float reqs;
      sh_draining;
    }

let health_report_of_json j =
  let* queue_depth = num_field "queue_depth" j in
  let* in_flight = num_field "in_flight_batches" j in
  let* d = field "draining" j in
  let* draining =
    match d with
    | Json.Bool b -> Ok b
    | _ -> Error "field \"draining\" must be a boolean"
  in
  let* domains = num_assoc_field "domains" j in
  let* shards =
    match Json.member "shards" j with
    | None | Some Json.Null -> Ok []
    | Some v -> (
        match Json.to_list v with
        | None -> Error "field \"shards\" must be an array"
        | Some items ->
            let rec go acc = function
              | [] -> Ok (List.rev acc)
              | x :: rest ->
                  let* s = shard_health_of_json x in
                  go (s :: acc) rest
            in
            go [] items)
  in
  Ok
    (Health_report
       {
         queue_depth = int_of_float queue_depth;
         in_flight_batches = int_of_float in_flight;
         draining;
         domains = List.map (fun (k, v) -> (k, int_of_float v)) domains;
         shards;
       })

let body_of_json status j =
  match status with
  | "ok" -> (
      (* the ops-plane and refine payloads live under a single member *)
      match
        (Json.member "stats" j, Json.member "health" j, Json.member "refine" j)
      with
      | Some s, _, _ -> stats_report_of_json s
      | None, Some h, _ -> health_report_of_json h
      | None, None, Some r -> refined_of_json r
      | None, None, None -> (
      (* discriminate the three ok shapes by their distinctive fields *)
      match (Json.member "preference" j, Json.member "tokens" j) with
      | Some _, _ ->
          let* preference = str_field "preference" j in
          let* margin = num_field "margin" j in
          let* margin_specs = str_list_field "margin_specs" j in
          let* vm = field "vacuous_margin" j in
          let* vacuous_margin =
            match vm with
            | Json.Bool b -> Ok b
            | _ -> Error "field \"vacuous_margin\" must be a boolean"
          in
          let* pa = field "profile_a" j in
          let* profile_a = profile_of_json pa in
          let* pb = field "profile_b" j in
          let* profile_b = profile_of_json pb in
          let* explanations = explanations_of_json j in
          Ok
            (Compared
               {
                 preference;
                 margin = int_of_float margin;
                 margin_specs;
                 vacuous_margin;
                 profile_a;
                 profile_b;
                 explanations;
               })
      | None, Some _ ->
          let* steps = str_list_field "steps" j in
          let* tokens = int_list_field "tokens" j in
          let* p = field "profile" j in
          let* profile = profile_of_json p in
          Ok (Generated { steps; tokens; profile })
      | None, None ->
          let* p = field "profile" j in
          let* profile = profile_of_json p in
          let* explanations = explanations_of_json j in
          Ok (Verified { profile; explanations })))
  | "rejected" ->
      let* reason = str_field "reason" j in
      Ok (Rejected reason)
  | "expired" -> Ok Expired
  | "error" ->
      let* msg = str_field "error" j in
      Ok (Failed msg)
  | other -> Error (Printf.sprintf "unknown response status %S" other)

let response_of_json j =
  let* rid = str_field "id" j in
  let* status = str_field "status" j in
  let* rbody = body_of_json status j in
  let* queue_wait_us = num_field "queue_wait_us" j in
  let* execute_us = num_field "execute_us" j in
  Ok { rid; rbody; queue_wait_us; execute_us }

let response_of_string line =
  match Json.parse line with
  | Error msg -> Error ("malformed JSON: " ^ msg)
  | Ok j -> response_of_json j
