(** The serving daemon: NDJSON over a Unix domain socket, with an
    optional TCP listener speaking the identical protocol.

    A single [Unix.select] event loop accepts connections (from either
    transport) and reads one {!Protocol} request per line; execution
    happens on the {!Router}'s replica servers, whose completion
    callbacks enqueue the response line on the owning connection's outbox
    and write a byte down a self-pipe so the loop wakes immediately.
    Because completions and {!request_stop} wake the loop themselves, the
    select timeout is adaptive: an idle daemon blocks for 0.25 s (when a
    journal or preference store needs its once-per-turn flush) or 5 s
    (when not) instead of polling at 200 Hz.  Clients may pipeline:
    responses carry the request id and may arrive out of order relative
    to submission.

    Malformed lines are answered with a [status="error"] response (empty
    id) and counted in [serve.protocol_errors] — the connection stays
    usable.

    The ops verbs ([stats]/[health]) are answered synchronously from the
    event loop, ahead of every shard's admission queue: a daemon whose
    queues are full or whose workers are saturated still answers them on
    the next loop turn. *)

type ops = {
  stats : domain:string option -> Protocol.body;
      (** typically {!Engine.stats_body} *)
  health : domain:string option -> Protocol.body;
      (** typically {!Router.health} + {!Router.shard_healths} +
          {!Engine.request_counts} *)
}
(** How the daemon answers the ops verbs.  When omitted, {!run} falls
    back to the global metrics registry and the router's queue view
    (including per-shard rows when sharded), and refuses domain-tagged
    queries (it has no domain registry to validate them against). *)

type stats = {
  connections : int;  (** connections accepted over the daemon's life *)
  requests : int;  (** non-blank lines received (including malformed) *)
  responses : int;  (** response lines enqueued for writing *)
  protocol_errors : int;  (** lines that failed to parse as requests *)
}

val run :
  socket:string ->
  ?tcp_port:int ->
  ?on_tcp_listen:(int -> unit) ->
  router:Router.t ->
  ?ops:ops ->
  ?journal:Journal.t ->
  ?pref_store:Dpoaf_refine.Pref_store.t ->
  unit ->
  stats
(** Bind [socket] (an existing file is replaced) and, when [tcp_port] is
    given, a loopback TCP listener on that port ([0] picks an ephemeral
    port; [on_tcp_listen] receives the bound port either way).  Serve
    until SIGINT or SIGTERM (or {!request_stop}), then drain every shard
    gracefully — every admitted request is answered and flushed before
    the socket file is removed.  Blocks the calling domain for the
    daemon's lifetime.

    [journal], when given, records [daemon.start]/[daemon.stop], one
    [serve.shard.up] per replica at startup, and per-line
    [daemon.protocol_error] events, and is flushed once per loop turn
    (pass the same journal to each {!Server} to capture the serving
    events too).  [pref_store], when given, is likewise flushed once per
    loop turn and at shutdown, so harvested pairs emitted by worker
    domains reach disk without the hot path blocking on the filesystem
    (pass the same store to {!Engine.create} to harvest).  The daemon
    closes neither — the owner does. *)

val request_stop : unit -> unit
(** Ask a running {!run} loop to shut down — what the signal handlers
    call (it also wakes a blocked select, so a stop requested from
    another domain takes effect immediately); exposed for tests. *)
