(** The serving daemon: NDJSON over a Unix domain socket.

    A single [Unix.select] event loop accepts connections and reads one
    {!Protocol} request per line; execution happens on the {!Server}'s
    dispatcher/pool domains, whose completion callbacks enqueue the
    response line on the owning connection's outbox for the loop to
    flush.  Clients may pipeline: responses carry the request id and may
    arrive out of order relative to submission.

    Malformed lines are answered with a [status="error"] response (empty
    id) and counted in [serve.protocol_errors] — the connection stays
    usable.

    The ops verbs ([stats]/[health]) are answered synchronously from the
    event loop, ahead of the admission queue: a daemon whose queue is
    full or whose pool is saturated still answers them on the next loop
    turn (within the 5 ms select timeout). *)

type ops = {
  stats : domain:string option -> Protocol.body;
      (** typically {!Engine.stats_body} *)
  health : domain:string option -> Protocol.body;
      (** typically {!Server.health} + {!Engine.request_counts} *)
}
(** How the daemon answers the ops verbs.  When omitted, {!run} falls
    back to the global metrics registry and the server's queue view, and
    refuses domain-tagged queries (it has no domain registry to validate
    them against). *)

type stats = {
  connections : int;  (** connections accepted over the daemon's life *)
  requests : int;  (** non-blank lines received (including malformed) *)
  responses : int;  (** response lines enqueued for writing *)
  protocol_errors : int;  (** lines that failed to parse as requests *)
}

val run :
  socket:string -> server:Server.t -> ?ops:ops -> ?journal:Journal.t ->
  ?pref_store:Dpoaf_refine.Pref_store.t ->
  unit -> stats
(** Bind [socket] (an existing file is replaced), serve until SIGINT or
    SIGTERM (or {!request_stop}), then drain the server gracefully —
    every admitted request is answered and flushed before the socket file
    is removed.  Blocks the calling domain for the daemon's lifetime.

    [journal], when given, records [daemon.start]/[daemon.stop] and
    per-line [daemon.protocol_error] events, and is flushed once per loop
    turn (pass the same journal to {!Server.create} to capture the
    serving events too).  [pref_store], when given, is likewise flushed
    once per loop turn and at shutdown, so harvested pairs emitted by
    worker domains reach disk without the hot path blocking on the
    filesystem (pass the same store to {!Engine.create} to harvest).
    The daemon closes neither — the owner does. *)

val request_stop : unit -> unit
(** Ask a running {!run} loop to shut down — what the signal handlers
    call; exposed for tests. *)
