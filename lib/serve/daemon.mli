(** The serving daemon: NDJSON over a Unix domain socket.

    A single [Unix.select] event loop accepts connections and reads one
    {!Protocol} request per line; execution happens on the {!Server}'s
    dispatcher/pool domains, whose completion callbacks enqueue the
    response line on the owning connection's outbox for the loop to
    flush.  Clients may pipeline: responses carry the request id and may
    arrive out of order relative to submission.

    Malformed lines are answered with a [status="error"] response (empty
    id) and counted in [serve.protocol_errors] — the connection stays
    usable. *)

type stats = {
  connections : int;  (** connections accepted over the daemon's life *)
  requests : int;  (** non-blank lines received (including malformed) *)
  responses : int;  (** response lines enqueued for writing *)
  protocol_errors : int;  (** lines that failed to parse as requests *)
}

val run : socket:string -> server:Server.t -> unit -> stats
(** Bind [socket] (an existing file is replaced), serve until SIGINT or
    SIGTERM (or {!request_stop}), then drain the server gracefully —
    every admitted request is answered and flushed before the socket file
    is removed.  Blocks the calling domain for the daemon's lifetime. *)

val request_stop : unit -> unit
(** Ask a running {!run} loop to shut down — what the signal handlers
    call; exposed for tests. *)
