(* Bounded submission queue with explicit backpressure.

   Producers (client connections, in-process submitters) push from any
   domain; [try_push] never blocks — a full or closed queue is an
   immediate [false], which the server turns into a [Rejected] response.
   One consumer (the dispatcher domain) pops dynamic batches: a batch
   flushes when it reaches [max] items or when [flush_s] has elapsed since
   the batch's first item was taken, whichever comes first.

   The standard library's [Condition] has no timed wait, so the time-based
   half of the flush is a short poll: once the batch is non-empty the
   consumer re-checks at sub-millisecond granularity until the size or
   time threshold trips.  The queue depth is published as a {!Metrics}
   gauge so serving load is visible in every metrics summary. *)

module Metrics = Dpoaf_exec.Metrics

type 'a t = {
  capacity : int;
  items : 'a Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
  depth_gauge : Metrics.gauge;
}

let poll_interval = 0.0002 (* 0.2 ms: fine-grained against a >= 1 ms flush *)

let create ~capacity ~gauge_name =
  if capacity < 1 then invalid_arg "Admission.create: capacity must be >= 1";
  {
    capacity;
    items = Queue.create ();
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    closed = false;
    depth_gauge = Metrics.gauge gauge_name;
  }

let publish_depth t =
  Metrics.set_gauge t.depth_gauge (float_of_int (Queue.length t.items))

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let try_push t x =
  with_lock t (fun () ->
      if t.closed || Queue.length t.items >= t.capacity then false
      else begin
        Queue.push x t.items;
        publish_depth t;
        Condition.signal t.nonempty;
        true
      end)

let depth t = with_lock t (fun () -> Queue.length t.items)

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let drain_locked t ~max acc =
  let n = ref (List.length acc) in
  let acc = ref acc in
  while !n < max && not (Queue.is_empty t.items) do
    acc := Queue.pop t.items :: !acc;
    incr n
  done;
  publish_depth t;
  !acc

let pop_one t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.items && not t.closed do
    Condition.wait t.nonempty t.mutex
  done;
  let r =
    if Queue.is_empty t.items then None
    else begin
      let x = Queue.pop t.items in
      publish_depth t;
      Some x
    end
  in
  Mutex.unlock t.mutex;
  r

let pop_batch t ~max ~flush_s =
  if max < 1 then invalid_arg "Admission.pop_batch: max must be >= 1";
  Mutex.lock t.mutex;
  (* wait (blocking) for the first item, or for close *)
  while Queue.is_empty t.items && not t.closed do
    Condition.wait t.nonempty t.mutex
  done;
  if Queue.is_empty t.items then begin
    (* closed and empty: the consumer is done *)
    Mutex.unlock t.mutex;
    None
  end
  else begin
    let batch = ref (drain_locked t ~max []) in
    let flush_at = Unix.gettimeofday () +. flush_s in
    (* keep topping the batch up until size or time flushes it; closing
       flushes immediately so drain never waits on the window *)
    let rec fill () =
      if
        List.length !batch < max
        && (not t.closed)
        && Unix.gettimeofday () < flush_at
      then begin
        Mutex.unlock t.mutex;
        Unix.sleepf poll_interval;
        Mutex.lock t.mutex;
        batch := drain_locked t ~max !batch;
        fill ()
      end
    in
    if flush_s > 0.0 then fill ();
    Mutex.unlock t.mutex;
    Some (List.rev !batch)
  end
