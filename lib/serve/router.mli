(** Prompt-affinity routing over a fleet of {!Server} replicas.

    Execution requests hash to a shard by their prompt identity — the
    (domain, task) pair for [generate]/[refine], the (domain, steps)
    text for [verify]/[score_pair] — so repeated prompts keep hitting
    the same replica's prompt-state cache and the fleet's aggregate
    cache capacity grows with the shard count.  The hash is FNV-1a/64
    over the key string: stable across runs, processes and OCaml
    versions, never [Hashtbl.hash].

    Routing never changes replies.  Every {!Engine} handler is a pure
    function of the request, so any shard count returns bit-identical
    bodies — sharding moves only cache temperature and queueing. *)

type t

val create : Server.t array -> t
(** Wrap an existing (non-empty) replica array.  The router takes no
    ownership beyond {!drain}; build each replica with its own tagged
    {!Engine} so per-shard cache metrics stay distinguishable.
    @raise Invalid_argument on an empty array. *)

val shard_for : shards:int -> Protocol.request -> int
(** The pure routing function: which of [shards] replicas handles this
    request.  Deterministic — equal prompt identity means equal shard —
    and total: ops verbs ([stats]/[health]) route to shard [0].
    @raise Invalid_argument if [shards < 1]. *)

val shard_key : Protocol.request -> string option
(** The prompt-identity string {!shard_for} hashes; [None] for the ops
    verbs.  [generate] and [refine] of the same task share a key — both
    fold the same task prompt, so they must share a cache. *)

val shard_name : int -> string
(** The conventional label for replica [i]: ["shard<i>"].  Shared by the
    CLI and benchmarks so per-shard metric names and health rows agree
    everywhere a fleet is built. *)

val shard_count : t -> int

val server : t -> int -> Server.t
(** The [i]-th replica (0-based). *)

val route : t -> Protocol.request -> Server.t
(** The replica {!submit} would use. *)

val submit_async :
  ?on_done:(Protocol.response -> unit) -> t -> Protocol.request ->
  Server.ticket
(** Route, then {!Server.submit_async} on the chosen replica; admission
    rejects (that shard's queue is full) surface exactly as they do on a
    single server. *)

val submit : t -> Protocol.request -> Protocol.response

val health : t -> Server.health
(** Aggregate view: queue depths and in-flight counts summed, draining
    if any replica is. *)

val shard_healths : t -> Protocol.shard_health list
(** Per-shard breakdown in shard order, using each replica's
    {!Server.label} (falling back to ["shard<i>"]) as the name. *)

val drain : t -> unit
(** {!Server.drain} every replica, in shard order. *)
