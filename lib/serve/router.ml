(* Prompt-affinity shard routing for a replica fleet.

   A router owns N {!Server} replicas and assigns every execution request
   to one of them by hashing the request's prompt identity — the
   (domain, task) pair for [generate]/[refine], the (domain, steps) text
   for [verify]/[score_pair].  Affinity is the point: a replica's
   prompt-state cache (and the refine explain cache behind it) only pays
   off if the same prompt keeps landing on the same replica, so the
   fleet's aggregate cache capacity scales with the shard count instead
   of every replica churning the whole prompt set through its own LRU.

   The hash is FNV-1a/64 over the key string — stable across runs and
   processes (no [Hashtbl.hash] randomization), so a request routes to
   the same shard today, tomorrow and in the qcheck property that pins
   this down.  Because every {!Engine} handler is a pure function of the
   request, routing is invisible in the responses: any shard count
   returns bit-identical bodies, only the cache temperature changes.

   Ops verbs carry no prompt; they hash to shard 0, though a daemon
   normally answers them ahead of routing altogether. *)

type t = { shards : Server.t array }

(* ---------------- pure routing function ---------------- *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a64 s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let dom = function None -> "" | Some d -> d

(* the key deliberately groups [generate] and [refine] of one task: both
   fold the same task prompt, so they must share a shard's cache entry *)
let shard_key (req : Protocol.request) =
  match req.Protocol.kind with
  | Protocol.Generate { task; domain; _ } | Protocol.Refine { task; domain; _ }
    ->
      Some (Printf.sprintf "prompt/%s/%s" (dom domain) task)
  | Protocol.Verify { steps; domain; _ } ->
      Some
        (Printf.sprintf "steps/%s/%s" (dom domain) (String.concat "\x1f" steps))
  | Protocol.Score_pair { steps_a; steps_b; domain; _ } ->
      Some
        (Printf.sprintf "steps/%s/%s\x1e%s" (dom domain)
           (String.concat "\x1f" steps_a)
           (String.concat "\x1f" steps_b))
  | Protocol.Stats _ | Protocol.Health _ -> None

let shard_for ~shards req =
  if shards < 1 then invalid_arg "Router.shard_for: shards must be >= 1";
  if shards = 1 then 0
  else
    match shard_key req with
    | None -> 0
    | Some key ->
        Int64.to_int (Int64.unsigned_rem (fnv1a64 key) (Int64.of_int shards))

(* ---------------- fleet ---------------- *)

let create shards =
  if Array.length shards = 0 then invalid_arg "Router.create: no shards";
  { shards }

let shard_count t = Array.length t.shards
let server t i = t.shards.(i)

let route t req = t.shards.(shard_for ~shards:(Array.length t.shards) req)
let submit_async ?on_done t req = Server.submit_async ?on_done (route t req) req
let submit t req = Server.submit (route t req) req

let shard_name i = Printf.sprintf "shard%d" i

let shard_healths t =
  Array.to_list
    (Array.mapi
       (fun i s ->
         let h = Server.health s in
         {
           Protocol.sh_shard =
             (match Server.label s with Some l -> l | None -> shard_name i);
           sh_queue_depth = h.Server.queue_depth;
           sh_in_flight = h.Server.in_flight_batches;
           sh_requests = Server.admitted s;
           sh_draining = h.Server.draining;
         })
       t.shards)

let health t =
  Array.fold_left
    (fun (acc : Server.health) s ->
      let h = Server.health s in
      {
        Server.queue_depth = acc.Server.queue_depth + h.Server.queue_depth;
        in_flight_batches =
          acc.Server.in_flight_batches + h.Server.in_flight_batches;
        draining = acc.Server.draining || h.Server.draining;
      })
    { Server.queue_depth = 0; in_flight_batches = 0; draining = false }
    t.shards

let drain t = Array.iter Server.drain t.shards
