module Rng = Dpoaf_util.Rng
module Trace = Dpoaf_logic.Trace
module Pool = Dpoaf_exec.Pool
module Metrics = Dpoaf_exec.Metrics
module Span = Dpoaf_exec.Trace

type config = { rollouts : int; steps : int; noise : World.noise; seed : int }

let default_config =
  {
    rollouts = 200;
    steps = 40;
    noise = { World.miss_rate = 0.02; false_rate = 0.01 };
    seed = 42;
  }

let satisfaction_rate phi words =
  Dpoaf_util.Stats.fraction (fun word -> Trace.eval_finite phi word) words

let rollouts_run = Metrics.counter "sim.rollouts"
let rollout_latency = Metrics.histogram "sim.rollout"

let evaluate ?jobs ?shield ?domain ~model ~controller ~specs config =
  (* per-domain twins of the aggregate rollout metrics, so reports can
     break simulation cost down by domain *)
  let rollouts_run_dom, rollout_latency_dom =
    match domain with
    | None -> (None, None)
    | Some d ->
        ( Some (Metrics.counter (Printf.sprintf "sim.rollouts.%s" d)),
          Some (Metrics.histogram (Printf.sprintf "sim.rollout.%s" d)) )
  in
  Span.with_span ~cat:"sim"
    ~attrs:[ ("rollouts", string_of_int config.rollouts) ]
    "sim.evaluate"
  @@ fun () ->
  Metrics.time "sim.evaluate" (fun () ->
      let rng = Rng.create config.seed in
      (* Split both per-rollout streams sequentially, in the exact order the
         sequential loop consumed them, then fan the rollouts out — the
         grounded words are identical for every worker count. *)
      let rec streams i acc =
        if i >= config.rollouts then List.rev acc
        else
          let world_rng = Rng.split rng in
          let run_rng = Rng.split rng in
          streams (i + 1) ((world_rng, run_rng) :: acc)
      in
      let words =
        Span.with_span ~cat:"sim" "sim.rollouts" @@ fun () ->
        Pool.parallel_map ?jobs
          (fun (world_rng, run_rng) ->
            let t0 = Unix.gettimeofday () in
            let world = World.create ~noise:config.noise ~model world_rng in
            let word =
              Runner.to_symbols
                (Runner.run ?shield world controller ~steps:config.steps run_rng)
            in
            let dt = Unix.gettimeofday () -. t0 in
            Metrics.observe rollout_latency dt;
            Option.iter (fun h -> Metrics.observe h dt) rollout_latency_dom;
            word)
          (streams 0 [])
      in
      Metrics.add rollouts_run config.rollouts;
      Option.iter (fun c -> Metrics.add c config.rollouts) rollouts_run_dom;
      Span.with_span ~cat:"sim" "sim.score" @@ fun () ->
      List.map (fun (name, phi) -> (name, satisfaction_rate phi words)) specs)
