module Rng = Dpoaf_util.Rng
module Trace = Dpoaf_logic.Trace
module Pool = Dpoaf_exec.Pool
module Metrics = Dpoaf_exec.Metrics

type config = { rollouts : int; steps : int; noise : World.noise; seed : int }

let default_config =
  {
    rollouts = 200;
    steps = 40;
    noise = { World.miss_rate = 0.02; false_rate = 0.01 };
    seed = 42;
  }

let satisfaction_rate phi words =
  Dpoaf_util.Stats.fraction (fun word -> Trace.eval_finite phi word) words

let rollouts_run = Metrics.counter "sim.rollouts"

let evaluate ?jobs ?shield ~model ~controller ~specs config =
  Metrics.time "sim.evaluate" (fun () ->
      let rng = Rng.create config.seed in
      (* Split both per-rollout streams sequentially, in the exact order the
         sequential loop consumed them, then fan the rollouts out — the
         grounded words are identical for every worker count. *)
      let rec streams i acc =
        if i >= config.rollouts then List.rev acc
        else
          let world_rng = Rng.split rng in
          let run_rng = Rng.split rng in
          streams (i + 1) ((world_rng, run_rng) :: acc)
      in
      let words =
        Pool.parallel_map ?jobs
          (fun (world_rng, run_rng) ->
            let world = World.create ~noise:config.noise ~model world_rng in
            Runner.to_symbols
              (Runner.run ?shield world controller ~steps:config.steps run_rng))
          (streams 0 [])
      in
      Metrics.add rollouts_run config.rollouts;
      List.map (fun (name, phi) -> (name, satisfaction_rate phi words)) specs)
