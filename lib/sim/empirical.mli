(** Empirical satisfaction rates [P_Φ] (§4.2).

    Each rollout's grounded word is checked against a specification with
    finite-trace (LTLf) semantics;
    [P_Φ = (number of sequences satisfying Φ) / (total sequences)].

    Note the finite-trace caveat: liveness obligations ([◇ …]) still open
    at the end of a rollout count as violations, so even formally verified
    controllers can score below 1.0 on liveness specifications — length the
    rollouts accordingly. *)

type config = {
  rollouts : int;
  steps : int;  (** rollout length [N] *)
  noise : World.noise;
  seed : int;
}

val default_config : config
(** 200 rollouts × 40 steps, mild perception noise (2% miss, 1% false). *)

val satisfaction_rate :
  Dpoaf_logic.Ltl.t -> Dpoaf_logic.Symbol.t array list -> float
(** [P_Φ] over already-grounded words. *)

val evaluate :
  ?jobs:int ->
  ?shield:Shield.t ->
  ?domain:string ->
  model:Dpoaf_automata.Ts.t ->
  controller:Dpoaf_automata.Fsa.t ->
  specs:(string * Dpoaf_logic.Ltl.t) list ->
  config ->
  (string * float) list
(** Run rollouts once and score every specification on them; with
    [?shield] the runs are shielded (see {!Shield}).  With [?domain]
    the aggregate [sim.rollout]/[sim.rollouts] metrics get per-domain
    twins ([sim.rollout.<domain>], [sim.rollouts.<domain>]).

    Rollouts fan out over [?jobs] workers (default
    {!Dpoaf_exec.Pool.default_jobs}); each rollout's RNG streams are split
    from the seed sequentially before the parallel region, so the rates
    are bit-for-bit identical for every worker count. *)
