(** Shared vocabulary, per-task grammars and the synthetic pre-training
    corpus — the ingredients of the "pre-trained language model" — for
    any registered domain pack (driving by default).

    The corpus mixes careful, partially careful and careless responses in
    fixed proportions, so that the MLE-trained model reproduces the paper's
    starting point: plausible instructions that satisfy roughly 60% of the
    specifications before fine-tuning. *)

type task_setup = {
  task : Dpoaf_domain.Domain.task;
  prompt : int list;  (** encoded task query *)
  grammar : Dpoaf_lm.Grammar.t;
  min_clauses : int;
  max_clauses : int;
}

type t = private {
  domain : Dpoaf_domain.Domain.t;
  vocab : Dpoaf_lm.Vocab.t;
  setups : task_setup list;
}

val build : ?domain:Dpoaf_domain.Domain.t -> unit -> t
(** One setup per task in the domain (default: the driving pack); the
    vocabulary covers all prompts and candidate steps. *)

val setup : t -> Dpoaf_domain.Domain.task -> task_setup
(** @raise Not_found for tasks outside the setup list. *)

val setup_by_id : t -> string -> task_setup
(** @raise Failure for unknown task ids, listing the valid ids. *)

val setups_of_split : t -> Dpoaf_domain.Domain.split -> task_setup list

val steps_of_tokens : t -> int list -> string list
(** Decode a response into step sentences. *)

val pretraining_examples :
  t -> Dpoaf_util.Rng.t -> per_task:int -> Dpoaf_lm.Pretrain.example list
(** Mixed-quality responses for every task (good 35% / risky 40% /
    bad 25% final steps, with 1–2 observation steps in front). *)

val pretrained_model :
  ?config:Dpoaf_lm.Model.config ->
  ?per_task:int ->
  ?epochs:int ->
  Dpoaf_util.Rng.t ->
  t ->
  Dpoaf_lm.Model.t
(** Create and MLE-train the pre-trained model. *)
