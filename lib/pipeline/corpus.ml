module Domain = Dpoaf_domain.Domain
module Vocab = Dpoaf_lm.Vocab
module Grammar = Dpoaf_lm.Grammar
module Pretrain = Dpoaf_lm.Pretrain
module Model = Dpoaf_lm.Model
module Rng = Dpoaf_util.Rng

type task_setup = {
  task : Domain.task;
  prompt : int list;
  grammar : Grammar.t;
  min_clauses : int;
  max_clauses : int;
}

type t = { domain : Domain.t; vocab : Vocab.t; setups : task_setup list }

let min_clauses = 1
let max_clauses = 5

let build ?domain () =
  let domain =
    match domain with
    | Some d -> d
    | None -> Dpoaf_domain.find_exn Dpoaf_domain.default
  in
  let (module D : Domain.S) = domain in
  let texts =
    List.concat_map
      (fun task -> Domain.query_text task :: Domain.candidate_steps domain task)
      D.tasks
  in
  let vocab = Vocab.of_texts texts in
  let setups =
    List.map
      (fun task ->
        {
          task;
          prompt = Vocab.encode vocab (Domain.query_text task);
          grammar = Grammar.of_clauses vocab (Domain.candidate_steps domain task);
          min_clauses;
          max_clauses;
        })
      D.tasks
  in
  { domain; vocab; setups }

let setup t task = List.find (fun s -> s.task.Domain.id = task.Domain.id) t.setups

let setup_by_id t id =
  match List.find_opt (fun s -> s.task.Domain.id = id) t.setups with
  | Some s -> s
  | None ->
      failwith
        (Printf.sprintf "unknown task %S in domain %S (valid: %s)" id
           (Domain.name t.domain)
           (String.concat ", "
              (List.map (fun s -> s.task.Domain.id) t.setups)))

let setups_of_split t split =
  List.filter (fun s -> s.task.Domain.split = split) t.setups

let steps_of_tokens t tokens = Grammar.steps_of_tokens t.vocab tokens

(* Compose one synthetic response.  The generic corpus skews careless: more
   than half the responses are a bare action with no observation steps
   (these controllers act blindly and fail both safety and liveness rules,
   landing the pre-trained model near the paper's ≈60% starting point);
   the rest prepend one or two observations to a final step of mixed
   quality. *)
let synth_response rng t setup =
  let (module D : Domain.S) = t.domain in
  let observations = D.observations setup.task in
  let finals = D.finals setup.task in
  let with_quality q = List.filter (fun s -> s.Domain.quality = q) finals in
  let pick_final weights =
    let pools =
      List.filter_map
        (fun (steps, w) -> if steps = [] then None else Some (steps, w))
        weights
    in
    (Rng.choice_list rng (Rng.weighted rng pools)).Domain.text
  in
  if Rng.bool rng 0.55 then
    (* careless: action step only *)
    [
      pick_final
        [ (with_quality Domain.Bad, 0.6); (with_quality Domain.Risky, 0.4) ];
    ]
  else begin
    let final =
      pick_final
        [
          (with_quality Domain.Good, 0.35);
          (with_quality Domain.Risky, 0.40);
          (with_quality Domain.Bad, 0.25);
        ]
    in
    let n_obs = 1 + Rng.int rng 2 in
    let obs =
      Array.to_list
        (Rng.sample_without_replacement rng n_obs (Array.of_list observations))
    in
    List.map (fun s -> s.Domain.text) obs @ [ final ]
  end

let pretraining_examples t rng ~per_task =
  List.concat_map
    (fun setup ->
      List.init per_task (fun _ ->
          let steps = synth_response rng t setup in
          {
            Pretrain.prompt = setup.prompt;
            tokens = Grammar.tokens_of_steps t.vocab steps;
            grammar = setup.grammar;
            min_clauses = setup.min_clauses;
            max_clauses = setup.max_clauses;
          }))
    t.setups

let pretrained_model ?(config = Model.default_config) ?(per_task = 40) ?(epochs = 30)
    rng t =
  let model = Model.create rng config t.vocab in
  let examples = pretraining_examples t rng ~per_task in
  let _losses = Pretrain.train model examples ~epochs ~batch:16 ~lr:0.02 rng in
  model
