module Evaluate = Dpoaf_driving.Evaluate
module Models = Dpoaf_driving.Models
module Tasks = Dpoaf_driving.Tasks
module Cache = Dpoaf_exec.Cache
module Metrics = Dpoaf_exec.Metrics

(* (task id, tokens, hardened?) — the full identity of a scoring request *)
type key = string * int list * bool

type t = {
  model : Dpoaf_automata.Ts.t;
  cache : (key, int) Cache.t;
}

let responses_scored = Metrics.counter "feedback.responses_scored"

let create ?model () =
  let model = match model with Some m -> m | None -> Models.universal () in
  (* Pre-build shared read-only structures so worker domains never race on
     their first-use initialization. *)
  ignore (Evaluate.lexicon ());
  { model; cache = Cache.create ~name:"feedback.scores" () }

let score_steps t ~task_id:_ steps =
  Evaluate.count_specs_of_steps ~model:t.model steps

let count_specs_of_clauses t clauses =
  let controller = Dpoaf_lang.Glm2fsa.controller ~name:"response" clauses in
  Evaluate.count_specs ~model:t.model controller

let cached t key compute =
  Metrics.incr responses_scored;
  Cache.find_or_add t.cache key compute

let clauses_of_tokens corpus tokens =
  let steps = Corpus.steps_of_tokens corpus tokens in
  fst (Dpoaf_lang.Step_parser.parse_steps (Evaluate.lexicon ()) steps)

let score_tokens t ~corpus setup tokens =
  cached t (setup.Corpus.task.Tasks.id, tokens, false) (fun () ->
      let steps = Corpus.steps_of_tokens corpus tokens in
      score_steps t ~task_id:setup.Corpus.task.Tasks.id steps)

let score_tokens_hardened t ~corpus setup tokens =
  cached t (setup.Corpus.task.Tasks.id, tokens, true) (fun () ->
      let clauses = clauses_of_tokens corpus tokens in
      let hardened =
        Dpoaf_lang.Repair.harden
          ~specs:(List.map snd Dpoaf_driving.Specs.all)
          ~all_actions:Dpoaf_driving.Vocab.actions clauses
      in
      count_specs_of_clauses t hardened)

let cache_stats t = Cache.stats t.cache
