module Domain = Dpoaf_domain.Domain
module Cache = Dpoaf_exec.Cache
module Metrics = Dpoaf_exec.Metrics
module Trace = Dpoaf_exec.Trace

(* (task id, tokens, hardened?) — the full identity of a scoring request *)
type key = string * int list * bool

type profile = {
  satisfied : string list;
  violated : string list;
  vacuous : string list;
}

type t = {
  domain : Domain.t;
  model : Dpoaf_automata.Ts.t;
  cache : (key, profile) Cache.t;
  spec_names : string list;
  (* aggregate across domains + a per-domain twin, so `dpoaf_cli report`
     can break the feedback tables down by domain *)
  responses_scored_dom : Metrics.counter;
  score_latency_dom : Metrics.histogram;
  violation_counters : (string * Metrics.counter) list;
  violation_counters_dom : (string * Metrics.counter) list;
}

let responses_scored = Metrics.counter "feedback.responses_scored"
let score_latency = Metrics.histogram "feedback.score"

let profile_of_domain t (p : Domain.profile) =
  {
    satisfied = p.Domain.satisfied;
    violated =
      List.filter (fun n -> not (List.mem n p.Domain.satisfied)) t.spec_names;
    vacuous = p.Domain.vacuous;
  }

let create ?model ?domain () =
  let domain =
    match domain with
    | Some d -> d
    | None -> Dpoaf_domain.find_exn Dpoaf_domain.default
  in
  let (module D : Domain.S) = domain in
  let model = match model with Some m -> m | None -> D.universal () in
  (* Pre-build shared read-only structures so worker domains never race on
     their first-use initialization. *)
  ignore (D.lexicon ());
  let spec_names = Domain.spec_names domain in
  {
    domain;
    model;
    cache = Cache.create ~name:"feedback.scores" ();
    spec_names;
    responses_scored_dom =
      Metrics.counter (Printf.sprintf "feedback.responses_scored.%s" D.name);
    score_latency_dom =
      Metrics.histogram (Printf.sprintf "feedback.score.%s" D.name);
    violation_counters =
      List.map
        (fun n -> (n, Metrics.counter ("feedback.violations." ^ n)))
        spec_names;
    violation_counters_dom =
      List.map
        (fun n ->
          ( n,
            Metrics.counter
              (Printf.sprintf "feedback.violations.%s.%s" D.name n) ))
        spec_names;
  }

let domain t = t.domain

let score_steps t ~task_id:_ steps =
  let (module D : Domain.S) = t.domain in
  List.length (D.profile_of_steps ~model:t.model steps).Domain.satisfied

let profile_of_clauses t clauses =
  let (module D : Domain.S) = t.domain in
  let controller = Dpoaf_lang.Glm2fsa.controller ~name:"response" clauses in
  D.profile_of_controller ~model:t.model controller

(* Every scoring request passes through here: the span and the per-spec
   violation counters fire per request (hit or miss), reflecting the
   sampled response distribution; the latency histograms observe only
   actual verification work (cache misses). *)
let cached t ~task_id key compute =
  Metrics.incr responses_scored;
  Metrics.incr t.responses_scored_dom;
  Trace.with_span ~cat:"feedback" ~attrs:[ ("task", task_id) ] "feedback.score"
    (fun () ->
      let p =
        Cache.find_or_add t.cache key (fun () ->
            let t0 = Unix.gettimeofday () in
            let domain_profile = compute () in
            let dt = Unix.gettimeofday () -. t0 in
            Metrics.observe score_latency dt;
            Metrics.observe t.score_latency_dom dt;
            profile_of_domain t domain_profile)
      in
      List.iter
        (fun name ->
          Metrics.incr (List.assoc name t.violation_counters);
          Metrics.incr (List.assoc name t.violation_counters_dom))
        p.violated;
      p)

let clauses_of_tokens t corpus tokens =
  let (module D : Domain.S) = t.domain in
  let steps = Corpus.steps_of_tokens corpus tokens in
  fst (Dpoaf_lang.Step_parser.parse_steps (D.lexicon ()) steps)

let profile_tokens t ~corpus setup tokens =
  let (module D : Domain.S) = t.domain in
  let task_id = setup.Corpus.task.Domain.id in
  cached t ~task_id (task_id, tokens, false) (fun () ->
      let steps = Corpus.steps_of_tokens corpus tokens in
      D.profile_of_steps ~model:t.model steps)

let profile_tokens_hardened t ~corpus setup tokens =
  let (module D : Domain.S) = t.domain in
  let task_id = setup.Corpus.task.Domain.id in
  cached t ~task_id (task_id, tokens, true) (fun () ->
      let clauses = clauses_of_tokens t corpus tokens in
      let hardened =
        Dpoaf_lang.Repair.harden
          ~specs:(List.map snd (D.specs ()))
          ~all_actions:D.actions clauses
      in
      profile_of_clauses t hardened)

let score_tokens t ~corpus setup tokens =
  List.length (profile_tokens t ~corpus setup tokens).satisfied

let score_tokens_hardened t ~corpus setup tokens =
  List.length (profile_tokens_hardened t ~corpus setup tokens).satisfied

let cache_stats t = Cache.stats t.cache
