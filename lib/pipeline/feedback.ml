module Evaluate = Dpoaf_driving.Evaluate
module Models = Dpoaf_driving.Models
module Tasks = Dpoaf_driving.Tasks
module Cache = Dpoaf_exec.Cache
module Metrics = Dpoaf_exec.Metrics
module Trace = Dpoaf_exec.Trace

(* (task id, tokens, hardened?) — the full identity of a scoring request *)
type key = string * int list * bool

type profile = {
  satisfied : string list;
  violated : string list;
  vacuous : string list;
}

type t = {
  model : Dpoaf_automata.Ts.t;
  cache : (key, profile) Cache.t;
}

let spec_names = List.map fst Dpoaf_driving.Specs.all

let responses_scored = Metrics.counter "feedback.responses_scored"
let score_latency = Metrics.histogram "feedback.score"

(* one violation counter per rule-book specification, interned once at
   module init (single-domain), sampled by `dpoaf_cli report` *)
let violation_counters =
  List.map (fun n -> (n, Metrics.counter ("feedback.violations." ^ n))) spec_names

let profile_of_eval (p : Evaluate.profile) =
  {
    satisfied = p.Evaluate.satisfied;
    violated =
      List.filter (fun n -> not (List.mem n p.Evaluate.satisfied)) spec_names;
    vacuous = p.Evaluate.vacuous;
  }

let create ?model () =
  let model = match model with Some m -> m | None -> Models.universal () in
  (* Pre-build shared read-only structures so worker domains never race on
     their first-use initialization. *)
  ignore (Evaluate.lexicon ());
  { model; cache = Cache.create ~name:"feedback.scores" () }

let score_steps t ~task_id:_ steps =
  Evaluate.count_specs_of_steps ~model:t.model steps

let profile_of_clauses t clauses =
  let controller = Dpoaf_lang.Glm2fsa.controller ~name:"response" clauses in
  Evaluate.profile_of_controller ~model:t.model controller

(* Every scoring request passes through here: the span and the per-spec
   violation counters fire per request (hit or miss), reflecting the
   sampled response distribution; the latency histogram observes only
   actual verification work (cache misses). *)
let cached t ~task_id key compute =
  Metrics.incr responses_scored;
  Trace.with_span ~cat:"feedback" ~attrs:[ ("task", task_id) ] "feedback.score"
    (fun () ->
      let p =
        Cache.find_or_add t.cache key (fun () ->
            let t0 = Unix.gettimeofday () in
            let eval_profile = compute () in
            Metrics.observe score_latency (Unix.gettimeofday () -. t0);
            profile_of_eval eval_profile)
      in
      List.iter
        (fun name -> Metrics.incr (List.assoc name violation_counters))
        p.violated;
      p)

let clauses_of_tokens corpus tokens =
  let steps = Corpus.steps_of_tokens corpus tokens in
  fst (Dpoaf_lang.Step_parser.parse_steps (Evaluate.lexicon ()) steps)

let profile_tokens t ~corpus setup tokens =
  let task_id = setup.Corpus.task.Tasks.id in
  cached t ~task_id (task_id, tokens, false) (fun () ->
      let steps = Corpus.steps_of_tokens corpus tokens in
      Evaluate.profile_of_steps ~model:t.model steps)

let profile_tokens_hardened t ~corpus setup tokens =
  let task_id = setup.Corpus.task.Tasks.id in
  cached t ~task_id (task_id, tokens, true) (fun () ->
      let clauses = clauses_of_tokens corpus tokens in
      let hardened =
        Dpoaf_lang.Repair.harden
          ~specs:(List.map snd Dpoaf_driving.Specs.all)
          ~all_actions:Dpoaf_driving.Vocab.actions clauses
      in
      profile_of_clauses t hardened)

let score_tokens t ~corpus setup tokens =
  List.length (profile_tokens t ~corpus setup tokens).satisfied

let score_tokens_hardened t ~corpus setup tokens =
  List.length (profile_tokens_hardened t ~corpus setup tokens).satisfied

let cache_stats t = Cache.stats t.cache
