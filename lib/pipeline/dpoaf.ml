module Domain = Dpoaf_domain.Domain
module Model = Dpoaf_lm.Model
module Sampler = Dpoaf_lm.Sampler
module Pref_data = Dpoaf_dpo.Pref_data
module Trainer = Dpoaf_dpo.Trainer
module Rng = Dpoaf_util.Rng
module Stats = Dpoaf_util.Stats
module Pool = Dpoaf_exec.Pool
module Metrics = Dpoaf_exec.Metrics
module Trace = Dpoaf_exec.Trace

type config = {
  responses_per_task : int;
  temperature : float;
  eval_samples : int;
  trainer : Trainer.config;
}

let default_config =
  {
    responses_per_task = 12;
    temperature = 1.0;
    eval_samples = 8;
    trainer = Trainer.default_config;
  }

(* Sampling consumes the shared RNG stream and stays sequential — the token
   sequences are therefore identical for every worker count.  Scoring is a
   pure function of the tokens (verification + shared cache), so it fans
   out across the pool, order-preserved by [parallel_map]. *)
let sample_scored ?(harden = false) ?jobs corpus feedback model rng ~m ~temperature
    setup =
  let task = setup.Corpus.task.Domain.id in
  let sampled =
    Trace.with_span ~cat:"pipeline" ~attrs:[ ("task", task) ] "pipeline.sample"
      (fun () ->
        let snap = Sampler.snapshot model in
        List.init m (fun _ ->
            Sampler.sample snap rng ~prompt:setup.Corpus.prompt
              ~grammar:setup.Corpus.grammar ~min_clauses:setup.Corpus.min_clauses
              ~max_clauses:setup.Corpus.max_clauses ~temperature ()))
  in
  let profile =
    if harden then Feedback.profile_tokens_hardened else Feedback.profile_tokens
  in
  let profiles =
    Trace.with_span ~cat:"pipeline" ~attrs:[ ("task", task) ] "pipeline.score"
      (fun () ->
        Pool.parallel_map ?jobs
          (fun tokens -> profile feedback ~corpus setup tokens)
          sampled)
  in
  List.map2
    (fun tokens (p : Feedback.profile) ->
      { Pref_data.tokens; score = List.length p.Feedback.satisfied;
        satisfied = p.Feedback.satisfied; vacuous = p.Feedback.vacuous })
    sampled profiles

(* Pairs whose whole margin is vacuously satisfied train on noise; the
   static analyzer flags them in provenance and this counter sizes the
   problem per run (surfaced by `dpoaf_cli report`). *)
let vacuous_margin_pairs = Metrics.counter "feedback.vacuous_margin"

let collect_pairs ?jobs ?(explain = false) corpus feedback model rng ~m
    ?(temperature = 1.0) split =
  Trace.with_span ~cat:"pipeline" "pipeline.collect_pairs" @@ fun () ->
  Metrics.time "pipeline.collect_pairs" (fun () ->
      (* One losing response can appear in many mined pairs; memoize by
         token sequence so the (cold-path) explainer runs once each. *)
      let explain_cb =
        if not explain then None
        else begin
          let memo = Hashtbl.create 64 in
          Some
            (fun (s : Pref_data.scored) ->
              match Hashtbl.find_opt memo s.Pref_data.tokens with
              | Some es -> es
              | None ->
                  let steps = Corpus.steps_of_tokens corpus s.Pref_data.tokens in
                  let es =
                    List.map
                      (fun (e : Dpoaf_analysis.Explain.t) ->
                        ( e.Dpoaf_analysis.Explain.spec,
                          e.Dpoaf_analysis.Explain.text ))
                      (Domain.explain_steps corpus.Corpus.domain steps)
                  in
                  Hashtbl.add memo s.Pref_data.tokens es;
                  es)
        end
      in
      List.concat_map
        (fun setup ->
          let scored =
            sample_scored ?jobs corpus feedback model rng ~m ~temperature setup
          in
          let pairs =
            Pref_data.pairs_of_scored ?explain:explain_cb
              ~task_id:setup.Corpus.task.Domain.id
              ~prompt:setup.Corpus.prompt ~grammar:setup.Corpus.grammar
              ~min_clauses:setup.Corpus.min_clauses
              ~max_clauses:setup.Corpus.max_clauses scored
          in
          List.iter
            (fun p ->
              if Pref_data.vacuous_margin p then Metrics.incr vacuous_margin_pairs)
            pairs;
          pairs)
        (Corpus.setups_of_split corpus split))

let mean_specs_satisfied ?(harden = false) ?jobs corpus feedback model rng ~samples
    ?(temperature = 1.0) split =
  Trace.with_span ~cat:"pipeline" "pipeline.evaluate" @@ fun () ->
  Metrics.time "pipeline.evaluate" (fun () ->
      let setups = Corpus.setups_of_split corpus split in
      let per_task =
        List.map
          (fun setup ->
            let scored =
              sample_scored ~harden ?jobs corpus feedback model rng ~m:samples
                ~temperature setup
            in
            Stats.mean (List.map (fun s -> float_of_int s.Pref_data.score) scored))
          setups
      in
      Stats.mean per_task)

type checkpoint_eval = { epoch : int; training_score : float; validation_score : float }

type result = {
  pairs_used : int;
  runs : Trainer.run list;
  curve : checkpoint_eval list;
}

(* ---------------- iterative DPO-AF ---------------- *)

type round_eval = {
  round : int;
  pairs : int;
  training_score : float;
  validation_score : float;
}

let run_iterative ?(config = default_config) ?jobs ~rounds ~corpus ~feedback
    ~reference rng =
  let eval policy =
    let score split =
      mean_specs_satisfied ?jobs corpus feedback policy (Rng.split rng)
        ~samples:config.eval_samples ~temperature:config.temperature split
    in
    (score Domain.Training, score Domain.Validation)
  in
  let rec go round policy acc =
    if round > rounds then (List.rev acc, policy)
    else begin
      let pairs =
        collect_pairs ?jobs corpus feedback policy rng ~m:config.responses_per_task
          ~temperature:config.temperature Domain.Training
      in
      (* each round anchors the DPO reference at the current policy *)
      let run = Trainer.train ~reference:policy ~pairs config.trainer ~seed:round in
      let policy' = run.Trainer.final in
      let t, v = eval policy' in
      go (round + 1) policy'
        ({ round; pairs = List.length pairs; training_score = t; validation_score = v }
         :: acc)
    end
  in
  let t0, v0 = eval reference in
  let rounds_out, final = go 1 reference [] in
  ( { round = 0; pairs = 0; training_score = t0; validation_score = v0 } :: rounds_out,
    final )

(* ---------------- REINFORCE baseline glue ---------------- *)

let reinforce_tasks corpus feedback split =
  List.map
    (fun setup ->
      {
        Dpoaf_dpo.Reinforce.prompt = setup.Corpus.prompt;
        grammar = setup.Corpus.grammar;
        min_clauses = setup.Corpus.min_clauses;
        max_clauses = setup.Corpus.max_clauses;
        reward =
          (fun tokens ->
            float_of_int (Feedback.score_tokens feedback ~corpus setup tokens)
            /. float_of_int (Domain.spec_count corpus.Corpus.domain));
      })
    (Corpus.setups_of_split corpus split)

let run ?(config = default_config) ?jobs ?sink ~corpus ~feedback ~reference ~seeds
    rng =
  let pairs =
    collect_pairs ?jobs corpus feedback reference rng ~m:config.responses_per_task
      ~temperature:config.temperature Domain.Training
  in
  let runs =
    Trace.with_span ~cat:"pipeline" "pipeline.train" @@ fun () ->
    Metrics.time "pipeline.train" (fun () ->
        Trainer.train_seeds ?jobs ?sink ~reference ~pairs config.trainer ~seeds)
  in
  let curve =
    match runs with
    | [] -> []
    | first :: _ ->
        List.map
          (fun (epoch, model) ->
            let eval split =
              mean_specs_satisfied ?jobs corpus feedback model (Rng.split rng)
                ~samples:config.eval_samples ~temperature:config.temperature split
            in
            {
              epoch;
              training_score = eval Domain.Training;
              validation_score = eval Domain.Validation;
            })
          first.Trainer.checkpoints
  in
  { pairs_used = List.length pairs; runs; curve }
