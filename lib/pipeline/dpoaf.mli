(** The end-to-end DPO-AF pipeline (Figure 2):

    pre-trained model → sample responses per task prompt → align & compile
    controllers → verify against the rule book → rank → preference pairs →
    DPO fine-tuning (LoRA) → checkpoint evaluation. *)

type config = {
  responses_per_task : int;  (** [m] samples per prompt *)
  temperature : float;
  eval_samples : int;  (** responses sampled per task when evaluating *)
  trainer : Dpoaf_dpo.Trainer.config;
}

val default_config : config

val collect_pairs :
  ?jobs:int ->
  ?explain:bool ->
  Corpus.t ->
  Feedback.t ->
  Dpoaf_lm.Model.t ->
  Dpoaf_util.Rng.t ->
  m:int ->
  ?temperature:float ->
  Dpoaf_domain.Domain.split ->
  Dpoaf_dpo.Pref_data.pair list
(** Sample [m] responses per task of the split, score each by formal
    verification, and mine all distinct-score pairs (§4.3).

    Sampling is sequential on the given RNG; scoring fans out over
    [?jobs] workers (default {!Dpoaf_exec.Pool.default_jobs}) through the
    order-preserving scheduler, so the result is identical for every
    worker count.

    [explain] (default false) additionally runs the counterexample
    explainer ({!Dpoaf_analysis.Explain} via
    {!Dpoaf_domain.Domain.explain_steps}) on each pair's losing response
    and records the margin-spec explanations in the pair's provenance.
    The explainer re-checks each distinct loser once (memoized by token
    sequence); leave it off in throughput-sensitive loops. *)

val mean_specs_satisfied :
  ?harden:bool ->
  ?jobs:int ->
  Corpus.t ->
  Feedback.t ->
  Dpoaf_lm.Model.t ->
  Dpoaf_util.Rng.t ->
  samples:int ->
  ?temperature:float ->
  Dpoaf_domain.Domain.split ->
  float
(** Average number of the domain’s specifications satisfied by responses sampled
    from the model, over the split's tasks — the y-axis of Figure 9.
    With [~harden:true] each response's controller is first repaired with
    {!Dpoaf_lang.Repair.harden} (the post-hoc baseline). *)

(** {1 Iterative DPO-AF}

    The paper notes that automated feedback allows collecting pairs "until
    the language model converges"; this loop re-samples from the updated
    policy each round, anchoring the DPO reference at the round's start. *)

type round_eval = {
  round : int;
  pairs : int;  (** pairs mined this round (0 for the round-0 baseline) *)
  training_score : float;
  validation_score : float;
}

val run_iterative :
  ?config:config ->
  ?jobs:int ->
  rounds:int ->
  corpus:Corpus.t ->
  feedback:Feedback.t ->
  reference:Dpoaf_lm.Model.t ->
  Dpoaf_util.Rng.t ->
  round_eval list * Dpoaf_lm.Model.t

val reinforce_tasks :
  Corpus.t -> Feedback.t -> Dpoaf_domain.Domain.split -> Dpoaf_dpo.Reinforce.task list
(** Verifier-reward tasks for the {!Dpoaf_dpo.Reinforce} baseline
    (reward = satisfied / spec count). *)

type checkpoint_eval = {
  epoch : int;
  training_score : float;
  validation_score : float;
}

type result = {
  pairs_used : int;
  runs : Dpoaf_dpo.Trainer.run list;  (** one per seed *)
  curve : checkpoint_eval list;  (** from the first run's checkpoints *)
}

val run :
  ?config:config ->
  ?jobs:int ->
  ?sink:Dpoaf_dpo.Trainer.sink ->
  corpus:Corpus.t ->
  feedback:Feedback.t ->
  reference:Dpoaf_lm.Model.t ->
  seeds:int list ->
  Dpoaf_util.Rng.t ->
  result
(** The full experiment: mine pairs from training tasks, DPO-train per
    seed, and evaluate every checkpoint of the first run on training and
    validation tasks.  [?sink] streams per-step training telemetry
    (see {!Dpoaf_dpo.Trainer.file_sink}). *)
