(** Automated verification feedback with memoization and provenance.

    Scoring a response means: decode tokens to steps, align and compile
    with GLM2FSA, implement in the world model, count satisfied
    specifications (§4.2).  Distinct responses recur constantly across
    sampling rounds and checkpoints, so verdicts are cached by
    (task, tokens) — and the cached value is the full {e profile} (which
    of the rule book's specifications were satisfied and which violated),
    not just the count, so every preference pair can be explained after
    the fact.

    Telemetry: each scoring request runs inside a [feedback.score] span
    (when {!Dpoaf_exec.Trace} is enabled), actual verification work (cache
    misses) feeds the [feedback.score] latency histogram plus its
    per-domain twin [feedback.score.<domain>], and every violated
    specification bumps both [feedback.violations.<spec>] and
    [feedback.violations.<domain>.<spec>] — the sources of the
    spec-violation tables in [dpoaf_cli report]. *)

type t

type profile = {
  satisfied : string list;  (** spec names, in rule-book order *)
  violated : string list;  (** the complementary names, same order *)
  vacuous : string list;
      (** subset of [satisfied] holding only vacuously — the antecedent of
          the specification never triggers in the product
          ({!Dpoaf_analysis.Vacuity}); such "satisfactions" carry no
          information about the response's behaviour *)
}
(** Which of the domain's specifications a response's controller
    satisfied.  Invariant: [satisfied] and [violated] partition the rule
    book, so [List.length satisfied] is exactly the response's score;
    [vacuous ⊆ satisfied]. *)

val create :
  ?model:Dpoaf_automata.Ts.t -> ?domain:Dpoaf_domain.Domain.t -> unit -> t
(** [domain] defaults to the driving pack; [model] defaults to the
    domain's universal model (the paper integrates all scenario models
    for verification). *)

val domain : t -> Dpoaf_domain.Domain.t

val score_steps : t -> task_id:string -> string list -> int
(** Number of the domain's specifications satisfied by the steps'
    controller. *)

val profile_tokens : t -> corpus:Corpus.t -> Corpus.task_setup -> int list -> profile
(** Verify a token-level response and return its full spec profile
    (cached). *)

val profile_tokens_hardened :
  t -> corpus:Corpus.t -> Corpus.task_setup -> int list -> profile
(** Profile after specification-guided repair ({!Dpoaf_lang.Repair.harden})
    of the response's clauses — the post-hoc hardening baseline. *)

val score_tokens : t -> corpus:Corpus.t -> Corpus.task_setup -> int list -> int
(** [List.length (profile_tokens …).satisfied] — same cached path. *)

val score_tokens_hardened :
  t -> corpus:Corpus.t -> Corpus.task_setup -> int list -> int

val cache_stats : t -> Dpoaf_exec.Cache.stats
(** Hits, misses, evictions and current size of the verification cache —
    for reporting verification cost.  The cache is the shared
    {!Dpoaf_exec.Cache}, so scoring is safe from any worker domain. *)
