(** Automated verification feedback with memoization.

    Scoring a response means: decode tokens to steps, align and compile
    with GLM2FSA, implement in the world model, count satisfied
    specifications (§4.2).  Distinct responses recur constantly across
    sampling rounds and checkpoints, so verdict counts are cached by
    (task, tokens). *)

type t

val create : ?model:Dpoaf_automata.Ts.t -> unit -> t
(** [model] defaults to the universal model (the paper integrates all
    scenario models for verification). *)

val score_steps : t -> task_id:string -> string list -> int
(** Number of the 15 specifications satisfied by the steps' controller. *)

val score_tokens : t -> corpus:Corpus.t -> Corpus.task_setup -> int list -> int
(** Score a token-level response (cached). *)

val score_tokens_hardened :
  t -> corpus:Corpus.t -> Corpus.task_setup -> int list -> int
(** Score a response after specification-guided repair
    ({!Dpoaf_lang.Repair.harden}) of its clauses — the post-hoc hardening
    baseline. *)

val cache_stats : t -> Dpoaf_exec.Cache.stats
(** Hits, misses, evictions and current size of the verification cache —
    for reporting verification cost.  The cache is the shared
    {!Dpoaf_exec.Cache}, so scoring is safe from any worker domain. *)
