module Ltl = Dpoaf_logic.Ltl
module Symbol = Dpoaf_logic.Symbol
module Ts = Dpoaf_automata.Ts

let dead_states (m : Ts.t) =
  List.filter
    (fun q -> Ts.successors m q = [])
    (List.init (Ts.n_states m) Fun.id)

let uncovered_atoms ~specs ?(ignore = Symbol.empty) (m : Ts.t) =
  let spec_atoms =
    List.fold_left
      (fun acc (_, phi) -> Symbol.union acc (Ltl.atoms phi))
      Symbol.empty specs
  in
  Symbol.diff (Symbol.diff spec_atoms ignore) (Ts.propositions m)

let lint ?(specs = []) ?ignore ?(coverage = true) (m : Ts.t) =
  let artifact = Diagnostic.Model m.Ts.name in
  let dead =
    List.map
      (fun q ->
        Diagnostic.make ~code:"MDL001" ~severity:Diagnostic.Error ~artifact
          ~witness:m.Ts.state_names.(q)
          (Printf.sprintf
             "state %s has no successor: LTL is interpreted over infinite \
              traces, so verification against this model silently stutters"
             m.Ts.state_names.(q)))
      (dead_states m)
  in
  let uncovered =
    if not coverage then []
    else
      List.map
        (fun atom ->
          Diagnostic.make ~code:"MDL002" ~severity:Diagnostic.Error ~artifact
            ~witness:atom
            (Printf.sprintf
               "atom %S is used by the rule book but never emitted by any \
                state of %s: every specification guarded on it degenerates"
               atom m.Ts.name))
        (Symbol.elements (uncovered_atoms ~specs ?ignore m))
  in
  Diagnostic.sort (dead @ uncovered)
