(** Per-controller vacuity: specs "satisfied" only because their trigger
    never occurs in the closed loop.

    A specification [□(a ⇒ c)] holds vacuously for controller [C] in model
    [M] when no reachable state of [M ⊗ C] satisfies [a]: the model checker
    reports [Holds], but the verdict says nothing about [C]'s behaviour.
    Preference pairs whose entire margin is vacuous carry a corrupted
    training signal — {!Dpoaf_pipeline.Feedback} flags them through this
    module. *)

val triggered_specs :
  model:Dpoaf_automata.Ts.t ->
  controller:Dpoaf_automata.Fsa.t ->
  specs:(string * Dpoaf_logic.Ltl.t) list ->
  string list
(** Names of specs whose antecedent some reachable product state triggers.
    Specs without a propositional [□(a ⇒ c)] shape are conservatively
    counted as triggered (never reported vacuous). *)

val vacuously_satisfied :
  model:Dpoaf_automata.Ts.t ->
  controller:Dpoaf_automata.Fsa.t ->
  specs:(string * Dpoaf_logic.Ltl.t) list ->
  satisfied:string list ->
  string list
(** The subset of [satisfied] whose antecedent never triggers — in
    rule-book order (the order of [satisfied]). *)

val diagnostics :
  model:Dpoaf_automata.Ts.t ->
  controller:Dpoaf_automata.Fsa.t ->
  specs:(string * Dpoaf_logic.Ltl.t) list ->
  satisfied:string list ->
  Diagnostic.t list
(** One [VAC001] (info) diagnostic per vacuously satisfied spec, with the
    spec name as witness. *)
