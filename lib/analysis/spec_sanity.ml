module Ltl = Dpoaf_logic.Ltl
module Symbol = Dpoaf_logic.Symbol
module Fsa = Dpoaf_automata.Fsa
module Ts = Dpoaf_automata.Ts
module Sat = Dpoaf_automata.Satisfiability

let rec propositional = function
  | Ltl.True | Ltl.False | Ltl.Atom _ -> true
  | Ltl.Not a -> propositional a
  | Ltl.And (a, b) | Ltl.Or (a, b) | Ltl.Implies (a, b) ->
      propositional a && propositional b
  | Ltl.Next _ | Ltl.Until _ | Ltl.Release _ | Ltl.Eventually _ | Ltl.Always _
    ->
      false

(* Propositional LTL shares its boolean structure with controller guards,
   so antecedent reachability reuses the exact DNF engine of {!Guards}. *)
let rec guard_of_prop = function
  | Ltl.True -> Some Fsa.Gtrue
  | Ltl.False -> Some (Fsa.Gnot Fsa.Gtrue)
  | Ltl.Atom a -> Some (Fsa.Gatom a)
  | Ltl.Not a -> Option.map (fun g -> Fsa.Gnot g) (guard_of_prop a)
  | Ltl.And (a, b) -> map2 (fun x y -> Fsa.Gand (x, y)) a b
  | Ltl.Or (a, b) -> map2 (fun x y -> Fsa.Gor (x, y)) a b
  | Ltl.Implies (a, b) -> map2 (fun x y -> Fsa.Gor (Fsa.Gnot x, y)) a b
  | _ -> None

and map2 f a b =
  match (guard_of_prop a, guard_of_prop b) with
  | Some x, Some y -> Some (f x y)
  | _ -> None

let antecedent = function
  | Ltl.Always (Ltl.Implies (a, _)) when propositional a -> Some a
  | _ -> None

let unsatisfiable phi = not (Sat.is_satisfiable phi)

let tautological phi = not (Sat.is_satisfiable (Ltl.Not phi))

(* φi implies φj (as LTL validity) iff φi ∧ ¬φj has no model — one tableau
   emptiness check per ordered pair. *)
let implies phi_i phi_j = not (Sat.is_satisfiable (Ltl.And (phi_i, Ltl.Not phi_j)))

let implications specs =
  List.concat_map
    (fun (ni, pi) ->
      List.filter_map
        (fun (nj, pj) ->
          if ni <> nj && implies pi pj then Some (ni, nj) else None)
        specs)
    specs

let reachable_labels (m : Ts.t) =
  let seen = Array.make (Ts.n_states m) false in
  let rec visit q =
    if not seen.(q) then begin
      seen.(q) <- true;
      List.iter visit (Ts.successors m q)
    end
  in
  List.iter visit m.Ts.initial;
  List.filteri (fun q _ -> seen.(q)) (Array.to_list m.Ts.labels)

(* A spec of shape □(a ⇒ c) with propositional [a] is vacuous against a
   world model when no reachable state can trigger [a] — atoms in [free]
   (the controller's action atoms) are unconstrained, everything else is
   fixed by the state label.  Such a spec holds for any controller, so it
   contributes pure noise to the ranking feedback. *)
let vacuous_in_model ~model ?(free = Symbol.empty) phi =
  match Option.bind (antecedent phi) guard_of_prop with
  | None -> false
  | Some g ->
      not
        (List.exists
           (fun label -> Guards.satisfiable_under ~free label g)
           (reachable_labels model))

let check ?model ?(free = Symbol.empty) ?(pairwise = true) specs =
  let diag name ~code ~severity ?witness msg =
    Diagnostic.make ~code ~severity ~artifact:(Diagnostic.Spec name) ?witness msg
  in
  let per_spec =
    List.concat_map
      (fun (name, phi) ->
        let unsat =
          if unsatisfiable phi then
            [
              diag name ~code:"SPEC001" ~severity:Diagnostic.Error
                (Printf.sprintf
                   "%s is unsatisfiable: no behaviour can ever satisfy it, so \
                    every controller fails it"
                   (Ltl.to_string phi));
            ]
          else []
        in
        let taut =
          if (not (unsatisfiable phi)) && tautological phi then
            [
              diag name ~code:"SPEC002" ~severity:Diagnostic.Error
                (Printf.sprintf
                   "%s is a tautology: every controller satisfies it, so it \
                    contributes no ranking signal"
                   (Ltl.to_string phi));
            ]
          else []
        in
        let vac =
          match model with
          | Some m when vacuous_in_model ~model:m ~free phi ->
              [
                diag name ~code:"SPEC004" ~severity:Diagnostic.Warning
                  ~witness:(m.Ts.name)
                  (Printf.sprintf
                     "antecedent of %s can never trigger in model %s: the \
                      specification is vacuously satisfied by any controller"
                     (Ltl.to_string phi) (m.Ts.name));
              ]
          | _ -> []
        in
        unsat @ taut @ vac)
      specs
  in
  let redundant =
    if not pairwise then []
    else
      List.map
        (fun (ni, nj) ->
          diag nj ~code:"SPEC003" ~severity:Diagnostic.Info ~witness:ni
            (Printf.sprintf
               "%s is implied by %s: any controller satisfying %s satisfies \
                %s, shrinking the effective rule book"
               nj ni ni nj))
        (implications specs)
  in
  Diagnostic.sort (per_spec @ redundant)
