(** Structural lint for FSA controllers, without any rollouts.

    All verdicts are decided by exact DNF reasoning on guards
    ({!Guards}); transitions whose guard is unsatisfiable carry no
    behaviour and are excluded from reachability/cycle analysis (and
    reported on their own).  Diagnostic codes:

    - [CTL001] (warning) unreachable state
    - [CTL002] (error) reachable state where no observation enables any
      transition — the controller freezes
    - [CTL003] (warning) overlapping guards with distinct outcomes —
      nondeterminism, with a witness observation
    - [CTL004] (error) reachable state with no enabled transition for some
      observation — guard incompleteness, with a witness observation
    - [CTL005] (warning) ε-action cycle — the controller can loop forever
      without emitting an action
    - [CTL006] (info) transition with an unsatisfiable guard *)

val unreachable_states : Dpoaf_automata.Fsa.t -> Dpoaf_automata.Fsa.state list
(** States no satisfiable-guard path reaches from the initial state. *)

val stuck_states : Dpoaf_automata.Fsa.t -> Dpoaf_automata.Fsa.state list
(** Reachable states whose outgoing guards' disjunction is unsatisfiable
    (including states with no outgoing transition at all). *)

val overlaps :
  Dpoaf_automata.Fsa.t ->
  (Dpoaf_automata.Fsa.transition * Dpoaf_automata.Fsa.transition
  * Dpoaf_logic.Symbol.t)
  list
(** Pairs of transitions from the same reachable state that some
    observation (the witness) enables together, with distinct
    (action, destination) outcomes. *)

val incompleteness :
  Dpoaf_automata.Fsa.t ->
  (Dpoaf_automata.Fsa.state * Dpoaf_logic.Symbol.t) list
(** Reachable, non-stuck states with an observation (the witness) enabling
    no transition.  Exact for any atom universe containing the guards'
    atoms — unmentioned atoms are don't-cares. *)

val epsilon_cycles :
  Dpoaf_automata.Fsa.t -> Dpoaf_automata.Fsa.state list list
(** Nontrivial SCCs (or self-loops) of the reachable ε-action subgraph. *)

val lint : Dpoaf_automata.Fsa.t -> Diagnostic.t list
(** Every check above, as sorted diagnostics. *)
