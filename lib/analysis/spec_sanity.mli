(** Sanity checks on LTL rule books, via the existing tableau machinery.

    Diagnostic codes:

    - [SPEC001] (error) unsatisfiable specification — every controller
      fails it
    - [SPEC002] (error) tautological specification — every controller
      satisfies it
    - [SPEC003] (info) pairwise redundancy — one specification implies
      another as an LTL validity
    - [SPEC004] (warning) model-level vacuity — a [□(a ⇒ c)] whose
      antecedent no reachable world-model state can trigger *)

val propositional : Dpoaf_logic.Ltl.t -> bool
(** No temporal operator anywhere. *)

val guard_of_prop :
  Dpoaf_logic.Ltl.t -> Dpoaf_automata.Fsa.guard option
(** Embed a propositional formula into the guard language ([None] on
    temporal formulas), so {!Guards} can decide it exactly. *)

val antecedent : Dpoaf_logic.Ltl.t -> Dpoaf_logic.Ltl.t option
(** The trigger [a] of a [□(a ⇒ c)] with propositional [a]. *)

val unsatisfiable : Dpoaf_logic.Ltl.t -> bool
val tautological : Dpoaf_logic.Ltl.t -> bool

val implies : Dpoaf_logic.Ltl.t -> Dpoaf_logic.Ltl.t -> bool
(** LTL validity of the implication, by emptiness of [φᵢ ∧ ¬φⱼ]. *)

val implications :
  (string * Dpoaf_logic.Ltl.t) list -> (string * string) list
(** All ordered pairs [(nᵢ, nⱼ)] with [φᵢ ⇒ φⱼ], [nᵢ ≠ nⱼ]. *)

val vacuous_in_model :
  model:Dpoaf_automata.Ts.t ->
  ?free:Dpoaf_logic.Symbol.t ->
  Dpoaf_logic.Ltl.t ->
  bool
(** True when the formula has a [□(a ⇒ c)] antecedent that no reachable
    state of [model] can trigger.  Atoms in [free] (typically the
    controller's action atoms, which the model does not emit) are
    unconstrained; all other atoms are fixed by each state's label. *)

val check :
  ?model:Dpoaf_automata.Ts.t ->
  ?free:Dpoaf_logic.Symbol.t ->
  ?pairwise:bool ->
  (string * Dpoaf_logic.Ltl.t) list ->
  Diagnostic.t list
(** All checks above over a named rule book; [pairwise] (default true)
    controls the quadratic implication sweep, vacuity runs only when
    [model] is given. *)
