(** Exact boolean reasoning on controller guards by DNF expansion.

    Guards are small propositional formulas over observation atoms (a few
    literals per transition in GLM2FSA output), so disjunctive normal form
    with contradictory-cube pruning is an exact and cheap decision
    procedure — and every verdict comes with a {e witness symbol} read off
    a cube, which the lint diagnostics surface to the user. *)

type literal = { atom : string; positive : bool }

type cube = literal list
(** Sorted by atom, at most one literal per atom (consistent by
    construction). *)

type dnf = cube list
(** A guard is satisfiable iff its DNF has at least one cube. *)

val of_guard : Dpoaf_automata.Fsa.guard -> dnf
(** Exact DNF: a symbol satisfies the guard iff it satisfies some cube
    (atoms absent from a cube are don't-cares). *)

val eval : dnf -> Dpoaf_logic.Symbol.t -> bool
(** Agrees with {!Dpoaf_automata.Fsa.eval_guard} on the original guard
    (property-tested in [test/test_analysis.ml]). *)

val symbol_of_cube : cube -> Dpoaf_logic.Symbol.t
(** The canonical witness of a cube: its positive atoms (don't-care and
    negative atoms are left false). *)

val satisfiable : Dpoaf_automata.Fsa.guard -> bool

val witness : Dpoaf_automata.Fsa.guard -> Dpoaf_logic.Symbol.t option
(** A symbol satisfying the guard, or [None] when unsatisfiable. *)

val disjunction :
  Dpoaf_automata.Fsa.guard list -> Dpoaf_automata.Fsa.guard
(** N-ary [Gor]; the empty list is unsatisfiable ([Gnot Gtrue]). *)

val overlap_witness :
  Dpoaf_automata.Fsa.guard ->
  Dpoaf_automata.Fsa.guard ->
  Dpoaf_logic.Symbol.t option
(** A symbol enabling both guards at once — a nondeterminism witness. *)

val complement_witness :
  Dpoaf_automata.Fsa.guard list -> Dpoaf_logic.Symbol.t option
(** A symbol enabling {e none} of the guards ([None] when their disjunction
    is a tautology) — an incompleteness witness for a state's outgoing
    transitions.  The empty list yields [Some {}]. *)

val satisfiable_under :
  free:Dpoaf_logic.Symbol.t ->
  Dpoaf_logic.Symbol.t ->
  Dpoaf_automata.Fsa.guard ->
  bool
(** [satisfiable_under ~free σ g]: can [g] hold when every atom outside
    [free] is fixed by membership in [σ] and atoms in [free] are
    unconstrained?  Used for antecedent-reachability against world-model
    labels, with the controller's action atoms free. *)
