(** Typed findings of the static sanity layer.

    Every analyzer in [Dpoaf_analysis] reports through this type, so the
    CLI, the JSON artifact checked by [test/analysis_validate.exe] and the
    tests all consume one stream.  Codes are stable identifiers
    ([CTL]/[SPEC]/[MDL] + 3 digits, catalogued in [docs/analysis.md]);
    severity [Error] means the artifact would corrupt verification
    feedback and fails [dpoaf_cli analyze]. *)

type severity = Error | Warning | Info

type artifact =
  | Controller of string
  | Spec of string
  | Model of string
  | Suite of string
      (** A whole-rule-book finding ({!Suite_sanity}); the name is the
          suite's domain (e.g. ["driving"]). *)

type t = {
  code : string;  (** e.g. ["CTL001"]; stable, documented *)
  severity : severity;
  artifact : artifact;
  message : string;
  witness : string option;
      (** A concrete witness (symbol, state, spec name) when the analyzer
          can produce one. *)
}

val make :
  code:string ->
  severity:severity ->
  artifact:artifact ->
  ?witness:string ->
  string ->
  t

val severity_string : severity -> string
(** ["error"], ["warning"], ["info"] — the JSON encoding. *)

val artifact_kind : artifact -> string
val artifact_name : artifact -> string

val sort : t list -> t list
(** Most severe first, then by code, artifact and message. *)

val errors : t list -> t list
val has_errors : t list -> bool
val count : severity -> t list -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val to_json : t -> Dpoaf_util.Json.t
(** [{code, severity, artifact: {kind, name}, message, witness}]. *)

val report_json : t list -> Dpoaf_util.Json.t
(** The full [dpoaf_cli analyze --json] document: sorted [diagnostics]
    plus a [summary] with per-severity counts. *)
