(** Lint for world models (transition systems).

    Diagnostic codes:

    - [MDL001] (error) dead state — no successor, so infinite-trace
      verification silently stutters there
    - [MDL002] (error) uncovered atom — the rule book mentions an atom the
      model never emits (action atoms are excluded via [ignore]) *)

val dead_states : Dpoaf_automata.Ts.t -> Dpoaf_automata.Ts.state list

val uncovered_atoms :
  specs:(string * Dpoaf_logic.Ltl.t) list ->
  ?ignore:Dpoaf_logic.Symbol.t ->
  Dpoaf_automata.Ts.t ->
  Dpoaf_logic.Symbol.t
(** Spec atoms, minus [ignore] (typically the action atoms the controller
    emits), that no state label of the model contains. *)

val lint :
  ?specs:(string * Dpoaf_logic.Ltl.t) list ->
  ?ignore:Dpoaf_logic.Symbol.t ->
  ?coverage:bool ->
  Dpoaf_automata.Ts.t ->
  Diagnostic.t list
(** Dead states always; atom coverage when [coverage] (default true) —
    disable it for single-scenario models, whose proposition sets are
    deliberately partial (only the universal model must cover the whole
    rule book). *)
