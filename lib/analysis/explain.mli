(** Counterexample explanation: a {!Dpoaf_automata.Model_checker}
    counterexample lasso translated into the domain's response
    vocabulary — which action the controller emitted at each instant,
    which world propositions held, and which instants are to blame —
    plus a one-sentence rendering like

    ["step 3 allows `proceed` while `pedestrian in front` holds,
      violating phi_1"]

    Every explanation is validated before it is returned: the lasso is
    replayed through {!Dpoaf_logic.Trace.eval_lasso} and the
    specification must really be violated on it. *)

type step = {
  index : int;  (** 1-based position over prefix then one cycle round *)
  in_cycle : bool;
  action : string option;
      (** the action atom the controller emitted at this instant, if
          exactly one of [actions] is in the symbol set *)
  holds : string list;  (** the non-action atoms true at this instant *)
  tag : int;
      (** controller-step provenance ([-1] when the lasso is untagged) *)
  culprit : bool;  (** on the {!Dpoaf_automata.Model_checker.blame} set *)
}

type t = {
  spec : string;
  formula : string;
  steps : step list;  (** prefix then one unrolling of the cycle *)
  cycle_start : int;  (** 1-based index of the first cycle step *)
  culprits : int list;  (** 1-based indices of culprit steps *)
  text : string;  (** the rendered sentence *)
}

val explain :
  spec:string * Dpoaf_logic.Ltl.t ->
  actions:string list ->
  Dpoaf_automata.Model_checker.counterexample ->
  t option
(** [None] when replay validation fails (the lasso does not actually
    violate the specification under {!Dpoaf_logic.Trace.eval_lasso}) or
    the counterexample has an empty cycle — never a lying explanation. *)

val to_string : t -> string
(** The rendered sentence ([t.text]). *)

val to_json : t -> Dpoaf_util.Json.t
(** [{spec, formula, text, cycle_start, culprits, steps: [{index,
    in_cycle, action, holds, tag, culprit}]}]. *)
