(** Whole-suite static analysis of an LTL rule book: minimal conflict
    cores, realizability against world models, and a coverage matrix
    over the domain vocabulary.

    Diagnostic codes (catalogued in [docs/analysis.md]):

    - [SUITE001] (error) minimal jointly-unsatisfiable conflict core —
      the named subset has no model at all, and removing any single
      member restores satisfiability
    - [SUITE002] (error) the book is unrealizable against a registered
      world model: no controller running in that model can satisfy every
      specification at once (with a deletion-minimal core as witness)
    - [SUITE003] (info) realizability undecided — the product-state
      budget was exceeded (only possible with specifications outside the
      template shapes)
    - [SPEC005] (warning) a domain proposition no specification
      constrains
    - [SPEC006] (warning) a domain action no specification constrains
    - [SPEC007] (info) a specification that never distinguishes any pair
      in the response pool
    - [SPEC008] (info) a specification jointly redundant relative to the
      model: every model trace satisfying the rest of the book satisfies
      it too, and no single specification implies it (strictly beyond
      [SPEC003]'s pairwise sweep) *)

val conflict_cores :
  ?max_core:int ->
  (string * Dpoaf_logic.Ltl.t) list ->
  string list list
(** Minimal jointly-unsatisfiable subsets (by name), found by
    increasing-size tableau search up to [max_core] members (default 3 —
    the joint tableau grows ~10x per conjunct, so larger cores are out
    of its reach).  Individually-unsatisfiable specifications
    ([SPEC001]'s finding) are excluded; supersets of a reported core are
    skipped.  Every returned core is minimal by construction: all of its
    proper subsets were checked satisfiable first. *)

type realizability = Realizable | Unrealizable | Unknown

val realizable :
  model:Dpoaf_automata.Ts.t ->
  actions:string list ->
  ?budget:int ->
  (string * Dpoaf_logic.Ltl.t) list ->
  realizability
(** Can any controller (any assignment of one [action] per instant)
    running in [model] satisfy the whole book?  Decided on the anchored
    model x action product: propositional invariants restrict the graph,
    the {!Dpoaf_domain.Spec_gen} template shapes (response, liveness,
    eventuality, recurrence) become deterministic Buchi monitors, and
    anything else falls back to a tableau automaton.  [Unknown] when the
    product exceeds [budget] states (default 50k) or [actions] is
    empty. *)

val unrealizable_core :
  model:Dpoaf_automata.Ts.t ->
  actions:string list ->
  ?budget:int ->
  (string * Dpoaf_logic.Ltl.t) list ->
  string list
(** Deletion-minimal unrealizable subset of an unrealizable book: every
    member's removal makes the rest realizable.  (On a realizable book
    this degenerates to all names — only call it after {!realizable}
    returned [Unrealizable].) *)

val coverage :
  vocabulary:string list ->
  (string * Dpoaf_logic.Ltl.t) list ->
  (string * string list) list
(** The coverage matrix: each vocabulary atom paired with the
    specifications whose formulas mention it (in book order).  An empty
    list marks an unconstrained atom ([SPEC005]/[SPEC006]). *)

val undistinguishing :
  pool:(string * string list) list ->
  (string * Dpoaf_logic.Ltl.t) list ->
  string list
(** Specifications whose satisfied-status is identical across every
    response in [pool] (response name, satisfied spec names) — they
    never split any preference pair.  Empty for pools of fewer than two
    responses. *)

val joint_redundancies :
  model:Dpoaf_automata.Ts.t ->
  actions:string list ->
  ?budget:int ->
  (string * Dpoaf_logic.Ltl.t) list ->
  string list
(** Specifications [phi] such that the book with [phi] replaced by
    [¬phi] is unrealizable against [model] — every model trace
    satisfying the others satisfies [phi] too — excluding those already
    implied by a single other specification ([SPEC003]'s finding). *)

val check :
  suite:string ->
  ?max_core:int ->
  ?budget:int ->
  ?propositions:string list ->
  ?actions:string list ->
  ?models:(string * Dpoaf_automata.Ts.t) list ->
  ?pool:(string * string list) list ->
  ?redundancy:bool ->
  (string * Dpoaf_logic.Ltl.t) list ->
  Diagnostic.t list
(** The full suite-level pass: conflict cores ([SUITE001]),
    realizability against every named model ([SUITE002]/[SUITE003]),
    vocabulary coverage ([SPEC005]/[SPEC006]), pool discrimination
    ([SPEC007]) and — when [redundancy] (default true) and [models] is
    non-empty — joint redundancy over the first model, which callers
    should make the universal one ([SPEC008]).  [actions] feeds both the
    coverage matrix and the realizability anchor. *)
