module Fsa = Dpoaf_automata.Fsa
module Ts = Dpoaf_automata.Ts
module Kripke = Dpoaf_automata.Kripke
module Product = Dpoaf_automata.Product

(* The Kripke encoding of M ⊗ C has one state per product edge, labeled
   λ_M(p) ∪ a over P ∪ P_A — so a propositional antecedent can be evaluated
   directly on each reachable label, no atoms left free. *)
let reachable_labels (k : Kripke.t) =
  let seen = Array.make (Kripke.n_states k) false in
  let rec visit q =
    if not seen.(q) then begin
      seen.(q) <- true;
      List.iter visit k.Kripke.succs.(q)
    end
  in
  List.iter visit k.Kripke.initial;
  List.filteri (fun q _ -> seen.(q)) (Array.to_list k.Kripke.labels)

let triggered_specs ~model ~controller ~specs =
  let kripke = Product.to_kripke (Product.build ~model ~controller) in
  let labels = reachable_labels kripke in
  List.filter_map
    (fun (name, phi) ->
      match Option.bind (Spec_sanity.antecedent phi) Spec_sanity.guard_of_prop with
      | None -> Some name (* no antecedent shape: conservatively "triggered" *)
      | Some g ->
          if List.exists (fun label -> Fsa.eval_guard g label) labels then
            Some name
          else None)
    specs

let vacuously_satisfied ~model ~controller ~specs ~satisfied =
  let triggered = triggered_specs ~model ~controller ~specs in
  List.filter (fun name -> not (List.mem name triggered)) satisfied

let diagnostics ~model ~controller ~specs ~satisfied =
  List.map
    (fun name ->
      Diagnostic.make ~code:"VAC001" ~severity:Diagnostic.Info
        ~artifact:(Diagnostic.Controller controller.Fsa.name) ~witness:name
        (Printf.sprintf
           "satisfies %s only vacuously: its antecedent never triggers in \
            the product with model %s"
           name model.Ts.name))
    (vacuously_satisfied ~model ~controller ~specs ~satisfied)
