module Fsa = Dpoaf_automata.Fsa
module Symbol = Dpoaf_logic.Symbol

(* Transitions that can ever fire: unsatisfiable guards carry no behaviour,
   so they are excluded from reachability, cycles and overlap analysis
   (a transition with an unsatisfiable guard is itself reported). *)
let live_transitions (c : Fsa.t) =
  List.filter (fun (tr : Fsa.transition) -> Guards.satisfiable tr.Fsa.guard) c.Fsa.transitions

let reachable (c : Fsa.t) =
  let seen = Array.make c.Fsa.n_states false in
  let live = live_transitions c in
  let rec visit q =
    if not seen.(q) then begin
      seen.(q) <- true;
      List.iter
        (fun (tr : Fsa.transition) -> if tr.Fsa.src = q then visit tr.Fsa.dst)
        live
    end
  in
  visit c.Fsa.init;
  seen

let unreachable_states c =
  let seen = reachable c in
  List.filter (fun q -> not seen.(q)) (List.init c.Fsa.n_states Fun.id)

let out_guards (c : Fsa.t) q =
  List.filter_map
    (fun (tr : Fsa.transition) ->
      if tr.Fsa.src = q then Some tr.Fsa.guard else None)
    c.Fsa.transitions

let stuck_states c =
  let seen = reachable c in
  List.filter
    (fun q -> seen.(q) && not (Guards.satisfiable (Guards.disjunction (out_guards c q))))
    (List.init c.Fsa.n_states Fun.id)

(* Nondeterminism: two transitions out of the same reachable state whose
   guards can hold at once and whose outcomes (action, destination) differ.
   Same-outcome overlap is harmless duplication and not reported. *)
let overlaps (c : Fsa.t) =
  let seen = reachable c in
  let rec pairs = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
  in
  List.filter_map
    (fun ((t1 : Fsa.transition), (t2 : Fsa.transition)) ->
      if
        t1.Fsa.src = t2.Fsa.src
        && seen.(t1.Fsa.src)
        && (t1.Fsa.dst <> t2.Fsa.dst || not (Symbol.equal t1.Fsa.action t2.Fsa.action))
      then
        Option.map (fun w -> (t1, t2, w)) (Guards.overlap_witness t1.Fsa.guard t2.Fsa.guard)
      else None)
    (pairs (live_transitions c))

(* A reachable state is incomplete when some observation enables none of
   its transitions — the controller would block, silently pruning model
   behaviours from the product.  The verdict is independent of the ambient
   atom universe: atoms no outgoing guard mentions are don't-cares, so the
   DNF complement over each state's own guard atoms is exact.  Stuck states
   (no observation enabled at all) are reported separately and skipped
   here. *)
let incompleteness (c : Fsa.t) =
  let seen = reachable c in
  let stuck = stuck_states c in
  List.filter_map
    (fun q ->
      if (not seen.(q)) || List.mem q stuck then None
      else
        Option.map (fun w -> (q, w)) (Guards.complement_witness (out_guards c q)))
    (List.init c.Fsa.n_states Fun.id)

(* Strongly connected components of the ε-action subgraph (transitions
   whose action symbol is empty), restricted to reachable states; a
   nontrivial SCC or an ε self-loop means the controller can cycle forever
   without ever emitting an action. *)
let epsilon_cycles (c : Fsa.t) =
  let seen = reachable c in
  let eps =
    List.filter
      (fun (tr : Fsa.transition) ->
        Symbol.is_empty tr.Fsa.action && seen.(tr.Fsa.src) && seen.(tr.Fsa.dst))
      (live_transitions c)
  in
  let succs q =
    List.filter_map
      (fun (tr : Fsa.transition) -> if tr.Fsa.src = q then Some tr.Fsa.dst else None)
      eps
  in
  let n = c.Fsa.n_states in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next = ref 0 in
  let sccs = ref [] in
  let rec strong v =
    index.(v) <- !next;
    lowlink.(v) <- !next;
    incr next;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strong w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      (succs v);
    if lowlink.(v) = index.(v) then begin
      let rec popped acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else popped (w :: acc)
      in
      sccs := popped [] :: !sccs
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 && seen.(v) then strong v
  done;
  List.filter
    (fun comp ->
      match comp with
      | [ q ] -> List.mem q (succs q)
      | _ -> List.length comp > 1)
    !sccs

let lint (c : Fsa.t) =
  let name q = c.Fsa.state_names.(q) in
  let artifact = Diagnostic.Controller c.Fsa.name in
  let diag ~code ~severity ?witness msg =
    Diagnostic.make ~code ~severity ~artifact ?witness msg
  in
  let unreachable =
    List.map
      (fun q ->
        diag ~code:"CTL001" ~severity:Diagnostic.Warning ~witness:(name q)
          (Printf.sprintf "state %s is unreachable from the initial state %s"
             (name q) (name c.Fsa.init)))
      (unreachable_states c)
  in
  let stuck =
    List.map
      (fun q ->
        diag ~code:"CTL002" ~severity:Diagnostic.Error ~witness:(name q)
          (Printf.sprintf
             "state %s is reachable but no observation enables any of its \
              transitions (the controller freezes there)"
             (name q)))
      (stuck_states c)
  in
  let overlap =
    List.map
      (fun ((t1 : Fsa.transition), (t2 : Fsa.transition), w) ->
        diag ~code:"CTL003" ~severity:Diagnostic.Warning
          ~witness:(Symbol.to_string w)
          (Printf.sprintf
             "transitions from %s overlap: [%s / %s -> %s] and [%s / %s -> %s] \
              are both enabled"
             (name t1.Fsa.src)
             (Format.asprintf "%a" Fsa.pp_guard t1.Fsa.guard)
             (Symbol.to_string t1.Fsa.action) (name t1.Fsa.dst)
             (Format.asprintf "%a" Fsa.pp_guard t2.Fsa.guard)
             (Symbol.to_string t2.Fsa.action) (name t2.Fsa.dst)))
      (overlaps c)
  in
  let incomplete =
    List.map
      (fun (q, w) ->
        diag ~code:"CTL004" ~severity:Diagnostic.Error
          ~witness:(Symbol.to_string w)
          (Printf.sprintf
             "state %s has no enabled transition for some observation (the \
              product silently drops those model behaviours)"
             (name q)))
      (incompleteness c)
  in
  let eps =
    List.map
      (fun comp ->
        diag ~code:"CTL005" ~severity:Diagnostic.Warning
          (Printf.sprintf
             "states {%s} form an ε-action cycle: the controller can loop \
              forever without emitting any action"
             (String.concat ", " (List.map name comp))))
      (epsilon_cycles c)
  in
  let dead_guards =
    List.filter_map
      (fun (tr : Fsa.transition) ->
        if Guards.satisfiable tr.Fsa.guard then None
        else
          Some
            (diag ~code:"CTL006" ~severity:Diagnostic.Info
               (Printf.sprintf "transition %s -> %s has an unsatisfiable guard %s"
                  (name tr.Fsa.src) (name tr.Fsa.dst)
                  (Format.asprintf "%a" Fsa.pp_guard tr.Fsa.guard))))
      c.Fsa.transitions
  in
  Diagnostic.sort (unreachable @ stuck @ overlap @ incomplete @ eps @ dead_guards)
