(* Counterexample explanation: translate a model checker lasso into the
   domain's response vocabulary.

   A Model_checker.counterexample is a prefix + cycle of symbol sets with
   per-instant provenance tags (the controller step that produced the
   instant).  This module splits each instant's symbols into the action
   the controller emitted and the world propositions that held, marks the
   culprit instants via Model_checker.blame, and renders a sentence like

     "step 3 allows `proceed` while `pedestrian in front` holds,
      violating phi_1"

   The explanation is only returned after replaying the lasso through
   Trace.eval_lasso and confirming the specification really is violated
   on it — an explanation that does not correspond to a genuine
   violation is a bug, not a result. *)

module Ltl = Dpoaf_logic.Ltl
module Symbol = Dpoaf_logic.Symbol
module Trace = Dpoaf_logic.Trace
module Model_checker = Dpoaf_automata.Model_checker
module Json = Dpoaf_util.Json

type step = {
  index : int;  (* 1-based over prefix @ cycle *)
  in_cycle : bool;
  action : string option;
  holds : string list;
  tag : int;
  culprit : bool;
}

type t = {
  spec : string;
  formula : string;
  steps : step list;
  cycle_start : int;
  culprits : int list;
  text : string;
}

let quote s = "`" ^ s ^ "`"

let describe_step s =
  let doing =
    match s.action with
    | Some a -> Printf.sprintf "allows %s" (quote a)
    | None -> "emits no action"
  in
  let world =
    match s.holds with
    | [] -> "nothing holds"
    | ps ->
        Printf.sprintf "%s %s"
          (String.concat ", " (List.map quote ps))
          (match ps with [ _ ] -> "holds" | _ -> "hold")
  in
  Printf.sprintf "step %d %s while %s" s.index doing world

let render spec steps culprits =
  let focus =
    match culprits with
    | i :: _ -> List.find (fun s -> s.index = i) steps
    | [] -> List.hd steps
  in
  let position =
    if focus.in_cycle then " (repeating forever)" else ""
  in
  Printf.sprintf "%s%s, violating %s" (describe_step focus) position spec

(* For a propositional-invariant spec the culprit instants are exactly
   those where the body is false; for other shapes fall back to the
   blame tags (every tagged instant for non-invariants). *)
let culprit_fn spec blamed =
  match spec with
  | Ltl.Always body when Spec_sanity.propositional body ->
      fun sigma _tag -> not (Trace.eval_finite body [| sigma |])
  | _ -> fun _sigma tag -> tag >= 0 && List.mem tag blamed

let explain ~spec:(name, phi) ~actions (cex : Model_checker.counterexample) =
  let prefix = Array.of_list cex.Model_checker.prefix in
  let cycle = Array.of_list cex.Model_checker.cycle in
  if Array.length cycle = 0 then None
  else if Trace.eval_lasso phi ~prefix ~cycle then
    (* replay validation failed: the lasso does NOT violate the spec,
       so any explanation we produced would lie *)
    None
  else begin
    let action_set = Symbol.of_atoms actions in
    let blamed = Model_checker.blame ~spec:phi cex in
    let is_culprit = culprit_fn phi blamed in
    let mk_step index in_cycle sigma tag =
      let action =
        List.find_opt (fun a -> Symbol.mem a sigma) actions
      in
      let holds =
        List.filter
          (fun p -> not (Symbol.mem p action_set))
          (Symbol.elements sigma)
      in
      { index; in_cycle; action; holds; tag; culprit = is_culprit sigma tag }
    in
    let np = Array.length prefix in
    let steps =
      List.mapi
        (fun i sigma -> mk_step (i + 1) false sigma (List.nth cex.prefix_tags i))
        (Array.to_list prefix)
      @ List.mapi
          (fun i sigma ->
            mk_step (np + i + 1) true sigma (List.nth cex.cycle_tags i))
          (Array.to_list cycle)
    in
    let culprits =
      List.filter_map (fun s -> if s.culprit then Some s.index else None) steps
    in
    Some
      {
        spec = name;
        formula = Ltl.to_string phi;
        steps;
        cycle_start = np + 1;
        culprits;
        text = render name steps culprits;
      }
  end

let to_string e = e.text

let json_of_step s =
  Json.obj
    [
      ("index", Json.num (float_of_int s.index));
      ("in_cycle", Json.Bool s.in_cycle);
      ( "action",
        match s.action with None -> Json.Null | Some a -> Json.str a );
      ("holds", Json.arr (List.map Json.str s.holds));
      ("tag", Json.num (float_of_int s.tag));
      ("culprit", Json.Bool s.culprit);
    ]

let to_json e =
  Json.obj
    [
      ("spec", Json.str e.spec);
      ("formula", Json.str e.formula);
      ("text", Json.str e.text);
      ("cycle_start", Json.num (float_of_int e.cycle_start));
      ("culprits", Json.arr (List.map (fun i -> Json.num (float_of_int i)) e.culprits));
      ("steps", Json.arr (List.map json_of_step e.steps));
    ]
