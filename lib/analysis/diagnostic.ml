module Json = Dpoaf_util.Json

type severity = Error | Warning | Info

type artifact =
  | Controller of string
  | Spec of string
  | Model of string
  | Suite of string

type t = {
  code : string;
  severity : severity;
  artifact : artifact;
  message : string;
  witness : string option;
}

let make ~code ~severity ~artifact ?witness message =
  { code; severity; artifact; message; witness }

let severity_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let artifact_kind = function
  | Controller _ -> "controller"
  | Spec _ -> "spec"
  | Model _ -> "model"
  | Suite _ -> "suite"

let artifact_name = function
  | Controller n | Spec n | Model n | Suite n -> n

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare_diag a b =
  let c = compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = compare a.code b.code in
    if c <> 0 then c
    else
      let c = compare (artifact_name a.artifact) (artifact_name b.artifact) in
      if c <> 0 then c else compare a.message b.message

let sort diags = List.sort compare_diag diags

let errors diags = List.filter (fun d -> d.severity = Error) diags
let has_errors diags = errors diags <> []

let count severity diags =
  List.length (List.filter (fun d -> d.severity = severity) diags)

let pp ppf d =
  Format.fprintf ppf "%-7s %s [%s %s]: %s" (severity_string d.severity) d.code
    (artifact_kind d.artifact) (artifact_name d.artifact) d.message;
  match d.witness with
  | None -> ()
  | Some w -> Format.fprintf ppf " (witness: %s)" w

let to_string d = Format.asprintf "%a" pp d

let to_json d =
  Json.obj
    [
      ("code", Json.str d.code);
      ("severity", Json.str (severity_string d.severity));
      ( "artifact",
        Json.obj
          [
            ("kind", Json.str (artifact_kind d.artifact));
            ("name", Json.str (artifact_name d.artifact));
          ] );
      ("message", Json.str d.message);
      ( "witness",
        match d.witness with None -> Json.Null | Some w -> Json.str w );
    ]

let report_json diags =
  let diags = sort diags in
  Json.obj
    [
      ("diagnostics", Json.arr (List.map to_json diags));
      ( "summary",
        Json.obj
          [
            ("errors", Json.num (float_of_int (count Error diags)));
            ("warnings", Json.num (float_of_int (count Warning diags)));
            ("infos", Json.num (float_of_int (count Info diags)));
            ("total", Json.num (float_of_int (List.length diags)));
          ] );
    ]
