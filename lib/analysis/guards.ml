module Fsa = Dpoaf_automata.Fsa
module Symbol = Dpoaf_logic.Symbol

type literal = { atom : string; positive : bool }
type cube = literal list
type dnf = cube list

(* Insert a literal into a cube sorted by atom name; [None] when the cube
   already contains the opposite polarity (contradictory cube). *)
let rec cube_add lit = function
  | [] -> Some [ lit ]
  | l :: rest as cube ->
      let c = compare lit.atom l.atom in
      if c < 0 then Some (lit :: cube)
      else if c = 0 then if lit.positive = l.positive then Some cube else None
      else Option.map (fun r -> l :: r) (cube_add lit rest)

let cube_meet c1 c2 =
  List.fold_left
    (fun acc lit -> Option.bind acc (cube_add lit))
    (Some c1) c2

let product d1 d2 =
  List.sort_uniq compare
    (List.concat_map (fun c1 -> List.filter_map (cube_meet c1) d2) d1)

let rec pos = function
  | Fsa.Gtrue -> [ [] ]
  | Fsa.Gatom a -> [ [ { atom = a; positive = true } ] ]
  | Fsa.Gnot g -> neg g
  | Fsa.Gand (a, b) -> product (pos a) (pos b)
  | Fsa.Gor (a, b) -> List.sort_uniq compare (pos a @ pos b)

and neg = function
  | Fsa.Gtrue -> []
  | Fsa.Gatom a -> [ [ { atom = a; positive = false } ] ]
  | Fsa.Gnot g -> pos g
  | Fsa.Gand (a, b) -> List.sort_uniq compare (neg a @ neg b)
  | Fsa.Gor (a, b) -> product (neg a) (neg b)

let of_guard = pos

let eval_cube cube sym =
  List.for_all (fun l -> Symbol.mem l.atom sym = l.positive) cube

let eval dnf sym = List.exists (fun cube -> eval_cube cube sym) dnf

let symbol_of_cube cube =
  List.fold_left
    (fun acc l -> if l.positive then Symbol.add l.atom acc else acc)
    Symbol.empty cube

let witness g =
  match of_guard g with [] -> None | cube :: _ -> Some (symbol_of_cube cube)

let satisfiable g = of_guard g <> []

let disjunction = function
  | [] -> Fsa.Gnot Fsa.Gtrue
  | g :: rest -> List.fold_left (fun acc h -> Fsa.Gor (acc, h)) g rest

let overlap_witness g1 g2 = witness (Fsa.Gand (g1, g2))

let complement_witness guards = witness (Fsa.Gnot (disjunction guards))

let compatible ~free sym cube =
  List.for_all
    (fun l -> Symbol.mem l.atom free || Symbol.mem l.atom sym = l.positive)
    cube

let satisfiable_under ~free sym g = List.exists (compatible ~free sym) (of_guard g)
