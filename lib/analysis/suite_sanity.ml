(* Whole-suite static analysis of an LTL rule book.

   Three layers, all suite-level (PR 3's Spec_sanity looks at one or two
   specifications at a time; this module looks at all of them together):

   - minimal conflict cores: jointly-unsatisfiable subsets found by
     increasing-size tableau search, so every reported core is minimal by
     construction (every proper subset was already checked satisfiable);

   - realizability against a world model: can ANY controller running in
     the model satisfy the whole book at once?  The joint tableau blows
     up ~10x per specification (measured: 8 of the driving specs take
     minutes), so the book is compiled spec-by-spec into the anchored
     product instead: propositional invariants restrict the model x action
     graph directly, the response/liveness shapes that the Spec_gen
     templates produce become 2-3-state deterministic Buchi monitors
     (zero branching), and only formulas outside those shapes fall back
     to a nondeterministic tableau automaton under a product-state
     budget.  All fifteen driving specifications against the universal
     model decide in under a millisecond this way;

   - a coverage matrix over the domain vocabulary: propositions and
     actions no specification constrains, specifications that never
     distinguish any pair in a response pool, and specifications that
     are jointly redundant relative to the model (every model trace
     satisfying the others satisfies them too — strictly beyond the
     pairwise implication sweep). *)

module Ltl = Dpoaf_logic.Ltl
module Symbol = Dpoaf_logic.Symbol
module Trace = Dpoaf_logic.Trace
module Ts = Dpoaf_automata.Ts
module Buchi = Dpoaf_automata.Buchi
module Tableau = Dpoaf_automata.Tableau
module Sat = Dpoaf_automata.Satisfiability

(* ---------------- conflict cores ---------------- *)

let conjunction = function
  | [] -> Ltl.True
  | phi :: rest -> List.fold_left (fun acc p -> Ltl.And (acc, p)) phi rest

(* All size-k subsets of [xs] (as lists, order-preserving). *)
let rec subsets k xs =
  if k = 0 then [ [] ]
  else
    match xs with
    | [] -> []
    | x :: rest ->
        List.map (fun s -> x :: s) (subsets (k - 1) rest) @ subsets k rest

let conflict_cores ?(max_core = 3) specs =
  (* individually-unsatisfiable specifications are SPEC001's finding;
     excluding them keeps every core genuinely joint (and keeps their
     supersets, all trivially unsatisfiable, out of the report) *)
  let sat_specs =
    List.filter (fun (_, phi) -> Sat.is_satisfiable phi) specs
  in
  let cores = ref [] in
  let covered subset =
    List.exists
      (fun core -> List.for_all (fun n -> List.mem n subset) core)
      !cores
  in
  for size = 2 to max_core do
    List.iter
      (fun subset ->
        let names = List.map fst subset in
        if not (covered names) then
          if not (Sat.is_satisfiable (conjunction (List.map snd subset)))
          then cores := names :: !cores)
      (subsets size sat_specs)
  done;
  List.rev !cores

(* ---------------- the anchored product ---------------- *)

(* The "anchor": the world model with every state split per controller
   action, labeled with the state's propositions plus that one action
   atom.  Its infinite paths are exactly the traces some controller
   could produce in the model, which makes suite realizability an
   emptiness question on a finite graph. *)
type anchor = {
  labels : Symbol.t array;
  succs : int list array;
  initial : int list;
}

let anchor_of_model (m : Ts.t) actions =
  let na = List.length actions in
  let acts = Array.of_list actions in
  let nm = Ts.n_states m in
  let idx mi ai = (mi * na) + ai in
  let labels =
    Array.init (nm * na) (fun k ->
        Symbol.add acts.(k mod na) (Ts.label m (k / na)))
  in
  let succs =
    Array.init (nm * na) (fun k ->
        List.concat_map
          (fun mj -> List.init na (fun aj -> idx mj aj))
          (Ts.successors m (k / na)))
  in
  let initial =
    List.concat_map
      (fun mi -> List.init na (fun ai -> idx mi ai))
      m.Ts.initial
  in
  { labels; succs; initial }

(* ---------------- per-spec compilation ---------------- *)

(* A deterministic Buchi monitor: accepting states must recur. *)
type monitor = {
  m_start : int;
  m_step : int -> Symbol.t -> int;
  m_acc : int -> bool;
}

type component =
  | Restrict of Ltl.t  (* propositional invariant body *)
  | Det of monitor
  | Nondet of Buchi.nba

let eval_prop sigma phi = Trace.eval_finite phi [| sigma |]

(* The Spec_gen template shapes (and all of the driving book's temporal
   specifications) are deterministic-Buchi recognizable; anything else
   falls back to the tableau. *)
let compile phi =
  let prop = Spec_sanity.propositional in
  match phi with
  | Ltl.Always b when prop b -> Restrict b
  | Ltl.Always (Ltl.Implies (a, Ltl.Eventually b)) when prop a && prop b ->
      (* response obligation: 0 = discharged (accepting), 1 = pending *)
      Det
        {
          m_start = 0;
          m_step =
            (fun s sigma ->
              match s with
              | 0 -> if eval_prop sigma a && not (eval_prop sigma b) then 1 else 0
              | _ -> if eval_prop sigma b then 0 else 1);
          m_acc = (fun s -> s = 0);
        }
  | Ltl.Implies (Ltl.Eventually e, Ltl.Eventually g) when prop e && prop g ->
      (* liveness: 0 = enable unseen (accepting), 1 = enabled and unmet,
         2 = goal met (accepting sink) *)
      Det
        {
          m_start = 0;
          m_step =
            (fun s sigma ->
              match s with
              | 2 -> 2
              | s ->
                  if eval_prop sigma g then 2
                  else if s = 1 || eval_prop sigma e then 1
                  else 0);
          m_acc = (fun s -> s <> 1);
        }
  | Ltl.Eventually g when prop g ->
      Det
        {
          m_start = 0;
          m_step = (fun s sigma -> if s = 1 || eval_prop sigma g then 1 else 0);
          m_acc = (fun s -> s = 1);
        }
  | Ltl.Always (Ltl.Eventually g) when prop g ->
      Det
        {
          m_start = 0;
          m_step = (fun _ sigma -> if eval_prop sigma g then 1 else 0);
          m_acc = (fun s -> s = 1);
        }
  | phi -> Nondet (Buchi.degeneralize (Tableau.gnba_of_ltl phi))

let restrict anchor bodies =
  let ok =
    Array.map (fun sigma -> List.for_all (eval_prop sigma) bodies) anchor.labels
  in
  {
    labels = anchor.labels;
    succs =
      Array.mapi
        (fun i ss -> if ok.(i) then List.filter (fun j -> ok.(j)) ss else [])
        anchor.succs;
    initial = List.filter (fun i -> ok.(i)) anchor.initial;
  }

type realizability = Realizable | Unrealizable | Unknown

exception Budget_exceeded

(* Emptiness of the anchored product under generalized Buchi acceptance
   (one accepting set per Det/Nondet component): BFS reachability over
   tuples [anchor state; det states; nondet states], then Tarjan SCCs —
   a nontrivial SCC touching every component's accepting set witnesses a
   lasso every specification accepts. *)
let product_realizable anchor ~dets ~nbas ~budget =
  let nd = Array.length dets and nn = Array.length nbas in
  let ids : (int array, int) Hashtbl.t = Hashtbl.create 256 in
  let tuples = ref (Array.make 256 [||]) in
  let count = ref 0 in
  let id_of tup =
    match Hashtbl.find_opt ids tup with
    | Some i -> i
    | None ->
        let i = !count in
        if i >= budget then raise Budget_exceeded;
        Hashtbl.add ids tup i;
        if i >= Array.length !tuples then begin
          let bigger = Array.make (2 * Array.length !tuples) [||] in
          Array.blit !tuples 0 bigger 0 i;
          tuples := bigger
        end;
        !tuples.(i) <- tup;
        incr count;
        i
  in
  let consistent_succs nba q sigma =
    List.filter
      (fun q' ->
        Buchi.consistent ~pos:nba.Buchi.pos.(q') ~neg:nba.Buchi.neg.(q') sigma)
      nba.Buchi.succs.(q)
  in
  (* enumerate product tuples at anchor state [k]: deterministic parts
     are fixed, nondeterministic parts range over their candidates *)
  let expand k det_states (cands : int list array) f =
    if not (Array.exists (( = ) []) cands) then begin
      let tup = Array.make (1 + nd + nn) k in
      Array.blit det_states 0 tup 1 nd;
      let rec go i =
        if i = nn then f (Array.copy tup)
        else
          List.iter
            (fun q ->
              tup.(1 + nd + i) <- q;
              go (i + 1))
            cands.(i)
      in
      go 0
    end
  in
  let edges = Hashtbl.create 256 in
  let seen = Hashtbl.create 256 in
  let queue = Queue.create () in
  let push tup =
    let i = id_of tup in
    if not (Hashtbl.mem seen i) then begin
      Hashtbl.add seen i ();
      Queue.add i queue
    end;
    i
  in
  List.iter
    (fun k ->
      let sigma = anchor.labels.(k) in
      let det0 =
        Array.map (fun m -> m.m_step m.m_start sigma) dets
      in
      let cands =
        Array.map
          (fun nba ->
            List.filter
              (fun q ->
                Buchi.consistent ~pos:nba.Buchi.pos.(q)
                  ~neg:nba.Buchi.neg.(q) sigma)
              nba.Buchi.initial)
          nbas
      in
      expand k det0 cands (fun t -> ignore (push t)))
    anchor.initial;
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    let tup = !tuples.(i) in
    let k = tup.(0) in
    let out = ref [] in
    List.iter
      (fun k' ->
        let sigma = anchor.labels.(k') in
        let det' =
          Array.mapi (fun di m -> m.m_step tup.(1 + di) sigma) dets
        in
        let cands =
          Array.mapi (fun ni nba -> consistent_succs nba tup.(1 + nd + ni) sigma) nbas
        in
        expand k' det' cands (fun t -> out := push t :: !out))
      anchor.succs.(k);
    Hashtbl.replace edges i (List.sort_uniq compare !out)
  done;
  let nstates = !count in
  let tuple_arr = !tuples in
  let get_edges v = try Hashtbl.find edges v with Not_found -> [] in
  let index = Array.make (max nstates 1) (-1) in
  let low = Array.make (max nstates 1) 0 in
  let onstack = Array.make (max nstates 1) false in
  let stack = ref [] in
  let idx = ref 0 in
  let good = ref false in
  let rec strong v =
    index.(v) <- !idx;
    low.(v) <- !idx;
    incr idx;
    stack := v :: !stack;
    onstack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strong w;
          low.(v) <- min low.(v) low.(w)
        end
        else if onstack.(w) then low.(v) <- min low.(v) index.(w))
      (get_edges v);
    if low.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            onstack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      let scc = pop [] in
      let inscc = Hashtbl.create 16 in
      List.iter (fun v -> Hashtbl.replace inscc v ()) scc;
      let nontrivial =
        List.exists
          (fun v -> List.exists (Hashtbl.mem inscc) (get_edges v))
          scc
      in
      if nontrivial then begin
        let det_ok = Array.make (max nd 1) (nd = 0) in
        let nba_ok = Array.make (max nn 1) (nn = 0) in
        List.iter
          (fun v ->
            let tup = tuple_arr.(v) in
            for di = 0 to nd - 1 do
              if dets.(di).m_acc tup.(1 + di) then det_ok.(di) <- true
            done;
            for ni = 0 to nn - 1 do
              if nbas.(ni).Buchi.accepting.(tup.(1 + nd + ni)) then
                nba_ok.(ni) <- true
            done)
          scc;
        if
          Array.for_all (fun b -> b) det_ok
          && Array.for_all (fun b -> b) nba_ok
        then good := true
      end
    end
  in
  for v = 0 to nstates - 1 do
    if index.(v) < 0 then strong v
  done;
  !good

let default_budget = 50_000

let realizable ~model ~actions ?(budget = default_budget) specs =
  if actions = [] then Unknown
  else
    let anchor = anchor_of_model model actions in
    let components = List.map (fun (_, phi) -> compile phi) specs in
    let bodies =
      List.filter_map (function Restrict b -> Some b | _ -> None) components
    in
    let dets =
      Array.of_list
        (List.filter_map (function Det m -> Some m | _ -> None) components)
    in
    let nbas =
      Array.of_list
        (List.filter_map (function Nondet a -> Some a | _ -> None) components)
    in
    let restricted = restrict anchor bodies in
    match product_realizable restricted ~dets ~nbas ~budget with
    | true -> Realizable
    | false -> Unrealizable
    | exception Budget_exceeded -> Unknown

(* Deletion-based minimization: drop each member that leaves the rest
   unrealizable.  Minimal w.r.t. deletion; an Unknown keeps the member
   (conservative). *)
let unrealizable_core ~model ~actions ?budget specs =
  let rec minimize keep = function
    | [] -> List.rev keep
    | spec :: rest ->
        let without = List.rev_append keep rest in
        if realizable ~model ~actions ?budget without = Unrealizable then
          minimize keep rest
        else minimize (spec :: keep) rest
  in
  List.map fst (minimize [] specs)

(* ---------------- coverage matrix ---------------- *)

let coverage ~vocabulary specs =
  List.map
    (fun atom ->
      ( atom,
        List.filter_map
          (fun (name, phi) ->
            if Symbol.mem atom (Ltl.atoms phi) then Some name
            else None)
          specs ))
    vocabulary

let undistinguishing ~pool specs =
  match pool with
  | [] | [ _ ] -> []
  | _ ->
      List.filter_map
        (fun (name, _) ->
          let statuses =
            List.map (fun (_, satisfied) -> List.mem name satisfied) pool
          in
          match statuses with
          | [] -> None
          | first :: rest ->
              if List.for_all (( = ) first) rest then Some name else None)
        specs

(* phi is jointly redundant relative to [model] when no model trace
   satisfies the other specifications but not phi — i.e. the book with
   phi replaced by its negation is unrealizable.  Strictly beyond the
   pairwise sweep: the whole rest of the book is the antecedent. *)
let joint_redundancies ~model ~actions ?budget specs =
  if List.length specs < 3 then []
  else
    List.filter_map
      (fun (name, phi) ->
        let others = List.filter (fun (n, _) -> n <> name) specs in
        let pairwise_implied =
          List.exists (fun (_, psi) -> Spec_sanity.implies psi phi) others
        in
        if pairwise_implied then None (* already SPEC003 *)
        else
          match
            realizable ~model ~actions ?budget
              (("neg_" ^ name, Ltl.Not phi) :: others)
          with
          | Unrealizable -> Some name
          | Realizable | Unknown -> None)
      specs

(* ---------------- the suite-level check ---------------- *)

let check ~suite ?(max_core = 3) ?budget ?(propositions = [])
    ?(actions = []) ?(models = []) ?(pool = []) ?(redundancy = true) specs =
  let diag = ref [] in
  let add d = diag := d :: !diag in
  let artifact = Diagnostic.Suite suite in
  (* SUITE001: minimal jointly-unsatisfiable cores *)
  List.iter
    (fun core ->
      add
        (Diagnostic.make ~code:"SUITE001" ~severity:Diagnostic.Error ~artifact
           ~witness:(String.concat ", " core)
           (Printf.sprintf
              "jointly unsatisfiable: {%s} has no model at all (minimal \
               conflict core: removing any member restores satisfiability)"
              (String.concat ", " core))))
    (conflict_cores ~max_core specs);
  (* SUITE002/SUITE003: realizability against each world model *)
  List.iter
    (fun (model_name, model) ->
      match realizable ~model ~actions ?budget specs with
      | Realizable -> ()
      | Unrealizable ->
          let core = unrealizable_core ~model ~actions ?budget specs in
          add
            (Diagnostic.make ~code:"SUITE002" ~severity:Diagnostic.Error
               ~artifact
               ~witness:(String.concat ", " core)
               (Printf.sprintf
                  "unrealizable against world model %s: no controller can \
                   satisfy the whole book (minimal core: {%s})"
                  model_name (String.concat ", " core)))
      | Unknown ->
          add
            (Diagnostic.make ~code:"SUITE003" ~severity:Diagnostic.Info
               ~artifact ~witness:model_name
               (Printf.sprintf
                  "realizability against world model %s undecided (product \
                   budget exceeded)"
                  model_name)))
    models;
  (* SPEC005/SPEC006: unconstrained vocabulary *)
  List.iter
    (fun (atom, constrainers) ->
      if constrainers = [] then
        add
          (Diagnostic.make ~code:"SPEC005" ~severity:Diagnostic.Warning
             ~artifact ~witness:atom
             (Printf.sprintf
                "proposition %S is constrained by no specification — \
                 behavior on it is formally unchecked"
                atom)))
    (coverage ~vocabulary:propositions specs);
  List.iter
    (fun (atom, constrainers) ->
      if constrainers = [] then
        add
          (Diagnostic.make ~code:"SPEC006" ~severity:Diagnostic.Warning
             ~artifact ~witness:atom
             (Printf.sprintf
                "action %S is constrained by no specification — \
                 controllers may emit it freely"
                atom)))
    (coverage ~vocabulary:actions specs);
  (* SPEC007: specifications that never split the response pool *)
  List.iter
    (fun name ->
      add
        (Diagnostic.make ~code:"SPEC007" ~severity:Diagnostic.Info
           ~artifact:(Diagnostic.Spec name)
           ~witness:(Printf.sprintf "%d-response pool" (List.length pool))
           (Printf.sprintf
              "%s never distinguishes any pair in the response pool — it \
               contributes nothing to the ranking signal"
              name)))
    (undistinguishing ~pool specs);
  (* SPEC008: model-relative joint redundancy, strictly beyond SPEC003 *)
  (match (models, redundancy) with
  | (model_name, model) :: _, true ->
      List.iter
        (fun name ->
          add
            (Diagnostic.make ~code:"SPEC008" ~severity:Diagnostic.Info
               ~artifact:(Diagnostic.Spec name) ~witness:model_name
               (Printf.sprintf
                  "%s is jointly redundant over %s: every model trace \
                   satisfying the rest of the book satisfies it too (not \
                   implied by any single specification)"
                  name model_name)))
        (joint_redundancies ~model ~actions ?budget specs)
  | _ -> ());
  Diagnostic.sort !diag
