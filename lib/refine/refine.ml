(* Counterexample-guided inference-time refinement (ROADMAP item 4).

   The loop closes the paper's verify-then-rank pipeline into a repair
   cycle without touching weights: verify the response, translate each
   violated specification's lasso counterexample into a feedback sentence
   (Dpoaf_analysis.Explain — replay-validated, so the loop never steers on
   a lying explanation), re-sample a candidate conditioned on that
   feedback, re-verify, and keep the candidate only if it strictly
   improves.  Iteration runs under an explicit budget: [max_rounds]
   rounds of [attempts] candidates each, with an optional per-round
   wall-clock allowance.

   Acceptance is monotone by construction: a round's best candidate (the
   fewest violated specifications, ties broken by the larger satisfied
   margin, then by the earliest attempt — all deterministic) replaces the
   current best only when its violated-spec count strictly shrinks, so
   the violated counts along any accepted trajectory are strictly
   decreasing.  With no deadline set the whole loop is a deterministic
   function of (response, seed, budget): sampling seeds are derived per
   (round, attempt), and the wall clock is read only to *stop* further
   rounds, never to pick between candidates — which is what lets the
   serving layer run refinement rounds on any number of pool workers and
   return bit-identical trajectories. *)

module Domain = Dpoaf_domain.Domain
module MC = Dpoaf_automata.Model_checker
module Symbol = Dpoaf_logic.Symbol
module Cache = Dpoaf_exec.Cache
module Metrics = Dpoaf_exec.Metrics
module Rng = Dpoaf_util.Rng
module Sampler = Dpoaf_lm.Sampler

type profile = {
  satisfied : string list;
  violated : string list;
  vacuous : string list;
}

type budget = {
  max_rounds : int;
  attempts : int;
  round_deadline_ms : float option;
}

let default_budget = { max_rounds = 3; attempts = 4; round_deadline_ms = None }

type round = {
  index : int;
  feedback : (string * string) list;
  candidate : string list;
  candidate_profile : profile;
  accepted : bool;
  margin : int;
  round_ms : float;
}

type status = Clean | Improved | Unchanged

let status_name = function
  | Clean -> "clean"
  | Improved -> "improved"
  | Unchanged -> "unchanged"

type outcome = {
  original : string list;
  original_profile : profile;
  final : string list;
  final_profile : profile;
  rounds : round list;
  status : status;
  deadline_hit : bool;
}

(* ---------------- explanation memoization ----------------

   Rendering an explanation replays the lasso through Trace.eval_lasso;
   across rounds the current best (and therefore its lassos) is often
   unchanged, so the rendering is memoized per (spec, lasso).  Symbol
   sets are canonicalized to sorted element lists first: two equal sets
   may be differently shaped balanced trees, which would defeat the
   cache's structural keying. *)

type explain_key = string * string list list * string list list
type explain_cache = (explain_key, string option) Cache.t

let explain_cache ~name : explain_cache = Cache.create ~capacity:512 ~name ()

type sample_fn =
  feedback:(string * string) list -> round:int -> attempt:int -> string list

type t = {
  domain : Domain.t;
  model : Dpoaf_automata.Ts.t;
  cache : explain_cache;
  sample : sample_fn;
}

let create ~domain ?model ?cache ~sample () =
  let (module D : Domain.S) = domain in
  let model = match model with Some m -> m | None -> D.universal () in
  let cache =
    match cache with
    | Some c -> c
    | None -> explain_cache ~name:(Printf.sprintf "refine.explain.%s" D.name)
  in
  { domain; model; cache; sample }

let profile t steps =
  let (module D : Domain.S) = t.domain in
  let p = D.profile_of_steps ~model:t.model steps in
  {
    satisfied = p.Domain.satisfied;
    violated =
      List.filter
        (fun n -> not (List.mem n p.Domain.satisfied))
        (Domain.spec_names t.domain);
    vacuous = p.Domain.vacuous;
  }

let explanations t ~violated steps =
  if violated = [] then []
  else begin
    let (module D : Domain.S) = t.domain in
    let controller, _ = D.controller_of_steps ~name:"refine" steps in
    let specs = List.filter (fun (n, _) -> List.mem n violated) (D.specs ()) in
    MC.verify_all ~model:t.model ~controller ~specs
    |> List.filter_map (fun (name, phi, verdict) ->
           match verdict with
           | MC.Holds -> None
           | MC.Fails cex ->
               let key =
                 ( name,
                   List.map Symbol.elements cex.MC.prefix,
                   List.map Symbol.elements cex.MC.cycle )
               in
               let text =
                 Cache.find_or_add t.cache key (fun () ->
                     Option.map
                       (fun (e : Dpoaf_analysis.Explain.t) ->
                         e.Dpoaf_analysis.Explain.text)
                       (Dpoaf_analysis.Explain.explain ~spec:(name, phi)
                          ~actions:D.actions cex))
               in
               Option.map (fun txt -> (name, txt)) text)
  end

(* fewest violations first; ties by larger satisfied set, then by the
   earlier attempt — a total deterministic order over a round's candidates *)
let better (_, p1, a1) (_, p2, a2) =
  let v1 = List.length p1.violated and v2 = List.length p2.violated in
  if v1 <> v2 then v1 < v2
  else
    let s1 = List.length p1.satisfied and s2 = List.length p2.satisfied in
    if s1 <> s2 then s1 > s2 else a1 < a2

let run ?(budget = default_budget) t steps =
  if budget.max_rounds < 1 then
    invalid_arg "Refine.run: max_rounds must be >= 1";
  if budget.attempts < 1 then invalid_arg "Refine.run: attempts must be >= 1";
  (match budget.round_deadline_ms with
  | Some ms when ms <= 0.0 ->
      invalid_arg "Refine.run: round_deadline_ms must be positive"
  | _ -> ());
  let original_profile = profile t steps in
  let best = ref steps in
  let best_profile = ref original_profile in
  let rounds = ref [] in
  let deadline_hit = ref false in
  let index = ref 1 in
  let continue_ = ref ((!best_profile).violated <> []) in
  while !continue_ && !index <= budget.max_rounds do
    let t0 = Unix.gettimeofday () in
    let feedback = explanations t ~violated:(!best_profile).violated !best in
    let candidates =
      List.init budget.attempts (fun attempt ->
          let candidate = t.sample ~feedback ~round:!index ~attempt in
          (candidate, profile t candidate, attempt))
    in
    let candidate, candidate_profile, _ =
      List.fold_left
        (fun acc c -> if better c acc then c else acc)
        (List.hd candidates) (List.tl candidates)
    in
    let margin =
      List.length (!best_profile).violated
      - List.length candidate_profile.violated
    in
    let accepted = margin > 0 in
    let round_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
    rounds :=
      {
        index = !index;
        feedback;
        candidate;
        candidate_profile;
        accepted;
        margin;
        round_ms;
      }
      :: !rounds;
    if accepted then begin
      best := candidate;
      best_profile := candidate_profile
    end;
    if (!best_profile).violated = [] then continue_ := false;
    (* the deadline only stops further rounds — it never influences which
       candidate a completed round accepted, so a deadline-free run stays
       a deterministic function of (response, seed, budget) *)
    (match budget.round_deadline_ms with
    | Some ms when round_ms > ms ->
        deadline_hit := true;
        continue_ := false
    | _ -> ());
    incr index
  done;
  let final_profile = !best_profile in
  let status =
    if final_profile.violated = [] then Clean
    else if
      List.length final_profile.violated
      < List.length original_profile.violated
    then Improved
    else Unchanged
  in
  {
    original = steps;
    original_profile;
    final = !best;
    final_profile;
    rounds = List.rev !rounds;
    status;
    deadline_hit = !deadline_hit;
  }

(* ---------------- conditioned re-sampling ---------------- *)

let derive_seed ~seed ~round ~attempt =
  seed + (round * 1_000_003) + (attempt * 7_919)

let revision_prompt ~encode ?sep ~prompt feedback =
  List.fold_left
    (fun acc (_, text) ->
      let sep = match sep with None -> [] | Some s -> [ s ] in
      acc @ sep @ encode text)
    prompt feedback

let conditioned_sampler ~snapshot ~encode ~decode ~prompt ~grammar ~min_clauses
    ~max_clauses ?(temperature = 1.0) ?prompt_cache ?sep ~seed () :
    sample_fn =
 fun ~feedback ~round ~attempt ->
  let revised = revision_prompt ~encode ?sep ~prompt feedback in
  let state =
    match prompt_cache with
    | Some cache ->
        Cache.find_or_add cache revised (fun () ->
            Sampler.prompt_state snapshot ~prompt:revised)
    | None -> Sampler.prompt_state snapshot ~prompt:revised
  in
  let rng = Rng.create (derive_seed ~seed ~round ~attempt) in
  decode
    (Sampler.sample_from snapshot rng ~state ~grammar ~min_clauses
       ~max_clauses ~temperature ())

(* ---------------- seeded repairable defects ---------------- *)

let defect_pool ?model domain ~seed ~per_task =
  let (module D : Domain.S) = domain in
  let model = match model with Some m -> m | None -> D.universal () in
  let rng = Rng.create seed in
  List.concat_map
    (fun task ->
      let careless =
        List.filter (fun s -> s.Domain.quality <> Domain.Good) (D.finals task)
      in
      if careless = [] then []
      else
        List.filter_map
          (fun _ ->
            let n = 1 + Rng.int rng 2 in
            let steps =
              List.init n (fun _ -> (Rng.choice_list rng careless).Domain.text)
            in
            let p = D.profile_of_steps ~model steps in
            let defective =
              List.exists
                (fun name -> not (List.mem name p.Domain.satisfied))
                (Domain.spec_names domain)
            in
            if defective then Some (task, steps) else None)
          (List.init per_task Fun.id))
    D.tasks
