(** Counterexample-guided inference-time refinement (ROADMAP item 4).

    The loop repairs a generated response without touching weights:
    verify, translate each violated specification's lasso through
    {!Dpoaf_analysis.Explain} into replay-validated feedback sentences,
    re-sample a candidate conditioned on that feedback, re-verify, and
    iterate under an explicit {!budget}.

    Acceptance is {e monotone}: a round's best candidate (fewest violated
    specifications; ties broken by the larger satisfied margin, then the
    earliest attempt) replaces the current best only when its
    violated-spec count strictly shrinks, so violated counts along any
    accepted trajectory strictly decrease.  Without a deadline the loop
    is a deterministic function of (response, seed, budget); the optional
    per-round deadline only stops {e further} rounds and never picks
    between candidates, so it cannot corrupt a trajectory, only truncate
    it. *)

type profile = {
  satisfied : string list;
  violated : string list;  (** rule-book order *)
  vacuous : string list;
}

type budget = {
  max_rounds : int;
  attempts : int;  (** candidates sampled per round *)
  round_deadline_ms : float option;
      (** wall-clock allowance per round; a round that overruns it is the
          last (checked after the round completes — truncation only) *)
}

val default_budget : budget
(** [{max_rounds = 3; attempts = 4; round_deadline_ms = None}]. *)

type round = {
  index : int;  (** 1-based *)
  feedback : (string * string) list;
      (** the [(spec, text)] explanations that conditioned this round's
          re-sampling — the current best's violated lassos, rendered *)
  candidate : string list;  (** the round's best candidate *)
  candidate_profile : profile;
  accepted : bool;
  margin : int;
      (** violated-spec count removed by the candidate relative to the
          round's incumbent; positive iff [accepted] *)
  round_ms : float;
      (** wall time of the round — telemetry only, never part of the
          deterministic wire encoding *)
}

type status = Clean | Improved | Unchanged

val status_name : status -> string
(** ["clean"] / ["improved"] / ["unchanged"]. *)

type outcome = {
  original : string list;
  original_profile : profile;
  final : string list;  (** the last accepted candidate (or the original) *)
  final_profile : profile;
  rounds : round list;  (** in round order *)
  status : status;
  deadline_hit : bool;
}

type explain_key = string * string list list * string list list
(** (spec name, prefix symbols, cycle symbols) — symbol sets
    canonicalized to their sorted element lists so structurally different
    trees of equal sets key identically. *)

type explain_cache = (explain_key, string option) Dpoaf_exec.Cache.t

val explain_cache : name:string -> explain_cache
(** A bounded (512-entry LRU) rendering cache registering
    [cache.<name>.{hits,misses,...}] metrics; share one per domain so
    repeated rounds over an unchanged lasso hit instead of re-rendering. *)

type sample_fn =
  feedback:(string * string) list -> round:int -> attempt:int -> string list
(** Re-sample one candidate conditioned on the feedback sentences.  Must
    be deterministic in its arguments for the loop's determinism
    contract to hold. *)

type t

val create :
  domain:Dpoaf_domain.Domain.t ->
  ?model:Dpoaf_automata.Ts.t ->
  ?cache:explain_cache ->
  sample:sample_fn ->
  unit ->
  t
(** A refiner for one domain pack.  [model] defaults to the pack's
    universal world model; [cache] defaults to a fresh
    [refine.explain.<domain>] cache (pass a shared one to keep hits
    across refiner instances). *)

val profile : t -> string list -> profile
(** Verify a response (memoized through the domain pack). *)

val explanations : t -> violated:string list -> string list -> (string * string) list
(** The [(spec, text)] feedback for the named violated specs of a
    response; rendering is memoized per (spec, lasso) in the refiner's
    {!explain_cache}.  Specs whose explanation fails replay validation
    are omitted — the loop never steers on a lying sentence. *)

val run : ?budget:budget -> t -> string list -> outcome
(** Refine one response.  A response that already verifies clean returns
    with [status = Clean] and no rounds.
    @raise Invalid_argument on a non-positive budget field. *)

(** {1 Conditioned re-sampling} *)

val derive_seed : seed:int -> round:int -> attempt:int -> int
(** The per-candidate sampling seed — a pure mix of the request seed with
    the (round, attempt) coordinates, so every candidate draws from its
    own deterministic stream. *)

val revision_prompt :
  encode:(string -> int list) ->
  ?sep:int ->
  prompt:int list ->
  (string * string) list ->
  int list
(** The original prompt followed by each feedback sentence's encoding
    (separated by [sep] when given): the token sequence conditioning a
    repaired candidate.  Out-of-vocabulary feedback words encode as
    [<unk>]. *)

val conditioned_sampler :
  snapshot:Dpoaf_lm.Sampler.snapshot ->
  encode:(string -> int list) ->
  decode:(int list -> string list) ->
  prompt:int list ->
  grammar:Dpoaf_lm.Grammar.t ->
  min_clauses:int ->
  max_clauses:int ->
  ?temperature:float ->
  ?prompt_cache:(int list, Dpoaf_lm.Sampler.state) Dpoaf_exec.Cache.t ->
  ?sep:int ->
  seed:int ->
  unit ->
  sample_fn
(** A {!sample_fn} over the language model: builds the
    {!revision_prompt}, folds it into a decoding state (through
    [prompt_cache] when given — the serving engine passes its
    [serve.prompt_state.<domain>] cache so repeated feedback prompts skip
    the fold), and grammar-decodes with the {!derive_seed} stream. *)

(** {1 Seeded repairable defects} *)

val defect_pool :
  ?model:Dpoaf_automata.Ts.t ->
  Dpoaf_domain.Domain.t ->
  seed:int ->
  per_task:int ->
  (Dpoaf_domain.Domain.task * string list) list
(** A deterministic pool of defective responses — 1–2 careless
    (non-[Good]) final steps per response, no observations — filtered to
    those actually violating at least one specification under [model]
    (default: universal).  The raw material for the repair benchmarks,
    tests and [make refine-check]. *)
