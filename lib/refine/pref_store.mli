(** Append-only rotating JSONL store of harvested preference pairs.

    Every accepted refinement round emits one
    {!Dpoaf_dpo.Pref_data.harvested} record (format [dpoaf-prefstore/1];
    the record encoding and its strict reader live in
    {!Dpoaf_dpo.Pref_data} so writer and reader cannot drift).  Records
    buffer in a mutex-protected ring and reach disk on {!flush} — the
    daemon flushes once per select turn — or synchronously when the ring
    fills, so no pair is ever dropped.  Rotation is size-based with
    shifted generations ([path] → [path.1] → … → [path.keep]), bounding
    the store's footprint like the ops journal's.

    Records carry no timestamp: a store file is a pure function of the
    requests that produced it, byte-comparable across runs.

    Metrics: [prefstore.records], [prefstore.rotations]. *)

type t

val create : ?max_bytes:int -> ?keep:int -> ?ring_capacity:int -> string -> t
(** [create path] with rotation at [max_bytes] (default 1 MiB), [keep]
    shifted generations (default 3) and a [ring_capacity]-record buffer
    (default 256).
    @raise Invalid_argument on a non-positive parameter. *)

val path : t -> string
(** The current-generation file path. *)

val append : t -> Dpoaf_dpo.Pref_data.harvested -> unit
(** Buffer one record (synchronously flushing if the ring is full).
    Thread-safe; a no-op after {!close}. *)

val flush : t -> unit
(** Drain the ring to disk and flush the channel. *)

val close : t -> unit
(** Flush, close the file, and reject further records. *)
