(* Append-only rotating JSONL store of harvested preference pairs.

   Every accepted refinement round yields one (original, repaired) pair
   with full per-spec provenance (Pref_data.harvested); the serving
   engine appends it here from worker domains, so records buffer in a
   ring under a mutex and the daemon's select loop flushes once per turn
   — mirroring the ops journal's write path.  If the ring fills between
   flushes, [append] flushes synchronously instead of dropping: a
   training-data store that silently loses pairs under load defeats its
   purpose.

   Unlike the journal, records carry no timestamp — a store record is a
   pure function of the request, which keeps harvested files
   byte-comparable across runs and lets tests pin them.

   Rotation is size-based and generation-shifting, exactly like the
   journal ([path] -> [path.1] -> ... -> [path.keep]); the record format
   itself (dpoaf-prefstore/1) lives in Dpoaf_dpo.Pref_data next to its
   reader, so writer and reader cannot drift apart. *)

module Json = Dpoaf_util.Json
module Metrics = Dpoaf_exec.Metrics
module Pref_data = Dpoaf_dpo.Pref_data

type config = { path : string; max_bytes : int; keep : int; ring_capacity : int }

type t = {
  config : config;
  ring : Pref_data.harvested Queue.t;
  mutable oc : out_channel option;
  mutable size : int; (* bytes written to the current file *)
  mutable closed : bool;
  smutex : Mutex.t;
}

let records_c = Metrics.counter "prefstore.records"
let rotations_c = Metrics.counter "prefstore.rotations"

let create ?(max_bytes = 1 lsl 20) ?(keep = 3) ?(ring_capacity = 256) path =
  if max_bytes < 1 then invalid_arg "Pref_store.create: max_bytes must be >= 1";
  if keep < 1 then invalid_arg "Pref_store.create: keep must be >= 1";
  if ring_capacity < 1 then
    invalid_arg "Pref_store.create: ring_capacity must be >= 1";
  {
    config = { path; max_bytes; keep; ring_capacity };
    ring = Queue.create ();
    oc = None;
    size = 0;
    closed = false;
    smutex = Mutex.create ();
  }

let path t = t.config.path

let gen_path t i =
  if i = 0 then t.config.path else Printf.sprintf "%s.%d" t.config.path i

let close_current_locked t =
  match t.oc with
  | Some oc ->
      close_out_noerr oc;
      t.oc <- None;
      t.size <- 0
  | None -> ()

let rotate_locked t =
  close_current_locked t;
  for i = t.config.keep - 1 downto 0 do
    let src = gen_path t i in
    if Sys.file_exists src then Sys.rename src (gen_path t (i + 1))
  done;
  Metrics.incr rotations_c

let ensure_open_locked t =
  match t.oc with
  | Some oc -> oc
  | None ->
      let oc =
        open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 t.config.path
      in
      t.size <- (try out_channel_length oc with Sys_error _ -> 0);
      t.oc <- Some oc;
      oc

let write_locked t h =
  let line = Json.to_string (Pref_data.json_of_harvested h) in
  let len = String.length line + 1 in
  let oc =
    let oc = ensure_open_locked t in
    if t.size > 0 && t.size + len > t.config.max_bytes then begin
      rotate_locked t;
      ensure_open_locked t
    end
    else oc
  in
  output_string oc line;
  output_char oc '\n';
  t.size <- t.size + len

let flush_locked t =
  if not (Queue.is_empty t.ring) then begin
    Queue.iter (write_locked t) t.ring;
    Queue.clear t.ring;
    match t.oc with Some oc -> flush oc | None -> ()
  end

let with_lock t f =
  Mutex.lock t.smutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.smutex) f

let append t h =
  with_lock t (fun () ->
      if not t.closed then begin
        Queue.push h t.ring;
        Metrics.incr records_c;
        if Queue.length t.ring >= t.config.ring_capacity then flush_locked t
      end)

let flush t = with_lock t (fun () -> if not t.closed then flush_locked t)

let close t =
  with_lock t (fun () ->
      if not t.closed then begin
        flush_locked t;
        close_current_locked t;
        t.closed <- true
      end)
