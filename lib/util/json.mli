(** Minimal JSON values: printing and strict parsing.

    Just enough for the telemetry files written by {!Dpoaf_exec.Trace} and
    read back by [dpoaf_cli report] — objects, arrays, strings, doubles —
    without an external dependency.  Numbers are represented as [float]
    (like every mainstream JSON library); [NaN]/[infinity] print as
    [null]. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering with proper string escaping. *)

val parse : string -> (t, string) result
(** Strict parse of one JSON document (no trailing garbage). *)

val parse_exn : string -> t
(** @raise Bad on malformed input. *)

exception Bad of string

(** {1 Accessors} — shallow, [None] on shape mismatch. *)

val member : string -> t -> t option
val to_float : t -> float option
val to_str : t -> string option
val to_list : t -> t list option

(** {1 Constructors} — aliases that read well at call sites. *)

val obj : (string * t) list -> t
val str : string -> t
val num : float -> t
val arr : t list -> t
