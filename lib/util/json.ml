(* A deliberately small JSON implementation: the telemetry files written by
   Dpoaf_exec.Trace and read back by `dpoaf_cli report` are plain data
   (objects, arrays, strings, numbers), so a recursive-descent parser over a
   string is all that is needed — no external dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---------------- printing ---------------- *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_num b v =
  if Float.is_nan v || Float.abs v = Float.infinity then
    Buffer.add_string b "null"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" v)
  else
    (* shortest representation that round-trips the exact value — %g with
       a fixed low precision would truncate µs-scale timestamps *)
    let s = Printf.sprintf "%.15g" v in
    let s = if float_of_string s = v then s else Printf.sprintf "%.17g" v in
    Buffer.add_string b s

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Num v -> add_num b v
  | Str s ->
      Buffer.add_char b '"';
      escape b s;
      Buffer.add_char b '"'
  | Arr xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          write b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          escape b k;
          Buffer.add_string b "\":";
          write b v)
        kvs;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  write b v;
  Buffer.contents b

(* ---------------- parsing ---------------- *)

exception Bad of string

let parse_exn s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
            if !pos + 4 > n then fail "bad \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let code =
              try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
            in
            (* non-ASCII code points are re-encoded as UTF-8 *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
            end
        | _ -> fail "bad escape");
        go ()
      end
      else begin
        Buffer.add_char b c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numchar s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> v
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ] in array"
          in
          Arr (items [])
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (kv :: acc)
            | Some '}' ->
                advance ();
                List.rev (kv :: acc)
            | _ -> fail "expected , or } in object"
          in
          Obj (fields [])
        end
    | Some _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* ---------------- accessors ---------------- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_float = function Num v -> Some v | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_list = function Arr xs -> Some xs | _ -> None

let obj kvs = Obj kvs
let str s = Str s
let num v = Num v
let arr xs = Arr xs
