(** The language model: a word-level autoregressive log-bilinear model.

    The next-token distribution conditions on the mean embedding of the
    last [context] tokens (prompt included):

    [h = tanh(mean E[w_i]);  logits = (W + A·B) h + bias]

    [W] is the frozen-at-fine-tuning output head carrying the LoRA adapter
    ([A·B]); pre-training trains [E], [W] and [bias] by maximum likelihood,
    DPO fine-tuning trains only [A] and [B] (paper, Appendix E).

    This is the repository's substitute for Llama2-7B: a parametric policy
    with computable sequence log-probabilities and gradients, which is all
    DPO-AF requires of the language model. *)

(** How the context tokens are condensed into the conditioning vector:
    [Bow] is the windowed mean-embedding (log-bilinear) default; [Gru] runs
    a gated recurrent unit over the context — slower but order-aware (see
    the bench's [abl-arch] section). *)
type arch = Bow | Gru

type config = { dim : int; context : int; lora_rank : int; arch : arch }

val default_config : config
(** dim 24, context 12, LoRA rank 4, [Bow]. *)

type gru = private {
  wz : Dpoaf_tensor.Tensor.t;
  uz : Dpoaf_tensor.Tensor.t;
  bz : Dpoaf_tensor.Tensor.t;
  wr : Dpoaf_tensor.Tensor.t;
  ur : Dpoaf_tensor.Tensor.t;
  br : Dpoaf_tensor.Tensor.t;
  wh : Dpoaf_tensor.Tensor.t;
  uh : Dpoaf_tensor.Tensor.t;
  bh : Dpoaf_tensor.Tensor.t;
}

type t = private {
  config : config;
  vocab : Vocab.t;
  embedding : Dpoaf_tensor.Tensor.t;  (** [V×d] *)
  out : Dpoaf_tensor.Lora.t;  (** output head [V×d] with adapter *)
  bias : Dpoaf_tensor.Tensor.t;  (** [V] *)
  gru : gru option;  (** present iff [config.arch = Gru] *)
}

val create : Dpoaf_util.Rng.t -> config -> Vocab.t -> t

val clone : t -> t
(** Deep copy (used for the frozen DPO reference model and checkpoints). *)

val params_pretrain : t -> Dpoaf_tensor.Optim.param list
(** Embedding, output base and bias — trained during MLE pre-training. *)

val params_lora : t -> Dpoaf_tensor.Optim.param list
(** Adapter matrices only — trained during DPO. *)

val context_of : t -> prompt:int list -> prefix:int list -> int list
(** The (at most [config.context]) token ids conditioning the next token:
    a [<bos>] marker, the prompt, then the response prefix. *)

(** {1 Differentiable scoring} *)

type bound
(** Model parameters bound as nodes on one tape (shared across positions of
    one or more sequences). *)

val bind : t -> Dpoaf_tensor.Autodiff.Tape.t -> bound

val tape_of_bound : bound -> Dpoaf_tensor.Autodiff.Tape.t

(** Kernel selection: [Fused] (production) scores each token with the fused
    {!Dpoaf_tensor.Autodiff.lora_logit_logprob} node and threads an
    incremental context; [Unfused] is the original primitive-op composition
    retained as the differential-test and benchmark reference.  Values and
    gradients are bit-identical between the two. *)
type impl = Fused | Unfused

val set_default_impl : impl -> unit
(** Process-wide default for the [?impl] arguments below ([Fused] at
    start-up).  Flip it only between runs, not while worker domains are
    scoring. *)

val default_impl : unit -> impl

val hidden_node :
  ?impl:impl -> t -> bound -> context:int list -> Dpoaf_tensor.Autodiff.t
(** The conditioning vector for the next-token distribution (differentiable
    path; {!Fwd} is the matching float path). *)

val lora_grads :
  t -> bound -> (Dpoaf_tensor.Optim.param * Dpoaf_tensor.Tensor.t) list
(** After a backward pass: gradients for {!params_lora}. *)

val pretrain_grads :
  t -> bound -> (Dpoaf_tensor.Optim.param * Dpoaf_tensor.Tensor.t) list

val step_logprob :
  ?impl:impl ->
  t ->
  bound ->
  context:int list ->
  allowed:int list ->
  target:int ->
  Dpoaf_tensor.Autodiff.t
(** Log-probability (scalar node) of [target] among [allowed] (renormalized
    over the allowed set).  @raise Invalid_argument if [target] is not
    allowed or [allowed] is empty. *)

type prompt_state
(** The differentiable state left by folding a prompt: the Bow context
    window, or the GRU hidden node after the prompt.  Building it once and
    scoring several responses from it shares the prompt-prefix work (DPO
    scores both preference legs from one state). *)

val prompt_state : t -> bound -> prompt:int list -> prompt_state

val response_logprob_node_from :
  t ->
  bound ->
  state:prompt_state ->
  grammar:Grammar.t ->
  min_clauses:int ->
  max_clauses:int ->
  tokens:int list ->
  Dpoaf_tensor.Autodiff.t
(** Differentiable total log-probability of a grammar-accepted response,
    scored incrementally from a shared {!prompt_state} (always the fused
    path).  @raise Invalid_argument if the grammar rejects [tokens]. *)

val response_logprob_node :
  ?impl:impl ->
  t ->
  bound ->
  prompt:int list ->
  grammar:Grammar.t ->
  min_clauses:int ->
  max_clauses:int ->
  tokens:int list ->
  Dpoaf_tensor.Autodiff.t
(** Differentiable total log-probability of a grammar-accepted response.
    @raise Invalid_argument if the grammar rejects [tokens]. *)

val response_logprob :
  t ->
  prompt:int list ->
  grammar:Grammar.t ->
  min_clauses:int ->
  max_clauses:int ->
  tokens:int list ->
  float
(** Evaluation-only wrapper around {!response_logprob_node}. *)

(** {1 Float forward pass}

    The non-differentiable mirror of the hidden-state path, shared by the
    sampler and the serving layer.  It performs the same float operations
    as {!hidden_node}, so sampling and scoring agree exactly; states are
    immutable and safe to cache across domains.  Extending a state is O(1)
    in the sequence length (rolling Bow window / GRU recurrence), which is
    what makes autoregressive generation O(T·d). *)
module Fwd : sig
  type state

  val init : t -> prompt:int list -> state
  (** The state conditioning the first response token. *)

  val extend : t -> state -> int -> state
  (** Push one generated token. *)

  val hidden : t -> state -> float array
  (** The conditioning vector for the next token.  Read-only: the returned
      array may be shared with the state. *)

  val hidden_of_context : t -> int list -> float array
  (** The conditioning vector for an explicit context (as produced by
      {!context_of}); the incremental [init]/[extend] walk visits exactly
      these values. *)
end
