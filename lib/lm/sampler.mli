(** Grammar-constrained sampling from the language model.

    Sampling uses a parameter snapshot (the LoRA adapter materialized into
    the output head) so repeated sampling does not rebuild autodiff tapes.
    Decoding is incremental: a {!state} carries the rolling context
    (Bow window or GRU hidden vector, via {!Model.Fwd}), so generating a
    response is linear in its length, and a prompt's state can be built
    once and reused across requests (the serving layer caches them). *)

type snapshot

val snapshot : Model.t -> snapshot
(** Capture the model's current effective parameters. *)

type state
(** Immutable decoding state; safe to cache and share across domains. *)

val prompt_state : snapshot -> prompt:int list -> state
(** The state conditioning the first response token. *)

val extend : snapshot -> state -> int -> state
(** Push one generated token. *)

val step_distribution :
  snapshot -> context:int list -> allowed:int list -> temperature:float -> float array
(** Probabilities over [allowed] (renormalized; sums to 1).
    @raise Invalid_argument on an empty allowed set or non-positive
    temperature. *)

val state_distribution :
  snapshot -> state:state -> allowed:int list -> temperature:float -> float array
(** As {!step_distribution}, conditioning on a decoding state. *)

val sample_from :
  snapshot ->
  Dpoaf_util.Rng.t ->
  state:state ->
  grammar:Grammar.t ->
  min_clauses:int ->
  max_clauses:int ->
  ?temperature:float ->
  unit ->
  int list
(** One response decoded from a prompt state (as {!sample}, with the
    prompt fold already done). *)

val sample :
  snapshot ->
  Dpoaf_util.Rng.t ->
  prompt:int list ->
  grammar:Grammar.t ->
  min_clauses:int ->
  max_clauses:int ->
  ?temperature:float ->
  unit ->
  int list
(** One response: token ids ending in [<eos>], accepted by the grammar. *)

val greedy :
  snapshot ->
  prompt:int list ->
  grammar:Grammar.t ->
  min_clauses:int ->
  max_clauses:int ->
  int list
(** Most-likely-token decoding (deterministic). *)
