module Tensor = Dpoaf_tensor.Tensor
module Lora = Dpoaf_tensor.Lora

(* Checkpoints open with a fixed 8-byte magic and a binary version word
   before the marshalled payload, so [load] can tell "not a checkpoint at
   all" from "a checkpoint written by another version of this code" and
   report either precisely — the serve daemon loads checkpoints at
   startup, where a bare [Failure "version mismatch"] is not actionable. *)
let magic = "DPOAFCKP"
let version = 3

exception Corrupt of { path : string; reason : string }

let () =
  Printexc.register_printer (function
    | Corrupt { path; reason } ->
        Some (Printf.sprintf "Checkpoint.Corrupt(%s: %s)" path reason)
    | _ -> None)

let corrupt path fmt =
  Printf.ksprintf (fun reason -> raise (Corrupt { path; reason })) fmt

type blob = {
  blob_version : int;
  dim : int;
  context : int;
  lora_rank : int;
  is_gru : bool;
  words : string list;
  embedding : float array;
  out_base : float array;
  out_a : float array;
  out_b : float array;
  bias : float array;
  gru : float array list;  (* 9 tensors in Model.gru_tensors order; [] for Bow *)
}

let data t = Array.init (Tensor.numel t) (Tensor.get t)

let save model path =
  let cfg = model.Model.config in
  let blob =
    {
      blob_version = version;
      dim = cfg.Model.dim;
      context = cfg.Model.context;
      lora_rank = cfg.Model.lora_rank;
      is_gru = cfg.Model.arch = Model.Gru;
      words = Vocab.export model.Model.vocab;
      embedding = data model.Model.embedding;
      out_base = data model.Model.out.Lora.base;
      out_a = data model.Model.out.Lora.a;
      out_b = data model.Model.out.Lora.b;
      bias = data model.Model.bias;
      gru =
        (match model.Model.gru with
        | None -> []
        | Some g ->
            List.map data
              [ g.Model.wz; g.Model.uz; g.Model.bz; g.Model.wr; g.Model.ur;
                g.Model.br; g.Model.wh; g.Model.uh; g.Model.bh ]);
    }
  in
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc magic;
      output_binary_int oc version;
      Marshal.to_channel oc blob [])

let restore ~path ~what dst src =
  if Tensor.numel dst <> Array.length src then
    corrupt path "tensor %s has %d elements, expected %d" what
      (Array.length src) (Tensor.numel dst);
  Array.iteri (fun i v -> Tensor.set dst i v) src

let read_blob path ic =
  let found_magic =
    try really_input_string ic (String.length magic)
    with End_of_file ->
      corrupt path "file is %d byte(s) long, shorter than the %d-byte magic"
        (in_channel_length ic) (String.length magic)
  in
  if found_magic <> magic then
    corrupt path "bad magic %S (expected %S): not a DPO-AF checkpoint file"
      found_magic magic;
  let found_version =
    try input_binary_int ic
    with End_of_file -> corrupt path "truncated before the version word"
  in
  if found_version <> version then
    corrupt path
      "version mismatch: file has checkpoint version %d, this build reads \
       version %d (re-save the model with the current build)"
      found_version version;
  try (Marshal.from_channel ic : blob)
  with End_of_file | Failure _ ->
    corrupt path "truncated or corrupt payload after a valid header"

let load path =
  let ic =
    try open_in_bin path
    with Sys_error msg -> corrupt path "cannot open: %s" msg
  in
  let blob = Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read_blob path ic) in
  if blob.blob_version <> version then
    corrupt path "payload declares version %d, header declared %d"
      blob.blob_version version;
  let restore dst src ~what = restore ~path ~what dst src in
  let vocab = Vocab.import blob.words in
  let config =
    {
      Model.dim = blob.dim;
      context = blob.context;
      lora_rank = blob.lora_rank;
      arch = (if blob.is_gru then Model.Gru else Model.Bow);
    }
  in
  let model = Model.create (Dpoaf_util.Rng.create 0) config vocab in
  restore model.Model.embedding blob.embedding ~what:"embedding";
  restore model.Model.out.Lora.base blob.out_base ~what:"out.base";
  restore model.Model.out.Lora.a blob.out_a ~what:"out.a";
  restore model.Model.out.Lora.b blob.out_b ~what:"out.b";
  restore model.Model.bias blob.bias ~what:"bias";
  (match model.Model.gru with
  | None ->
      if blob.gru <> [] then
        corrupt path "payload carries %d GRU tensors for a non-GRU config"
          (List.length blob.gru)
  | Some g ->
      if List.length blob.gru <> 9 then
        corrupt path "payload carries %d GRU tensors, expected 9"
          (List.length blob.gru);
      List.iteri
        (fun i (dst, what) -> restore dst (List.nth blob.gru i) ~what)
        [ (g.Model.wz, "gru.wz"); (g.Model.uz, "gru.uz"); (g.Model.bz, "gru.bz");
          (g.Model.wr, "gru.wr"); (g.Model.ur, "gru.ur"); (g.Model.br, "gru.br");
          (g.Model.wh, "gru.wh"); (g.Model.uh, "gru.uh"); (g.Model.bh, "gru.bh") ]);
  model
