module Tensor = Dpoaf_tensor.Tensor
module Lora = Dpoaf_tensor.Lora

type snapshot = {
  model : Model.t;
  effective_out : Tensor.t;  (* W + A·B at snapshot time *)
}

let snapshot model = { model; effective_out = Lora.effective model.Model.out }

type state = Model.Fwd.state

let prompt_state s ~prompt = Model.Fwd.init s.model ~prompt
let extend s state tok = Model.Fwd.extend s.model state tok

let distribution_of_hidden s ~h ~allowed ~temperature =
  if allowed = [] then invalid_arg "Sampler.step_distribution: empty allowed set";
  if temperature <= 0.0 then
    invalid_arg "Sampler.step_distribution: temperature must be positive";
  let d = Array.length h in
  let eff = s.effective_out.Tensor.data
  and bias = s.model.Model.bias.Tensor.data in
  let logits =
    List.map
      (fun tok ->
        let acc = ref bias.(tok) in
        let off = tok * d in
        for j = 0 to d - 1 do
          acc := !acc +. (eff.(off + j) *. h.(j))
        done;
        !acc /. temperature)
      allowed
  in
  let m = List.fold_left Float.max neg_infinity logits in
  let exps = List.map (fun l -> exp (l -. m)) logits in
  let z = List.fold_left ( +. ) 0.0 exps in
  Array.of_list (List.map (fun e -> e /. z) exps)

let step_distribution s ~context ~allowed ~temperature =
  distribution_of_hidden s
    ~h:(Model.Fwd.hidden_of_context s.model context)
    ~allowed ~temperature

let state_distribution s ~state ~allowed ~temperature =
  distribution_of_hidden s ~h:(Model.Fwd.hidden s.model state) ~allowed
    ~temperature

let pick_index rng probs =
  let x = Dpoaf_util.Rng.float rng in
  let n = Array.length probs in
  let rec go i acc =
    if i >= n - 1 then n - 1
    else if x < acc +. probs.(i) then i
    else go (i + 1) (acc +. probs.(i))
  in
  go 0 0.0

let sample_from s rng ~state ~grammar ~min_clauses ~max_clauses
    ?(temperature = 1.0) () =
  let rec go gstate st prefix =
    if Grammar.is_final grammar gstate then List.rev prefix
    else begin
      let allowed = Grammar.allowed grammar ~min_clauses ~max_clauses gstate in
      let probs = state_distribution s ~state:st ~allowed ~temperature in
      let tok = List.nth allowed (pick_index rng probs) in
      match Grammar.advance grammar gstate tok with
      | Some gstate' -> go gstate' (extend s st tok) (tok :: prefix)
      | None -> assert false
    end
  in
  go (Grammar.start grammar) state []

let sample s rng ~prompt ~grammar ~min_clauses ~max_clauses
    ?(temperature = 1.0) () =
  sample_from s rng ~state:(prompt_state s ~prompt) ~grammar ~min_clauses
    ~max_clauses ~temperature ()

let greedy s ~prompt ~grammar ~min_clauses ~max_clauses =
  let rec go gstate st prefix =
    if Grammar.is_final grammar gstate then List.rev prefix
    else begin
      let allowed = Grammar.allowed grammar ~min_clauses ~max_clauses gstate in
      let probs = state_distribution s ~state:st ~allowed ~temperature:1.0 in
      let best = ref 0 in
      Array.iteri (fun i p -> if p > probs.(!best) then best := i) probs;
      let tok = List.nth allowed !best in
      match Grammar.advance grammar gstate tok with
      | Some gstate' -> go gstate' (extend s st tok) (tok :: prefix)
      | None -> assert false
    end
  in
  go (Grammar.start grammar) (prompt_state s ~prompt) []
