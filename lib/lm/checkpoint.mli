(** Model (de)serialization.

    Checkpoints open with a fixed 8-byte magic string and a binary version
    word, followed by a marshalled blob holding the configuration,
    vocabulary and all parameter tensors.  {!load} validates the header
    before touching the payload and raises {!Corrupt} with the offending
    path and a precise reason — wrong magic (not a checkpoint at all),
    version skew (expected vs found), truncation, or a tensor-shape
    mismatch — so a daemon failing at startup says exactly what to fix. *)

exception Corrupt of { path : string; reason : string }

val version : int
(** The checkpoint format version this build reads and writes. *)

val save : Model.t -> string -> unit
(** Write to a file path. *)

val load : string -> Model.t
(** @raise Corrupt on unreadable, malformed, truncated or
    version-mismatched files; the message names the path and the expected
    vs found magic/version. *)
