module Tensor = Dpoaf_tensor.Tensor
module Autodiff = Dpoaf_tensor.Autodiff
module Lora = Dpoaf_tensor.Lora
module Optim = Dpoaf_tensor.Optim

type arch = Bow | Gru

type config = { dim : int; context : int; lora_rank : int; arch : arch }

let default_config = { dim = 24; context = 12; lora_rank = 4; arch = Bow }

(* Gated-recurrent-unit conditioner: h' = (1-z)∘h + z∘tanh(Wh x + Uh (r∘h) + bh). *)
type gru = {
  wz : Tensor.t; uz : Tensor.t; bz : Tensor.t;
  wr : Tensor.t; ur : Tensor.t; br : Tensor.t;
  wh : Tensor.t; uh : Tensor.t; bh : Tensor.t;
}

let gru_tensors g = [ g.wz; g.uz; g.bz; g.wr; g.ur; g.br; g.wh; g.uh; g.bh ]

let gru_names = [ "gru.wz"; "gru.uz"; "gru.bz"; "gru.wr"; "gru.ur"; "gru.br";
                  "gru.wh"; "gru.uh"; "gru.bh" ]

type t = {
  config : config;
  vocab : Vocab.t;
  embedding : Tensor.t;
  out : Lora.t;
  bias : Tensor.t;
  gru : gru option;  (* Some iff config.arch = Gru *)
}

let create rng config vocab =
  let v = Vocab.size vocab and d = config.dim in
  let scale = 1.0 /. sqrt (float_of_int d) in
  let mat () = Tensor.gaussian rng [| d; d |] ~stddev:scale in
  {
    config;
    vocab;
    embedding = Tensor.gaussian rng [| v; d |] ~stddev:scale;
    out = Lora.create rng ~base:(Tensor.gaussian rng [| v; d |] ~stddev:scale)
        ~rank:config.lora_rank;
    bias = Tensor.zeros [| v |];
    gru =
      (match config.arch with
      | Bow -> None
      | Gru ->
          Some
            {
              wz = mat (); uz = mat (); bz = Tensor.zeros [| d |];
              wr = mat (); ur = mat (); br = Tensor.zeros [| d |];
              wh = mat (); uh = mat (); bh = Tensor.zeros [| d |];
            });
  }

let clone t =
  {
    t with
    embedding = Tensor.copy t.embedding;
    out = Lora.clone t.out;
    bias = Tensor.copy t.bias;
    gru =
      Option.map
        (fun g ->
          {
            wz = Tensor.copy g.wz; uz = Tensor.copy g.uz; bz = Tensor.copy g.bz;
            wr = Tensor.copy g.wr; ur = Tensor.copy g.ur; br = Tensor.copy g.br;
            wh = Tensor.copy g.wh; uh = Tensor.copy g.uh; bh = Tensor.copy g.bh;
          })
        t.gru;
  }

let params_pretrain t =
  [
    Optim.param "embedding" t.embedding;
    Optim.param "out.base" t.out.Lora.base;
    Optim.param "bias" t.bias;
  ]
  @
  match t.gru with
  | None -> []
  | Some g -> List.map2 Optim.param gru_names (gru_tensors g)

let params_lora t = Lora.params ~prefix:"out" t.out

let context_of t ~prompt ~prefix =
  let all = (Vocab.bos t.vocab :: prompt) @ prefix in
  match t.config.arch with
  | Gru -> all (* the recurrence carries unbounded history *)
  | Bow ->
      let n = List.length all in
      let k = t.config.context in
      if n <= k then all
      else List.filteri (fun i _ -> i >= n - k) all

type bound = {
  tape : Autodiff.Tape.t;
  emb : Autodiff.t;
  base : Autodiff.t;
  a : Autodiff.t;
  b : Autodiff.t;
  bias_n : Autodiff.t;
  gru_n : Autodiff.t list;  (* same order as gru_tensors; [] for Bow *)
}

let bind t tape =
  {
    tape;
    emb = Autodiff.var tape t.embedding;
    base = Autodiff.var tape t.out.Lora.base;
    a = Autodiff.var tape t.out.Lora.a;
    b = Autodiff.var tape t.out.Lora.b;
    bias_n = Autodiff.var tape t.bias;
    gru_n =
      (match t.gru with
      | None -> []
      | Some g -> List.map (Autodiff.var tape) (gru_tensors g));
  }

let tape_of_bound bound = bound.tape

(* Which scoring kernels to use.  [Fused] is the production path (one tape
   node per scored token component); [Unfused] is the original primitive-op
   composition, kept as the differential-test and benchmark reference.
   Both produce bit-identical values and gradients. *)
type impl = Fused | Unfused

let impl_default = ref Fused
let set_default_impl impl = impl_default := impl
let default_impl () = !impl_default
let resolve_impl = function Some impl -> impl | None -> !impl_default

let lora_grads t bound =
  match params_lora t with
  | [ pa; pb ] -> [ (pa, Autodiff.grad bound.a); (pb, Autodiff.grad bound.b) ]
  | _ -> assert false

let pretrain_grads t bound =
  match params_pretrain t with
  | pe :: pw :: pbias :: gru_params ->
      [
        (pe, Autodiff.grad bound.emb);
        (pw, Autodiff.grad bound.base);
        (pbias, Autodiff.grad bound.bias_n);
      ]
      @ List.map2 (fun p node -> (p, Autodiff.grad node)) gru_params bound.gru_n
  | _ -> assert false

(* One GRU update: h' = (1-z)âh + zâtanh(Wh x + Uh (râh) + bh). *)
let gru_step_node t bound h tok =
  let tape = bound.tape in
  match bound.gru_n with
  | [ wz; uz; bz; wr; ur; br; wh; uh; bh ] ->
      let d = t.config.dim in
      let ones = Autodiff.const tape (Tensor.create [| d |] 1.0) in
      let x = Autodiff.rows_mean tape bound.emb [ tok ] in
      let gate w u bias_v =
        Autodiff.add tape
          (Autodiff.add tape (Autodiff.matvec tape w x) (Autodiff.matvec tape u h))
          bias_v
      in
      let z = Autodiff.sigmoid tape (gate wz uz bz) in
      let r = Autodiff.sigmoid tape (gate wr ur br) in
      let rh = Autodiff.mul tape r h in
      let candidate =
        Autodiff.tanh_ tape
          (Autodiff.add tape
             (Autodiff.add tape (Autodiff.matvec tape wh x) (Autodiff.matvec tape uh rh))
             bh)
      in
      let keep = Autodiff.sub tape ones z in
      Autodiff.add tape (Autodiff.mul tape keep h) (Autodiff.mul tape z candidate)
  | _ -> invalid_arg "Model.gru_step_node: not a GRU model"

let gru_init_node t bound =
  Autodiff.const bound.tape (Tensor.zeros [| t.config.dim |])

(* The rolling Bow context: pushing [tok] onto a window kept at
   [context_of]'s value gives exactly [context_of] for the longer prefix,
   without rebuilding the list — the O(T²) → O(T) step. *)
let bow_push t window tok =
  let w = window @ [ tok ] in
  if List.length w > t.config.context then List.tl w else w

(* The conditioning vector: mean embedding (Bow) or a GRU pass (Gru). *)
let hidden_node ?impl t bound ~context =
  let tape = bound.tape in
  match bound.gru_n with
  | [] -> (
      match resolve_impl impl with
      | Fused -> Autodiff.bow_hidden tape bound.emb context
      | Unfused -> Autodiff.tanh_ tape (Autodiff.rows_mean tape bound.emb context))
  | _ -> List.fold_left (gru_step_node t bound) (gru_init_node t bound) context

let target_pos_of ~allowed ~target =
  if allowed = [] then invalid_arg "Model.step_logprob: empty allowed set";
  match List.find_index (fun tok -> tok = target) allowed with
  | Some i -> i
  | None -> invalid_arg "Model.step_logprob: target not allowed"

let logprob_from_hidden ?impl _t bound ~h ~allowed ~target =
  let target_pos = target_pos_of ~allowed ~target in
  let tape = bound.tape in
  match resolve_impl impl with
  | Fused ->
      Autodiff.lora_logit_logprob tape ~base:bound.base ~a:bound.a ~b:bound.b
        ~bias:bound.bias_n ~h ~allowed ~target_pos
  | Unfused ->
      let wx = Autodiff.gather_matvec tape bound.base h allowed in
      let bh = Autodiff.matvec tape bound.b h in
      let abx = Autodiff.gather_matvec tape bound.a bh allowed in
      let bias = Autodiff.gather tape bound.bias_n allowed in
      let logits = Autodiff.add tape (Autodiff.add tape wx abx) bias in
      Autodiff.pick tape (Autodiff.log_softmax tape logits) target_pos

let step_logprob ?impl t bound ~context ~allowed ~target =
  let impl = resolve_impl impl in
  let h = hidden_node ~impl t bound ~context in
  logprob_from_hidden ~impl t bound ~h ~allowed ~target

(* The differentiable state left by scoring a prompt, shared between the
   responses scored after it (both DPO legs reuse one prompt fold). *)
type prompt_state = P_bow of int list | P_gru of Autodiff.t

let prompt_state t bound ~prompt =
  match t.config.arch with
  | Bow -> P_bow (context_of t ~prompt ~prefix:[])
  | Gru ->
      P_gru
        (List.fold_left (gru_step_node t bound) (gru_init_node t bound)
           (Vocab.bos t.vocab :: prompt))

let response_logprob_node_from t bound ~state ~grammar ~min_clauses ~max_clauses
    ~tokens =
  let tape = bound.tape in
  let rec walk gstate pstate acc = function
    | [] ->
        if Grammar.is_final grammar gstate then acc
        else invalid_arg "Model.response_logprob_node: incomplete response"
    | tok :: rest -> (
        let allowed = Grammar.allowed grammar ~min_clauses ~max_clauses gstate in
        match Grammar.advance grammar gstate tok with
        | None -> invalid_arg "Model.response_logprob_node: grammar rejects token"
        | Some gstate' ->
            let h =
              match pstate with
              | P_bow window -> Autodiff.bow_hidden tape bound.emb window
              | P_gru hn -> hn
            in
            let lp = logprob_from_hidden ~impl:Fused t bound ~h ~allowed ~target:tok in
            let pstate' =
              match pstate with
              | P_bow window -> P_bow (bow_push t window tok)
              | P_gru hn -> P_gru (gru_step_node t bound hn tok)
            in
            walk gstate' pstate' (lp :: acc) rest)
  in
  Autodiff.add_list tape (walk (Grammar.start grammar) state [] tokens)

(* The original per-token composition, kept verbatim as the reference the
   fused/incremental path is differentially tested (and benchmarked)
   against: Bow rebuilds the context window and its hidden node from
   scratch at every position. *)
let response_logprob_node_unfused t bound ~prompt ~grammar ~min_clauses
    ~max_clauses ~tokens =
  let terms =
    match t.config.arch with
    | Bow ->
        let rec walk state prefix acc = function
          | [] ->
              if Grammar.is_final grammar state then acc
              else invalid_arg "Model.response_logprob_node: incomplete response"
          | tok :: rest -> (
              let allowed = Grammar.allowed grammar ~min_clauses ~max_clauses state in
              match Grammar.advance grammar state tok with
              | None ->
                  invalid_arg "Model.response_logprob_node: grammar rejects token"
              | Some state' ->
                  let context = context_of t ~prompt ~prefix:(List.rev prefix) in
                  let lp =
                    step_logprob ~impl:Unfused t bound ~context ~allowed ~target:tok
                  in
                  walk state' (tok :: prefix) (lp :: acc) rest)
        in
        walk (Grammar.start grammar) [] [] tokens
    | Gru ->
        (* the recurrence was already incremental pre-fusion *)
        let h0 =
          List.fold_left (gru_step_node t bound) (gru_init_node t bound)
            (Vocab.bos t.vocab :: prompt)
        in
        let rec walk state h acc = function
          | [] ->
              if Grammar.is_final grammar state then acc
              else invalid_arg "Model.response_logprob_node: incomplete response"
          | tok :: rest -> (
              let allowed = Grammar.allowed grammar ~min_clauses ~max_clauses state in
              match Grammar.advance grammar state tok with
              | None ->
                  invalid_arg "Model.response_logprob_node: grammar rejects token"
              | Some state' ->
                  let lp =
                    logprob_from_hidden ~impl:Unfused t bound ~h ~allowed ~target:tok
                  in
                  walk state' (gru_step_node t bound h tok) (lp :: acc) rest)
        in
        walk (Grammar.start grammar) h0 [] tokens
  in
  Autodiff.add_list bound.tape terms

let response_logprob_node ?impl t bound ~prompt ~grammar ~min_clauses ~max_clauses
    ~tokens =
  match resolve_impl impl with
  | Fused ->
      let state = prompt_state t bound ~prompt in
      response_logprob_node_from t bound ~state ~grammar ~min_clauses ~max_clauses
        ~tokens
  | Unfused ->
      response_logprob_node_unfused t bound ~prompt ~grammar ~min_clauses
        ~max_clauses ~tokens

let response_logprob t ~prompt ~grammar ~min_clauses ~max_clauses ~tokens =
  let tape = Autodiff.Tape.create () in
  let bound = bind t tape in
  let node =
    response_logprob_node t bound ~prompt ~grammar ~min_clauses ~max_clauses ~tokens
  in
  Tensor.get (Autodiff.value node) 0

(* Float (non-differentiable) forward pass, shared by the sampler and the
   serving layer.  Mirrors the autodiff hidden path operation-for-operation
   so sampled distributions agree with scored log-probabilities; the
   differential test in test/test_lm.ml pins the two together.  States are
   immutable, so they can be cached and shared across domains. *)
module Fwd = struct
  type state = Bow_w of int list | Gru_h of float array

  let bow_hidden t context =
    let d = t.config.dim in
    let emb = t.embedding.Tensor.data in
    let h = Array.make d 0.0 in
    let k = float_of_int (max 1 (List.length context)) in
    List.iter
      (fun tok ->
        let off = tok * d in
        for j = 0 to d - 1 do
          h.(j) <- h.(j) +. (emb.(off + j) /. k)
        done)
      context;
    Array.map tanh h

  let sigmoid x = 1.0 /. (1.0 +. exp (-.x))

  let gru_step t g h tok =
    let d = t.config.dim in
    let matvec (m : Tensor.t) v =
      let md = m.Tensor.data in
      Array.init d (fun i ->
          let acc = ref 0.0 in
          let off = i * d in
          for j = 0 to d - 1 do
            acc := !acc +. (md.(off + j) *. v.(j))
          done;
          !acc)
    in
    let emb = t.embedding.Tensor.data in
    let x = Array.init d (fun j -> emb.((tok * d) + j)) in
    let gate w u bv =
      let wx = matvec w x and uh = matvec u h in
      let bvd = bv.Tensor.data in
      Array.init d (fun j -> sigmoid (wx.(j) +. uh.(j) +. bvd.(j)))
    in
    let z = gate g.wz g.uz g.bz in
    let r = gate g.wr g.ur g.br in
    let rh = Array.init d (fun j -> r.(j) *. h.(j)) in
    let wx = matvec g.wh x and uh = matvec g.uh rh in
    let bhd = g.bh.Tensor.data in
    let candidate = Array.init d (fun j -> tanh (wx.(j) +. uh.(j) +. bhd.(j))) in
    Array.init d (fun j -> ((1.0 -. z.(j)) *. h.(j)) +. (z.(j) *. candidate.(j)))

  let gru_fold t g context =
    List.fold_left (gru_step t g) (Array.make t.config.dim 0.0) context

  let hidden_of_context t context =
    match t.gru with
    | None -> bow_hidden t context
    | Some g -> gru_fold t g context

  let init t ~prompt =
    match t.gru with
    | None -> Bow_w (context_of t ~prompt ~prefix:[])
    | Some g -> Gru_h (gru_fold t g (Vocab.bos t.vocab :: prompt))

  let extend t state tok =
    match (state, t.gru) with
    | Bow_w w, _ -> Bow_w (bow_push t w tok)
    | Gru_h h, Some g -> Gru_h (gru_step t g h tok)
    | Gru_h _, None -> invalid_arg "Model.Fwd.extend: state does not match model"

  let hidden t = function Bow_w w -> bow_hidden t w | Gru_h h -> h
end
