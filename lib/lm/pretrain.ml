module Tensor = Dpoaf_tensor.Tensor
module Autodiff = Dpoaf_tensor.Autodiff
module Optim = Dpoaf_tensor.Optim

type example = {
  prompt : int list;
  tokens : int list;
  grammar : Grammar.t;
  min_clauses : int;
  max_clauses : int;
}

let logprob_node model bound ex =
  Model.response_logprob_node model bound ~prompt:ex.prompt ~grammar:ex.grammar
    ~min_clauses:ex.min_clauses ~max_clauses:ex.max_clauses ~tokens:ex.tokens

let nll model ex =
  -.Model.response_logprob model ~prompt:ex.prompt ~grammar:ex.grammar
      ~min_clauses:ex.min_clauses ~max_clauses:ex.max_clauses ~tokens:ex.tokens

let mean_nll model examples =
  match examples with
  | [] -> 0.0
  | _ ->
      List.fold_left (fun acc ex -> acc +. nll model ex) 0.0 examples
      /. float_of_int (List.length examples)

let batch_step model opt tape examples =
  Autodiff.Tape.reset tape;
  let bound = Model.bind model tape in
  let terms = List.map (fun ex -> logprob_node model bound ex) examples in
  let total = Autodiff.add_list tape terms in
  let loss =
    Autodiff.scale tape (-1.0 /. float_of_int (max 1 (List.length examples))) total
  in
  Autodiff.backward tape loss;
  Optim.Adam.step opt (Model.pretrain_grads model bound);
  Tensor.get (Autodiff.value loss) 0

let train model examples ~epochs ~batch ~lr rng =
  let opt = Optim.Adam.create ~lr () in
  let arr = Array.of_list examples in
  (* one pooled arena for the whole run *)
  let tape = Autodiff.Tape.create () in
  List.init epochs (fun _ ->
      Dpoaf_util.Rng.shuffle rng arr;
      let n = Array.length arr in
      let losses = ref [] in
      let i = ref 0 in
      while !i < n do
        let size = min batch (n - !i) in
        let chunk = Array.to_list (Array.sub arr !i size) in
        losses := batch_step model opt tape chunk :: !losses;
        i := !i + size
      done;
      Dpoaf_util.Stats.mean !losses)
