module Ltl = Dpoaf_logic.Ltl
module Symbol = Dpoaf_logic.Symbol

type counterexample = {
  prefix : Symbol.t list;
  cycle : Symbol.t list;
  prefix_descr : string list;
  cycle_descr : string list;
  prefix_tags : int list;
  cycle_tags : int list;
}

type verdict = Holds | Fails of counterexample

let is_holds = function Holds -> true | Fails _ -> false

(* The NBA of a negated specification only depends on the formula, while a
   fresh Kripke structure arrives with every scored response — memoizing
   the tableau construction turns the 15-spec rule book into 15 total
   tableau builds per process instead of 15 per response. *)
let nba_cache : (Ltl.t, Buchi.nba) Dpoaf_exec.Cache.t =
  Dpoaf_exec.Cache.create ~name:"automata.nba" ()

let nba_of_negation negated =
  Dpoaf_exec.Cache.find_or_add nba_cache negated (fun () ->
      Buchi.degeneralize (Tableau.gnba_of_ltl negated))

let checks = Dpoaf_exec.Metrics.counter "mc.checks"

let check_kripke kripke formula =
  Dpoaf_exec.Metrics.incr checks;
  let kripke =
    if Kripke.is_total kripke then kripke else Kripke.stutter_extend kripke
  in
  let negated = Ltl.neg formula in
  let nba = nba_of_negation negated in
  match Emptiness.find_accepting_lasso kripke nba with
  | None -> Holds
  | Some { Emptiness.prefix; cycle } ->
      let labels = List.map (fun i -> kripke.Kripke.labels.(i)) in
      let descrs = List.map (fun i -> kripke.Kripke.descr.(i)) in
      let tags = List.map (fun i -> kripke.Kripke.tags.(i)) in
      Fails
        {
          prefix = labels prefix;
          cycle = labels cycle;
          prefix_descr = descrs prefix;
          cycle_descr = descrs cycle;
          prefix_tags = tags prefix;
          cycle_tags = tags cycle;
        }

let kripke_of ~model ~controller =
  Product.to_kripke (Product.build ~model ~controller)

let check ~model ~controller formula = check_kripke (kripke_of ~model ~controller) formula

let verify_all ~model ~controller ~specs =
  let kripke = kripke_of ~model ~controller in
  List.map (fun (name, phi) -> (name, phi, check_kripke kripke phi)) specs

let count_satisfied ~model ~controller ~specs =
  verify_all ~model ~controller ~specs
  |> List.filter (fun (_, _, v) -> is_holds v)
  |> List.length

let rec propositional = function
  | Ltl.True | Ltl.False | Ltl.Atom _ -> true
  | Ltl.Not f -> propositional f
  | Ltl.And (a, b) | Ltl.Or (a, b) | Ltl.Implies (a, b) ->
      propositional a && propositional b
  | Ltl.Next _ | Ltl.Until _ | Ltl.Release _ | Ltl.Eventually _ | Ltl.Always _ ->
      false

let blame ~spec cex =
  let instants =
    List.combine (cex.prefix @ cex.cycle) (cex.prefix_tags @ cex.cycle_tags)
  in
  let culprits =
    match spec with
    | Ltl.Always body when propositional body ->
        List.filter
          (fun (label, _) ->
            not (Dpoaf_logic.Trace.eval_finite body [| label |]))
          instants
    | _ -> instants
  in
  List.filter_map (fun (_, tag) -> if tag >= 0 then Some tag else None) culprits
  |> List.sort_uniq compare

let pp_verdict ppf = function
  | Holds -> Format.pp_print_string ppf "holds"
  | Fails cex ->
      Format.fprintf ppf "@[<v>fails; counterexample:@,";
      List.iter2
        (fun sym d -> Format.fprintf ppf "  %a  %s@," Symbol.pp sym d)
        cex.prefix cex.prefix_descr;
      Format.fprintf ppf "  -- cycle --@,";
      List.iter2
        (fun sym d -> Format.fprintf ppf "  %a  %s@," Symbol.pp sym d)
        cex.cycle cex.cycle_descr;
      Format.fprintf ppf "@]"
