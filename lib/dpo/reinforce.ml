module Model = Dpoaf_lm.Model
module Sampler = Dpoaf_lm.Sampler
module Autodiff = Dpoaf_tensor.Autodiff
module Optim = Dpoaf_tensor.Optim
module Tensor = Dpoaf_tensor.Tensor
module Rng = Dpoaf_util.Rng
module Stats = Dpoaf_util.Stats

type task = {
  prompt : int list;
  grammar : Dpoaf_lm.Grammar.t;
  min_clauses : int;
  max_clauses : int;
  reward : int list -> float;
}

type config = {
  lr : float;
  epochs : int;
  samples_per_task : int;
  temperature : float;
}

let default_config = { lr = 2e-3; epochs = 100; samples_per_task = 8; temperature = 1.0 }

type epoch_stats = { epoch : int; mean_reward : float }

type run = { stats : epoch_stats list; final : Model.t }

let epoch_step policy opt config rng tape tasks =
  let snap = Sampler.snapshot policy in
  (* on-policy rollouts with per-task advantage *)
  let batches =
    List.map
      (fun task ->
        let samples =
          List.init config.samples_per_task (fun _ ->
              let tokens =
                Sampler.sample snap rng ~prompt:task.prompt ~grammar:task.grammar
                  ~min_clauses:task.min_clauses ~max_clauses:task.max_clauses
                  ~temperature:config.temperature ()
              in
              (tokens, task.reward tokens))
        in
        let baseline = Stats.mean (List.map snd samples) in
        (task, samples, baseline))
      tasks
  in
  Autodiff.Tape.reset tape;
  let bound = Model.bind policy tape in
  let total = float_of_int (List.length tasks * config.samples_per_task) in
  let terms =
    List.concat_map
      (fun (task, samples, baseline) ->
        List.filter_map
          (fun (tokens, reward) ->
            let advantage = reward -. baseline in
            if advantage = 0.0 then None
            else
              let lp =
                Model.response_logprob_node policy bound ~prompt:task.prompt
                  ~grammar:task.grammar ~min_clauses:task.min_clauses
                  ~max_clauses:task.max_clauses ~tokens
              in
              (* minimize -advantage·logπ *)
              Some (Autodiff.scale tape (-.advantage /. total) lp))
          samples)
      batches
  in
  let mean_reward =
    Stats.mean
      (List.concat_map (fun (_, samples, _) -> List.map snd samples) batches)
  in
  (if terms <> [] then begin
     let loss = Autodiff.add_list tape terms in
     Autodiff.backward tape loss;
     Optim.Adam.step opt (Model.lora_grads policy bound)
   end);
  mean_reward

let train ~reference ~tasks config ~seed =
  let policy = Model.clone reference in
  let opt = Optim.Adam.create ~lr:config.lr () in
  let rng = Rng.create seed in
  let tape = Autodiff.Tape.create () in
  let stats =
    List.init config.epochs (fun i ->
        { epoch = i + 1; mean_reward = epoch_step policy opt config rng tape tasks })
  in
  { stats; final = policy }
