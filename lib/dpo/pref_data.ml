module Json = Dpoaf_util.Json

type scored = {
  tokens : int list;
  score : int;
  satisfied : string list;
  vacuous : string list;
}

type pair = {
  task_id : string;
  prompt : int list;
  chosen : int list;
  rejected : int list;
  chosen_score : int;
  rejected_score : int;
  chosen_satisfied : string list;
  rejected_satisfied : string list;
  chosen_vacuous : string list;
  rejected_explanations : (string * string) list;
  grammar : Dpoaf_lm.Grammar.t;
  min_clauses : int;
  max_clauses : int;
}

let dedup scored =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun s ->
      if Hashtbl.mem seen s.tokens then false
      else begin
        Hashtbl.add seen s.tokens ();
        true
      end)
    scored

let pairs_of_scored ?explain ~task_id ~prompt ~grammar ~min_clauses
    ~max_clauses scored =
  let distinct = dedup scored in
  let rec combos = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ combos rest
  in
  List.filter_map
    (fun (a, b) ->
      if a.score = b.score then None
      else
        let w, l = if a.score > b.score then (a, b) else (b, a) in
        let margin =
          List.filter (fun s -> not (List.mem s l.satisfied)) w.satisfied
        in
        let rejected_explanations =
          match explain with
          | None -> []
          | Some f ->
              (* only the margin specs: the explanations justify exactly
                 why this pair prefers its winner *)
              List.filter (fun (spec, _) -> List.mem spec margin) (f l)
        in
        Some
          {
            task_id;
            prompt;
            chosen = w.tokens;
            rejected = l.tokens;
            chosen_score = w.score;
            rejected_score = l.score;
            chosen_satisfied = w.satisfied;
            rejected_satisfied = l.satisfied;
            chosen_vacuous = w.vacuous;
            rejected_explanations;
            grammar;
            min_clauses;
            max_clauses;
          })
    (combos distinct)

let count_possible m = m * (m - 1) / 2

(* ---------------- provenance ---------------- *)

let margin_specs pair =
  List.filter
    (fun s -> not (List.mem s pair.rejected_satisfied))
    pair.chosen_satisfied

(* The pair's formal justification evaporates when every margin spec is
   only vacuously satisfied by the winner: the "better" response was never
   even exercised on those rules.  Such pairs are flagged in provenance
   and counted by the feedback.vacuous_margin metric. *)
let vacuous_margin pair =
  match margin_specs pair with
  | [] -> false
  | margin -> List.for_all (fun s -> List.mem s pair.chosen_vacuous) margin

let json_of_pair pair =
  let strs xs = Json.arr (List.map Json.str xs) in
  (* emitted only when mined with ~explain, so provenance files from
     explanation-free runs keep their exact pre-explanation bytes *)
  let explanations =
    match pair.rejected_explanations with
    | [] -> []
    | es ->
        [
          ( "rejected_explanations",
            Json.arr
              (List.map
                 (fun (spec, text) ->
                   Json.obj [ ("spec", Json.str spec); ("text", Json.str text) ])
                 es) );
        ]
  in
  Json.obj
    ([
       ("task", Json.str pair.task_id);
       ("chosen_score", Json.num (float_of_int pair.chosen_score));
       ("rejected_score", Json.num (float_of_int pair.rejected_score));
       ("chosen_satisfied", strs pair.chosen_satisfied);
       ("rejected_satisfied", strs pair.rejected_satisfied);
       ("chosen_vacuous", strs pair.chosen_vacuous);
       ("margin_specs", strs (margin_specs pair));
       ("vacuous_margin", Json.Bool (vacuous_margin pair));
     ]
    @ explanations)

let dump_provenance path pairs =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
  List.iter
    (fun pair ->
      output_string oc (Json.to_string (json_of_pair pair));
      output_char oc '\n')
    pairs
