module Json = Dpoaf_util.Json

type scored = {
  tokens : int list;
  score : int;
  satisfied : string list;
  vacuous : string list;
}

type pair = {
  task_id : string;
  prompt : int list;
  chosen : int list;
  rejected : int list;
  chosen_score : int;
  rejected_score : int;
  chosen_satisfied : string list;
  rejected_satisfied : string list;
  chosen_vacuous : string list;
  rejected_explanations : (string * string) list;
  grammar : Dpoaf_lm.Grammar.t;
  min_clauses : int;
  max_clauses : int;
}

let dedup scored =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun s ->
      if Hashtbl.mem seen s.tokens then false
      else begin
        Hashtbl.add seen s.tokens ();
        true
      end)
    scored

let pairs_of_scored ?explain ~task_id ~prompt ~grammar ~min_clauses
    ~max_clauses scored =
  let distinct = dedup scored in
  let rec combos = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ combos rest
  in
  List.filter_map
    (fun (a, b) ->
      if a.score = b.score then None
      else
        let w, l = if a.score > b.score then (a, b) else (b, a) in
        let margin =
          List.filter (fun s -> not (List.mem s l.satisfied)) w.satisfied
        in
        let rejected_explanations =
          match explain with
          | None -> []
          | Some f ->
              (* only the margin specs: the explanations justify exactly
                 why this pair prefers its winner *)
              List.filter (fun (spec, _) -> List.mem spec margin) (f l)
        in
        Some
          {
            task_id;
            prompt;
            chosen = w.tokens;
            rejected = l.tokens;
            chosen_score = w.score;
            rejected_score = l.score;
            chosen_satisfied = w.satisfied;
            rejected_satisfied = l.satisfied;
            chosen_vacuous = w.vacuous;
            rejected_explanations;
            grammar;
            min_clauses;
            max_clauses;
          })
    (combos distinct)

let count_possible m = m * (m - 1) / 2

(* ---------------- provenance ---------------- *)

let margin_specs pair =
  List.filter
    (fun s -> not (List.mem s pair.rejected_satisfied))
    pair.chosen_satisfied

(* The pair's formal justification evaporates when every margin spec is
   only vacuously satisfied by the winner: the "better" response was never
   even exercised on those rules.  Such pairs are flagged in provenance
   and counted by the feedback.vacuous_margin metric. *)
let vacuous_margin pair =
  match margin_specs pair with
  | [] -> false
  | margin -> List.for_all (fun s -> List.mem s pair.chosen_vacuous) margin

let json_of_pair pair =
  let strs xs = Json.arr (List.map Json.str xs) in
  (* emitted only when mined with ~explain, so provenance files from
     explanation-free runs keep their exact pre-explanation bytes *)
  let explanations =
    match pair.rejected_explanations with
    | [] -> []
    | es ->
        [
          ( "rejected_explanations",
            Json.arr
              (List.map
                 (fun (spec, text) ->
                   Json.obj [ ("spec", Json.str spec); ("text", Json.str text) ])
                 es) );
        ]
  in
  Json.obj
    ([
       ("task", Json.str pair.task_id);
       ("chosen_score", Json.num (float_of_int pair.chosen_score));
       ("rejected_score", Json.num (float_of_int pair.rejected_score));
       ("chosen_satisfied", strs pair.chosen_satisfied);
       ("rejected_satisfied", strs pair.rejected_satisfied);
       ("chosen_vacuous", strs pair.chosen_vacuous);
       ("margin_specs", strs (margin_specs pair));
       ("vacuous_margin", Json.Bool (vacuous_margin pair));
     ]
    @ explanations)

let dump_provenance path pairs =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
  List.iter
    (fun pair ->
      output_string oc (Json.to_string (json_of_pair pair));
      output_char oc '\n')
    pairs

(* ---------------- harvested refinement pairs ---------------- *)

let store_schema = "dpoaf-prefstore/1"

type harvested = {
  h_task : string;
  h_domain : string;
  h_round : int;
  h_seed : int;
  h_chosen_steps : string list;
  h_rejected_steps : string list;
  h_chosen_score : int;
  h_rejected_score : int;
  h_chosen_satisfied : string list;
  h_rejected_satisfied : string list;
  h_chosen_vacuous : string list;
  h_explanations : (string * string) list;
}

let json_of_harvested h =
  let strs xs = Json.arr (List.map Json.str xs) in
  let num i = Json.num (float_of_int i) in
  Json.obj
    [
      ("schema", Json.str store_schema);
      ("task", Json.str h.h_task);
      ("domain", Json.str h.h_domain);
      ("round", num h.h_round);
      ("seed", num h.h_seed);
      ("chosen_steps", strs h.h_chosen_steps);
      ("rejected_steps", strs h.h_rejected_steps);
      ("chosen_score", num h.h_chosen_score);
      ("rejected_score", num h.h_rejected_score);
      ("chosen_satisfied", strs h.h_chosen_satisfied);
      ("rejected_satisfied", strs h.h_rejected_satisfied);
      ("chosen_vacuous", strs h.h_chosen_vacuous);
      ( "explanations",
        Json.arr
          (List.map
             (fun (spec, text) ->
               Json.obj [ ("spec", Json.str spec); ("text", Json.str text) ])
             h.h_explanations) );
    ]

let ( let* ) = Result.bind

let h_str name j =
  match Option.bind (Json.member name j) Json.to_str with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "field %S must be a string" name)

let h_int name j =
  match Option.bind (Json.member name j) Json.to_float with
  | Some f -> Ok (int_of_float f)
  | None -> Error (Printf.sprintf "field %S must be a number" name)

let h_strs name j =
  match Option.bind (Json.member name j) Json.to_list with
  | None -> Error (Printf.sprintf "field %S must be an array" name)
  | Some items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | x :: rest -> (
            match Json.to_str x with
            | Some s -> go (s :: acc) rest
            | None ->
                Error (Printf.sprintf "field %S must contain only strings" name))
      in
      go [] items

let harvested_of_json j =
  let* schema = h_str "schema" j in
  if schema <> store_schema then
    Error
      (Printf.sprintf "unsupported store schema %S (expected %S)" schema
         store_schema)
  else
    let* h_task = h_str "task" j in
    let* h_domain = h_str "domain" j in
    let* h_round = h_int "round" j in
    let* h_seed = h_int "seed" j in
    let* h_chosen_steps = h_strs "chosen_steps" j in
    let* h_rejected_steps = h_strs "rejected_steps" j in
    let* h_chosen_score = h_int "chosen_score" j in
    let* h_rejected_score = h_int "rejected_score" j in
    let* h_chosen_satisfied = h_strs "chosen_satisfied" j in
    let* h_rejected_satisfied = h_strs "rejected_satisfied" j in
    let* h_chosen_vacuous = h_strs "chosen_vacuous" j in
    let* h_explanations =
      match Option.bind (Json.member "explanations" j) Json.to_list with
      | None -> Error "field \"explanations\" must be an array"
      | Some items ->
          let rec go acc = function
            | [] -> Ok (List.rev acc)
            | x :: rest ->
                let* spec = h_str "spec" x in
                let* text = h_str "text" x in
                go ((spec, text) :: acc) rest
          in
          go [] items
    in
    Ok
      {
        h_task;
        h_domain;
        h_round;
        h_seed;
        h_chosen_steps;
        h_rejected_steps;
        h_chosen_score;
        h_rejected_score;
        h_chosen_satisfied;
        h_rejected_satisfied;
        h_chosen_vacuous;
        h_explanations;
      }

let load_harvested path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
      let rec go lineno acc =
        match input_line ic with
        | exception End_of_file -> Ok (List.rev acc)
        | line when String.trim line = "" -> go (lineno + 1) acc
        | line -> (
            match Json.parse line with
            | Error msg ->
                Error (Printf.sprintf "%s:%d: malformed JSON: %s" path lineno msg)
            | Ok j -> (
                match harvested_of_json j with
                | Error msg -> Error (Printf.sprintf "%s:%d: %s" path lineno msg)
                | Ok h -> go (lineno + 1) (h :: acc)))
      in
      go 1 []

let pair_of_harvested ~encode ~prompt ~grammar ~min_clauses ~max_clauses h =
  {
    task_id = h.h_task;
    prompt;
    chosen = encode h.h_chosen_steps;
    rejected = encode h.h_rejected_steps;
    chosen_score = h.h_chosen_score;
    rejected_score = h.h_rejected_score;
    chosen_satisfied = h.h_chosen_satisfied;
    rejected_satisfied = h.h_rejected_satisfied;
    chosen_vacuous = h.h_chosen_vacuous;
    rejected_explanations = h.h_explanations;
    grammar;
    min_clauses;
    max_clauses;
  }
