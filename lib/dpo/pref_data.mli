(** Preference pairs mined from verification-ranked responses (§4.3).

    From [m] scored responses to one prompt, every unordered pair with
    distinct scores yields one data point [(x, y_w, y_l)] — up to
    [C₂(m)] pairs per task, the response satisfying more specifications
    being preferred.

    Each scored response carries its verification provenance — the names
    of the specifications its controller satisfied — so every mined pair
    records {e why} the chosen response was preferred, not just by how
    much. *)

type scored = {
  tokens : int list;
  score : int;
  satisfied : string list;
      (** satisfied spec names; [List.length satisfied = score] *)
  vacuous : string list;
      (** subset of [satisfied] holding only vacuously (trigger never
          occurs in the product — see {!Dpoaf_analysis.Vacuity}) *)
}
(** A response (token sequence), the number of specifications its
    controller satisfies, and which ones. *)

type pair = {
  task_id : string;
  prompt : int list;
  chosen : int list;
  rejected : int list;
  chosen_score : int;
  rejected_score : int;
  chosen_satisfied : string list;
  rejected_satisfied : string list;
  chosen_vacuous : string list;
  rejected_explanations : (string * string) list;
      (** [(spec, text)] counterexample explanations for the rejected
          response's margin violations — why, in response vocabulary, the
          loser lost.  Empty unless mined with [~explain]. *)
  grammar : Dpoaf_lm.Grammar.t;
  min_clauses : int;
  max_clauses : int;
}

val pairs_of_scored :
  ?explain:(scored -> (string * string) list) ->
  task_id:string ->
  prompt:int list ->
  grammar:Dpoaf_lm.Grammar.t ->
  min_clauses:int ->
  max_clauses:int ->
  scored list ->
  pair list
(** All distinct-score pairs; duplicate token sequences are deduplicated
    first (keeping one representative each).

    [explain], when given, maps a scored response to [(spec, text)]
    counterexample explanations for its violated specs (e.g. via
    {!Dpoaf_analysis.Explain}); each mined pair keeps the loser's
    explanations filtered to the pair's margin specs.  The callback is
    invoked once per mined pair's loser, so callers should memoize by
    token sequence if [m] is large. *)

val count_possible : int -> int
(** [count_possible m = C₂(m)], the paper's bound on data points per task. *)

(** {1 Provenance} *)

val margin_specs : pair -> string list
(** The specifications the chosen response satisfies and the rejected one
    does not — the formal reason this pair prefers its winner. *)

val vacuous_margin : pair -> bool
(** True when the margin is non-empty but every margin specification is
    only vacuously satisfied by the chosen response — the pair's formal
    justification carries no behavioural information.  Counted by the
    [feedback.vacuous_margin] metric when pairs are mined. *)

val json_of_pair : pair -> Dpoaf_util.Json.t
(** One provenance record: task, both scores, both satisfied sets, the
    chosen side's vacuous set, the margin specs and the [vacuous_margin]
    flag (token sequences are omitted — they are corpus-relative).  A
    [rejected_explanations] member is appended only when non-empty, so
    explanation-free provenance is byte-identical to earlier releases. *)

val dump_provenance : string -> pair list -> unit
(** Write one {!json_of_pair} line per pair (JSONL) to the given path. *)

(** {1 Harvested refinement pairs}

    The [dpoaf-prefstore/1] record: one (original, repaired) preference
    pair emitted by an accepted inference-time refinement round
    ({!Dpoaf_refine.Refine}), with full per-spec provenance.  The record
    format lives here — next to the pair type it feeds — so the store
    writer ([Dpoaf_refine.Pref_store]) and this reader cannot drift
    apart. *)

val store_schema : string
(** ["dpoaf-prefstore/1"] — the value of every record's ["schema"]
    member. *)

type harvested = {
  h_task : string;
  h_domain : string;
  h_round : int;  (** the refinement round that produced the repair *)
  h_seed : int;  (** the request seed driving the re-sampling *)
  h_chosen_steps : string list;  (** the accepted repaired response *)
  h_rejected_steps : string list;  (** the original defective response *)
  h_chosen_score : int;
  h_rejected_score : int;
  h_chosen_satisfied : string list;
  h_rejected_satisfied : string list;
  h_chosen_vacuous : string list;
  h_explanations : (string * string) list;
      (** the [(spec, text)] counterexample feedback that drove the
          accepted round's re-sampling *)
}

val json_of_harvested : harvested -> Dpoaf_util.Json.t
(** One store record, ["schema"] member first. *)

val harvested_of_json : Dpoaf_util.Json.t -> (harvested, string) result
(** Strict: a wrong or missing schema, a missing field or a type mismatch
    is an [Error] naming the offending field. *)

val load_harvested : string -> (harvested list, string) result
(** Read a store file (JSONL, blank lines skipped); the first malformed
    line fails the whole load with [path:line: reason]. *)

val pair_of_harvested :
  encode:(string list -> int list) ->
  prompt:int list ->
  grammar:Dpoaf_lm.Grammar.t ->
  min_clauses:int ->
  max_clauses:int ->
  harvested ->
  pair
(** Ingest one store record as a training {!pair}: step texts are
    re-encoded with the caller's corpus ([encode]), and the record's
    provenance (scores, satisfied sets, vacuous set, explanations)
    carries over verbatim. *)
