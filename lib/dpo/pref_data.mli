(** Preference pairs mined from verification-ranked responses (§4.3).

    From [m] scored responses to one prompt, every unordered pair with
    distinct scores yields one data point [(x, y_w, y_l)] — up to
    [C₂(m)] pairs per task, the response satisfying more specifications
    being preferred.

    Each scored response carries its verification provenance — the names
    of the specifications its controller satisfied — so every mined pair
    records {e why} the chosen response was preferred, not just by how
    much. *)

type scored = {
  tokens : int list;
  score : int;
  satisfied : string list;
      (** satisfied spec names; [List.length satisfied = score] *)
  vacuous : string list;
      (** subset of [satisfied] holding only vacuously (trigger never
          occurs in the product — see {!Dpoaf_analysis.Vacuity}) *)
}
(** A response (token sequence), the number of specifications its
    controller satisfies, and which ones. *)

type pair = {
  task_id : string;
  prompt : int list;
  chosen : int list;
  rejected : int list;
  chosen_score : int;
  rejected_score : int;
  chosen_satisfied : string list;
  rejected_satisfied : string list;
  chosen_vacuous : string list;
  rejected_explanations : (string * string) list;
      (** [(spec, text)] counterexample explanations for the rejected
          response's margin violations — why, in response vocabulary, the
          loser lost.  Empty unless mined with [~explain]. *)
  grammar : Dpoaf_lm.Grammar.t;
  min_clauses : int;
  max_clauses : int;
}

val pairs_of_scored :
  ?explain:(scored -> (string * string) list) ->
  task_id:string ->
  prompt:int list ->
  grammar:Dpoaf_lm.Grammar.t ->
  min_clauses:int ->
  max_clauses:int ->
  scored list ->
  pair list
(** All distinct-score pairs; duplicate token sequences are deduplicated
    first (keeping one representative each).

    [explain], when given, maps a scored response to [(spec, text)]
    counterexample explanations for its violated specs (e.g. via
    {!Dpoaf_analysis.Explain}); each mined pair keeps the loser's
    explanations filtered to the pair's margin specs.  The callback is
    invoked once per mined pair's loser, so callers should memoize by
    token sequence if [m] is large. *)

val count_possible : int -> int
(** [count_possible m = C₂(m)], the paper's bound on data points per task. *)

(** {1 Provenance} *)

val margin_specs : pair -> string list
(** The specifications the chosen response satisfies and the rejected one
    does not — the formal reason this pair prefers its winner. *)

val vacuous_margin : pair -> bool
(** True when the margin is non-empty but every margin specification is
    only vacuously satisfied by the chosen response — the pair's formal
    justification carries no behavioural information.  Counted by the
    [feedback.vacuous_margin] metric when pairs are mined. *)

val json_of_pair : pair -> Dpoaf_util.Json.t
(** One provenance record: task, both scores, both satisfied sets, the
    chosen side's vacuous set, the margin specs and the [vacuous_margin]
    flag (token sequences are omitted — they are corpus-relative).  A
    [rejected_explanations] member is appended only when non-empty, so
    explanation-free provenance is byte-identical to earlier releases. *)

val dump_provenance : string -> pair list -> unit
(** Write one {!json_of_pair} line per pair (JSONL) to the given path. *)
