module Model = Dpoaf_lm.Model
module Autodiff = Dpoaf_tensor.Autodiff
module Optim = Dpoaf_tensor.Optim
module Tensor = Dpoaf_tensor.Tensor
module Rng = Dpoaf_util.Rng
module Json = Dpoaf_util.Json
module Metrics = Dpoaf_exec.Metrics
module Trace = Dpoaf_exec.Trace

type config = {
  beta : float;
  lr : float;
  epochs : int;
  batch : int;
  checkpoint_every : int;
  shuffle_each_epoch : bool;
}

let default_config =
  {
    beta = 0.5;
    lr = 5e-3;
    epochs = 200;
    batch = 16;
    checkpoint_every = 20;
    shuffle_each_epoch = true;
  }

type epoch_stats = { epoch : int; loss : float; accuracy : float; margin : float }

type run = {
  seed : int;
  stats : epoch_stats list;
  checkpoints : (int * Model.t) list;
  final : Model.t;
}

(* ---------------- per-step telemetry ---------------- *)

type step_record = {
  seed : int;
  epoch : int;
  step : int;
  loss : float;
  accuracy : float;
  margin : float;
  logp_gap : float;
  grad_norm : float;
  update_norm : float;
  seconds : float;
}

type sink = step_record -> unit

let csv_header =
  "seed,epoch,step,loss,accuracy,margin,logp_gap,grad_norm,update_norm,seconds"

let csv_line r =
  Printf.sprintf "%d,%d,%d,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f" r.seed r.epoch
    r.step r.loss r.accuracy r.margin r.logp_gap r.grad_norm r.update_norm
    r.seconds

let jsonl_line r =
  Json.to_string
    (Json.obj
       [
         ("seed", Json.num (float_of_int r.seed));
         ("epoch", Json.num (float_of_int r.epoch));
         ("step", Json.num (float_of_int r.step));
         ("loss", Json.num r.loss);
         ("accuracy", Json.num r.accuracy);
         ("margin", Json.num r.margin);
         ("logp_gap", Json.num r.logp_gap);
         ("grad_norm", Json.num r.grad_norm);
         ("update_norm", Json.num r.update_norm);
         ("seconds", Json.num r.seconds);
       ])

(* Domain-safe file sink: [train_seeds] fans seeds out over workers, so
   writes are serialized by a mutex.  Row order between seeds is therefore
   arbitrary — sort on the seed/step columns when analysing. *)
let file_sink path =
  let oc = open_out path in
  let mutex = Mutex.create () in
  let csv = Filename.check_suffix path ".csv" in
  if csv then begin
    output_string oc csv_header;
    output_char oc '\n'
  end;
  let sink r =
    Mutex.lock mutex;
    output_string oc (if csv then csv_line r else jsonl_line r);
    output_char oc '\n';
    Mutex.unlock mutex
  in
  let close () =
    Mutex.lock mutex;
    close_out oc;
    Mutex.unlock mutex
  in
  (sink, close)

let step_latency = Metrics.histogram "dpo.step"
let steps_run = Metrics.counter "dpo.steps"

(* Arena accounting: nodes recorded and grad buffers served from the pool,
   summed over batch steps.  [tape.nodes / dpo.steps] is the per-step graph
   size the kernel-fusion work drives down; [tape.buffer_reuse] counts the
   allocations the pooled arena avoided. *)
let tape_nodes = Metrics.counter "tape.nodes"
let tape_buffer_reuse = Metrics.counter "tape.buffer_reuse"

let l2_norm tensors =
  sqrt
    (List.fold_left
       (fun acc t ->
         let s = ref 0.0 in
         for i = 0 to Tensor.numel t - 1 do
           let x = Tensor.get t i in
           s := !s +. (x *. x)
         done;
         acc +. !s)
       0.0 tensors)

(* One optimizer step over a batch of preference pairs.  The gradient and
   LoRA-update norms require an extra pass over the adapter parameters, so
   they are computed only when a telemetry sink is attached; the returned
   [(loss, accuracy, margin)] triple always feeds the epoch statistics. *)
let batch_step ?(want_norms = false) ~tape policy opt ~beta refs_pairs =
  let t0 = Unix.gettimeofday () in
  Autodiff.Tape.reset tape;
  let reused_before = (Autodiff.Tape.stats tape).Autodiff.Tape.buffers_reused in
  let bound = Model.bind policy tape in
  let n = float_of_int (List.length refs_pairs) in
  let results =
    List.map
      (fun (refs, pair) -> Dpo.pair_loss_node ~policy ~bound ~beta refs pair)
      refs_pairs
  in
  let total = Autodiff.add_list tape (List.map (fun (l, _, _) -> l) results) in
  let mean_loss = Autodiff.scale tape (1.0 /. n) total in
  Autodiff.backward tape mean_loss;
  let grads = Model.lora_grads policy bound in
  let grad_norm = if want_norms then l2_norm (List.map snd grads) else 0.0 in
  let before =
    if want_norms then
      List.map (fun ((p : Optim.param), _) -> Tensor.copy p.Optim.tensor) grads
    else []
  in
  Optim.Adam.step opt grads;
  let update_norm =
    if want_norms then
      l2_norm
        (List.map2
           (fun old ((p : Optim.param), _) ->
             Tensor.map2 (fun a b -> a -. b) p.Optim.tensor old)
           before grads)
    else 0.0
  in
  (* metrics from the forward pass *)
  let acc = Dpoaf_util.Stats.fraction (fun (_, w, l) -> w > l) results in
  let margin =
    Dpoaf_util.Stats.mean
      (List.map2
         (fun (refs, _) (_, w, l) ->
           w -. refs.Dpo.ref_chosen -. (l -. refs.Dpo.ref_rejected))
         refs_pairs results)
  in
  let logp_gap =
    Dpoaf_util.Stats.mean (List.map (fun (_, w, l) -> w -. l) results)
  in
  let seconds = Unix.gettimeofday () -. t0 in
  Metrics.observe step_latency seconds;
  Metrics.incr steps_run;
  Metrics.add tape_nodes (Autodiff.Tape.length tape);
  Metrics.add tape_buffer_reuse
    ((Autodiff.Tape.stats tape).Autodiff.Tape.buffers_reused - reused_before);
  ( (Tensor.get (Autodiff.value mean_loss) 0, acc, margin),
    (logp_gap, grad_norm, update_norm, seconds) )

let train ?sink ?(tape_mode = `Reuse) ~reference ~pairs config ~seed =
  let policy = Model.clone reference in
  let refs_pairs =
    List.map (fun pair -> (Dpo.reference_logprobs reference pair, pair)) pairs
  in
  let opt = Optim.Adam.create ~lr:config.lr () in
  let rng = Rng.create seed in
  let arr = Array.of_list refs_pairs in
  let checkpoints = ref [ (0, Model.clone policy) ] in
  let stats = ref [] in
  let want_norms = sink <> None in
  let global_step = ref 0 in
  (* one arena for every step of the run; [`Fresh] re-allocates per step
     and exists only so the kernels bench can time the pre-arena behavior *)
  let run_tape = Autodiff.Tape.create () in
  let step_tape () =
    match tape_mode with `Reuse -> run_tape | `Fresh -> Autodiff.Tape.create ()
  in
  for epoch = 1 to config.epochs do
    if config.shuffle_each_epoch then Rng.shuffle rng arr;
    let n = Array.length arr in
    let epoch_totals = ref [] in
    let i = ref 0 in
    while !i < n do
      let size = min config.batch (n - !i) in
      let chunk = Array.to_list (Array.sub arr !i size) in
      let ((loss, acc, margin) as triple), (logp_gap, grad_norm, update_norm, dt)
          =
        batch_step ~want_norms ~tape:(step_tape ()) policy opt ~beta:config.beta
          chunk
      in
      incr global_step;
      (match sink with
      | None -> ()
      | Some emit ->
          emit
            {
              seed;
              epoch;
              step = !global_step;
              loss;
              accuracy = acc;
              margin;
              logp_gap;
              grad_norm;
              update_norm;
              seconds = dt;
            });
      epoch_totals := (triple, size) :: !epoch_totals;
      i := !i + size
    done;
    let weight f =
      let total = List.fold_left (fun acc (_, s) -> acc + s) 0 !epoch_totals in
      List.fold_left (fun acc (t, s) -> acc +. (f t *. float_of_int s)) 0.0 !epoch_totals
      /. float_of_int (max 1 total)
    in
    stats :=
      {
        epoch;
        loss = weight (fun (l, _, _) -> l);
        accuracy = weight (fun (_, a, _) -> a);
        margin = weight (fun (_, _, m) -> m);
      }
      :: !stats;
    if config.checkpoint_every > 0 && epoch mod config.checkpoint_every = 0 then
      checkpoints := (epoch, Model.clone policy) :: !checkpoints
  done;
  {
    seed;
    stats = List.rev !stats;
    checkpoints = List.rev !checkpoints;
    final = policy;
  }

(* Each seed's run touches only its own clone of the reference (the shared
   reference weights are read-only after pre-training) and draws from its
   own RNG stream [Rng.create seed], so seeds train in parallel without
   any cross-seed effect on the results. *)
let train_seeds ?jobs ?sink ?tape_mode ~reference ~pairs config ~seeds =
  Dpoaf_exec.Pool.parallel_map ?jobs
    (fun seed ->
      Trace.with_span ~cat:"dpo" ~attrs:[ ("seed", string_of_int seed) ]
        "dpo.train_seed" (fun () ->
          Metrics.time "dpo.train_seed" (fun () ->
              train ?sink ?tape_mode ~reference ~pairs config ~seed)))
    seeds
