module Model = Dpoaf_lm.Model
module Autodiff = Dpoaf_tensor.Autodiff
module Optim = Dpoaf_tensor.Optim
module Tensor = Dpoaf_tensor.Tensor
module Rng = Dpoaf_util.Rng

type config = {
  beta : float;
  lr : float;
  epochs : int;
  batch : int;
  checkpoint_every : int;
  shuffle_each_epoch : bool;
}

let default_config =
  {
    beta = 0.5;
    lr = 5e-3;
    epochs = 200;
    batch = 16;
    checkpoint_every = 20;
    shuffle_each_epoch = true;
  }

type epoch_stats = { epoch : int; loss : float; accuracy : float; margin : float }

type run = {
  seed : int;
  stats : epoch_stats list;
  checkpoints : (int * Model.t) list;
  final : Model.t;
}

let batch_step policy opt ~beta refs_pairs =
  let tape = Autodiff.Tape.create () in
  let bound = Model.bind policy tape in
  let n = float_of_int (List.length refs_pairs) in
  let results =
    List.map
      (fun (refs, pair) -> Dpo.pair_loss_node ~policy ~bound ~beta refs pair)
      refs_pairs
  in
  let total = Autodiff.add_list tape (List.map (fun (l, _, _) -> l) results) in
  let mean_loss = Autodiff.scale tape (1.0 /. n) total in
  Autodiff.backward tape mean_loss;
  Optim.Adam.step opt (Model.lora_grads policy bound);
  (* metrics from the forward pass *)
  let acc =
    Dpoaf_util.Stats.fraction (fun (_, w, l) -> w > l) results
  in
  let margin =
    Dpoaf_util.Stats.mean
      (List.map2
         (fun (refs, _) (_, w, l) ->
           w -. refs.Dpo.ref_chosen -. (l -. refs.Dpo.ref_rejected))
         refs_pairs results)
  in
  (Tensor.get (Autodiff.value mean_loss) 0, acc, margin)

let train ~reference ~pairs config ~seed =
  let policy = Model.clone reference in
  let refs_pairs =
    List.map (fun pair -> (Dpo.reference_logprobs reference pair, pair)) pairs
  in
  let opt = Optim.Adam.create ~lr:config.lr () in
  let rng = Rng.create seed in
  let arr = Array.of_list refs_pairs in
  let checkpoints = ref [ (0, Model.clone policy) ] in
  let stats = ref [] in
  for epoch = 1 to config.epochs do
    if config.shuffle_each_epoch then Rng.shuffle rng arr;
    let n = Array.length arr in
    let epoch_totals = ref [] in
    let i = ref 0 in
    while !i < n do
      let size = min config.batch (n - !i) in
      let chunk = Array.to_list (Array.sub arr !i size) in
      epoch_totals := (batch_step policy opt ~beta:config.beta chunk, size) :: !epoch_totals;
      i := !i + size
    done;
    let weight f =
      let total = List.fold_left (fun acc (_, s) -> acc + s) 0 !epoch_totals in
      List.fold_left (fun acc (t, s) -> acc +. (f t *. float_of_int s)) 0.0 !epoch_totals
      /. float_of_int (max 1 total)
    in
    stats :=
      {
        epoch;
        loss = weight (fun (l, _, _) -> l);
        accuracy = weight (fun (_, a, _) -> a);
        margin = weight (fun (_, _, m) -> m);
      }
      :: !stats;
    if config.checkpoint_every > 0 && epoch mod config.checkpoint_every = 0 then
      checkpoints := (epoch, Model.clone policy) :: !checkpoints
  done;
  {
    seed;
    stats = List.rev !stats;
    checkpoints = List.rev !checkpoints;
    final = policy;
  }

(* Each seed's run touches only its own clone of the reference (the shared
   reference weights are read-only after pre-training) and draws from its
   own RNG stream [Rng.create seed], so seeds train in parallel without
   any cross-seed effect on the results. *)
let train_seeds ?jobs ~reference ~pairs config ~seeds =
  Dpoaf_exec.Pool.parallel_map ?jobs
    (fun seed ->
      Dpoaf_exec.Metrics.time "dpo.train_seed" (fun () ->
          train ~reference ~pairs config ~seed))
    seeds
