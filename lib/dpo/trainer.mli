(** The DPO fine-tuning loop (LoRA parameters only, per Appendix E).

    Between random seeds only the data order changes — the paper notes this
    is why the variance bands in Figure 8 are small. *)

type config = {
  beta : float;
  lr : float;
  epochs : int;
  batch : int;
  checkpoint_every : int;  (** 0 disables checkpointing *)
  shuffle_each_epoch : bool;
}

val default_config : config
(** β=0.5, lr=5e-3, 200 epochs, batch 16, checkpoint every 20 epochs. *)

type epoch_stats = {
  epoch : int;
  loss : float;
  accuracy : float;
  margin : float;
}

type run = {
  seed : int;
  stats : epoch_stats list;  (** in epoch order, one entry per epoch *)
  checkpoints : (int * Dpoaf_lm.Model.t) list;
      (** (epoch, policy snapshot); epoch 0 is always included *)
  final : Dpoaf_lm.Model.t;
}

val train :
  reference:Dpoaf_lm.Model.t -> pairs:Pref_data.pair list -> config -> seed:int -> run
(** Fine-tune a clone of [reference].  Reference log-probabilities are
    computed once up front (the reference is frozen). *)

val train_seeds :
  ?jobs:int ->
  reference:Dpoaf_lm.Model.t ->
  pairs:Pref_data.pair list ->
  config ->
  seeds:int list ->
  run list
(** One {!train} per seed, fanned out over [?jobs] workers (default
    {!Dpoaf_exec.Pool.default_jobs}).  Every seed derives its RNG stream
    from its own seed value, so the runs are independent of worker count
    and arrive in input order. *)
