(** The DPO fine-tuning loop (LoRA parameters only, per Appendix E).

    Between random seeds only the data order changes — the paper notes this
    is why the variance bands in Figure 8 are small. *)

type config = {
  beta : float;
  lr : float;
  epochs : int;
  batch : int;
  checkpoint_every : int;  (** 0 disables checkpointing *)
  shuffle_each_epoch : bool;
}

val default_config : config
(** β=0.5, lr=5e-3, 200 epochs, batch 16, checkpoint every 20 epochs. *)

type epoch_stats = {
  epoch : int;
  loss : float;
  accuracy : float;
  margin : float;
}

type run = {
  seed : int;
  stats : epoch_stats list;  (** in epoch order, one entry per epoch *)
  checkpoints : (int * Dpoaf_lm.Model.t) list;
      (** (epoch, policy snapshot); epoch 0 is always included *)
  final : Dpoaf_lm.Model.t;
}

(** {1 Per-step telemetry}

    Every optimizer step can be streamed to a pluggable {!sink}.  Norm
    fields ([grad_norm], [update_norm]) cost an extra pass over the LoRA
    adapter tensors, so they are computed only when a sink is attached
    (they read 0 otherwise).  Independent of any sink, each step's wall
    time feeds the [dpo.step] latency histogram in
    {!Dpoaf_exec.Metrics}. *)

type step_record = {
  seed : int;
  epoch : int;  (** 1-based *)
  step : int;  (** global step within this seed's run, 1-based *)
  loss : float;  (** mean DPO loss over the batch *)
  accuracy : float;  (** fraction of pairs with chosen logp > rejected *)
  margin : float;  (** mean preference margin vs the reference *)
  logp_gap : float;  (** mean (chosen − rejected) policy log-probability *)
  grad_norm : float;  (** L2 norm of the LoRA gradient, all adapters *)
  update_norm : float;  (** L2 norm of the Adam parameter update *)
  seconds : float;  (** wall time of this step *)
}

type sink = step_record -> unit

val file_sink : string -> sink * (unit -> unit)
(** [file_sink path] opens [path] and returns [(sink, close)].  A [.csv]
    suffix selects CSV (with header, see {!csv_header}); anything else
    writes one JSON object per line.  Writes are mutex-serialized, so the
    sink is safe to share across {!train_seeds} workers — rows from
    different seeds interleave. *)

val csv_header : string
val csv_line : step_record -> string
val jsonl_line : step_record -> string

val train :
  ?sink:sink ->
  ?tape_mode:[ `Reuse | `Fresh ] ->
  reference:Dpoaf_lm.Model.t ->
  pairs:Pref_data.pair list ->
  config ->
  seed:int ->
  run
(** Fine-tune a clone of [reference].  Reference log-probabilities are
    computed once up front (the reference is frozen).  [?sink] receives
    one {!step_record} per optimizer step.

    [?tape_mode] (default [`Reuse]) controls the autodiff arena: [`Reuse]
    runs every batch step on one {!Dpoaf_tensor.Autodiff.Tape.t}, recycled
    via [Tape.reset] so gradient buffers are pooled across steps; [`Fresh]
    allocates a tape per step and exists only as the benchmark baseline.
    The two produce bit-identical training results.  Arena accounting is
    published through {!Dpoaf_exec.Metrics} as the [tape.nodes] and
    [tape.buffer_reuse] counters. *)

val train_seeds :
  ?jobs:int ->
  ?sink:sink ->
  ?tape_mode:[ `Reuse | `Fresh ] ->
  reference:Dpoaf_lm.Model.t ->
  pairs:Pref_data.pair list ->
  config ->
  seeds:int list ->
  run list
(** One {!train} per seed, fanned out over [?jobs] workers (default
    {!Dpoaf_exec.Pool.default_jobs}).  Every seed derives its RNG stream
    from its own seed value, so the runs are independent of worker count
    and arrive in input order.  Each seed's run executes inside a
    [dpo.train_seed] span; a shared [?sink] must be domain-safe
    ({!file_sink} is). *)
