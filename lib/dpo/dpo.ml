module Model = Dpoaf_lm.Model
module Autodiff = Dpoaf_tensor.Autodiff
module Tensor = Dpoaf_tensor.Tensor

type ref_logprobs = { ref_chosen : float; ref_rejected : float }

let logprob model (pair : Pref_data.pair) tokens =
  Model.response_logprob model ~prompt:pair.Pref_data.prompt
    ~grammar:pair.Pref_data.grammar ~min_clauses:pair.Pref_data.min_clauses
    ~max_clauses:pair.Pref_data.max_clauses ~tokens

let reference_logprobs reference pair =
  {
    ref_chosen = logprob reference pair pair.Pref_data.chosen;
    ref_rejected = logprob reference pair pair.Pref_data.rejected;
  }

let pair_loss_node ~policy ~bound ~beta refs pair =
  let tape = Model.tape_of_bound bound in
  let lp_w, lp_l =
    match Model.default_impl () with
    | Model.Fused ->
        (* fold the prompt once; both preference legs score from the
           shared state, so the prompt-prefix work (the GRU fold in
           particular) is not repeated per leg *)
        let state =
          Model.prompt_state policy bound ~prompt:pair.Pref_data.prompt
        in
        let lp tokens =
          Model.response_logprob_node_from policy bound ~state
            ~grammar:pair.Pref_data.grammar
            ~min_clauses:pair.Pref_data.min_clauses
            ~max_clauses:pair.Pref_data.max_clauses ~tokens
        in
        (lp pair.Pref_data.chosen, lp pair.Pref_data.rejected)
    | Model.Unfused ->
        (* reference path: each leg rebuilds its own prompt fold, exactly
           as the pre-fusion implementation did *)
        let lp tokens =
          Model.response_logprob_node ~impl:Model.Unfused policy bound
            ~prompt:pair.Pref_data.prompt ~grammar:pair.Pref_data.grammar
            ~min_clauses:pair.Pref_data.min_clauses
            ~max_clauses:pair.Pref_data.max_clauses ~tokens
        in
        (lp pair.Pref_data.chosen, lp pair.Pref_data.rejected)
  in
  (* x = β((lp_w − lp_l) − (ref_w − ref_l)); loss = softplus(−x) *)
  let diff = Autodiff.sub tape lp_w lp_l in
  let shift = Autodiff.const tape (Tensor.scalar (refs.ref_chosen -. refs.ref_rejected)) in
  let x = Autodiff.scale tape beta (Autodiff.sub tape diff shift) in
  let loss = Autodiff.softplus tape (Autodiff.neg tape x) in
  ( loss,
    Tensor.get (Autodiff.value lp_w) 0,
    Tensor.get (Autodiff.value lp_l) 0 )

type stats = { loss : float; accuracy : float; margin : float }

let evaluate ~policy ~reference ~beta pairs =
  match pairs with
  | [] -> { loss = 0.0; accuracy = 0.0; margin = 0.0 }
  | _ ->
      let n = float_of_int (List.length pairs) in
      let totals =
        List.fold_left
          (fun (l, a, m) pair ->
            let refs = reference_logprobs reference pair in
            let lp_w = logprob policy pair pair.Pref_data.chosen in
            let lp_l = logprob policy pair pair.Pref_data.rejected in
            let margin = lp_w -. refs.ref_chosen -. (lp_l -. refs.ref_rejected) in
            let x = beta *. margin in
            let loss = Float.max (-.x) 0.0 +. log1p (exp (-.abs_float x)) in
            (l +. loss, (if lp_w > lp_l then a +. 1.0 else a), m +. margin))
          (0.0, 0.0, 0.0) pairs
      in
      let l, a, m = totals in
      { loss = l /. n; accuracy = a /. n; margin = m /. n }
