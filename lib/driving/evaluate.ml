module Glm2fsa = Dpoaf_lang.Glm2fsa
module Model_checker = Dpoaf_automata.Model_checker
module Cache = Dpoaf_exec.Cache
module Metrics = Dpoaf_exec.Metrics

(* [Lazy.force] is not safe under concurrent forcing in OCaml 5, so the
   shared lexicon is built under a mutex; afterwards it is read-only. *)
let shared_lexicon = lazy (Vocab.lexicon ())
let lexicon_mutex = Mutex.create ()

let lexicon () =
  Mutex.lock lexicon_mutex;
  let l = Lazy.force shared_lexicon in
  Mutex.unlock lexicon_mutex;
  l

let controller_of_steps ~name steps =
  Glm2fsa.of_steps ~name (lexicon ()) steps

let verdicts ?model controller =
  let model = match model with Some m -> m | None -> Models.universal () in
  Model_checker.verify_all ~model ~controller ~specs:Specs.all

let satisfied_specs ?model controller =
  verdicts ?model controller
  |> List.filter_map (fun (name, _, v) ->
         if Model_checker.is_holds v then Some name else None)

let count_specs ?model controller = List.length (satisfied_specs ?model controller)

type profile = { satisfied : string list; vacuous : string list }

(* Vacuity rides along with verification: one extra product construction
   per profiled controller tells which "satisfied" verdicts hold only
   because their antecedent never triggers in the closed loop — the
   degenerate satisfactions the analyzer exists to expose. *)
let profile_of_controller ?model controller =
  let model = match model with Some m -> m | None -> Models.universal () in
  let satisfied = satisfied_specs ~model controller in
  let vacuous =
    Dpoaf_analysis.Vacuity.vacuously_satisfied ~model ~controller
      ~specs:Specs.all ~satisfied
  in
  { satisfied; vacuous }

(* Spec evaluation is pure in (model, steps): the same step list compiles
   to the same controller and verdicts.  Model names are unique per
   scenario (and "universal"), so they key the model side cheaply.  The
   cache is bounded — distinct step lists are effectively unbounded across
   long sampling runs.  The cached value is the full profile (satisfied
   and vacuously-satisfied spec names), so verification provenance costs
   no extra model-checker calls. *)
let profile_cache : (string * string list, profile) Cache.t =
  Cache.create ~capacity:65536 ~name:"evaluate.profile" ()

let evaluations = Metrics.counter "evaluate.count_specs_of_steps"

let profile_of_steps ?model steps =
  Metrics.incr evaluations;
  let model = match model with Some m -> m | None -> Models.universal () in
  Cache.find_or_add profile_cache (model.Dpoaf_automata.Ts.name, steps) (fun () ->
      let controller, _stats = controller_of_steps ~name:"response" steps in
      profile_of_controller ~model controller)

let satisfied_specs_of_steps ?model steps = (profile_of_steps ?model steps).satisfied

let count_specs_of_steps ?model steps =
  List.length (satisfied_specs_of_steps ?model steps)
