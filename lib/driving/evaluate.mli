(** Convenience layer: from step text to specification verdicts.

    This is the verification-feedback path of §4.2 specialized to the
    driving domain: parse steps with the driving lexicon, build the GLM2FSA
    controller, implement it in the universal model (or a single scenario's
    model) and check the 15 rule-book specifications. *)

val lexicon : unit -> Dpoaf_lang.Lexicon.t
(** The shared driving lexicon (memoized; safe to call from any domain). *)

val controller_of_steps :
  name:string -> string list -> Dpoaf_automata.Fsa.t * Dpoaf_lang.Step_parser.stats
(** Parse and compile a response's steps with the driving lexicon. *)

val verdicts :
  ?model:Dpoaf_automata.Ts.t ->
  Dpoaf_automata.Fsa.t ->
  (string * Dpoaf_logic.Ltl.t * Dpoaf_automata.Model_checker.verdict) list
(** Verdicts for Φ1..Φ15; [model] defaults to {!Models.universal}. *)

val satisfied_specs :
  ?model:Dpoaf_automata.Ts.t -> Dpoaf_automata.Fsa.t -> string list
(** Names of the satisfied specifications, in rule-book (Φ1..Φ15) order —
    the provenance behind every verification score. *)

val count_specs : ?model:Dpoaf_automata.Ts.t -> Dpoaf_automata.Fsa.t -> int
(** Number of the 15 specifications satisfied
    ([= List.length (satisfied_specs …)]). *)

type profile = {
  satisfied : string list;  (** spec names, in rule-book (Φ1..Φ15) order *)
  vacuous : string list;
      (** subset of [satisfied] holding only vacuously: their [□(a ⇒ c)]
          antecedent never triggers in the product
          ({!Dpoaf_analysis.Vacuity}) *)
}

val profile_of_controller :
  ?model:Dpoaf_automata.Ts.t -> Dpoaf_automata.Fsa.t -> profile
(** Verify and vacuity-check a controller in one pass. *)

val profile_of_steps : ?model:Dpoaf_automata.Ts.t -> string list -> profile
(** Parse, compile, verify and vacuity-check in one call (controller name
    ["response"]).  Memoized on (model name, steps) through
    {!Dpoaf_exec.Cache}, since the same step lists recur constantly across
    sampling rounds. *)

val satisfied_specs_of_steps :
  ?model:Dpoaf_automata.Ts.t -> string list -> string list
(** [(profile_of_steps …).satisfied] — same memoized path. *)

val count_specs_of_steps : ?model:Dpoaf_automata.Ts.t -> string list -> int
(** [List.length (satisfied_specs_of_steps …)] — same memoized path. *)
