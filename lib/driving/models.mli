(** Automaton-based world models for the driving scenarios (paper Figures 5,
    6, 15, 16 and 17).

    The figures fix the proposition sets; the exact transition layouts are
    reconstructions that follow three rules motivated by the paper's worked
    examples:

    - hazards (cars, pedestrians) are {e transient}: a hazard state always
      clears within one step, so safe controllers eventually act and the
      liveness specifications (Φ7, Φ10, Φ13) are satisfiable;
    - hazards can {e appear in one step} from a clear state, which makes the
      Φ5 edge case of §5.1 reachable ("a car is coming from the left
      immediately after the agent checked for pedestrians");
    - lights recur: every path through a signalized scenario sees its green
      phase infinitely often. *)

type scenario =
  | Traffic_light  (** regular signal at an intersection (Figure 5) *)
  | Left_turn_light  (** explicit left-turn signal (Figure 15) *)
  | Two_way_stop  (** two-way stop sign (Figure 16) *)
  | Roundabout  (** yield-on-entry roundabout (Figure 17) *)
  | Wide_median  (** yield-based wide median (Figure 6) *)

val all_scenarios : scenario list
val scenario_name : scenario -> string

val scenario_of_name : string -> scenario option
(** Inverse of {!scenario_name}; [None] for unknown names.  Callers that
    accept user input (CLI flags, serving requests) should reject [None]
    with the list of valid names rather than silently falling back to the
    universal model. *)

val model : scenario -> Dpoaf_automata.Ts.t
(** The scenario's environment-dynamics model.  Memoized. *)

val universal : unit -> Dpoaf_automata.Ts.t
(** Disjoint union of all five scenario models — the paper's "universal
    model representing the entire system".  Memoized. *)

val scenario_propositions : scenario -> string list
(** Propositions that can occur in the scenario's states. *)
