module Ts = Dpoaf_automata.Ts
module Symbol = Dpoaf_logic.Symbol
module V = Vocab

type scenario =
  | Traffic_light
  | Left_turn_light
  | Two_way_stop
  | Roundabout
  | Wide_median

let all_scenarios =
  [ Traffic_light; Left_turn_light; Two_way_stop; Roundabout; Wide_median ]

let scenario_name = function
  | Traffic_light -> "traffic_light"
  | Left_turn_light -> "left_turn_light"
  | Two_way_stop -> "two_way_stop"
  | Roundabout -> "roundabout"
  | Wide_median -> "wide_median"

let scenario_of_name name =
  List.find_opt (fun sc -> scenario_name sc = name) all_scenarios

let sym = Symbol.of_atoms

(* Figure 5: regular signal.  Cross traffic only flows while the signal is
   red (protected green); jaywalking pedestrians can appear during green but
   the green then extends one clear step (an all-red clearance interval in
   reverse), so guarded controllers are never starved of an actionable green
   instant.  All hazards clear within one step, and a hazard can appear in
   one step — that reachability is what makes the paper's Φ5 edge case
   ("the light turns back to red and a car is coming from the left
   immediately after the agent checked for pedestrians") expressible. *)
let traffic_light () =
  Ts.make ~name:"traffic_light"
    ~states:
      [
        ("g_clear", sym [ V.green_traffic_light ]);
        ("g_pedr", sym [ V.green_traffic_light; V.pedestrian_at_right ]);
        ("g_pedf", sym [ V.green_traffic_light; V.pedestrian_in_front ]);
        ("r1_clear", sym []);
        ("r1_car", sym [ V.car_from_left ]);
        ("r1_pedr", sym [ V.pedestrian_at_right ]);
        ("r2_clear", sym []);
        ("r2_car", sym [ V.car_from_left ]);
        ("r2_pedr", sym [ V.pedestrian_at_right ]);
      ]
    ~transitions:
      [
        (* green may persist; the red phase lasts exactly two steps, so
           green recurs on every path (the signal keeps cycling) *)
        ("g_clear", "g_clear"); ("g_clear", "g_pedr"); ("g_clear", "g_pedf");
        ("g_clear", "r1_clear"); ("g_clear", "r1_car"); ("g_clear", "r1_pedr");
        (* in-green hazards force a clear green step before the phase may
           change *)
        ("g_pedr", "g_clear"); ("g_pedf", "g_clear");
        ("r1_clear", "r2_clear"); ("r1_clear", "r2_car"); ("r1_clear", "r2_pedr");
        ("r1_car", "r2_clear"); ("r1_pedr", "r2_clear");
        ("r2_clear", "g_clear"); ("r2_clear", "g_pedr"); ("r2_clear", "g_pedf");
        ("r2_car", "g_clear"); ("r2_pedr", "g_clear");
      ]
    ()

(* Figure 15: explicit left-turn signal.  The phase cycle red → green arrow
   → flashing arrow → red guarantees the green arrow recurs on every path;
   opposite cars and pedestrians appear only in the phases that admit
   them. *)
let left_turn_light () =
  Ts.make ~name:"left_turn_light"
    ~states:
      [
        ("red0", sym []);
        ("red_clear", sym []);
        ("red_oc", sym [ V.opposite_car ]);
        ("red_ped", sym [ V.pedestrian_at_left ]);
        ("green_arrow", sym [ V.green_left_turn_light ]);
        ("flash_clear", sym [ V.flashing_left_turn_light ]);
        ("flash_oc", sym [ V.flashing_left_turn_light; V.opposite_car ]);
      ]
    ~transitions:
      [
        ("red0", "red_clear"); ("red0", "red_oc"); ("red0", "red_ped");
        ("red_clear", "green_arrow"); ("red_oc", "green_arrow");
        ("red_ped", "green_arrow");
        ("green_arrow", "flash_clear"); ("green_arrow", "flash_oc");
        ("flash_clear", "red0"); ("flash_oc", "red0");
      ]
    ()

(* Figure 16: two-way stop.  The stop sign holds in every state; cross
   traffic and pedestrians are transient. *)
let two_way_stop () =
  let clear src = (src, "s_clear") in
  Ts.make ~name:"two_way_stop"
    ~states:
      [
        ("s_clear", sym [ V.stop_sign ]);
        ("s_car_left", sym [ V.stop_sign; V.car_from_left ]);
        ("s_car_right", sym [ V.stop_sign; V.car_from_right ]);
        ("s_car_both", sym [ V.stop_sign; V.car_from_left; V.car_from_right ]);
        ("s_ped", sym [ V.stop_sign; V.pedestrian_in_front ]);
      ]
    ~transitions:
      [
        ("s_clear", "s_clear"); ("s_clear", "s_car_left");
        ("s_clear", "s_car_right"); ("s_clear", "s_car_both");
        ("s_clear", "s_ped");
        clear "s_car_left"; clear "s_car_right"; clear "s_car_both";
        clear "s_ped";
      ]
    ()

(* Figure 17: roundabout.  "car" is a car from the left (already in the
   ring); "ped" is a pedestrian on the splitter island. *)
let roundabout () =
  let clear src = (src, "rb_clear") in
  Ts.make ~name:"roundabout"
    ~states:
      [
        ("rb_clear", sym []);
        ("rb_car", sym [ V.car_from_left ]);
        ("rb_ped", sym [ V.pedestrian_at_left; V.pedestrian_at_right ]);
        ("rb_car_ped",
         sym [ V.car_from_left; V.pedestrian_at_left; V.pedestrian_at_right ]);
      ]
    ~transitions:
      [
        ("rb_clear", "rb_clear"); ("rb_clear", "rb_car"); ("rb_clear", "rb_ped");
        ("rb_clear", "rb_car_ped");
        clear "rb_car"; clear "rb_ped"; clear "rb_car_ped";
      ]
    ()

(* Figure 6: yield-based wide median, σ1 = car from left, σ2 = car from
   right. *)
let wide_median () =
  let clear src = (src, "m_clear") in
  Ts.make ~name:"wide_median"
    ~states:
      [
        ("m_clear", sym []);
        ("m_car_left", sym [ V.car_from_left ]);
        ("m_car_right", sym [ V.car_from_right ]);
        ("m_car_both", sym [ V.car_from_left; V.car_from_right ]);
      ]
    ~transitions:
      [
        ("m_clear", "m_clear"); ("m_clear", "m_car_left");
        ("m_clear", "m_car_right"); ("m_clear", "m_car_both");
        clear "m_car_left"; clear "m_car_right"; clear "m_car_both";
      ]
    ()

(* Built models are immutable; the shared-cache module makes concurrent
   construction from worker domains safe. *)
let cache : (scenario, Ts.t) Dpoaf_exec.Cache.t =
  Dpoaf_exec.Cache.create ~name:"driving.models" ()

let universal_key = "universal"

let universal_cache : (string, Ts.t) Dpoaf_exec.Cache.t =
  Dpoaf_exec.Cache.create ~name:"driving.universal" ()

let model scenario =
  Dpoaf_exec.Cache.find_or_add cache scenario (fun () ->
      match scenario with
      | Traffic_light -> traffic_light ()
      | Left_turn_light -> left_turn_light ()
      | Two_way_stop -> two_way_stop ()
      | Roundabout -> roundabout ()
      | Wide_median -> wide_median ())

let universal () =
  Dpoaf_exec.Cache.find_or_add universal_cache universal_key (fun () ->
      Ts.union ~name:"universal" (List.map model all_scenarios))

let scenario_propositions scenario =
  Symbol.elements (Ts.propositions (model scenario))
