(** Tape-based reverse-mode automatic differentiation.

    Build a computation on a {!Tape.t}; call {!backward} on a scalar output;
    read gradients of the leaves with {!grad}.

    The tape is an arena: nodes live in a growable array, and {!Tape.reset}
    recycles both the array and the adjoint buffers so a training loop can
    run every step on one tape without re-allocating gradients.  A tape
    belongs to a single domain — parallel runs each create their own. *)

module Tape : sig
  type t

  (** Cumulative arena accounting, for {!stats}. *)
  type stats = {
    live_nodes : int;  (** nodes recorded since the last {!reset} *)
    buffers_reused : int;  (** adjoint buffers served from the pool *)
    buffers_allocated : int;  (** adjoint buffers freshly allocated *)
    resets : int;
  }

  val create : unit -> t
  val length : t -> int

  val reset : t -> unit
  (** Drop all nodes and park their adjoint buffers in a shape-keyed pool
      for reuse by the next pass.  Gradient tensors previously returned by
      {!grad} on this tape are invalidated: they may be re-zeroed and
      reused by later nodes.  Read (or copy) gradients before resetting. *)

  val stats : t -> stats
end

type t
(** A node: a tensor value plus its accumulated adjoint. *)

val var : Tape.t -> Tensor.t -> t
(** Differentiable leaf (model parameter or input embedding). *)

val const : Tape.t -> Tensor.t -> t
(** Non-differentiable leaf: gradients are still accumulated (harmlessly)
    but typically ignored. *)

val value : t -> Tensor.t
val grad : t -> Tensor.t
(** Adjoint accumulated by the last {!backward}; zeros before that. *)

(** {1 Operations} — shapes follow the tensor arguments *)

val add : Tape.t -> t -> t -> t
val sub : Tape.t -> t -> t -> t

(** Elementwise product. *)
val mul : Tape.t -> t -> t -> t

val scale : Tape.t -> float -> t -> t
val neg : Tape.t -> t -> t

(** Any shape → scalar. *)
val sum : Tape.t -> t -> t

val mean : Tape.t -> t -> t

(** Vectors → scalar. *)
val dot : Tape.t -> t -> t -> t

(** [m×n] matrix, [n]-vector → [m]-vector. *)
val matvec : Tape.t -> t -> t -> t

(** Mean of the selected rows of a matrix (an embedding-bag). *)
val rows_mean : Tape.t -> t -> int list -> t

(** [gather_matvec tape m x rows] is the vector [(m.(r) · x)] for [r] in
    [rows] — the selected-rows product used for grammar-constrained logits,
    avoiding work on tokens the grammar forbids. *)
val gather_matvec : Tape.t -> t -> t -> int list -> t

(** [gather tape v rows] selects entries of a vector. *)
val gather : Tape.t -> t -> int list -> t

val tanh_ : Tape.t -> t -> t
val relu : Tape.t -> t -> t
val sigmoid : Tape.t -> t -> t

(** Requires positive entries. *)
val log_ : Tape.t -> t -> t

val exp_ : Tape.t -> t -> t

(** [log(1 + e^x)], computed stably; the gradient is [sigmoid x].  The DPO
    loss [-log σ(x)] is [softplus (-x)]. *)
val softplus : Tape.t -> t -> t

(** Vector → vector. *)
val log_softmax : Tape.t -> t -> t

(** Vector, index → scalar. *)
val pick : Tape.t -> t -> int -> t

(** Sum of scalars; [add_list tape []] is the constant 0. *)
val add_list : Tape.t -> t list -> t

(** {1 Fused kernels}

    Single-node versions of the LM scoring sub-graphs, with hand-written
    backwards that replay the unfused composition's float operations in the
    same order — values and gradients are bit-identical to the reference
    (the composition of the primitive ops above), just without the
    intermediate nodes. *)

val bow_hidden : Tape.t -> t -> int list -> t
(** [bow_hidden tape emb rows] = [tanh_ tape (rows_mean tape emb rows)] as
    one node. *)

val lora_logit_logprob :
  Tape.t ->
  base:t ->
  a:t ->
  b:t ->
  bias:t ->
  h:t ->
  allowed:int list ->
  target_pos:int ->
  t
(** The whole LoRA scoring head as one node:
    [pick (log_softmax (gather_matvec base h allowed
                        + gather_matvec a (matvec b h) allowed
                        + gather bias allowed)) target_pos].
    @raise Invalid_argument on shape mismatch, an empty or out-of-range
    [allowed] set, or an out-of-range [target_pos]. *)

val backward : Tape.t -> t -> unit
(** Seed the (scalar) output with gradient 1 and propagate.  Clears
    previously accumulated gradients on the tape first.
    @raise Invalid_argument if the output is not a scalar. *)
