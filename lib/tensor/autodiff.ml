type node = {
  value : Tensor.t;
  grad : Tensor.t;  (* adjoint, same shape as value *)
  pull : unit -> unit;  (* propagate this node's adjoint to its parents *)
}

type t = node

module Tape = struct
  (* Growable array-backed arena.  [reset] recycles the arena for the next
     step of a training run: node slots are blanked and every grad tensor
     is parked in [pool] (keyed by shape) so the next pass re-acquires
     zeroed buffers instead of allocating fresh ones.  A tape is owned by
     a single domain; parallel runs each build their own. *)
  type stats = {
    live_nodes : int;
    buffers_reused : int;
    buffers_allocated : int;
    resets : int;
  }

  type t = {
    mutable nodes : node array;  (* slots [0, n) are live, in creation order *)
    mutable n : int;
    pool : (int array, Tensor.t list ref) Hashtbl.t;
    mutable reused : int;
    mutable allocated : int;
    mutable resets : int;
  }

  let dummy =
    let z = Tensor.scalar 0.0 in
    { value = z; grad = z; pull = (fun () -> ()) }

  let create () =
    {
      nodes = Array.make 256 dummy;
      n = 0;
      pool = Hashtbl.create 16;
      reused = 0;
      allocated = 0;
      resets = 0;
    }

  let length t = t.n

  let push t node =
    let cap = Array.length t.nodes in
    if t.n = cap then begin
      let bigger = Array.make (2 * cap) dummy in
      Array.blit t.nodes 0 bigger 0 t.n;
      t.nodes <- bigger
    end;
    t.nodes.(t.n) <- node;
    t.n <- t.n + 1

  (* A zeroed adjoint buffer: pooled when one of the right shape is
     available, freshly allocated otherwise. *)
  let acquire_grad t shape =
    match Hashtbl.find_opt t.pool shape with
    | Some ({ contents = g :: rest } as bucket) ->
        bucket := rest;
        t.reused <- t.reused + 1;
        Tensor.fill g 0.0;
        g
    | _ ->
        t.allocated <- t.allocated + 1;
        Tensor.zeros shape

  let reset t =
    for i = 0 to t.n - 1 do
      let g = t.nodes.(i).grad in
      let shape = Tensor.dims g in
      (match Hashtbl.find_opt t.pool shape with
      | Some bucket -> bucket := g :: !bucket
      | None -> Hashtbl.add t.pool shape (ref [ g ]));
      t.nodes.(i) <- dummy
    done;
    t.n <- 0;
    t.resets <- t.resets + 1

  let stats t =
    {
      live_nodes = t.n;
      buffers_reused = t.reused;
      buffers_allocated = t.allocated;
      resets = t.resets;
    }
end

(* [pull_of_grad] receives the node's own adjoint tensor and accumulates
   into the parents' adjoints. *)
let record tape value pull_of_grad =
  let grad = Tape.acquire_grad tape (Tensor.dims value) in
  let node = { value; grad; pull = (fun () -> pull_of_grad grad) } in
  Tape.push tape node;
  node

let var tape value = record tape value (fun _ -> ())
let const = var

let value n = n.value
let grad n = n.grad

let n_ t = Tensor.numel t

let add tape a b =
  record tape
    (Tensor.map2 ( +. ) a.value b.value)
    (fun g ->
      Tensor.add_in_place a.grad g;
      Tensor.add_in_place b.grad g)

let sub tape a b =
  record tape
    (Tensor.map2 ( -. ) a.value b.value)
    (fun g ->
      Tensor.add_in_place a.grad g;
      for i = 0 to n_ g - 1 do
        Tensor.set b.grad i (Tensor.get b.grad i -. Tensor.get g i)
      done)

let mul tape a b =
  record tape
    (Tensor.map2 ( *. ) a.value b.value)
    (fun g ->
      for i = 0 to n_ g - 1 do
        Tensor.set a.grad i (Tensor.get a.grad i +. (Tensor.get g i *. Tensor.get b.value i));
        Tensor.set b.grad i (Tensor.get b.grad i +. (Tensor.get g i *. Tensor.get a.value i))
      done)

let scale tape c a =
  record tape
    (Tensor.map (fun x -> c *. x) a.value)
    (fun g ->
      for i = 0 to n_ g - 1 do
        Tensor.set a.grad i (Tensor.get a.grad i +. (c *. Tensor.get g i))
      done)

let neg tape a = scale tape (-1.0) a

let sum tape a =
  record tape
    (Tensor.scalar (Tensor.sum a.value))
    (fun g ->
      let gv = Tensor.get g 0 in
      for i = 0 to n_ a.value - 1 do
        Tensor.set a.grad i (Tensor.get a.grad i +. gv)
      done)

let mean tape a =
  let n = float_of_int (max 1 (n_ a.value)) in
  record tape
    (Tensor.scalar (Tensor.mean a.value))
    (fun g ->
      let gv = Tensor.get g 0 /. n in
      for i = 0 to n_ a.value - 1 do
        Tensor.set a.grad i (Tensor.get a.grad i +. gv)
      done)

let dot tape a b =
  if Tensor.numel a.value <> Tensor.numel b.value then
    invalid_arg "Autodiff.dot: size mismatch";
  let v = ref 0.0 in
  for i = 0 to n_ a.value - 1 do
    v := !v +. (Tensor.get a.value i *. Tensor.get b.value i)
  done;
  record tape (Tensor.scalar !v) (fun g ->
      let gv = Tensor.get g 0 in
      for i = 0 to n_ a.value - 1 do
        Tensor.set a.grad i (Tensor.get a.grad i +. (gv *. Tensor.get b.value i));
        Tensor.set b.grad i (Tensor.get b.grad i +. (gv *. Tensor.get a.value i))
      done)

let matvec tape m x =
  let rows, cols =
    match Tensor.dims m.value with
    | [| r; c |] -> (r, c)
    | _ -> invalid_arg "Autodiff.matvec: first argument must be a matrix"
  in
  if Tensor.numel x.value <> cols then invalid_arg "Autodiff.matvec: size mismatch";
  let out = Array.make rows 0.0 in
  for i = 0 to rows - 1 do
    let acc = ref 0.0 in
    for j = 0 to cols - 1 do
      acc := !acc +. (Tensor.get m.value ((i * cols) + j) *. Tensor.get x.value j)
    done;
    out.(i) <- !acc
  done;
  record tape (Tensor.vector out) (fun g ->
      for i = 0 to rows - 1 do
        let gi = Tensor.get g i in
        if gi <> 0.0 then
          for j = 0 to cols - 1 do
            let idx = (i * cols) + j in
            Tensor.set m.grad idx (Tensor.get m.grad idx +. (gi *. Tensor.get x.value j));
            Tensor.set x.grad j (Tensor.get x.grad j +. (gi *. Tensor.get m.value idx))
          done
      done)

let rows_mean tape m rows =
  let nrows, cols =
    match Tensor.dims m.value with
    | [| r; c |] -> (r, c)
    | _ -> invalid_arg "Autodiff.rows_mean: argument must be a matrix"
  in
  List.iter
    (fun r ->
      if r < 0 || r >= nrows then invalid_arg "Autodiff.rows_mean: row out of range")
    rows;
  let k = float_of_int (max 1 (List.length rows)) in
  let out = Array.make cols 0.0 in
  List.iter
    (fun r ->
      for j = 0 to cols - 1 do
        out.(j) <- out.(j) +. (Tensor.get m.value ((r * cols) + j) /. k)
      done)
    rows;
  record tape (Tensor.vector out) (fun g ->
      List.iter
        (fun r ->
          for j = 0 to cols - 1 do
            let idx = (r * cols) + j in
            Tensor.set m.grad idx (Tensor.get m.grad idx +. (Tensor.get g j /. k))
          done)
        rows)

let gather_matvec tape m x rows =
  let nrows, cols =
    match Tensor.dims m.value with
    | [| r; c |] -> (r, c)
    | _ -> invalid_arg "Autodiff.gather_matvec: first argument must be a matrix"
  in
  if Tensor.numel x.value <> cols then
    invalid_arg "Autodiff.gather_matvec: size mismatch";
  let rows_arr = Array.of_list rows in
  Array.iter
    (fun r ->
      if r < 0 || r >= nrows then
        invalid_arg "Autodiff.gather_matvec: row out of range")
    rows_arr;
  let out =
    Array.map
      (fun r ->
        let acc = ref 0.0 in
        for j = 0 to cols - 1 do
          acc := !acc +. (Tensor.get m.value ((r * cols) + j) *. Tensor.get x.value j)
        done;
        !acc)
      rows_arr
  in
  record tape (Tensor.vector out) (fun g ->
      Array.iteri
        (fun k r ->
          let gk = Tensor.get g k in
          if gk <> 0.0 then
            for j = 0 to cols - 1 do
              let idx = (r * cols) + j in
              Tensor.set m.grad idx (Tensor.get m.grad idx +. (gk *. Tensor.get x.value j));
              Tensor.set x.grad j (Tensor.get x.grad j +. (gk *. Tensor.get m.value idx))
            done)
        rows_arr)

let gather tape v rows =
  let n = n_ v.value in
  let rows_arr = Array.of_list rows in
  Array.iter
    (fun r -> if r < 0 || r >= n then invalid_arg "Autodiff.gather: index out of range")
    rows_arr;
  record tape
    (Tensor.vector (Array.map (fun r -> Tensor.get v.value r) rows_arr))
    (fun g ->
      Array.iteri
        (fun k r -> Tensor.set v.grad r (Tensor.get v.grad r +. Tensor.get g k))
        rows_arr)

let unary tape f df a =
  let value = Tensor.map f a.value in
  record tape value (fun g ->
      for i = 0 to n_ g - 1 do
        Tensor.set a.grad i
          (Tensor.get a.grad i +. (Tensor.get g i *. df (Tensor.get a.value i) (Tensor.get value i)))
      done)

let tanh_ tape a = unary tape tanh (fun _ y -> 1.0 -. (y *. y)) a
let relu tape a = unary tape (fun x -> Float.max 0.0 x) (fun x _ -> if x > 0.0 then 1.0 else 0.0) a
let sigmoid tape a =
  unary tape (fun x -> 1.0 /. (1.0 +. exp (-.x))) (fun _ y -> y *. (1.0 -. y)) a
let log_ tape a = unary tape log (fun x _ -> 1.0 /. x) a
let exp_ tape a = unary tape exp (fun _ y -> y) a

let softplus tape a =
  unary tape
    (fun x -> Float.max x 0.0 +. log1p (exp (-.abs_float x)))
    (fun x _ -> 1.0 /. (1.0 +. exp (-.x)))
    a

let log_softmax tape a =
  let n = n_ a.value in
  if n = 0 then invalid_arg "Autodiff.log_softmax: empty vector";
  let m = ref neg_infinity in
  for i = 0 to n - 1 do
    m := Float.max !m (Tensor.get a.value i)
  done;
  let z = ref 0.0 in
  for i = 0 to n - 1 do
    z := !z +. exp (Tensor.get a.value i -. !m)
  done;
  let log_z = !m +. log !z in
  let value = Tensor.map (fun x -> x -. log_z) a.value in
  record tape value (fun g ->
      let g_sum = Tensor.sum g in
      for i = 0 to n - 1 do
        let soft = exp (Tensor.get value i) in
        Tensor.set a.grad i (Tensor.get a.grad i +. Tensor.get g i -. (g_sum *. soft))
      done)

let pick tape a idx =
  if idx < 0 || idx >= n_ a.value then invalid_arg "Autodiff.pick: index out of range";
  record tape
    (Tensor.scalar (Tensor.get a.value idx))
    (fun g -> Tensor.set a.grad idx (Tensor.get a.grad idx +. Tensor.get g 0))

let add_list tape = function
  | [] -> var tape (Tensor.scalar 0.0)
  | xs ->
      List.iter
        (fun x ->
          if Tensor.numel x.value <> 1 then
            invalid_arg "Autodiff.add_list: non-scalar term")
        xs;
      let total = List.fold_left (fun acc x -> acc +. Tensor.get x.value 0) 0.0 xs in
      record tape (Tensor.scalar total) (fun g ->
          let gv = Tensor.get g 0 in
          List.iter
            (fun x -> Tensor.set x.grad 0 (Tensor.get x.grad 0 +. gv))
            xs)

(* {2 Fused kernels}

   The two ops below each collapse a fixed sub-graph of the LM scoring
   path into a single tape node with a hand-written backward.  Their
   contract is strict: every float operation — accumulation order, the
   [0.0 +.] of the first in-place add, the [<> 0.0] sparsity skips — is
   the one the equivalent unfused composition performs, so values AND
   gradients are bit-identical to the reference (test/test_tensor.ml pins
   this with qcheck). *)

(* tanh (rows_mean m rows) as one node. *)
let bow_hidden tape m rows =
  let nrows, cols =
    match Tensor.dims m.value with
    | [| r; c |] -> (r, c)
    | _ -> invalid_arg "Autodiff.bow_hidden: argument must be a matrix"
  in
  List.iter
    (fun r ->
      if r < 0 || r >= nrows then invalid_arg "Autodiff.bow_hidden: row out of range")
    rows;
  let k = float_of_int (max 1 (List.length rows)) in
  let md = m.value.Tensor.data in
  let acc = Array.make cols 0.0 in
  List.iter
    (fun r ->
      let off = r * cols in
      for j = 0 to cols - 1 do
        acc.(j) <- acc.(j) +. (md.(off + j) /. k)
      done)
    rows;
  let value = Tensor.vector (Array.map tanh acc) in
  let yd = value.Tensor.data in
  record tape value (fun g ->
      let gd = g.Tensor.data in
      (* tanh pull into the (virtual) rows_mean adjoint... *)
      let mg = Array.make cols 0.0 in
      for j = 0 to cols - 1 do
        let y = yd.(j) in
        mg.(j) <- 0.0 +. (gd.(j) *. (1.0 -. (y *. y)))
      done;
      (* ...then the rows_mean pull. *)
      let mgrad = m.grad.Tensor.data in
      List.iter
        (fun r ->
          let off = r * cols in
          for j = 0 to cols - 1 do
            mgrad.(off + j) <- mgrad.(off + j) +. (mg.(j) /. k)
          done)
        rows)

(* pick (log_softmax ((gather_matvec base h rows + gather_matvec a (matvec b h) rows)
                      + gather bias rows)) target_pos
   as one node. *)
let lora_logit_logprob tape ~base ~a ~b ~bias ~h ~allowed ~target_pos =
  let v_rows, d =
    match Tensor.dims base.value with
    | [| r; c |] -> (r, c)
    | _ -> invalid_arg "Autodiff.lora_logit_logprob: base must be a matrix"
  in
  let rank, bd_cols =
    match Tensor.dims b.value with
    | [| r; c |] -> (r, c)
    | _ -> invalid_arg "Autodiff.lora_logit_logprob: b must be a matrix"
  in
  let a_rows, a_cols =
    match Tensor.dims a.value with
    | [| r; c |] -> (r, c)
    | _ -> invalid_arg "Autodiff.lora_logit_logprob: a must be a matrix"
  in
  if
    bd_cols <> d || a_rows <> v_rows || a_cols <> rank
    || Tensor.numel h.value <> d
    || Tensor.numel bias.value <> v_rows
  then invalid_arg "Autodiff.lora_logit_logprob: size mismatch";
  let rows = Array.of_list allowed in
  let n = Array.length rows in
  if n = 0 then invalid_arg "Autodiff.lora_logit_logprob: empty allowed set";
  Array.iter
    (fun r ->
      if r < 0 || r >= v_rows then
        invalid_arg "Autodiff.lora_logit_logprob: row out of range")
    rows;
  if target_pos < 0 || target_pos >= n then
    invalid_arg "Autodiff.lora_logit_logprob: target position out of range";
  let based = base.value.Tensor.data
  and ad = a.value.Tensor.data
  and bd = b.value.Tensor.data
  and biasd = bias.value.Tensor.data
  and hd = h.value.Tensor.data in
  (* forward, in the unfused composition's creation order *)
  let wx =
    Array.map
      (fun r ->
        let acc = ref 0.0 in
        let off = r * d in
        for j = 0 to d - 1 do
          acc := !acc +. (based.(off + j) *. hd.(j))
        done;
        !acc)
      rows
  in
  let bh = Array.make rank 0.0 in
  for i = 0 to rank - 1 do
    let acc = ref 0.0 in
    let off = i * d in
    for j = 0 to d - 1 do
      acc := !acc +. (bd.(off + j) *. hd.(j))
    done;
    bh.(i) <- !acc
  done;
  let abx =
    Array.map
      (fun r ->
        let acc = ref 0.0 in
        let off = r * rank in
        for i = 0 to rank - 1 do
          acc := !acc +. (ad.(off + i) *. bh.(i))
        done;
        !acc)
      rows
  in
  let logits = Array.init n (fun k -> (wx.(k) +. abx.(k)) +. biasd.(rows.(k))) in
  let m = ref neg_infinity in
  for i = 0 to n - 1 do
    m := Float.max !m logits.(i)
  done;
  let z = ref 0.0 in
  for i = 0 to n - 1 do
    z := !z +. exp (logits.(i) -. !m)
  done;
  let log_z = !m +. log !z in
  let ls = Array.map (fun x -> x -. log_z) logits in
  record tape
    (Tensor.scalar ls.(target_pos))
    (fun g ->
      (* pick pull: the log-softmax adjoint is g at the target, 0 elsewhere *)
      let lsg_t = 0.0 +. Tensor.get g 0 in
      (* log_softmax pull; summing the one-hot adjoint yields lsg_t exactly *)
      let g_sum = lsg_t in
      let lg =
        Array.init n (fun k ->
            let gk = if k = target_pos then lsg_t else 0.0 in
            (0.0 +. gk) -. (g_sum *. exp ls.(k)))
      in
      (* the two adds fan the same adjoint out to wx, abx and the bias
         gather; each target buffer starts from zero *)
      let zplus x = 0.0 +. x in
      let add1g = Array.map zplus lg in
      let biasgg = Array.map zplus lg in
      let wxg = Array.map zplus add1g in
      let abxg = Array.map zplus add1g in
      (* bias-gather pull *)
      let biasgrad = bias.grad.Tensor.data in
      Array.iteri (fun k r -> biasgrad.(r) <- biasgrad.(r) +. biasgg.(k)) rows;
      (* abx = gather_matvec a bh: pull into a and the bh adjoint *)
      let agrad = a.grad.Tensor.data in
      let bhg = Array.make rank 0.0 in
      Array.iteri
        (fun k r ->
          let gk = abxg.(k) in
          if gk <> 0.0 then begin
            let off = r * rank in
            for i = 0 to rank - 1 do
              agrad.(off + i) <- agrad.(off + i) +. (gk *. bh.(i));
              bhg.(i) <- bhg.(i) +. (gk *. ad.(off + i))
            done
          end)
        rows;
      (* bh = matvec b h: pull into b and h *)
      let bgrad = b.grad.Tensor.data and hgrad = h.grad.Tensor.data in
      for i = 0 to rank - 1 do
        let gi = bhg.(i) in
        if gi <> 0.0 then begin
          let off = i * d in
          for j = 0 to d - 1 do
            bgrad.(off + j) <- bgrad.(off + j) +. (gi *. hd.(j));
            hgrad.(j) <- hgrad.(j) +. (gi *. bd.(off + j))
          done
        end
      done;
      (* wx = gather_matvec base h: pull into base and h *)
      let basegrad = base.grad.Tensor.data in
      Array.iteri
        (fun k r ->
          let gk = wxg.(k) in
          if gk <> 0.0 then begin
            let off = r * d in
            for j = 0 to d - 1 do
              basegrad.(off + j) <- basegrad.(off + j) +. (gk *. hd.(j));
              hgrad.(j) <- hgrad.(j) +. (gk *. based.(off + j))
            done
          end)
        rows)

let backward tape out =
  if Tensor.numel out.value <> 1 then
    invalid_arg "Autodiff.backward: output must be a scalar";
  let nodes = tape.Tape.nodes and n = tape.Tape.n in
  for i = 0 to n - 1 do
    Tensor.fill nodes.(i).grad 0.0
  done;
  Tensor.set out.grad 0 1.0;
  (* creation order is topological order, so walk the arena backwards *)
  for i = n - 1 downto 0 do
    nodes.(i).pull ()
  done
