(* Process-wide instrumentation registry.

   Counters are atomic so worker domains can bump them without taking a
   lock; timers accumulate wall-clock seconds under the registry mutex
   (timed sections are coarse, so contention is negligible); histograms
   keep log-bucketed latency distributions under a per-histogram mutex so
   hot observation paths (per-response scoring, per-rollout timing) do not
   contend with the registry.  External sources (e.g. cache statistics)
   register a thunk and are sampled when a summary is produced. *)

type counter = int Atomic.t

type timer = { mutable total : float; mutable count : int }

(* Log-bucketed histogram: bucket [i] (for [i > 0]) covers values in
   [10^((i-1+lo)/10), 10^((i+lo)/10)); bucket 0 collects v <= lowest bound.
   Ten buckets per decade bounds any percentile estimate within a factor of
   10^(1/10) ≈ 1.26 of the true order statistic; tracking the exact min and
   max tightens the tails. *)
type histogram = {
  buckets : int array;
  mutable hcount : int;
  mutable sum : float;
  mutable minv : float;
  mutable maxv : float;
  hmutex : Mutex.t;
}

(* exponent range: 1e-9 .. 1e6 (tenths of decades) *)
let lo_exp = -90
let hi_exp = 60
let nbuckets = hi_exp - lo_exp + 1 (* plus the underflow bucket at index 0 *)

let bucket_base = 10.0 ** 0.1

(* Gauges are levels (queue depth, in-flight requests): last write wins,
   no accumulation.  A boxed-float atomic keeps sets lock-free from any
   domain. *)
type gauge = float Atomic.t

type entry =
  | Counter of counter
  | Timer of timer
  | Histogram of histogram
  | Gauge of gauge

let kind_name = function
  | Counter _ -> "counter"
  | Timer _ -> "timer"
  | Histogram _ -> "histogram"
  | Gauge _ -> "gauge"

let mutex = Mutex.create ()
let entries : (string, entry) Hashtbl.t = Hashtbl.create 32
let sources : (string * (unit -> (string * float) list)) list ref = ref []

let with_lock f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

(* Satellite fix: asking for a name already registered as another kind used
   to report only one side; now the error names both the requested and the
   existing kind. *)
let collision ~requested name existing =
  invalid_arg
    (Printf.sprintf
       "Metrics.%s: %S is already registered as a %s (counters, timers and \
        histograms share one namespace)"
       requested name (kind_name existing))

let counter name =
  with_lock (fun () ->
      match Hashtbl.find_opt entries name with
      | Some (Counter c) -> c
      | Some other -> collision ~requested:"counter" name other
      | None ->
          let c = Atomic.make 0 in
          Hashtbl.add entries name (Counter c);
          c)

let incr c = Atomic.incr c
let add c n = ignore (Atomic.fetch_and_add c n)
let value c = Atomic.get c

let gauge name =
  with_lock (fun () ->
      match Hashtbl.find_opt entries name with
      | Some (Gauge g) -> g
      | Some other -> collision ~requested:"gauge" name other
      | None ->
          let g = Atomic.make 0.0 in
          Hashtbl.add entries name (Gauge g);
          g)

let set_gauge g v = Atomic.set g v
let gauge_value g = Atomic.get g

let timer_entry name =
  with_lock (fun () ->
      match Hashtbl.find_opt entries name with
      | Some (Timer t) -> t
      | Some other -> collision ~requested:"time" name other
      | None ->
          let t = { total = 0.0; count = 0 } in
          Hashtbl.add entries name (Timer t);
          t)

let record_time name seconds =
  let t = timer_entry name in
  with_lock (fun () ->
      t.total <- t.total +. seconds;
      t.count <- t.count + 1)

let time name f =
  (* intern up front so a name collision raises before [f] runs, not
     wrapped in Finally_raised *)
  let t = timer_entry name in
  let t0 = Unix.gettimeofday () in
  Fun.protect f ~finally:(fun () ->
      let seconds = Unix.gettimeofday () -. t0 in
      with_lock (fun () ->
          t.total <- t.total +. seconds;
          t.count <- t.count + 1))

(* ---------------- histograms ---------------- *)

let histogram name =
  with_lock (fun () ->
      match Hashtbl.find_opt entries name with
      | Some (Histogram h) -> h
      | Some other -> collision ~requested:"histogram" name other
      | None ->
          let h =
            {
              buckets = Array.make (nbuckets + 1) 0;
              hcount = 0;
              sum = 0.0;
              minv = Float.infinity;
              maxv = Float.neg_infinity;
              hmutex = Mutex.create ();
            }
          in
          Hashtbl.add entries name (Histogram h);
          h)

let bucket_of v =
  if v <= 0.0 then 0
  else
    let e = int_of_float (Float.floor (10.0 *. Float.log10 v)) in
    let e = if e < lo_exp then lo_exp - 1 else if e > hi_exp then hi_exp else e in
    e - lo_exp + 1

let observe h v =
  Mutex.lock h.hmutex;
  h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
  h.hcount <- h.hcount + 1;
  h.sum <- h.sum +. v;
  if v < h.minv then h.minv <- v;
  if v > h.maxv then h.maxv <- v;
  Mutex.unlock h.hmutex

let observe_time name f =
  let h = histogram name in
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> observe h (Unix.gettimeofday () -. t0)) f

(* Upper bound of bucket [i]'s value range. *)
let bucket_upper i =
  if i = 0 then 0.0 else 10.0 ** (float_of_int (i + lo_exp) /. 10.0)

(* Nearest-rank percentile from the bucket counts, clamped to the observed
   [min, max] so the extreme quantiles stay exact. *)
let percentile_locked h q =
  if h.hcount = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int h.hcount))) in
    let est = ref h.maxv in
    let cum = ref 0 in
    (try
       Array.iteri
         (fun i c ->
           cum := !cum + c;
           if !cum >= rank then begin
             est := bucket_upper i;
             raise Exit
           end)
         h.buckets
     with Exit -> ());
    Float.max h.minv (Float.min h.maxv !est)
  end

let percentile h q =
  Mutex.lock h.hmutex;
  let v = percentile_locked h q in
  Mutex.unlock h.hmutex;
  v

let histogram_items h =
  Mutex.lock h.hmutex;
  let items =
    if h.hcount = 0 then [ ("count", 0.0) ]
    else
      [
        ("count", float_of_int h.hcount);
        ("sum", h.sum);
        ("min", h.minv);
        ("max", h.maxv);
        ("p50", percentile_locked h 0.50);
        ("p90", percentile_locked h 0.90);
        ("p99", percentile_locked h 0.99);
      ]
  in
  Mutex.unlock h.hmutex;
  items

(* ---------------- exportable snapshots ---------------- *)

module Json = Dpoaf_util.Json

(* Lower bound of bucket [i]'s value range.  The underflow bucket reports
   both bounds as 0, matching its percentile estimate. *)
let bucket_lower i =
  if i = 0 then 0.0 else 10.0 ** (float_of_int (i - 1 + lo_exp) /. 10.0)

type hist_snapshot = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : (float * float * int) list;
}

let snapshot_locked (h : histogram) : hist_snapshot =
  let bs = ref [] in
  for i = Array.length h.buckets - 1 downto 0 do
    let c = h.buckets.(i) in
    if c > 0 then bs := (bucket_lower i, bucket_upper i, c) :: !bs
  done;
  {
    count = h.hcount;
    sum = h.sum;
    min = (if h.hcount = 0 then 0.0 else h.minv);
    max = (if h.hcount = 0 then 0.0 else h.maxv);
    buckets = !bs;
  }

let snapshot h =
  Mutex.lock h.hmutex;
  let s = snapshot_locked h in
  Mutex.unlock h.hmutex;
  s

let histogram_snapshots () =
  let hists =
    with_lock (fun () ->
        Hashtbl.fold
          (fun name entry acc ->
            match entry with Histogram h -> (name, h) :: acc | _ -> acc)
          entries [])
  in
  List.sort
    (fun (a, _) (b, _) -> compare a b)
    (List.map (fun (name, h) -> (name, snapshot h)) hists)

let snapshot_percentile (s : hist_snapshot) q =
  if s.count = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank =
      Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int s.count)))
    in
    let est = ref s.max in
    let cum = ref 0 in
    (try
       List.iter
         (fun (_, upper, c) ->
           cum := !cum + c;
           if !cum >= rank then begin
             est := upper;
             raise Exit
           end)
         s.buckets
     with Exit -> ());
    Float.max s.min (Float.min s.max !est)
  end

let merge_snapshots (a : hist_snapshot) (b : hist_snapshot) : hist_snapshot =
  (* both bucket lists ascend; bucket identity is the bound pair *)
  let rec merge xs ys =
    match (xs, ys) with
    | [], rest | rest, [] -> rest
    | ((xl, xu, xc) as x) :: xs', ((yl, yu, yc) as y) :: ys' ->
        if xl = yl && xu = yu then (xl, xu, xc + yc) :: merge xs' ys'
        else if xu < yu then x :: merge xs' ys
        else y :: merge xs ys'
  in
  if a.count = 0 then b
  else if b.count = 0 then a
  else
    {
      count = a.count + b.count;
      sum = a.sum +. b.sum;
      min = Float.min a.min b.min;
      max = Float.max a.max b.max;
      buckets = merge a.buckets b.buckets;
    }

let diff_snapshots (newer : hist_snapshot) (older : hist_snapshot) :
    hist_snapshot =
  (* both bucket lists ascend; bucket identity is the bound pair.  [older]
     must be an earlier snapshot of the same histogram, so its buckets are
     a subset of [newer]'s with counts no larger. *)
  let rec sub xs ys =
    match (xs, ys) with
    | rest, [] -> rest
    | [], _ -> []
    | ((xl, xu, xc) as x) :: xs', (yl, yu, yc) :: ys' ->
        if xl = yl && xu = yu then
          let c = xc - yc in
          if c > 0 then (xl, xu, c) :: sub xs' ys' else sub xs' ys'
        else if xu < yu then x :: sub xs' ys
        else sub xs ys'
  in
  if older.count = 0 then newer
  else begin
    let buckets = sub newer.buckets older.buckets in
    let count = Stdlib.max 0 (newer.count - older.count) in
    (* exact window extremes are not recoverable from cumulative state;
       the surviving buckets' bounds are the tightest honest envelope *)
    let min, max =
      match (buckets, List.rev buckets) with
      | (lo, _, _) :: _, (_, hi, _) :: _ ->
          (Float.max lo newer.min, Float.min hi newer.max)
      | _ -> (0.0, 0.0)
    in
    { count; sum = newer.sum -. older.sum; min; max; buckets }
  end

let json_of_snapshot (s : hist_snapshot) =
  Json.obj
    [
      ("count", Json.num (float_of_int s.count));
      ("sum", Json.num s.sum);
      ("min", Json.num s.min);
      ("max", Json.num s.max);
      ("p50", Json.num (snapshot_percentile s 0.50));
      ("p90", Json.num (snapshot_percentile s 0.90));
      ("p99", Json.num (snapshot_percentile s 0.99));
      ( "buckets",
        Json.arr
          (List.map
             (fun (lo, hi, c) ->
               Json.arr [ Json.num lo; Json.num hi; Json.num (float_of_int c) ])
             s.buckets) );
    ]

let snapshot_of_json j =
  let ( let* ) = Result.bind in
  let num_field name =
    match Option.bind (Json.member name j) Json.to_float with
    | Some v -> Ok v
    | None ->
        Error (Printf.sprintf "histogram snapshot field %S must be a number" name)
  in
  let* count = num_field "count" in
  let* sum = num_field "sum" in
  let* minv = num_field "min" in
  let* maxv = num_field "max" in
  let* buckets =
    match Json.member "buckets" j with
    | Some (Json.Arr items) ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | it :: rest -> (
              match Json.to_list it with
              | Some [ jlo; jhi; jc ] -> (
                  match
                    (Json.to_float jlo, Json.to_float jhi, Json.to_float jc)
                  with
                  | Some lo, Some hi, Some c ->
                      go ((lo, hi, int_of_float c) :: acc) rest
                  | _ ->
                      Error
                        "histogram snapshot buckets must be [lower, upper, \
                         count] number triples")
              | _ ->
                  Error
                    "histogram snapshot buckets must be [lower, upper, count] \
                     triples")
        in
        go [] items
    | _ -> Error "histogram snapshot field \"buckets\" must be an array"
  in
  Ok { count = int_of_float count; sum; min = minv; max = maxv; buckets }

let runtime_gauges () =
  (* [Gc.stat] walks the heap (it triggers a major collection) — acceptable
     at ops-query frequency, and the only way to get exact live words. *)
  let st = Gc.stat () in
  let ctrl = Gc.get () in
  [
    ("gc.minor_heap_words", float_of_int ctrl.Gc.minor_heap_size);
    ("gc.minor_collections", float_of_int st.Gc.minor_collections);
    ("gc.major_collections", float_of_int st.Gc.major_collections);
    ("gc.compactions", float_of_int st.Gc.compactions);
    ("gc.heap_words", float_of_int st.Gc.heap_words);
    ("gc.live_words", float_of_int st.Gc.live_words);
    ("gc.top_heap_words", float_of_int st.Gc.top_heap_words);
    ("tape.nodes", float_of_int (value (counter "tape.nodes")));
    ("tape.buffer_reuse", float_of_int (value (counter "tape.buffer_reuse")));
  ]

(* ---------------- summary ---------------- *)

let register_source name f =
  with_lock (fun () ->
      sources := (name, f) :: List.remove_assoc name !sources)

let summary () =
  let base =
    with_lock (fun () ->
        Hashtbl.fold
          (fun name entry acc ->
            match entry with
            | Counter c -> (name, float_of_int (Atomic.get c)) :: acc
            | Timer t ->
                (name ^ ".seconds", t.total) :: (name ^ ".calls", float_of_int t.count)
                :: acc
            | Gauge g -> (name ^ ".level", Atomic.get g) :: acc
            | Histogram _ -> acc)
          entries [])
  in
  (* histogram percentiles take the per-histogram mutex, so they are sampled
     outside the registry lock *)
  let hists =
    with_lock (fun () ->
        Hashtbl.fold
          (fun name entry acc ->
            match entry with Histogram h -> (name, h) :: acc | _ -> acc)
          entries [])
  in
  let hist_items =
    List.concat_map
      (fun (name, h) ->
        List.map (fun (k, v) -> (name ^ "." ^ k, v)) (histogram_items h))
      hists
  in
  let srcs = with_lock (fun () -> !sources) in
  let derived =
    List.concat_map
      (fun (name, f) -> List.map (fun (k, v) -> (name ^ "." ^ k, v)) (f ()))
      srcs
  in
  List.sort (fun (a, _) (b, _) -> compare a b) (base @ hist_items @ derived)

(* Scoped instrumentation without global resets: subtract a snapshot taken
   before a section from one taken after it.  Keys absent from [before]
   count from zero; quantile/min/max keys are passed through as their
   [after] value (a difference of order statistics is meaningless). *)
let delta before after =
  let passthrough k =
    match String.rindex_opt k '.' with
    | None -> false
    | Some i -> (
        match String.sub k (i + 1) (String.length k - i - 1) with
        | "p50" | "p90" | "p99" | "min" | "max" | "size" | "level" -> true
        | _ -> false)
  in
  List.map
    (fun (k, v_after) ->
      if passthrough k then (k, v_after)
      else
        match List.assoc_opt k before with
        | Some v_before -> (k, v_after -. v_before)
        | None -> (k, v_after))
    after

let reset () =
  with_lock (fun () ->
      Hashtbl.iter
        (fun _ entry ->
          match entry with
          | Counter c -> Atomic.set c 0
          | Gauge g -> Atomic.set g 0.0
          | Timer t ->
              t.total <- 0.0;
              t.count <- 0
          | Histogram h ->
              Mutex.lock h.hmutex;
              Array.fill h.buckets 0 (Array.length h.buckets) 0;
              h.hcount <- 0;
              h.sum <- 0.0;
              h.minv <- Float.infinity;
              h.maxv <- Float.neg_infinity;
              Mutex.unlock h.hmutex)
        entries)

let src = Logs.Src.create "dpoaf.exec" ~doc:"DPO-AF execution engine"

let pp_items ppf items =
  Fmt.list ~sep:Fmt.cut
    (fun ppf (k, v) ->
      if Float.is_integer v && Float.abs v < 1e15 then
        Fmt.pf ppf "  %-40s %.0f" k v
      else Fmt.pf ppf "  %-40s %.6f" k v)
    ppf items

let report () =
  let items = summary () in
  Logs.app ~src (fun m -> m "@[<v>execution metrics:@,%a@]" pp_items items)

let json_of_items items =
  let b = Buffer.create 256 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '"';
      String.iter
        (fun c ->
          if c = '"' || c = '\\' then Buffer.add_char b '\\';
          Buffer.add_char b c)
        k;
      Buffer.add_string b "\":";
      if Float.is_nan v || Float.abs v = Float.infinity then
        Buffer.add_string b "null"
      else if Float.is_integer v && Float.abs v < 1e15 then
        Buffer.add_string b (Printf.sprintf "%.0f" v)
      else Buffer.add_string b (Printf.sprintf "%.6f" v))
    items;
  Buffer.add_char b '}';
  Buffer.contents b

let to_json () =
  let base = json_of_items (summary ()) in
  let snaps =
    List.filter (fun (_, s) -> s.buckets <> []) (histogram_snapshots ())
  in
  if snaps = [] then base
  else begin
    (* splice one "NAME.buckets" array per non-empty histogram into the flat
       object so offline analysis can recompute percentiles exactly *)
    let b = Buffer.create (String.length base + 256) in
    Buffer.add_string b (String.sub base 0 (String.length base - 1));
    List.iter
      (fun (name, s) ->
        Buffer.add_char b ',';
        Buffer.add_string b (Json.to_string (Json.str (name ^ ".buckets")));
        Buffer.add_char b ':';
        Buffer.add_string b
          (Json.to_string
             (Json.arr
                (List.map
                   (fun (lo, hi, c) ->
                     Json.arr
                       [ Json.num lo; Json.num hi; Json.num (float_of_int c) ])
                   s.buckets))))
      snaps;
    Buffer.add_char b '}';
    Buffer.contents b
  end
