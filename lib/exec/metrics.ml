(* Process-wide instrumentation registry.

   Counters are atomic so worker domains can bump them without taking a
   lock; timers accumulate wall-clock seconds under the registry mutex
   (timed sections are coarse, so contention is negligible).  External
   sources (e.g. cache statistics) register a thunk and are sampled when a
   summary is produced. *)

type counter = int Atomic.t

type timer = { mutable total : float; mutable count : int }

type entry = Counter of counter | Timer of timer

let mutex = Mutex.create ()
let entries : (string, entry) Hashtbl.t = Hashtbl.create 32
let sources : (string * (unit -> (string * float) list)) list ref = ref []

let with_lock f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let counter name =
  with_lock (fun () ->
      match Hashtbl.find_opt entries name with
      | Some (Counter c) -> c
      | Some (Timer _) -> invalid_arg ("Metrics.counter: " ^ name ^ " is a timer")
      | None ->
          let c = Atomic.make 0 in
          Hashtbl.add entries name (Counter c);
          c)

let incr c = Atomic.incr c
let add c n = ignore (Atomic.fetch_and_add c n)
let value c = Atomic.get c

let timer_entry name =
  with_lock (fun () ->
      match Hashtbl.find_opt entries name with
      | Some (Timer t) -> t
      | Some (Counter _) -> invalid_arg ("Metrics.time: " ^ name ^ " is a counter")
      | None ->
          let t = { total = 0.0; count = 0 } in
          Hashtbl.add entries name (Timer t);
          t)

let record_time name seconds =
  let t = timer_entry name in
  with_lock (fun () ->
      t.total <- t.total +. seconds;
      t.count <- t.count + 1)

let time name f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> record_time name (Unix.gettimeofday () -. t0)) f

let register_source name f =
  with_lock (fun () ->
      sources := (name, f) :: List.remove_assoc name !sources)

let summary () =
  let base =
    with_lock (fun () ->
        Hashtbl.fold
          (fun name entry acc ->
            match entry with
            | Counter c -> (name, float_of_int (Atomic.get c)) :: acc
            | Timer t ->
                (name ^ ".seconds", t.total) :: (name ^ ".calls", float_of_int t.count)
                :: acc)
          entries [])
  in
  let srcs = with_lock (fun () -> !sources) in
  let derived =
    List.concat_map
      (fun (name, f) -> List.map (fun (k, v) -> (name ^ "." ^ k, v)) (f ()))
      srcs
  in
  List.sort (fun (a, _) (b, _) -> compare a b) (base @ derived)

let reset () =
  with_lock (fun () ->
      Hashtbl.iter
        (fun _ entry ->
          match entry with
          | Counter c -> Atomic.set c 0
          | Timer t ->
              t.total <- 0.0;
              t.count <- 0)
        entries)

let src = Logs.Src.create "dpoaf.exec" ~doc:"DPO-AF execution engine"

let report () =
  let items = summary () in
  Logs.app ~src (fun m ->
      m "@[<v>execution metrics:@,%a@]"
        (Fmt.list ~sep:Fmt.cut (fun ppf (k, v) ->
             if Float.is_integer v && Float.abs v < 1e15 then
               Fmt.pf ppf "  %-40s %.0f" k v
             else Fmt.pf ppf "  %-40s %.6f" k v))
        items)

let to_json () =
  let b = Buffer.create 256 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '"';
      String.iter
        (fun c ->
          if c = '"' || c = '\\' then Buffer.add_char b '\\';
          Buffer.add_char b c)
        k;
      Buffer.add_string b "\":";
      if Float.is_integer v && Float.abs v < 1e15 then
        Buffer.add_string b (Printf.sprintf "%.0f" v)
      else Buffer.add_string b (Printf.sprintf "%.6f" v))
    (summary ());
  Buffer.add_char b '}';
  Buffer.contents b
