(** Process-wide instrumentation: named counters, wall-clock timers and
    pluggable statistic sources, surfaced through {!Logs} and as a
    machine-readable JSON summary.

    All operations are safe to call from any domain: counters are atomic,
    timers and the registry are mutex-protected.  Names are global — two
    modules asking for the same counter name share the same cell, which is
    how per-stage totals (responses scored, model-checker calls, rollouts
    run) accumulate across the pipeline. *)

type counter

val counter : string -> counter
(** Intern (or retrieve) the counter with this name.
    @raise Invalid_argument if the name is already used by a timer. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val time : string -> (unit -> 'a) -> 'a
(** [time name f] runs [f] and adds its wall-clock duration to the timer
    [name].  A timer contributes [name.seconds] and [name.calls] to the
    summary.  Re-entrant and domain-safe. *)

val record_time : string -> float -> unit
(** Add an externally measured duration (seconds) to a timer. *)

val register_source : string -> (unit -> (string * float) list) -> unit
(** Register a statistics source sampled at summary time; its items are
    prefixed with [name.].  Registering the same name again replaces the
    previous source. *)

val summary : unit -> (string * float) list
(** All metrics (counters, timers, sources), sorted by name. *)

val report : unit -> unit
(** Log the summary at [App] level via {!Logs}. *)

val to_json : unit -> string
(** The summary as a single-line JSON object. *)

val reset : unit -> unit
(** Zero all counters and timers (registered sources are kept). *)
