(** Process-wide instrumentation: named counters, wall-clock timers,
    log-bucketed latency histograms and pluggable statistic sources,
    surfaced through {!Logs} and as a machine-readable JSON summary.

    All operations are safe to call from any domain: counters are atomic,
    timers and the registry are mutex-protected, histograms carry their own
    mutex.  Names are global — two modules asking for the same counter name
    share the same cell, which is how per-stage totals (responses scored,
    model-checker calls, rollouts run) accumulate across the pipeline.
    Counters, timers, histograms and gauges share one namespace; asking
    for a name under the wrong kind raises an [Invalid_argument] that
    names both the requested and the existing kind. *)

type counter

val counter : string -> counter
(** Intern (or retrieve) the counter with this name.
    @raise Invalid_argument if the name is already registered as a timer or
    histogram. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

(** {1 Gauges}

    A gauge is a level, not an accumulator: queue depth, in-flight
    requests.  Last write wins; sets are lock-free and safe from any
    domain.  A gauge named [n] contributes [n.level] to the summary, and
    {!delta} passes [.level] keys through unchanged (differencing a level
    is meaningless). *)

type gauge

val gauge : string -> gauge
(** Intern (or retrieve) the gauge with this name.
    @raise Invalid_argument if the name is already registered as another
    kind. *)

val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val time : string -> (unit -> 'a) -> 'a
(** [time name f] runs [f] and adds its wall-clock duration to the timer
    [name].  A timer contributes [name.seconds] and [name.calls] to the
    summary.  Re-entrant and domain-safe.
    @raise Invalid_argument if the name is already registered as a counter
    or histogram. *)

val record_time : string -> float -> unit
(** Add an externally measured duration (seconds) to a timer. *)

(** {1 Histograms}

    Log-bucketed distributions (ten buckets per decade over
    [1e-9, 1e6], an underflow bucket for values [<= 0]): every percentile
    estimate is within a factor of [10^0.1 ≈ 1.26] of the true order
    statistic, and the observed min/max are tracked exactly.  A histogram
    named [n] contributes [n.count], [n.sum], [n.min], [n.max], [n.p50],
    [n.p90] and [n.p99] to the summary. *)

type histogram

val histogram : string -> histogram
(** Intern (or retrieve) the histogram with this name.
    @raise Invalid_argument if the name is already registered as a counter
    or timer. *)

val observe : histogram -> float -> unit
(** Record one observation (typically seconds). *)

val observe_time : string -> (unit -> 'a) -> 'a
(** [observe_time name f] runs [f] and records its wall-clock duration in
    the histogram [name]. *)

val percentile : histogram -> float -> float
(** [percentile h q] with [q ∈ [0,1]]: nearest-rank estimate from the
    buckets, clamped to the observed [[min, max]]; [0.0] when empty. *)

val bucket_base : float
(** The bucket growth factor [10^0.1]: for in-range positive observations,
    [oracle <= percentile h q <= oracle *. bucket_base] where [oracle] is
    the exact nearest-rank order statistic. *)

(** {1 Histogram snapshots}

    A lossless point-in-time export of a histogram: total count, sum, exact
    min/max, and the non-empty buckets as [(lower, upper, count)] triples in
    ascending order.  The underflow bucket (values [<= 0] or below [1e-9])
    reports both bounds as [0.].  Unlike the flat summary keys, a snapshot
    carries enough information to recompute any percentile exactly as the
    live estimator would, and snapshots from different processes can be
    merged. *)

type hist_snapshot = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : (float * float * int) list;
}

val snapshot : histogram -> hist_snapshot
(** Consistent point-in-time export (taken under the histogram's mutex). *)

val histogram_snapshots : unit -> (string * hist_snapshot) list
(** Snapshots of every registered histogram, sorted by name. *)

val snapshot_percentile : hist_snapshot -> float -> float
(** Same nearest-rank estimator as {!percentile}, over the exported
    buckets: for any histogram [h],
    [snapshot_percentile (snapshot h) q = percentile h q]. *)

val merge_snapshots : hist_snapshot -> hist_snapshot -> hist_snapshot
(** Combine two snapshots of the same metric (e.g. from different
    processes): counts add per bucket, bounds are untouched, min/max and
    sum combine.  Merging is commutative, and counts never decrease:
    [merge a b] has [count = a.count + b.count] and every bucket of [a] or
    [b] appears with a count no smaller than it had. *)

val diff_snapshots : hist_snapshot -> hist_snapshot -> hist_snapshot
(** [diff_snapshots newer older] — the observations that landed between
    two snapshots of the {e same} histogram: counts subtract per bucket
    (clamped at zero), [sum] subtracts, and the window's [min]/[max] are
    approximated by the surviving buckets' bounds (the exact extremes of
    an interior window are not recoverable from cumulative state — the
    estimate is within one bucket, i.e. a factor of {!bucket_base}).
    This is what lets a load sweep report per-level percentiles from one
    process-global histogram. *)

val json_of_snapshot : hist_snapshot -> Dpoaf_util.Json.t
(** [{"count":…,"sum":…,"min":…,"max":…,"p50":…,"p90":…,"p99":…,
     "buckets":[[lower,upper,count],…]}] — the percentiles are derived
    (recomputable from the buckets) and ignored by {!snapshot_of_json}. *)

val snapshot_of_json : Dpoaf_util.Json.t -> (hist_snapshot, string) result
(** Strict inverse of {!json_of_snapshot}; the error names the offending
    field. *)

(** {1 Runtime gauges} *)

val runtime_gauges : unit -> (string * float) list
(** GC and allocator-pressure readings sampled now: [gc.minor_heap_words],
    [gc.minor_collections], [gc.major_collections], [gc.compactions],
    [gc.heap_words], [gc.live_words], [gc.top_heap_words], plus the
    autodiff-tape counters [tape.nodes] and [tape.buffer_reuse].  Calls
    [Gc.stat], which triggers a major collection — meant for ops-plane
    queries, not hot paths. *)

(** {1 Summaries} *)

val register_source : string -> (unit -> (string * float) list) -> unit
(** Register a statistics source sampled at summary time; its items are
    prefixed with [name.].  Registering the same name again replaces the
    previous source. *)

val summary : unit -> (string * float) list
(** All metrics (counters, timers, histograms, sources), sorted by name. *)

val delta :
  (string * float) list -> (string * float) list -> (string * float) list
(** [delta before after]: per-key difference of two {!summary} snapshots —
    the scoped alternative to {!reset} for benchmark sections.  Keys absent
    from [before] count from zero; level/order-statistic keys (suffixes
    [.p50]/[.p90]/[.p99]/[.min]/[.max]/[.size]) are passed through as their
    [after] value, since differencing them is meaningless. *)

val report : unit -> unit
(** Log the summary at [App] level via {!Logs}. *)

val to_json : unit -> string
(** The summary as a single-line JSON object.  In addition to the flat
    summary keys, every non-empty histogram [n] contributes an
    [n.buckets] member — an array of [[lower, upper, count]] triples — so
    offline analysis can recompute percentiles exactly rather than relying
    on the pre-baked [p50]/[p90]/[p99]. *)

val json_of_items : (string * float) list -> string
(** Render any summary-shaped item list (e.g. a {!delta}) as JSON. *)

val reset : unit -> unit
(** Zero all counters, timers and histograms (registered sources are
    kept).  Prefer {!delta} snapshots for scoping benchmark sections —
    [reset] destroys process-lifetime totals mid-run. *)
