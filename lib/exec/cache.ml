(* Keyed memoization with a mutex around every table access, so verifier
   results can be shared between worker domains.  Values are computed
   OUTSIDE the lock: two domains racing on the same missing key may both
   compute it, but computations are required to be deterministic, so the
   duplicated work is the only cost and the cached value is unambiguous.

   Bounded caches evict in least-recently-used order: a hit moves the key
   to the back of an intrusive doubly-linked recency list, so keys that
   keep being asked for (hot serving keys, the canonical controllers)
   survive a capacity squeeze that flushes one-off entries.  Unbounded
   caches skip the list entirely — nothing ever needs evicting. *)

type stats = { hits : int; misses : int; evictions : int; size : int }

(* recency-list node; [prev] is toward the LRU end, [next] toward the MRU
   end *)
type 'k node = {
  nkey : 'k;
  mutable prev : 'k node option;
  mutable next : 'k node option;
}

type ('k, 'v) t = {
  name : string;
  capacity : int option;
  table : ('k, 'v * 'k node option) Hashtbl.t;
  mutable lru : 'k node option;  (* next eviction victim *)
  mutable mru : 'k node option;  (* most recently touched *)
  mutex : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let stats t =
  with_lock t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        size = Hashtbl.length t.table;
      })

let create ?capacity ~name () =
  (match capacity with
  | Some c when c < 1 -> invalid_arg "Cache.create: capacity must be >= 1"
  | _ -> ());
  let t =
    {
      name;
      capacity;
      table = Hashtbl.create 256;
      lru = None;
      mru = None;
      mutex = Mutex.create ();
      hits = 0;
      misses = 0;
      evictions = 0;
    }
  in
  Metrics.register_source ("cache." ^ name) (fun () ->
      let s = stats t in
      [
        ("hits", float_of_int s.hits);
        ("misses", float_of_int s.misses);
        ("evictions", float_of_int s.evictions);
        ("size", float_of_int s.size);
      ]);
  t

(* ---- recency list (all called under the lock) ---- *)

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.lru <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.mru <- n.prev);
  n.prev <- None;
  n.next <- None

let push_mru t n =
  n.prev <- t.mru;
  n.next <- None;
  (match t.mru with Some m -> m.next <- Some n | None -> t.lru <- Some n);
  t.mru <- Some n

let touch t n =
  unlink t n;
  push_mru t n

let find_opt t key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some (v, node) ->
          t.hits <- t.hits + 1;
          Option.iter (touch t) node;
          Some v
      | None ->
          t.misses <- t.misses + 1;
          None)

let add t key value =
  with_lock t (fun () ->
      if not (Hashtbl.mem t.table key) then begin
        let node =
          match t.capacity with
          | None -> None
          | Some _ ->
              let n = { nkey = key; prev = None; next = None } in
              push_mru t n;
              Some n
        in
        Hashtbl.replace t.table key (value, node);
        match t.capacity with
        | None -> ()
        | Some cap ->
            while Hashtbl.length t.table > cap do
              match t.lru with
              | None -> assert false (* size > cap >= 1 implies a victim *)
              | Some victim ->
                  unlink t victim;
                  Hashtbl.remove t.table victim.nkey;
                  t.evictions <- t.evictions + 1
            done
      end)

let find_or_add t key compute =
  match find_opt t key with
  | Some v -> v
  | None ->
      let v = compute () in
      add t key v;
      v

let length t = with_lock t (fun () -> Hashtbl.length t.table)

let hit_rate t =
  let s = stats t in
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

let clear t =
  with_lock t (fun () ->
      Hashtbl.reset t.table;
      t.lru <- None;
      t.mru <- None;
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0)

let name t = t.name
