(* Keyed memoization with a mutex around every table access, so verifier
   results can be shared between worker domains.  Values are computed
   OUTSIDE the lock: two domains racing on the same missing key may both
   compute it, but computations are required to be deterministic, so the
   duplicated work is the only cost and the cached value is unambiguous. *)

type stats = { hits : int; misses : int; evictions : int; size : int }

type ('k, 'v) t = {
  name : string;
  capacity : int option;
  table : ('k, 'v) Hashtbl.t;
  order : 'k Queue.t;  (* insertion order; FIFO eviction when bounded *)
  mutex : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let stats t =
  with_lock t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        size = Hashtbl.length t.table;
      })

let create ?capacity ~name () =
  (match capacity with
  | Some c when c < 1 -> invalid_arg "Cache.create: capacity must be >= 1"
  | _ -> ());
  let t =
    {
      name;
      capacity;
      table = Hashtbl.create 256;
      order = Queue.create ();
      mutex = Mutex.create ();
      hits = 0;
      misses = 0;
      evictions = 0;
    }
  in
  Metrics.register_source ("cache." ^ name) (fun () ->
      let s = stats t in
      [
        ("hits", float_of_int s.hits);
        ("misses", float_of_int s.misses);
        ("evictions", float_of_int s.evictions);
        ("size", float_of_int s.size);
      ]);
  t

let find_opt t key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some v ->
          t.hits <- t.hits + 1;
          Some v
      | None ->
          t.misses <- t.misses + 1;
          None)

let add t key value =
  with_lock t (fun () ->
      if not (Hashtbl.mem t.table key) then begin
        Hashtbl.replace t.table key value;
        Queue.push key t.order;
        match t.capacity with
        | None -> ()
        | Some cap ->
            while Hashtbl.length t.table > cap do
              let victim = Queue.pop t.order in
              Hashtbl.remove t.table victim;
              t.evictions <- t.evictions + 1
            done
      end)

let find_or_add t key compute =
  match find_opt t key with
  | Some v -> v
  | None ->
      let v = compute () in
      add t key v;
      v

let length t = with_lock t (fun () -> Hashtbl.length t.table)

let hit_rate t =
  let s = stats t in
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

let clear t =
  with_lock t (fun () ->
      Hashtbl.reset t.table;
      Queue.clear t.order;
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0)

let name t = t.name
