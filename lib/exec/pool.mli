(** Deterministic domain-parallel scheduling.

    A fixed-size worker pool over OCaml 5 domains.  [parallel_map] and
    [parallel_mapi] preserve input order — results are slotted by input
    index — so for pure per-item functions the output is {e identical} for
    every worker count.  Combined with pre-splitting RNG streams before a
    parallel region (see {!Dpoaf_util.Rng.split}), every figure in the
    reproduction stays bit-for-bit identical between [--jobs 1] and
    [--jobs N].

    With [jobs = 1] no domains are spawned and everything runs sequentially
    in the caller; a call issued from inside a worker also falls back to
    sequential execution instead of deadlocking the pool.

    If any per-item computation raises, the batch still completes and the
    exception of the {e lowest-indexed} failing item is re-raised in the
    caller (with its backtrace) — deterministic error reporting.

    When {!Trace} is enabled, the submitting domain's innermost open span
    is captured at batch submission and installed around every task, so
    spans recorded inside workers are parented under the span that issued
    the batch. *)

type t

val create : jobs:int -> t
(** Spawn a pool with [jobs] execution slots ([jobs - 1] worker domains;
    the submitting domain participates in its own batches).
    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int

val shutdown : t -> unit
(** Join all workers.  Idempotent; subsequent batch submissions raise. *)

val map_on_pool : t -> ('a -> 'b) -> 'a list -> 'b list
val mapi_on_pool : t -> (int -> 'a -> 'b) -> 'a list -> 'b list

(** {1 Shared default pool}

    Library code takes an optional [?jobs] argument and defaults to the
    process-wide setting, so a single [--jobs N] flag threads through the
    whole pipeline. *)

val set_default_jobs : int -> unit
(** Set the process-wide default worker count (initially 1).  Replaces the
    shared pool on the next use if the size changed. *)

val default_jobs : unit -> int

val get_default : unit -> t
(** The lazily created shared pool of [default_jobs ()] slots. *)

val parallel_map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [parallel_map ?jobs f xs] is [List.map f xs] computed on [jobs] slots
    (default: the shared pool).  Order-preserving; see the module docs for
    determinism and exception semantics. *)

val parallel_mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a list -> 'b list
