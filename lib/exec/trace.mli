(** Hierarchical span tracing across worker domains.

    A span is a named, timed section of the pipeline (sampling, scoring,
    rollouts, DPO steps…).  Spans nest: the span opened innermost on the
    current domain is the parent of any span opened inside it, and {!Pool}
    propagates the submitting domain's current span into its workers, so a
    batch's per-item spans hang off the span that issued the batch even
    though they run on other domains.

    Tracing is {e off} by default and [with_span] then just runs its thunk
    — instrumented code paths stay effectively free until a [--trace] flag
    calls {!enable}.  Completed spans are buffered per-domain and flushed
    on demand to either of two formats (see [docs/telemetry.md]):
    {ul
    {- {!write_jsonl}: one JSON object per line plus a terminating
       [metrics] line with the {!Metrics} summary — the format read back by
       [dpoaf_cli report];}
    {- {!write_chrome}: Chrome trace-event JSON, loadable in
       [chrome://tracing] and {{:https://ui.perfetto.dev}Perfetto}.}}

    Timestamps are wall-clock ([Unix.gettimeofday]), rebased to the moment
    {!enable} was called and exported in microseconds. *)

type event = {
  id : int;
  parent : int;  (** span id of the enclosing span, [-1] for roots *)
  name : string;
  cat : string;  (** coarse stage category, e.g. ["pipeline"], ["sim"] *)
  tid : int;  (** numeric id of the domain the span ran on *)
  ts_us : float;  (** start, µs since the trace epoch *)
  dur_us : float;
  attrs : (string * string) list;
}

val enable : unit -> unit
(** Start tracing (idempotent); sets the trace epoch on the first call. *)

val disable : unit -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Drop all buffered events and restart the epoch. *)

val with_span :
  ?cat:string -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a span; the event is recorded when
    [f] returns or raises.  When tracing is disabled this is just [f ()]. *)

val instant : ?cat:string -> ?attrs:(string * string) list -> string -> unit
(** Record a zero-duration marker event under the current span. *)

val record_span :
  ?cat:string ->
  ?attrs:(string * string) list ->
  ?parent:int ->
  string ->
  t0:float ->
  t1:float ->
  int
(** [record_span name ~t0 ~t1] records an already-completed span from
    absolute [Unix.gettimeofday] timestamps — for phases measured across
    domains (e.g. a serving request's queue wait, which starts on the
    submitter and ends on a worker) where [with_span] cannot wrap the
    interval.  [parent] defaults to a root span; pass a previously
    returned id to build a phase hierarchy.  Returns the new span id, or
    [-1] when tracing is disabled. *)

val current : unit -> int
(** The innermost open span id on this domain ([-1] if none or disabled) —
    capture before handing work to another domain. *)

val with_parent : int -> (unit -> 'a) -> 'a
(** Run a thunk with the given span id installed as this domain's current
    span — the receiving half of cross-domain propagation. *)

val events : unit -> event list
(** All completed spans so far, across every domain, in timestamp order. *)

val write_jsonl : string -> unit
(** Write the JSONL telemetry file: every span, then one
    [{"type":"metrics","data":{…}}] line with the current {!Metrics}
    summary. *)

val write_chrome : string -> unit
(** Write a Chrome/Perfetto trace-event JSON file. *)

(** {1 Reading traces back} *)

type reader = {
  spans : event list;  (** in timestamp order *)
  metrics : (string * float) list;  (** from the terminating metrics line *)
}

val read_jsonl : string -> reader
(** Parse a file written by {!write_jsonl}.
    @raise Failure naming file and line on malformed input. *)
