(* Hierarchical span tracing across worker domains.

   Each domain owns a private event buffer (reached through domain-local
   storage) that only it mutates under its own small mutex; buffers are
   registered in a global list at first use so a flush can collect them
   all.  Span nesting is tracked per domain through a DLS cell holding the
   innermost open span id; {!Pool} captures the submitting domain's current
   span before a batch and re-installs it around every task, so spans
   recorded inside workers hang off the span that issued the batch.

   Tracing is off by default: [with_span] then degenerates to running the
   thunk (two atomic loads), so instrumented hot paths cost nothing
   measurable when no [--trace] flag is given.

   Timestamps come from [Unix.gettimeofday] (there is no monotonic clock in
   the OCaml standard library); they are rebased onto the trace epoch — the
   moment [enable] was called — and exported in microseconds, the unit of
   the Chrome trace-event format. *)

module Json = Dpoaf_util.Json

type event = {
  id : int;
  parent : int;  (* -1 for a root span *)
  name : string;
  cat : string;
  tid : int;  (* numeric domain id *)
  ts_us : float;  (* start, µs since the trace epoch *)
  dur_us : float;
  attrs : (string * string) list;
}

let enabled_flag = Atomic.make false
let epoch = Atomic.make 0.0
let next_id = Atomic.make 0

type buffer = { mutable events : event list; bmutex : Mutex.t }

let buffers : buffer list ref = ref []
let buffers_mutex = Mutex.create ()

let buffer_key =
  Domain.DLS.new_key (fun () ->
      let b = { events = []; bmutex = Mutex.create () } in
      Mutex.lock buffers_mutex;
      buffers := b :: !buffers;
      Mutex.unlock buffers_mutex;
      b)

(* innermost open span id of this domain; a ref cell so nesting restores are
   in-place writes, not DLS updates *)
let current_key = Domain.DLS.new_key (fun () -> ref (-1))

let enabled () = Atomic.get enabled_flag

let enable () =
  if not (Atomic.get enabled_flag) then begin
    Atomic.set epoch (Unix.gettimeofday ());
    Atomic.set enabled_flag true
  end

let disable () = Atomic.set enabled_flag false

let reset () =
  Mutex.lock buffers_mutex;
  let bs = !buffers in
  Mutex.unlock buffers_mutex;
  List.iter
    (fun b ->
      Mutex.lock b.bmutex;
      b.events <- [];
      Mutex.unlock b.bmutex)
    bs;
  Atomic.set next_id 0;
  Atomic.set epoch (Unix.gettimeofday ())

let current () = if enabled () then !(Domain.DLS.get current_key) else -1

let with_parent parent f =
  if not (enabled ()) then f ()
  else begin
    let cell = Domain.DLS.get current_key in
    let saved = !cell in
    cell := parent;
    Fun.protect ~finally:(fun () -> cell := saved) f
  end

let record ev =
  let b = Domain.DLS.get buffer_key in
  Mutex.lock b.bmutex;
  b.events <- ev :: b.events;
  Mutex.unlock b.bmutex

let with_span ?(cat = "") ?(attrs = []) name f =
  if not (enabled ()) then f ()
  else begin
    let cell = Domain.DLS.get current_key in
    let parent = !cell in
    let id = Atomic.fetch_and_add next_id 1 in
    cell := id;
    let t0 = Unix.gettimeofday () in
    let finish () =
      let t1 = Unix.gettimeofday () in
      cell := parent;
      record
        {
          id;
          parent;
          name;
          cat;
          tid = (Domain.self () :> int);
          ts_us = (t0 -. Atomic.get epoch) *. 1e6;
          dur_us = (t1 -. t0) *. 1e6;
          attrs;
        }
    in
    Fun.protect ~finally:finish f
  end

(* Retroactive recording: a completed phase whose start and end were
   measured as plain [Unix.gettimeofday] timestamps, possibly on different
   domains (a request's queue wait starts on the submitter and ends on a
   worker).  The caller threads parent ids explicitly instead of relying
   on this domain's open-span nesting. *)
let record_span ?(cat = "") ?(attrs = []) ?(parent = -1) name ~t0 ~t1 =
  if not (enabled ()) then -1
  else begin
    let id = Atomic.fetch_and_add next_id 1 in
    record
      {
        id;
        parent;
        name;
        cat;
        tid = (Domain.self () :> int);
        ts_us = (t0 -. Atomic.get epoch) *. 1e6;
        dur_us = Float.max 0.0 (t1 -. t0) *. 1e6;
        attrs;
      };
    id
  end

let instant ?(cat = "") ?(attrs = []) name =
  if enabled () then begin
    let id = Atomic.fetch_and_add next_id 1 in
    record
      {
        id;
        parent = !(Domain.DLS.get current_key);
        name;
        cat;
        tid = (Domain.self () :> int);
        ts_us = (Unix.gettimeofday () -. Atomic.get epoch) *. 1e6;
        dur_us = 0.0;
        attrs;
      }
  end

let events () =
  Mutex.lock buffers_mutex;
  let bs = !buffers in
  Mutex.unlock buffers_mutex;
  let all =
    List.concat_map
      (fun b ->
        Mutex.lock b.bmutex;
        let evs = b.events in
        Mutex.unlock b.bmutex;
        evs)
      bs
  in
  List.sort (fun a b -> compare (a.ts_us, a.id) (b.ts_us, b.id)) all

(* ---------------- export ---------------- *)

let json_attrs attrs =
  Json.obj (List.map (fun (k, v) -> (k, Json.str v)) attrs)

let json_of_event ev =
  Json.obj
    [
      ("type", Json.str "span");
      ("id", Json.num (float_of_int ev.id));
      ("parent", Json.num (float_of_int ev.parent));
      ("name", Json.str ev.name);
      ("cat", Json.str (if ev.cat = "" then "span" else ev.cat));
      ("tid", Json.num (float_of_int ev.tid));
      ("ts_us", Json.num ev.ts_us);
      ("dur_us", Json.num ev.dur_us);
      ("attrs", json_attrs ev.attrs);
    ]

let event_of_json j =
  match
    ( Json.(member "id" j |> Option.map to_float),
      Json.(member "name" j |> Option.map to_str) )
  with
  | Some (Some id), Some (Some name) ->
      let f key default =
        match Json.member key j with
        | Some (Json.Num v) -> v
        | _ -> default
      in
      let s key default =
        match Json.member key j with Some (Json.Str v) -> v | _ -> default in
      let attrs =
        match Json.member "attrs" j with
        | Some (Json.Obj kvs) ->
            List.filter_map
              (fun (k, v) -> Option.map (fun s -> (k, s)) (Json.to_str v))
              kvs
        | _ -> []
      in
      Some
        {
          id = int_of_float id;
          parent = int_of_float (f "parent" (-1.0));
          name;
          cat = s "cat" "span";
          tid = int_of_float (f "tid" 0.0);
          ts_us = f "ts_us" 0.0;
          dur_us = f "dur_us" 0.0;
          attrs;
        }
  | _ -> None

(* JSONL: one [{"type":"span",...}] object per line, terminated by a single
   [{"type":"metrics","data":{...}}] line carrying the Metrics summary, so
   a trace file is self-contained for [dpoaf_cli report]. *)
let write_jsonl path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
  List.iter
    (fun ev ->
      output_string oc (Json.to_string (json_of_event ev));
      output_char oc '\n')
    (events ());
  let metrics =
    Json.obj
      (List.map (fun (k, v) -> (k, Json.num v)) (Metrics.summary ()))
  in
  output_string oc
    (Json.to_string (Json.obj [ ("type", Json.str "metrics"); ("data", metrics) ]));
  output_char oc '\n'

(* Chrome trace-event format (the "JSON object format"), loadable by
   chrome://tracing and https://ui.perfetto.dev: complete "X" events with
   microsecond timestamps. *)
let chrome_json evs =
  let trace_events =
    List.map
      (fun ev ->
        Json.obj
          [
            ("name", Json.str ev.name);
            ("cat", Json.str (if ev.cat = "" then "span" else ev.cat));
            ("ph", Json.str "X");
            ("ts", Json.num ev.ts_us);
            ("dur", Json.num ev.dur_us);
            ("pid", Json.num 1.0);
            ("tid", Json.num (float_of_int ev.tid));
            ( "args",
              Json.obj
                (("span_id", Json.num (float_of_int ev.id))
                 :: ("parent", Json.num (float_of_int ev.parent))
                 :: List.map (fun (k, v) -> (k, Json.str v)) ev.attrs) );
          ])
      evs
  in
  Json.obj
    [
      ("traceEvents", Json.arr trace_events);
      ("displayTimeUnit", Json.str "ms");
    ]

let write_chrome path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
  output_string oc (Json.to_string (chrome_json (events ())));
  output_char oc '\n'

(* ---------------- reading traces back ---------------- *)

type reader = {
  spans : event list;  (* in timestamp order *)
  metrics : (string * float) list;  (* from the terminating metrics line *)
}

let read_jsonl path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  let spans = ref [] in
  let metrics = ref [] in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       if String.trim line <> "" then begin
         match Json.parse line with
         | Error msg ->
             failwith (Printf.sprintf "%s:%d: %s" path !lineno msg)
         | Ok j -> (
             match Json.(member "type" j |> Option.map to_str) with
             | Some (Some "span") -> (
                 match event_of_json j with
                 | Some ev -> spans := ev :: !spans
                 | None ->
                     failwith
                       (Printf.sprintf "%s:%d: span line missing id/name" path
                          !lineno))
             | Some (Some "metrics") ->
                 (match Json.member "data" j with
                 | Some (Json.Obj kvs) ->
                     metrics :=
                       List.filter_map
                         (fun (k, v) ->
                           Option.map (fun x -> (k, x)) (Json.to_float v))
                         kvs
                 | _ -> failwith (Printf.sprintf "%s:%d: bad metrics line" path !lineno))
             | _ ->
                 failwith
                   (Printf.sprintf "%s:%d: unknown telemetry line type" path
                      !lineno))
       end
     done
   with End_of_file -> ());
  {
    spans = List.sort (fun a b -> compare (a.ts_us, a.id) (b.ts_us, b.id)) !spans;
    metrics = !metrics;
  }
