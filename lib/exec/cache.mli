(** Generic, mutex-protected, optionally bounded memoization cache.

    This is the single cache implementation used across the pipeline
    (verification feedback, spec evaluation, tableau construction, world
    models) instead of hand-rolled per-module [Hashtbl]s.  Keys are
    compared structurally; values must be deterministic functions of their
    key, because two domains missing on the same key concurrently may both
    run the computation (last write is kept — same value either way).

    Every cache registers itself with {!Metrics} under [cache.<name>], so
    hit/miss/eviction counts appear in the instrumentation summary. *)

type ('k, 'v) t

type stats = { hits : int; misses : int; evictions : int; size : int }

val create : ?capacity:int -> name:string -> unit -> ('k, 'v) t
(** Unbounded unless [capacity] is given; with [capacity],
    least-recently-used eviction keeps at most that many entries.  A
    {!find_opt} (or {!find_or_add}) hit refreshes the key's recency, so
    entries that keep being asked for — hot serving keys — outlive colder
    ones at capacity.
    @raise Invalid_argument if [capacity < 1]. *)

val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** The single lookup-then-insert pattern: one locked [find_opt], the
    computation outside the lock on a miss, one locked insert. *)

val find_opt : ('k, 'v) t -> 'k -> 'v option
(** Counts a hit or a miss; a hit moves the key to the most-recently-used
    end of a bounded cache's eviction order. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** No-op if the key is already present (first write wins). *)

val stats : ('k, 'v) t -> stats

val hit_rate : ('k, 'v) t -> float
(** [hits / (hits + misses)]; 0 before any lookup. *)

val length : ('k, 'v) t -> int
val clear : ('k, 'v) t -> unit
val name : ('k, 'v) t -> string
