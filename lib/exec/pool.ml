(* Deterministic domain-parallel scheduler.

   A pool of [jobs] execution slots: [jobs - 1] worker domains pulling
   thunks from a shared queue, plus the submitting domain, which
   participates in its own batches while it waits.  Results are written
   into per-batch slots indexed by input position, so [parallel_map]
   preserves input order no matter how work is interleaved — for pure
   per-item functions the output is identical for every worker count,
   which keeps all figures bit-for-bit reproducible for a given seed.

   Nested parallelism degrades gracefully: a [parallel_map] issued from
   inside a worker runs sequentially (a worker blocking on its own pool
   would deadlock it). *)

type t = {
  jobs : int;
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  work : Condition.t;
  mutable workers : unit Domain.t list;
  mutable closed : bool;
}

let in_worker = Domain.DLS.new_key (fun () -> false)

let tasks_run = Metrics.counter "exec.tasks_run"
let batches = Metrics.counter "exec.batches"

let rec worker_loop t =
  Mutex.lock t.mutex;
  let rec next () =
    if not (Queue.is_empty t.queue) then begin
      let job = Queue.pop t.queue in
      Mutex.unlock t.mutex;
      job ();
      worker_loop t
    end
    else if t.closed then Mutex.unlock t.mutex
    else begin
      Condition.wait t.work t.mutex;
      next ()
    end
  in
  next ()

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      jobs;
      queue = Queue.create ();
      mutex = Mutex.create ();
      work = Condition.create ();
      workers = [];
      closed = false;
    }
  in
  t.workers <-
    List.init (jobs - 1) (fun _ ->
        Domain.spawn (fun () ->
            Domain.DLS.set in_worker true;
            worker_loop t));
  t

let jobs t = t.jobs

let shutdown t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

(* Run one batch on the pool; the caller helps drain the queue, then waits
   for stragglers picked up by other workers. *)
let run_batch t (tasks : (unit -> unit) array) ~(pending : int Atomic.t)
    ~(done_mutex : Mutex.t) ~(done_cond : Condition.t) =
  Mutex.lock t.mutex;
  if t.closed then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool: batch submitted after shutdown"
  end;
  Array.iter (fun task -> Queue.push task t.queue) tasks;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  let rec help () =
    Mutex.lock t.mutex;
    if Queue.is_empty t.queue then Mutex.unlock t.mutex
    else begin
      let job = Queue.pop t.queue in
      Mutex.unlock t.mutex;
      job ();
      help ()
    end
  in
  help ();
  Mutex.lock done_mutex;
  while Atomic.get pending > 0 do
    Condition.wait done_cond done_mutex
  done;
  Mutex.unlock done_mutex

let mapi_on_pool t f xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  if n = 0 then []
  else if t.jobs = 1 || n = 1 || Domain.DLS.get in_worker then List.mapi f xs
  else begin
    Metrics.incr batches;
    Metrics.add tasks_run n;
    let results = Array.make n None in
    let pending = Atomic.make n in
    let done_mutex = Mutex.create () in
    let done_cond = Condition.create () in
    (* capture the submitting domain's open span so per-item spans recorded
       inside workers are parented under the span that issued the batch *)
    let span_ctx = Trace.current () in
    let task i () =
      let r =
        try Ok (Trace.with_parent span_ctx (fun () -> f i arr.(i)))
        with e -> Error (e, Printexc.get_raw_backtrace ())
      in
      results.(i) <- Some r;
      if Atomic.fetch_and_add pending (-1) = 1 then begin
        Mutex.lock done_mutex;
        Condition.signal done_cond;
        Mutex.unlock done_mutex
      end
    in
    run_batch t (Array.init n task) ~pending ~done_mutex ~done_cond;
    (* re-raise the lowest-index failure, deterministically *)
    List.init n (fun i ->
        match results.(i) with
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false)
  end

let map_on_pool t f xs = mapi_on_pool t (fun _ x -> f x) xs

(* ---------------- shared default pool ---------------- *)

let default_jobs_ref = Atomic.make 1
let shared : t option ref = ref None
let shared_mutex = Mutex.create ()

let default_jobs () = Atomic.get default_jobs_ref

let set_default_jobs n =
  if n < 1 then invalid_arg "Pool.set_default_jobs: jobs must be >= 1";
  Mutex.lock shared_mutex;
  Atomic.set default_jobs_ref n;
  (match !shared with
  | Some p when p.jobs <> n ->
      shutdown p;
      shared := None
  | _ -> ());
  Mutex.unlock shared_mutex

let get_default () =
  Mutex.lock shared_mutex;
  let p =
    match !shared with
    | Some p -> p
    | None ->
        let p = create ~jobs:(Atomic.get default_jobs_ref) in
        shared := Some p;
        p
  in
  Mutex.unlock shared_mutex;
  p

let parallel_mapi ?jobs f xs =
  match jobs with
  | Some 1 -> List.mapi f xs
  | Some n when n <> default_jobs () ->
      let p = create ~jobs:n in
      Fun.protect ~finally:(fun () -> shutdown p) (fun () -> mapi_on_pool p f xs)
  | _ ->
      if default_jobs () = 1 then List.mapi f xs
      else mapi_on_pool (get_default ()) f xs

let parallel_map ?jobs f xs = parallel_mapi ?jobs (fun _ x -> f x) xs
