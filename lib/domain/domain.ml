(* The domain abstraction: everything the DPO-AF pipeline needs to know
   about one use case (vocabulary, tasks, rule book, world models,
   response pools, verification entry points) behind one module type, so
   that lib/pipeline, lib/sim, lib/serve and the CLI are written once and
   run over any registered pack. *)

type split = Training | Validation

type task = { id : string; prompt : string; scenario : string; split : split }

type quality = Good | Risky | Bad

type step = { text : string; quality : quality }

type profile = { satisfied : string list; vacuous : string list }

module type S = sig
  val name : string
  val propositions : string list
  val actions : string list
  val lexicon : unit -> Dpoaf_lang.Lexicon.t
  val tasks : task list
  val specs : unit -> (string * Dpoaf_logic.Ltl.t) list
  val scenarios : string list
  val model : string -> Dpoaf_automata.Ts.t option
  val universal : unit -> Dpoaf_automata.Ts.t
  val observations : task -> step list
  val finals : task -> step list
  val demo_responses : (string * string list) list

  val controller_of_steps :
    name:string ->
    string list ->
    Dpoaf_automata.Fsa.t * Dpoaf_lang.Step_parser.stats

  val profile_of_steps :
    ?model:Dpoaf_automata.Ts.t -> string list -> profile

  val profile_of_controller :
    ?model:Dpoaf_automata.Ts.t -> Dpoaf_automata.Fsa.t -> profile
end

type t = (module S)

let name (module D : S) = D.name
let tasks (module D : S) = D.tasks
let spec_names (module D : S) = List.map fst (D.specs ())
let spec_count d = List.length (spec_names d)

let query_text task = Printf.sprintf "Steps for %S" task.prompt

let candidate_steps (module D : S) task =
  List.map (fun s -> s.text) (D.observations task @ D.finals task)

let find_task (module D : S) id =
  List.find_opt (fun t -> t.id = id) D.tasks

let find_task_exn ((module D : S) as d) id =
  match find_task d id with
  | Some t -> t
  | None ->
      failwith
        (Printf.sprintf "unknown task %S in domain %S (valid: %s)" id D.name
           (String.concat ", " (List.map (fun t -> t.id) D.tasks)))

let tasks_of_split (module D : S) split =
  List.filter (fun t -> t.split = split) D.tasks

(* One explanation per violated specification: compile the response,
   model-check the book, and translate every counterexample lasso into
   the domain's response vocabulary.  Explain.explain replays the lasso
   through Trace.eval_lasso before returning, so a lying explanation is
   dropped rather than reported — the filter_map keeps the contract
   "every returned explanation is replay-validated". *)
let explain_steps (module D : S) ?model steps =
  let model = match model with Some m -> m | None -> D.universal () in
  let controller, _stats = D.controller_of_steps ~name:"response" steps in
  let verdicts =
    Dpoaf_automata.Model_checker.verify_all ~model ~controller
      ~specs:(D.specs ())
  in
  List.filter_map
    (fun (name, phi, verdict) ->
      match verdict with
      | Dpoaf_automata.Model_checker.Holds -> None
      | Dpoaf_automata.Model_checker.Fails cex ->
          Dpoaf_analysis.Explain.explain ~spec:(name, phi) ~actions:D.actions
            cex)
    verdicts

(* [None] and ["universal"] both select the integrated model; any other
   name must be one of the domain's scenarios.  The strict error carries
   the valid list — the CLI and the serving layer share this resolution. *)
let model_of_scenario (module D : S) = function
  | None | Some "universal" -> Ok (D.universal ())
  | Some name -> (
      match D.model name with
      | Some m -> Ok m
      | None ->
          Error
            (Printf.sprintf "unknown scenario %S in domain %S (valid: %s)"
               name D.name
               (String.concat ", " (D.scenarios @ [ "universal" ]))))
