(* Template-based rule-book generation, gated by the static sanity layer.

   New packs do not hand-write LTL: they instantiate the safety /
   response / precondition / coverage / liveness patterns below over
   their propositions and actions, and [suite] refuses to return a rule
   book unless lib/analysis finds nothing to say about it — every
   specification satisfiable (SPEC001) and falsifiable (SPEC002), no
   pairwise implication (SPEC003), every antecedent triggerable in the
   universal model (SPEC004), and the model itself total and covering
   every spec atom (MDL001/MDL002). *)

module Ltl = Dpoaf_logic.Ltl
module Symbol = Dpoaf_logic.Symbol
module Diagnostic = Dpoaf_analysis.Diagnostic

type pattern =
  | Never of { trigger : Ltl.t; action : string }
  | Requires of { action : string; condition : Ltl.t }
  | Responds of { trigger : Ltl.t; action : string }
  | Liveness of { enable : Ltl.t; hold : string }
  | Coverage of string list

exception Rejected of { domain : string; diagnostics : string list }

let () =
  Printexc.register_printer (function
    | Rejected { domain; diagnostics } ->
        Some
          (Printf.sprintf "Spec_gen.Rejected(%s):\n  %s" domain
             (String.concat "\n  " diagnostics))
    | _ -> None)

let instantiate = function
  | Never { trigger; action } ->
      Ltl.always (Ltl.implies trigger (Ltl.neg (Ltl.atom action)))
  | Requires { action; condition } ->
      Ltl.always (Ltl.implies (Ltl.atom action) condition)
  | Responds { trigger; action } ->
      Ltl.always (Ltl.implies trigger (Ltl.eventually (Ltl.atom action)))
  | Liveness { enable; hold } ->
      Ltl.implies (Ltl.eventually enable)
        (Ltl.eventually (Ltl.neg (Ltl.atom hold)))
  | Coverage actions -> Ltl.always (Ltl.disj (List.map Ltl.atom actions))

let name_suite formulas =
  List.mapi (fun i phi -> (Printf.sprintf "phi_%d" (i + 1), phi)) formulas

let gate ~domain ~model ~actions ~free specs =
  let diagnostics =
    Dpoaf_analysis.Spec_sanity.check ~model ~free ~pairwise:true specs
    @ Dpoaf_analysis.Model_lint.lint ~specs ~ignore:free ~coverage:true model
    (* the suite-level gates: no jointly-unsatisfiable subset (SUITE001,
       pairs only — the per-spec and pairwise layers above make larger
       tableau cores redundant at generation time) and the whole book
       realizable by some controller in the universal model (SUITE002);
       the coverage/redundancy layers are advisory and belong to
       `dpoaf_cli analyze --suite`, not to a generation-time gate *)
    @ Dpoaf_analysis.Suite_sanity.check ~suite:domain ~max_core:2 ~actions
        ~models:[ (model.Dpoaf_automata.Ts.name, model) ]
        ~redundancy:false specs
  in
  if diagnostics <> [] then
    raise
      (Rejected
         {
           domain;
           diagnostics =
             List.map Diagnostic.to_string (Diagnostic.sort diagnostics);
         })

let suite ~domain ~model ~actions patterns =
  let specs = name_suite (List.map instantiate patterns) in
  gate ~domain ~model ~actions ~free:(Symbol.of_atoms actions) specs;
  specs
