(** The domain registry: unique name → pack, in registration order.

    All operations are mutex-protected and safe from any worker domain.
    Most callers want {!Builtin}, which registers the built-in packs
    idempotently before delegating here. *)

val register : Domain.t -> unit
(** @raise Invalid_argument if a pack with the same name is already
    registered (the message lists the registered names). *)

val names : unit -> string list
val all : unit -> Domain.t list
val find : string -> Domain.t option

val find_exn : string -> Domain.t
(** @raise Failure for unknown names, listing every valid domain. *)
