(** The domain abstraction: one use case of the DPO-AF pipeline
    (vocabulary, tasks, rule book, world models, response pools,
    verification entry points) as a first-class module.

    A {e pack} implements {!S} and registers itself under a unique name
    ({!Registry}); every consumer — corpus construction, verification
    feedback, the simulator, the serving engine, the CLI — is written
    against this interface, so a new use case is one new pack, not a
    cross-cutting change. *)

type split = Training | Validation

type task = {
  id : string;
  prompt : string;  (** e.g. "turn right at the traffic light" *)
  scenario : string;  (** a member of the domain's {!S.scenarios} *)
  split : split;
}

type quality = Good | Risky | Bad

type step = { text : string; quality : quality }

type profile = {
  satisfied : string list;  (** spec names, in rule-book order *)
  vacuous : string list;
      (** subset of [satisfied] holding only vacuously (the antecedent
          never triggers in the product) *)
}

module type S = sig
  val name : string
  (** Unique registry key, also the CLI [--domain] value. *)

  val propositions : string list
  (** What the agent perceives (world-model state labels). *)

  val actions : string list
  (** Control outputs.  Must include {!Dpoaf_lang.Glm2fsa.stop_action}:
      controllers emit it while observing or waiting. *)

  val lexicon : unit -> Dpoaf_lang.Lexicon.t
  (** The alignment lexicon (memoized; safe from any domain). *)

  val tasks : task list

  val specs : unit -> (string * Dpoaf_logic.Ltl.t) list
  (** The LTL rule book, in a fixed order.  Generated suites
      ({!Spec_gen}) raise {!Spec_gen.Rejected} here if the sanity gates
      fail — a pack with a broken suite is unusable, not silently
      degraded. *)

  val scenarios : string list
  (** World-model family names, e.g. ["traffic_light"]. *)

  val model : string -> Dpoaf_automata.Ts.t option
  (** Scenario name → its environment-dynamics model (memoized);
      [None] for unknown names. *)

  val universal : unit -> Dpoaf_automata.Ts.t
  (** Union of all scenario models — the verification default. *)

  val observations : task -> step list
  (** Observation / wait steps (quality {!Good}). *)

  val finals : task -> step list
  (** Action-bearing steps that can complete the task, tagged by
      quality — the response space the synthetic corpus samples. *)

  val demo_responses : (string * string list) list
  (** Named canonical responses (worked examples) used by
      [dpoaf_cli analyze] and the smoke gates. *)

  val controller_of_steps :
    name:string ->
    string list ->
    Dpoaf_automata.Fsa.t * Dpoaf_lang.Step_parser.stats
  (** Parse and compile a response with the domain lexicon (GLM2FSA). *)

  val profile_of_steps :
    ?model:Dpoaf_automata.Ts.t -> string list -> profile
  (** Parse, compile, verify and vacuity-check in one memoized call;
      [model] defaults to {!universal}. *)

  val profile_of_controller :
    ?model:Dpoaf_automata.Ts.t -> Dpoaf_automata.Fsa.t -> profile
end

type t = (module S)

val name : t -> string
val tasks : t -> task list

val spec_names : t -> string list
(** Rule-book names in spec order (forces suite generation). *)

val spec_count : t -> int

val query_text : task -> string
(** The first-stage prompt sent to the language model:
    ["Steps for \"<prompt>\""]. *)

val candidate_steps : t -> task -> string list
(** All step texts for the task (observations then finals). *)

val find_task : t -> string -> task option

val find_task_exn : t -> string -> task
(** @raise Failure with the valid task-id list for unknown ids. *)

val tasks_of_split : t -> split -> task list

val explain_steps :
  t ->
  ?model:Dpoaf_automata.Ts.t ->
  string list ->
  Dpoaf_analysis.Explain.t list
(** One replay-validated counterexample explanation per violated
    specification of the response, in rule-book order ([model] defaults
    to the universal one).  A cold path — no memoization: callers
    (serving [explain:true], provenance for pair losers, [dpoaf_cli
    analyze --explain]) ask for explanations far more rarely than for
    profiles. *)

val model_of_scenario :
  t -> string option -> (Dpoaf_automata.Ts.t, string) result
(** [None] or [Some "universal"] → the universal model; otherwise the
    named scenario's model, or [Error] listing the valid names. *)
