(** Warehouse AGV pack: aisle transit, junction crossing, pallet
    pick/drop and recharging tasks, over aisle / junction / pick-station
    / charging-bay world models.  Its rule book is produced by
    {!Spec_gen.suite} and therefore passes the SAT, non-redundancy and
    non-vacuity gates on the pack's universal model at first use. *)

val pack : Domain.t
