(* Generic step-text → spec-verdict evaluator, shared by the non-driving
   packs.  This is Dpoaf_driving.Evaluate with the driving constants
   factored out: a mutex-guarded memoized lexicon (Lazy.force is unsafe
   under concurrent forcing in OCaml 5), GLM2FSA compilation, model
   checking over the pack's rule book, vacuity provenance, and a bounded
   profile cache keyed by (model name, steps). *)

module Glm2fsa = Dpoaf_lang.Glm2fsa
module Model_checker = Dpoaf_automata.Model_checker
module Cache = Dpoaf_exec.Cache

type t = {
  lexicon : unit -> Dpoaf_lang.Lexicon.t;
  controller_of_steps :
    name:string ->
    string list ->
    Dpoaf_automata.Fsa.t * Dpoaf_lang.Step_parser.stats;
  profile_of_steps :
    ?model:Dpoaf_automata.Ts.t -> string list -> Domain.profile;
  profile_of_controller :
    ?model:Dpoaf_automata.Ts.t -> Dpoaf_automata.Fsa.t -> Domain.profile;
}

let memoized f =
  let cell = lazy (f ()) in
  let mutex = Mutex.create () in
  fun () ->
    Mutex.lock mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock mutex)
      (fun () -> Lazy.force cell)

let make ~name ~make_lexicon ~specs ~universal =
  let lexicon = memoized make_lexicon in
  let controller_of_steps ~name steps =
    Glm2fsa.of_steps ~name (lexicon ()) steps
  in
  let profile_of_controller ?model controller =
    let model = match model with Some m -> m | None -> universal () in
    let specs = specs () in
    let satisfied =
      Model_checker.verify_all ~model ~controller ~specs
      |> List.filter_map (fun (n, _, v) ->
             if Model_checker.is_holds v then Some n else None)
    in
    let vacuous =
      Dpoaf_analysis.Vacuity.vacuously_satisfied ~model ~controller ~specs
        ~satisfied
    in
    { Domain.satisfied; vacuous }
  in
  let profile_cache : (string * string list, Domain.profile) Cache.t =
    Cache.create ~capacity:65536 ~name:(Printf.sprintf "eval.profile.%s" name) ()
  in
  let profile_of_steps ?model steps =
    let model = match model with Some m -> m | None -> universal () in
    Cache.find_or_add profile_cache
      (model.Dpoaf_automata.Ts.name, steps)
      (fun () ->
        let controller, _stats = controller_of_steps ~name:"response" steps in
        profile_of_controller ~model controller)
  in
  { lexicon; controller_of_steps; profile_of_steps; profile_of_controller }
