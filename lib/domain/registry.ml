(* Mutable, mutex-protected name → pack table.  Registration order is
   preserved (it is the order `--domain` help text and error messages
   list), duplicates are rejected loudly, and unknown lookups name every
   valid domain — the same strictness convention as the CLI's scenario
   and the bench's --only arguments. *)

let mutex = Mutex.create ()
let table : (string * Domain.t) list ref = ref []

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let register ((module D : Domain.S) as pack) =
  locked (fun () ->
      if List.mem_assoc D.name !table then
        invalid_arg
          (Printf.sprintf
             "Registry.register: duplicate domain %S (already registered: %s)"
             D.name
             (String.concat ", " (List.map fst !table)));
      table := !table @ [ (D.name, pack) ])

let names () = locked (fun () -> List.map fst !table)
let all () = locked (fun () -> List.map snd !table)
let find name = locked (fun () -> List.assoc_opt name !table)

let find_exn name =
  match find name with
  | Some d -> d
  | None ->
      failwith
        (Printf.sprintf "unknown domain %S (valid: %s)" name
           (String.concat ", " (names ())))
