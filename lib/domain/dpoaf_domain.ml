(* Library interface module: re-export the submodules and lift the
   common registry lookups to the top level, so consumers can write
   [Dpoaf_domain.find_exn "household"] directly. *)

module Domain = Domain
module Registry = Registry
module Spec_gen = Spec_gen
module Eval = Eval
module Pack_driving = Pack_driving
module Pack_household = Pack_household
module Pack_warehouse = Pack_warehouse
module Builtin = Builtin

let default = Builtin.default
let init = Builtin.init
let find_exn = Builtin.find_exn
let find = Builtin.find
let names = Builtin.names
let all = Builtin.all
