(** The autonomous-driving pack (the paper's use case), adapting
    {!Dpoaf_driving} to the {!Domain.S} interface.  All entry points
    delegate to the original modules and their shared caches, so the
    pack is bit-identical to pre-refactor behavior — the hand-written
    Φ1..Φ15 rule book included (it predates {!Spec_gen} and stays
    authoritative). *)

val pack : Domain.t
