(* Idempotent registration of the built-in packs.  Every public lookup
   below calls [init] first, so consumers never observe an empty
   registry; explicit [Registry.register] stays available for
   out-of-tree packs. *)

let mutex = Mutex.create ()
let initialized = ref false

let init () =
  Mutex.lock mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock mutex)
    (fun () ->
      if not !initialized then begin
        initialized := true;
        Registry.register Pack_driving.pack;
        Registry.register Pack_household.pack;
        Registry.register Pack_warehouse.pack
      end)

let default = "driving"

let find_exn name =
  init ();
  Registry.find_exn name

let find name =
  init ();
  Registry.find name

let names () =
  init ();
  Registry.names ()

let all () =
  init ();
  Registry.all ()
