(** Household-robot manipulation pack (the LAD-VF setting): fetch,
    place, carry and door-opening tasks around humans, over kitchen /
    hallway / pantry world models.  Its rule book is produced by
    {!Spec_gen.suite} and therefore passes the SAT, non-redundancy and
    non-vacuity gates on the pack's universal model at first use. *)

val pack : Domain.t
