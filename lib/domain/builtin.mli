(** Built-in pack bootstrap.  [init] registers the driving, household
    and warehouse packs exactly once (thread-safe, idempotent); the
    lookup wrappers call it implicitly so callers can use them without
    any setup. *)

val init : unit -> unit
(** Register the built-in packs if not already registered. *)

val default : string
(** Name of the default pack ("driving"). *)

val find_exn : string -> Domain.t
(** [find_exn name] returns the named pack, registering built-ins first.
    @raise Failure for unknown names, listing the valid domains. *)

val find : string -> Domain.t option
val names : unit -> string list
val all : unit -> Domain.t list
