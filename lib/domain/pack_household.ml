(* Household-robot manipulation pack (the LAD-VF setting): a mobile
   manipulator fetching, placing and carrying objects around humans.
   Unlike the driving pack, the rule book is not hand-written — it is
   instantiated from Spec_gen's safety/precondition/response/coverage/
   liveness templates over this vocabulary and must pass every
   lib/analysis gate on the pack's universal world model before use. *)

module Ts = Dpoaf_automata.Ts
module Ltl = Dpoaf_logic.Ltl
module Symbol = Dpoaf_logic.Symbol
module Lexicon = Dpoaf_lang.Lexicon

let human_nearby = "human nearby"
let object_in_view = "object in view"
let path_clear = "path clear"
let surface_clear = "surface clear"
let door_open = "door open"

let act_stop = Dpoaf_lang.Glm2fsa.stop_action
let act_grasp = "grasp object"
let act_release = "release object"
let act_move = "move to goal"
let act_open = "open door"

let propositions =
  [ human_nearby; object_in_view; path_clear; surface_clear; door_open ]

let actions = [ act_stop; act_grasp; act_release; act_move; act_open ]

let synonyms_props =
  [
    (human_nearby, "a person nearby");
    (human_nearby, "someone nearby");
    (object_in_view, "the object is visible");
    (path_clear, "a clear path");
    (surface_clear, "the surface is clear");
    (door_open, "the door is open");
  ]

let synonyms_actions =
  [
    (act_stop, "wait");
    (act_stop, "halt");
    (act_stop, "hold position");
    (act_grasp, "pick up the object");
    (act_grasp, "grab the object");
    (act_release, "put the object down");
    (act_release, "set the object down");
    (act_move, "move to the goal");
    (act_move, "go to the goal");
    (act_open, "open the door");
    (act_open, "pull the door open");
  ]

let make_lexicon () =
  let lex = Lexicon.create ~props:propositions ~actions in
  List.iter
    (fun (canonical, phrase) ->
      Lexicon.add_synonym lex Lexicon.Proposition ~canonical ~phrase)
    synonyms_props;
  List.iter
    (fun (canonical, phrase) ->
      Lexicon.add_synonym lex Lexicon.Action ~canonical ~phrase)
    synonyms_actions;
  lex

(* ---------------- world models ----------------
   Same construction rules as the driving models: hazards (humans,
   clutter) are transient and clear within one step, hazards can appear
   in one step from a clear state, and every scenario's "actionable"
   state recurs on every path that keeps visiting it. *)

let sym = Symbol.of_atoms

let kitchen =
  Eval.memoized (fun () ->
      Ts.make ~name:"household.kitchen"
        ~states:
          [
            ("k_clear", sym [ object_in_view; path_clear; surface_clear ]);
            ("k_human", sym [ object_in_view; human_nearby; surface_clear ]);
            ("k_clutter", sym [ object_in_view; path_clear ]);
          ]
        ~transitions:
          [
            ("k_clear", "k_clear"); ("k_clear", "k_human");
            ("k_clear", "k_clutter");
            ("k_human", "k_clear"); ("k_clutter", "k_clear");
          ]
        ())

let hallway =
  Eval.memoized (fun () ->
      Ts.make ~name:"household.hallway"
        ~states:
          [
            ("h_closed", sym []);
            ("h_open", sym [ door_open; path_clear ]);
            ("h_human", sym [ door_open; path_clear; human_nearby ]);
            ("h_blocked", sym [ door_open ]);
          ]
        ~transitions:
          [
            ("h_closed", "h_closed"); ("h_closed", "h_open");
            ("h_open", "h_open"); ("h_open", "h_human");
            ("h_open", "h_blocked"); ("h_open", "h_closed");
            ("h_human", "h_open"); ("h_blocked", "h_open");
          ]
        ())

let pantry =
  Eval.memoized (fun () ->
      Ts.make ~name:"household.pantry"
        ~states:
          [
            ("p_view", sym [ object_in_view; path_clear; surface_clear ]);
            ("p_dark", sym []);
            ("p_human", sym [ object_in_view; human_nearby; surface_clear ]);
          ]
        ~transitions:
          [
            ("p_view", "p_view"); ("p_view", "p_dark"); ("p_view", "p_human");
            ("p_dark", "p_view"); ("p_human", "p_view");
          ]
        ())

let scenario_models =
  [ ("kitchen", kitchen); ("hallway", hallway); ("pantry", pantry) ]

let universal_model =
  Eval.memoized (fun () ->
      Ts.union ~name:"household.universal"
        (List.map (fun (_, m) -> m ()) scenario_models))

(* ---------------- generated rule book ---------------- *)

let patterns =
  [
    Spec_gen.Never { trigger = Ltl.atom human_nearby; action = act_move };
    Spec_gen.Never { trigger = Ltl.atom human_nearby; action = act_grasp };
    Spec_gen.Never { trigger = Ltl.atom human_nearby; action = act_release };
    Spec_gen.Requires { action = act_grasp; condition = Ltl.atom object_in_view };
    Spec_gen.Requires
      { action = act_release; condition = Ltl.atom surface_clear };
    Spec_gen.Requires { action = act_move; condition = Ltl.atom path_clear };
    Spec_gen.Never { trigger = Ltl.atom door_open; action = act_open };
    Spec_gen.Responds { trigger = Ltl.atom human_nearby; action = act_stop };
    Spec_gen.Coverage actions;
    Spec_gen.Liveness
      {
        enable = Ltl.conj [ Ltl.atom path_clear; Ltl.atom object_in_view ];
        hold = act_stop;
      };
  ]

let gated_specs =
  Eval.memoized (fun () ->
      Spec_gen.suite ~domain:"household" ~model:(universal_model ()) ~actions
        patterns)

(* ---------------- tasks and response pools ---------------- *)

let tasks =
  [
    {
      Domain.id = "fetch_cup";
      prompt = "fetch the cup from the counter";
      scenario = "kitchen";
      split = Domain.Training;
    };
    {
      Domain.id = "clear_table";
      prompt = "put the dish down on the counter";
      scenario = "kitchen";
      split = Domain.Training;
    };
    {
      Domain.id = "cross_hallway";
      prompt = "carry the tray across the hallway";
      scenario = "hallway";
      split = Domain.Training;
    };
    {
      Domain.id = "open_pantry_door";
      prompt = "open the door to the pantry";
      scenario = "hallway";
      split = Domain.Training;
    };
    {
      Domain.id = "stock_pantry";
      prompt = "put the jar on the pantry shelf";
      scenario = "pantry";
      split = Domain.Validation;
    };
  ]

let g text = { Domain.text; quality = Domain.Good }
let r text = { Domain.text; quality = Domain.Risky }
let b text = { Domain.text; quality = Domain.Bad }

let observations (task : Domain.task) =
  match task.Domain.id with
  | "fetch_cup" ->
      [
        g "observe the state of the human nearby";
        g "check the state of the object in view";
        g "observe the state of the surface clear";
      ]
  | "clear_table" ->
      [
        g "observe the state of the human nearby";
        g "check the state of the surface clear";
        g "observe the state of the object in view";
      ]
  | "cross_hallway" ->
      [
        g "wait for the door open";
        g "observe the state of the human nearby";
        g "check the state of the path clear";
      ]
  | "open_pantry_door" ->
      [
        g "observe the state of the door open";
        g "check the state of the human nearby";
      ]
  | "stock_pantry" ->
      [
        g "observe the state of the human nearby";
        g "check the state of the surface clear";
        g "observe the state of the object in view";
      ]
  | _ -> [ g "observe the state of the human nearby" ]

let finals (task : Domain.task) =
  match task.Domain.id with
  | "fetch_cup" ->
      [
        g "if no human nearby and the object in view is on, execute the action grasp object";
        r "if the object in view is on, execute the action grasp object";
        r "if no human nearby, execute the action grasp object";
        b "execute the action grasp object";
        b "if it is safe, grab the object";
      ]
  | "clear_table" ->
      [
        g "if no human nearby and the surface clear is on, execute the action release object";
        r "if the surface clear is on, execute the action release object";
        r "if no human nearby, execute the action release object";
        b "execute the action release object";
        b "if it is safe, put the object down";
      ]
  | "cross_hallway" ->
      [
        g "if the door open is on and no human nearby and the path clear is on, execute the action move to goal";
        r "if the door open is on and the path clear is on, execute the action move to goal";
        r "if the door open is on, execute the action move to goal";
        b "execute the action move to goal";
        b "if it is safe, go to the goal";
      ]
  | "open_pantry_door" ->
      [
        g "if no door open and no human nearby, execute the action open door";
        r "if no human nearby, execute the action open door";
        r "if the path clear is on, execute the action open door";
        b "execute the action open door";
      ]
  | "stock_pantry" ->
      [
        g "if no human nearby and the surface clear is on, execute the action release object";
        r "if no human nearby, execute the action release object";
        r "if the surface clear is on, execute the action release object";
        b "execute the action release object";
        b "if it is safe, set the object down";
      ]
  | _ -> [ b "execute the action stop" ]

let demo_responses =
  [
    ( "fetch_before_ft",
      [
        "observe the state of the object in view";
        "if the object in view is on, execute the action grasp object";
      ] );
    ( "fetch_after_ft",
      [
        "observe the state of the human nearby";
        "check the state of the object in view";
        "if no human nearby and the object in view is on, execute the action \
         grasp object";
      ] );
    ( "cross_hallway_after_ft",
      [
        "wait for the door open";
        "if the door open is on and no human nearby and the path clear is \
         on, execute the action move to goal";
      ] );
  ]

let eval =
  Eval.make ~name:"household" ~make_lexicon ~specs:gated_specs
    ~universal:universal_model

module M : Domain.S = struct
  let name = "household"
  let propositions = propositions
  let actions = actions
  let lexicon = eval.Eval.lexicon
  let tasks = tasks
  let specs = gated_specs
  let scenarios = List.map fst scenario_models
  let model scenario = Option.map (fun m -> m ()) (List.assoc_opt scenario scenario_models)
  let universal = universal_model
  let observations = observations
  let finals = finals
  let demo_responses = demo_responses
  let controller_of_steps = eval.Eval.controller_of_steps
  let profile_of_steps = eval.Eval.profile_of_steps
  let profile_of_controller = eval.Eval.profile_of_controller
end

let pack : Domain.t = (module M)
