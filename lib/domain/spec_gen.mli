(** Template-based LTL rule-book generation with a mandatory sanity gate.

    Patterns follow the safety-compliant-LTL template catalogue: a pack
    lists which hazards forbid which actions, which actions require
    which preconditions, which hazards demand a response, and
    {!suite} instantiates and names the formulas ([phi_1], [phi_2], …)
    — then refuses to return them unless the {!Dpoaf_analysis} gates all
    pass on the pack's universal world model. *)

type pattern =
  | Never of { trigger : Dpoaf_logic.Ltl.t; action : string }
      (** [□(trigger ⇒ ¬action)] — a safety invariant. *)
  | Requires of { action : string; condition : Dpoaf_logic.Ltl.t }
      (** [□(action ⇒ condition)] — an action precondition. *)
  | Responds of { trigger : Dpoaf_logic.Ltl.t; action : string }
      (** [□(trigger ⇒ ◇action)] — a response obligation. *)
  | Liveness of { enable : Dpoaf_logic.Ltl.t; hold : string }
      (** [◇enable ⇒ ◇¬hold] — progress: if the enabling condition ever
          occurs, the agent must not [hold] (typically [stop]) forever. *)
  | Coverage of string list
      (** [□(a₁ ∨ … ∨ aₙ)] — some action is always emitted. *)

exception Rejected of { domain : string; diagnostics : string list }
(** Raised by {!suite} when any sanity diagnostic fires; carries the
    rendered diagnostics ([SPEC001] unsatisfiable, [SPEC002] tautology,
    [SPEC003] pairwise redundancy, [SPEC004] model-level vacuity,
    [MDL001] dead model state, [MDL002] uncovered spec atom). *)

val instantiate : pattern -> Dpoaf_logic.Ltl.t

val name_suite :
  Dpoaf_logic.Ltl.t list -> (string * Dpoaf_logic.Ltl.t) list
(** Name formulas [phi_1 … phi_N] in order. *)

val suite :
  domain:string ->
  model:Dpoaf_automata.Ts.t ->
  actions:string list ->
  pattern list ->
  (string * Dpoaf_logic.Ltl.t) list
(** Instantiate, name and gate a rule book against the domain's
    universal [model]; [actions] are the controller-emitted atoms the
    model never labels (unconstrained in the vacuity and coverage
    checks).  @raise Rejected if any diagnostic fires. *)
