(* The autonomous-driving pack: a thin adapter over lib/driving, so
   behavior behind the Domain interface is bit-identical to the direct
   modules — same task order, same candidate-step texts, same lexicon and
   world-model caches, same memoized evaluation paths. *)

module Tasks = Dpoaf_driving.Tasks
module Models = Dpoaf_driving.Models
module Responses = Dpoaf_driving.Responses
module Evaluate = Dpoaf_driving.Evaluate

let task_of_driving (t : Tasks.t) =
  {
    Domain.id = t.Tasks.id;
    prompt = t.Tasks.prompt;
    scenario = Models.scenario_name t.Tasks.scenario;
    split =
      (match t.Tasks.split with
      | Tasks.Training -> Domain.Training
      | Tasks.Validation -> Domain.Validation);
  }

let step_of_driving (s : Responses.step) =
  {
    Domain.text = s.Responses.text;
    quality =
      (match s.Responses.quality with
      | Responses.Good -> Domain.Good
      | Responses.Risky -> Domain.Risky
      | Responses.Bad -> Domain.Bad);
  }

module M : Domain.S = struct
  let name = "driving"
  let propositions = Dpoaf_driving.Vocab.propositions
  let actions = Dpoaf_driving.Vocab.actions
  let lexicon = Evaluate.lexicon
  let tasks = List.map task_of_driving Tasks.all
  let specs () = Dpoaf_driving.Specs.all
  let scenarios = List.map Models.scenario_name Models.all_scenarios

  let model scenario_name =
    Option.map Models.model (Models.scenario_of_name scenario_name)

  let universal = Models.universal
  let driving_task (t : Domain.task) = Tasks.find t.Domain.id

  let observations t =
    List.map step_of_driving (Responses.observations (driving_task t))

  let finals t = List.map step_of_driving (Responses.finals (driving_task t))

  let demo_responses =
    [
      ("right_turn_before_ft", Responses.right_turn_before_ft);
      ("right_turn_after_ft", Responses.right_turn_after_ft);
      ("left_turn_before_ft", Responses.left_turn_before_ft);
      ("left_turn_after_ft", Responses.left_turn_after_ft);
    ]

  let controller_of_steps = Evaluate.controller_of_steps

  let profile_of_steps ?model steps =
    let p = Evaluate.profile_of_steps ?model steps in
    { Domain.satisfied = p.Evaluate.satisfied; vacuous = p.Evaluate.vacuous }

  let profile_of_controller ?model controller =
    let p = Evaluate.profile_of_controller ?model controller in
    { Domain.satisfied = p.Evaluate.satisfied; vacuous = p.Evaluate.vacuous }
end

let pack : Domain.t = (module M)
