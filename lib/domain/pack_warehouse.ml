(* Warehouse AGV pack: an autonomous guided vehicle moving pallets
   between aisles, junctions, pick stations and a charging bay.  Like
   the household pack, its rule book is instantiated from Spec_gen
   templates and gated by lib/analysis before registration. *)

module Ts = Dpoaf_automata.Ts
module Ltl = Dpoaf_logic.Ltl
module Symbol = Dpoaf_logic.Symbol
module Lexicon = Dpoaf_lang.Lexicon

let worker_in_aisle = "worker in aisle"
let obstacle_ahead = "obstacle ahead"
let crossing_agv = "crossing agv"
let aisle_clear = "aisle clear"
let at_pick_station = "at pick station"
let pallet_ready = "pallet ready"
let dock_free = "charging dock free"
let battery_low = "battery low"

let act_stop = Dpoaf_lang.Glm2fsa.stop_action
let act_proceed = "proceed"
let act_pick = "pick pallet"
let act_drop = "drop pallet"
let act_dock = "dock for charging"

let propositions =
  [
    worker_in_aisle; obstacle_ahead; crossing_agv; aisle_clear;
    at_pick_station; pallet_ready; dock_free; battery_low;
  ]

let actions = [ act_stop; act_proceed; act_pick; act_drop; act_dock ]

let synonyms_props =
  [
    (worker_in_aisle, "a worker in the aisle");
    (worker_in_aisle, "a person in the aisle");
    (obstacle_ahead, "an obstacle in the way");
    (crossing_agv, "another vehicle crossing");
    (aisle_clear, "the aisle is clear");
    (pallet_ready, "the pallet is staged");
    (dock_free, "the charger is free");
    (battery_low, "the battery is low");
  ]

let synonyms_actions =
  [
    (act_stop, "wait");
    (act_stop, "halt");
    (act_stop, "hold position");
    (act_proceed, "drive forward");
    (act_proceed, "continue");
    (act_pick, "pick up the pallet");
    (act_pick, "lift the pallet");
    (act_drop, "set the pallet down");
    (act_drop, "drop the load");
    (act_dock, "dock at the charger");
    (act_dock, "go charge");
  ]

let make_lexicon () =
  let lex = Lexicon.create ~props:propositions ~actions in
  List.iter
    (fun (canonical, phrase) ->
      Lexicon.add_synonym lex Lexicon.Proposition ~canonical ~phrase)
    synonyms_props;
  List.iter
    (fun (canonical, phrase) ->
      Lexicon.add_synonym lex Lexicon.Action ~canonical ~phrase)
    synonyms_actions;
  lex

(* ---------------- world models ---------------- *)

let sym = Symbol.of_atoms

let aisle =
  Eval.memoized (fun () ->
      Ts.make ~name:"warehouse.aisle"
        ~states:
          [
            ("a_clear", sym [ aisle_clear ]);
            ("a_worker", sym [ worker_in_aisle ]);
            ("a_obstacle", sym [ obstacle_ahead ]);
            ("a_both", sym [ worker_in_aisle; obstacle_ahead ]);
            (* an obstacle at the far end of an otherwise clear aisle:
               the clearance signal alone is not licence to proceed *)
            ("a_far", sym [ aisle_clear; obstacle_ahead ]);
          ]
        ~transitions:
          [
            ("a_clear", "a_clear"); ("a_clear", "a_worker");
            ("a_clear", "a_obstacle"); ("a_clear", "a_both");
            ("a_clear", "a_far");
            ("a_worker", "a_clear"); ("a_obstacle", "a_clear");
            ("a_both", "a_clear"); ("a_far", "a_clear");
          ]
        ())

let junction =
  Eval.memoized (fun () ->
      Ts.make ~name:"warehouse.junction"
        ~states:
          [
            ("j_clear", sym [ aisle_clear ]);
            ("j_agv", sym [ crossing_agv ]);
            ("j_agv_worker", sym [ crossing_agv; worker_in_aisle ]);
            (* own aisle reads clear while another AGV crosses *)
            ("j_cross", sym [ aisle_clear; crossing_agv ]);
          ]
        ~transitions:
          [
            ("j_clear", "j_clear"); ("j_clear", "j_agv");
            ("j_clear", "j_agv_worker"); ("j_clear", "j_cross");
            ("j_agv", "j_clear"); ("j_agv_worker", "j_clear");
            ("j_cross", "j_clear");
          ]
        ())

let pick_station =
  Eval.memoized (fun () ->
      Ts.make ~name:"warehouse.pick_station"
        ~states:
          [
            ("s_ready", sym [ at_pick_station; pallet_ready; aisle_clear ]);
            ("s_wait", sym [ at_pick_station ]);
            ("s_worker", sym [ at_pick_station; worker_in_aisle; pallet_ready ]);
          ]
        ~transitions:
          [
            ("s_ready", "s_ready"); ("s_ready", "s_wait");
            ("s_ready", "s_worker");
            ("s_wait", "s_ready"); ("s_worker", "s_ready");
          ]
        ())

let charging_bay =
  Eval.memoized (fun () ->
      Ts.make ~name:"warehouse.charging_bay"
        ~states:
          [
            ("c_low_free", sym [ battery_low; dock_free ]);
            ("c_low_busy", sym [ battery_low ]);
            ("c_charged", sym [ dock_free ]);
          ]
        ~transitions:
          [
            ("c_low_free", "c_low_free"); ("c_low_free", "c_low_busy");
            ("c_low_free", "c_charged");
            ("c_low_busy", "c_low_free"); ("c_charged", "c_charged");
            ("c_charged", "c_low_free");
          ]
        ())

let scenario_models =
  [
    ("aisle", aisle); ("junction", junction);
    ("pick_station", pick_station); ("charging_bay", charging_bay);
  ]

let universal_model =
  Eval.memoized (fun () ->
      Ts.union ~name:"warehouse.universal"
        (List.map (fun (_, m) -> m ()) scenario_models))

(* ---------------- generated rule book ---------------- *)

let patterns =
  [
    Spec_gen.Never { trigger = Ltl.atom worker_in_aisle; action = act_proceed };
    Spec_gen.Never { trigger = Ltl.atom obstacle_ahead; action = act_proceed };
    Spec_gen.Never { trigger = Ltl.atom crossing_agv; action = act_proceed };
    Spec_gen.Requires { action = act_proceed; condition = Ltl.atom aisle_clear };
    Spec_gen.Never { trigger = Ltl.atom worker_in_aisle; action = act_pick };
    Spec_gen.Never { trigger = Ltl.atom worker_in_aisle; action = act_drop };
    Spec_gen.Requires { action = act_pick; condition = Ltl.atom pallet_ready };
    Spec_gen.Requires
      { action = act_drop; condition = Ltl.atom at_pick_station };
    Spec_gen.Requires { action = act_dock; condition = Ltl.atom dock_free };
    Spec_gen.Requires { action = act_dock; condition = Ltl.atom battery_low };
    Spec_gen.Never { trigger = Ltl.atom battery_low; action = act_pick };
    Spec_gen.Responds { trigger = Ltl.atom worker_in_aisle; action = act_stop };
    Spec_gen.Coverage actions;
    Spec_gen.Liveness { enable = Ltl.atom aisle_clear; hold = act_stop };
  ]

let gated_specs =
  Eval.memoized (fun () ->
      Spec_gen.suite ~domain:"warehouse" ~model:(universal_model ()) ~actions
        patterns)

(* ---------------- tasks and response pools ---------------- *)

let tasks =
  [
    {
      Domain.id = "transit_aisle";
      prompt = "drive the vehicle down the storage aisle";
      scenario = "aisle";
      split = Domain.Training;
    };
    {
      Domain.id = "cross_junction";
      prompt = "cross the junction between aisles";
      scenario = "junction";
      split = Domain.Training;
    };
    {
      Domain.id = "pick_at_station";
      prompt = "pick the pallet at the pick station";
      scenario = "pick_station";
      split = Domain.Training;
    };
    {
      Domain.id = "stage_dropoff";
      prompt = "drop the pallet at the pick station";
      scenario = "pick_station";
      split = Domain.Training;
    };
    {
      Domain.id = "recharge";
      prompt = "recharge the vehicle at the charging bay";
      scenario = "charging_bay";
      split = Domain.Validation;
    };
  ]

let g text = { Domain.text; quality = Domain.Good }
let r text = { Domain.text; quality = Domain.Risky }
let b text = { Domain.text; quality = Domain.Bad }

let observations (task : Domain.task) =
  match task.Domain.id with
  | "transit_aisle" ->
      [
        g "observe the state of the worker in aisle";
        g "check the state of the obstacle ahead";
        g "observe the state of the aisle clear";
      ]
  | "cross_junction" ->
      [
        g "observe the state of the crossing agv";
        g "check the state of the worker in aisle";
        g "observe the state of the aisle clear";
      ]
  | "pick_at_station" ->
      [
        g "observe the state of the pallet ready";
        g "check the state of the worker in aisle";
        g "observe the state of the battery low";
      ]
  | "stage_dropoff" ->
      [
        g "observe the state of the at pick station";
        g "check the state of the worker in aisle";
      ]
  | "recharge" ->
      [
        g "observe the state of the battery low";
        g "check the state of the charging dock free";
      ]
  | _ -> [ g "observe the state of the worker in aisle" ]

let finals (task : Domain.task) =
  match task.Domain.id with
  | "transit_aisle" ->
      [
        g "if the aisle clear is on and no worker in aisle and no obstacle ahead and no crossing agv, execute the action proceed";
        r "if no worker in aisle and no obstacle ahead, execute the action proceed";
        r "if the aisle clear is on, execute the action proceed";
        b "execute the action proceed";
        b "if it is safe, drive forward";
      ]
  | "cross_junction" ->
      [
        g "if the aisle clear is on and no crossing agv and no worker in aisle and no obstacle ahead, execute the action proceed";
        r "if no crossing agv, execute the action proceed";
        r "if the aisle clear is on, execute the action proceed";
        b "execute the action proceed";
        b "if it is safe, continue";
      ]
  | "pick_at_station" ->
      [
        g "if the pallet ready is on and no worker in aisle and no battery low, execute the action pick pallet";
        r "if the pallet ready is on, execute the action pick pallet";
        r "if no worker in aisle, execute the action pick pallet";
        b "execute the action pick pallet";
        b "if it is safe, lift the pallet";
      ]
  | "stage_dropoff" ->
      [
        g "if the at pick station is on and no worker in aisle, execute the action drop pallet";
        r "if the at pick station is on, execute the action drop pallet";
        r "if the pallet ready is on, execute the action drop pallet";
        b "execute the action drop pallet";
        b "if it is safe, set the pallet down";
      ]
  | "recharge" ->
      [
        g "if the battery low is on and the charging dock free is on, execute the action dock for charging";
        r "if the charging dock free is on, execute the action dock for charging";
        r "if the battery low is on, execute the action dock for charging";
        b "execute the action dock for charging";
        b "if it is safe, dock at the charger";
      ]
  | _ -> [ b "execute the action stop" ]

let demo_responses =
  [
    ( "transit_before_ft",
      [
        "observe the state of the worker in aisle";
        "if no worker in aisle, execute the action proceed";
      ] );
    ( "transit_after_ft",
      [
        "observe the state of the worker in aisle";
        "check the state of the obstacle ahead";
        "if the aisle clear is on and no worker in aisle and no obstacle \
         ahead, execute the action proceed";
      ] );
    ( "pick_after_ft",
      [
        "observe the state of the pallet ready";
        "if the pallet ready is on and no worker in aisle, execute the \
         action pick pallet";
      ] );
  ]

let eval =
  Eval.make ~name:"warehouse" ~make_lexicon ~specs:gated_specs
    ~universal:universal_model

module M : Domain.S = struct
  let name = "warehouse"
  let propositions = propositions
  let actions = actions
  let lexicon = eval.Eval.lexicon
  let tasks = tasks
  let specs = gated_specs
  let scenarios = List.map fst scenario_models

  let model scenario =
    Option.map (fun m -> m ()) (List.assoc_opt scenario scenario_models)

  let universal = universal_model
  let observations = observations
  let finals = finals
  let demo_responses = demo_responses
  let controller_of_steps = eval.Eval.controller_of_steps
  let profile_of_steps = eval.Eval.profile_of_steps
  let profile_of_controller = eval.Eval.profile_of_controller
end

let pack : Domain.t = (module M)
