(** Generic verification-feedback path for a pack: parse steps with the
    pack's lexicon, compile the GLM2FSA controller, model-check the rule
    book and annotate vacuity — with the same memoization structure as
    the driving pack's [Evaluate] (mutexed lexicon, bounded profile
    cache [eval.profile.<domain>] keyed by (model name, steps)). *)

type t = {
  lexicon : unit -> Dpoaf_lang.Lexicon.t;
  controller_of_steps :
    name:string ->
    string list ->
    Dpoaf_automata.Fsa.t * Dpoaf_lang.Step_parser.stats;
  profile_of_steps :
    ?model:Dpoaf_automata.Ts.t -> string list -> Domain.profile;
  profile_of_controller :
    ?model:Dpoaf_automata.Ts.t -> Dpoaf_automata.Fsa.t -> Domain.profile;
}

val make :
  name:string ->
  make_lexicon:(unit -> Dpoaf_lang.Lexicon.t) ->
  specs:(unit -> (string * Dpoaf_logic.Ltl.t) list) ->
  universal:(unit -> Dpoaf_automata.Ts.t) ->
  t
(** All four entry points share one lexicon and one profile cache;
    [specs] and [universal] are called lazily (first use), so
    constructing the evaluator is free. *)

val memoized : (unit -> 'a) -> unit -> 'a
(** Mutex-guarded lazy memoization — the OCaml 5-safe replacement for a
    bare [Lazy.force] that worker domains may race on. *)
