#!/bin/sh
# Interface hygiene gate (wired into `make check` via `make mli-check`):
# every library module must publish a .mli.  Implementation-only modules
# export everything, which defeats both the unused-code lint profile and
# the documented API surface.
set -eu
cd "$(dirname "$0")/.."

missing=0
total=0
for ml in lib/*/*.ml; do
  total=$((total + 1))
  if [ ! -f "${ml}i" ]; then
    echo "check_mli: missing interface ${ml}i" >&2
    missing=$((missing + 1))
  fi
done

if [ "$missing" -gt 0 ]; then
  echo "check_mli: $missing of $total library modules lack a .mli" >&2
  exit 1
fi
echo "check_mli: all $total library modules have interfaces"
