#!/bin/sh
# End-to-end gate for the ops plane: boot the daemon with an event
# journal, drive a loadgen burst, and require that (a) `stats` and
# `health` answer *while the daemon is under load*, in both JSON and
# Prometheus form, (b) the journal is valid JSONL that `report --journal`
# accepts and that records the burst, (c) the loadgen JSON report is
# parseable, and (d) the perf gate passes against a fresh baseline and
# fails when that baseline is artificially degraded.
#
# Uses the built binaries directly (not `dune exec`) so the daemon and
# the clients never contend on the dune build lock.
set -eu

CLI=_build/default/bin/dpoaf_cli.exe
GATE=_build/default/bench/perf_gate.exe
SOCK=$(mktemp -u /tmp/dpoaf-obs-check.XXXXXX.sock)
LOG=$(mktemp /tmp/dpoaf-obs-check.XXXXXX.log)
OUT=$(mktemp /tmp/dpoaf-obs-check.XXXXXX.out)
WORK=$(mktemp -d /tmp/dpoaf-obs-check.XXXXXX)
JOURNAL="$WORK/journal.jsonl"

cleanup() {
    [ -n "${DAEMON_PID:-}" ] && kill "$DAEMON_PID" 2>/dev/null || true
    [ -n "${DAEMON_PID:-}" ] && wait "$DAEMON_PID" 2>/dev/null || true
    [ -n "${LOADGEN_PID:-}" ] && kill "$LOADGEN_PID" 2>/dev/null || true
    rm -f "$SOCK" "$LOG" "$OUT"
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

[ -x "$CLI" ] || { echo "obs-check: $CLI not built" >&2; exit 1; }
[ -x "$GATE" ] || { echo "obs-check: $GATE not built" >&2; exit 1; }

"$CLI" serve --socket "$SOCK" --jobs 2 --seed 17 --journal "$JOURNAL" \
    >"$LOG" 2>&1 &
DAEMON_PID=$!

i=0
while [ ! -S "$SOCK" ]; do
    i=$((i + 1))
    if [ "$i" -gt 600 ]; then
        echo "obs-check: daemon did not bind $SOCK within 60s" >&2
        cat "$LOG" >&2
        exit 1
    fi
    kill -0 "$DAEMON_PID" 2>/dev/null || {
        echo "obs-check: daemon exited during startup" >&2
        cat "$LOG" >&2
        exit 1
    }
    sleep 0.1
done

# ---- ops verbs answered mid-load ------------------------------------
# Start a burst in the background, then query stats/health while it runs.
"$CLI" loadgen --socket "$SOCK" --rate 150 --duration 2 --seed 5 \
    --out "$WORK/loadgen.json" >"$WORK/loadgen.txt" 2>&1 &
LOADGEN_PID=$!
sleep 0.5

"$CLI" stats --socket "$SOCK" >"$OUT"
grep -q '"stats"' "$OUT" || {
    echo "obs-check: stats (json) missing the stats payload" >&2
    cat "$OUT" >&2
    exit 1
}
grep -q '"serve.completed"' "$OUT" || {
    echo "obs-check: stats (json) missing serve counters" >&2
    exit 1
}
grep -q '"gc.heap_words"' "$OUT" || {
    echo "obs-check: stats (json) missing runtime gauges" >&2
    exit 1
}

"$CLI" stats --socket "$SOCK" --format prom >"$OUT"
grep -q '^# TYPE dpoaf_serve_latency histogram' "$OUT" || {
    echo "obs-check: stats (prom) missing the latency histogram family" >&2
    cat "$OUT" >&2
    exit 1
}
grep -q '_bucket{le="+Inf"}' "$OUT" || {
    echo "obs-check: stats (prom) missing the +Inf bucket" >&2
    exit 1
}

"$CLI" health --socket "$SOCK" >"$OUT"
grep -q '"queue_depth"' "$OUT" && grep -q '"draining":false' "$OUT" || {
    echo "obs-check: health missing queue_depth/draining" >&2
    cat "$OUT" >&2
    exit 1
}

# strict flag parsing: unknown --format values are usage errors
if "$CLI" stats --socket "$SOCK" --format yaml >/dev/null 2>"$OUT"; then
    echo "obs-check: --format yaml should have been rejected" >&2
    exit 1
fi
grep -qi 'json' "$OUT" || {
    echo "obs-check: --format error does not list the valid values" >&2
    cat "$OUT" >&2
    exit 1
}

wait "$LOADGEN_PID" || {
    echo "obs-check: loadgen failed" >&2
    cat "$WORK/loadgen.txt" >&2
    exit 1
}
LOADGEN_PID=

completed=$(sed -n 's/.*completed=\([0-9]*\).*/\1/p' "$WORK/loadgen.txt")
[ "${completed:-0}" -gt 0 ] || {
    echo "obs-check: expected loadgen completions under the ops queries" >&2
    exit 1
}
grep -q '"schema":"dpoaf-loadgen\/1"\|"schema":"dpoaf-loadgen/1"' \
    "$WORK/loadgen.json" || {
    echo "obs-check: loadgen --out did not write the JSON report" >&2
    exit 1
}

# ---- graceful stop, then journal validity ---------------------------
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || {
    echo "obs-check: daemon exited non-zero on SIGTERM" >&2
    cat "$LOG" >&2
    exit 1
}
DAEMON_PID=

[ -s "$JOURNAL" ] || {
    echo "obs-check: journal $JOURNAL is missing or empty" >&2
    exit 1
}
# report --journal exits 1 on any malformed line: this IS the validator
"$CLI" report --journal "$JOURNAL" >"$OUT" || {
    echo "obs-check: report --journal rejected the journal" >&2
    cat "$OUT" >&2
    exit 1
}
# serve.shard.up replaces serve.batch here: the default scheduler is
# continuous batching (no batch-assembly events), and every replica
# announces itself at startup instead.
for ev in daemon.start daemon.stop serve.shard.up serve.request serve.drain; do
    grep -q "$ev" "$OUT" || {
        echo "obs-check: journal report missing $ev events" >&2
        cat "$OUT" >&2
        exit 1
    }
done

# ---- perf gate on a fresh results series ----------------------------
RESULTS="$WORK/results"
_build/default/bench/main.exe --fast --only kernels,serving --jobs 2 \
    --results-dir "$RESULTS" >"$WORK/bench.txt" 2>&1 || {
    echo "obs-check: bench run for the perf gate failed" >&2
    tail -20 "$WORK/bench.txt" >&2
    exit 1
}
[ -f "$RESULTS/latest.json" ] || {
    echo "obs-check: bench did not write $RESULTS/latest.json" >&2
    exit 1
}

# first run pins the baseline and passes
"$GATE" --results-dir "$RESULTS" | grep -q 'baseline recorded' || {
    echo "obs-check: perf gate did not record a fresh baseline" >&2
    exit 1
}
# second run compares latest against it and passes
"$GATE" --results-dir "$RESULTS" | grep -q 'perf-gate: pass' || {
    echo "obs-check: perf gate failed on an unchanged run" >&2
    exit 1
}
# degrade the baseline (pretend the past was 10x faster): must fail
sed 's/"fig8_loop_s":\([0-9.e+-]*\)/"fig8_loop_s":0.000001/' \
    "$RESULTS/baseline.json" >"$RESULTS/baseline.json.tmp"
mv "$RESULTS/baseline.json.tmp" "$RESULTS/baseline.json"
if "$GATE" --results-dir "$RESULTS" >"$OUT" 2>&1; then
    echo "obs-check: perf gate passed despite a degraded headline metric" >&2
    cat "$OUT" >&2
    exit 1
fi
grep -q 'REGRESSION fig8_loop_s' "$OUT" || {
    echo "obs-check: perf gate failure did not name the regressed metric" >&2
    cat "$OUT" >&2
    exit 1
}

echo "obs-check: OK (stats/health answered mid-load; journal valid; perf gate gates)"
