#!/bin/sh
# Cross-domain gate: every registered pack must clear the static
# analysis gates and run the full loop — verify a canonical response,
# fine-tune against formal-methods feedback, and evaluate empirically —
# through the same `--domain` flag a user would pass.  A pack that
# registers but cannot complete the loop fails the build, not the first
# user who tries it.
#
# Uses the built binary directly (not `dune exec`) so repeated
# invocations never contend on the dune build lock.
set -eu

CLI=_build/default/bin/dpoaf_cli.exe

[ -x "$CLI" ] || { echo "domains-check: $CLI not built" >&2; exit 1; }

DOMAINS=$("$CLI" domains --quiet)
[ -n "$DOMAINS" ] || { echo "domains-check: no packs registered" >&2; exit 1; }

for required in driving household warehouse; do
    echo "$DOMAINS" | grep -qx "$required" || {
        echo "domains-check: built-in pack '$required' not registered" >&2
        exit 1
    }
done

# strict --domain parsing: an unknown name must be refused
if "$CLI" tasks --domain underwater >/dev/null 2>&1; then
    echo "domains-check: unknown --domain was accepted" >&2
    exit 1
fi

for d in $DOMAINS; do
    echo "domains-check: [$d] analysis gates"
    "$CLI" analyze --domain "$d" > /dev/null

    echo "domains-check: [$d] verify demo response"
    "$CLI" verify --domain "$d" > /dev/null

    echo "domains-check: [$d] finetune smoke (10 epochs)"
    "$CLI" finetune --domain "$d" --epochs 10 --seed 11 > /dev/null

    echo "domains-check: [$d] simulate smoke (40 rollouts)"
    "$CLI" simulate --domain "$d" --rollouts 40 --length 30 --seed 11 > /dev/null
done

echo "domains-check: OK ($(echo "$DOMAINS" | tr '\n' ' ' | sed 's/ $//'))"
