#!/bin/sh
# Determinism source lint: the pipeline's contract is bit-identical
# output for any --jobs, and the cheapest way to keep that true is to
# ban the sources of nondeterminism at the source level:
#
#   - Random.self_init    (seeds must be explicit; never allowlistable)
#   - Obj.magic           (undefined behavior; never allowlistable)
#   - Sys.time / Unix.gettimeofday
#                         (wall clocks; allowlistable as "timing" for
#                          metrics/serve instrumentation that never
#                          feeds an output path)
#   - Hashtbl.iter / Hashtbl.fold
#                         (iteration order depends on hash seeding and
#                          insertion history; allowlistable as
#                          "hashtbl-order" for order-insensitive uses —
#                          anything feeding an output path must sort)
#
# The allowlist (tools/det_lint_allow) is per-file per-ban with a
# mandatory justification comment; a stale entry (file no longer
# matches) fails too, so the list cannot rot.
set -eu

ALLOW=tools/det_lint_allow
fail=0

allowed() { # $1=file $2=ban
    [ -f "$ALLOW" ] && grep -v '^#' "$ALLOW" | grep -q "^$1 $2\([ #]\|\$\)"
}

scan() { # $1=ban-name $2=grep-pattern $3=allowlistable?
    for f in $(grep -rl "$2" lib --include='*.ml' 2>/dev/null || true); do
        if [ "$3" = yes ] && allowed "$f" "$1"; then
            continue
        fi
        grep -n "$2" "$f" | while IFS= read -r line; do
            echo "det-lint: $f: banned $1: $line" >&2
        done
        fail=1
    done
}

scan random-seed  'Random\.self_init'               no
scan obj-magic    'Obj\.magic'                      no
scan timing       'Sys\.time\b\|Unix\.gettimeofday' yes
scan hashtbl-order 'Hashtbl\.\(iter\|fold\)\b'      yes

# stale allowlist entries rot the lint: every entry must still match
if [ -f "$ALLOW" ]; then
    grep -v '^#' "$ALLOW" | grep -v '^[ ]*$' | while IFS= read -r entry; do
        f=$(echo "$entry" | awk '{print $1}')
        ban=$(echo "$entry" | awk '{print $2}')
        case "$ban" in
            timing) pat='Sys\.time\b\|Unix\.gettimeofday' ;;
            hashtbl-order) pat='Hashtbl\.\(iter\|fold\)\b' ;;
            *) echo "det-lint: unknown ban '$ban' in $ALLOW" >&2; exit 1 ;;
        esac
        [ -f "$f" ] || { echo "det-lint: stale allowlist entry: $f does not exist" >&2; exit 1; }
        grep -q "$pat" "$f" || {
            echo "det-lint: stale allowlist entry: $f no longer uses $ban" >&2
            exit 1
        }
        echo "$entry" | grep -q '#' || {
            echo "det-lint: allowlist entry for $f $ban lacks a justification comment" >&2
            exit 1
        }
    done
fi

# `fail` set inside the scan pipeline does not propagate out of the
# subshell; recheck by counting actual violations
violations=0
count() { # $1=grep-pattern $2=ban $3=allowlistable?
    for f in $(grep -rl "$1" lib --include='*.ml' 2>/dev/null || true); do
        if [ "$3" = yes ] && allowed "$f" "$2"; then continue; fi
        violations=$((violations + 1))
    done
}
count 'Random\.self_init'                random-seed   no
count 'Obj\.magic'                       obj-magic     no
count 'Sys\.time\b\|Unix\.gettimeofday'  timing        yes
count 'Hashtbl\.\(iter\|fold\)\b'        hashtbl-order yes

if [ "$violations" -gt 0 ]; then
    echo "det-lint: $violations file(s) with banned nondeterminism (allowlist: $ALLOW)" >&2
    exit 1
fi
echo "det-lint: OK (lib/ clean; $(grep -cv '^#' "$ALLOW" 2>/dev/null || echo 0) allowlisted uses)"
