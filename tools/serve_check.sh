#!/bin/sh
# End-to-end gate for the serving layer: boot the daemon on a temporary
# socket, fire a loadgen burst at it, and require that (a) requests
# actually completed and (b) no line failed to parse on either side.
# The daemon must also shut down gracefully on SIGTERM and remove its
# socket file.
#
# Uses the built binary directly (not `dune exec`) so the daemon and the
# client never contend on the dune build lock.
set -eu

CLI=_build/default/bin/dpoaf_cli.exe
SOCK=$(mktemp -u /tmp/dpoaf-serve-check.XXXXXX.sock)
LOG=$(mktemp /tmp/dpoaf-serve-check.XXXXXX.log)
REPORT=$(mktemp /tmp/dpoaf-serve-check.XXXXXX.report)

cleanup() {
    [ -n "${DAEMON_PID:-}" ] && kill "$DAEMON_PID" 2>/dev/null || true
    [ -n "${DAEMON_PID:-}" ] && wait "$DAEMON_PID" 2>/dev/null || true
    rm -f "$SOCK" "$LOG" "$REPORT"
}
trap cleanup EXIT INT TERM

[ -x "$CLI" ] || { echo "serve-check: $CLI not built" >&2; exit 1; }

"$CLI" serve --socket "$SOCK" --jobs 2 --seed 17 >"$LOG" 2>&1 &
DAEMON_PID=$!

# wait for the daemon to pre-train its model and bind the socket
i=0
while [ ! -S "$SOCK" ]; do
    i=$((i + 1))
    if [ "$i" -gt 600 ]; then
        echo "serve-check: daemon did not bind $SOCK within 60s" >&2
        cat "$LOG" >&2
        exit 1
    fi
    kill -0 "$DAEMON_PID" 2>/dev/null || {
        echo "serve-check: daemon exited during startup" >&2
        cat "$LOG" >&2
        exit 1
    }
    sleep 0.1
done

"$CLI" loadgen --socket "$SOCK" --rate 100 --duration 1 --seed 5 | tee "$REPORT"

SUMMARY=$(grep '^loadgen:' "$REPORT") || {
    echo "serve-check: no loadgen summary line" >&2
    exit 1
}
completed=$(echo "$SUMMARY" | sed -n 's/.*completed=\([0-9]*\).*/\1/p')
proto_errors=$(echo "$SUMMARY" | sed -n 's/.*protocol_errors=\([0-9]*\).*/\1/p')
errors=$(echo "$SUMMARY" | sed -n 's/.* errors=\([0-9]*\).*/\1/p')

[ "${completed:-0}" -gt 0 ] || {
    echo "serve-check: expected completed > 0, got '${completed:-}'" >&2
    exit 1
}
[ "${proto_errors:-1}" -eq 0 ] || {
    echo "serve-check: expected protocol_errors = 0, got '${proto_errors:-}'" >&2
    exit 1
}
[ "${errors:-1}" -eq 0 ] || {
    echo "serve-check: expected errors = 0, got '${errors:-}'" >&2
    exit 1
}

# graceful shutdown: SIGTERM drains and removes the socket file
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || {
    echo "serve-check: daemon exited non-zero on SIGTERM" >&2
    cat "$LOG" >&2
    exit 1
}
DAEMON_PID=
if [ -e "$SOCK" ]; then
    echo "serve-check: socket file not removed on shutdown" >&2
    exit 1
fi
grep -q 'daemon stopped' "$LOG" || {
    echo "serve-check: daemon did not report a graceful stop" >&2
    cat "$LOG" >&2
    exit 1
}

echo "serve-check: OK ($SUMMARY)"
