#!/bin/sh
# Static-analysis round-trip over EVERY registered domain pack:
#
#   1. `dpoaf_cli analyze --suite --json` per pack (rule-book sanity,
#      model lint, controller lint, and the whole-suite pass: conflict
#      cores, realizability against every registered world model, the
#      vocabulary coverage matrix) — a clean exit means no error-severity
#      diagnostic anywhere;
#   2. the JSON artifact's shape validated by test/analysis_validate.exe
#      (including the pack name in the report header);
#   3. the docs drift gate: every diagnostic code emitted by code in
#      lib/analysis must appear in the docs/analysis.md catalogue table,
#      and every catalogued code must still exist in the code.
#
# Uses the built binaries directly (not `dune exec`) so repeated
# invocations never contend on the dune build lock.
set -eu

CLI=_build/default/bin/dpoaf_cli.exe
VALIDATE=_build/default/test/analysis_validate.exe

[ -x "$CLI" ] || { echo "analysis-check: $CLI not built" >&2; exit 1; }
[ -x "$VALIDATE" ] || { echo "analysis-check: $VALIDATE not built" >&2; exit 1; }

DOMAINS=$("$CLI" domains --quiet)
[ -n "$DOMAINS" ] || { echo "analysis-check: no packs registered" >&2; exit 1; }

for d in $DOMAINS; do
    out="_build/analysis_$d.json"
    echo "analysis-check: [$d] analyze --suite"
    "$CLI" analyze --domain "$d" --suite --json --out "$out" > /dev/null
    "$VALIDATE" "$out"
    # the artifact must name the pack it analyzed
    grep -q "\"domain\":\"$d\"" "$out" || {
        echo "analysis-check: $out does not name pack '$d' in its header" >&2
        exit 1
    }
done

# ---------------- docs drift gate ----------------
# Codes emitted by the analyzers (the single source of truth is the
# ~code:"..." literal at each Diagnostic.make site) vs. the catalogue
# table rows in docs/analysis.md.  Drift in either direction fails.
DOCS=docs/analysis.md
[ -f "$DOCS" ] || { echo "analysis-check: $DOCS missing" >&2; exit 1; }

emitted=$(grep -rho '~code:"[A-Z]*[0-9]*"' lib/analysis \
    | sed 's/~code:"\(.*\)"/\1/' | sort -u)
documented=$(grep -o '^| `[A-Z]*[0-9]*`' "$DOCS" \
    | sed 's/| `\(.*\)`/\1/' | sort -u)

[ -n "$emitted" ] || { echo "analysis-check: found no emitted codes in lib/analysis" >&2; exit 1; }

drift=0
for c in $emitted; do
    echo "$documented" | grep -qx "$c" || {
        echo "analysis-check: code $c is emitted by lib/analysis but missing from the $DOCS catalogue" >&2
        drift=1
    }
done
for c in $documented; do
    echo "$emitted" | grep -qx "$c" || {
        echo "analysis-check: code $c is catalogued in $DOCS but no analyzer emits it" >&2
        drift=1
    }
done
[ "$drift" -eq 0 ] || exit 1

echo "analysis-check: OK ($(echo "$DOMAINS" | tr '\n' ' ' | sed 's/ $//')— $(echo "$emitted" | wc -l | tr -d ' ') codes in sync with $DOCS)"
