#!/bin/sh
# End-to-end gate for the counterexample-guided refinement loop.
#
# Two halves:
#   1. Offline must-repair case: `dpoaf_cli refine` over the seeded
#      defect pool of the driving pack must improve at least 80% of the
#      defective responses within 3 rounds, and every accepted repair
#      must land in a --store file that `report --pref-store` validates
#      as non-empty dpoaf-prefstore/1.
#   2. Serving path: a daemon with --journal and --pref-store takes a
#      loadgen burst whose mix includes refine traffic; the burst must
#      complete without errors, the journal must contain
#      serve.refine_round events (surfaced by `report --journal`), and
#      the harvested store must validate.
#
# Uses the built binary directly (not `dune exec`) so the daemon and the
# client never contend on the dune build lock.
set -eu

CLI=_build/default/bin/dpoaf_cli.exe
SOCK=$(mktemp -u /tmp/dpoaf-refine-check.XXXXXX.sock)
LOG=$(mktemp /tmp/dpoaf-refine-check.XXXXXX.log)
OUT=$(mktemp /tmp/dpoaf-refine-check.XXXXXX.out)
STORE_CLI=$(mktemp -u /tmp/dpoaf-refine-check.XXXXXX.cli.jsonl)
STORE_SRV=$(mktemp -u /tmp/dpoaf-refine-check.XXXXXX.srv.jsonl)
JOURNAL=$(mktemp -u /tmp/dpoaf-refine-check.XXXXXX.journal.jsonl)

cleanup() {
    [ -n "${DAEMON_PID:-}" ] && kill "$DAEMON_PID" 2>/dev/null || true
    [ -n "${DAEMON_PID:-}" ] && wait "$DAEMON_PID" 2>/dev/null || true
    rm -f "$SOCK" "$LOG" "$OUT" "$STORE_CLI"* "$STORE_SRV"* "$JOURNAL"*
}
trap cleanup EXIT INT TERM

[ -x "$CLI" ] || { echo "refine-check: $CLI not built" >&2; exit 1; }

# ---- 1. offline must-repair case --------------------------------------

"$CLI" refine --domain driving --rounds 3 --store "$STORE_CLI" >"$OUT" 2>&1 || {
    echo "refine-check: dpoaf_cli refine failed" >&2
    cat "$OUT" >&2
    exit 1
}
SUMMARY=$(grep '^refine summary:' "$OUT") || {
    echo "refine-check: no refine summary line" >&2
    cat "$OUT" >&2
    exit 1
}
improved=$(echo "$SUMMARY" | sed -n 's/.*improved \([0-9]*\)\/[0-9]*.*/\1/p')
total=$(echo "$SUMMARY" | sed -n 's/.*improved [0-9]*\/\([0-9]*\).*/\1/p')
[ "${total:-0}" -gt 0 ] || {
    echo "refine-check: empty defect pool ($SUMMARY)" >&2
    exit 1
}
# the paper's bar: >= 80% of defective responses improve within 3 rounds
if [ $((improved * 5)) -lt $((total * 4)) ]; then
    echo "refine-check: only $improved/$total defects improved (< 80%)" >&2
    exit 1
fi

"$CLI" report --pref-store "$STORE_CLI" >"$OUT" 2>&1 || {
    echo "refine-check: harvested store failed validation" >&2
    cat "$OUT" >&2
    exit 1
}
grep -q 'harvested pairs' "$OUT" || {
    echo "refine-check: offline store is empty (no accepted repairs?)" >&2
    cat "$OUT" >&2
    exit 1
}

# ---- 2. serving path --------------------------------------------------

"$CLI" serve --socket "$SOCK" --jobs 2 --seed 17 \
    --journal "$JOURNAL" --pref-store "$STORE_SRV" >"$LOG" 2>&1 &
DAEMON_PID=$!

# wait for the daemon to pre-train its model and bind the socket
i=0
while [ ! -S "$SOCK" ]; do
    i=$((i + 1))
    if [ "$i" -gt 600 ]; then
        echo "refine-check: daemon did not bind $SOCK within 60s" >&2
        cat "$LOG" >&2
        exit 1
    fi
    kill -0 "$DAEMON_PID" 2>/dev/null || {
        echo "refine-check: daemon exited during startup" >&2
        cat "$LOG" >&2
        exit 1
    }
    sleep 0.1
done

"$CLI" loadgen --socket "$SOCK" --rate 40 --duration 1 --seed 5 \
    --mix generate=0.2,verify=0.3,refine=0.5 | tee "$OUT"

LG=$(grep '^loadgen:' "$OUT") || {
    echo "refine-check: no loadgen summary line" >&2
    exit 1
}
completed=$(echo "$LG" | sed -n 's/.*completed=\([0-9]*\).*/\1/p')
proto_errors=$(echo "$LG" | sed -n 's/.*protocol_errors=\([0-9]*\).*/\1/p')
errors=$(echo "$LG" | sed -n 's/.* errors=\([0-9]*\).*/\1/p')
[ "${completed:-0}" -gt 0 ] || {
    echo "refine-check: expected completed > 0, got '${completed:-}'" >&2
    exit 1
}
[ "${proto_errors:-1}" -eq 0 ] || {
    echo "refine-check: expected protocol_errors = 0, got '${proto_errors:-}'" >&2
    exit 1
}
[ "${errors:-1}" -eq 0 ] || {
    echo "refine-check: expected errors = 0, got '${errors:-}'" >&2
    exit 1
}

# graceful shutdown flushes the journal and the store
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || {
    echo "refine-check: daemon exited non-zero on SIGTERM" >&2
    cat "$LOG" >&2
    exit 1
}
DAEMON_PID=

"$CLI" report --journal "$JOURNAL" >"$OUT" 2>&1 || {
    echo "refine-check: journal failed validation" >&2
    cat "$OUT" >&2
    exit 1
}
REFLINE=$(grep '^refine rounds:' "$OUT") || {
    echo "refine-check: report --journal shows no refine rounds" >&2
    cat "$OUT" >&2
    exit 1
}
rounds=$(echo "$REFLINE" | sed -n 's/^refine rounds: \([0-9]*\).*/\1/p')
[ "${rounds:-0}" -gt 0 ] || {
    echo "refine-check: zero refine rounds journaled ($REFLINE)" >&2
    exit 1
}

"$CLI" report --pref-store "$STORE_SRV" >"$OUT" 2>&1 || {
    echo "refine-check: served store failed validation" >&2
    cat "$OUT" >&2
    exit 1
}

echo "refine-check: OK ($improved/$total repaired offline; $REFLINE)"
