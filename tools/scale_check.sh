#!/bin/sh
# End-to-end gate for the sharded serving fleet: boot a 2-shard daemon
# with both transports, and require that (a) the per-shard health rows
# and the ops plane answer on the Unix socket AND the TCP listener,
# (b) a loadgen dump is byte-identical across the two transports,
# (c) a short saturation sweep finds a knee and writes the sweep JSON,
# (d) a 1-shard flush-batching daemon returns a byte-identical dump —
# sharding and batching move only queueing, never replies — and
# (e) the serving_scale bench section writes a well-formed
# BENCH_serving_scale.json whose max_rps_at_p99 joins the dated series.
#
# Uses the built binaries directly (not `dune exec`) so the daemon and
# the clients never contend on the dune build lock.
set -eu

CLI=_build/default/bin/dpoaf_cli.exe
BENCH=_build/default/bench/main.exe
SOCK=$(mktemp -u /tmp/dpoaf-scale-check.XXXXXX.sock)
LOG=$(mktemp /tmp/dpoaf-scale-check.XXXXXX.log)
OUT=$(mktemp /tmp/dpoaf-scale-check.XXXXXX.out)
WORK=$(mktemp -d /tmp/dpoaf-scale-check.XXXXXX)

cleanup() {
    [ -n "${DAEMON_PID:-}" ] && kill "$DAEMON_PID" 2>/dev/null || true
    [ -n "${DAEMON_PID:-}" ] && wait "$DAEMON_PID" 2>/dev/null || true
    rm -f "$SOCK" "$LOG" "$OUT"
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

[ -x "$CLI" ] || { echo "scale-check: $CLI not built" >&2; exit 1; }
[ -x "$BENCH" ] || { echo "scale-check: $BENCH not built" >&2; exit 1; }

wait_for_daemon() {
    i=0
    while [ ! -S "$SOCK" ]; do
        i=$((i + 1))
        if [ "$i" -gt 600 ]; then
            echo "scale-check: daemon did not bind $SOCK within 60s" >&2
            cat "$LOG" >&2
            exit 1
        fi
        kill -0 "$DAEMON_PID" 2>/dev/null || {
            echo "scale-check: daemon exited during startup" >&2
            cat "$LOG" >&2
            exit 1
        }
        sleep 0.1
    done
}

# ---- 2-shard fleet, continuous batching, both transports -------------
"$CLI" serve --socket "$SOCK" --shards 2 --tcp-port 0 --jobs 1 --seed 17 \
    >"$LOG" 2>&1 &
DAEMON_PID=$!
wait_for_daemon

# the ephemeral TCP port is announced on startup
i=0
while ! grep -q 'tcp listener on 127.0.0.1:' "$LOG"; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "scale-check: daemon did not announce its TCP port" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.1
done
PORT=$(sed -n 's/.*tcp listener on 127.0.0.1:\([0-9]*\).*/\1/p' "$LOG" | head -1)
[ -n "$PORT" ] || { echo "scale-check: could not parse the TCP port" >&2; exit 1; }

# per-shard health rows on the Unix socket...
"$CLI" health --socket "$SOCK" >"$OUT"
for want in '"shards"' '"shard0"' '"shard1"'; do
    grep -q "$want" "$OUT" || {
        echo "scale-check: health missing $want" >&2
        cat "$OUT" >&2
        exit 1
    }
done
# ...and the same ops plane over TCP
"$CLI" health --tcp-port "$PORT" >"$OUT"
grep -q '"shard1"' "$OUT" || {
    echo "scale-check: health over TCP missing the shard rows" >&2
    cat "$OUT" >&2
    exit 1
}
"$CLI" stats --tcp-port "$PORT" >"$OUT"
grep -q '"serve.completed"' "$OUT" || {
    echo "scale-check: stats over TCP missing serve counters" >&2
    cat "$OUT" >&2
    exit 1
}

# transport identity: the same seeded burst over Unix and TCP dumps the
# same bytes (timings zeroed, id-sorted)
"$CLI" loadgen --socket "$SOCK" --rate 80 --duration 1 --seed 5 \
    --dump "$WORK/unix.dump" >/dev/null
"$CLI" loadgen --tcp-port "$PORT" --rate 80 --duration 1 --seed 5 \
    --dump "$WORK/tcp.dump" >/dev/null
cmp -s "$WORK/unix.dump" "$WORK/tcp.dump" || {
    echo "scale-check: Unix and TCP dumps differ" >&2
    diff "$WORK/unix.dump" "$WORK/tcp.dump" | head -5 >&2
    exit 1
}

# saturation sweep: a permissive budget so even a loaded CI box finds a
# sustained level; the knee and its achieved rps land in the JSON report
"$CLI" loadgen --socket "$SOCK" --sweep 40:40:200 --sweep-p99-ms 200 \
    --duration 0.5 --seed 5 --out "$WORK/sweep.json" >"$WORK/sweep.txt"
for want in '"mode":"sweep"' '"knee_offered_rps"' '"max_rps_at_p99"' '"levels"'; do
    grep -q "$want" "$WORK/sweep.json" || {
        echo "scale-check: sweep JSON missing $want" >&2
        cat "$WORK/sweep.json" >&2
        exit 1
    }
done
grep -q 'sweep:' "$WORK/sweep.txt" || {
    echo "scale-check: sweep printed no per-level summary" >&2
    cat "$WORK/sweep.txt" >&2
    exit 1
}

kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || {
    echo "scale-check: 2-shard daemon exited non-zero on SIGTERM" >&2
    cat "$LOG" >&2
    exit 1
}
DAEMON_PID=

# ---- shard-count / batching identity ---------------------------------
# a 1-shard flush-batching daemon (same seed) must dump the same bytes:
# routing and the scheduler move only queueing and cache temperature
"$CLI" serve --socket "$SOCK" --shards 1 --batching flush --jobs 2 --seed 17 \
    >"$LOG" 2>&1 &
DAEMON_PID=$!
wait_for_daemon

"$CLI" loadgen --socket "$SOCK" --rate 80 --duration 1 --seed 5 \
    --dump "$WORK/oneshard.dump" >/dev/null
cmp -s "$WORK/unix.dump" "$WORK/oneshard.dump" || {
    echo "scale-check: 1-shard flush dump differs from the 2-shard dump" >&2
    diff "$WORK/unix.dump" "$WORK/oneshard.dump" | head -5 >&2
    exit 1
}

kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || {
    echo "scale-check: 1-shard daemon exited non-zero on SIGTERM" >&2
    cat "$LOG" >&2
    exit 1
}
DAEMON_PID=

# ---- the serving_scale bench artifact --------------------------------
ROOT=$(pwd)
(cd "$WORK" && "$ROOT/$BENCH" --fast --only serving_scale \
    --results-dir "$WORK/results" >"$WORK/bench.txt" 2>&1) || {
    echo "scale-check: serving_scale bench section failed" >&2
    tail -20 "$WORK/bench.txt" >&2
    exit 1
}
SCALE="$WORK/BENCH_serving_scale.json"
[ -f "$SCALE" ] || {
    echo "scale-check: bench did not write BENCH_serving_scale.json" >&2
    exit 1
}
for want in '"schema":"dpoaf-serving-scale/1"' '"fleets"' '"max_rps_at_p99"' \
    '"shards":1' '"shards":2' '"shards":4' '"speedup_multi_vs_1"'; do
    grep -q "$want" "$SCALE" || {
        echo "scale-check: BENCH_serving_scale.json missing $want" >&2
        cat "$SCALE" >&2
        exit 1
    }
done
grep -q '"max_rps_at_p99"' "$WORK/results/latest.json" || {
    echo "scale-check: max_rps_at_p99 did not join the dated bench series" >&2
    cat "$WORK/results/latest.json" >&2
    exit 1
}

echo "scale-check: OK (2-shard fleet on both transports; dumps identical across transports, shard counts and batching; sweep + BENCH_serving_scale.json valid)"
