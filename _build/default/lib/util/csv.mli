(** Minimal CSV writing for exporting experiment series.

    Quoting follows RFC 4180: fields containing commas, quotes or newlines
    are double-quoted with inner quotes doubled. *)

val escape : string -> string
(** One field, quoted if needed. *)

val line : string list -> string
(** One row (no trailing newline). *)

val write : string -> header:string list -> string list list -> unit
(** Write a file with a header row.
    @raise Sys_error on unwritable paths. *)
