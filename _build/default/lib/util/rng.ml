type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* splitmix64 finalizer: the output function of Steele et al. (2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = int64 t in
  { state = mix seed }

let int t bound =
  assert (bound > 0);
  (* keep 62 bits so the value fits OCaml's 63-bit int and stays positive *)
  let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  r mod bound

let float t =
  (* 53 random bits mapped to [0,1). *)
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let bool t p = float t < p

let uniform t lo hi = lo +. ((hi -. lo) *. float t)

let gaussian t =
  let rec nonzero () =
    let u = float t in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let choice t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let choice_list t l =
  match l with
  | [] -> invalid_arg "Rng.choice_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let weighted t choices =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 choices in
  if total <= 0.0 then invalid_arg "Rng.weighted: weights sum to zero";
  let x = float t *. total in
  let rec pick acc = function
    | [] -> invalid_arg "Rng.weighted: empty choices"
    | [ (v, _) ] -> v
    | (v, w) :: rest -> if x < acc +. w then v else pick (acc +. w) rest
  in
  pick 0.0 choices

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let shuffle_list t l =
  let arr = Array.of_list l in
  shuffle t arr;
  Array.to_list arr

let sample_without_replacement t k arr =
  let copy = Array.copy arr in
  shuffle t copy;
  Array.sub copy 0 (min k (Array.length copy))
