type t = { headers : string list; mutable rows : string list list }

let create headers = { headers; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let add_float_row t label xs =
  add_row t (label :: List.map (Printf.sprintf "%.3f") xs)

let header t = t.headers
let rows t = List.rev t.rows

let render t =
  let rows = List.rev t.rows in
  let ncols =
    List.fold_left (fun acc r -> max acc (List.length r)) (List.length t.headers) rows
  in
  let pad row = row @ List.init (ncols - List.length row) (fun _ -> "") in
  let all = List.map pad (t.headers :: rows) in
  let widths = Array.make ncols 0 in
  let note_widths row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter note_widths all;
  let render_row row =
    let cells =
      List.mapi (fun i cell -> Printf.sprintf " %-*s " widths.(i) cell) row
    in
    "|" ^ String.concat "|" cells ^ "|"
  in
  let sep =
    "|"
    ^ String.concat "|"
        (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "|"
  in
  match all with
  | [] -> ""
  | header :: body ->
      String.concat "\n" ((render_row header :: sep :: List.map render_row body))

let print t = print_endline (render t)
