lib/util/rng.mli:
