lib/util/strext.ml: Buffer List Seq String
