lib/util/strext.mli:
