lib/util/csv.mli:
