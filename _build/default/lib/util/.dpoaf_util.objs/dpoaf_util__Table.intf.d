lib/util/table.mli:
