let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
      sqrt var

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty list"
  | x :: rest ->
      List.fold_left (fun (lo, hi) v -> (Float.min lo v, Float.max hi v)) (x, x) rest

let percentile p xs =
  match List.sort compare xs with
  | [] -> invalid_arg "Stats.percentile: empty list"
  | sorted ->
      let arr = Array.of_list sorted in
      let n = Array.length arr in
      if n = 1 then arr.(0)
      else
        let pos = p *. float_of_int (n - 1) in
        let i = int_of_float (Float.floor pos) in
        let frac = pos -. float_of_int i in
        if i >= n - 1 then arr.(n - 1)
        else arr.(i) +. (frac *. (arr.(i + 1) -. arr.(i)))

let median xs = percentile 0.5 xs

let fraction pred = function
  | [] -> 0.0
  | xs ->
      let hits = List.length (List.filter pred xs) in
      float_of_int hits /. float_of_int (List.length xs)

let histogram ~bins ~lo ~hi xs =
  assert (bins > 0 && hi > lo);
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  let bucket x =
    let i = int_of_float ((x -. lo) /. width) in
    max 0 (min (bins - 1) i)
  in
  List.iter (fun x -> counts.(bucket x) <- counts.(bucket x) + 1) xs;
  counts

type summary = { mean : float; std : float; min : float; max : float; n : int }

let summarize xs =
  match xs with
  | [] -> { mean = 0.0; std = 0.0; min = 0.0; max = 0.0; n = 0 }
  | _ ->
      let lo, hi = min_max xs in
      { mean = mean xs; std = stddev xs; min = lo; max = hi; n = List.length xs }

let pp_summary ppf s =
  Format.fprintf ppf "%.4f ± %.4f [%.4f, %.4f] (n=%d)" s.mean s.std s.min s.max s.n
