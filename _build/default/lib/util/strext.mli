(** String helpers shared by the semantic parser and tokenizers. *)

val words : string -> string list
(** Split on whitespace, dropping empty fragments. *)

val lowercase_words : string -> string list
(** {!words} after ASCII lowercasing and stripping punctuation
    (periods, commas, quotes). *)

val starts_with : prefix:string -> string -> bool

val join : string list -> string
(** Concatenate with single spaces. *)

val strip_prefix : prefix:string list -> string list -> string list option
(** [strip_prefix ~prefix ws] removes [prefix] from the head of [ws]. *)
