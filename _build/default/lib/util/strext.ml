let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let words s =
  let out = ref [] and buf = Buffer.create 16 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter (fun c -> if is_space c then flush () else Buffer.add_char buf c) s;
  flush ();
  List.rev !out

let strip_punct w =
  let keep c =
    (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-' || c = '_'
  in
  String.to_seq (String.lowercase_ascii w)
  |> Seq.filter keep |> String.of_seq

let lowercase_words s =
  words s |> List.map strip_punct |> List.filter (fun w -> w <> "")

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let join = String.concat " "

let rec strip_prefix ~prefix ws =
  match (prefix, ws) with
  | [], rest -> Some rest
  | p :: ps, w :: rest when p = w -> strip_prefix ~prefix:ps rest
  | _ -> None
