(** Small statistics helpers used by benches and experiment reports. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 on lists shorter than 2. *)

val min_max : float list -> float * float
(** Smallest and largest element.  Raises [Invalid_argument] on []. *)

val median : float list -> float

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,1\]], linear interpolation. *)

val fraction : ('a -> bool) -> 'a list -> float
(** Fraction of elements satisfying the predicate; 0 on []. *)

val histogram : bins:int -> lo:float -> hi:float -> float list -> int array
(** Counts per equal-width bin; out-of-range values are clamped. *)

type summary = { mean : float; std : float; min : float; max : float; n : int }

val summarize : float list -> summary

val pp_summary : Format.formatter -> summary -> unit
