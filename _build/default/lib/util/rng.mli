(** Deterministic pseudo-random number generator (splitmix64).

    All randomness in the repository flows through this module so that every
    experiment is reproducible bit-for-bit from an explicit seed.  The state
    is mutable; use {!split} to derive independent streams. *)

type t

val create : int -> t
(** [create seed] builds a generator from an integer seed. *)

val copy : t -> t
(** Independent copy with identical future output. *)

val split : t -> t
(** [split t] advances [t] and returns a generator whose stream is
    statistically independent from the remainder of [t]'s stream. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  Requires [bound > 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> float -> bool
(** [bool t p] is [true] with probability [p]. *)

val gaussian : t -> float
(** Standard normal deviate (Box-Muller). *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [\[lo, hi)]. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val choice_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val weighted : t -> ('a * float) list -> 'a
(** [weighted t choices] samples proportionally to the (non-negative, not
    all zero) weights. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val shuffle_list : t -> 'a list -> 'a list

val sample_without_replacement : t -> int -> 'a array -> 'a array
(** [sample_without_replacement t k arr] draws [min k (length arr)] distinct
    elements. *)
