(** ASCII table rendering for benches and experiment reports. *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row.  Short rows are padded with empty cells. *)

val add_float_row : t -> string -> float list -> unit
(** [add_float_row t label xs] appends [label] followed by [%.3f] cells. *)

val header : t -> string list
val rows : t -> string list list
(** Body rows in insertion order. *)

val render : t -> string
(** Render with column-aligned separators. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)
