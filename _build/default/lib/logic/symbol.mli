(** Symbols are sets of atomic propositions.

    A symbol [σ ∈ 2^P] is the set of atomic propositions that evaluate to
    true at an instant, as in the paper's definition of model output symbols
    and controller input symbols. *)

include Set.S with type elt = string

val of_atoms : string list -> t
(** Symbol from a list of atom names. *)

val pp : Format.formatter -> t -> unit
(** Renders as [{a, b}]; the empty symbol renders as [{}]. *)

val to_string : t -> string

val satisfies_atom : t -> string -> bool
(** [satisfies_atom sym a] is true iff [a ∈ sym]. *)
