include Set.Make (String)

let of_atoms = of_list

let pp ppf s =
  Format.fprintf ppf "{%s}" (String.concat ", " (elements s))

let to_string s = Format.asprintf "%a" pp s

let satisfies_atom s a = mem a s
