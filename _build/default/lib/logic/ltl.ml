type t =
  | True
  | False
  | Atom of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Next of t
  | Until of t * t
  | Release of t * t
  | Eventually of t
  | Always of t

let compare = Stdlib.compare
let equal a b = compare a b = 0

let atom a = Atom a
let neg f = Not f

let conj = function
  | [] -> True
  | f :: rest -> List.fold_left (fun acc g -> And (acc, g)) f rest

let disj = function
  | [] -> False
  | f :: rest -> List.fold_left (fun acc g -> Or (acc, g)) f rest

let implies a b = Implies (a, b)
let always f = Always f
let eventually f = Eventually f
let next f = Next f
let until a b = Until (a, b)
let release a b = Release (a, b)

let rec atoms = function
  | True | False -> Symbol.empty
  | Atom a -> Symbol.singleton a
  | Not f | Next f | Eventually f | Always f -> atoms f
  | And (a, b) | Or (a, b) | Implies (a, b) | Until (a, b) | Release (a, b) ->
      Symbol.union (atoms a) (atoms b)

let rec size = function
  | True | False | Atom _ -> 1
  | Not f | Next f | Eventually f | Always f -> 1 + size f
  | And (a, b) | Or (a, b) | Implies (a, b) | Until (a, b) | Release (a, b) ->
      1 + size a + size b

(* Negation normal form.  [nnf_pos] keeps polarity, [nnf_neg] negates. *)
let rec nnf_pos = function
  | True -> True
  | False -> False
  | Atom a -> Atom a
  | Not f -> nnf_neg f
  | And (a, b) -> And (nnf_pos a, nnf_pos b)
  | Or (a, b) -> Or (nnf_pos a, nnf_pos b)
  | Implies (a, b) -> Or (nnf_neg a, nnf_pos b)
  | Next f -> Next (nnf_pos f)
  | Until (a, b) -> Until (nnf_pos a, nnf_pos b)
  | Release (a, b) -> Release (nnf_pos a, nnf_pos b)
  | Eventually f -> Until (True, nnf_pos f)
  | Always f -> Release (False, nnf_pos f)

and nnf_neg = function
  | True -> False
  | False -> True
  | Atom a -> Not (Atom a)
  | Not f -> nnf_pos f
  | And (a, b) -> Or (nnf_neg a, nnf_neg b)
  | Or (a, b) -> And (nnf_neg a, nnf_neg b)
  | Implies (a, b) -> And (nnf_pos a, nnf_neg b)
  | Next f -> Next (nnf_neg f)
  | Until (a, b) -> Release (nnf_neg a, nnf_neg b)
  | Release (a, b) -> Until (nnf_neg a, nnf_neg b)
  | Eventually f -> Release (False, nnf_neg f)
  | Always f -> Until (True, nnf_neg f)

let nnf = nnf_pos

let rec is_nnf = function
  | True | False | Atom _ -> true
  | Not (Atom _) -> true
  | Not _ | Implies _ | Eventually _ | Always _ -> false
  | Next f -> is_nnf f
  | And (a, b) | Or (a, b) | Until (a, b) | Release (a, b) -> is_nnf a && is_nnf b

let atom_needs_quotes a =
  a = ""
  || not
       (String.for_all
          (fun c ->
            (c >= 'a' && c <= 'z')
            || (c >= 'A' && c <= 'Z')
            || (c >= '0' && c <= '9')
            || c = '_' || c = '-')
          a)
  || List.mem a [ "true"; "false"; "U"; "R"; "X"; "F"; "G" ]

let pp_atom ppf a =
  if atom_needs_quotes a then Format.fprintf ppf "%S" a
  else Format.pp_print_string ppf a

(* Precedence levels used to decide parenthesisation: higher binds tighter. *)
let prec = function
  | Implies _ -> 1
  | Or _ -> 2
  | And _ -> 3
  | Until _ | Release _ -> 4
  | Not _ | Next _ | Eventually _ | Always _ -> 5
  | True | False | Atom _ -> 6

let rec pp_prec level ppf f =
  let p = prec f in
  let wrap body =
    if p < level then Format.fprintf ppf "(%t)" body else body ppf
  in
  match f with
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Atom a -> pp_atom ppf a
  | Not g -> wrap (fun ppf -> Format.fprintf ppf "!%a" (pp_prec (p + 1)) g)
  | Next g -> wrap (fun ppf -> Format.fprintf ppf "X %a" (pp_prec p) g)
  | Eventually g -> wrap (fun ppf -> Format.fprintf ppf "F %a" (pp_prec p) g)
  | Always g -> wrap (fun ppf -> Format.fprintf ppf "G %a" (pp_prec p) g)
  | And (a, b) ->
      wrap (fun ppf -> Format.fprintf ppf "%a & %a" (pp_prec p) a (pp_prec (p + 1)) b)
  | Or (a, b) ->
      wrap (fun ppf -> Format.fprintf ppf "%a | %a" (pp_prec p) a (pp_prec (p + 1)) b)
  | Implies (a, b) ->
      wrap (fun ppf -> Format.fprintf ppf "%a -> %a" (pp_prec (p + 1)) a (pp_prec p) b)
  | Until (a, b) ->
      wrap (fun ppf -> Format.fprintf ppf "%a U %a" (pp_prec (p + 1)) a (pp_prec p) b)
  | Release (a, b) ->
      wrap (fun ppf -> Format.fprintf ppf "%a R %a" (pp_prec (p + 1)) a (pp_prec p) b)

let pp = pp_prec 0
let to_string f = Format.asprintf "%a" pp f

(* ------------------------------------------------------------------ *)
(* Parser: hand-written lexer + recursive descent.                     *)

type token =
  | Tlparen
  | Trparen
  | Tbang
  | Tamp
  | Tbar
  | Tarrow
  | Ttrue
  | Tfalse
  | Tuntil
  | Trelease
  | Tnext
  | Tfinally
  | Tglobally
  | Tatom of string

exception Parse_error of string

let lex input =
  let n = String.length input in
  let rec skip i = if i < n && (input.[i] = ' ' || input.[i] = '\t' || input.[i] = '\n') then skip (i + 1) else i in
  let is_ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '-'
  in
  let rec go acc i =
    let i = skip i in
    if i >= n then List.rev acc
    else
      match input.[i] with
      | '(' -> go (Tlparen :: acc) (i + 1)
      | ')' -> go (Trparen :: acc) (i + 1)
      | '!' -> go (Tbang :: acc) (i + 1)
      | '&' -> go (Tamp :: acc) (i + 1)
      | '|' -> go (Tbar :: acc) (i + 1)
      | '-' when i + 1 < n && input.[i + 1] = '>' -> go (Tarrow :: acc) (i + 2)
      | '"' ->
          let j = try String.index_from input (i + 1) '"' with Not_found ->
            raise (Parse_error "unterminated quoted atom")
          in
          go (Tatom (String.sub input (i + 1) (j - i - 1)) :: acc) (j + 1)
      | c when is_ident c ->
          let j = ref i in
          while !j < n && is_ident input.[!j] do incr j done;
          let word = String.sub input i (!j - i) in
          let tok =
            match word with
            | "true" -> Ttrue
            | "false" -> Tfalse
            | "U" -> Tuntil
            | "R" -> Trelease
            | "X" -> Tnext
            | "F" -> Tfinally
            | "G" -> Tglobally
            | w -> Tatom w
          in
          go (tok :: acc) !j
      | c -> raise (Parse_error (Printf.sprintf "unexpected character %c" c))
  in
  go [] 0

let parse input =
  let rec p_implies toks =
    let lhs, toks = p_or toks in
    match toks with
    | Tarrow :: rest ->
        let rhs, rest = p_implies rest in
        (Implies (lhs, rhs), rest)
    | _ -> (lhs, toks)
  and p_or toks =
    let lhs, toks = p_and toks in
    let rec loop lhs toks =
      match toks with
      | Tbar :: rest ->
          let rhs, rest = p_and rest in
          loop (Or (lhs, rhs)) rest
      | _ -> (lhs, toks)
    in
    loop lhs toks
  and p_and toks =
    let lhs, toks = p_until toks in
    let rec loop lhs toks =
      match toks with
      | Tamp :: rest ->
          let rhs, rest = p_until rest in
          loop (And (lhs, rhs)) rest
      | _ -> (lhs, toks)
    in
    loop lhs toks
  and p_until toks =
    let lhs, toks = p_unary toks in
    match toks with
    | Tuntil :: rest ->
        let rhs, rest = p_until rest in
        (Until (lhs, rhs), rest)
    | Trelease :: rest ->
        let rhs, rest = p_until rest in
        (Release (lhs, rhs), rest)
    | _ -> (lhs, toks)
  and p_unary toks =
    match toks with
    | Tbang :: rest ->
        let f, rest = p_unary rest in
        (Not f, rest)
    | Tnext :: rest ->
        let f, rest = p_unary rest in
        (Next f, rest)
    | Tfinally :: rest ->
        let f, rest = p_unary rest in
        (Eventually f, rest)
    | Tglobally :: rest ->
        let f, rest = p_unary rest in
        (Always f, rest)
    | _ -> p_primary toks
  and p_primary toks =
    match toks with
    | Tlparen :: rest -> (
        let f, rest = p_implies rest in
        match rest with
        | Trparen :: rest -> (f, rest)
        | _ -> raise (Parse_error "expected closing parenthesis"))
    | Ttrue :: rest -> (True, rest)
    | Tfalse :: rest -> (False, rest)
    | Tatom a :: rest -> (Atom a, rest)
    | [] -> raise (Parse_error "unexpected end of input")
    | _ -> raise (Parse_error "unexpected token")
  in
  match lex input with
  | exception Parse_error msg -> Error msg
  | toks -> (
      match p_implies toks with
      | f, [] -> Ok f
      | _, _ -> Error "trailing tokens after formula"
      | exception Parse_error msg -> Error msg)

let parse_exn input =
  match parse input with
  | Ok f -> f
  | Error msg -> invalid_arg (Printf.sprintf "Ltl.parse_exn: %s (input %S)" msg input)
