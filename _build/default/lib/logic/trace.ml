type step = Symbol.t

module Fmap = Map.Make (Ltl)

(* Finite-trace evaluation, bottom-up over subformulas with memoisation so
   shared subformulas are evaluated once per position. *)
let finite_truth formula (trace : step array) =
  let n = Array.length trace in
  let memo = ref Fmap.empty in
  let rec truth f =
    match Fmap.find_opt f !memo with
    | Some arr -> arr
    | None ->
        let arr = compute f in
        memo := Fmap.add f arr !memo;
        arr
  and compute f =
    let open Ltl in
    match f with
    | True -> Array.make n true
    | False -> Array.make n false
    | Atom a -> Array.map (fun sym -> Symbol.mem a sym) trace
    | Not g -> Array.map not (truth g)
    | And (a, b) -> Array.map2 ( && ) (truth a) (truth b)
    | Or (a, b) -> Array.map2 ( || ) (truth a) (truth b)
    | Implies (a, b) -> Array.map2 (fun x y -> (not x) || y) (truth a) (truth b)
    | Next g ->
        let tg = truth g in
        Array.init n (fun i -> i + 1 < n && tg.(i + 1))
    | Until (a, b) ->
        let ta = truth a and tb = truth b in
        let out = Array.make n false in
        for i = n - 1 downto 0 do
          out.(i) <- tb.(i) || (ta.(i) && i + 1 < n && out.(i + 1))
        done;
        out
    | Release (a, b) ->
        (* finite release: b holds up to and including the first a, or to
           the end of the trace. *)
        let ta = truth a and tb = truth b in
        let out = Array.make n false in
        for i = n - 1 downto 0 do
          out.(i) <- tb.(i) && (ta.(i) || i + 1 >= n || out.(i + 1))
        done;
        out
    | Eventually g ->
        let tg = truth g in
        let out = Array.make n false in
        for i = n - 1 downto 0 do
          out.(i) <- tg.(i) || (i + 1 < n && out.(i + 1))
        done;
        out
    | Always g ->
        let tg = truth g in
        let out = Array.make n false in
        for i = n - 1 downto 0 do
          out.(i) <- tg.(i) && (i + 1 >= n || out.(i + 1))
        done;
        out
  in
  truth formula

let eval_finite_at f trace i =
  let n = Array.length trace in
  if n = 0 then
    (* The empty trace: evaluate by the usual vacuous-truth rules. *)
    let rec empty_true g =
      let open Ltl in
      match g with
      | True -> true
      | False | Atom _ | Next _ | Until _ | Eventually _ -> false
      | Not g -> not (empty_true g)
      | And (a, b) -> empty_true a && empty_true b
      | Or (a, b) -> empty_true a || empty_true b
      | Implies (a, b) -> (not (empty_true a)) || empty_true b
      | Release _ | Always _ -> true
    in
    empty_true f
  else begin
    assert (i >= 0 && i < n);
    (finite_truth f trace).(i)
  end

let eval_finite f trace = eval_finite_at f trace 0

(* Lasso evaluation: positions 0 .. p+c-1 where the successor of the last
   position loops back to the start of the cycle.  Until is a least fixpoint
   and Release a greatest fixpoint on that graph. *)
let eval_lasso f ~prefix ~cycle =
  if Array.length cycle = 0 then invalid_arg "Trace.eval_lasso: empty cycle";
  let p = Array.length prefix and c = Array.length cycle in
  let n = p + c in
  let at i = if i < p then prefix.(i) else cycle.(i - p) in
  let succ i = if i + 1 < n then i + 1 else p in
  let memo = ref Fmap.empty in
  let rec truth g =
    match Fmap.find_opt g !memo with
    | Some arr -> arr
    | None ->
        let arr = compute g in
        memo := Fmap.add g arr !memo;
        arr
  and fixpoint ~init ~step =
    let out = Array.make n init in
    let changed = ref true in
    while !changed do
      changed := false;
      for i = n - 1 downto 0 do
        let v = step i out in
        if v <> out.(i) then begin
          out.(i) <- v;
          changed := true
        end
      done
    done;
    out
  and compute g =
    let open Ltl in
    match g with
    | True -> Array.make n true
    | False -> Array.make n false
    | Atom a -> Array.init n (fun i -> Symbol.mem a (at i))
    | Not h -> Array.map not (truth h)
    | And (a, b) -> Array.map2 ( && ) (truth a) (truth b)
    | Or (a, b) -> Array.map2 ( || ) (truth a) (truth b)
    | Implies (a, b) -> Array.map2 (fun x y -> (not x) || y) (truth a) (truth b)
    | Next h ->
        let th = truth h in
        Array.init n (fun i -> th.(succ i))
    | Until (a, b) ->
        let ta = truth a and tb = truth b in
        fixpoint ~init:false ~step:(fun i out -> tb.(i) || (ta.(i) && out.(succ i)))
    | Release (a, b) ->
        let ta = truth a and tb = truth b in
        fixpoint ~init:true ~step:(fun i out -> tb.(i) && (ta.(i) || out.(succ i)))
    | Eventually h ->
        let th = truth h in
        fixpoint ~init:false ~step:(fun i out -> th.(i) || out.(succ i))
    | Always h ->
        let th = truth h in
        fixpoint ~init:true ~step:(fun i out -> th.(i) && out.(succ i))
  in
  (truth f).(0)
