(** Linear temporal logic over named atomic propositions.

    Formulas are interpreted over infinite traces of symbols (sets of atoms)
    by the model checker in [Dpoaf_automata], and over finite traces by
    {!Trace} for empirical evaluation, mirroring the paper's two feedback
    channels (§4.2). *)

type t =
  | True
  | False
  | Atom of string
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Next of t  (** ◦ *)
  | Until of t * t  (** U *)
  | Release of t * t  (** R, dual of U *)
  | Eventually of t  (** ◇ *)
  | Always of t  (** □ *)

val compare : t -> t -> int
val equal : t -> t -> bool

val atom : string -> t
val neg : t -> t
val conj : t list -> t
(** N-ary conjunction; [conj \[\]] is [True]. *)

val disj : t list -> t
(** N-ary disjunction; [disj \[\]] is [False]. *)

val implies : t -> t -> t
val always : t -> t
val eventually : t -> t
val next : t -> t
val until : t -> t -> t
val release : t -> t -> t

val atoms : t -> Symbol.t
(** All atomic propositions occurring in the formula. *)

val size : t -> int
(** Number of AST nodes. *)

val nnf : t -> t
(** Negation normal form: negations pushed onto atoms, [Implies],
    [Eventually] and [Always] expanded into the core connectives
    ([Until]/[Release]).  The result satisfies {!is_nnf}. *)

val is_nnf : t -> bool
(** True when negation occurs only directly above atoms and no sugar
    ([Implies]/[Eventually]/[Always]) remains. *)

val pp : Format.formatter -> t -> unit
(** ASCII rendering: [G], [F], [X], [U], [R], [&], [|], [!], [->].  Atoms
    containing spaces are double-quoted. *)

val to_string : t -> string

val parse : string -> (t, string) result
(** Parse the {!pp} syntax.  Operators by loosening precedence:
    [!], [X]/[F]/[G] bind tightest, then [U]/[R] (right associative), [&],
    [|], and [->] (right associative).  Atoms are bare identifiers
    ([a-z A-Z 0-9 _ -]) or double-quoted strings that may contain spaces. *)

val parse_exn : string -> t
(** @raise Invalid_argument on parse errors. *)
