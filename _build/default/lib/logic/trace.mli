(** Trace semantics for LTL.

    Two interpretations are provided:

    - {b finite traces} (LTLf-style), used for the paper's empirical
      evaluation (§4.2): the simulator grounding [G(C,S)] produces a finite
      sequence in [(2^P × 2^{P_A})^N] which is checked directly;
    - {b lasso traces} ([prefix · cycle^ω]), used to interpret the
      counterexamples returned by the model checker and to cross-check the
      automata-theoretic model checker in tests. *)

type step = Symbol.t
(** One instant: the set of atoms true at that instant. *)

val eval_finite : Ltl.t -> step array -> bool
(** LTLf evaluation at position 0 with strong [Next] (false at the last
    position) and finite [Until]/[Release].  The empty trace satisfies only
    formulas that are vacuously true ([True], [Always _], [Release _],
    negations thereof). *)

val eval_finite_at : Ltl.t -> step array -> int -> bool
(** Evaluation starting from an arbitrary position. *)

val eval_lasso : Ltl.t -> prefix:step array -> cycle:step array -> bool
(** Evaluation of the infinite word [prefix · cycle^ω] at position 0.
    Until/Release are computed as least/greatest fixpoints on the lasso
    graph.  @raise Invalid_argument if [cycle] is empty. *)
