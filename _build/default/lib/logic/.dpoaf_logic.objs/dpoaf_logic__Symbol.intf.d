lib/logic/symbol.mli: Format Set
