lib/logic/trace.mli: Ltl Symbol
