lib/logic/ltl.ml: Format List Printf Stdlib String Symbol
