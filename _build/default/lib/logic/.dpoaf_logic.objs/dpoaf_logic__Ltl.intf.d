lib/logic/ltl.mli: Format Symbol
