lib/logic/symbol.ml: Format Set String
