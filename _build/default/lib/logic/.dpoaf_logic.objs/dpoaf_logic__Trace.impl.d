lib/logic/trace.ml: Array Ltl Map Symbol
