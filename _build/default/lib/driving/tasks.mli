(** Control-task prompts for the autonomous-driving system (§4.1 "Task
    Prompt Engineering").

    Tasks are split into training tasks (their preference pairs feed DPO)
    and validation tasks (held out, used for the generalization curve in
    the paper's Figure 9). *)

type split = Training | Validation

type t = {
  id : string;
  prompt : string;  (** e.g. "turn right at the traffic light" *)
  scenario : Models.scenario;
  split : split;
}

val all : t list
val training : t list
val validation : t list

val find : string -> t
(** Look up by [id].  @raise Not_found. *)

val query_text : t -> string
(** The first-stage prompt sent to the language model:
    ["Steps for \"<prompt>\""]. *)
