(** The fifteen LTL traffic-rule specifications Φ1..Φ15 (paper, Appendix C).

    Where the paper writes the generic "pedestrian", the formula expands to
    the disjunction of the three pedestrian propositions. *)

val phi : int -> Dpoaf_logic.Ltl.t
(** [phi i] for [i] in 1..15.  @raise Invalid_argument otherwise. *)

val all : (string * Dpoaf_logic.Ltl.t) list
(** [("phi_1", Φ1); …; ("phi_15", Φ15)]. *)

val first_five : (string * Dpoaf_logic.Ltl.t) list
(** Φ1..Φ5, the subset reported in the paper's Figure 11. *)

val count : int
