module Lexicon = Dpoaf_lang.Lexicon
module Ltl = Dpoaf_logic.Ltl

let green_traffic_light = "green traffic light"
let green_left_turn_light = "green left-turn light"
let flashing_left_turn_light = "flashing left-turn light"
let opposite_car = "opposite car"
let car_from_left = "car from left"
let car_from_right = "car from right"
let pedestrian_at_left = "pedestrian at left"
let pedestrian_at_right = "pedestrian at right"
let pedestrian_in_front = "pedestrian in front"
let stop_sign = "stop sign"

let act_stop = "stop"
let act_turn_left = "turn left"
let act_turn_right = "turn right"
let act_go_straight = "go straight"

let propositions =
  [
    green_traffic_light;
    green_left_turn_light;
    flashing_left_turn_light;
    opposite_car;
    car_from_left;
    car_from_right;
    pedestrian_at_left;
    pedestrian_at_right;
    pedestrian_in_front;
    stop_sign;
  ]

let actions = [ act_stop; act_turn_left; act_turn_right; act_go_straight ]

let synonyms_props =
  [
    (green_traffic_light, "traffic light");
    (green_traffic_light, "the light");
    (green_traffic_light, "traffic light turns green");
    (green_left_turn_light, "left turn light");
    (green_left_turn_light, "left-turn light");
    (green_left_turn_light, "left turn light turns green");
    (green_left_turn_light, "green left turn light");
    (flashing_left_turn_light, "flashing left turn light");
    (flashing_left_turn_light, "flashing arrow");
    (opposite_car, "oncoming traffic");
    (opposite_car, "oncoming car");
    (opposite_car, "traffic coming from the opposite direction");
    (car_from_left, "left approaching car");
    (car_from_left, "traffic coming from your left");
    (car_from_left, "car approaching from the left");
    (car_from_left, "vehicles on your left");
    (car_from_right, "right approaching car");
    (car_from_right, "traffic coming from your right");
    (car_from_right, "car approaching from the right");
    (pedestrian_at_right, "right side pedestrian");
    (pedestrian_at_right, "pedestrians on your right");
    (pedestrian_at_left, "left side pedestrian");
    (pedestrian_at_left, "pedestrians on your left");
    (pedestrian_in_front, "pedestrian crossing ahead");
    (pedestrian_in_front, "people crossing in front");
    (stop_sign, "the sign");
  ]

let synonyms_actions =
  [
    (act_go_straight, "move forward");
    (act_go_straight, "moving forward");
    (act_go_straight, "start moving forward");
    (act_go_straight, "drive forward");
    (act_go_straight, "proceed through the intersection");
    (act_go_straight, "cross the intersection");
    (act_turn_right, "turn your vehicle right");
    (act_turn_right, "make a right turn");
    (act_turn_right, "right turn");
    (act_turn_left, "turn your vehicle left");
    (act_turn_left, "make a left turn");
    (act_turn_left, "left turn");
    (act_stop, "come to a stop");
    (act_stop, "brake");
    (act_stop, "halt");
    (act_stop, "wait");
  ]

let lexicon () =
  let lex = Lexicon.create ~props:propositions ~actions in
  List.iter
    (fun (canonical, phrase) ->
      Lexicon.add_synonym lex Lexicon.Proposition ~canonical ~phrase)
    synonyms_props;
  List.iter
    (fun (canonical, phrase) ->
      Lexicon.add_synonym lex Lexicon.Action ~canonical ~phrase)
    synonyms_actions;
  lex

let any_pedestrian =
  Ltl.disj
    [
      Ltl.atom pedestrian_at_left;
      Ltl.atom pedestrian_at_right;
      Ltl.atom pedestrian_in_front;
    ]
