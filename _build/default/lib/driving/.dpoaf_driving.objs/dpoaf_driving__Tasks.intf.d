lib/driving/tasks.mli: Models
