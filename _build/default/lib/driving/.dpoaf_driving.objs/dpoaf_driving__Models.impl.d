lib/driving/models.ml: Dpoaf_automata Dpoaf_logic Hashtbl List Vocab
