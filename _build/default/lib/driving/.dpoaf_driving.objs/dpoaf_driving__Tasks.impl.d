lib/driving/tasks.ml: List Models Printf
