lib/driving/responses.mli: Tasks
