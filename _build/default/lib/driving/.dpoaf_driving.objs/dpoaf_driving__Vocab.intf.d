lib/driving/vocab.mli: Dpoaf_lang Dpoaf_logic
