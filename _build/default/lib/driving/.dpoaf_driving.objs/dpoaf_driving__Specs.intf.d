lib/driving/specs.mli: Dpoaf_logic
