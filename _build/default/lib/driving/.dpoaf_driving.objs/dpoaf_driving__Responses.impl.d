lib/driving/responses.ml: List Tasks
