lib/driving/vocab.ml: Dpoaf_lang Dpoaf_logic List
