lib/driving/specs.ml: Array Dpoaf_logic List Printf Vocab
