lib/driving/models.mli: Dpoaf_automata
