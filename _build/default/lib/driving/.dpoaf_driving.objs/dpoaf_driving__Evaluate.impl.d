lib/driving/evaluate.ml: Dpoaf_automata Dpoaf_lang Lazy List Models Specs Vocab
