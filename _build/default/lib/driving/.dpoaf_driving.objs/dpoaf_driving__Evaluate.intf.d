lib/driving/evaluate.mli: Dpoaf_automata Dpoaf_lang Dpoaf_logic
