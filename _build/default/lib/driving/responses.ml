type quality = Good | Risky | Bad

type step = { text : string; quality : quality }

let g text = { text; quality = Good }
let r text = { text; quality = Risky }
let b text = { text; quality = Bad }

let observations task =
  match task.Tasks.id with
  | "right_turn_tl" | "go_straight_tl" ->
      [
        g "observe the state of the green traffic light";
        g "look straight ahead and watch for the traffic light";
        g "observe the state of the car from left";
        g "check the state of the pedestrian at right";
        g "wait for the green traffic light";
      ]
  | "left_turn_ll" ->
      [
        g "observe the state of the green left-turn light";
        g "wait for the left-turn light to turn green";
        g "check for oncoming traffic";
      ]
  | "go_straight_stop" | "right_turn_stop" | "left_turn_stop" ->
      [
        g "observe the state of the stop sign";
        g "execute the action stop";
        g "observe the state of the car from left";
        g "check the state of the car from right";
      ]
  | "enter_roundabout" ->
      [
        g "observe the state of the car from left";
        g "check the state of the pedestrian at left";
      ]
  | "left_turn_median" ->
      [
        g "observe the state of the car from left";
        g "check the state of the car from right";
      ]
  | _ -> [ g "observe the state of the car from left" ]

let finals task =
  match task.Tasks.id with
  | "right_turn_tl" ->
      [
        g "if no car from left and no pedestrian at right, execute the action turn right";
        r "if the pedestrian at right is not present, execute the action turn right";
        r "if the green traffic light is on, execute the action turn right";
        r "if the green traffic light is on, execute the action go straight";
        b "if it is safe, turn your vehicle right";
        b "execute the action turn right";
      ]
  | "go_straight_tl" ->
      [
        g "if the green traffic light is on and no pedestrian in front, execute the action go straight";
        r "if the green traffic light is on, execute the action go straight";
        r "if no pedestrian in front, execute the action go straight";
        b "if it is safe, start moving forward";
        b "execute the action go straight";
      ]
  | "left_turn_ll" ->
      [
        g "if the green left-turn light is on, execute the action turn left";
        g "if the green left-turn light is on and no opposite car, execute the action turn left";
        r "if no opposite car, execute the action turn left";
        r "if the opposite car is not present, execute the action turn left";
        b "turn left and proceed through the intersection";
        b "if it is safe, turn your vehicle left";
      ]
  | "go_straight_stop" ->
      [
        g "if no car from left and no car from right and no pedestrian in front, execute the action go straight";
        r "if no car from left and no car from right, execute the action go straight";
        r "if no car from left, execute the action go straight";
        b "execute the action go straight";
        b "if it is safe, start moving forward";
      ]
  | "right_turn_stop" ->
      [
        g "if no car from left and no pedestrian at right, execute the action turn right";
        r "if the pedestrian at right is not present, execute the action turn right";
        r "if no car from right, execute the action turn right";
        b "execute the action turn right";
        b "if it is safe, turn your vehicle right";
      ]
  | "enter_roundabout" ->
      [
        g "if no car from left and no pedestrian at left, execute the action turn right";
        r "if no pedestrian at left, execute the action turn right";
        r "if no car from left, execute the action turn right";
        b "execute the action turn right";
      ]
  | "left_turn_stop" ->
      [
        g "if no car from left and no car from right and no opposite car, execute the action turn left";
        r "if no car from left and no car from right, execute the action turn left";
        r "if no car from left, execute the action turn left";
        b "execute the action turn left";
        b "if it is safe, turn your vehicle left";
      ]
  | "left_turn_median" ->
      [
        g "if no car from left and no car from right and no opposite car, execute the action turn left";
        r "if no car from left and no car from right, execute the action turn left";
        r "if no car from right, execute the action turn left";
        b "turn left and proceed through the intersection";
        b "execute the action turn left";
      ]
  | _ -> [ b "execute the action stop" ]

let candidate_steps task =
  List.map (fun s -> s.text) (observations task @ finals task)

(* §5.1, raw response before fine-tuning. *)
let right_turn_before_ft =
  [
    "1. Look straight ahead and watch for the traffic light.";
    "2. If the traffic light turns green, start moving forward.";
    "3. As you approach the intersection, observe the state of the car from left.";
    "4. If the car from left is not present, check the state of the pedestrian at right.";
    "5. If the pedestrian at right is not present, execute the action turn right.";
  ]

let right_turn_after_ft =
  [
    "1. Observe the state of the green traffic light.";
    "2. Check for the left approaching car and right side pedestrian.";
    "3. If no car from left and no pedestrian at right, execute the action turn right.";
  ]

(* Appendix C, left-turn example. *)
let left_turn_before_ft =
  [
    "1. Observe the state of the green left-turn light.";
    "2. Wait for the left-turn light to turn green.";
    "3. If the opposite car is not present, execute the action turn left.";
    "4. Turn left and proceed through the intersection.";
  ]

let left_turn_after_ft =
  [
    "1. Observe the state of the green left-turn light.";
    "2. If the green left-turn light is on, execute the action turn left.";
  ]
