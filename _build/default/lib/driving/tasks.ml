type split = Training | Validation

type t = { id : string; prompt : string; scenario : Models.scenario; split : split }

let all =
  [
    {
      id = "right_turn_tl";
      prompt = "turn right at the traffic light";
      scenario = Models.Traffic_light;
      split = Training;
    };
    {
      id = "go_straight_tl";
      prompt = "go straight at the traffic light";
      scenario = Models.Traffic_light;
      split = Training;
    };
    {
      id = "left_turn_ll";
      prompt = "turn left at the traffic light";
      scenario = Models.Left_turn_light;
      split = Training;
    };
    {
      id = "go_straight_stop";
      prompt = "go straight at the two-way stop sign";
      scenario = Models.Two_way_stop;
      split = Training;
    };
    {
      id = "right_turn_stop";
      prompt = "turn right at the stop sign";
      scenario = Models.Two_way_stop;
      split = Training;
    };
    {
      id = "enter_roundabout";
      prompt = "enter the roundabout";
      scenario = Models.Roundabout;
      split = Training;
    };
    {
      id = "left_turn_stop";
      prompt = "turn left at the stop sign";
      scenario = Models.Two_way_stop;
      split = Validation;
    };
    {
      id = "left_turn_median";
      prompt = "turn left through the wide median";
      scenario = Models.Wide_median;
      split = Validation;
    };
  ]

let training = List.filter (fun t -> t.split = Training) all
let validation = List.filter (fun t -> t.split = Validation) all

let find id =
  match List.find_opt (fun t -> t.id = id) all with
  | Some t -> t
  | None -> raise Not_found

let query_text t = Printf.sprintf "Steps for %S" t.prompt
