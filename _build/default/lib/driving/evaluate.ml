module Glm2fsa = Dpoaf_lang.Glm2fsa
module Model_checker = Dpoaf_automata.Model_checker

let shared_lexicon = lazy (Vocab.lexicon ())

let lexicon () = Lazy.force shared_lexicon

let controller_of_steps ~name steps =
  Glm2fsa.of_steps ~name (lexicon ()) steps

let verdicts ?model controller =
  let model = match model with Some m -> m | None -> Models.universal () in
  Model_checker.verify_all ~model ~controller ~specs:Specs.all

let count_specs ?model controller =
  verdicts ?model controller
  |> List.filter (fun (_, _, v) -> Model_checker.is_holds v)
  |> List.length

let count_specs_of_steps ?model steps =
  let controller, _stats = controller_of_steps ~name:"response" steps in
  count_specs ?model controller
