(** Candidate instruction steps per task — the response space of the
    (simulated) language model.

    A response to a task prompt is a short sequence of steps drawn from the
    task's candidate pool.  Pools deliberately mix fully guarded steps,
    partially guarded steps (the paper's Φ5-style flaw: a turn that checks
    pedestrians but not cars), unconditional actions, and noisy phrasings
    that stress the alignment stage.  Which mixture the language model
    prefers is exactly what DPO-AF fine-tunes. *)

type quality = Good | Risky | Bad

type step = { text : string; quality : quality }

val observations : Tasks.t -> step list
(** Observation / wait steps (quality [Good]; they never violate specs). *)

val finals : Tasks.t -> step list
(** Action-bearing steps that can complete the task, tagged by quality. *)

val candidate_steps : Tasks.t -> string list
(** All step texts for the task (observations then finals). *)

(** {1 Paper worked examples (§5.1 and Appendix C)} *)

val right_turn_before_ft : string list
(** The pre-fine-tuning response for "turn right at the traffic light". *)

val right_turn_after_ft : string list

val left_turn_before_ft : string list
val left_turn_after_ft : string list
