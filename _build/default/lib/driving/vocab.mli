(** The autonomous-driving vocabulary from the paper (§5.1).

    Propositions describe what the vehicle perceives; actions are the
    control outputs.  The lexicon carries the synonyms needed to align the
    paper's example phrasings. *)

val green_traffic_light : string
val green_left_turn_light : string
val flashing_left_turn_light : string
val opposite_car : string
val car_from_left : string
val car_from_right : string
val pedestrian_at_left : string
val pedestrian_at_right : string
val pedestrian_in_front : string
val stop_sign : string

val act_stop : string
val act_turn_left : string
val act_turn_right : string
val act_go_straight : string

val propositions : string list
(** The ten propositions, in the paper's order. *)

val actions : string list
(** The four actions. *)

val lexicon : unit -> Dpoaf_lang.Lexicon.t
(** Fresh lexicon over the vocabulary, loaded with driving synonyms
    ("oncoming traffic" → opposite car, "left approaching car" →
    car from left, …). *)

val any_pedestrian : Dpoaf_logic.Ltl.t
(** [pedestrian at left ∨ pedestrian at right ∨ pedestrian in front] — the
    expansion used where the paper's specifications write the generic
    "pedestrian". *)
