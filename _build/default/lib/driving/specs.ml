open Dpoaf_logic.Ltl
module V = Vocab

let a = atom
let ( => ) = implies
let ( &&& ) x y = And (x, y)
let ( ||| ) x y = Or (x, y)

let green = a V.green_traffic_light
let green_ll = a V.green_left_turn_light
let opposite = a V.opposite_car
let car_left = a V.car_from_left
let car_right = a V.car_from_right
let ped_right = a V.pedestrian_at_right
let ped_front = a V.pedestrian_in_front
let sign = a V.stop_sign
let stop = a V.act_stop
let turn_left = a V.act_turn_left
let turn_right = a V.act_turn_right
let go_straight = a V.act_go_straight

let formulas =
  [|
    (* Φ1 *) always (V.any_pedestrian => eventually stop);
    (* Φ2 *) always ((opposite &&& neg green_ll) => neg turn_left);
    (* Φ3 *) always (neg green => neg go_straight);
    (* Φ4 *) always (sign => eventually stop);
    (* Φ5 *) always ((car_left ||| ped_right) => neg turn_right);
    (* Φ6 *) always (stop ||| go_straight ||| turn_left ||| turn_right);
    (* Φ7 *) eventually (green ||| green_ll) => eventually (neg stop);
    (* Φ8 *) always (neg green => eventually stop);
    (* Φ9 *) always (car_left => neg (turn_left ||| turn_right));
    (* Φ10 *) always (green => eventually (neg stop));
    (* Φ11 *) always ((turn_right &&& neg green) => neg car_left);
    (* Φ12 *)
    always
      ((turn_left &&& neg green_ll)
      => (neg car_right &&& neg car_left &&& neg opposite));
    (* Φ13 *)
    always ((sign &&& neg car_left &&& neg car_right) => eventually (neg stop));
    (* Φ14 *) always (go_straight => neg ped_front);
    (* Φ15 *) always ((turn_right &&& sign) => neg car_left);
  |]

let count = Array.length formulas

let phi i =
  if i < 1 || i > count then invalid_arg "Specs.phi: index out of range 1..15"
  else formulas.(i - 1)

let all = List.init count (fun i -> (Printf.sprintf "phi_%d" (i + 1), formulas.(i)))

let first_five = List.filteri (fun i _ -> i < 5) all
