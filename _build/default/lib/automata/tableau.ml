module Ltl = Dpoaf_logic.Ltl
module Symbol = Dpoaf_logic.Symbol
module Fset = Set.Make (Ltl)
module Iset = Set.Make (Int)

(* A tableau node under construction.  [incoming] holds the names of
   completed predecessor nodes (0 is the virtual initial node). *)
type node = {
  name : int;
  incoming : Iset.t;
  new_ : Fset.t;
  old : Fset.t;
  next : Fset.t;
}

type completed = { c_name : int; c_incoming : Iset.t ref; c_old : Fset.t; c_next : Fset.t }

let init_name = 0

let gnba_of_ltl formula =
  let formula = Ltl.nnf formula in
  let counter = ref 0 in
  let fresh () = incr counter; !counter in
  let completed : completed list ref = ref [] in
  let rec expand node =
    if Fset.is_empty node.new_ then
      match
        List.find_opt
          (fun c -> Fset.equal c.c_old node.old && Fset.equal c.c_next node.next)
          !completed
      with
      | Some c -> c.c_incoming := Iset.union !(c.c_incoming) node.incoming
      | None ->
          let c =
            {
              c_name = node.name;
              c_incoming = ref node.incoming;
              c_old = node.old;
              c_next = node.next;
            }
          in
          completed := c :: !completed;
          expand
            {
              name = fresh ();
              incoming = Iset.singleton node.name;
              new_ = node.next;
              old = Fset.empty;
              next = Fset.empty;
            }
    else
      let f = Fset.choose node.new_ in
      let new_ = Fset.remove f node.new_ in
      let node = { node with new_ } in
      match f with
      | Ltl.False -> ()
      | Ltl.True -> expand { node with old = Fset.add f node.old }
      | Ltl.Atom a ->
          if Fset.mem (Ltl.Not (Ltl.Atom a)) node.old then ()
          else expand { node with old = Fset.add f node.old }
      | Ltl.Not (Ltl.Atom a) ->
          if Fset.mem (Ltl.Atom a) node.old then ()
          else expand { node with old = Fset.add f node.old }
      | Ltl.And (a, b) ->
          expand
            {
              node with
              new_ = Fset.add a (Fset.add b node.new_);
              old = Fset.add f node.old;
            }
      | Ltl.Or (a, b) ->
          let old = Fset.add f node.old in
          expand { node with name = fresh (); new_ = Fset.add a node.new_; old };
          expand { node with name = fresh (); new_ = Fset.add b node.new_; old }
      | Ltl.Until (a, b) ->
          let old = Fset.add f node.old in
          expand
            {
              node with
              name = fresh ();
              new_ = Fset.add a node.new_;
              old;
              next = Fset.add f node.next;
            };
          expand { node with name = fresh (); new_ = Fset.add b node.new_; old }
      | Ltl.Release (a, b) ->
          let old = Fset.add f node.old in
          expand
            {
              node with
              name = fresh ();
              new_ = Fset.add b node.new_;
              old;
              next = Fset.add f node.next;
            };
          expand
            {
              node with
              name = fresh ();
              new_ = Fset.add a (Fset.add b node.new_);
              old;
            }
      | Ltl.Next g ->
          expand
            { node with old = Fset.add f node.old; next = Fset.add g node.next }
      | Ltl.Not _ | Ltl.Implies _ | Ltl.Eventually _ | Ltl.Always _ ->
          (* impossible: the input was normalized to NNF *)
          assert false
  in
  expand
    {
      name = fresh ();
      incoming = Iset.singleton init_name;
      new_ = Fset.singleton formula;
      old = Fset.empty;
      next = Fset.empty;
    };
  let nodes = Array.of_list (List.rev !completed) in
  let n = Array.length nodes in
  let index_of_name = Hashtbl.create n in
  Array.iteri (fun i c -> Hashtbl.add index_of_name c.c_name i) nodes;
  let initial = ref [] in
  let succs = Array.make n [] in
  Array.iteri
    (fun i c ->
      Iset.iter
        (fun pred ->
          if pred = init_name then initial := i :: !initial
          else
            match Hashtbl.find_opt index_of_name pred with
            | Some j -> succs.(j) <- i :: succs.(j)
            | None -> ())
        !(c.c_incoming))
    nodes;
  let pos =
    Array.map
      (fun c ->
        Fset.fold
          (fun f acc -> match f with Ltl.Atom a -> Symbol.add a acc | _ -> acc)
          c.c_old Symbol.empty)
      nodes
  in
  let neg =
    Array.map
      (fun c ->
        Fset.fold
          (fun f acc ->
            match f with Ltl.Not (Ltl.Atom a) -> Symbol.add a acc | _ -> acc)
          c.c_old Symbol.empty)
      nodes
  in
  (* One acceptance set per Until subformula of the normalized formula. *)
  let untils =
    let rec collect f acc =
      let acc = match f with Ltl.Until _ -> Fset.add f acc | _ -> acc in
      match f with
      | Ltl.True | Ltl.False | Ltl.Atom _ -> acc
      | Ltl.Not g | Ltl.Next g | Ltl.Eventually g | Ltl.Always g -> collect g acc
      | Ltl.And (a, b) | Ltl.Or (a, b) | Ltl.Implies (a, b)
      | Ltl.Until (a, b) | Ltl.Release (a, b) ->
          collect a (collect b acc)
    in
    Fset.elements (collect formula Fset.empty)
  in
  let accept =
    Array.of_list
      (List.map
         (fun u ->
           let b = match u with Ltl.Until (_, b) -> b | _ -> assert false in
           List.filter
             (fun i -> Fset.mem b nodes.(i).c_old || not (Fset.mem u nodes.(i).c_old))
             (List.init n Fun.id))
         untils)
  in
  {
    Buchi.n;
    initial = List.sort_uniq compare !initial;
    pos;
    neg;
    succs = Array.map (List.sort_uniq compare) succs;
    accept;
  }
