(** Finite-state-automaton controllers.

    A controller [A = ⟨Σ, A, Q, q₀, δ⟩] maps environment observations
    (symbols over the proposition set [P]) to actions (symbols over [P_A]).
    Transitions are guarded by boolean conditions over the observation and
    emit an action symbol, following the paper's §3 definition with
    [δ : Q × Σ × A × Q → {0,1}]. *)

type guard =
  | Gtrue
  | Gatom of string
  | Gnot of guard
  | Gand of guard * guard
  | Gor of guard * guard

val eval_guard : guard -> Dpoaf_logic.Symbol.t -> bool

val guard_conj : guard list -> guard
(** Conjunction; empty list is [Gtrue]. *)

val pp_guard : Format.formatter -> guard -> unit

type state = int

type transition = {
  src : state;
  guard : guard;
  action : Dpoaf_logic.Symbol.t;  (** over [P_A]; may be empty (ε). *)
  dst : state;
}

type t = private {
  name : string;
  n_states : int;
  init : state;
  state_names : string array;
  transitions : transition list;
}

val make :
  name:string ->
  n_states:int ->
  init:state ->
  ?state_names:string array ->
  transitions:transition list ->
  unit ->
  t
(** @raise Invalid_argument on out-of-range states. *)

val enabled : t -> state -> Dpoaf_logic.Symbol.t -> (Dpoaf_logic.Symbol.t * state) list
(** [enabled c q σ] lists the (action, successor) pairs of transitions whose
    guard is satisfied by [σ].  Non-deterministic controllers may return
    several. *)

val is_input_enabled : t -> over:Dpoaf_logic.Symbol.t list -> bool
(** True when every state has at least one enabled transition for every
    symbol of [over]. *)

val actions : t -> Dpoaf_logic.Symbol.t
(** All action atoms mentioned by any transition. *)

val guard_atoms : t -> Dpoaf_logic.Symbol.t
(** All observation atoms mentioned by any guard. *)

val pp : Format.formatter -> t -> unit
