(** Product automaton [𝔓 = M ⊗ C] (paper, Appendix A).

    States are pairs of a model state and a controller state.  An edge
    exists when the controller, reading the model state's label, has an
    enabled transition emitting some action [a], and the model can move to a
    successor; the edge is labeled [λ_M(p) ∪ a ⊆ P ∪ P_A].

    Because the paper's traces label {e transitions}, the Kripke encoding
    used for model checking has one state per product {e edge}. *)

type pstate = { model_state : Ts.state; ctrl_state : Fsa.state }

type edge = {
  src : pstate;
  label : Dpoaf_logic.Symbol.t;  (** [λ_M(p) ∪ a] *)
  action : Dpoaf_logic.Symbol.t;  (** the [a] component alone *)
  dst : pstate;
}

type t = private {
  model : Ts.t;
  controller : Fsa.t;
  states : pstate list;  (** reachable product states *)
  edges : edge list;
  initial : pstate list;  (** [{(p, q₀) | p ∈ initial(M)}] *)
  deadlocks : pstate list;  (** reachable states with no outgoing edge *)
}

val build : model:Ts.t -> controller:Fsa.t -> t

val pp_pstate : t -> Format.formatter -> pstate -> unit

val to_kripke : t -> Kripke.t
(** Transition-labeled Kripke encoding: one Kripke state per product edge,
    labeled with the edge label; deadlocked product states become stuttering
    sink states labeled [λ_M(p)] (no action atoms).  The result is total. *)
