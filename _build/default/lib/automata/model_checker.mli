(** LTL model checking of controllers implemented in world models — the
    repository's substitute for NuSMV (§4.2, "Formal Verification").

    [M ⊗ C ⊨ Φ] is decided by building the Büchi automaton of [¬Φ],
    composing it with the product automaton's Kripke encoding, and searching
    for an accepting lasso.  Failures come with a counterexample trace like
    the one discussed in the paper's right-turn example. *)

type counterexample = {
  prefix : Dpoaf_logic.Symbol.t list;
  cycle : Dpoaf_logic.Symbol.t list;  (** non-empty; repeats forever *)
  prefix_descr : string list;  (** human-readable state descriptions *)
  cycle_descr : string list;
  prefix_tags : int list;
      (** provenance tag (controller step) per instant; [-1] if untagged *)
  cycle_tags : int list;
}

type verdict = Holds | Fails of counterexample

val is_holds : verdict -> bool

val check_kripke : Kripke.t -> Dpoaf_logic.Ltl.t -> verdict
(** Check an arbitrary (stutter-extended if needed) Kripke structure. *)

val check : model:Ts.t -> controller:Fsa.t -> Dpoaf_logic.Ltl.t -> verdict
(** [check ~model ~controller Φ] decides [M ⊗ C ⊨ Φ] over all initial
    model states. *)

val verify_all :
  model:Ts.t ->
  controller:Fsa.t ->
  specs:(string * Dpoaf_logic.Ltl.t) list ->
  (string * Dpoaf_logic.Ltl.t * verdict) list
(** Verify every named specification; the product is built once. *)

val count_satisfied :
  model:Ts.t -> controller:Fsa.t -> specs:(string * Dpoaf_logic.Ltl.t) list -> int
(** Number of specifications that hold — the paper's ranking signal. *)

val blame : spec:Dpoaf_logic.Ltl.t -> counterexample -> int list
(** The distinct non-negative provenance tags of the lasso instants where
    the violation manifests — for an invariant [□ body] with propositional
    [body], the instants where [body] is false (for product
    counterexamples these are the controller steps at fault); for other
    specification shapes, every tagged instant on the lasso. *)

val pp_verdict : Format.formatter -> verdict -> unit
