module Ltl = Dpoaf_logic.Ltl
module Symbol = Dpoaf_logic.Symbol

let ident s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
         || c = '_'
      then Buffer.add_char b c
      else if c = ' ' || c = '-' then Buffer.add_char b '_')
    s;
  let out = Buffer.contents b in
  if out = "" then "p" else out

let rec of_ltl f =
  let prec g =
    match g with
    | Ltl.Implies _ -> 1
    | Ltl.Or _ -> 2
    | Ltl.And _ -> 3
    | Ltl.Until _ | Ltl.Release _ -> 4
    | Ltl.Not _ | Ltl.Next _ | Ltl.Eventually _ | Ltl.Always _ -> 5
    | Ltl.True | Ltl.False | Ltl.Atom _ -> 6
  in
  let paren level g =
    let s = of_ltl g in
    if prec g < level then "(" ^ s ^ ")" else s
  in
  match f with
  | Ltl.True -> "TRUE"
  | Ltl.False -> "FALSE"
  | Ltl.Atom a -> ident a
  | Ltl.Not g -> "!" ^ paren 6 g
  | Ltl.Next g -> "X " ^ paren 5 g
  | Ltl.Eventually g -> "F " ^ paren 5 g
  | Ltl.Always g -> "G " ^ paren 5 g
  | Ltl.And (a, b) -> paren 3 a ^ " & " ^ paren 4 b
  | Ltl.Or (a, b) -> paren 2 a ^ " | " ^ paren 3 b
  | Ltl.Implies (a, b) -> paren 2 a ^ " -> " ^ paren 1 b
  | Ltl.Until (a, b) -> paren 5 a ^ " U " ^ paren 4 b
  | Ltl.Release (a, b) -> paren 5 a ^ " V " ^ paren 4 b

let atoms_of_kripke k =
  Array.fold_left (fun acc l -> Symbol.union acc l) Symbol.empty k.Kripke.labels

let of_kripke ~name k ~specs =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let n = Kripke.n_states k in
  out "MODULE %s\n" (ident name);
  out "VAR\n  state : 0..%d;\n" (max 0 (n - 1));
  out "DEFINE\n";
  Symbol.iter
    (fun atom ->
      let holders =
        List.filter
          (fun i -> Symbol.mem atom k.Kripke.labels.(i))
          (List.init n Fun.id)
      in
      let expr =
        match holders with
        | [] -> "FALSE"
        | _ ->
            String.concat " | "
              (List.map (fun i -> Printf.sprintf "state = %d" i) holders)
      in
      out "  %s := %s;\n" (ident atom) expr)
    (atoms_of_kripke k);
  let init_expr =
    match k.Kripke.initial with
    | [] -> "FALSE"
    | l -> String.concat " | " (List.map (fun i -> Printf.sprintf "state = %d" i) l)
  in
  out "INIT\n  %s\n" init_expr;
  out "TRANS\n  case\n";
  Array.iteri
    (fun i succ ->
      let nexts =
        match succ with
        | [] -> "next(state) = state"
        | l ->
            String.concat " | "
              (List.map (fun j -> Printf.sprintf "next(state) = %d" j) l)
      in
      out "    state = %d : %s;\n" i nexts)
    k.Kripke.succs;
  out "    TRUE : FALSE;\n  esac\n";
  List.iteri
    (fun i (spec_name, phi) ->
      out "LTLSPEC NAME %s := %s; -- %s\n"
        (ident (if spec_name = "" then Printf.sprintf "phi_%d" (i + 1) else spec_name))
        (of_ltl phi) (Ltl.to_string phi))
    specs;
  Buffer.contents buf

let rec guard_to_smv = function
  | Fsa.Gtrue -> "TRUE"
  | Fsa.Gatom a -> ident a
  | Fsa.Gnot g -> "!(" ^ guard_to_smv g ^ ")"
  | Fsa.Gand (a, b) -> "(" ^ guard_to_smv a ^ " & " ^ guard_to_smv b ^ ")"
  | Fsa.Gor (a, b) -> "(" ^ guard_to_smv a ^ " | " ^ guard_to_smv b ^ ")"

let of_controller ~name (c : Fsa.t) ~props =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "MODULE %s\n" (ident name);
  out "VAR\n";
  List.iter (fun p -> out "  %s : boolean;\n" (ident p)) props;
  let actions = Symbol.elements (Fsa.actions c) in
  let action_names = List.map ident actions in
  out "  loc : 0..%d;\n" (max 0 (c.Fsa.n_states - 1));
  out "  action : {%s};\n"
    (String.concat ", " (if action_names = [] then [ "none" ] else action_names));
  out "ASSIGN\n  init(loc) := %d;\n" c.Fsa.init;
  out "TRANS\n  case\n";
  List.iter
    (fun tr ->
      let act =
        match Symbol.elements tr.Fsa.action with
        | [] -> "TRUE"
        | a :: _ -> Printf.sprintf "next(action) = %s" (ident a)
      in
      out "    loc = %d & %s : next(loc) = %d & %s;\n" tr.Fsa.src
        (guard_to_smv tr.Fsa.guard) tr.Fsa.dst act)
    c.Fsa.transitions;
  out "    TRUE : next(loc) = loc;\n  esac\n";
  Buffer.contents buf
