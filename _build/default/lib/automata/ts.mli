(** Automaton-based world models (the paper's transition system [M]).

    A model [M = ⟨Γ_M, Q_M, δ_M, λ_M⟩] has states labeled with symbols
    (sets of atomic propositions) and a non-deterministic transition
    relation.  Models encode a scenario's environment dynamics — e.g. the
    traffic-light intersection of Figure 5. *)

type state = int

type t = private {
  name : string;  (** Model name, for reports. *)
  state_names : string array;
  labels : Dpoaf_logic.Symbol.t array;  (** [λ_M] *)
  succs : state list array;  (** [δ_M], sorted, deduplicated *)
  initial : state list;  (** Verification considers every initial state. *)
}

val make :
  name:string ->
  states:(string * Dpoaf_logic.Symbol.t) list ->
  transitions:(string * string) list ->
  ?initial:string list ->
  unit ->
  t
(** [make ~name ~states ~transitions ()] builds a model from named states.
    [transitions] are pairs of state names; [initial] defaults to all states
    (the paper verifies "for all the possible initial states").
    @raise Invalid_argument on unknown state names or duplicate states. *)

val of_propositions :
  name:string ->
  props:string list ->
  allowed:(Dpoaf_logic.Symbol.t -> Dpoaf_logic.Symbol.t -> bool) ->
  ?keep_isolated:bool ->
  unit ->
  t
(** Algorithm 1 from the paper: build one state per element of [2^props],
    keep the transitions the system allows, and (unless [keep_isolated])
    remove states with no incoming and no outgoing transitions.
    @raise Invalid_argument when [props] has more than 20 elements. *)

val n_states : t -> int
val label : t -> state -> Dpoaf_logic.Symbol.t
val successors : t -> state -> state list
val state_of_name : t -> string -> state
(** @raise Not_found on unknown names. *)

val union : name:string -> t list -> t
(** Disjoint union of models — the paper's "universal model" integrating all
    scenarios.  Initial states are the concatenation of the parts'. *)

val propositions : t -> Dpoaf_logic.Symbol.t
(** All atoms used by any state label. *)

val is_total : t -> bool
(** True when every state has at least one successor. *)

val pp : Format.formatter -> t -> unit
