(** LTL satisfiability via Büchi emptiness.

    A formula is satisfiable iff its tableau automaton has an accepting
    run; the witness lasso is read off the run's node labels.  Used to
    sanity-check rule books: an inconsistent specification set would make
    every controller fail and the ranking feedback meaningless. *)

val is_satisfiable : Dpoaf_logic.Ltl.t -> bool

val witness :
  Dpoaf_logic.Ltl.t ->
  (Dpoaf_logic.Symbol.t array * Dpoaf_logic.Symbol.t array) option
(** A [(prefix, cycle)] lasso whose infinite word satisfies the formula,
    or [None] when unsatisfiable.  Each instant carries exactly the atoms
    the tableau node requires positively. *)
