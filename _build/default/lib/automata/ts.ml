module Symbol = Dpoaf_logic.Symbol

type state = int

type t = {
  name : string;
  state_names : string array;
  labels : Symbol.t array;
  succs : state list array;
  initial : state list;
}

let make ~name ~states ~transitions ?initial () =
  let n = List.length states in
  let state_names = Array.of_list (List.map fst states) in
  let labels = Array.of_list (List.map snd states) in
  let index = Hashtbl.create n in
  Array.iteri
    (fun i nm ->
      if Hashtbl.mem index nm then
        invalid_arg (Printf.sprintf "Ts.make: duplicate state %s" nm);
      Hashtbl.add index nm i)
    state_names;
  let lookup nm =
    match Hashtbl.find_opt index nm with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "Ts.make: unknown state %s" nm)
  in
  let succs = Array.make n [] in
  List.iter
    (fun (a, b) ->
      let i = lookup a and j = lookup b in
      succs.(i) <- j :: succs.(i))
    transitions;
  Array.iteri (fun i l -> succs.(i) <- List.sort_uniq compare l) succs;
  let initial =
    match initial with
    | None -> List.init n Fun.id
    | Some names -> List.sort_uniq compare (List.map lookup names)
  in
  { name; state_names; labels; succs; initial }

let of_propositions ~name ~props ~allowed ?(keep_isolated = false) () =
  let props = List.sort_uniq compare props in
  let k = List.length props in
  if k > 20 then invalid_arg "Ts.of_propositions: too many propositions";
  let parr = Array.of_list props in
  let n = 1 lsl k in
  let label_of i =
    let rec collect j acc =
      if j >= k then acc
      else collect (j + 1) (if i land (1 lsl j) <> 0 then Symbol.add parr.(j) acc else acc)
    in
    collect 0 Symbol.empty
  in
  let labels = Array.init n label_of in
  let succs = Array.make n [] in
  let has_incoming = Array.make n false in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if allowed labels.(i) labels.(j) then begin
        succs.(i) <- j :: succs.(i);
        has_incoming.(j) <- true
      end
    done;
    succs.(i) <- List.rev succs.(i)
  done;
  let keep i = keep_isolated || succs.(i) <> [] || has_incoming.(i) in
  let kept = List.filter keep (List.init n Fun.id) in
  let remap = Hashtbl.create (List.length kept) in
  List.iteri (fun fresh old -> Hashtbl.add remap old fresh) kept;
  let kept_arr = Array.of_list kept in
  let m = Array.length kept_arr in
  {
    name;
    state_names = Array.map (fun i -> Symbol.to_string labels.(i)) kept_arr;
    labels = Array.map (fun i -> labels.(i)) kept_arr;
    succs =
      Array.init m (fun fresh ->
          List.filter_map (fun j -> Hashtbl.find_opt remap j) succs.(kept_arr.(fresh)));
    initial = List.init m Fun.id;
  }

let n_states t = Array.length t.labels
let label t s = t.labels.(s)
let successors t s = t.succs.(s)

let state_of_name t nm =
  let found = ref (-1) in
  Array.iteri (fun i n -> if n = nm && !found < 0 then found := i) t.state_names;
  if !found < 0 then raise Not_found else !found

let union ~name parts =
  let total = List.fold_left (fun acc p -> acc + n_states p) 0 parts in
  let state_names = Array.make total "" in
  let labels = Array.make total Symbol.empty in
  let succs = Array.make total [] in
  let initial = ref [] in
  let offset = ref 0 in
  List.iter
    (fun p ->
      let off = !offset in
      Array.iteri
        (fun i nm -> state_names.(off + i) <- Printf.sprintf "%s/%s" p.name nm)
        p.state_names;
      Array.iteri (fun i l -> labels.(off + i) <- l) p.labels;
      Array.iteri (fun i l -> succs.(off + i) <- List.map (fun j -> off + j) l) p.succs;
      initial := !initial @ List.map (fun i -> off + i) p.initial;
      offset := off + n_states p)
    parts;
  { name; state_names; labels; succs; initial = !initial }

let propositions t =
  Array.fold_left (fun acc l -> Symbol.union acc l) Symbol.empty t.labels

let is_total t = Array.for_all (fun l -> l <> []) t.succs

let pp ppf t =
  Format.fprintf ppf "@[<v>model %s (%d states)@," t.name (n_states t);
  Array.iteri
    (fun i nm ->
      Format.fprintf ppf "  %s %a -> [%s]@," nm Symbol.pp t.labels.(i)
        (String.concat "; " (List.map (fun j -> t.state_names.(j)) t.succs.(i))))
    t.state_names;
  Format.fprintf ppf "@]"
