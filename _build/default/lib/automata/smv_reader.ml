module Ltl = Dpoaf_logic.Ltl
module Symbol = Dpoaf_logic.Symbol

type t = {
  name : string;
  kripke : Kripke.t;
  specs : (string * Ltl.t) list;
}

(* ---------------- lexer ---------------- *)

type token =
  | Tid of string
  | Tint of int
  | Tcolon
  | Tsemi
  | Tassign  (* := *)
  | Tdotdot
  | Tlparen
  | Trparen
  | Tbang
  | Tamp
  | Tbar
  | Tarrow
  | Teq

exception Error of string

let lex input =
  let n = String.length input in
  let toks = ref [] in
  let i = ref 0 in
  let is_id c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'
  in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '-' && !i + 1 < n && input.[!i + 1] = '-' then begin
      (* comment to end of line *)
      while !i < n && input.[!i] <> '\n' do incr i done
    end
    else if c = '-' && !i + 1 < n && input.[!i + 1] = '>' then begin
      toks := Tarrow :: !toks;
      i := !i + 2
    end
    else if c = ':' && !i + 1 < n && input.[!i + 1] = '=' then begin
      toks := Tassign :: !toks;
      i := !i + 2
    end
    else if c = '.' && !i + 1 < n && input.[!i + 1] = '.' then begin
      toks := Tdotdot :: !toks;
      i := !i + 2
    end
    else if c >= '0' && c <= '9' then begin
      let j = ref !i in
      while !j < n && input.[!j] >= '0' && input.[!j] <= '9' do incr j done;
      toks := Tint (int_of_string (String.sub input !i (!j - !i))) :: !toks;
      i := !j
    end
    else if is_id c then begin
      let j = ref !i in
      while !j < n && is_id input.[!j] do incr j done;
      toks := Tid (String.sub input !i (!j - !i)) :: !toks;
      i := !j
    end
    else begin
      (match c with
      | ':' -> toks := Tcolon :: !toks
      | ';' -> toks := Tsemi :: !toks
      | '(' -> toks := Tlparen :: !toks
      | ')' -> toks := Trparen :: !toks
      | '!' -> toks := Tbang :: !toks
      | '&' -> toks := Tamp :: !toks
      | '|' -> toks := Tbar :: !toks
      | '=' -> toks := Teq :: !toks
      | c -> raise (Error (Printf.sprintf "unexpected character %c" c)));
      incr i
    end
  done;
  List.rev !toks

(* ---------------- boolean expressions ---------------- *)

type expr =
  | Etrue
  | Efalse
  | Eid of string
  | Estate_eq of int
  | Enext_eq of int
  | Enot of expr
  | Eand of expr * expr
  | Eor of expr * expr
  | Eimp of expr * expr

(* expressions end at section keywords or punctuation handled by callers *)
let section_keywords = [ "VAR"; "DEFINE"; "INIT"; "TRANS"; "LTLSPEC"; "case"; "esac"; "MODULE" ]

let rec p_imp toks =
  let lhs, toks = p_or toks in
  match toks with
  | Tarrow :: rest ->
      let rhs, rest = p_imp rest in
      (Eimp (lhs, rhs), rest)
  | _ -> (lhs, toks)

and p_or toks =
  let lhs, toks = p_and toks in
  let rec loop lhs = function
    | Tbar :: rest ->
        let rhs, rest = p_and rest in
        loop (Eor (lhs, rhs)) rest
    | toks -> (lhs, toks)
  in
  loop lhs toks

and p_and toks =
  let lhs, toks = p_unary toks in
  let rec loop lhs = function
    | Tamp :: rest ->
        let rhs, rest = p_unary rest in
        loop (Eand (lhs, rhs)) rest
    | toks -> (lhs, toks)
  in
  loop lhs toks

and p_unary = function
  | Tbang :: rest ->
      let e, rest = p_unary rest in
      (Enot e, rest)
  | Tlparen :: rest -> (
      let e, rest = p_imp rest in
      match rest with
      | Trparen :: rest -> (e, rest)
      | _ -> raise (Error "expected )"))
  | Tid "TRUE" :: rest -> (Etrue, rest)
  | Tid "FALSE" :: rest -> (Efalse, rest)
  | Tid "state" :: Teq :: Tint k :: rest -> (Estate_eq k, rest)
  | Tid "next" :: Tlparen :: Tid "state" :: Trparen :: Teq :: Tint k :: rest ->
      (Enext_eq k, rest)
  | Tid name :: rest when not (List.mem name section_keywords) -> (Eid name, rest)
  | _ -> raise (Error "expected boolean expression")

let rec eval_expr ~defines ~state ~next = function
  | Etrue -> true
  | Efalse -> false
  | Estate_eq k -> state = k
  | Enext_eq k -> (
      match next with
      | Some j -> j = k
      | None -> raise (Error "next(state) used outside TRANS"))
  | Eid name -> (
      match List.assoc_opt name defines with
      | Some e -> eval_expr ~defines ~state ~next e
      | None -> raise (Error (Printf.sprintf "undefined identifier %s" name)))
  | Enot e -> not (eval_expr ~defines ~state ~next e)
  | Eand (a, b) -> eval_expr ~defines ~state ~next a && eval_expr ~defines ~state ~next b
  | Eor (a, b) -> eval_expr ~defines ~state ~next a || eval_expr ~defines ~state ~next b
  | Eimp (a, b) ->
      (not (eval_expr ~defines ~state ~next a)) || eval_expr ~defines ~state ~next b

(* ---------------- LTL re-parsing ---------------- *)

(* Collect tokens up to the terminating ';' and rebuild an Ltl-parsable
   string ([V] maps to release, TRUE/FALSE to lowercase). *)
let ltl_until_semi toks =
  let buf = Buffer.create 64 in
  let rec go = function
    | [] -> raise (Error "unterminated LTLSPEC")
    | Tsemi :: rest -> (Buffer.contents buf, rest)
    | tok :: rest ->
        let s =
          match tok with
          | Tid "TRUE" -> "true"
          | Tid "FALSE" -> "false"
          | Tid "V" -> "R"
          | Tid name -> name
          | Tint k -> string_of_int k
          | Tlparen -> "("
          | Trparen -> ")"
          | Tbang -> "!"
          | Tamp -> "&"
          | Tbar -> "|"
          | Tarrow -> "->"
          | Teq | Tcolon | Tassign | Tdotdot -> raise (Error "token not allowed in LTL")
          | Tsemi -> assert false
        in
        Buffer.add_string buf s;
        Buffer.add_char buf ' ';
        go rest
  in
  go toks

(* ---------------- module parsing ---------------- *)

let parse_module toks =
  let name, toks =
    match toks with
    | Tid "MODULE" :: Tid name :: rest -> (name, rest)
    | _ -> raise (Error "expected MODULE <name>")
  in
  let n_states, toks =
    match toks with
    | Tid "VAR" :: Tid "state" :: Tcolon :: Tint lo :: Tdotdot :: Tint hi :: Tsemi :: rest
      ->
        if lo <> 0 then raise (Error "state range must start at 0");
        (hi + 1, rest)
    | _ -> raise (Error "expected VAR state : 0..N;")
  in
  (* DEFINE section (optional) *)
  let defines, toks =
    match toks with
    | Tid "DEFINE" :: rest ->
        let rec loop acc = function
          | Tid name :: Tassign :: rest when not (List.mem name section_keywords) ->
              let e, rest = p_imp rest in
              let rest =
                match rest with
                | Tsemi :: r -> r
                | _ -> raise (Error "expected ; after define")
              in
              loop ((name, e) :: acc) rest
          | toks -> (List.rev acc, toks)
        in
        loop [] rest
    | toks -> ([], toks)
  in
  let init_expr, toks =
    match toks with
    | Tid "INIT" :: rest -> p_imp rest
    | _ -> raise (Error "expected INIT")
  in
  let branches, toks =
    match toks with
    | Tid "TRANS" :: Tid "case" :: rest ->
        let rec loop acc toks =
          match toks with
          | Tid "esac" :: rest -> (List.rev acc, rest)
          | _ ->
              let cond, toks = p_imp toks in
              let toks =
                match toks with
                | Tcolon :: r -> r
                | _ -> raise (Error "expected : in case branch")
              in
              let rhs, toks = p_imp toks in
              let toks =
                match toks with
                | Tsemi :: r -> r
                | _ -> raise (Error "expected ; after case branch")
              in
              loop ((cond, rhs) :: acc) toks
        in
        loop [] rest
    | _ -> raise (Error "expected TRANS case ... esac")
  in
  let specs, toks =
    let rec loop acc = function
      | Tid "LTLSPEC" :: Tid "NAME" :: Tid spec_name :: Tassign :: rest ->
          let text, rest = ltl_until_semi rest in
          let phi =
            match Ltl.parse text with
            | Ok phi -> phi
            | Error msg -> raise (Error (Printf.sprintf "bad LTL %S: %s" text msg))
          in
          loop ((spec_name, phi) :: acc) rest
      | toks -> (List.rev acc, toks)
    in
    loop [] toks
  in
  if toks <> [] then raise (Error "trailing tokens after module");
  (* interpret *)
  let labels =
    Array.init n_states (fun s ->
        List.fold_left
          (fun acc (dname, e) ->
            if eval_expr ~defines ~state:s ~next:None e then Symbol.add dname acc
            else acc)
          Symbol.empty defines)
  in
  let succs =
    Array.init n_states (fun s ->
        (* NuSMV case: first branch whose condition holds *)
        let rhs =
          let rec first = function
            | [] -> None
            | (cond, rhs) :: rest ->
                if eval_expr ~defines ~state:s ~next:None cond then Some rhs
                else first rest
          in
          first branches
        in
        match rhs with
        | None -> []
        | Some rhs ->
            List.filter
              (fun j -> eval_expr ~defines ~state:s ~next:(Some j) rhs)
              (List.init n_states Fun.id))
  in
  let initial =
    List.filter
      (fun s -> eval_expr ~defines ~state:s ~next:None init_expr)
      (List.init n_states Fun.id)
  in
  { name; kripke = Kripke.make ~labels ~succs ~initial (); specs }

let parse input =
  match parse_module (lex input) with
  | m -> Ok m
  | exception Error msg -> Error msg

let parse_exn input =
  match parse input with
  | Ok m -> m
  | Error msg -> invalid_arg (Printf.sprintf "Smv_reader.parse_exn: %s" msg)
