module Symbol = Dpoaf_logic.Symbol

type guard =
  | Gtrue
  | Gatom of string
  | Gnot of guard
  | Gand of guard * guard
  | Gor of guard * guard

let rec eval_guard g sym =
  match g with
  | Gtrue -> true
  | Gatom a -> Symbol.mem a sym
  | Gnot g -> not (eval_guard g sym)
  | Gand (a, b) -> eval_guard a sym && eval_guard b sym
  | Gor (a, b) -> eval_guard a sym || eval_guard b sym

let guard_conj = function
  | [] -> Gtrue
  | g :: rest -> List.fold_left (fun acc h -> Gand (acc, h)) g rest

let rec pp_guard ppf = function
  | Gtrue -> Format.pp_print_string ppf "true"
  | Gatom a -> Format.pp_print_string ppf a
  | Gnot g -> Format.fprintf ppf "!(%a)" pp_guard g
  | Gand (a, b) -> Format.fprintf ppf "(%a & %a)" pp_guard a pp_guard b
  | Gor (a, b) -> Format.fprintf ppf "(%a | %a)" pp_guard a pp_guard b

type state = int

type transition = { src : state; guard : guard; action : Symbol.t; dst : state }

type t = {
  name : string;
  n_states : int;
  init : state;
  state_names : string array;
  transitions : transition list;
}

let make ~name ~n_states ~init ?state_names ~transitions () =
  let check q ctx =
    if q < 0 || q >= n_states then
      invalid_arg (Printf.sprintf "Fsa.make: %s state %d out of range" ctx q)
  in
  check init "initial";
  List.iter
    (fun tr ->
      check tr.src "source";
      check tr.dst "destination")
    transitions;
  let state_names =
    match state_names with
    | Some names ->
        if Array.length names <> n_states then
          invalid_arg "Fsa.make: state_names length mismatch";
        names
    | None -> Array.init n_states (Printf.sprintf "q%d")
  in
  { name; n_states; init; state_names; transitions }

let enabled t q sym =
  List.filter_map
    (fun tr ->
      if tr.src = q && eval_guard tr.guard sym then Some (tr.action, tr.dst) else None)
    t.transitions

let is_input_enabled t ~over =
  List.for_all
    (fun sym ->
      List.for_all
        (fun q -> enabled t q sym <> [])
        (List.init t.n_states Fun.id))
    over

let actions t =
  List.fold_left (fun acc tr -> Symbol.union acc tr.action) Symbol.empty t.transitions

let rec guard_atoms_of = function
  | Gtrue -> Symbol.empty
  | Gatom a -> Symbol.singleton a
  | Gnot g -> guard_atoms_of g
  | Gand (a, b) | Gor (a, b) -> Symbol.union (guard_atoms_of a) (guard_atoms_of b)

let guard_atoms t =
  List.fold_left
    (fun acc tr -> Symbol.union acc (guard_atoms_of tr.guard))
    Symbol.empty t.transitions

let pp ppf t =
  Format.fprintf ppf "@[<v>controller %s (%d states, init %s)@," t.name t.n_states
    t.state_names.(t.init);
  List.iter
    (fun tr ->
      Format.fprintf ppf "  %s --[%a / %a]--> %s@," t.state_names.(tr.src) pp_guard
        tr.guard Symbol.pp tr.action t.state_names.(tr.dst))
    t.transitions;
  Format.fprintf ppf "@]"
