(** Generalized and plain Büchi automata with state labels.

    States carry literal constraints: a word symbol [σ] is consistent with a
    state [q] when [pos q ⊆ σ] and [neg q ∩ σ = ∅].  A run over
    [σ₀σ₁…] is a sequence of states starting from an initial state where
    each [σᵢ] is consistent with the i-th state.  This matches the output of
    the GPVW tableau construction. *)

type gnba = {
  n : int;
  initial : int list;
  pos : Dpoaf_logic.Symbol.t array;  (** atoms that must hold *)
  neg : Dpoaf_logic.Symbol.t array;  (** atoms that must be absent *)
  succs : int list array;
  accept : int list array;  (** generalized acceptance sets *)
}

type nba = {
  n : int;
  initial : int list;
  pos : Dpoaf_logic.Symbol.t array;
  neg : Dpoaf_logic.Symbol.t array;
  succs : int list array;
  accepting : bool array;
}

val consistent :
  pos:Dpoaf_logic.Symbol.t -> neg:Dpoaf_logic.Symbol.t -> Dpoaf_logic.Symbol.t -> bool

val degeneralize : gnba -> nba
(** Counter construction: states [(q, i)]; the counter advances past index
    [i] when the source state belongs to acceptance set [i]; accepting
    states are [(q, 0)] with [q ∈ accept.(0)].  A GNBA with zero acceptance
    sets accepts every run, so all states become accepting. *)

val nba_states : nba -> int
