type lasso = { prefix : int list; cycle : int list }

(* Product states are (kripke state, automaton state) pairs, interned to
   dense integers on the fly. *)
type graph = {
  states : (int * int) array;
  succs : int list array;
  initial : int list;
  accepting : bool array;
}

let build_product (k : Kripke.t) (a : Buchi.nba) =
  let index = Hashtbl.create 256 in
  let pairs = ref [] in
  let count = ref 0 in
  let intern s =
    match Hashtbl.find_opt index s with
    | Some i -> i
    | None ->
        let i = !count in
        incr count;
        Hashtbl.add index s i;
        pairs := s :: !pairs;
        i
  in
  let consistent ks bs =
    Buchi.consistent ~pos:a.Buchi.pos.(bs) ~neg:a.Buchi.neg.(bs) k.Kripke.labels.(ks)
  in
  let initial_pairs =
    List.concat_map
      (fun ks ->
        List.filter_map
          (fun bs -> if consistent ks bs then Some (ks, bs) else None)
          a.Buchi.initial)
      k.Kripke.initial
  in
  let initial = List.map intern initial_pairs in
  let succs_tbl = Hashtbl.create 256 in
  let worklist = Queue.create () in
  List.iter2 (fun i p -> Queue.add (i, p) worklist) initial initial_pairs;
  while not (Queue.is_empty worklist) do
    let i, (ks, bs) = Queue.pop worklist in
    if not (Hashtbl.mem succs_tbl i) then begin
      Hashtbl.add succs_tbl i [];
      let out =
        List.concat_map
          (fun ks' ->
            List.filter_map
              (fun bs' ->
                if consistent ks' bs' then Some ((ks', bs'), intern (ks', bs'))
                else None)
              a.Buchi.succs.(bs))
          k.Kripke.succs.(ks)
      in
      Hashtbl.replace succs_tbl i (List.map snd out);
      List.iter (fun (pair, j) -> Queue.add (j, pair) worklist) out
    end
  done;
  let states = Array.of_list (List.rev !pairs) in
  let n = !count in
  let succs = Array.make n [] in
  Hashtbl.iter (fun i out -> succs.(i) <- out) succs_tbl;
  let accepting = Array.map (fun (_, bs) -> a.Buchi.accepting.(bs)) states in
  { states; succs; initial = List.sort_uniq compare initial; accepting }

(* Tarjan's strongly connected components over the part reachable from the
   initial states. *)
let sccs (g : graph) =
  let n = Array.length g.states in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let comp_of = Array.make n (-1) in
  let ncomp = ref 0 in
  let rec strong v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strong w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      g.succs.(v);
    if lowlink.(v) = index.(v) then begin
      let continue = ref true in
      while !continue do
        match !stack with
        | [] -> continue := false
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            comp_of.(w) <- !ncomp;
            if w = v then continue := false
      done;
      incr ncomp
    end
  in
  List.iter (fun v -> if index.(v) < 0 then strong v) g.initial;
  comp_of

let bfs_path g ~sources ~target ~allowed =
  (* Shortest path from any source to [target] through states satisfying
     [allowed]; returns the state list including both endpoints. *)
  let n = Array.length g.states in
  let parent = Array.make n (-2) in
  let q = Queue.create () in
  List.iter
    (fun s ->
      if allowed s && parent.(s) = -2 then begin
        parent.(s) <- -1;
        Queue.add s q
      end)
    sources;
  let found = ref None in
  while !found = None && not (Queue.is_empty q) do
    let v = Queue.pop q in
    if v = target then found := Some v
    else
      List.iter
        (fun w ->
          if allowed w && parent.(w) = -2 then begin
            parent.(w) <- v;
            Queue.add w q
          end)
        g.succs.(v)
  done;
  match !found with
  | None -> None
  | Some v ->
      let rec unwind v acc =
        if parent.(v) = -1 then v :: acc else unwind parent.(v) (v :: acc)
      in
      Some (unwind v [])

let find_accepting_lasso (k : Kripke.t) (a : Buchi.nba) =
  let g = build_product k a in
  if g.initial = [] then None
  else begin
    let comp_of = sccs g in
    let n = Array.length g.states in
    (* A component is "fair" if it contains an accepting state and at least
       one internal edge (nontrivial SCC or a self-loop). *)
    let nontrivial = Hashtbl.create 16 in
    for v = 0 to n - 1 do
      if comp_of.(v) >= 0 then
        List.iter
          (fun w ->
            if comp_of.(w) = comp_of.(v) then Hashtbl.replace nontrivial comp_of.(v) ())
          g.succs.(v)
    done;
    let seed = ref None in
    for v = 0 to n - 1 do
      if !seed = None && comp_of.(v) >= 0 && g.accepting.(v)
         && Hashtbl.mem nontrivial comp_of.(v)
      then seed := Some v
    done;
    match !seed with
    | None -> None
    | Some s ->
        let prefix_path =
          match
            bfs_path g ~sources:g.initial ~target:s ~allowed:(fun v -> comp_of.(v) >= 0)
          with
          | Some p -> p
          | None -> assert false
        in
        let in_comp v = comp_of.(v) = comp_of.(s) in
        let cycle_path =
          (* shortest nonempty cycle through s inside its component *)
          let starts = List.filter in_comp g.succs.(s) in
          match bfs_path g ~sources:starts ~target:s ~allowed:in_comp with
          | Some p -> p
          | None -> assert false
        in
        (* prefix_path = v0..s ; cycle_path = s1..s with s1 ∈ succs(s).
           Lasso: prefix = v0..(before s), cycle = s :: s1..(before final s). *)
        let rec drop_last = function
          | [] | [ _ ] -> []
          | x :: rest -> x :: drop_last rest
        in
        let prefix_states = drop_last prefix_path in
        let cycle_states = s :: drop_last cycle_path in
        let kripke_of = List.map (fun v -> fst g.states.(v)) in
        Some { prefix = kripke_of prefix_states; cycle = kripke_of cycle_states }
  end
