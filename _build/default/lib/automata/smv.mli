(** Export to NuSMV syntax (cf. the paper's Appendix D).

    The exported text is accepted by NuSMV 2.x, which lets the artifacts
    produced here be cross-checked against the original tool when it is
    available.  Nothing in this repository depends on NuSMV at runtime. *)

val ident : string -> string
(** Sanitize an atom name to an SMV identifier ([car from left] →
    [car_from_left]). *)

val of_kripke : name:string -> Kripke.t -> specs:(string * Dpoaf_logic.Ltl.t) list -> string
(** Render a Kripke structure as an SMV module: a [state] variable ranging
    over the structure's states, [DEFINE]d booleans for every atom, [INIT]
    and [TRANS] constraints, and one named [LTLSPEC] per specification. *)

val of_controller :
  name:string -> Fsa.t -> props:string list -> string
(** Render a controller in the Appendix-D style: boolean inputs for each
    proposition, a [loc] variable for the controller state, and an [action]
    variable constrained by the guarded transitions. *)

val of_ltl : Dpoaf_logic.Ltl.t -> string
(** LTL formula in SMV syntax ([G]/[F]/[X]/[U]/[V], [&], [|], [!], [->]). *)
