(** Parser and interpreter for the SMV subset written by {!Smv.of_kripke}.

    Together with the exporter this closes the NuSMV-substitution loop: a
    module can be exported, re-parsed and re-checked, and the verdicts must
    agree (a property exercised by the test suite).  The accepted subset:

    {v
 MODULE <ident>
 VAR
   state : 0..<n>;
 DEFINE
   <ident> := <bool expr over "state = k">;
 INIT
   <bool expr>
 TRANS
   case
     <bool expr> : <bool expr over next(state)>;
     ...
   esac
 LTLSPEC NAME <ident> := <ltl>;  -- optional trailing comment
    v}

    Boolean expressions use [TRUE], [FALSE], [!], [&], [|], [->], [=],
    [next(state)], parentheses, and previously-[DEFINE]d names. *)

type t = {
  name : string;
  kripke : Kripke.t;
  specs : (string * Dpoaf_logic.Ltl.t) list;
}

val parse : string -> (t, string) result

val parse_exn : string -> t
(** @raise Invalid_argument with the parse error. *)
