(** Accepting-lasso search in the product of a Kripke structure and a
    state-labeled Büchi automaton.

    Non-emptiness of [K ⊗ A¬φ] yields a counterexample to [K ⊨ φ]: a lasso
    of Kripke states whose label word violates the specification. *)

type lasso = {
  prefix : int list;  (** Kripke state indices before the cycle. *)
  cycle : int list;  (** Kripke state indices of the repeated cycle; non-empty. *)
}

val find_accepting_lasso : Kripke.t -> Buchi.nba -> lasso option
(** [Some lasso] iff the product has a reachable accepting cycle.  The lasso
    projects the product run onto Kripke states; its label word is accepted
    by the automaton. *)
