(** State-labeled Kripke structures, the input format of the model checker.

    Labels are symbols over [P ∪ P_A]; the structure must be total (use
    {!stutter_extend}) before model checking, since LTL is interpreted over
    infinite traces. *)

type t = private {
  labels : Dpoaf_logic.Symbol.t array;
  succs : int list array;
  initial : int list;
  descr : string array;  (** Human-readable state descriptions. *)
  tags : int array;
      (** Provenance tag per state (e.g. the controller step that produced
          it); [-1] when untagged.  Used for counterexample blame. *)
}

val make :
  labels:Dpoaf_logic.Symbol.t array ->
  succs:int list array ->
  initial:int list ->
  ?descr:string array ->
  ?tags:int array ->
  unit ->
  t
(** @raise Invalid_argument on shape mismatches or out-of-range indices. *)

val n_states : t -> int

val stutter_extend : t -> t
(** Add a self-loop to every deadlocked state, so every run is infinite. *)

val is_total : t -> bool

val random_lasso :
  t -> Dpoaf_util.Rng.t -> (Dpoaf_logic.Symbol.t array * Dpoaf_logic.Symbol.t array) option
(** A random walk from a random initial state until a state repeats,
    returned as (prefix labels, cycle labels).  [None] when the structure
    has no initial state or the walk deadlocks. *)

val pp : Format.formatter -> t -> unit
