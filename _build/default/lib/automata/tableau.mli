(** LTL → generalized Büchi automaton, GPVW on-the-fly tableau construction
    (Gerth, Peled, Vardi, Wolper 1995).

    This plus {!Buchi.degeneralize} and {!Emptiness} forms the NuSMV
    substitute used by the verification feedback channel. *)

val gnba_of_ltl : Dpoaf_logic.Ltl.t -> Buchi.gnba
(** Build a GNBA accepting exactly the infinite words satisfying the
    formula.  The input is normalized with {!Dpoaf_logic.Ltl.nnf} first, so
    any formula is accepted. *)
