module Symbol = Dpoaf_logic.Symbol

type t = {
  labels : Symbol.t array;
  succs : int list array;
  initial : int list;
  descr : string array;
  tags : int array;
}

let make ~labels ~succs ~initial ?descr ?tags () =
  let n = Array.length labels in
  if Array.length succs <> n then invalid_arg "Kripke.make: succs length mismatch";
  let check i =
    if i < 0 || i >= n then invalid_arg "Kripke.make: state index out of range"
  in
  Array.iter (List.iter check) succs;
  List.iter check initial;
  let descr =
    match descr with
    | Some d ->
        if Array.length d <> n then invalid_arg "Kripke.make: descr length mismatch";
        d
    | None -> Array.init n (fun i -> Printf.sprintf "s%d" i)
  in
  let tags =
    match tags with
    | Some t ->
        if Array.length t <> n then invalid_arg "Kripke.make: tags length mismatch";
        t
    | None -> Array.make n (-1)
  in
  { labels; succs = Array.map (List.sort_uniq compare) succs; initial; descr; tags }

let n_states t = Array.length t.labels

let is_total t = Array.for_all (fun l -> l <> []) t.succs

let stutter_extend t =
  {
    t with
    succs = Array.mapi (fun i l -> if l = [] then [ i ] else l) t.succs;
  }

let random_lasso t rng =
  match t.initial with
  | [] -> None
  | initial ->
      let start = Dpoaf_util.Rng.choice_list rng initial in
      let rec walk path seen s =
        match List.assoc_opt s seen with
        | Some pos ->
            let arr = Array.of_list (List.rev path) in
            let prefix = Array.sub arr 0 pos in
            let cycle = Array.sub arr pos (Array.length arr - pos) in
            Some (Array.map (fun i -> t.labels.(i)) prefix,
                  Array.map (fun i -> t.labels.(i)) cycle)
        | None -> (
            match t.succs.(s) with
            | [] -> None
            | succs ->
                let s' = Dpoaf_util.Rng.choice_list rng succs in
                walk (s :: path) ((s, List.length path) :: seen) s')
      in
      walk [] [] start

let pp ppf t =
  Format.fprintf ppf "@[<v>kripke (%d states, %d initial)@," (n_states t)
    (List.length t.initial);
  Array.iteri
    (fun i lbl ->
      Format.fprintf ppf "  %s %a -> [%s]@," t.descr.(i) Symbol.pp lbl
        (String.concat "; " (List.map string_of_int t.succs.(i))))
    t.labels;
  Format.fprintf ppf "@]"
