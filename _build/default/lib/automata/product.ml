module Symbol = Dpoaf_logic.Symbol

type pstate = { model_state : Ts.state; ctrl_state : Fsa.state }

type edge = {
  src : pstate;
  label : Symbol.t;
  action : Symbol.t;
  dst : pstate;
}

type t = {
  model : Ts.t;
  controller : Fsa.t;
  states : pstate list;
  edges : edge list;
  initial : pstate list;
  deadlocks : pstate list;
}

let build ~model ~controller =
  let initial =
    List.map (fun p -> { model_state = p; ctrl_state = controller.Fsa.init })
      model.Ts.initial
  in
  let seen = Hashtbl.create 64 in
  let edges = ref [] in
  let deadlocks = ref [] in
  let order = ref [] in
  let rec explore s =
    if not (Hashtbl.mem seen s) then begin
      Hashtbl.add seen s ();
      order := s :: !order;
      let sigma = Ts.label model s.model_state in
      let ctrl_moves = Fsa.enabled controller s.ctrl_state sigma in
      let model_moves = Ts.successors model s.model_state in
      let out =
        List.concat_map
          (fun (action, q') ->
            List.map
              (fun p' ->
                {
                  src = s;
                  label = Symbol.union sigma action;
                  action;
                  dst = { model_state = p'; ctrl_state = q' };
                })
              model_moves)
          ctrl_moves
      in
      if out = [] then deadlocks := s :: !deadlocks
      else begin
        edges := List.rev_append out !edges;
        List.iter (fun e -> explore e.dst) out
      end
    end
  in
  List.iter explore initial;
  {
    model;
    controller;
    states = List.rev !order;
    edges = List.rev !edges;
    initial;
    deadlocks = List.rev !deadlocks;
  }

let pp_pstate t ppf s =
  Format.fprintf ppf "(%s,%s)"
    t.model.Ts.state_names.(s.model_state)
    t.controller.Fsa.state_names.(s.ctrl_state)

let to_kripke t =
  (* Kripke state per product edge, plus a stuttering sink per deadlock. *)
  let edge_arr = Array.of_list t.edges in
  let n_edges = Array.length edge_arr in
  let sink_index = Hashtbl.create 8 in
  List.iteri
    (fun i s -> Hashtbl.add sink_index s (n_edges + i))
    t.deadlocks;
  let n = n_edges + List.length t.deadlocks in
  (* edges grouped by source product state for successor lookup *)
  let by_src = Hashtbl.create 64 in
  Array.iteri
    (fun i e ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_src e.src) in
      Hashtbl.replace by_src e.src (i :: prev))
    edge_arr;
  let node_successors s =
    match Hashtbl.find_opt by_src s with
    | Some l -> l
    | None -> (
        match Hashtbl.find_opt sink_index s with
        | Some k -> [ k ]
        | None -> [])
  in
  let labels = Array.make n Symbol.empty in
  let succs = Array.make n [] in
  let descr = Array.make n "" in
  let tags = Array.make n (-1) in
  Array.iteri
    (fun i e ->
      labels.(i) <- e.label;
      succs.(i) <- node_successors e.dst;
      tags.(i) <- e.src.ctrl_state;
      descr.(i) <-
        Format.asprintf "%a--%a->%a" (pp_pstate t) e.src Symbol.pp e.action
          (pp_pstate t) e.dst)
    edge_arr;
  List.iter
    (fun s ->
      let k = Hashtbl.find sink_index s in
      labels.(k) <- Ts.label t.model s.model_state;
      succs.(k) <- [ k ];
      tags.(k) <- s.ctrl_state;
      descr.(k) <- Format.asprintf "%a (deadlock)" (pp_pstate t) s)
    t.deadlocks;
  let initial = List.concat_map node_successors t.initial in
  Kripke.make ~labels ~succs ~initial:(List.sort_uniq compare initial) ~descr ~tags ()
