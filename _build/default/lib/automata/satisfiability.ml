module Ltl = Dpoaf_logic.Ltl
module Symbol = Dpoaf_logic.Symbol

(* Accepting-lasso search directly on the NBA graph.  Tableau construction
   already discards contradictory nodes, so every state is enterable by the
   symbol consisting of exactly its positive atoms. *)
let find_lasso (a : Buchi.nba) =
  let n = a.Buchi.n in
  if n = 0 || a.Buchi.initial = [] then None
  else begin
    (* Tarjan SCC over the reachable part *)
    let index = Array.make n (-1) in
    let lowlink = Array.make n 0 in
    let on_stack = Array.make n false in
    let stack = ref [] in
    let next_index = ref 0 in
    let comp_of = Array.make n (-1) in
    let ncomp = ref 0 in
    let rec strong v =
      index.(v) <- !next_index;
      lowlink.(v) <- !next_index;
      incr next_index;
      stack := v :: !stack;
      on_stack.(v) <- true;
      List.iter
        (fun w ->
          if index.(w) < 0 then begin
            strong w;
            lowlink.(v) <- min lowlink.(v) lowlink.(w)
          end
          else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
        a.Buchi.succs.(v);
      if lowlink.(v) = index.(v) then begin
        let continue = ref true in
        while !continue do
          match !stack with
          | [] -> continue := false
          | w :: rest ->
              stack := rest;
              on_stack.(w) <- false;
              comp_of.(w) <- !ncomp;
              if w = v then continue := false
        done;
        incr ncomp
      end
    in
    List.iter (fun v -> if index.(v) < 0 then strong v) a.Buchi.initial;
    let nontrivial = Hashtbl.create 16 in
    for v = 0 to n - 1 do
      if comp_of.(v) >= 0 then
        List.iter
          (fun w ->
            if comp_of.(w) = comp_of.(v) then Hashtbl.replace nontrivial comp_of.(v) ())
          a.Buchi.succs.(v)
    done;
    let seed = ref None in
    for v = 0 to n - 1 do
      if !seed = None && comp_of.(v) >= 0 && a.Buchi.accepting.(v)
         && Hashtbl.mem nontrivial comp_of.(v)
      then seed := Some v
    done;
    match !seed with
    | None -> None
    | Some s ->
        let bfs ~sources ~target ~allowed =
          let parent = Array.make n (-2) in
          let q = Queue.create () in
          List.iter
            (fun v ->
              if allowed v && parent.(v) = -2 then begin
                parent.(v) <- -1;
                Queue.add v q
              end)
            sources;
          let found = ref None in
          while !found = None && not (Queue.is_empty q) do
            let v = Queue.pop q in
            if v = target then found := Some v
            else
              List.iter
                (fun w ->
                  if allowed w && parent.(w) = -2 then begin
                    parent.(w) <- v;
                    Queue.add w q
                  end)
                a.Buchi.succs.(v)
          done;
          Option.map
            (fun v ->
              let rec unwind v acc =
                if parent.(v) = -1 then v :: acc else unwind parent.(v) (v :: acc)
              in
              unwind v [])
            !found
        in
        let prefix_path =
          Option.get (bfs ~sources:a.Buchi.initial ~target:s ~allowed:(fun v -> comp_of.(v) >= 0))
        in
        let in_comp v = comp_of.(v) = comp_of.(s) in
        let cycle_path =
          Option.get
            (bfs ~sources:(List.filter in_comp a.Buchi.succs.(s)) ~target:s
               ~allowed:in_comp)
        in
        let rec drop_last = function [] | [ _ ] -> [] | x :: r -> x :: drop_last r in
        Some (drop_last prefix_path, s :: drop_last cycle_path)
  end

let witness phi =
  let nba = Buchi.degeneralize (Tableau.gnba_of_ltl phi) in
  match find_lasso nba with
  | None -> None
  | Some (prefix, cycle) ->
      let label v = nba.Buchi.pos.(v) in
      Some
        ( Array.of_list (List.map label prefix),
          Array.of_list (List.map label cycle) )

let is_satisfiable phi = witness phi <> None
