lib/automata/satisfiability.mli: Dpoaf_logic
