lib/automata/ts.mli: Dpoaf_logic Format
