lib/automata/buchi.mli: Dpoaf_logic
