lib/automata/ts.ml: Array Dpoaf_logic Format Fun Hashtbl List Printf String
