lib/automata/smv.ml: Array Buffer Dpoaf_logic Fsa Fun Kripke List Printf String
