lib/automata/model_checker.mli: Dpoaf_logic Format Fsa Kripke Ts
