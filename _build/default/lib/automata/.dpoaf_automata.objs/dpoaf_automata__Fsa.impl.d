lib/automata/fsa.ml: Array Dpoaf_logic Format Fun List Printf
