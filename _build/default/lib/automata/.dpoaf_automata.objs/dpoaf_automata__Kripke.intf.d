lib/automata/kripke.mli: Dpoaf_logic Dpoaf_util Format
