lib/automata/tableau.mli: Buchi Dpoaf_logic
