lib/automata/smv_reader.mli: Dpoaf_logic Kripke
