lib/automata/smv_reader.ml: Array Buffer Dpoaf_logic Fun Kripke List Printf String
