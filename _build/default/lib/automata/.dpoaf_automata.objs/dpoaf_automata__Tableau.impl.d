lib/automata/tableau.ml: Array Buchi Dpoaf_logic Fun Hashtbl Int List Set
