lib/automata/fsa.mli: Dpoaf_logic Format
