lib/automata/smv.mli: Dpoaf_logic Fsa Kripke
