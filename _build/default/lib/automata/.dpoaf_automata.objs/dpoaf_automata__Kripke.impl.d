lib/automata/kripke.ml: Array Dpoaf_logic Dpoaf_util Format List Printf String
