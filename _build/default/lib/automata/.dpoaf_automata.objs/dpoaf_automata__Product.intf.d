lib/automata/product.mli: Dpoaf_logic Format Fsa Kripke Ts
