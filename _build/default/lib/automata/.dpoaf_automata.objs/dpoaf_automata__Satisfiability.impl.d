lib/automata/satisfiability.ml: Array Buchi Dpoaf_logic Hashtbl List Option Queue Tableau
