lib/automata/emptiness.mli: Buchi Kripke
