lib/automata/product.ml: Array Dpoaf_logic Format Fsa Hashtbl Kripke List Option Ts
