lib/automata/buchi.ml: Array Dpoaf_logic List
