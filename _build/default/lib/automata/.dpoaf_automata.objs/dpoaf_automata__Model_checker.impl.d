lib/automata/model_checker.ml: Array Buchi Dpoaf_logic Emptiness Format Kripke List Product Tableau
