lib/automata/emptiness.ml: Array Buchi Hashtbl Kripke List Queue
