module Symbol = Dpoaf_logic.Symbol

type gnba = {
  n : int;
  initial : int list;
  pos : Symbol.t array;
  neg : Symbol.t array;
  succs : int list array;
  accept : int list array;
}

type nba = {
  n : int;
  initial : int list;
  pos : Symbol.t array;
  neg : Symbol.t array;
  succs : int list array;
  accepting : bool array;
}

let consistent ~pos ~neg sym =
  Symbol.subset pos sym && Symbol.is_empty (Symbol.inter neg sym)

let degeneralize (g : gnba) : nba =
  let k = max 1 (Array.length g.accept) in
  let in_accept i q =
    if Array.length g.accept = 0 then true
    else List.mem q g.accept.(i)
  in
  let id q i = (q * k) + i in
  let n = g.n * k in
  let pos = Array.make n Symbol.empty in
  let neg = Array.make n Symbol.empty in
  let succs = Array.make n [] in
  let accepting = Array.make n false in
  for q = 0 to g.n - 1 do
    for i = 0 to k - 1 do
      let s = id q i in
      pos.(s) <- g.pos.(q);
      neg.(s) <- g.neg.(q);
      let j = if in_accept i q then (i + 1) mod k else i in
      succs.(s) <- List.map (fun q' -> id q' j) g.succs.(q);
      accepting.(s) <- i = 0 && in_accept 0 q
    done
  done;
  { n; initial = List.map (fun q -> id q 0) g.initial; pos; neg; succs; accepting }

let nba_states (a : nba) = a.n
