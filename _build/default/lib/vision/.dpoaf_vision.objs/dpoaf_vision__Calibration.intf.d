lib/vision/calibration.mli: Detector
