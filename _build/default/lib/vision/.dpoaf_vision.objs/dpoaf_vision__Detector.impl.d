lib/vision/detector.ml: Dpoaf_util Float List
