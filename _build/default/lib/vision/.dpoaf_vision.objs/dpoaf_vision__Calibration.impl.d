lib/vision/calibration.ml: Array Detector Float List
