lib/vision/detector.mli: Dpoaf_util
