(** Synthetic open-set object detector (Grounded-SAM substitute, §5.3).

    Detections are generated from a latent-score model: each object yields
    a score whose distribution depends on the object class, the viewing
    condition and (slightly) the domain; the reported confidence is the
    squashed score, and correctness is drawn from a {e shared} calibration
    curve perturbed by a small domain-specific term.  The paper's claim —
    the confidence→accuracy mapping is approximately equal in simulation
    and reality — is thus true by construction up to that perturbation,
    and the calibration methodology (binning by confidence, Yang et al.
    2023) is exercised on realistic data. *)

type object_class = Car | Pedestrian | Traffic_light | Stop_sign

val all_classes : object_class list
val class_name : object_class -> string

type domain = Sim | Real

val domain_name : domain -> string

type condition = Clear | Rain | Night

val all_conditions : condition list
val condition_name : condition -> string

type detection = {
  cls : object_class;
  domain : domain;
  condition : condition;
  confidence : float;  (** in (0,1) *)
  correct : bool;
}

val detect_one :
  Dpoaf_util.Rng.t -> domain -> condition -> object_class -> detection

val detect_dataset :
  Dpoaf_util.Rng.t -> domain -> condition -> n:int -> detection list
(** [n] detections with a uniform class mix. *)

val accuracy : detection list -> float
(** Fraction correct; 0 on []. *)
