module Rng = Dpoaf_util.Rng

type object_class = Car | Pedestrian | Traffic_light | Stop_sign

let all_classes = [ Car; Pedestrian; Traffic_light; Stop_sign ]

let class_name = function
  | Car -> "car"
  | Pedestrian -> "pedestrian"
  | Traffic_light -> "traffic light"
  | Stop_sign -> "stop sign"

type domain = Sim | Real

let domain_name = function Sim -> "sim" | Real -> "real"

type condition = Clear | Rain | Night

let all_conditions = [ Clear; Rain; Night ]

let condition_name = function Clear -> "clear" | Rain -> "rain" | Night -> "night"

type detection = {
  cls : object_class;
  domain : domain;
  condition : condition;
  confidence : float;
  correct : bool;
}

let sigmoid x = 1.0 /. (1.0 +. exp (-.x))

(* Mean latent score: big distinctive objects detect more confidently. *)
let class_mean = function
  | Car -> 1.3
  | Pedestrian -> 0.6
  | Traffic_light -> 0.9
  | Stop_sign -> 1.1

(* Conditions shift the score distribution (what the paper's Figure 13
   varies) without touching the calibration curve. *)
let condition_shift = function Clear -> 0.0 | Rain -> -0.5 | Night -> -0.9

(* The shared confidence→accuracy curve; a small domain perturbation keeps
   the two mappings approximately — not exactly — equal. *)
let calibration domain c =
  let base = 0.12 +. (0.86 *. c) in
  let wobble =
    match domain with
    | Sim -> 0.015 *. sin (6.0 *. c)
    | Real -> -0.015 *. sin (5.0 *. c)
  in
  Float.max 0.0 (Float.min 1.0 (base +. wobble))

let detect_one rng domain condition cls =
  let score =
    class_mean cls +. condition_shift condition +. Rng.gaussian rng
    +. (match domain with Sim -> 0.05 | Real -> -0.05)
  in
  let confidence = sigmoid score in
  let correct = Rng.bool rng (calibration domain confidence) in
  { cls; domain; condition; confidence; correct }

let detect_dataset rng domain condition ~n =
  List.init n (fun i ->
      let cls = List.nth all_classes (i mod List.length all_classes) in
      detect_one rng domain condition cls)

let accuracy detections =
  Dpoaf_util.Stats.fraction (fun d -> d.correct) detections
