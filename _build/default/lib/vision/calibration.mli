(** Confidence calibration (Yang et al. 2023): group detections by
    confidence and measure per-bin accuracy — the confidence→accuracy
    mapping of the paper's Figure 12. *)

type bin = {
  lo : float;
  hi : float;
  center : float;
  count : int;
  accuracy : float;  (** 0 when the bin is empty *)
}

val curve : ?bins:int -> Detector.detection list -> bin list
(** Equal-width bins over [\[0,1\]]; default 10. *)

val max_gap : ?min_count:int -> bin list -> bin list -> float
(** Largest |accuracy difference| over bins where {e both} curves have at
    least [min_count] samples (default 30 — sparse bins are sampling
    noise) — the consistency measure used to justify sim-to-real transfer.
    @raise Invalid_argument when the bin counts differ. *)

val consistent : ?tolerance:float -> ?min_count:int -> bin list -> bin list -> bool
(** [max_gap ≤ tolerance] (default 0.1). *)

val expected_calibration_error : bin list -> float
(** Count-weighted mean |accuracy − confidence-center| — the standard ECE
    diagnostic for the detector itself. *)
