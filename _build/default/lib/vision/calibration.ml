type bin = { lo : float; hi : float; center : float; count : int; accuracy : float }

let curve ?(bins = 10) detections =
  if bins <= 0 then invalid_arg "Calibration.curve: bins must be positive";
  let width = 1.0 /. float_of_int bins in
  let counts = Array.make bins 0 in
  let hits = Array.make bins 0 in
  List.iter
    (fun d ->
      let i =
        min (bins - 1)
          (max 0 (int_of_float (d.Detector.confidence /. width)))
      in
      counts.(i) <- counts.(i) + 1;
      if d.Detector.correct then hits.(i) <- hits.(i) + 1)
    detections;
  List.init bins (fun i ->
      let lo = float_of_int i *. width in
      {
        lo;
        hi = lo +. width;
        center = lo +. (width /. 2.0);
        count = counts.(i);
        accuracy =
          (if counts.(i) = 0 then 0.0
           else float_of_int hits.(i) /. float_of_int counts.(i));
      })

let max_gap ?(min_count = 30) a b =
  if List.length a <> List.length b then
    invalid_arg "Calibration.max_gap: bin counts differ";
  List.fold_left2
    (fun acc ba bb ->
      if ba.count >= min_count && bb.count >= min_count then
        Float.max acc (abs_float (ba.accuracy -. bb.accuracy))
      else acc)
    0.0 a b

let consistent ?(tolerance = 0.1) ?min_count a b = max_gap ?min_count a b <= tolerance

let expected_calibration_error bins =
  let total = List.fold_left (fun acc b -> acc + b.count) 0 bins in
  if total = 0 then 0.0
  else
    List.fold_left
      (fun acc b ->
        acc
        +. (float_of_int b.count /. float_of_int total)
           *. abs_float (b.accuracy -. b.center))
      0.0 bins
