(** Runtime safety shield.

    A shield sits between the controller and the actuators: a proposed
    action is let through only when the current observation satisfies the
    action's residual obligation under the invariant specifications (the
    same computation as {!Dpoaf_lang.Repair}); otherwise the vehicle holds
    ([stop]).  Shields enforce the invariant rules at execution time even
    for un-fine-tuned controllers — the runtime complement of DPO-AF's
    training-time fix — but they act on {e perceived} observations, so
    missed detections can still lead to ground-truth violations. *)

type t

val create : specs:Dpoaf_logic.Ltl.t list -> actions:string list -> t
(** Precomputes one residual guard per action.  [stop] is never blocked. *)

val permits : t -> observation:Dpoaf_logic.Symbol.t -> Dpoaf_logic.Symbol.t -> bool
(** [permits shield ~observation action] — may the action be executed when
    the world looks like [observation]? *)

val filter :
  t ->
  observation:Dpoaf_logic.Symbol.t ->
  (Dpoaf_logic.Symbol.t * 'a) list ->
  (Dpoaf_logic.Symbol.t * 'a) list
(** Keep only the permitted (action, successor) moves. *)
