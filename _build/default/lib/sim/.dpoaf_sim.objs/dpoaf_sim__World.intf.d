lib/sim/world.mli: Dpoaf_automata Dpoaf_logic Dpoaf_util
