lib/sim/runner.mli: Dpoaf_automata Dpoaf_logic Dpoaf_util Shield World
