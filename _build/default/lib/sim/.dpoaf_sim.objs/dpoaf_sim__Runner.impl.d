lib/sim/runner.ml: Array Dpoaf_automata Dpoaf_lang Dpoaf_logic Dpoaf_util List Shield World
