lib/sim/shield.mli: Dpoaf_logic
