lib/sim/empirical.ml: Dpoaf_logic Dpoaf_util List Runner World
