lib/sim/world.ml: Array Dpoaf_automata Dpoaf_logic Dpoaf_util List
