lib/sim/empirical.mli: Dpoaf_automata Dpoaf_logic Shield World
