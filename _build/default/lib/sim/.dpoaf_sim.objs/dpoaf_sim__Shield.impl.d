lib/sim/shield.ml: Dpoaf_automata Dpoaf_lang Dpoaf_logic List
