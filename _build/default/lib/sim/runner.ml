module Fsa = Dpoaf_automata.Fsa
module Symbol = Dpoaf_logic.Symbol
module Rng = Dpoaf_util.Rng

type step = {
  props : Symbol.t;
  perceived : Symbol.t;
  action : Symbol.t;
  world_state : string;
  ctrl_state : int;
}

type trace = step list

let run ?shield world controller ~steps rng =
  let stop_sym = Symbol.singleton Dpoaf_lang.Glm2fsa.stop_action in
  let rec go q i acc =
    if i >= steps then List.rev acc
    else begin
      let props = World.ground_truth world in
      let perceived = World.perceive world in
      let moves = Fsa.enabled controller q perceived in
      let moves =
        match shield with
        | None -> moves
        | Some s -> Shield.filter s ~observation:perceived moves
      in
      let action, q' =
        match moves with
        | [] -> ((if shield = None then Symbol.empty else stop_sym), q)
        | [ move ] -> move
        | moves -> Rng.choice_list rng moves
      in
      let entry =
        {
          props;
          perceived;
          action;
          world_state = World.state_name world;
          ctrl_state = q;
        }
      in
      World.step world;
      go q' (i + 1) (entry :: acc)
    end
  in
  go controller.Fsa.init 0 []

let to_symbols trace =
  Array.of_list (List.map (fun s -> Symbol.union s.props s.action) trace)
