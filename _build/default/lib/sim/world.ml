module Ts = Dpoaf_automata.Ts
module Symbol = Dpoaf_logic.Symbol
module Rng = Dpoaf_util.Rng

type noise = { miss_rate : float; false_rate : float }

let no_noise = { miss_rate = 0.0; false_rate = 0.0 }

type t = {
  model : Ts.t;
  rng : Rng.t;
  noise : noise;
  props : string list;  (* all propositions the model can report *)
  mutable state : Ts.state;
}

let create ?(noise = no_noise) ~model rng =
  if model.Ts.initial = [] then invalid_arg "World.create: no initial states";
  if not (Ts.is_total model) then invalid_arg "World.create: model must be total";
  {
    model;
    rng;
    noise;
    props = Symbol.elements (Ts.propositions model);
    state = Rng.choice_list rng model.Ts.initial;
  }

let ground_truth t = Ts.label t.model t.state

let perceive t =
  let truth = ground_truth t in
  List.fold_left
    (fun acc p ->
      let present = Symbol.mem p truth in
      let seen =
        if present then not (Rng.bool t.rng t.noise.miss_rate)
        else Rng.bool t.rng t.noise.false_rate
      in
      if seen then Symbol.add p acc else acc)
    Symbol.empty t.props

let step t = t.state <- Rng.choice_list t.rng (Ts.successors t.model t.state)

let state_name t = t.model.Ts.state_names.(t.state)
