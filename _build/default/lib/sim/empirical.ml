module Rng = Dpoaf_util.Rng
module Trace = Dpoaf_logic.Trace

type config = { rollouts : int; steps : int; noise : World.noise; seed : int }

let default_config =
  {
    rollouts = 200;
    steps = 40;
    noise = { World.miss_rate = 0.02; false_rate = 0.01 };
    seed = 42;
  }

let satisfaction_rate phi words =
  Dpoaf_util.Stats.fraction (fun word -> Trace.eval_finite phi word) words

let evaluate ?shield ~model ~controller ~specs config =
  let rng = Rng.create config.seed in
  let words =
    List.init config.rollouts (fun _ ->
        let world = World.create ~noise:config.noise ~model (Rng.split rng) in
        Runner.to_symbols
          (Runner.run ?shield world controller ~steps:config.steps (Rng.split rng)))
  in
  List.map (fun (name, phi) -> (name, satisfaction_rate phi words)) specs
