(** Grounding [G(C,S)]: operate a controller in the simulated system and
    record the sequence in [(2^P × 2^{P_A})^N] (§4.2, Empirical
    Evaluation).

    At each instant the controller reads a (possibly noisy) observation,
    one enabled transition is taken (uniformly among enabled ones), the
    {e ground-truth} propositions and the chosen action are recorded, and
    the world advances. *)

type step = {
  props : Dpoaf_logic.Symbol.t;  (** ground truth at this instant *)
  perceived : Dpoaf_logic.Symbol.t;  (** what the controller saw *)
  action : Dpoaf_logic.Symbol.t;
  world_state : string;
  ctrl_state : int;
}

type trace = step list

val run :
  ?shield:Shield.t ->
  World.t ->
  Dpoaf_automata.Fsa.t ->
  steps:int ->
  Dpoaf_util.Rng.t ->
  trace
(** Runs for exactly [steps] instants.  If the controller has no enabled
    transition it holds state and emits the empty action for that instant.
    With [?shield], moves the shield forbids (given the {e perceived}
    observation) are masked; if every move is masked the vehicle holds and
    emits [stop]. *)

val to_symbols : trace -> Dpoaf_logic.Symbol.t array
(** Each instant as [props ∪ action] — the word checked against the LTL
    specifications. *)
