module Fsa = Dpoaf_automata.Fsa
module Symbol = Dpoaf_logic.Symbol
module Clause = Dpoaf_lang.Clause
module Repair = Dpoaf_lang.Repair

type t = {
  guards : (string * Fsa.guard) list;  (* per action; missing = always allowed *)
  stop_action : string;
}

let create ~specs ~actions =
  let guards =
    List.filter_map
      (fun action ->
        if action = Dpoaf_lang.Glm2fsa.stop_action then None
        else
          match Repair.residual_condition specs ~action ~all_actions:actions with
          | None -> None
          | Some cond -> Some (action, Clause.guard_of_condition cond))
      actions
  in
  { guards; stop_action = Dpoaf_lang.Glm2fsa.stop_action }

let permits t ~observation action =
  Symbol.for_all
    (fun a ->
      a = t.stop_action
      ||
      match List.assoc_opt a t.guards with
      | None -> true
      | Some guard -> Fsa.eval_guard guard observation)
    action

let filter t ~observation moves =
  List.filter (fun (action, _) -> permits t ~observation action) moves
