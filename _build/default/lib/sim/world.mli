(** Stochastic driving-world simulator (the repository's Carla substitute).

    The environment evolves as a random walk over a scenario's
    automaton-based model, so the simulated dynamics are exactly the
    dynamics the formal models encode (the "complete information" case of
    the paper's Definition 1 when perception is perfect).  A perception
    noise model separates what {e happened} (ground-truth state labels,
    which go into the recorded trace) from what the controller {e saw}
    (dropped or hallucinated propositions). *)

type noise = {
  miss_rate : float;  (** probability a true proposition goes unseen *)
  false_rate : float;  (** probability an absent proposition is reported *)
}

val no_noise : noise

type t

val create :
  ?noise:noise -> model:Dpoaf_automata.Ts.t -> Dpoaf_util.Rng.t -> t
(** A world in a uniformly random initial state of [model].
    @raise Invalid_argument if the model has no initial states or is not
    total. *)

val ground_truth : t -> Dpoaf_logic.Symbol.t
(** The current state's true label. *)

val perceive : t -> Dpoaf_logic.Symbol.t
(** A (fresh) noisy observation of the current state; only propositions of
    the model are subject to noise. *)

val step : t -> unit
(** Advance to a uniformly random successor state. *)

val state_name : t -> string
