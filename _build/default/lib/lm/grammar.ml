module Imap = Map.Make (Int)

type node = { children : node Imap.t; terminal : bool }

type t = { root : node; sep : int; eos : int }

type state = { node : node; clauses_done : int; finished : bool }

let empty_node = { children = Imap.empty; terminal = false }

let rec insert node = function
  | [] -> { node with terminal = true }
  | tok :: rest ->
      let child =
        match Imap.find_opt tok node.children with
        | Some c -> c
        | None -> empty_node
      in
      { node with children = Imap.add tok (insert child rest) node.children }

let of_clauses vocab clauses =
  if clauses = [] then invalid_arg "Grammar.of_clauses: empty clause list";
  let root =
    List.fold_left
      (fun root clause ->
        let tokens = Vocab.encode vocab clause in
        if tokens = [] then
          invalid_arg
            (Printf.sprintf "Grammar.of_clauses: clause %S has no tokens" clause);
        insert root tokens)
      empty_node clauses
  in
  { root; sep = Vocab.sep vocab; eos = Vocab.eos vocab }

let start t = { node = t.root; clauses_done = 0; finished = false }

let allowed t ~min_clauses ~max_clauses state =
  if state.finished then []
  else begin
    let within = List.map fst (Imap.bindings state.node.children) in
    let boundary =
      if not state.node.terminal then []
      else begin
        let completed = state.clauses_done + 1 in
        (if completed < max_clauses then [ t.sep ] else [])
        @ (if completed >= min_clauses then [ t.eos ] else [])
      end
    in
    within @ boundary
  end

let advance t state tok =
  if state.finished then None
  else
    match Imap.find_opt tok state.node.children with
    | Some child -> Some { state with node = child }
    | None ->
        if state.node.terminal && tok = t.sep then
          Some { node = t.root; clauses_done = state.clauses_done + 1; finished = false }
        else if state.node.terminal && tok = t.eos then
          Some { state with clauses_done = state.clauses_done + 1; finished = true }
        else None

let is_final _t state = state.finished

let clauses_done state = state.clauses_done

let tokens_of_steps vocab steps =
  let encoded = List.map (Vocab.encode vocab) steps in
  let rec join = function
    | [] -> []
    | [ last ] -> last @ [ Vocab.eos vocab ]
    | s :: rest -> s @ (Vocab.sep vocab :: join rest)
  in
  join encoded

let steps_of_tokens vocab tokens =
  let rec split current acc = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | tok :: rest ->
        if tok = Vocab.sep vocab || tok = Vocab.eos vocab then
          split [] (List.rev current :: acc) rest
        else split (tok :: current) acc rest
  in
  split [] [] tokens
  |> List.filter (fun l -> l <> [])
  |> List.map (Vocab.decode vocab)

let accepts t ~min_clauses ~max_clauses tokens =
  let rec go state = function
    | [] -> state.finished
    | tok :: rest -> (
        if not (List.mem tok (allowed t ~min_clauses ~max_clauses state)) then false
        else
          match advance t state tok with
          | Some state' -> go state' rest
          | None -> false)
  in
  go (start t) tokens
