(** Maximum-likelihood pre-training.

    The "pre-trained model" of the paper is obtained by MLE on a synthetic
    corpus of instruction responses of mixed specification quality, so that
    before fine-tuning the model emits both careful and careless step
    sequences — the ≈60% starting point of the paper's curves. *)

type example = {
  prompt : int list;
  tokens : int list;  (** grammar-accepted response token sequence *)
  grammar : Grammar.t;
  min_clauses : int;
  max_clauses : int;
}

val nll : Model.t -> example -> float
(** Negative log-likelihood of one example. *)

val mean_nll : Model.t -> example list -> float

val train :
  Model.t ->
  example list ->
  epochs:int ->
  batch:int ->
  lr:float ->
  Dpoaf_util.Rng.t ->
  float list
(** Adam training of the pre-training parameters; returns the mean NLL per
    epoch (shuffled minibatches). *)
