module Tensor = Dpoaf_tensor.Tensor
module Lora = Dpoaf_tensor.Lora

type snapshot = {
  model : Model.t;
  effective_out : Tensor.t;  (* W + A·B at snapshot time *)
}

let snapshot model = { model; effective_out = Lora.effective model.Model.out }

let sigmoid x = 1.0 /. (1.0 +. exp (-.x))

(* Float mirror of Model.hidden_node. *)
let hidden s context =
  let d = s.model.Model.config.Model.dim in
  match s.model.Model.gru with
  | None ->
      let h = Array.make d 0.0 in
      let k = float_of_int (max 1 (List.length context)) in
      List.iter
        (fun tok ->
          for j = 0 to d - 1 do
            h.(j) <- h.(j) +. (Tensor.get2 s.model.Model.embedding tok j /. k)
          done)
        context;
      Array.map tanh h
  | Some g ->
      let matvec m v =
        Array.init d (fun i ->
            let acc = ref 0.0 in
            for j = 0 to d - 1 do
              acc := !acc +. (Tensor.get2 m i j *. v.(j))
            done;
            !acc)
      in
      let h = ref (Array.make d 0.0) in
      List.iter
        (fun tok ->
          let x = Array.init d (fun j -> Tensor.get2 s.model.Model.embedding tok j) in
          let gate w u bv =
            let wx = matvec w x and uh = matvec u !h in
            Array.init d (fun j -> sigmoid (wx.(j) +. uh.(j) +. Tensor.get bv j))
          in
          let z = gate g.Model.wz g.Model.uz g.Model.bz in
          let r = gate g.Model.wr g.Model.ur g.Model.br in
          let rh = Array.init d (fun j -> r.(j) *. !h.(j)) in
          let wx = matvec g.Model.wh x and uh = matvec g.Model.uh rh in
          let candidate =
            Array.init d (fun j -> tanh (wx.(j) +. uh.(j) +. Tensor.get g.Model.bh j))
          in
          h :=
            Array.init d (fun j ->
                ((1.0 -. z.(j)) *. !h.(j)) +. (z.(j) *. candidate.(j))))
        context;
      !h

let step_distribution s ~context ~allowed ~temperature =
  if allowed = [] then invalid_arg "Sampler.step_distribution: empty allowed set";
  if temperature <= 0.0 then
    invalid_arg "Sampler.step_distribution: temperature must be positive";
  let h = hidden s context in
  let d = Array.length h in
  let logits =
    List.map
      (fun tok ->
        let acc = ref (Tensor.get s.model.Model.bias tok) in
        for j = 0 to d - 1 do
          acc := !acc +. (Tensor.get2 s.effective_out tok j *. h.(j))
        done;
        !acc /. temperature)
      allowed
  in
  let m = List.fold_left Float.max neg_infinity logits in
  let exps = List.map (fun l -> exp (l -. m)) logits in
  let z = List.fold_left ( +. ) 0.0 exps in
  Array.of_list (List.map (fun e -> e /. z) exps)

let pick_index rng probs =
  let x = Dpoaf_util.Rng.float rng in
  let n = Array.length probs in
  let rec go i acc =
    if i >= n - 1 then n - 1
    else if x < acc +. probs.(i) then i
    else go (i + 1) (acc +. probs.(i))
  in
  go 0 0.0

let sample s rng ~prompt ~grammar ~min_clauses ~max_clauses ?(temperature = 1.0) () =
  let rec go state prefix =
    if Grammar.is_final grammar state then List.rev prefix
    else begin
      let allowed = Grammar.allowed grammar ~min_clauses ~max_clauses state in
      let context = Model.context_of s.model ~prompt ~prefix:(List.rev prefix) in
      let probs = step_distribution s ~context ~allowed ~temperature in
      let tok = List.nth allowed (pick_index rng probs) in
      match Grammar.advance grammar state tok with
      | Some state' -> go state' (tok :: prefix)
      | None -> assert false
    end
  in
  go (Grammar.start grammar) []

let greedy s ~prompt ~grammar ~min_clauses ~max_clauses =
  let rec go state prefix =
    if Grammar.is_final grammar state then List.rev prefix
    else begin
      let allowed = Grammar.allowed grammar ~min_clauses ~max_clauses state in
      let context = Model.context_of s.model ~prompt ~prefix:(List.rev prefix) in
      let probs = step_distribution s ~context ~allowed ~temperature:1.0 in
      let best = ref 0 in
      Array.iteri (fun i p -> if p > probs.(!best) then best := i) probs;
      let tok = List.nth allowed !best in
      match Grammar.advance grammar state tok with
      | Some state' -> go state' (tok :: prefix)
      | None -> assert false
    end
  in
  go (Grammar.start grammar) []
