(** Model (de)serialization.

    Checkpoints store the configuration, vocabulary and all parameter
    tensors in a versioned marshalled blob; {!load} rejects blobs written
    by a different version. *)

val save : Model.t -> string -> unit
(** Write to a file path. *)

val load : string -> Model.t
(** @raise Failure on malformed or version-mismatched files. *)
