let default_system_message =
  "You are a helpful assistant. Always answer as helpfully as possible, \
   while being safe. Your answers should be detailed."

let steps_query ~task = Printf.sprintf "Steps for %S:" task

let llama2 ?(system_message = default_system_message) task =
  Printf.sprintf "<s>[INST] <<SYS>>\n%s\n<</SYS>>\n\n%s [/INST]" system_message
    (steps_query ~task)

let alignment_query ~props ~actions ~steps =
  let numbered = List.mapi (fun i s -> Printf.sprintf "%d. %s" (i + 1) s) steps in
  Printf.sprintf
    "Rephrase the following steps to align the defined Boolean Propositions \
     {%s} and Actions {%s}:\n%s"
    (String.concat ", " props) (String.concat ", " actions)
    (String.concat "\n" numbered)
