module Tensor = Dpoaf_tensor.Tensor
module Autodiff = Dpoaf_tensor.Autodiff
module Lora = Dpoaf_tensor.Lora
module Optim = Dpoaf_tensor.Optim

type arch = Bow | Gru

type config = { dim : int; context : int; lora_rank : int; arch : arch }

let default_config = { dim = 24; context = 12; lora_rank = 4; arch = Bow }

(* Gated-recurrent-unit conditioner: h' = (1-z)∘h + z∘tanh(Wh x + Uh (r∘h) + bh). *)
type gru = {
  wz : Tensor.t; uz : Tensor.t; bz : Tensor.t;
  wr : Tensor.t; ur : Tensor.t; br : Tensor.t;
  wh : Tensor.t; uh : Tensor.t; bh : Tensor.t;
}

let gru_tensors g = [ g.wz; g.uz; g.bz; g.wr; g.ur; g.br; g.wh; g.uh; g.bh ]

let gru_names = [ "gru.wz"; "gru.uz"; "gru.bz"; "gru.wr"; "gru.ur"; "gru.br";
                  "gru.wh"; "gru.uh"; "gru.bh" ]

type t = {
  config : config;
  vocab : Vocab.t;
  embedding : Tensor.t;
  out : Lora.t;
  bias : Tensor.t;
  gru : gru option;  (* Some iff config.arch = Gru *)
}

let create rng config vocab =
  let v = Vocab.size vocab and d = config.dim in
  let scale = 1.0 /. sqrt (float_of_int d) in
  let mat () = Tensor.gaussian rng [| d; d |] ~stddev:scale in
  {
    config;
    vocab;
    embedding = Tensor.gaussian rng [| v; d |] ~stddev:scale;
    out = Lora.create rng ~base:(Tensor.gaussian rng [| v; d |] ~stddev:scale)
        ~rank:config.lora_rank;
    bias = Tensor.zeros [| v |];
    gru =
      (match config.arch with
      | Bow -> None
      | Gru ->
          Some
            {
              wz = mat (); uz = mat (); bz = Tensor.zeros [| d |];
              wr = mat (); ur = mat (); br = Tensor.zeros [| d |];
              wh = mat (); uh = mat (); bh = Tensor.zeros [| d |];
            });
  }

let clone t =
  {
    t with
    embedding = Tensor.copy t.embedding;
    out = Lora.clone t.out;
    bias = Tensor.copy t.bias;
    gru =
      Option.map
        (fun g ->
          {
            wz = Tensor.copy g.wz; uz = Tensor.copy g.uz; bz = Tensor.copy g.bz;
            wr = Tensor.copy g.wr; ur = Tensor.copy g.ur; br = Tensor.copy g.br;
            wh = Tensor.copy g.wh; uh = Tensor.copy g.uh; bh = Tensor.copy g.bh;
          })
        t.gru;
  }

let params_pretrain t =
  [
    Optim.param "embedding" t.embedding;
    Optim.param "out.base" t.out.Lora.base;
    Optim.param "bias" t.bias;
  ]
  @
  match t.gru with
  | None -> []
  | Some g -> List.map2 Optim.param gru_names (gru_tensors g)

let params_lora t = Lora.params ~prefix:"out" t.out

let context_of t ~prompt ~prefix =
  let all = (Vocab.bos t.vocab :: prompt) @ prefix in
  match t.config.arch with
  | Gru -> all (* the recurrence carries unbounded history *)
  | Bow ->
      let n = List.length all in
      let k = t.config.context in
      if n <= k then all
      else List.filteri (fun i _ -> i >= n - k) all

type bound = {
  tape : Autodiff.Tape.t;
  emb : Autodiff.t;
  base : Autodiff.t;
  a : Autodiff.t;
  b : Autodiff.t;
  bias_n : Autodiff.t;
  gru_n : Autodiff.t list;  (* same order as gru_tensors; [] for Bow *)
}

let bind t tape =
  {
    tape;
    emb = Autodiff.var tape t.embedding;
    base = Autodiff.var tape t.out.Lora.base;
    a = Autodiff.var tape t.out.Lora.a;
    b = Autodiff.var tape t.out.Lora.b;
    bias_n = Autodiff.var tape t.bias;
    gru_n =
      (match t.gru with
      | None -> []
      | Some g -> List.map (Autodiff.var tape) (gru_tensors g));
  }

let tape_of_bound bound = bound.tape

let lora_grads t bound =
  match params_lora t with
  | [ pa; pb ] -> [ (pa, Autodiff.grad bound.a); (pb, Autodiff.grad bound.b) ]
  | _ -> assert false

let pretrain_grads t bound =
  match params_pretrain t with
  | pe :: pw :: pbias :: gru_params ->
      [
        (pe, Autodiff.grad bound.emb);
        (pw, Autodiff.grad bound.base);
        (pbias, Autodiff.grad bound.bias_n);
      ]
      @ List.map2 (fun p node -> (p, Autodiff.grad node)) gru_params bound.gru_n
  | _ -> assert false

(* One GRU update: h' = (1-z)âh + zâtanh(Wh x + Uh (râh) + bh). *)
let gru_step_node t bound h tok =
  let tape = bound.tape in
  match bound.gru_n with
  | [ wz; uz; bz; wr; ur; br; wh; uh; bh ] ->
      let d = t.config.dim in
      let ones = Autodiff.const tape (Tensor.create [| d |] 1.0) in
      let x = Autodiff.rows_mean tape bound.emb [ tok ] in
      let gate w u bias_v =
        Autodiff.add tape
          (Autodiff.add tape (Autodiff.matvec tape w x) (Autodiff.matvec tape u h))
          bias_v
      in
      let z = Autodiff.sigmoid tape (gate wz uz bz) in
      let r = Autodiff.sigmoid tape (gate wr ur br) in
      let rh = Autodiff.mul tape r h in
      let candidate =
        Autodiff.tanh_ tape
          (Autodiff.add tape
             (Autodiff.add tape (Autodiff.matvec tape wh x) (Autodiff.matvec tape uh rh))
             bh)
      in
      let keep = Autodiff.sub tape ones z in
      Autodiff.add tape (Autodiff.mul tape keep h) (Autodiff.mul tape z candidate)
  | _ -> invalid_arg "Model.gru_step_node: not a GRU model"

let gru_init_node t bound =
  Autodiff.const bound.tape (Tensor.zeros [| t.config.dim |])

(* The conditioning vector: mean embedding (Bow) or a GRU pass (Gru). *)
let hidden_node t bound ~context =
  let tape = bound.tape in
  match bound.gru_n with
  | [] -> Autodiff.tanh_ tape (Autodiff.rows_mean tape bound.emb context)
  | _ -> List.fold_left (gru_step_node t bound) (gru_init_node t bound) context

let logprob_from_hidden _t bound ~h ~allowed ~target =
  if allowed = [] then invalid_arg "Model.step_logprob: empty allowed set";
  let target_pos =
    match List.find_index (fun tok -> tok = target) allowed with
    | Some i -> i
    | None -> invalid_arg "Model.step_logprob: target not allowed"
  in
  let tape = bound.tape in
  let wx = Autodiff.gather_matvec tape bound.base h allowed in
  let bh = Autodiff.matvec tape bound.b h in
  let abx = Autodiff.gather_matvec tape bound.a bh allowed in
  let bias = Autodiff.gather tape bound.bias_n allowed in
  let logits = Autodiff.add tape (Autodiff.add tape wx abx) bias in
  Autodiff.pick tape (Autodiff.log_softmax tape logits) target_pos

let step_logprob t bound ~context ~allowed ~target =
  let h = hidden_node t bound ~context in
  logprob_from_hidden t bound ~h ~allowed ~target

let response_logprob_node t bound ~prompt ~grammar ~min_clauses ~max_clauses ~tokens =
  let terms =
    match t.config.arch with
    | Bow ->
        let rec walk state prefix acc = function
          | [] ->
              if Grammar.is_final grammar state then acc
              else invalid_arg "Model.response_logprob_node: incomplete response"
          | tok :: rest -> (
              let allowed = Grammar.allowed grammar ~min_clauses ~max_clauses state in
              match Grammar.advance grammar state tok with
              | None ->
                  invalid_arg "Model.response_logprob_node: grammar rejects token"
              | Some state' ->
                  let context = context_of t ~prompt ~prefix:(List.rev prefix) in
                  let lp = step_logprob t bound ~context ~allowed ~target:tok in
                  walk state' (tok :: prefix) (lp :: acc) rest)
        in
        walk (Grammar.start grammar) [] [] tokens
    | Gru ->
        (* incremental: the hidden state is threaded through the sequence,
           so the pass is linear in its length *)
        let h0 =
          List.fold_left (gru_step_node t bound) (gru_init_node t bound)
            (Vocab.bos t.vocab :: prompt)
        in
        let rec walk state h acc = function
          | [] ->
              if Grammar.is_final grammar state then acc
              else invalid_arg "Model.response_logprob_node: incomplete response"
          | tok :: rest -> (
              let allowed = Grammar.allowed grammar ~min_clauses ~max_clauses state in
              match Grammar.advance grammar state tok with
              | None ->
                  invalid_arg "Model.response_logprob_node: grammar rejects token"
              | Some state' ->
                  let lp = logprob_from_hidden t bound ~h ~allowed ~target:tok in
                  walk state' (gru_step_node t bound h tok) (lp :: acc) rest)
        in
        walk (Grammar.start grammar) h0 [] tokens
  in
  Autodiff.add_list bound.tape terms

let response_logprob t ~prompt ~grammar ~min_clauses ~max_clauses ~tokens =
  let tape = Autodiff.Tape.create () in
  let bound = bind t tape in
  let node =
    response_logprob_node t bound ~prompt ~grammar ~min_clauses ~max_clauses ~tokens
  in
  Tensor.get (Autodiff.value node) 0
