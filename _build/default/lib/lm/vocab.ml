module Strext = Dpoaf_util.Strext

type t = { words : string array; index : (string, int) Hashtbl.t }

let specials = [ "<bos>"; "<sep>"; "<eos>"; "<unk>" ]

let of_words raw =
  let cleaned =
    List.concat_map (fun w -> Strext.lowercase_words w) raw
    |> List.sort_uniq compare
    |> List.filter (fun w -> not (List.mem w specials))
  in
  let words = Array.of_list (specials @ cleaned) in
  let index = Hashtbl.create (Array.length words) in
  Array.iteri (fun i w -> Hashtbl.replace index w i) words;
  { words; index }

let of_texts texts = of_words (List.concat_map Strext.lowercase_words texts)

let size t = Array.length t.words
let bos _ = 0
let sep _ = 1
let eos _ = 2
let unk _ = 3

let id t w =
  match Hashtbl.find_opt t.index w with Some i -> i | None -> unk t

let word t i =
  if i < 0 || i >= size t then invalid_arg "Vocab.word: out of range"
  else t.words.(i)

let mem t w = Hashtbl.mem t.index w

let encode t phrase = List.map (id t) (Strext.lowercase_words phrase)

let decode t ids = String.concat " " (List.map (word t) ids)

let export t = Array.to_list t.words

let import words_list =
  let words = Array.of_list words_list in
  if Array.length words < List.length specials
     || not (List.for_all2 ( = ) specials
               (Array.to_list (Array.sub words 0 (List.length specials))))
  then invalid_arg "Vocab.import: malformed word list";
  let index = Hashtbl.create (Array.length words) in
  Array.iteri (fun i w -> Hashtbl.replace index w i) words;
  { words; index }
