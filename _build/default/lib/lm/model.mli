(** The language model: a word-level autoregressive log-bilinear model.

    The next-token distribution conditions on the mean embedding of the
    last [context] tokens (prompt included):

    [h = tanh(mean E[w_i]);  logits = (W + A·B) h + bias]

    [W] is the frozen-at-fine-tuning output head carrying the LoRA adapter
    ([A·B]); pre-training trains [E], [W] and [bias] by maximum likelihood,
    DPO fine-tuning trains only [A] and [B] (paper, Appendix E).

    This is the repository's substitute for Llama2-7B: a parametric policy
    with computable sequence log-probabilities and gradients, which is all
    DPO-AF requires of the language model. *)

(** How the context tokens are condensed into the conditioning vector:
    [Bow] is the windowed mean-embedding (log-bilinear) default; [Gru] runs
    a gated recurrent unit over the context — slower but order-aware (see
    the bench's [abl-arch] section). *)
type arch = Bow | Gru

type config = { dim : int; context : int; lora_rank : int; arch : arch }

val default_config : config
(** dim 24, context 12, LoRA rank 4, [Bow]. *)

type gru = private {
  wz : Dpoaf_tensor.Tensor.t;
  uz : Dpoaf_tensor.Tensor.t;
  bz : Dpoaf_tensor.Tensor.t;
  wr : Dpoaf_tensor.Tensor.t;
  ur : Dpoaf_tensor.Tensor.t;
  br : Dpoaf_tensor.Tensor.t;
  wh : Dpoaf_tensor.Tensor.t;
  uh : Dpoaf_tensor.Tensor.t;
  bh : Dpoaf_tensor.Tensor.t;
}

type t = private {
  config : config;
  vocab : Vocab.t;
  embedding : Dpoaf_tensor.Tensor.t;  (** [V×d] *)
  out : Dpoaf_tensor.Lora.t;  (** output head [V×d] with adapter *)
  bias : Dpoaf_tensor.Tensor.t;  (** [V] *)
  gru : gru option;  (** present iff [config.arch = Gru] *)
}

val create : Dpoaf_util.Rng.t -> config -> Vocab.t -> t

val clone : t -> t
(** Deep copy (used for the frozen DPO reference model and checkpoints). *)

val params_pretrain : t -> Dpoaf_tensor.Optim.param list
(** Embedding, output base and bias — trained during MLE pre-training. *)

val params_lora : t -> Dpoaf_tensor.Optim.param list
(** Adapter matrices only — trained during DPO. *)

val context_of : t -> prompt:int list -> prefix:int list -> int list
(** The (at most [config.context]) token ids conditioning the next token:
    a [<bos>] marker, the prompt, then the response prefix. *)

(** {1 Differentiable scoring} *)

type bound
(** Model parameters bound as nodes on one tape (shared across positions of
    one or more sequences). *)

val bind : t -> Dpoaf_tensor.Autodiff.Tape.t -> bound

val tape_of_bound : bound -> Dpoaf_tensor.Autodiff.Tape.t

val hidden_node : t -> bound -> context:int list -> Dpoaf_tensor.Autodiff.t
(** The conditioning vector for the next-token distribution (differentiable
    path; the sampler has a matching float path). *)

val lora_grads :
  t -> bound -> (Dpoaf_tensor.Optim.param * Dpoaf_tensor.Tensor.t) list
(** After a backward pass: gradients for {!params_lora}. *)

val pretrain_grads :
  t -> bound -> (Dpoaf_tensor.Optim.param * Dpoaf_tensor.Tensor.t) list

val step_logprob :
  t ->
  bound ->
  context:int list ->
  allowed:int list ->
  target:int ->
  Dpoaf_tensor.Autodiff.t
(** Log-probability (scalar node) of [target] among [allowed] (renormalized
    over the allowed set).  @raise Invalid_argument if [target] is not
    allowed or [allowed] is empty. *)

val response_logprob_node :
  t ->
  bound ->
  prompt:int list ->
  grammar:Grammar.t ->
  min_clauses:int ->
  max_clauses:int ->
  tokens:int list ->
  Dpoaf_tensor.Autodiff.t
(** Differentiable total log-probability of a grammar-accepted response.
    @raise Invalid_argument if the grammar rejects [tokens]. *)

val response_logprob :
  t ->
  prompt:int list ->
  grammar:Grammar.t ->
  min_clauses:int ->
  max_clauses:int ->
  tokens:int list ->
  float
(** Evaluation-only wrapper around {!response_logprob_node}. *)
