(** Prefix-trie grammar for constrained decoding.

    A grammar is built from a clause library (the candidate instruction
    steps for one task).  A well-formed response is
    [clause (<sep> clause)* <eos>]: the decoder walks the trie within a
    clause, and at a completed clause may emit [<sep>] (start another
    clause) or [<eos>] (finish, once at least [min_clauses] clauses are
    done).  Every sampled response therefore parses, while all semantic
    choice — which guards, which actions, which order — carries the
    language model's probability mass. *)

type t

type state

val of_clauses : Vocab.t -> string list -> t
(** @raise Invalid_argument on an empty clause list or clauses with no
    in-vocabulary words. *)

val start : t -> state

val allowed : t -> min_clauses:int -> max_clauses:int -> state -> int list
(** Token ids permitted next (never empty for a reachable state). *)

val advance : t -> state -> int -> state option
(** [None] if the token is not allowed in this state. *)

val is_final : t -> state -> bool
(** True once [<eos>] has been consumed. *)

val clauses_done : state -> int

val tokens_of_steps : Vocab.t -> string list -> int list
(** Encode a full response (steps joined with [<sep>], ending in [<eos>]).
    This is the token sequence whose probability the model assigns to the
    response. *)

val steps_of_tokens : Vocab.t -> int list -> string list
(** Inverse of {!tokens_of_steps} up to tokenization. *)

val accepts : t -> min_clauses:int -> max_clauses:int -> int list -> bool
(** Whether a token sequence is generable by the grammar. *)
