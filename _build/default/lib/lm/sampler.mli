(** Grammar-constrained sampling from the language model.

    Sampling uses a parameter snapshot (the LoRA adapter materialized into
    the output head) so repeated sampling does not rebuild autodiff tapes. *)

type snapshot

val snapshot : Model.t -> snapshot
(** Capture the model's current effective parameters. *)

val step_distribution :
  snapshot -> context:int list -> allowed:int list -> temperature:float -> float array
(** Probabilities over [allowed] (renormalized; sums to 1).
    @raise Invalid_argument on an empty allowed set or non-positive
    temperature. *)

val sample :
  snapshot ->
  Dpoaf_util.Rng.t ->
  prompt:int list ->
  grammar:Grammar.t ->
  min_clauses:int ->
  max_clauses:int ->
  ?temperature:float ->
  unit ->
  int list
(** One response: token ids ending in [<eos>], accepted by the grammar. *)

val greedy :
  snapshot ->
  prompt:int list ->
  grammar:Grammar.t ->
  min_clauses:int ->
  max_clauses:int ->
  int list
(** Most-likely-token decoding (deterministic). *)
