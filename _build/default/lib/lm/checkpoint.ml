module Tensor = Dpoaf_tensor.Tensor
module Lora = Dpoaf_tensor.Lora

let version = 2

type blob = {
  blob_version : int;
  dim : int;
  context : int;
  lora_rank : int;
  is_gru : bool;
  words : string list;
  embedding : float array;
  out_base : float array;
  out_a : float array;
  out_b : float array;
  bias : float array;
  gru : float array list;  (* 9 tensors in Model.gru_tensors order; [] for Bow *)
}

let data t = Array.init (Tensor.numel t) (Tensor.get t)

let save model path =
  let cfg = model.Model.config in
  let blob =
    {
      blob_version = version;
      dim = cfg.Model.dim;
      context = cfg.Model.context;
      lora_rank = cfg.Model.lora_rank;
      is_gru = cfg.Model.arch = Model.Gru;
      words = Vocab.export model.Model.vocab;
      embedding = data model.Model.embedding;
      out_base = data model.Model.out.Lora.base;
      out_a = data model.Model.out.Lora.a;
      out_b = data model.Model.out.Lora.b;
      bias = data model.Model.bias;
      gru =
        (match model.Model.gru with
        | None -> []
        | Some g ->
            List.map data
              [ g.Model.wz; g.Model.uz; g.Model.bz; g.Model.wr; g.Model.ur;
                g.Model.br; g.Model.wh; g.Model.uh; g.Model.bh ]);
    }
  in
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> Marshal.to_channel oc blob [])

let restore dst src =
  if Tensor.numel dst <> Array.length src then failwith "Checkpoint: size mismatch";
  Array.iteri (fun i v -> Tensor.set dst i v) src

let load path =
  let ic = open_in_bin path in
  let blob =
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> (Marshal.from_channel ic : blob))
  in
  if blob.blob_version <> version then failwith "Checkpoint: version mismatch";
  let vocab = Vocab.import blob.words in
  let config =
    {
      Model.dim = blob.dim;
      context = blob.context;
      lora_rank = blob.lora_rank;
      arch = (if blob.is_gru then Model.Gru else Model.Bow);
    }
  in
  let model = Model.create (Dpoaf_util.Rng.create 0) config vocab in
  restore model.Model.embedding blob.embedding;
  restore model.Model.out.Lora.base blob.out_base;
  restore model.Model.out.Lora.a blob.out_a;
  restore model.Model.out.Lora.b blob.out_b;
  restore model.Model.bias blob.bias;
  (match model.Model.gru with
  | None -> if blob.gru <> [] then failwith "Checkpoint: unexpected GRU tensors"
  | Some g ->
      List.iter2 restore
        [ g.Model.wz; g.Model.uz; g.Model.bz; g.Model.wr; g.Model.ur; g.Model.br;
          g.Model.wh; g.Model.uh; g.Model.bh ]
        blob.gru);
  model
