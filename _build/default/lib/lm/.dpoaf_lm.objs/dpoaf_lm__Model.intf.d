lib/lm/model.mli: Dpoaf_tensor Dpoaf_util Grammar Vocab
