lib/lm/pretrain.mli: Dpoaf_util Grammar Model
