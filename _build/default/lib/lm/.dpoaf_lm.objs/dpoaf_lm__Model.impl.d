lib/lm/model.ml: Dpoaf_tensor Grammar List Option Vocab
