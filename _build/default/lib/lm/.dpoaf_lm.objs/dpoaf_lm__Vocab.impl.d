lib/lm/vocab.ml: Array Dpoaf_util Hashtbl List String
