lib/lm/sampler.mli: Dpoaf_util Grammar Model
