lib/lm/checkpoint.ml: Array Dpoaf_tensor Dpoaf_util Fun List Marshal Model Vocab
