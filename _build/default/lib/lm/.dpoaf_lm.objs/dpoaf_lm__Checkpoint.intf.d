lib/lm/checkpoint.mli: Model
