lib/lm/vocab.mli:
