lib/lm/grammar.mli: Vocab
