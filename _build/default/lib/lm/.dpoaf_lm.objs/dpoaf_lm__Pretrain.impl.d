lib/lm/pretrain.ml: Array Dpoaf_tensor Dpoaf_util Grammar List Model
