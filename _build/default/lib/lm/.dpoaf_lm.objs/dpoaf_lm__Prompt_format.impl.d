lib/lm/prompt_format.ml: List Printf String
