lib/lm/grammar.ml: Int List Map Printf Vocab
