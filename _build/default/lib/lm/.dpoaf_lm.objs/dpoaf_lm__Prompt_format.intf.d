lib/lm/prompt_format.mli:
