lib/lm/sampler.ml: Array Dpoaf_tensor Dpoaf_util Float Grammar List Model
