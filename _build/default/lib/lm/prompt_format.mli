(** Prompt templates (paper Appendix E).

    Llama-2 requires special tokens delimiting system and user messages;
    the paper's query embeds the task in that template.  Our word-level
    model only conditions on the plain query, but the full template is kept
    for fidelity (and is what a drop-in Llama-2 backend would consume). *)

val default_system_message : string
(** The paper's system message ("You are a helpful assistant. …"). *)

val llama2 : ?system_message:string -> string -> string
(** [llama2 task] renders the template around {!steps_query}. *)

val steps_query : task:string -> string
(** The bare first-stage query: [Steps for "task":]. *)

val alignment_query :
  props:string list -> actions:string list -> steps:string list -> string
(** The second-stage query of §4.1, asking the model to rephrase steps over
    the defined propositions and actions. *)
