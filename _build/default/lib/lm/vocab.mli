(** Word-level vocabulary with the special tokens used by the decoder.

    Tokens: lowercase words (punctuation stripped); [<bos>] starts every
    sequence, [<sep>] separates instruction steps, [<eos>] terminates a
    response, [<unk>] covers out-of-vocabulary words. *)

type t

val of_words : string list -> t
(** Deduplicates and sorts; special tokens are added automatically. *)

val of_texts : string list -> t
(** Vocabulary from the words of whole phrases/sentences. *)

val size : t -> int
val bos : t -> int
val sep : t -> int
val eos : t -> int
val unk : t -> int

val id : t -> string -> int
(** [unk] for unknown words. *)

val word : t -> int -> string
(** @raise Invalid_argument when out of range. *)

val mem : t -> string -> bool

val encode : t -> string -> int list
(** Tokenize a phrase (no specials added). *)

val decode : t -> int list -> string
(** Words joined by spaces; special tokens rendered as [<bos>] etc. *)

val export : t -> string list
(** The exact token array (specials included), for checkpointing. *)

val import : string list -> t
(** Rebuild from {!export} output, preserving ids.
    @raise Invalid_argument when the special tokens are not in place. *)
