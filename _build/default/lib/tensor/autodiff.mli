(** Tape-based reverse-mode automatic differentiation.

    Build a computation on a {!Tape.t}; call {!backward} on a scalar output;
    read gradients of the leaves with {!grad}.  Fresh tapes are cheap —
    create one per forward/backward pass. *)

module Tape : sig
  type t

  val create : unit -> t
  val length : t -> int
end

type t
(** A node: a tensor value plus its accumulated adjoint. *)

val var : Tape.t -> Tensor.t -> t
(** Differentiable leaf (model parameter or input embedding). *)

val const : Tape.t -> Tensor.t -> t
(** Non-differentiable leaf: gradients are still accumulated (harmlessly)
    but typically ignored. *)

val value : t -> Tensor.t
val grad : t -> Tensor.t
(** Adjoint accumulated by the last {!backward}; zeros before that. *)

(** {1 Operations} — shapes follow the tensor arguments *)

val add : Tape.t -> t -> t -> t
val sub : Tape.t -> t -> t -> t

(** Elementwise product. *)
val mul : Tape.t -> t -> t -> t

val scale : Tape.t -> float -> t -> t
val neg : Tape.t -> t -> t

(** Any shape → scalar. *)
val sum : Tape.t -> t -> t

val mean : Tape.t -> t -> t

(** Vectors → scalar. *)
val dot : Tape.t -> t -> t -> t

(** [m×n] matrix, [n]-vector → [m]-vector. *)
val matvec : Tape.t -> t -> t -> t

(** Mean of the selected rows of a matrix (an embedding-bag). *)
val rows_mean : Tape.t -> t -> int list -> t

(** [gather_matvec tape m x rows] is the vector [(m.(r) · x)] for [r] in
    [rows] — the selected-rows product used for grammar-constrained logits,
    avoiding work on tokens the grammar forbids. *)
val gather_matvec : Tape.t -> t -> t -> int list -> t

(** [gather tape v rows] selects entries of a vector. *)
val gather : Tape.t -> t -> int list -> t

val tanh_ : Tape.t -> t -> t
val relu : Tape.t -> t -> t
val sigmoid : Tape.t -> t -> t

(** Requires positive entries. *)
val log_ : Tape.t -> t -> t

val exp_ : Tape.t -> t -> t

(** [log(1 + e^x)], computed stably; the gradient is [sigmoid x].  The DPO
    loss [-log σ(x)] is [softplus (-x)]. *)
val softplus : Tape.t -> t -> t

(** Vector → vector. *)
val log_softmax : Tape.t -> t -> t

(** Vector, index → scalar. *)
val pick : Tape.t -> t -> int -> t

(** Sum of scalars; [add_list tape []] is the constant 0. *)
val add_list : Tape.t -> t list -> t

val backward : Tape.t -> t -> unit
(** Seed the (scalar) output with gradient 1 and propagate.  Clears
    previously accumulated gradients on the tape first.
    @raise Invalid_argument if the output is not a scalar. *)
