(** First-order optimizers over named parameter tensors.

    Parameters are updated in place.  State (momenta) is keyed by parameter
    name, so the same optimizer instance can be reused across steps. *)

type param = { name : string; tensor : Tensor.t }

val param : string -> Tensor.t -> param

module Sgd : sig
  type t

  val create : ?momentum:float -> lr:float -> unit -> t
  val step : t -> (param * Tensor.t) list -> unit
  (** [(parameter, gradient)] pairs; shapes must match. *)
end

module Adam : sig
  type t

  val create :
    ?beta1:float -> ?beta2:float -> ?eps:float -> lr:float -> unit -> t

  val step : t -> (param * Tensor.t) list -> unit
end

val clip_by_max_abs : float -> Tensor.t -> Tensor.t
(** Elementwise gradient clipping. *)
