lib/tensor/autodiff.mli: Tensor
