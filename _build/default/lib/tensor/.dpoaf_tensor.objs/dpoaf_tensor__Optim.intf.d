lib/tensor/optim.mli: Tensor
