lib/tensor/autodiff.ml: Array Float List Tensor
