lib/tensor/optim.ml: Float Hashtbl List Printf Tensor
