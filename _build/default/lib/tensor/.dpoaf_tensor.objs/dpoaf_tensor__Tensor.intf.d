lib/tensor/tensor.mli: Dpoaf_util Format
