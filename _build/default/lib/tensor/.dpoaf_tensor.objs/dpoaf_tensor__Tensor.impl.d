lib/tensor/tensor.ml: Array Dpoaf_util Float Format List Printf String
