lib/tensor/lora.ml: Autodiff Optim Tensor
