lib/tensor/lora.mli: Autodiff Dpoaf_util Optim Tensor
