type node = {
  value : Tensor.t;
  grad : Tensor.t;  (* adjoint, same shape as value *)
  pull : unit -> unit;  (* propagate this node's adjoint to its parents *)
}

type t = node

module Tape = struct
  type t = { mutable nodes : node list; mutable n : int }

  let create () = { nodes = []; n = 0 }
  let length t = t.n

  let push t node =
    t.nodes <- node :: t.nodes;
    t.n <- t.n + 1
end

(* [pull_of_grad] receives the node's own adjoint tensor and accumulates
   into the parents' adjoints. *)
let record tape value pull_of_grad =
  let grad = Tensor.zeros (Tensor.dims value) in
  let node = { value; grad; pull = (fun () -> pull_of_grad grad) } in
  Tape.push tape node;
  node

let var tape value = record tape value (fun _ -> ())
let const = var

let value n = n.value
let grad n = n.grad

let n_ t = Tensor.numel t

let add tape a b =
  record tape
    (Tensor.map2 ( +. ) a.value b.value)
    (fun g ->
      Tensor.add_in_place a.grad g;
      Tensor.add_in_place b.grad g)

let sub tape a b =
  record tape
    (Tensor.map2 ( -. ) a.value b.value)
    (fun g ->
      Tensor.add_in_place a.grad g;
      for i = 0 to n_ g - 1 do
        Tensor.set b.grad i (Tensor.get b.grad i -. Tensor.get g i)
      done)

let mul tape a b =
  record tape
    (Tensor.map2 ( *. ) a.value b.value)
    (fun g ->
      for i = 0 to n_ g - 1 do
        Tensor.set a.grad i (Tensor.get a.grad i +. (Tensor.get g i *. Tensor.get b.value i));
        Tensor.set b.grad i (Tensor.get b.grad i +. (Tensor.get g i *. Tensor.get a.value i))
      done)

let scale tape c a =
  record tape
    (Tensor.map (fun x -> c *. x) a.value)
    (fun g ->
      for i = 0 to n_ g - 1 do
        Tensor.set a.grad i (Tensor.get a.grad i +. (c *. Tensor.get g i))
      done)

let neg tape a = scale tape (-1.0) a

let sum tape a =
  record tape
    (Tensor.scalar (Tensor.sum a.value))
    (fun g ->
      let gv = Tensor.get g 0 in
      for i = 0 to n_ a.value - 1 do
        Tensor.set a.grad i (Tensor.get a.grad i +. gv)
      done)

let mean tape a =
  let n = float_of_int (max 1 (n_ a.value)) in
  record tape
    (Tensor.scalar (Tensor.mean a.value))
    (fun g ->
      let gv = Tensor.get g 0 /. n in
      for i = 0 to n_ a.value - 1 do
        Tensor.set a.grad i (Tensor.get a.grad i +. gv)
      done)

let dot tape a b =
  if Tensor.numel a.value <> Tensor.numel b.value then
    invalid_arg "Autodiff.dot: size mismatch";
  let v = ref 0.0 in
  for i = 0 to n_ a.value - 1 do
    v := !v +. (Tensor.get a.value i *. Tensor.get b.value i)
  done;
  record tape (Tensor.scalar !v) (fun g ->
      let gv = Tensor.get g 0 in
      for i = 0 to n_ a.value - 1 do
        Tensor.set a.grad i (Tensor.get a.grad i +. (gv *. Tensor.get b.value i));
        Tensor.set b.grad i (Tensor.get b.grad i +. (gv *. Tensor.get a.value i))
      done)

let matvec tape m x =
  let rows, cols =
    match Tensor.dims m.value with
    | [| r; c |] -> (r, c)
    | _ -> invalid_arg "Autodiff.matvec: first argument must be a matrix"
  in
  if Tensor.numel x.value <> cols then invalid_arg "Autodiff.matvec: size mismatch";
  let out = Array.make rows 0.0 in
  for i = 0 to rows - 1 do
    let acc = ref 0.0 in
    for j = 0 to cols - 1 do
      acc := !acc +. (Tensor.get m.value ((i * cols) + j) *. Tensor.get x.value j)
    done;
    out.(i) <- !acc
  done;
  record tape (Tensor.vector out) (fun g ->
      for i = 0 to rows - 1 do
        let gi = Tensor.get g i in
        if gi <> 0.0 then
          for j = 0 to cols - 1 do
            let idx = (i * cols) + j in
            Tensor.set m.grad idx (Tensor.get m.grad idx +. (gi *. Tensor.get x.value j));
            Tensor.set x.grad j (Tensor.get x.grad j +. (gi *. Tensor.get m.value idx))
          done
      done)

let rows_mean tape m rows =
  let nrows, cols =
    match Tensor.dims m.value with
    | [| r; c |] -> (r, c)
    | _ -> invalid_arg "Autodiff.rows_mean: argument must be a matrix"
  in
  List.iter
    (fun r ->
      if r < 0 || r >= nrows then invalid_arg "Autodiff.rows_mean: row out of range")
    rows;
  let k = float_of_int (max 1 (List.length rows)) in
  let out = Array.make cols 0.0 in
  List.iter
    (fun r ->
      for j = 0 to cols - 1 do
        out.(j) <- out.(j) +. (Tensor.get m.value ((r * cols) + j) /. k)
      done)
    rows;
  record tape (Tensor.vector out) (fun g ->
      List.iter
        (fun r ->
          for j = 0 to cols - 1 do
            let idx = (r * cols) + j in
            Tensor.set m.grad idx (Tensor.get m.grad idx +. (Tensor.get g j /. k))
          done)
        rows)

let gather_matvec tape m x rows =
  let nrows, cols =
    match Tensor.dims m.value with
    | [| r; c |] -> (r, c)
    | _ -> invalid_arg "Autodiff.gather_matvec: first argument must be a matrix"
  in
  if Tensor.numel x.value <> cols then
    invalid_arg "Autodiff.gather_matvec: size mismatch";
  let rows_arr = Array.of_list rows in
  Array.iter
    (fun r ->
      if r < 0 || r >= nrows then
        invalid_arg "Autodiff.gather_matvec: row out of range")
    rows_arr;
  let out =
    Array.map
      (fun r ->
        let acc = ref 0.0 in
        for j = 0 to cols - 1 do
          acc := !acc +. (Tensor.get m.value ((r * cols) + j) *. Tensor.get x.value j)
        done;
        !acc)
      rows_arr
  in
  record tape (Tensor.vector out) (fun g ->
      Array.iteri
        (fun k r ->
          let gk = Tensor.get g k in
          if gk <> 0.0 then
            for j = 0 to cols - 1 do
              let idx = (r * cols) + j in
              Tensor.set m.grad idx (Tensor.get m.grad idx +. (gk *. Tensor.get x.value j));
              Tensor.set x.grad j (Tensor.get x.grad j +. (gk *. Tensor.get m.value idx))
            done)
        rows_arr)

let gather tape v rows =
  let n = n_ v.value in
  let rows_arr = Array.of_list rows in
  Array.iter
    (fun r -> if r < 0 || r >= n then invalid_arg "Autodiff.gather: index out of range")
    rows_arr;
  record tape
    (Tensor.vector (Array.map (fun r -> Tensor.get v.value r) rows_arr))
    (fun g ->
      Array.iteri
        (fun k r -> Tensor.set v.grad r (Tensor.get v.grad r +. Tensor.get g k))
        rows_arr)

let unary tape f df a =
  let value = Tensor.map f a.value in
  record tape value (fun g ->
      for i = 0 to n_ g - 1 do
        Tensor.set a.grad i
          (Tensor.get a.grad i +. (Tensor.get g i *. df (Tensor.get a.value i) (Tensor.get value i)))
      done)

let tanh_ tape a = unary tape tanh (fun _ y -> 1.0 -. (y *. y)) a
let relu tape a = unary tape (fun x -> Float.max 0.0 x) (fun x _ -> if x > 0.0 then 1.0 else 0.0) a
let sigmoid tape a =
  unary tape (fun x -> 1.0 /. (1.0 +. exp (-.x))) (fun _ y -> y *. (1.0 -. y)) a
let log_ tape a = unary tape log (fun x _ -> 1.0 /. x) a
let exp_ tape a = unary tape exp (fun _ y -> y) a

let softplus tape a =
  unary tape
    (fun x -> Float.max x 0.0 +. log1p (exp (-.abs_float x)))
    (fun x _ -> 1.0 /. (1.0 +. exp (-.x)))
    a

let log_softmax tape a =
  let n = n_ a.value in
  if n = 0 then invalid_arg "Autodiff.log_softmax: empty vector";
  let m = ref neg_infinity in
  for i = 0 to n - 1 do
    m := Float.max !m (Tensor.get a.value i)
  done;
  let z = ref 0.0 in
  for i = 0 to n - 1 do
    z := !z +. exp (Tensor.get a.value i -. !m)
  done;
  let log_z = !m +. log !z in
  let value = Tensor.map (fun x -> x -. log_z) a.value in
  record tape value (fun g ->
      let g_sum = Tensor.sum g in
      for i = 0 to n - 1 do
        let soft = exp (Tensor.get value i) in
        Tensor.set a.grad i (Tensor.get a.grad i +. Tensor.get g i -. (g_sum *. soft))
      done)

let pick tape a idx =
  if idx < 0 || idx >= n_ a.value then invalid_arg "Autodiff.pick: index out of range";
  record tape
    (Tensor.scalar (Tensor.get a.value idx))
    (fun g -> Tensor.set a.grad idx (Tensor.get a.grad idx +. Tensor.get g 0))

let add_list tape = function
  | [] -> var tape (Tensor.scalar 0.0)
  | xs ->
      List.iter
        (fun x ->
          if Tensor.numel x.value <> 1 then
            invalid_arg "Autodiff.add_list: non-scalar term")
        xs;
      let total = List.fold_left (fun acc x -> acc +. Tensor.get x.value 0) 0.0 xs in
      record tape (Tensor.scalar total) (fun g ->
          let gv = Tensor.get g 0 in
          List.iter
            (fun x -> Tensor.set x.grad 0 (Tensor.get x.grad 0 +. gv))
            xs)

let backward tape out =
  if Tensor.numel out.value <> 1 then
    invalid_arg "Autodiff.backward: output must be a scalar";
  List.iter (fun node -> Tensor.fill node.grad 0.0) tape.Tape.nodes;
  Tensor.set out.grad 0 1.0;
  (* nodes are stored most-recent first: exactly reverse topological order *)
  List.iter (fun node -> node.pull ()) tape.Tape.nodes
